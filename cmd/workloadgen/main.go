// Command workloadgen generates Table III workload instances as JSON, one
// file per (set, maxDegree) pair, for offline analysis or replay through
// other tools.
//
// Usage:
//
//	workloadgen [-out DIR] [-sets N] [-queries N] [-degrees 1,10,60] [-independent-bids]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/workload"
)

func main() {
	var (
		out     = flag.String("out", "workloads", "output directory")
		sets    = flag.Int("sets", 5, "number of workload sets")
		queries = flag.Int("queries", 2000, "queries per instance")
		degrees = flag.String("degrees", "1,10,30,60", "comma-separated max sharing degrees")
		indep   = flag.Bool("independent-bids", false, "use the literal Table III independent bid distribution")
	)
	flag.Parse()
	if err := run(*out, *sets, *queries, *degrees, *indep); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}

func run(out string, sets, queries int, degreeList string, indep bool) error {
	var degrees []int
	for _, part := range strings.Split(degreeList, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad degree %q: %w", part, err)
		}
		degrees = append(degrees, d)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for set := 0; set < sets; set++ {
		params := workload.PaperParams(int64(set) + 1)
		params.NumQueries = queries
		if indep {
			params.BidMode = workload.BidZipf
		}
		base, err := workload.Generate(params)
		if err != nil {
			return err
		}
		for _, d := range degrees {
			pool, err := base.Instance(d)
			if err != nil {
				return err
			}
			path := filepath.Join(out, fmt.Sprintf("set%02d_deg%02d.json", set, d))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = workload.WriteInstance(f, pool)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d queries, %d operators)\n", path, pool.NumQueries(), pool.NumOperators())
		}
	}
	return nil
}
