package main

import (
	"io"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line   string
		metric string
		name   string
		val    float64
		ok     bool
	}{
		{"BenchmarkExecutor/sharded-8   \t 1000  1234.5 ns/op  98765 tuples/s", "ns/op", "BenchmarkExecutor/sharded", 1234.5, true},
		{"BenchmarkExecutor/sharded-8    1000  1234.5 ns/op  98765 tuples/s", "tuples/s", "BenchmarkExecutor/sharded", 98765, true},
		{"BenchmarkSynchronousPush    500  42 ns/op", "ns/op", "BenchmarkSynchronousPush", 42, true},
		{"ok  \trepro/internal/engine\t1.5s", "ns/op", "", 0, false},
		{"BenchmarkNoMetric-4  10  7 B/op", "ns/op", "", 0, false},
	}
	for _, c := range cases {
		name, val, ok := parseLine(c.line, c.metric)
		if ok != c.ok || name != c.name || val != c.val {
			t.Errorf("parseLine(%q, %q) = %q %v %v, want %q %v %v",
				c.line, c.metric, name, val, ok, c.name, c.val, c.ok)
		}
	}
}

func TestGateDirections(t *testing.T) {
	old := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100}
	// A regressed 50%, B improved.
	cur := map[string]float64{"BenchmarkA": 150, "BenchmarkB": 50, "BenchmarkNew": 1}
	if got := gate(old, cur, "ns/op", 0.15, nil, io.Discard); got != 1 {
		t.Errorf("cost metric: %d regressions, want 1 (A only)", got)
	}
	// For a rate metric the directions flip: B's drop is the regression.
	if got := gate(old, cur, "tuples/s", 0.15, nil, io.Discard); got != 1 {
		t.Errorf("rate metric: %d regressions, want 1 (B only)", got)
	}
	// Within threshold: no failure.
	if got := gate(old, map[string]float64{"BenchmarkA": 110}, "ns/op", 0.15, nil, io.Discard); got != 0 {
		t.Errorf("within threshold: %d regressions, want 0", got)
	}
}
