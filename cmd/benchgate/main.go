// Command benchgate compares two `go test -bench` outputs (benchstat-style
// benchmark lines) and exits nonzero when any benchmark regressed beyond a
// threshold. CI uses it to gate pull requests on the executor benchmarks:
// the bench job's BENCH_ci.json artifact from the main branch is the
// baseline, and a >15% throughput regression fails the job.
//
// Benchmarks present in only one of the two files are reported and skipped
// (new or removed benchmarks are not regressions). Multiple runs of the
// same benchmark average their values before comparison.
//
// Usage:
//
//	benchgate [-threshold 0.15] [-metric ns/op] [-match REGEXP] old.txt new.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.15, "maximum tolerated relative increase of the metric")
		metric    = flag.String("metric", "ns/op", "benchmark metric to compare; regressions are increases for cost metrics (ns/op, B/op, allocs/op) and decreases for others (e.g. tuples/s)")
		match     = flag.String("match", "", "only gate benchmarks whose name matches this regexp (default: all)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-threshold F] [-metric M] [-match RE] old new")
		os.Exit(2)
	}
	var re *regexp.Regexp
	if *match != "" {
		var err error
		if re, err = regexp.Compile(*match); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	old, err := parseFile(flag.Arg(0), *metric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(1), *metric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	regressions := gate(old, cur, *metric, *threshold, re, os.Stdout)
	if regressions > 0 {
		fmt.Printf("benchgate: %d benchmark(s) regressed beyond %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions")
}

// gate compares the two metric maps and writes one line per gated
// benchmark; it returns the number of regressions.
func gate(old, cur map[string]float64, metric string, threshold float64, match *regexp.Regexp, w io.Writer) int {
	// Cost metrics regress upward; rate metrics (anything else, e.g.
	// tuples/s) regress downward.
	cost := metric == "ns/op" || metric == "B/op" || metric == "allocs/op"
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		if match != nil && !match.MatchString(name) {
			continue
		}
		base, ok := old[name]
		if !ok {
			fmt.Fprintf(w, "  new  %-50s %s %.4g (no baseline)\n", name, metric, cur[name])
			continue
		}
		if base == 0 {
			continue
		}
		delta := (cur[name] - base) / base
		bad := delta > threshold
		if !cost {
			bad = delta < -threshold
		}
		verdict := "ok  "
		if bad {
			verdict = "FAIL"
			regressions++
		}
		fmt.Fprintf(w, "  %s %-50s %s %.4g -> %.4g (%+.1f%%)\n", verdict, name, metric, base, cur[name], delta*100)
	}
	return regressions
}

// parseFile extracts the named metric from every benchmark line of a
// `go test -bench` output, averaging repeated runs.
func parseFile(path, metric string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sums := make(map[string]float64)
	counts := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, val, ok := parseLine(sc.Text(), metric)
		if !ok {
			continue
		}
		sums[name] += val
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(sums))
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out, nil
}

// parseLine reads one `BenchmarkName-P  N  <value> <unit> ...` line and
// returns the value carrying the wanted unit. The trailing -P GOMAXPROCS
// suffix is stripped so runs from differently sized machines compare.
func parseLine(line, metric string) (name string, val float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	// fields[1] is the iteration count; value/unit pairs follow.
	for i := 2; i+1 < len(fields); i += 2 {
		if fields[i+1] != metric {
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, false
		}
		return name, v, true
	}
	return "", 0, false
}
