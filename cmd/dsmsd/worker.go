package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
)

// runWorkerCmd starts a cluster worker: a framed-TCP server hosting one
// parallel-stage shard per coordinator deployment. The worker carries no
// configuration of its own beyond its address — the coordinator ships the
// source catalog and the admitted queries' CQL in every deploy payload, and
// the worker recompiles them into the exact plan the coordinator analyzed
// (cluster.PlanFactory).
func runWorkerCmd(args []string) {
	fs := flag.NewFlagSet("dsmsd worker", flag.ExitOnError)
	var (
		addr = fs.String("addr", "localhost:7071", "worker TCP listen address")
		name = fs.String("name", "", "worker name reported to the coordinator (default: the listen address)")
	)
	fs.Parse(args)
	logger := log.New(os.Stdout, "dsmsd-worker: ", log.LstdFlags)
	w, err := cluster.Listen(cluster.WorkerConfig{Addr: *addr, Name: *name, Logf: logger.Printf})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmsd:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Printf("shutting down")
		w.Close()
	}()
	logger.Printf("listening on %s", w.Addr())
	if err := w.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "dsmsd:", err)
		os.Exit(1)
	}
}
