package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/auction"
	"repro/internal/cql"
	"repro/internal/market"
	"repro/internal/server"
)

// splitWorkers parses the -workers list; empty means a purely local serve.
func splitWorkers(list string) []string {
	var out []string
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runServeCmd starts the tenant service plane: the admission auction, the
// staged executor and the billing ledger behind a long-running HTTP API.
// The stream catalog matches the simulation's market feeds — stocks
// (symbol, price, volume) and news (symbol, sentiment) — so the CQL
// tenants submit over HTTP queries the same schemas `dsmsd sim` executes.
func runServeCmd(args []string) {
	fs := flag.NewFlagSet("dsmsd serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "localhost:8080", "HTTP listen address")
		capacity   = fs.Float64("capacity", 60, "server capacity the admission auction packs against")
		mechanism  = fs.String("mechanism", "CAT", "admission mechanism: CAR CAF CAF+ CAT CAT+ GV Two-price")
		seed       = fs.Int64("seed", 7, "auction mechanism seed")
		meterPrice = fs.Float64("meter-price", 0.1, "usage price per unit of measured load per cycle (0 = admission fees only)")
		cycle      = fs.Duration("cycle", 0, "run the admission cycle on this period (0 = only on POST /v1/admission/run)")
		backlog    = fs.Int("backlog", 1024, "per-query result tuples retained for replay to late subscribers")
		workers    = fs.String("workers", "", "comma-separated dsmsd worker addresses; when set, each cycle's parallel stage deploys across them")
		dialWait   = fs.Duration("dial-timeout", 5*time.Second, "per-worker dial budget, connection retries included")
		ckptDir    = fs.String("checkpoint-dir", "", "distributed keyed-state checkpoint directory (with -workers)")
	)
	var ef execFlags
	ef.register(fs)
	fs.Parse(args)
	if ef.executor != "sharded" {
		// The service plane redeploys plans across admission cycles, which
		// only the staged executor supports.
		fmt.Fprintf(os.Stderr, "dsmsd serve: only the sharded (staged) executor is supported, not %q\n", ef.executor)
		os.Exit(1)
	}
	mech, err := auction.ByName(*mechanism, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmsd:", err)
		os.Exit(1)
	}
	logger := log.New(os.Stdout, "dsmsd: ", log.LstdFlags)
	s, err := server.New(server.Config{
		Mechanism:  mech,
		Capacity:   *capacity,
		MeterPrice: *meterPrice,
		Exec:       ef.execConfig(nil),
		Heartbeat:  ef.heartbeat,
		Catalog: cql.Catalog{
			"stocks": {Schema: market.QuoteSchema, Rate: 1},
			"news":   {Schema: market.NewsSchema, Rate: 0.2},
		},
		CyclePeriod:   *cycle,
		Backlog:       *backlog,
		Workers:       splitWorkers(*workers),
		DialTimeout:   *dialWait,
		CheckpointDir: *ckptDir,
		Logf:          logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmsd:", err)
		os.Exit(1)
	}
	defer s.Close()

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("serving on http://%s (capacity %.0f, mechanism %s, meter $%.2f/load, cycle %v)",
		*addr, *capacity, mech.Name(), *meterPrice, *cycle)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dsmsd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "dsmsd: shutdown:", err)
	}
}
