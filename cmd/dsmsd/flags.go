package main

import (
	"flag"

	"repro/internal/engine"
)

// execFlags are the executor knobs shared by every dsmsd subcommand: both
// `sim` and `serve` drive the same staged executor, so the flags that shape
// it — backend choice, shard width, batch size, heartbeat cadence — are
// registered once here and parsed into each subcommand's FlagSet.
type execFlags struct {
	executor      string
	shards        int
	batch         int
	heartbeat     int
	columnar      bool
	stagingBudget int64
	spillDir      string
}

func (f *execFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&f.executor, "executor", "sharded", "execution backend: sharded (staged), runtime, or sync")
	fs.IntVar(&f.shards, "shards", 0, "shard count for the sharded executor (0 = GOMAXPROCS)")
	fs.IntVar(&f.batch, "batch", 64, "tuples per executor batch")
	fs.IntVar(&f.heartbeat, "heartbeat", 0, "sharded executor: emit source punctuation every K batches so quiet exchange shards release mid-run (0 = every batch, negative = disable)")
	fs.BoolVar(&f.columnar, "columnar", false, "push ingress as struct-of-arrays (columnar) batches and run qualified fused chains column-at-a-time (concurrent backends only; sync falls back to rows)")
	fs.Int64Var(&f.stagingBudget, "staging-budget", 0, "bounded staging: byte budget for tuples buffered at exchange merges, transition holds, and loss-intolerant ingress overflow; beyond it tuples spill to disk segments and replay in order (0 = staging off, overflow drops/errors as before)")
	fs.StringVar(&f.spillDir, "spill-dir", "", "parent directory for staging spill segments (default: the system temp dir); a private subdirectory is created and removed on shutdown")
}

// execConfig converts the parsed flags into the engine's shared knob struct.
func (f *execFlags) execConfig(shedder engine.Shedder) engine.ExecConfig {
	return engine.ExecConfig{
		Shards: f.shards, Buf: f.batch, Shedder: shedder, Columnar: f.columnar,
		StagingBudget: f.stagingBudget, SpillDir: f.spillDir,
	}
}
