// Command dsmsd runs an end-to-end multi-day simulation of the paper's DSMS
// cloud center: a population of clients submits continuous queries over
// stock-quote and news streams with daily bids; each day the center runs the
// configured admission auction, transitions the shared engine to the winning
// plan, processes a day of tuples through the goroutine-free deterministic
// dataflow, and bills the winners. The daily report shows admissions,
// revenue, utilization and per-query result counts — the paper's business
// model in motion.
//
// Usage:
//
//	dsmsd [-days N] [-clients N] [-capacity F] [-mechanism CAT] [-seed N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/auction"
	"repro/internal/cloud"
	"repro/internal/market"
	"repro/internal/sched"
	"repro/internal/stream"
)

func main() {
	var (
		days      = flag.Int("days", 5, "number of subscription periods to simulate")
		clients   = flag.Int("clients", 40, "number of client users")
		capacity  = flag.Float64("capacity", 60, "server capacity")
		mechanism = flag.String("mechanism", "CAT", "admission mechanism: CAR CAF CAF+ CAT CAT+ GV Two-price")
		seed      = flag.Int64("seed", 7, "simulation seed")
		tuples    = flag.Int("tuples", 2000, "tuples pushed per stream per day")
	)
	flag.Parse()
	mech, err := auction.ByName(*mechanism, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmsd:", err)
		os.Exit(1)
	}
	if err := run(mech, *days, *clients, *capacity, *seed, *tuples); err != nil {
		fmt.Fprintln(os.Stderr, "dsmsd:", err)
		os.Exit(1)
	}
}

var symbols = []string{"AAA", "BBB", "CCC", "DDD", "EEE", "FFF"}

// clientSpec is one client's recurring query: a template instantiated with
// a symbol and threshold, re-submitted daily with a drifting bid.
type clientSpec struct {
	user      int
	template  int // 0: alert, 1: vwap, 2: correlate
	symbol    string
	threshold float64
	baseBid   float64
}

func run(mech auction.Mechanism, days, clients int, capacity float64, seed int64, tuplesPerDay int) error {
	rng := rand.New(rand.NewSource(seed))
	feed := market.MustFeed(seed, symbols...)
	center := cloud.New(mech, capacity)
	center.DeclareSource("stocks", market.QuoteSchema)
	center.DeclareSource("news", market.NewsSchema)

	specs := make([]clientSpec, clients)
	for i := range specs {
		specs[i] = clientSpec{
			user:      i + 1,
			template:  rng.Intn(3),
			symbol:    symbols[rng.Intn(len(symbols))],
			threshold: 50 + float64(rng.Intn(4))*50,
			baseBid:   5 + rng.Float64()*95,
		}
	}

	fmt.Printf("dsmsd: %d clients, capacity %.0f, mechanism %s\n\n", clients, capacity, mech.Name())
	for day := 0; day < days; day++ {
		for _, spec := range specs {
			// Bids drift day to day: demand shifts, admissions change, the
			// engine transitions.
			bid := spec.baseBid * (0.8 + 0.4*rng.Float64())
			if err := center.Submit(buildSubmission(spec, bid)); err != nil {
				return err
			}
		}
		report, err := center.ClosePeriod()
		if err != nil {
			return err
		}
		pumpDay(center, feed, tuplesPerDay)
		center.Engine().Advance(int64(tuplesPerDay))

		// Execution-layer check: the admitted set must be schedulable.
		schedNote := "schedulable"
		if _, err := sched.ValidateAdmission(report.Outcome, 200, sched.RoundRobin{}); err != nil {
			schedNote = "NOT SCHEDULABLE"
		}
		fmt.Printf("day %d: admitted %d/%d  revenue $%.2f  utilization %.0f%%  (%s)\n",
			day+1, len(report.Admitted), len(report.Admitted)+len(report.Rejected),
			report.Revenue, 100*report.Utilization, schedNote)
		for _, a := range report.Admitted {
			results := len(center.Results(a.Name))
			fmt.Printf("  %-18s user %2d  bid $%6.2f  paid $%6.2f  results %d\n",
				a.Name, a.User, a.Bid, a.Payment, results)
		}
	}
	fmt.Printf("\ntotal revenue: $%.2f\n", center.Ledger().Revenue(-1))
	fmt.Println("top accounts:")
	for _, u := range center.Ledger().TopUsers(5) {
		fmt.Printf("  user %2d: $%.2f\n", u, center.Ledger().Balance(u))
	}
	return nil
}

// buildSubmission instantiates a client's template into operators + deploy
// function. Operator keys encode the full upstream semantics, so identical
// sub-plans are physically shared across clients.
func buildSubmission(spec clientSpec, bid float64) cloud.Submission {
	switch spec.template {
	case 0: // alert: stocks where symbol == S and price > T
		selSym := fmt.Sprintf("sel-sym-%s", spec.symbol)
		selHigh := fmt.Sprintf("%s-price>%.0f", selSym, spec.threshold)
		return cloud.Submission{
			User: spec.user,
			Name: fmt.Sprintf("alert-%d", spec.user),
			Bid:  bid,
			Operators: []cloud.OperatorSpec{
				{Key: selSym, Load: 2},
				{Key: selHigh, Load: 1},
			},
			Deploy: func(reg *cloud.SharedOps) error {
				src, err := reg.Source("stocks")
				if err != nil {
					return err
				}
				sym := reg.Unary(selSym, src, func() stream.Transform {
					s := spec.symbol
					return stream.NewFilter(selSym, 2, stream.FieldEqString(0, s))
				})
				high := reg.Unary(selHigh, sym, func() stream.Transform {
					th := spec.threshold
					return stream.NewFilter(selHigh, 1, stream.FieldCmp(1, stream.Gt, th))
				})
				reg.Sink(high)
				return nil
			},
		}
	case 1: // vwap-ish: avg price over a tumbling window per symbol
		selSym := fmt.Sprintf("sel-sym-%s", spec.symbol)
		avg := fmt.Sprintf("%s-avg20", selSym)
		return cloud.Submission{
			User: spec.user,
			Name: fmt.Sprintf("vwap-%d", spec.user),
			Bid:  bid,
			Operators: []cloud.OperatorSpec{
				{Key: selSym, Load: 2},
				{Key: avg, Load: 3},
			},
			Deploy: func(reg *cloud.SharedOps) error {
				src, err := reg.Source("stocks")
				if err != nil {
					return err
				}
				sym := reg.Unary(selSym, src, func() stream.Transform {
					s := spec.symbol
					return stream.NewFilter(selSym, 2, stream.FieldEqString(0, s))
				})
				out := reg.Unary(avg, sym, func() stream.Transform {
					return stream.MustWindowAgg(avg, 3, stream.WindowSpec{
						Size: 20, Agg: stream.AggAvg, Field: 1, GroupBy: -1,
					})
				})
				reg.Sink(out)
				return nil
			},
		}
	default: // correlate: join high-value trades with news on symbol
		selHigh := fmt.Sprintf("sel-price>%.0f", spec.threshold)
		join := fmt.Sprintf("join-%s-news", selHigh)
		return cloud.Submission{
			User: spec.user,
			Name: fmt.Sprintf("corr-%d", spec.user),
			Bid:  bid,
			Operators: []cloud.OperatorSpec{
				{Key: selHigh, Load: 2},
				{Key: "news-pass", Load: 1},
				{Key: join, Load: 4},
			},
			Deploy: func(reg *cloud.SharedOps) error {
				stocks, err := reg.Source("stocks")
				if err != nil {
					return err
				}
				news, err := reg.Source("news")
				if err != nil {
					return err
				}
				high := reg.Unary(selHigh, stocks, func() stream.Transform {
					th := spec.threshold
					return stream.NewFilter(selHigh, 2, stream.FieldCmp(1, stream.Gt, th))
				})
				pass := reg.Unary("news-pass", news, func() stream.Transform {
					return stream.NewFilter("news-pass", 1, func(stream.Tuple) bool { return true })
				})
				out := reg.Binary(join, high, pass, func() stream.BinaryTransform {
					return stream.NewHashJoin(join, 4, 0, 0, 16)
				})
				reg.Sink(out)
				return nil
			},
		}
	}
}

// pumpDay pushes one day of synthetic market data.
func pumpDay(center *cloud.Center, feed *market.Feed, n int) {
	if center.Engine() == nil {
		return
	}
	for i := 0; i < n; i++ {
		_ = center.Push("stocks", feed.Quote())
		if i%5 == 0 {
			_ = center.Push("news", feed.Headline())
		}
	}
}
