// Command dsmsd is the paper's DSMS cloud center as a runnable daemon, with
// two front ends over the same auction + executor machinery:
//
//	dsmsd sim    [flags]   multi-day closed-loop simulation (the default)
//	dsmsd serve  [flags]   live tenant service plane over HTTP
//	dsmsd worker [flags]   cluster worker hosting remote shards for serve
//
// A bare `dsmsd [flags]` still runs the simulation, so existing invocations
// keep working.
//
// # sim
//
// An end-to-end multi-day simulation of the paper's DSMS cloud center: a
// population of clients submits continuous queries over stock-quote and news
// streams with daily bids; each day the center runs the configured admission
// auction and bills the winners, the daemon compiles the winning queries
// into one shared plan, executes a day of market tuples through the
// configured executor (synchronous engine, concurrent runtime, or the staged
// sharded executor), and feeds the *measured* per-operator costs back into
// the next day's auction — the paper's "load can be reasonably approximated
// by the system", closed as a real loop. The daily report shows admissions,
// revenue, utilization, per-query result counts, and whether the measured
// load was schedulable and met QoS.
//
// The sharded backend accepts every admitted plan: engine.StartStaged
// splits each day's shared plan into a keyed parallel stage (N shard
// runtimes, partitioned on the plan's inferred keys) and a global stage fed
// by timestamp-ordered exchange merges, so global (ungrouped) windows no
// longer force the workload onto a single runtime. Source heartbeats
// (-heartbeat, punctuation through the shard pipelines) keep the exchange
// merges releasing mid-run even when a selective filter or a skewed key
// distribution leaves shards permanently quiet on an edge — so the mid-day
// monitoring samples see the global stage's true load instead of the zero a
// held merge used to report.
//
// When load shedding is enabled (-shed utility|random), the daemon also
// closes the paper's overload loop: each period's measured loads feed a
// shed planner that decides which queries lose tuples — ranked by QoS
// utility slope, or uniformly at random as the control — and the next
// period's executor drops exactly that plan at its source-ingress edges,
// so overload degrades the cheapest utility first instead of stalling the
// market feeds.
//
// With -elastic, the daemon also runs the per-period elasticity controller
// over the staged backend: at each mid-day monitoring sample it compares
// the measured offered load per shard against the -shard-hwm / -shard-lwm
// water marks and the per-shard skew against a 2x threshold, and calls
// engine.Reshard to grow, shrink or rebalance the parallel stage at that
// boundary — keyed operator state moves with its keys, so no tuple is lost
// or duplicated.
//
// # serve
//
// The live service plane: a long-running HTTP/JSON API where tenants
// register, submit CQL query templates with QoS graphs and bids, push
// stream tuples, and receive results over per-query SSE streams while
// admission cycles meter their usage onto the billing ledger. See
// internal/server for the API surface and cmd/dsmsd/README.md for a
// quickstart.
//
// With -workers, serve becomes the coordinator of a distributed deployment:
// each admission cycle's shared plan splits as usual, but the parallel
// stage runs on the listed dsmsd workers over framed TCP while the
// coordinator keeps ingress, the timestamp-ordered exchange merges and the
// global stage local (see internal/cluster). A worker that dies mid-period
// is recovered onto the survivors from the coordinator's replay log; a
// serve with no reachable workers degrades to the local staged executor.
//
// # worker
//
// One cluster worker: a TCP server that hosts a parallel-stage shard per
// coordinator deployment. Workers are stateless between deployments — the
// coordinator ships the catalog and the winning queries' CQL in the deploy
// payload and the worker recompiles them, so a worker needs nothing but an
// address. See cmd/dsmsd/README.md for a two-worker quickstart.
package main

import (
	"fmt"
	"os"
	"strings"
)

func main() {
	args := os.Args[1:]
	// Back-compat: a bare flag list (or nothing) is the simulation, which
	// was the whole program before the service plane existed.
	cmd := "sim"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "sim":
		runSimCmd(args)
	case "serve":
		runServeCmd(args)
	case "worker":
		runWorkerCmd(args)
	default:
		fmt.Fprintf(os.Stderr, "dsmsd: unknown command %q (want sim, serve or worker)\n", cmd)
		os.Exit(2)
	}
}
