package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"repro/internal/auction"
	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/market"
	"repro/internal/qos"
	"repro/internal/sched"
	"repro/internal/shed"
	"repro/internal/staging"
	"repro/internal/stream"
)

// runSimCmd parses the simulation's flags and runs the multi-day closed
// loop. It is the whole pre-service-plane dsmsd, verbatim: same flags, same
// defaults, same per-day log lines.
func runSimCmd(args []string) {
	fs := flag.NewFlagSet("dsmsd sim", flag.ExitOnError)
	var (
		days      = fs.Int("days", 5, "number of subscription periods to simulate")
		clients   = fs.Int("clients", 40, "number of client users")
		capacity  = fs.Float64("capacity", 60, "server capacity")
		mechanism = fs.String("mechanism", "CAT", "admission mechanism: CAR CAF CAF+ CAT CAT+ GV Two-price")
		seed      = fs.Int64("seed", 7, "simulation seed")
		tuples    = fs.Int("tuples", 2000, "tuples pushed per stream per day")
		shedMode  = fs.String("shed", "off", "load shedding under overload: off, utility (QoS slope) or random")
		rate      = fs.Float64("rate", 1, "input tuples per tick; the auction prices loads at rate 1, so >1 overloads the executed period")
		replan    = fs.Int("replan", 4, "with -shed or -elastic: sample measured stats this many times within each day (0 = plan only at period start)")
		elastic   = fs.Bool("elastic", false, "grow/shrink/rebalance the staged executor's shards at period boundaries from measured load and skew")
		shardHWM  = fs.Float64("shard-hwm", 8, "with -elastic: grow when measured offered load per shard exceeds this")
		shardLWM  = fs.Float64("shard-lwm", 1, "with -elastic: shrink when measured offered load per shard falls below this")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) to profile the executing days live")
	)
	var ef execFlags
	ef.register(fs)
	fs.Parse(args)
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dsmsd: pprof server:", err)
			}
		}()
		fmt.Printf("dsmsd: pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	mech, err := auction.ByName(*mechanism, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmsd:", err)
		os.Exit(1)
	}
	switch ef.executor {
	case "sharded", "runtime", "sync":
	default:
		// Reject up front: by the time the first period needs an executor,
		// the auction has already closed and billed clients.
		fmt.Fprintf(os.Stderr, "dsmsd: unknown executor %q (want sharded, runtime or sync)\n", ef.executor)
		os.Exit(1)
	}
	switch *shedMode {
	case "off", "utility", "random":
	default:
		fmt.Fprintf(os.Stderr, "dsmsd: unknown shed policy %q (want off, utility or random)\n", *shedMode)
		os.Exit(1)
	}
	if *rate <= 0 {
		fmt.Fprintln(os.Stderr, "dsmsd: -rate must be positive")
		os.Exit(1)
	}
	if *replan < 0 {
		fmt.Fprintln(os.Stderr, "dsmsd: -replan must be >= 0")
		os.Exit(1)
	}
	if *elastic && ef.executor != "sharded" {
		fmt.Fprintln(os.Stderr, "dsmsd: -elastic requires the sharded (staged) executor")
		os.Exit(1)
	}
	if *shardLWM >= *shardHWM {
		fmt.Fprintln(os.Stderr, "dsmsd: -shard-lwm must be below -shard-hwm")
		os.Exit(1)
	}
	cfg := daemonConfig{
		days: *days, clients: *clients, capacity: *capacity, seed: *seed,
		tuplesPerDay: *tuples, exec: ef, shed: *shedMode, rate: *rate,
		replan: *replan, elastic: *elastic, shardHWM: *shardHWM, shardLWM: *shardLWM,
	}
	if err := run(mech, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dsmsd:", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	days, clients int
	capacity      float64
	seed          int64
	tuplesPerDay  int
	exec          execFlags
	shed          string
	rate          float64
	replan        int
	elastic       bool
	shardHWM      float64
	shardLWM      float64
}

// dayTicks is the metering-clock span of one executed day: pushing
// tuplesPerDay tuples over fewer ticks than tuples models a feed arriving
// faster than the unit rate the auction priced, which is what overloads the
// executor and engages the shedder.
func (c daemonConfig) dayTicks() int64 {
	ticks := int64(float64(c.tuplesPerDay) / c.rate)
	if ticks < 1 {
		ticks = 1
	}
	return ticks
}

var symbols = []string{"AAA", "BBB", "CCC", "DDD", "EEE", "FFF"}

// clientSpec is one client's recurring query: a template instantiated with
// a symbol and threshold, re-submitted daily with a drifting bid.
type clientSpec struct {
	user      int
	template  int // 0: alert, 1: vwap, 2: correlate
	symbol    string
	threshold float64
	baseBid   float64
}

// defaultQoS is the latency-utility graph applied to every admitted query:
// full utility through 2 ticks of queueing delay, decaying to zero at 20.
var defaultQoS = qos.MustGraph(
	qos.Point{Latency: 2, Utility: 1},
	qos.Point{Latency: 20, Utility: 0},
)

func run(mech auction.Mechanism, cfg daemonConfig) error {
	rng := rand.New(rand.NewSource(cfg.seed))
	feed := market.MustFeed(cfg.seed, symbols...)
	center := cloud.New(mech, cfg.capacity)
	center.DeclareSource("stocks", market.QuoteSchema)
	center.DeclareSource("news", market.NewsSchema)

	specs := make([]clientSpec, cfg.clients)
	for i := range specs {
		specs[i] = clientSpec{
			user:      i + 1,
			template:  rng.Intn(3),
			symbol:    symbols[rng.Intn(len(symbols))],
			threshold: 50 + float64(rng.Intn(4))*50,
			baseBid:   5 + rng.Float64()*95,
		}
	}

	nShards := cfg.exec.shards
	if nShards <= 0 {
		nShards = runtime.GOMAXPROCS(0)
	}
	// shedder, when enabled, is the second feedback loop: measured loads in,
	// per-query drop ratios out, installed in every day's executor. The one
	// instance persists across days so a plan computed from day N shapes day
	// N+1 — same cadence as the measured-load repricing below.
	var shedder *shed.Shedder
	switch cfg.shed {
	case "utility":
		shedder = shed.New(shed.UtilitySlope{})
	case "random":
		shedder = shed.New(shed.Random{})
	}
	fmt.Printf("dsmsd: %d clients, capacity %.0f, mechanism %s, executor %s, shedding %s\n\n",
		cfg.clients, cfg.capacity, mech.Name(), describeExecutor(cfg.exec.executor, nShards), cfg.shed)

	// measured carries per-operator loads from one day's execution into the
	// next day's auction: the closed monitoring-pricing loop.
	measured := make(map[string]float64)
	for day := 0; day < cfg.days; day++ {
		// Full submissions (with Deploy) stay with the daemon, which owns
		// execution; the center sees auction-only copies and handles
		// admission and billing.
		full := make(map[string]cloud.Submission, len(specs))
		for _, spec := range specs {
			// Bids drift day to day: demand shifts, admissions change, the
			// executed plan changes with them.
			bid := spec.baseBid * (0.8 + 0.4*rng.Float64())
			sub := reprice(buildSubmission(spec, bid), measured)
			full[sub.Name] = sub
			auctionOnly := sub
			auctionOnly.Deploy = nil
			if err := center.Submit(auctionOnly); err != nil {
				return err
			}
		}
		report, err := center.ClosePeriod()
		if err != nil {
			return err
		}

		// Sanity check at declared loads: a correct mechanism never admits
		// an unschedulable set.
		schedNote := "schedulable"
		if _, err := sched.ValidateAdmission(report.Outcome, 200, sched.RoundRobin{}); err != nil {
			schedNote = "NOT SCHEDULABLE"
		}
		fmt.Printf("day %d: admitted %d/%d  revenue $%.2f  utilization %.0f%%  (%s)\n",
			day+1, len(report.Admitted), len(report.Admitted)+len(report.Rejected),
			report.Revenue, 100*report.Utilization, schedNote)

		if len(report.Admitted) == 0 {
			continue
		}

		// Compile the winners into one shared plan and execute the day.
		winners := make([]cloud.Submission, 0, len(report.Admitted))
		for _, a := range report.Admitted {
			winners = append(winners, full[a.Name])
		}
		// Replan shedding for the set about to run, before execution — a
		// stale plan from yesterday's (different) admitted set must never
		// shed a winner set that fits.
		if shedder != nil {
			planShedding(shedder, cfg, winners, measured)
		}
		exec, err := startExecutor(cfg, nShards, center.Sources(), winners, shedder)
		if err != nil {
			return err
		}
		var split *engine.StageSplit
		var staged *engine.Staged
		if st, ok := exec.(*engine.Staged); ok {
			staged = st
			split = st.Split()
			fmt.Printf("  stage split: %s\n", split)
		}
		// Mid-period monitoring: sample measured stats -replan times within
		// the day, update the shed plan (so a burst inside a period is shed
		// before the day ends — the executors re-resolve their cached ratios
		// when the plan generation moves) and drive the elasticity
		// controller (grow/shrink/rebalance the staged shards at the sample
		// boundary from offered load per shard and measured skew).
		var advanced int64
		var progress func(int)
		if (shedder != nil || (cfg.elastic && staged != nil)) && cfg.replan > 0 {
			interval := cfg.tuplesPerDay / (cfg.replan + 1)
			if interval < 1 {
				interval = 1
			}
			next := interval
			progress = func(pushed int) {
				if pushed < next || pushed >= cfg.tuplesPerDay {
					return
				}
				next += interval
				ticksSoFar := int64(float64(pushed) / cfg.rate)
				if ticksSoFar <= advanced {
					return
				}
				exec.Advance(ticksSoFar - advanced)
				advanced = ticksSoFar
				// SettleStats, not Stats: the concurrent executors meter
				// asynchronously, and the simulated day outruns their
				// operator goroutines.
				loads := engine.SettleStats(exec)
				// Mid-run per-stage load: with punctuation flowing, a quiet
				// exchange edge no longer hides the global stage's work from
				// mid-day samples — log what the replan decisions now see.
				// (Before heartbeats, this line read global 0.00 on any
				// quiet-edge day until Stop.)
				if split != nil && !split.FullyParallel() {
					par, glob := stageLoads(split, loads)
					fmt.Printf("  mid-day stage load @%d tuples: parallel %.2f, global %.2f\n", pushed, par, glob)
				}
				if shedder != nil {
					graphs := make(map[string]*qos.Graph)
					for name := range qos.QueryOperators(loads) {
						graphs[name] = defaultQoS
					}
					queries := shed.QueriesFromLoads(loads, graphs, advanced)
					drops := shedder.Update(cfg.capacity, shed.OfferedLoad(loads), queries)
					fmt.Printf("  mid-day replan @%d tuples: offered %.2f/%.0f, %d queries shedding\n",
						pushed, shed.OfferedLoad(loads), cfg.capacity, len(drops))
				}
				if cfg.elastic && staged != nil {
					maybeReshard(staged, loads, cfg, pushed)
				}
			}
		}
		// Layout reports what the pump actually did: -columnar on a backend
		// without the columnar ingress (sync) silently falls back to rows.
		_, colCapable := exec.(engine.OwnedColBatchPusher)
		columnar := cfg.exec.columnar && colCapable
		layout := "row"
		if columnar {
			layout = "columnar"
		}
		var memBefore, memAfter runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		dayStart := time.Now()
		batches, err := pumpDay(exec, feed, cfg.tuplesPerDay, cfg.exec.batch, columnar, progress)
		if err != nil {
			return err
		}
		exec.Advance(cfg.dayTicks() - advanced)
		exec.Stop()
		elapsed := time.Since(dayStart).Seconds()
		runtime.ReadMemStats(&memAfter)
		// One line of hot-path health per executed day: push rate through the
		// day (Stop's drain included, so the whole dataflow is accounted) and
		// heap allocations per pushed tuple — the number batch pooling and
		// operator fusion exist to hold down.
		dayTuples := cfg.tuplesPerDay + (cfg.tuplesPerDay+4)/5
		fmt.Printf("  day throughput: %d %s batches in %.2fs — %.0f batches/s, %.0f tuples/s, %.1f heap allocs/tuple\n",
			batches, layout, elapsed, float64(batches)/elapsed, float64(dayTuples)/elapsed,
			float64(memAfter.Mallocs-memBefore.Mallocs)/float64(dayTuples))
		// With -staging-budget set, one line of staging health per day: how
		// close the resident buffers came to the budget, and how much went
		// through the spill path instead of being dropped.
		if sg, ok := exec.(interface{ StagingStats() (staging.Stats, bool) }); ok {
			if ss, on := sg.StagingStats(); on {
				fmt.Printf("  staging: resident peak %dB of %dB budget, spilled %dB in %d segments (%d tuples), %d replays\n",
					ss.ResidentPeakBytes, ss.BudgetBytes, ss.SpilledBytes, ss.Segments, ss.SpilledTuples, ss.Replays)
			}
		}

		// Feed the measured loads forward and judge the executed period. The
		// auction prices demand, so it sees the OFFERED load — shed tuples'
		// cost included. Pricing the post-shed residue would under-declare
		// exactly the operators the shedder throttled and re-admit an
		// over-capacity set next day.
		loads := exec.Stats()
		for _, nl := range loads {
			if nl.Tuples+nl.ShedTuples > 0 {
				measured[nl.Name] = nl.OfferedLoad
			}
		}
		utility := evaluateQoS(cfg.capacity, loads)
		for _, a := range report.Admitted {
			fmt.Printf("  %-18s user %2d  bid $%6.2f  paid $%6.2f  results %d\n",
				a.Name, a.User, a.Bid, a.Payment, len(exec.Results(a.Name)))
		}
		fmt.Printf("  measured: %d operators, total load %.2f/%.0f (offered %.2f), mean QoS utility %.2f\n",
			len(loads), shed.ExecutedLoad(loads), cfg.capacity, shed.OfferedLoad(loads), utility)
		if split != nil && !split.FullyParallel() {
			par, glob := stageLoads(split, loads)
			fmt.Printf("  per-stage load: parallel %.2f, global %.2f\n", par, glob)
		}

		if shedder != nil {
			reportShedding(loads)
		}
	}
	fmt.Printf("\ntotal revenue: $%.2f\n", center.Ledger().Revenue(-1))
	fmt.Println("top accounts:")
	for _, u := range center.Ledger().TopUsers(5) {
		fmt.Printf("  user %2d: $%.2f\n", u, center.Ledger().Balance(u))
	}
	return nil
}

// stageLoads splits measured per-node loads by the stage each node runs in.
func stageLoads(split *engine.StageSplit, loads []engine.NodeLoad) (parallel, global float64) {
	for _, nl := range loads {
		if split.Global[nl.ID] {
			global += nl.Load
		} else {
			parallel += nl.Load
		}
	}
	return parallel, global
}

func describeExecutor(kind string, shards int) string {
	if kind == "sharded" {
		return fmt.Sprintf("sharded×%d", shards)
	}
	return kind
}

// startExecutor compiles the winners and starts the configured backend with
// the (possibly nil) shedder installed. The sharded backend is the staged
// executor: every admitted plan runs on it unconditionally — plans with
// global (ungrouped) operators split into a keyed parallel stage and a
// global stage connected by exchange edges, and the partition keys are
// derived from the plan's own GroupBy/JoinOn metadata rather than assumed
// to be field 0.
func startExecutor(cfg daemonConfig, nShards int, sources []cloud.SourceDecl, winners []cloud.Submission, shedder *shed.Shedder) (engine.Executor, error) {
	factory := func() (*engine.Plan, error) { return cloud.CompilePlan(sources, winners) }
	// A typed-nil *shed.Shedder must become a true nil interface, or the
	// executors would take the shedding path and call methods on nil.
	var hook engine.Shedder
	if shedder != nil {
		hook = shedder
	}
	ec := cfg.exec.execConfig(hook)
	switch cfg.exec.executor {
	case "sharded":
		ec.Shards = nShards
		return engine.StartStaged(factory, engine.StagedConfig{ExecConfig: ec, Heartbeat: cfg.exec.heartbeat})
	case "runtime":
		plan, err := factory()
		if err != nil {
			return nil, err
		}
		ec.Shards = 0
		return engine.StartRuntime(plan, engine.RuntimeConfig{ExecConfig: ec})
	case "sync":
		plan, err := factory()
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(plan)
		if err != nil {
			return nil, err
		}
		eng.SetShedder(hook)
		return eng, nil
	default:
		return nil, fmt.Errorf("unknown executor %q (want sharded, runtime or sync)", cfg.exec.executor)
	}
}

// maybeReshard is the per-period elasticity controller: from the settled
// loads it derives the offered load per parallel shard and the per-shard
// executed-load skew, and reshapes the staged executor at this boundary —
// grow (double, capped at max(4, twice GOMAXPROCS)) when a shard carries
// more offered load than the high-water mark, shrink (halve) when it carries
// less than the low-water mark, and rebalance at the same width when one
// shard executes more than twice its fair share. Decisions (and refusals,
// e.g. an operator without state movement) are logged like shed decisions.
func maybeReshard(staged *engine.Staged, loads []engine.NodeLoad, cfg daemonConfig, pushed int) {
	n := staged.NumShards()
	if n == 0 {
		return
	}
	split := staged.Split()
	var parallelOffered float64
	for _, nl := range loads {
		if !split.Global[nl.ID] {
			parallelOffered += nl.OfferedLoad
		}
	}
	perShard := parallelOffered / float64(n)
	var maxLoad, totalLoad float64
	for _, sl := range staged.ShardStats() {
		var l float64
		for _, nl := range sl.Loads {
			l += nl.Load
		}
		if l > maxLoad {
			maxLoad = l
		}
		totalLoad += l
	}
	skew := 1.0
	if totalLoad > 0 {
		skew = maxLoad * float64(n) / totalLoad
	}
	// Cap growth at twice the core count, but never below 4 so elasticity
	// stays demonstrable on small machines.
	maxShards := 2 * runtime.GOMAXPROCS(0)
	if maxShards < 4 {
		maxShards = 4
	}
	target, reason := n, ""
	switch {
	case perShard > cfg.shardHWM && n < maxShards:
		target = 2 * n
		if target > maxShards {
			target = maxShards
		}
		reason = "grow"
	case perShard < cfg.shardLWM && n > 1:
		target = (n + 1) / 2
		reason = "shrink"
	case skew > 2 && n > 1:
		reason = "rebalance"
	default:
		return
	}
	if err := staged.Reshard(target); err != nil {
		fmt.Printf("  reshard @%d tuples: %s %d→%d refused: %v\n", pushed, reason, n, target, err)
		return
	}
	fmt.Printf("  reshard @%d tuples: %s %d→%d shards (offered %.2f/shard vs hwm %.1f lwm %.1f, skew %.1fx)\n",
		pushed, reason, n, target, perShard, cfg.shardHWM, cfg.shardLWM, skew)
}

// planShedding replans for the winner set about to execute. Expected
// per-operator load is the auction's declared value — already
// measurement-informed for operators that ran before (reprice) — scaled by
// -rate for never-measured operators, whose declarations assume a
// unit-rate feed. This is exactly the gap shedding covers that admission
// cannot: the auction admits on declared loads, and the shedder absorbs
// the surplus a faster-than-declared feed delivers before any measurement
// exists. Once every operator is measured, repricing lets the auction
// regulate and the plan stays empty. The planned ratios are printed so
// utility-slope and random runs compare day by day.
func planShedding(shedder *shed.Shedder, cfg daemonConfig, winners []cloud.Submission, measured map[string]float64) {
	// Expected load per operator key; shared operators count once.
	expected := make(map[string]float64)
	for _, w := range winners {
		for _, op := range w.Operators {
			if _, ok := measured[op.Key]; ok {
				expected[op.Key] = op.Load
			} else {
				expected[op.Key] = op.Load * cfg.rate
			}
		}
	}
	offered := 0.0
	for _, load := range expected {
		offered += load
	}
	queries := make([]shed.Query, 0, len(winners))
	for _, w := range winners {
		cost := 0.0
		for _, op := range w.Operators {
			cost += expected[op.Key]
		}
		queries = append(queries, shed.Query{
			Name:  w.Name,
			Graph: defaultQoS,
			// Every query's ingress sees the full feed rate; its per-tuple
			// cost is its expected load spread over that rate, keeping
			// sheddable = Rate × CostPerTuple = the query's expected load.
			Rate:         cfg.rate,
			CostPerTuple: cost / cfg.rate,
		})
	}
	drops := shedder.Update(cfg.capacity, offered, queries)
	if len(drops) == 0 {
		fmt.Printf("  shed plan: expected load %.2f fits capacity, no shedding today\n", offered)
		return
	}
	for _, d := range drops {
		fmt.Printf("  shed plan: %s\n", d)
	}
}

// reportShedding logs what the finished day actually shed.
func reportShedding(loads []engine.NodeLoad) {
	var shedTuples int64
	var shedUtil float64
	for _, nl := range loads {
		shedTuples += nl.ShedTuples
		shedUtil += nl.ShedUtilityLost
	}
	if shedTuples > 0 {
		fmt.Printf("  shed: %d tuples dropped, %.1f utility lost\n", shedTuples, shedUtil)
	}
}

// reprice replaces each operator's declared load with the previous day's
// measured value where one exists — the feedback step the paper assumes the
// system performs for its clients.
func reprice(s cloud.Submission, measured map[string]float64) cloud.Submission {
	ops := append([]cloud.OperatorSpec(nil), s.Operators...)
	for i, op := range ops {
		if m, ok := measured[op.Key]; ok && m > 0 {
			ops[i].Load = m
		}
	}
	s.Operators = ops
	return s
}

// pumpDay pushes one day of synthetic market data in batches and returns how
// many batches it pushed. The progress callback, when non-nil, is invoked
// after every pushed quote with the running count — the hook mid-period shed
// replanning samples on.
//
// On backends offering the zero-copy ingress (engine.OwnedBatchPusher) the
// pump runs the fully recycled loop: each batch buffer is leased from the
// engine's pool, filled, and pushed owned — no ingress copy, and the buffer
// re-enters the pool once the dataflow is done with it. The synchronous
// engine keeps the plain PushBatch path with one reused local buffer.
//
// With columnar set (and a backend offering engine.OwnedColBatchPusher) the
// pump leases struct-of-arrays batches instead: tuples are unboxed into
// typed columns at the feed boundary, so qualified fused chains downstream
// never see a boxed row at all.
func pumpDay(exec engine.Executor, feed *market.Feed, n, batch int, columnar bool, progress func(pushed int)) (batches int, err error) {
	if batch < 1 {
		batch = 1
	}
	if columnar {
		if colOwner, ok := exec.(engine.OwnedColBatchPusher); ok {
			return pumpDayColumnar(colOwner, feed, n, batch, progress)
		}
	}
	owner, owned := exec.(engine.OwnedBatchPusher)
	lease := func() []stream.Tuple {
		if owned {
			return engine.GetBatch(batch)
		}
		return make([]stream.Tuple, 0, batch)
	}
	stocks := lease()
	news := lease()
	flush := func(source string, pending *[]stream.Tuple) error {
		if len(*pending) == 0 {
			return nil
		}
		batches++
		if owned {
			err := owner.PushOwnedBatch(source, *pending)
			if err != nil {
				// Rejected whole: the buffer is still ours to recycle.
				engine.PutBatch(*pending)
			}
			*pending = lease()
			return err
		}
		err := exec.PushBatch(source, *pending)
		*pending = (*pending)[:0]
		return err
	}
	for i := 0; i < n; i++ {
		stocks = append(stocks, feed.Quote())
		if len(stocks) == batch {
			if err := flush("stocks", &stocks); err != nil {
				return batches, err
			}
		}
		if i%5 == 0 {
			news = append(news, feed.Headline())
			if len(news) == batch {
				if err := flush("news", &news); err != nil {
					return batches, err
				}
			}
		}
		if progress != nil {
			progress(i + 1)
		}
	}
	if err := flush("stocks", &stocks); err != nil {
		return batches, err
	}
	if err := flush("news", &news); err != nil {
		return batches, err
	}
	if owned {
		// The final flushes leased replacement buffers nothing will fill.
		engine.PutBatch(stocks)
		engine.PutBatch(news)
	}
	return batches, nil
}

// pumpDayColumnar is pumpDay on the struct-of-arrays ingress: batches are
// leased per layout class from the engine's column pools, each feed tuple is
// unboxed into typed columns as it arrives, and the filled batch is pushed
// owned — the dataflow recycles it when done.
func pumpDayColumnar(owner engine.OwnedColBatchPusher, feed *market.Feed, n, batch int, progress func(pushed int)) (batches int, err error) {
	stocks := engine.GetColBatch(market.QuoteSchema, batch)
	news := engine.GetColBatch(market.NewsSchema, batch)
	flush := func(source string, pending **stream.ColBatch, schema *stream.Schema) error {
		if (*pending).Len() == 0 {
			return nil
		}
		batches++
		err := owner.PushOwnedColBatch(source, *pending)
		if err != nil {
			// Rejected whole: the batch is still ours to recycle.
			engine.PutColBatch(*pending)
		}
		*pending = engine.GetColBatch(schema, batch)
		return err
	}
	for i := 0; i < n; i++ {
		stocks.AppendTuple(feed.Quote())
		if stocks.Len() == batch {
			if err := flush("stocks", &stocks, market.QuoteSchema); err != nil {
				return batches, err
			}
		}
		if i%5 == 0 {
			news.AppendTuple(feed.Headline())
			if news.Len() == batch {
				if err := flush("news", &news, market.NewsSchema); err != nil {
					return batches, err
				}
			}
		}
		if progress != nil {
			progress(i + 1)
		}
	}
	if err := flush("stocks", &stocks, market.QuoteSchema); err != nil {
		return batches, err
	}
	if err := flush("news", &news, market.NewsSchema); err != nil {
		return batches, err
	}
	// The final flushes leased replacement batches nothing will fill.
	engine.PutColBatch(stocks)
	engine.PutColBatch(news)
	return batches, nil
}

// evaluateQoS simulates the measured operator loads under round-robin
// scheduling and returns the mean QoS utility across admitted queries
// (0 when the measured load is not schedulable).
func evaluateQoS(capacity float64, loads []engine.NodeLoad) float64 {
	report, err := sched.ValidateMeasured(capacity, loads, 200, sched.RoundRobin{})
	if err != nil {
		return 0
	}
	queryOps := qos.QueryOperators(loads)
	graphs := make(map[string]*qos.Graph, len(queryOps))
	for name := range queryOps {
		graphs[name] = defaultQoS
	}
	evaluated, err := qos.Evaluate(report, graphs, queryOps)
	if err != nil || len(evaluated) == 0 {
		return 0
	}
	total := 0.0
	for _, q := range evaluated {
		total += q.Utility
	}
	return total / float64(len(evaluated))
}

// buildSubmission instantiates a client's template into operators + deploy
// function. Operator keys encode the full upstream semantics, so identical
// sub-plans are physically shared across clients; keys double as the
// operator names the executor reports in Stats, which is what lets measured
// loads flow back into next-day submissions by key.
func buildSubmission(spec clientSpec, bid float64) cloud.Submission {
	switch spec.template {
	case 0: // alert: stocks where symbol == S and price > T
		selSym := fmt.Sprintf("sel-sym-%s", spec.symbol)
		selHigh := fmt.Sprintf("%s-price>%.0f", selSym, spec.threshold)
		return cloud.Submission{
			User: spec.user,
			Name: fmt.Sprintf("alert-%d", spec.user),
			Bid:  bid,
			Operators: []cloud.OperatorSpec{
				{Key: selSym, Load: 2},
				{Key: selHigh, Load: 1},
			},
			Deploy: func(reg *cloud.SharedOps) error {
				src, err := reg.Source("stocks")
				if err != nil {
					return err
				}
				sym := reg.Unary(selSym, src, func() stream.Transform {
					s := spec.symbol
					return stream.NewFilter(selSym, 2, stream.FieldEqString(0, s))
				})
				high := reg.Unary(selHigh, sym, func() stream.Transform {
					th := spec.threshold
					return stream.NewFilter(selHigh, 1, stream.FieldCmp(1, stream.Gt, th))
				})
				reg.Sink(high)
				return nil
			},
		}
	case 1: // vwap-ish: avg price over a tumbling window per symbol
		selSym := fmt.Sprintf("sel-sym-%s", spec.symbol)
		avg := fmt.Sprintf("%s-avg20", selSym)
		return cloud.Submission{
			User: spec.user,
			Name: fmt.Sprintf("vwap-%d", spec.user),
			Bid:  bid,
			Operators: []cloud.OperatorSpec{
				{Key: selSym, Load: 2},
				{Key: avg, Load: 3},
			},
			Deploy: func(reg *cloud.SharedOps) error {
				src, err := reg.Source("stocks")
				if err != nil {
					return err
				}
				sym := reg.Unary(selSym, src, func() stream.Transform {
					s := spec.symbol
					return stream.NewFilter(selSym, 2, stream.FieldEqString(0, s))
				})
				out := reg.Unary(avg, sym, func() stream.Transform {
					return stream.MustWindowAgg(avg, 3, stream.WindowSpec{
						Size: 20, Agg: stream.AggAvg, Field: 1, GroupBy: -1,
					})
				})
				reg.Sink(out)
				return nil
			},
		}
	default: // correlate: join high-value trades with news on symbol
		selHigh := fmt.Sprintf("sel-price>%.0f", spec.threshold)
		join := fmt.Sprintf("join-%s-news", selHigh)
		return cloud.Submission{
			User: spec.user,
			Name: fmt.Sprintf("corr-%d", spec.user),
			Bid:  bid,
			Operators: []cloud.OperatorSpec{
				{Key: selHigh, Load: 2},
				{Key: "news-pass", Load: 1},
				{Key: join, Load: 4},
			},
			Deploy: func(reg *cloud.SharedOps) error {
				stocks, err := reg.Source("stocks")
				if err != nil {
					return err
				}
				news, err := reg.Source("news")
				if err != nil {
					return err
				}
				high := reg.Unary(selHigh, stocks, func() stream.Transform {
					th := spec.threshold
					return stream.NewFilter(selHigh, 2, stream.FieldCmp(1, stream.Gt, th))
				})
				pass := reg.Unary("news-pass", news, func() stream.Transform {
					return stream.NewFilter("news-pass", 1, func(stream.Tuple) bool { return true })
				})
				out := reg.Binary(join, high, pass, func() stream.BinaryTransform {
					return stream.NewHashJoin(join, 4, 0, 0, 16)
				})
				reg.Sink(out)
				return nil
			},
		}
	}
}
