// Command auctionsim regenerates the paper's evaluation: the Figure 4
// sharing sweeps (admission rate, total user payoff, profit at four
// capacities, utilization), the Figure 5 manipulation study, the Table IV
// runtime comparison, and the Table I property matrix.
//
// By default it runs a quick configuration whose curves have the paper's
// shape in seconds; -full runs the paper's scale (50 sets × 2000 queries ×
// degrees 1..60 — expect a long run dominated by CAF+/CAT+, exactly as
// Table IV predicts).
//
// Usage:
//
//	auctionsim [-full] [-sets N] [-queries N] [-csv] [-experiment name]
//
// Experiments: fig4a fig4b fig4c fig4d fig4e fig4f fig5 table1 table4
// utilization efficiency all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	var (
		full       = flag.Bool("full", false, "run the paper's full scale (50 sets, 2000 queries, degrees 1..60)")
		sets       = flag.Int("sets", 0, "override number of workload sets")
		queries    = flag.Int("queries", 0, "override queries per instance")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plot       = flag.Bool("plot", false, "also render ASCII charts of each figure")
		experiment = flag.String("experiment", "all", "which experiment to run")
		seed       = flag.Int64("seed", 42, "seed for randomized mechanisms")
		workers    = flag.Int("workers", runtime.NumCPU(), "parallel workload sets per sweep")
	)
	flag.Parse()

	cfg := experiments.QuickConfig()
	if *full {
		cfg = experiments.PaperConfig()
	}
	if *sets > 0 {
		cfg.Sets = *sets
	}
	if *queries > 0 {
		cfg.NumQueries = *queries
	}
	cfg.Workers = *workers

	if err := run(cfg, *experiment, *csv, *plot, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "auctionsim:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, experiment string, csv, plot bool, seed int64) error {
	want := func(name string) bool {
		return experiment == "all" || strings.EqualFold(experiment, name)
	}
	emit := func(title string, s *metrics.Series) {
		fmt.Printf("== %s ==\n", title)
		if csv {
			fmt.Print(s.CSV())
		} else {
			fmt.Print(s.Table())
		}
		if plot {
			fmt.Println()
			fmt.Print(s.Plot(64, 16))
		}
		fmt.Println()
	}

	// Figures 4(a), 4(b), 4(e) and the utilization observation all use
	// capacity 15,000; run that sweep once.
	needs15k := want("fig4a") || want("fig4b") || want("fig4e") || want("utilization")
	if needs15k {
		res, err := experiments.SharingSweep(cfg, experiments.Mechanisms(seed), cfg.ScaleCapacity(15000))
		if err != nil {
			return err
		}
		if want("fig4a") {
			emit("Figure 4(a): admission rate (%), capacity 15,000-equivalent", res.Admission)
		}
		if want("fig4b") {
			emit("Figure 4(b): total user payoff, capacity 15,000-equivalent", res.Payoff)
		}
		if want("fig4e") {
			emit("Figure 4(e): profit, capacity 15,000-equivalent", res.Profit)
		}
		if want("utilization") {
			emit("Section VI-B: utilization (%), capacity 15,000-equivalent", res.Utilization)
		}
	}
	profileCaps := []struct {
		name     string
		capacity float64
	}{
		{"fig4c", 5000},
		{"fig4d", 10000},
		{"fig4f", 20000},
	}
	for _, pc := range profileCaps {
		if !want(pc.name) {
			continue
		}
		res, err := experiments.SharingSweep(cfg, experiments.Mechanisms(seed), cfg.ScaleCapacity(pc.capacity))
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("Figure 4(%s): profit, capacity %.0f-equivalent", pc.name[4:], pc.capacity), res.Profit)
	}

	if want("fig5") {
		// The paper plots Figure 5 at capacity 15,000; a binding capacity
		// (5000-equivalent) keeps liars relevant across the whole sharing
		// axis, which is where the manipulation effect lives.
		res, err := experiments.ManipulationSweep(cfg, cfg.ScaleCapacity(5000), seed)
		if err != nil {
			return err
		}
		emit("Figure 5: profit under strategic bidding, capacity 5000-equivalent", res.Profit)
	}

	if want("table4") {
		degree := cfg.Degrees[len(cfg.Degrees)-1]
		rows, err := experiments.RuntimeTable(cfg, cfg.ScaleCapacity(15000), degree, seed)
		if err != nil {
			return err
		}
		fmt.Println("== Table IV: mean auction runtime (ms) ==")
		table := [][]string{{"mechanism", "ms/run", "runs"}}
		for _, r := range rows {
			table = append(table, []string{r.Mechanism, fmt.Sprintf("%.3f", r.Millis), fmt.Sprintf("%d", r.Runs)})
		}
		fmt.Print(metrics.Render(table))
		fmt.Println()
	}

	if want("efficiency") {
		rows, err := experiments.EfficiencyTable(40, seed)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: social-welfare efficiency vs exhaustive OPT_W ==")
		table := [][]string{{"mechanism", "mean", "min"}}
		for _, r := range rows {
			table = append(table, []string{r.Mechanism, fmt.Sprintf("%.3f", r.Mean), fmt.Sprintf("%.3f", r.Min)})
		}
		fmt.Print(metrics.Render(table))
		fmt.Println()
	}

	if want("table1") {
		rows, err := experiments.PropertyMatrix(3, seed)
		if err != nil {
			return err
		}
		fmt.Println("== Table I: verified mechanism properties ==")
		table := [][]string{{"mechanism", "strategyproof", "sybil-immune", "profit-guarantee", "witness"}}
		for _, r := range rows {
			table = append(table, []string{
				r.Mechanism, mark(r.Strategyproof), mark(r.SybilImmune), mark(r.ProfitGuarantee), r.Witness,
			})
		}
		fmt.Print(metrics.Render(table))
		fmt.Println()
	}
	return nil
}

func mark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
