package repro

import (
	"fmt"
	"testing"

	"repro/internal/auction"
	"repro/internal/cloud"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/subscription"
)

// TestEndToEndDayCycle drives the whole stack the way cmd/dsmsd does, but
// deterministically: three periods of submissions over a shared engine,
// verifying auction outcomes, billing totals, operator sharing, transition
// correctness, and result delivery together.
func TestEndToEndDayCycle(t *testing.T) {
	schema := stream.MustSchema(
		stream.Field{Name: "sym", Kind: stream.KindString},
		stream.Field{Name: "price", Kind: stream.KindFloat},
	)
	center := cloud.New(auction.NewCAT(), 10)
	center.DeclareSource("stocks", schema)

	filterSub := func(user int, name string, bid float64, key string, load, threshold float64) cloud.Submission {
		return cloud.Submission{
			User: user, Name: name, Bid: bid,
			Operators: []cloud.OperatorSpec{{Key: key, Load: load}},
			Deploy: func(reg *cloud.SharedOps) error {
				src, err := reg.Source("stocks")
				if err != nil {
					return err
				}
				out := reg.Unary(key, src, func() stream.Transform {
					return stream.NewFilter(key, load, stream.FieldCmp(1, stream.Gt, threshold))
				})
				reg.Sink(out)
				return nil
			},
		}
	}

	// Period 0: two queries sharing one operator plus a big standalone one.
	check(t, center.Submit(filterSub(1, "alice", 50, "sel-100", 6, 100)))
	check(t, center.Submit(filterSub(2, "bob", 40, "sel-100", 6, 100)))
	check(t, center.Submit(filterSub(3, "carol", 45, "sel-carol", 9, 50)))
	r0, err := center.ClosePeriod()
	check(t, err)
	// Shared operator: alice+bob aggregate load 6 ≤ 10; carol (9) cannot
	// join them.
	if len(r0.Admitted) != 2 {
		t.Fatalf("period 0 admitted %+v, want alice and bob", r0.Admitted)
	}
	for i := 0; i < 5; i++ {
		check(t, center.Push("stocks", stream.NewTuple(int64(i), "X", float64(90+10*i))))
	}
	// Prices 90..130: three exceed 100. Both sharers see identical results.
	if a, b := len(center.Results("alice")), len(center.Results("bob")); a != 3 || b != 3 {
		t.Fatalf("results alice=%d bob=%d, want 3 each", a, b)
	}

	// Period 1: bob drops out; carol outbids and displaces.
	check(t, center.Submit(filterSub(1, "alice", 20, "sel-100", 6, 100)))
	check(t, center.Submit(filterSub(3, "carol", 95, "sel-carol", 9, 50)))
	r1, err := center.ClosePeriod()
	check(t, err)
	if len(r1.Admitted) != 1 || r1.Admitted[0].Name != "carol" {
		t.Fatalf("period 1 admitted %+v, want carol only", r1.Admitted)
	}
	check(t, center.Push("stocks", stream.NewTuple(10, "X", 60.0)))
	if got := len(center.Results("carol")); got != 1 {
		t.Fatalf("carol results = %d, want 1", got)
	}
	if got := len(center.Results("alice")); got != 0 {
		t.Fatalf("alice should be offline, got %d results", got)
	}

	// Billing: period 0 charged positive (carol was the priced-out loser);
	// period 1 charged carol by alice's density.
	if rev := center.Ledger().Revenue(0); rev <= 0 {
		t.Errorf("period 0 revenue = %v, want positive (carol lost but priced the winners)", rev)
	}
	if total := center.Ledger().Revenue(-1); total != center.Ledger().Revenue(0)+center.Ledger().Revenue(1) {
		t.Error("ledger totals inconsistent")
	}
}

// TestDeployErrorPropagates: a failing Deploy aborts the period close.
func TestDeployErrorPropagates(t *testing.T) {
	center := cloud.New(auction.NewCAT(), 10)
	err := center.Submit(cloud.Submission{
		User: 1, Name: "bad", Bid: 5,
		Operators: []cloud.OperatorSpec{{Key: "k", Load: 1}},
		Deploy: func(reg *cloud.SharedOps) error {
			_, err := reg.Source("missing")
			return err
		},
	})
	check(t, err)
	if _, err := center.ClosePeriod(); err == nil {
		t.Fatal("want deploy error")
	}
}

// TestSubscriptionAndAuctionCompose: the Section VII manager running CAT
// auctions produces only feasible, billed outcomes across a busy week.
func TestSubscriptionAndAuctionCompose(t *testing.T) {
	const capacity = 12
	mgr, err := subscription.NewManager(auction.NewCAT(), capacity, subscription.EqualShares(subscription.Day, subscription.Week))
	check(t, err)
	for day := 0; day < 9; day++ {
		// Demand far exceeds the per-category capacity share, so the
		// threshold prices are positive.
		for i := 0; i < 6; i++ {
			cat := subscription.Day
			if i%2 == 0 {
				cat = subscription.Week
			}
			err := mgr.Submit(subscription.Request{
				User: day*10 + i, Name: fmt.Sprintf("q%d-%d", day, i),
				Bid: float64(5 + (day*7+i*3)%40), Category: cat,
				Operators: []subscription.OperatorSpec{
					{Key: fmt.Sprintf("op%d-%d", day, i), Load: float64(3 + i%3)},
				},
			})
			check(t, err)
		}
		report, err := mgr.RunDay()
		check(t, err)
		// Committed load (shared operators counted once) never exceeds
		// capacity.
		if committed := mgr.CommittedLoad(); committed > capacity+1e-9 {
			t.Fatalf("day %d: committed %v exceeds capacity", day, committed)
		}
		if report.Revenue < 0 {
			t.Fatalf("day %d: negative revenue", day)
		}
	}
	if mgr.Revenue() <= 0 {
		t.Error("week of competitive auctions should earn revenue")
	}
}

// TestMechanismsAgreeOnExample1Winners: every strategyproof mechanism admits
// {q1, q2} on Example 1 (they differ only in payments), and the profits
// order CAT ≥ CAF as the paper's worked numbers show.
func TestMechanismsAgreeOnExample1Winners(t *testing.T) {
	pool, capacity := query.Example1()
	for _, m := range []auction.Mechanism{
		auction.NewCAR(), auction.NewCAF(), auction.NewCAFPlus(),
		auction.NewCAT(), auction.NewCATPlus(),
	} {
		out := m.Run(pool, capacity)
		if !out.IsWinner(0) || !out.IsWinner(1) || out.IsWinner(2) {
			t.Errorf("%s winners = %v, want {q1,q2}", m.Name(), out.Winners)
		}
	}
	caf := auction.NewCAF().Run(pool, capacity).Profit()
	cat := auction.NewCAT().Run(pool, capacity).Profit()
	if cat <= caf {
		t.Errorf("CAT profit %v should exceed CAF %v on Example 1 (110 vs 70)", cat, caf)
	}
}

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
