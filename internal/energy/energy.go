// Package energy implements the paper's Section VII energy discussion: the
// DSMS center's energy cost grows with the capacity it keeps powered, and —
// because auction profit is not monotone in capacity (prices collapse when
// too many queries fit) — it can be strictly more profitable to operate
// below full capacity. CapacitySearch finds the net-profit-optimal operating
// capacity for a given workload and mechanism.
package energy

import (
	"fmt"

	"repro/internal/auction"
	"repro/internal/query"
)

// CostModel maps an operated capacity to an energy cost per subscription
// period.
type CostModel struct {
	// Idle is the cost of keeping the center on at zero capacity.
	Idle float64
	// PerUnit is the marginal energy cost per capacity unit operated.
	PerUnit float64
	// Quadratic adds a superlinear term (cooling grows faster than load):
	// cost += Quadratic × capacity².
	Quadratic float64
}

// Cost returns the period energy cost of operating at capacity c.
func (m CostModel) Cost(c float64) float64 {
	return m.Idle + m.PerUnit*c + m.Quadratic*c*c
}

// Point is one evaluated operating capacity.
type Point struct {
	Capacity   float64
	Profit     float64
	EnergyCost float64
	// Net is Profit − EnergyCost.
	Net float64
	// Admitted is the number of admitted queries at this capacity.
	Admitted int
}

// Sweep evaluates the mechanism at each candidate capacity and returns the
// points in input order.
func Sweep(m auction.Mechanism, p *query.Pool, cost CostModel, capacities []float64) ([]Point, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("energy: no candidate capacities")
	}
	out := make([]Point, 0, len(capacities))
	for _, c := range capacities {
		if c < 0 {
			return nil, fmt.Errorf("energy: negative capacity %g", c)
		}
		res := m.Run(p, c)
		profit := res.Profit()
		e := cost.Cost(c)
		out = append(out, Point{
			Capacity:   c,
			Profit:     profit,
			EnergyCost: e,
			Net:        profit - e,
			Admitted:   len(res.Winners),
		})
	}
	return out, nil
}

// CapacitySearch returns the point with the highest net profit among the
// candidates (ties favour lower capacity: less energy for equal net).
func CapacitySearch(m auction.Mechanism, p *query.Pool, cost CostModel, capacities []float64) (Point, error) {
	points, err := Sweep(m, p, cost, capacities)
	if err != nil {
		return Point{}, err
	}
	best := points[0]
	for _, pt := range points[1:] {
		if pt.Net > best.Net || (pt.Net == best.Net && pt.Capacity < best.Capacity) {
			best = pt
		}
	}
	return best, nil
}
