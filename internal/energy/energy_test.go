package energy

import (
	"testing"

	"repro/internal/auction"
	"repro/internal/query"
	"repro/internal/workload"
)

func testPool(t *testing.T) *query.Pool {
	t.Helper()
	p := workload.PaperParams(3)
	p.NumQueries = 100
	p.MaxSharing = 8
	return workload.MustGenerate(p).MustInstance(4)
}

func TestCostModel(t *testing.T) {
	m := CostModel{Idle: 10, PerUnit: 2, Quadratic: 0.5}
	if got := m.Cost(0); got != 10 {
		t.Errorf("Cost(0) = %v, want 10", got)
	}
	if got := m.Cost(4); got != 10+8+8 {
		t.Errorf("Cost(4) = %v, want 26", got)
	}
}

func TestSweepErrors(t *testing.T) {
	pool := testPool(t)
	if _, err := Sweep(auction.NewCAT(), pool, CostModel{}, nil); err == nil {
		t.Error("want error for empty capacity list")
	}
	if _, err := Sweep(auction.NewCAT(), pool, CostModel{}, []float64{-1}); err == nil {
		t.Error("want error for negative capacity")
	}
}

func TestSweepPoints(t *testing.T) {
	pool := testPool(t)
	cost := CostModel{Idle: 5, PerUnit: 1}
	caps := []float64{100, 300, 600}
	points, err := Sweep(auction.NewCAT(), pool, cost, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	for i, p := range points {
		if p.Capacity != caps[i] {
			t.Errorf("point %d capacity = %v, want %v", i, p.Capacity, caps[i])
		}
		if p.EnergyCost != cost.Cost(p.Capacity) {
			t.Errorf("point %d energy = %v, want %v", i, p.EnergyCost, cost.Cost(p.Capacity))
		}
		if p.Net != p.Profit-p.EnergyCost {
			t.Errorf("point %d net inconsistent", i)
		}
	}
	// Admission is monotone in capacity for a fixed instance.
	if points[0].Admitted > points[2].Admitted {
		t.Errorf("admissions %d > %d despite more capacity", points[0].Admitted, points[2].Admitted)
	}
}

// TestProfitNonMonotone: the Section VII observation — with enough capacity
// the threshold price collapses to zero, so profit at an over-provisioned
// capacity falls below profit at a binding one.
func TestProfitNonMonotone(t *testing.T) {
	pool := testPool(t)
	total := 0.0
	for i := 0; i < pool.NumQueries(); i++ {
		total += pool.TotalLoad(query.QueryID(i))
	}
	points, err := Sweep(auction.NewCAT(), pool, CostModel{}, []float64{total * 0.4, total * 10})
	if err != nil {
		t.Fatal(err)
	}
	if points[1].Profit != 0 {
		t.Errorf("over-provisioned profit = %v, want 0 (no loser, no price)", points[1].Profit)
	}
	if points[0].Profit <= 0 {
		t.Errorf("binding-capacity profit = %v, want positive", points[0].Profit)
	}
}

func TestCapacitySearch(t *testing.T) {
	pool := testPool(t)
	cost := CostModel{Idle: 0, PerUnit: 0.5}
	caps := []float64{50, 150, 400, 900, 2000}
	best, err := CapacitySearch(auction.NewCAT(), pool, cost, caps)
	if err != nil {
		t.Fatal(err)
	}
	points, err := Sweep(auction.NewCAT(), pool, cost, caps)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Net > best.Net {
			t.Errorf("CapacitySearch returned net %v, but capacity %v has %v", best.Net, p.Capacity, p.Net)
		}
	}
}

func TestCapacitySearchTieBreaksLow(t *testing.T) {
	// All-zero profit (capacity far above demand) with a free cost model:
	// every net ties at 0, and the tie must break to the smallest capacity.
	pool := testPool(t)
	best, err := CapacitySearch(auction.NewCAT(), pool, CostModel{}, []float64{50000, 90000, 70000})
	if err != nil {
		t.Fatal(err)
	}
	if best.Capacity != 50000 {
		t.Errorf("tie broke to %v, want 50000", best.Capacity)
	}
}
