package staging

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/stream"
)

func mkTuple(ts int64, vals ...any) stream.Tuple {
	return stream.Tuple{Ts: ts, Vals: vals}
}

// TestRecCodecRoundTrip exercises every value kind plus punctuation.
func TestRecCodecRoundTrip(t *testing.T) {
	recs := []Rec{
		{Source: "stocks", Tuple: mkTuple(1, int64(7), 3.5, "AAA", true)},
		{Source: "", Tuple: mkTuple(-42, false, "")},
		{Source: "xchg:n3", Tuple: stream.NewPunctuation(99)},
		{Source: "s", Tuple: stream.Tuple{Ts: 5}},
	}
	for _, want := range recs {
		enc, err := AppendRec(nil, want.Source, want.Tuple)
		if err != nil {
			t.Fatalf("AppendRec(%v): %v", want, err)
		}
		got, err := DecodeRec(enc)
		if err != nil {
			t.Fatalf("DecodeRec(%v): %v", want, err)
		}
		if got.Source != want.Source || got.Tuple.Ts != want.Tuple.Ts ||
			got.Tuple.IsPunct() != want.Tuple.IsPunct() {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		if len(got.Tuple.Vals) != len(want.Tuple.Vals) {
			t.Fatalf("round trip vals: got %v want %v", got.Tuple.Vals, want.Tuple.Vals)
		}
		for i := range want.Tuple.Vals {
			if !reflect.DeepEqual(got.Tuple.Vals[i], want.Tuple.Vals[i]) {
				t.Fatalf("val %d: got %#v want %#v", i, got.Tuple.Vals[i], want.Tuple.Vals[i])
			}
		}
	}
}

// TestQueueFIFOAcrossSpill pushes far past a tiny budget and checks strict
// FIFO order through the spill-and-replay cycle, plus the stats surface.
func TestQueueFIFOAcrossSpill(t *testing.T) {
	s, err := New(2048, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := s.NewQueue("fifo")
	const n = 5000
	for i := 0; i < n; i++ {
		q.Append("src", mkTuple(int64(i), int64(i*3), fmt.Sprintf("v%d", i)))
	}
	if err := q.Err(); err != nil {
		t.Fatalf("spill error: %v", err)
	}
	st := s.Stats()
	if st.SpilledTuples == 0 || st.Segments == 0 {
		t.Fatalf("expected spill past a 2KB budget, stats %+v", st)
	}
	if st.ResidentBytes > 2048 {
		t.Fatalf("resident %d exceeds budget while appending", st.ResidentBytes)
	}
	if got := q.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		r, ok := q.Pop()
		if !ok {
			t.Fatalf("queue dry at %d/%d", i, n)
		}
		if r.Source != "src" || r.Tuple.Ts != int64(i) {
			t.Fatalf("out of order at %d: got ts %d src %q", i, r.Tuple.Ts, r.Source)
		}
		if v := r.Tuple.Vals[0].(int64); v != int64(i*3) {
			t.Fatalf("val corrupt at %d: %d", i, v)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
	st = s.Stats()
	if st.Replays == 0 {
		t.Fatalf("expected segment replays, stats %+v", st)
	}
	if st.ResidentBytes != 0 {
		t.Fatalf("drained queue leaks %d resident bytes", st.ResidentBytes)
	}
	q.Close()
}

// TestQueueInterleavedAppendPop alternates producers and consumers so
// replayed segments and fresh appends interleave; order must hold.
func TestQueueInterleavedAppendPop(t *testing.T) {
	s, err := New(1024, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := s.NewQueue("mix")
	next, want := int64(0), int64(0)
	push := func(k int) {
		for i := 0; i < k; i++ {
			q.Append("", mkTuple(next, next))
			next++
		}
	}
	pull := func(k int) {
		for i := 0; i < k; i++ {
			r, ok := q.Pop()
			if !ok {
				t.Fatalf("dry at %d", want)
			}
			if r.Tuple.Ts != want {
				t.Fatalf("order: got %d want %d", r.Tuple.Ts, want)
			}
			want++
		}
	}
	push(500)
	pull(200)
	push(1500)
	pull(1000)
	push(100)
	pull(int(next - want))
	if !q.Empty() {
		t.Fatalf("queue not empty: %d left", q.Len())
	}
}

// TestQueueCloseReleasesBudgetAndFiles closes a spilled queue and checks
// the resident accounting returns to zero and segments are deleted.
func TestQueueCloseReleasesBudgetAndFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := New(512, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := s.NewQueue("close")
	for i := 0; i < 2000; i++ {
		q.Append("", mkTuple(int64(i), "some payload string"))
	}
	q.Close()
	if got := s.Stats().ResidentBytes; got != 0 {
		t.Fatalf("Close left %d resident bytes", got)
	}
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("Close left %d segment files behind", len(ents))
	}
}

// TestStagerSharedBudget runs two queues on one Stager: the second queue
// spills because the first consumed the shared budget.
func TestStagerSharedBudget(t *testing.T) {
	s, err := New(4096, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, b := s.NewQueue("a"), s.NewQueue("b")
	for i := 0; i < 60; i++ { // ~64B each: fills most of 4KB
		a.Append("", mkTuple(int64(i), int64(i)))
	}
	for i := 0; i < 200; i++ {
		b.Append("", mkTuple(int64(i), int64(i)))
	}
	if s.Stats().SpilledTuples == 0 {
		t.Fatalf("second queue should have spilled under the shared budget, stats %+v", s.Stats())
	}
	for i := 0; i < 200; i++ {
		r, ok := b.Pop()
		if !ok || r.Tuple.Ts != int64(i) {
			t.Fatalf("queue b order at %d: %v %v", i, r, ok)
		}
	}
	a.Close()
	b.Close()
}

// TestSpillErrorFallsBackToMemory points the current segment at an
// unwritable path by breaking the spill dir; records must stay resident and
// ordered rather than be lost.
func TestSpillErrorFallsBackToMemory(t *testing.T) {
	dir := t.TempDir()
	s, err := New(256, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: remove the private spill dir so CreateSegment fails.
	if err := os.RemoveAll(s.Dir()); err != nil {
		t.Fatal(err)
	}
	q := s.NewQueue("broken")
	const n = 100
	for i := 0; i < n; i++ {
		q.Append("", mkTuple(int64(i), int64(i)))
	}
	if q.Err() == nil {
		t.Fatal("expected a spill error")
	}
	if st := s.Stats(); st.SpillErrors == 0 {
		t.Fatalf("stats should count the spill error: %+v", st)
	}
	if got := q.Len(); got != n {
		t.Fatalf("Len after degraded appends = %d, want %d (conservation)", got, n)
	}
	for i := 0; i < n; i++ {
		r, ok := q.Pop()
		if !ok {
			t.Fatalf("lost records after spill failure: dry at %d/%d", i, n)
		}
		if r.Tuple.Ts != int64(i) {
			t.Fatalf("order after spill failure at %d: got %d", i, r.Tuple.Ts)
		}
	}
	q.Close()
}

// TestSegmentFrames checks the generic frame layer used by checkpoints.
func TestSegmentFrames(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.seg")
	sw, err := CreateSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-frame")}
	for _, f := range want {
		if err := sw.Frame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	err = ReadSegment(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("frames: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("frame %d: got %q want %q", i, got[i], want[i])
		}
	}
}

// TestRollCloseFailureRecoversRecords regresses the segment-close failure
// path: a failing Close used to drop the whole segment from accounting,
// silently losing every record framed into it. The fix reads the file back
// into the resident tail, so a close failure whose file is still intact
// loses nothing.
func TestRollCloseFailureRecoversRecords(t *testing.T) {
	s, err := New(1, t.TempDir()) // 1-byte budget: every record spills
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := s.NewQueue("closefail")
	q.closeSeg = func(sw *SegmentWriter) error {
		// The flush succeeds (the file is complete on disk) but the close
		// still reports failure, e.g. a deferred write-back error.
		sw.Close()
		return fmt.Errorf("injected close failure")
	}
	const n = 100
	for i := 0; i < n; i++ {
		q.Append("src", mkTuple(int64(i), int64(i*2), fmt.Sprintf("v%d", i)))
	}
	if got := q.Len(); got != n {
		t.Fatalf("Len before replay = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		r, ok := q.Pop()
		if !ok {
			t.Fatalf("records lost after close failure: dry at %d/%d", i, n)
		}
		if r.Source != "src" || r.Tuple.Ts != int64(i) {
			t.Fatalf("order after close failure at %d: got %+v", i, r)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
	if err := q.Err(); err == nil {
		t.Fatal("close failure should surface through Err")
	}
	if st := s.Stats(); st.LostTuples != 0 {
		t.Fatalf("nothing was unrecoverable, LostTuples = %d", st.LostTuples)
	}
	q.Close()
}

// TestRollCloseFailurePartialLossCounted truncates the segment inside the
// injected close failure: the readable prefix must be recovered in order and
// the unreadable remainder counted in Stats.LostTuples instead of vanishing.
func TestRollCloseFailurePartialLossCounted(t *testing.T) {
	s, err := New(1, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := s.NewQueue("truncated")
	q.closeSeg = func(sw *SegmentWriter) error {
		sw.Close()
		fi, err := os.Stat(q.curPath)
		if err != nil {
			t.Fatalf("stat current segment: %v", err)
		}
		if err := os.Truncate(q.curPath, fi.Size()/2); err != nil {
			t.Fatalf("truncate current segment: %v", err)
		}
		return fmt.Errorf("injected close failure")
	}
	const n = 100
	for i := 0; i < n; i++ {
		q.Append("src", mkTuple(int64(i), int64(i)))
	}
	var popped int64
	for {
		r, ok := q.Pop()
		if !ok {
			break
		}
		if r.Tuple.Ts != popped {
			t.Fatalf("recovered prefix out of order at %d: got %d", popped, r.Tuple.Ts)
		}
		popped++
	}
	st := s.Stats()
	if st.LostTuples == 0 {
		t.Fatal("a truncated segment must count lost tuples")
	}
	if popped+st.LostTuples != n {
		t.Fatalf("conservation: popped %d + lost %d != appended %d", popped, st.LostTuples, n)
	}
	if popped == 0 {
		t.Fatal("the readable prefix should have been recovered")
	}
	if err := q.Err(); err == nil {
		t.Fatal("close failure should surface through Err")
	}
	q.Close()
}
