// Package staging is the executors' bounded staging subsystem: an in-memory
// buffer up to a byte budget, append-only spill segments on disk beyond it,
// and in-order replay when pressure subsides.
//
// A Stager owns one budget and one private spill directory; the executor's
// staging lanes — the exchange merge's per-shard tails, the sync Engine's
// transition hold overflow, the concurrent Runtime's loss-intolerant ingress
// overflow — each hold a Queue on the shared Stager, so the budget bounds
// the executor's total resident staging memory, not each lane separately.
//
// A Queue is strictly FIFO. Records append to memory while the queue has
// nothing on disk and the budget has room; otherwise they append to the
// current spill segment (rolled at a size cap). Pops drain memory first,
// then replay segments oldest-first: a replayed segment is loaded back into
// memory whole, which may overshoot the budget by up to one segment — the
// documented slack. If a spill write fails (disk full, bad dir), the record
// stays resident instead: staging degrades to unbounded memory rather than
// losing tuples, and the error is surfaced in Stats.
package staging

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/stream"
)

// Stats is a point-in-time snapshot of a Stager's accounting. Spilled
// counters are cumulative over the Stager's lifetime.
type Stats struct {
	BudgetBytes       int64 `json:"budget_bytes"`
	ResidentBytes     int64 `json:"resident_bytes"`
	ResidentPeakBytes int64 `json:"resident_peak_bytes"`
	SpilledBytes      int64 `json:"spilled_bytes"`
	SpilledTuples     int64 `json:"spilled_tuples"`
	Segments          int64 `json:"segments"`
	Replays           int64 `json:"replays"`
	SpillErrors       int64 `json:"spill_errors"`
	// LostTuples counts records that were framed into a spill segment and
	// could not be read back after the segment failed to close — the only
	// way the staging layer ever loses a record, and it says so instead of
	// pretending.
	LostTuples int64 `json:"lost_tuples"`
}

// A Stager owns a staging budget and the spill directory its queues write
// segments into. Safe for concurrent use.
type Stager struct {
	budget int64
	segMax int64
	dir    string

	resident      atomic.Int64
	peak          atomic.Int64
	spilledBytes  atomic.Int64
	spilledTuples atomic.Int64
	segments      atomic.Int64
	replays       atomic.Int64
	spillErrs     atomic.Int64
	lostTuples    atomic.Int64
	seq           atomic.Int64
}

// New creates a Stager holding at most budget resident bytes, spilling into
// a private temp subdirectory of dir (the OS temp dir when dir is empty).
// Close removes the subdirectory. budget <= 0 means no bound: everything
// stays resident and nothing spills.
func New(budget int64, dir string) (*Stager, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("staging: spill dir: %w", err)
		}
	}
	d, err := os.MkdirTemp(dir, "staging-")
	if err != nil {
		return nil, fmt.Errorf("staging: spill dir: %w", err)
	}
	segMax := budget / 2
	if segMax < 16<<10 {
		segMax = 16 << 10
	}
	if segMax > 1<<20 {
		segMax = 1 << 20
	}
	return &Stager{budget: budget, segMax: segMax, dir: d}, nil
}

// Dir reports the private spill directory.
func (s *Stager) Dir() string { return s.dir }

// Close removes the spill directory and everything in it. Queues on the
// Stager must be closed (or abandoned) first.
func (s *Stager) Close() error { return os.RemoveAll(s.dir) }

// Stats snapshots the accounting.
func (s *Stager) Stats() Stats {
	return Stats{
		BudgetBytes:       s.budget,
		ResidentBytes:     s.resident.Load(),
		ResidentPeakBytes: s.peak.Load(),
		SpilledBytes:      s.spilledBytes.Load(),
		SpilledTuples:     s.spilledTuples.Load(),
		Segments:          s.segments.Load(),
		Replays:           s.replays.Load(),
		SpillErrors:       s.spillErrs.Load(),
		LostTuples:        s.lostTuples.Load(),
	}
}

// TryReserve reserves n resident bytes if the budget has room.
func (s *Stager) TryReserve(n int64) bool {
	for {
		cur := s.resident.Load()
		if s.budget > 0 && cur+n > s.budget {
			return false
		}
		if s.resident.CompareAndSwap(cur, cur+n) {
			s.bumpPeak(cur + n)
			return true
		}
	}
}

// Reserve reserves n resident bytes unconditionally — the replay path uses
// it to load a whole segment back, accepting up to one segment of slack
// over the budget.
func (s *Stager) Reserve(n int64) { s.bumpPeak(s.resident.Add(n)) }

// Release returns n resident bytes to the budget.
func (s *Stager) Release(n int64) { s.resident.Add(-n) }

func (s *Stager) bumpPeak(v int64) {
	for {
		p := s.peak.Load()
		if v <= p || s.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// nextSegPath names a fresh segment file for a queue label.
func (s *Stager) nextSegPath(label string) string {
	n := s.seq.Add(1)
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, label)
	return filepath.Join(s.dir, fmt.Sprintf("%s-%08d.seg", clean, n))
}

// SizeOf estimates the resident footprint of one tuple: struct and slice
// headers plus boxed values. It intentionally overcounts small tuples a
// little — the budget is a bound, not a measurement.
func SizeOf(t stream.Tuple) int64 {
	n := int64(48)
	for _, v := range t.Vals {
		if s, ok := v.(string); ok {
			n += 16 + int64(len(s))
		} else {
			n += 16
		}
	}
	return n
}

// Rec is one staged record: the tuple plus the source/edge label the lane
// needs to replay it correctly (empty where the lane is single-source).
type Rec struct {
	Source string
	Tuple  stream.Tuple
}

// spillSeg is one closed on-disk segment with its record count.
type spillSeg struct {
	path string
	recs int64
}

// A Queue is one strictly-FIFO staging lane on a Stager. Safe for
// concurrent use.
type Queue struct {
	s     *Stager
	label string

	mu       sync.Mutex
	mem      []Rec // in-memory front; mem[head:] is live
	head     int
	segs     []spillSeg // closed segments, oldest first
	cur      *SegmentWriter
	curPath  string
	curRecs  int64
	diskRecs int64 // records in segs + cur
	tail     []Rec // resident overflow after a spill-write failure
	scratch  []byte
	err      error // first spill error; queue degrades to resident-only

	// closeSeg closes the current segment writer; tests inject failures
	// here. Nil means sw.Close().
	closeSeg func(sw *SegmentWriter) error
}

// NewQueue creates a staging lane. The label names its segment files.
func (s *Stager) NewQueue(label string) *Queue {
	return &Queue{s: s, label: label}
}

// Err reports the first spill I/O error, if any. The queue keeps working
// (resident-only) after an error; no record is lost silently — the only
// loss the queue admits is a spilled record that cannot be read back after
// its segment fails to close, counted in Stats.LostTuples.
func (q *Queue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Len reports how many records the queue holds, resident and spilled.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.mem) - q.head + int(q.diskRecs) + len(q.tail)
}

// Empty reports whether the queue holds nothing.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Append stages one record at the back of the queue.
func (q *Queue) Append(source string, t stream.Tuple) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.normalize()
	sz := SizeOf(t)
	// Resident fast path: nothing on disk ahead of us and the budget has
	// room. Once anything is spilled, order forces new records behind it.
	if q.diskRecs == 0 && len(q.tail) == 0 && q.s.TryReserve(sz) {
		q.mem = append(q.mem, Rec{source, t})
		return
	}
	if q.err == nil {
		staged, werr := q.spill(source, t)
		if werr != nil {
			q.fail(werr)
		}
		if staged {
			return
		}
	}
	// Spilling unavailable: keep the record resident past the budget —
	// correctness over the bound.
	q.s.Reserve(sz)
	q.tail = append(q.tail, Rec{source, t})
}

// spill writes one record to the current segment, rolling it at the size
// cap. Caller holds q.mu. staged reports whether the record made it into
// the queue's accounting: true even when the roll that followed a
// successful Frame failed, because roll's read-back already recovered or
// counted the record — the caller must not re-append it.
func (q *Queue) spill(source string, t stream.Tuple) (staged bool, err error) {
	enc, err := AppendRec(q.scratch[:0], source, t)
	if err != nil {
		return false, err
	}
	q.scratch = enc[:0]
	if q.cur == nil {
		path := q.s.nextSegPath(q.label)
		sw, err := CreateSegment(path)
		if err != nil {
			return false, err
		}
		q.cur, q.curPath, q.curRecs = sw, path, 0
		q.s.segments.Add(1)
	}
	if err := q.cur.Frame(enc); err != nil {
		return false, err
	}
	q.curRecs++
	q.diskRecs++
	q.s.spilledTuples.Add(1)
	q.s.spilledBytes.Add(int64(4 + len(enc)))
	if q.cur.Bytes() >= q.s.segMax {
		return true, q.roll()
	}
	return true, nil
}

// roll closes the current segment onto the replay list. Caller holds q.mu.
//
// If the close fails the file may still be partially readable (Close flushes
// before it fails, or fails partway through), so the queue reads back
// whatever frames survive into the resident front of the tail — Reserve past
// the budget, the same correctness-over-the-bound trade as the spill-error
// path — before dropping the file. Only records that cannot be read back are
// lost, and they are counted in Stats.LostTuples rather than vanishing.
func (q *Queue) roll() error {
	if q.cur == nil {
		return nil
	}
	closeFn := q.closeSeg
	if closeFn == nil {
		closeFn = (*SegmentWriter).Close
	}
	err := closeFn(q.cur)
	if err == nil {
		q.segs = append(q.segs, spillSeg{q.curPath, q.curRecs})
		q.cur, q.curPath, q.curRecs = nil, "", 0
		return nil
	}
	var recovered []Rec
	rerr := ReadSegment(q.curPath, func(p []byte) error {
		r, derr := DecodeRec(p)
		if derr != nil {
			return derr
		}
		recovered = append(recovered, r)
		return nil
	})
	_ = rerr // a truncated read-back is expected; whatever decoded is kept
	for _, r := range recovered {
		q.s.Reserve(SizeOf(r.Tuple))
	}
	// Recovered records were framed before anything now in the tail was
	// appended, so they go in front of it.
	q.tail = append(recovered, q.tail...)
	if lost := q.curRecs - int64(len(recovered)); lost > 0 {
		q.s.lostTuples.Add(lost)
	}
	q.diskRecs -= q.curRecs
	os.Remove(q.curPath)
	q.cur, q.curPath, q.curRecs = nil, "", 0
	return err
}

// fail records the first spill error.
func (q *Queue) fail(err error) {
	if q.err == nil {
		q.err = err
		q.s.spillErrs.Add(1)
	}
}

// normalize folds the resident tail back into the front once nothing on
// disk separates them. Caller holds q.mu.
func (q *Queue) normalize() {
	if q.diskRecs == 0 && len(q.tail) > 0 {
		if q.head == len(q.mem) {
			q.mem, q.head = q.mem[:0], 0
		}
		q.mem = append(q.mem, q.tail...)
		for i := range q.tail {
			q.tail[i] = Rec{}
		}
		q.tail = q.tail[:0]
	}
}

// Pop removes and returns the oldest record.
func (q *Queue) Pop() (Rec, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pop()
}

// PopBatch appends up to max oldest records to dst and returns it.
func (q *Queue) PopBatch(dst []Rec, max int) []Rec {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(dst) < max {
		r, ok := q.pop()
		if !ok {
			break
		}
		dst = append(dst, r)
	}
	return dst
}

// pop is Pop with q.mu held.
func (q *Queue) pop() (Rec, bool) {
	for {
		q.normalize()
		if q.head < len(q.mem) {
			r := q.mem[q.head]
			q.mem[q.head] = Rec{}
			q.head++
			q.s.Release(SizeOf(r.Tuple))
			if q.head == len(q.mem) {
				q.mem, q.head = q.mem[:0], 0
			}
			return r, true
		}
		if q.diskRecs == 0 {
			return Rec{}, false
		}
		q.load()
	}
}

// load replays the oldest segment into memory whole (Reserve, not
// TryReserve: replay may overshoot the budget by one segment). Caller
// holds q.mu.
func (q *Queue) load() {
	if len(q.segs) == 0 {
		if err := q.roll(); err != nil {
			q.fail(err)
		}
		if len(q.segs) == 0 {
			// The roll failed and dropped the segment (fail() recorded the
			// error); nothing replayable remains.
			q.diskRecs = 0
			return
		}
	}
	seg := q.segs[0]
	q.segs = q.segs[1:]
	q.mem, q.head = q.mem[:0], 0
	err := ReadSegment(seg.path, func(p []byte) error {
		r, derr := DecodeRec(p)
		if derr != nil {
			return derr
		}
		q.s.Reserve(SizeOf(r.Tuple))
		q.mem = append(q.mem, r)
		return nil
	})
	os.Remove(seg.path)
	if err != nil {
		q.fail(err)
	}
	q.diskRecs -= seg.recs
	q.s.replays.Add(1)
}

// Close drops everything the queue holds, releasing resident accounting
// and removing its segment files.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	var freed int64
	for _, r := range q.mem[q.head:] {
		freed += SizeOf(r.Tuple)
	}
	for _, r := range q.tail {
		freed += SizeOf(r.Tuple)
	}
	q.s.Release(freed)
	q.mem, q.head, q.tail = nil, 0, nil
	if q.cur != nil {
		q.cur.Close()
		os.Remove(q.curPath)
		q.cur, q.curPath, q.curRecs = nil, "", 0
	}
	for _, seg := range q.segs {
		os.Remove(seg.path)
	}
	q.segs = nil
	q.diskRecs = 0
}
