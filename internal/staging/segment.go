package staging

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/stream"
)

// Segment files are append-only framed logs: a 4-byte magic header followed
// by frames of [uint32 little-endian length][payload]. The payload is opaque
// at this layer — tuple records use the codec below, operator-state
// checkpoints put a gob stream in each frame — so the spill lane and the
// checkpoint path share one on-disk format and one reader.
const segmentMagic = "DSG1"

// maxFrameBytes bounds a single frame so a corrupt length prefix cannot ask
// the reader to allocate gigabytes.
const maxFrameBytes = 64 << 20

// A SegmentWriter appends frames to a segment file through a buffered
// writer. Close flushes; the file is complete and readable afterwards.
type SegmentWriter struct {
	f *os.File
	w *bufio.Writer
	n int64
}

// CreateSegment creates (truncating) a segment file at path and writes the
// magic header.
func CreateSegment(path string) (*SegmentWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 32<<10)
	if _, err := w.WriteString(segmentMagic); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return &SegmentWriter{f: f, w: w, n: int64(len(segmentMagic))}, nil
}

// Frame appends one length-prefixed frame.
func (sw *SegmentWriter) Frame(payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := sw.w.Write(payload); err != nil {
		return err
	}
	sw.n += int64(4 + len(payload))
	return nil
}

// Bytes reports how many bytes the segment holds, header included.
func (sw *SegmentWriter) Bytes() int64 { return sw.n }

// Close flushes and closes the file.
func (sw *SegmentWriter) Close() error {
	ferr := sw.w.Flush()
	cerr := sw.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// ReadSegment opens a segment file and calls fn for every frame in order.
// The payload slice is reused between calls; fn must not retain it.
func ReadSegment(path string, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 32<<10)
	magic := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("staging: segment %s: reading magic: %w", path, err)
	}
	if string(magic) != segmentMagic {
		return fmt.Errorf("staging: segment %s: bad magic %q", path, magic)
	}
	var hdr [4]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("staging: segment %s: reading frame header: %w", path, err)
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxFrameBytes {
			return fmt.Errorf("staging: segment %s: frame of %d bytes exceeds limit", path, n)
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("staging: segment %s: reading frame body: %w", path, err)
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}

// Tuple record codec: one spilled tuple per frame. Layout (little-endian):
//
//	flags   byte    bit0 = punctuation marker
//	ts      int64
//	source  uvarint length + bytes
//	nvals   uvarint
//	vals    kind byte ('i','f','s','b') + payload each
//
// Only the engine's four scalar kinds serialize; a tuple carrying any other
// value type returns an error and the caller keeps it resident instead.
const (
	recFlagPunct = 1 << 0

	kindInt    = 'i'
	kindFloat  = 'f'
	kindString = 's'
	kindBool   = 'b'
)

// AppendRec appends the encoded record for (source, t) to buf and returns
// the extended slice.
func AppendRec(buf []byte, source string, t stream.Tuple) ([]byte, error) {
	var flags byte
	if t.IsPunct() {
		flags |= recFlagPunct
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Ts))
	buf = binary.AppendUvarint(buf, uint64(len(source)))
	buf = append(buf, source...)
	buf = binary.AppendUvarint(buf, uint64(len(t.Vals)))
	for _, v := range t.Vals {
		switch v := v.(type) {
		case int64:
			buf = append(buf, kindInt)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		case float64:
			buf = append(buf, kindFloat)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		case string:
			buf = append(buf, kindString)
			buf = binary.AppendUvarint(buf, uint64(len(v)))
			buf = append(buf, v...)
		case bool:
			b := byte(0)
			if v {
				b = 1
			}
			buf = append(buf, kindBool, b)
		default:
			return nil, fmt.Errorf("staging: cannot spill value of type %T", v)
		}
	}
	return buf, nil
}

// DecodeRec decodes one record payload back into (source, tuple).
func DecodeRec(p []byte) (Rec, error) {
	var r Rec
	if len(p) < 9 {
		return r, fmt.Errorf("staging: record truncated (%d bytes)", len(p))
	}
	flags := p[0]
	ts := int64(binary.LittleEndian.Uint64(p[1:9]))
	p = p[9:]
	srcLen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < srcLen {
		return r, fmt.Errorf("staging: record source field truncated")
	}
	r.Source = string(p[n : n+int(srcLen)])
	p = p[n+int(srcLen):]
	nvals, n := binary.Uvarint(p)
	if n <= 0 {
		return r, fmt.Errorf("staging: record val count truncated")
	}
	p = p[n:]
	var t stream.Tuple
	if flags&recFlagPunct != 0 {
		t = stream.NewPunctuation(ts)
	} else {
		t = stream.Tuple{Ts: ts}
	}
	if nvals > 0 {
		t.Vals = make([]any, 0, nvals)
	}
	for i := uint64(0); i < nvals; i++ {
		if len(p) < 1 {
			return r, fmt.Errorf("staging: record val %d truncated", i)
		}
		kind := p[0]
		p = p[1:]
		switch kind {
		case kindInt:
			if len(p) < 8 {
				return r, fmt.Errorf("staging: record val %d truncated", i)
			}
			t.Vals = append(t.Vals, int64(binary.LittleEndian.Uint64(p[:8])))
			p = p[8:]
		case kindFloat:
			if len(p) < 8 {
				return r, fmt.Errorf("staging: record val %d truncated", i)
			}
			t.Vals = append(t.Vals, math.Float64frombits(binary.LittleEndian.Uint64(p[:8])))
			p = p[8:]
		case kindString:
			sl, n := binary.Uvarint(p)
			if n <= 0 || uint64(len(p)-n) < sl {
				return r, fmt.Errorf("staging: record val %d truncated", i)
			}
			t.Vals = append(t.Vals, string(p[n:n+int(sl)]))
			p = p[n+int(sl):]
		case kindBool:
			if len(p) < 1 {
				return r, fmt.Errorf("staging: record val %d truncated", i)
			}
			t.Vals = append(t.Vals, p[0] != 0)
			p = p[1:]
		default:
			return r, fmt.Errorf("staging: record val %d has unknown kind %q", i, kind)
		}
	}
	r.Tuple = t
	return r, nil
}
