package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/stream"
)

// DialOptions tunes Dial.
type DialOptions struct {
	// Timeout bounds the whole dial, retries included; <= 0 means 10s.
	Timeout time.Duration
	// Logf, when non-nil, receives retry and failure notices.
	Logf func(string, ...any)
}

// Client is the coordinator's handle on one remote worker: it implements
// engine.RemoteShardHost over a framed TCP connection. One Client is one
// connection is one shard; it is reusable across deployments (each Start
// replaces the worker's host) but not across connection loss — a dead
// Client stays dead, and the coordinator's recovery path absorbs the shard.
type Client struct {
	name string
	cn   *conn
	logf func(string, ...any)

	// reqMu admits one control request at a time, so every fOK/fErr the
	// read loop sees belongs to the request currently waiting on reply.
	reqMu sync.Mutex
	reply chan frameMsg

	// cbMu guards the deploy-time callbacks the read loop dispatches
	// asynchronous exchange/sink frames through.
	cbMu       sync.Mutex
	onExchange func(edge string, batch []stream.Tuple)
	onSink     func(sink string, batch []stream.Tuple)

	dead     chan struct{}
	deadOnce sync.Once
	errMu    sync.Mutex
	err      error
}

type frameMsg struct {
	typ     byte
	payload []byte
}

var _ engine.RemoteShardHost = (*Client)(nil)

// Dial connects to a worker with capped-backoff retries (the worker may
// still be starting), performs the handshake, and starts the read loop.
// There is no redial after a successful connect: connection loss is shard
// death, handled by the coordinator's recovery, not hidden by the transport.
func Dial(addr string, opts DialOptions) (*Client, error) {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	deadline := time.Now().Add(timeout)
	backoff := 50 * time.Millisecond
	var (
		nc  net.Conn
		err error
	)
	for {
		nc, err = net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			break
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		logf("cluster: dial %s: %v (retrying in %s)", addr, err, backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
	cn := newConn(nc)
	hello := append([]byte(magic), protoVersion)
	if err := cn.writeFrame(fHello, hello); err != nil {
		cn.close()
		return nil, fmt.Errorf("cluster: handshake %s: %w", addr, err)
	}
	nc.SetReadDeadline(time.Now().Add(timeout))
	typ, p, err := cn.readFrame()
	nc.SetReadDeadline(time.Time{})
	if err != nil {
		cn.close()
		return nil, fmt.Errorf("cluster: handshake %s: %w", addr, err)
	}
	if typ == fErr {
		cn.close()
		return nil, fmt.Errorf("cluster: handshake %s: %s", addr, p)
	}
	if typ != fOK || len(p) == 0 {
		cn.close()
		return nil, fmt.Errorf("cluster: handshake %s: unexpected frame type %d", addr, typ)
	}
	c := &Client{
		name:  string(p),
		cn:    cn,
		logf:  logf,
		reply: make(chan frameMsg, 1),
		dead:  make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Name returns the worker's self-reported name from the handshake.
func (c *Client) Name() string { return c.name }

// Dead returns a channel closed when the connection is lost.
func (c *Client) Dead() <-chan struct{} { return c.dead }

// Close tears the connection down. The read loop exits and Dead fires;
// intended for coordinator shutdown after the executor has stopped.
func (c *Client) Close() error {
	c.fail(fmt.Errorf("cluster: client closed"))
	return c.cn.close()
}

// fail records the first error, fires Dead, and closes the connection so
// both loops unwind. Idempotent.
func (c *Client) fail(err error) {
	c.deadOnce.Do(func() {
		c.errMu.Lock()
		c.err = err
		c.errMu.Unlock()
		close(c.dead)
		c.cn.close()
	})
}

func (c *Client) deadErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.err == nil {
		return fmt.Errorf("cluster: %s: connection lost", c.name)
	}
	return fmt.Errorf("cluster: %s: %w", c.name, c.err)
}

// readLoop is the connection's single reader: asynchronous exchange/sink
// frames dispatch to the deploy callbacks inline (so TCP order is delivery
// order — the quiesce barrier depends on every exchange frame sent before
// the worker's quiesce reply being delivered before that reply), and
// control replies route to the waiting request.
func (c *Client) readLoop() {
	for {
		typ, p, err := c.cn.readFrame()
		if err != nil {
			c.fail(err)
			return
		}
		switch typ {
		case fExchange, fSink:
			name, batch, err := decodeBatch(p)
			if err != nil {
				c.fail(err)
				return
			}
			c.cbMu.Lock()
			ex, sk := c.onExchange, c.onSink
			c.cbMu.Unlock()
			switch {
			case typ == fExchange && ex != nil:
				ex(name, batch)
			case typ == fSink && sk != nil:
				sk(name, batch)
			default:
				engine.PutBatch(batch)
			}
		case fOK, fErr:
			select {
			case c.reply <- frameMsg{typ, p}:
			default:
				// A reply nobody is waiting for is a protocol violation.
				c.fail(fmt.Errorf("cluster: %s: unsolicited reply frame %d", c.name, typ))
				return
			}
		default:
			c.fail(fmt.Errorf("cluster: %s: unexpected frame type %d", c.name, typ))
			return
		}
	}
}

// request sends one control frame and blocks for its reply.
func (c *Client) request(typ byte, payload []byte) ([]byte, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	select {
	case <-c.dead:
		return nil, c.deadErr()
	default:
	}
	if err := c.cn.writeFrame(typ, payload); err != nil {
		c.fail(err)
		return nil, c.deadErr()
	}
	select {
	case f := <-c.reply:
		if f.typ == fErr {
			return nil, fmt.Errorf("cluster: %s: %s", c.name, f.payload)
		}
		return f.payload, nil
	case <-c.dead:
		return nil, c.deadErr()
	}
}

// Start deploys the shard: callbacks install locally, the rest of the spec
// crosses as a DeploySpec. The worker derives its plan factory from
// spec.Payload.
func (c *Client) Start(spec engine.HostSpec) error {
	c.cbMu.Lock()
	c.onExchange, c.onSink = spec.OnExchange, spec.OnSink
	c.cbMu.Unlock()
	p, err := encodeGob(DeploySpec{
		Shard: spec.Shard, Width: spec.Width, Buf: spec.Buf,
		DisableFusion: spec.DisableFusion, Columnar: spec.Columnar,
		Payload: spec.Payload,
	})
	if err != nil {
		return err
	}
	_, err = c.request(fDeploy, p)
	return err
}

// PushOwned streams a batch to the worker's shard, fire-and-forget: a nil
// return means the frame was written, not that the worker applied it — the
// coordinator's replay log is the acknowledgement (engine.Distributed logs
// before pushing and replays the log on shard death). On error the batch
// stays owned by the caller, per the owned-push contract; on success it
// recycles here, since only its encoding crosses the wire.
func (c *Client) PushOwned(source string, batch []stream.Tuple) error {
	select {
	case <-c.dead:
		return c.deadErr()
	default:
	}
	p, err := appendBatch(nil, source, batch)
	if err != nil {
		return err
	}
	if err := c.cn.writeFrame(fPush, p); err != nil {
		c.fail(err)
		return c.deadErr()
	}
	engine.PutBatch(batch)
	return nil
}

// Quiesce drains the worker's shard. Its reply doubles as the exchange
// barrier: every exchange frame the shard emitted while draining precedes
// the reply in TCP order and is therefore already delivered when Quiesce
// returns (see readLoop).
func (c *Client) Quiesce() error {
	_, err := c.request(fQuiesce, nil)
	return err
}

// ExportState pulls the quiesced shard's keyed operator state.
func (c *Client) ExportState() ([]engine.StateRec, error) {
	p, err := c.request(fExport, nil)
	if err != nil {
		return nil, err
	}
	var recs []engine.StateRec
	if err := decodeGob(p, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// Resume restarts the quiesced shard on a fresh epoch.
func (c *Client) Resume(spec engine.ResumeSpec) error {
	p, err := encodeGob(spec)
	if err != nil {
		return err
	}
	_, err = c.request(fResume, p)
	return err
}

// Drain performs the shard's end-of-run flush and returns its emissions.
func (c *Client) Drain() (*engine.HostDrain, error) {
	p, err := c.request(fDrain, nil)
	if err != nil {
		return nil, err
	}
	var d engine.HostDrain
	if err := decodeGob(p, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// Counters polls the shard's raw accounting.
func (c *Client) Counters() (*engine.HostCounters, error) {
	p, err := c.request(fCounters, nil)
	if err != nil {
		return nil, err
	}
	var hc engine.HostCounters
	if err := decodeGob(p, &hc); err != nil {
		return nil, err
	}
	return &hc, nil
}

// Stop halts the worker's shard. The connection stays up for a later
// redeploy; Close tears it down.
func (c *Client) Stop() error {
	_, err := c.request(fStop, nil)
	return err
}
