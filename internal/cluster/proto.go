// Package cluster is the framed-TCP transport of the distributed staged
// executor: a coordinator-side Client implementing engine.RemoteShardHost
// and a worker-side Worker hosting one engine.ShardHost per deployment.
//
// Wire protocol (version 1). After the TCP connect the coordinator sends a
// hello frame carrying the magic "DSMW" and the protocol version; the worker
// answers with an OK frame carrying its name. From then on both directions
// exchange frames of the form
//
//	type    byte
//	length  uint32, little-endian payload length
//	payload length bytes
//
// Control frames (deploy, quiesce, export, resume, drain, counters, stop)
// flow coordinator→worker and each is answered by exactly one fOK (with an
// optional gob payload) or fErr (error text) — the coordinator keeps at most
// one control request outstanding, so replies need no correlation ids. Push
// frames are one-way fire-and-forget data: the coordinator's replay log, not
// the transport, is the acknowledgement (see engine.Distributed). Exchange
// and sink frames flow worker→coordinator asynchronously as the shard's
// prefix emits output.
//
// Tuple batches (push, exchange, sink frames) do NOT use gob: a tuple's
// punctuation flag is deliberately dropped by its gob encoding (operator
// state holds data tuples only), but exchange edges carry the low-watermark
// markers the coordinator's merge orders by. Batches therefore use the
// staging record codec (staging.AppendRec/DecodeRec), which round-trips the
// flag:
//
//	name    uvarint length + bytes (source / edge / sink name)
//	records repeated: uvarint record length + staging record
//
// Control payloads — deploy specs, exported state, drains, counters — hold
// data only and travel as gob (the engine's state types register their
// concrete kinds in internal/stream).
package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"repro/internal/engine"
	"repro/internal/staging"
	"repro/internal/stream"
)

const (
	// magic opens every handshake; a listener that answers anything else is
	// not a dsmsd worker.
	magic = "DSMW"
	// protoVersion is bumped on any wire-incompatible change; the worker
	// rejects mismatches at handshake time.
	protoVersion = 1
	// maxFrame bounds a single frame's payload so a corrupt or hostile
	// length prefix cannot balloon into an arbitrary allocation.
	maxFrame = 64 << 20
)

// Frame types. Replies (fOK/fErr) answer the control frames only; fPush,
// fExchange and fSink are one-way.
const (
	fHello    = byte(iota + 1) // coordinator→worker: magic + version
	fDeploy                    // gob(DeploySpec) → fOK/fErr
	fPush                      // batch(source), one-way
	fExchange                  // worker→coordinator: batch(edge), one-way
	fSink                      // worker→coordinator: batch(sink), one-way
	fQuiesce                   // empty → fOK/fErr
	fExport                    // empty → fOK(gob []engine.StateRec)/fErr
	fResume                    // gob(engine.ResumeSpec) → fOK/fErr
	fDrain                     // empty → fOK(gob engine.HostDrain)/fErr
	fCounters                  // empty → fOK(gob engine.HostCounters)/fErr
	fStop                      // empty → fOK/fErr
	fOK                        // reply: success, optional gob payload
	fErr                       // reply: failure, payload is the error text
)

// DeploySpec is the wire form of an engine.HostSpec: the shard assignment
// plus the opaque payload the worker derives its plan factory from. The
// callbacks stay out — they are the transport itself.
type DeploySpec struct {
	Shard, Width  int
	Buf           int
	DisableFusion bool
	Columnar      bool
	Payload       any
}

// SourceSpec is one declared input stream in wire form; the worker rebuilds
// the *stream.Schema from the field list.
type SourceSpec struct {
	Name   string
	Fields []stream.Field
}

// QuerySpec is one admitted query in wire form: enough for a worker to
// recompile the exact dataflow the coordinator deployed. CQL compilation is
// canonical — the same text against the same catalog yields the same
// operator keys and plan wiring — so coordinator and workers derive
// structurally identical plans from the same specs, which is what the
// shard-state export/resume cycle requires.
type QuerySpec struct {
	User              int
	Tenant, Name, CQL string
}

// PlanPayload is the standard deploy payload dsmsd ships: the source
// catalog and the admitted queries, in the coordinator's deterministic
// compile order.
type PlanPayload struct {
	Sources []SourceSpec
	Queries []QuerySpec
}

func init() {
	gob.Register(PlanPayload{})
}

// encodeGob gob-encodes a control payload.
func encodeGob(v any) ([]byte, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return nil, fmt.Errorf("cluster: encode: %w", err)
	}
	return b.Bytes(), nil
}

// decodeGob decodes a control payload into v.
func decodeGob(p []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(v); err != nil {
		return fmt.Errorf("cluster: decode: %w", err)
	}
	return nil
}

// appendBatch encodes a named tuple batch — punctuation included — onto buf
// using the staging record codec. Tuples whose values fall outside the
// engine's scalar kinds do not serialize; the first such tuple aborts the
// whole batch (the caller keeps ownership and reports the error).
func appendBatch(buf []byte, name string, batch []stream.Tuple) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	var rec []byte
	for _, t := range batch {
		var err error
		if rec, err = staging.AppendRec(rec[:0], "", t); err != nil {
			return nil, fmt.Errorf("cluster: batch %q: %w", name, err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(rec)))
		buf = append(buf, rec...)
	}
	return buf, nil
}

// decodeBatch decodes a batch frame payload. The returned batch is leased
// from the engine's pool; the consumer owns it (recycle via
// engine.PutBatch).
func decodeBatch(p []byte) (string, []stream.Tuple, error) {
	nameLen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < nameLen {
		return "", nil, fmt.Errorf("cluster: batch name truncated")
	}
	name := string(p[n : n+int(nameLen)])
	p = p[n+int(nameLen):]
	batch := engine.GetBatch(0)
	for len(p) > 0 {
		recLen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < recLen {
			engine.PutBatch(batch)
			return "", nil, fmt.Errorf("cluster: batch %q: record truncated", name)
		}
		r, err := staging.DecodeRec(p[n : n+int(recLen)])
		if err != nil {
			engine.PutBatch(batch)
			return "", nil, fmt.Errorf("cluster: batch %q: %w", name, err)
		}
		batch = append(batch, r.Tuple)
		p = p[n+int(recLen):]
	}
	return name, batch, nil
}
