package cluster

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/stream"
)

var testSchema = stream.MustSchema(
	stream.Field{Name: "sym", Kind: stream.KindString},
	stream.Field{Name: "v", Kind: stream.KindFloat},
)

// mixedPlan mirrors the engine test fixture: a stateless filter feeding a
// raw sink, a keyed windowed sum (parallel stage) and a global windowed sum
// (suffix stage).
func mixedPlan() (*engine.Plan, error) {
	p := engine.NewPlan()
	p.AddSource("s", testSchema)
	flt := p.AddUnary(stream.NewFilter("pos", 1, stream.FieldCmp(1, stream.Gt, 0)), engine.FromSource("s"))
	p.AddSink("raw", flt)
	keyed := p.AddUnary(stream.MustWindowAgg("ksum", 2, stream.WindowSpec{
		Size: 4, Agg: stream.AggSum, Field: 1, GroupBy: 0,
	}), flt)
	p.AddSink("ksums", keyed)
	global := p.AddUnary(stream.MustWindowAgg("gsum", 2, stream.WindowSpec{
		Size: 5, Agg: stream.AggSum, Field: 1, GroupBy: -1,
	}), flt)
	p.AddSink("gsums", global)
	return p, nil
}

func keyedTuples(n, k int) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = stream.NewTuple(int64(i), fmt.Sprintf("k%d", i%k), float64(i%9)-1)
	}
	return out
}

// canon renders tuples as sorted "ts|v0|v1" strings for order-insensitive
// comparison keyed by timestamp.
func canon(ts []stream.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		parts := []string{fmt.Sprintf("%d", t.Ts)}
		for _, v := range t.Vals {
			parts = append(parts, fmt.Sprintf("%v", v))
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// startWorkers brings up n TCP workers serving the given plan factory and
// dials a client to each. Cleanup tears everything down.
func startWorkers(t *testing.T, n int, factory func() (*engine.Plan, error)) ([]*Worker, []engine.RemoteShardHost) {
	t.Helper()
	plans := func(any) (func() (*engine.Plan, error), error) { return factory, nil }
	workers := make([]*Worker, n)
	hosts := make([]engine.RemoteShardHost, n)
	for i := 0; i < n; i++ {
		w, err := Listen(WorkerConfig{Addr: "127.0.0.1:0", Name: fmt.Sprintf("w%d", i), Plans: plans, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		c, err := Dial(w.Addr(), DialOptions{Timeout: 5 * time.Second, Logf: t.Logf})
		if err != nil {
			t.Fatalf("dial %s: %v", w.Addr(), err)
		}
		t.Cleanup(func() { c.Close() })
		workers[i] = w
		hosts[i] = c
	}
	return workers, hosts
}

func pushAll(t *testing.T, d *engine.Distributed, tuples []stream.Tuple, batch int) {
	t.Helper()
	for i := 0; i < len(tuples); i += batch {
		end := i + batch
		if end > len(tuples) {
			end = len(tuples)
		}
		if err := d.PushBatch("s", tuples[i:end]); err != nil {
			t.Fatalf("push [%d:%d): %v", i, end, err)
		}
	}
}

// TestClusterTCPMatchesSync is the acceptance scenario: a coordinator and
// two TCP workers running the staged split must produce tuple-identical
// results to the synchronous engine.
func TestClusterTCPMatchesSync(t *testing.T) {
	plan, _ := mixedPlan()
	eng, err := engine.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	tuples := keyedTuples(1000, 7)
	pushAll2 := func(push func(string, []stream.Tuple) error) {
		for i := 0; i < len(tuples); i += 64 {
			end := i + 64
			if end > len(tuples) {
				end = len(tuples)
			}
			if err := push("s", tuples[i:end]); err != nil {
				t.Fatalf("push: %v", err)
			}
		}
	}
	pushAll2(eng.PushBatch)
	eng.Stop()

	_, hosts := startWorkers(t, 2, func() (*engine.Plan, error) { return mixedPlan() })
	d, err := engine.StartDistributed(func() (*engine.Plan, error) { return mixedPlan() },
		engine.DistConfig{Hosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", d.NumShards())
	}
	pushAll2(d.PushBatch)
	d.Stop()

	// The global suffix is order-exact; parallel sinks are canonical by
	// timestamp (cross-shard interleave is the one permitted reordering).
	if got, want := canon(d.Results("gsums")), canon(eng.Results("gsums")); !reflect.DeepEqual(got, want) {
		t.Errorf("gsums differ:\n got %v\nwant %v", got, want)
	}
	for _, q := range []string{"raw", "ksums"} {
		got, want := canon(d.Results(q)), canon(eng.Results(q))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s differ: got %d tuples, want %d", q, len(got), len(want))
		}
	}
	if la := d.LateArrivals(); la != 0 {
		t.Errorf("LateArrivals = %d, want 0 on a failure-free run", la)
	}
	ws := d.WorkerStats()
	if len(ws) != 2 {
		t.Fatalf("WorkerStats = %d rows, want 2", len(ws))
	}
	for _, w := range ws {
		if !w.Alive || w.Pushed == 0 {
			t.Errorf("worker %s: alive=%v pushed=%d", w.Name, w.Alive, w.Pushed)
		}
	}
}

// TestClusterWorkerDeathRecovery kills one of three TCP workers mid-stream
// (by closing the worker, which severs the connection) and verifies the
// coordinator replays onto the survivors with no acknowledged tuple lost —
// at-least-once across the failure, so duplicates are permitted.
func TestClusterWorkerDeathRecovery(t *testing.T) {
	plan, _ := mixedPlan()
	eng, err := engine.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	tuples := keyedTuples(900, 5)
	for i := 0; i < len(tuples); i += 50 {
		if err := eng.PushBatch("s", tuples[i:i+50]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Stop()

	workers, hosts := startWorkers(t, 3, func() (*engine.Plan, error) { return mixedPlan() })
	d, err := engine.StartDistributed(func() (*engine.Plan, error) { return mixedPlan() },
		engine.DistConfig{Hosts: hosts, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i += 50 {
		if err := d.PushBatch("s", tuples[i:i+50]); err != nil {
			t.Fatal(err)
		}
	}
	workers[1].Close() // sever w1's connection: shard death from the coordinator's view
	deadline := time.Now().Add(10 * time.Second)
	for d.NumShards() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("recovery did not converge: NumShards = %d", d.NumShards())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 400; i < len(tuples); i += 50 {
		if err := d.PushBatch("s", tuples[i:i+50]); err != nil {
			t.Fatal(err)
		}
	}
	d.Stop()

	// No acknowledged loss: every oracle tuple appears at least as often in
	// the distributed run (duplicates from replay are permitted). The
	// containment bound applies to the stateless raw sink — windowed
	// aggregates downstream of replayed duplicates legitimately regroup, so
	// for them the check is liveness, not equality.
	want := count(canon(eng.Results("raw")))
	got := count(canon(d.Results("raw")))
	for k, n := range want {
		if got[k] < n {
			t.Errorf("raw: %q appears %d times, want >= %d", k, got[k], n)
		}
	}
	for _, q := range []string{"ksums", "gsums"} {
		if len(d.Results(q)) == 0 {
			t.Errorf("%s: no results after recovery", q)
		}
	}
	var deadRows int
	for _, w := range d.WorkerStats() {
		if !w.Alive {
			deadRows++
		}
	}
	if deadRows != 1 {
		t.Errorf("dead worker rows = %d, want 1", deadRows)
	}
	t.Logf("late arrivals after recovery: %d", d.LateArrivals())
}

func count(keys []string) map[string]int {
	m := make(map[string]int, len(keys))
	for _, k := range keys {
		m[k]++
	}
	return m
}

// TestClusterPlanPayloadDeploy drives the full dsmsd route: the coordinator
// ships a PlanPayload (catalog + CQL) and the workers recompile it with
// PlanFactory; results must match the same factory run synchronously.
func TestClusterPlanPayloadDeploy(t *testing.T) {
	payload := PlanPayload{
		Sources: []SourceSpec{{Name: "stocks", Fields: []stream.Field{
			{Name: "symbol", Kind: stream.KindString},
			{Name: "price", Kind: stream.KindFloat},
		}}},
		Queries: []QuerySpec{
			{User: 1, Tenant: "t", Name: "t/keyed", CQL: "SELECT sum(price) FROM stocks WHERE price > 0 WINDOW 4 GROUP BY symbol"},
			{User: 2, Tenant: "t", Name: "t/global", CQL: "SELECT sum(price) FROM stocks WINDOW 5"},
		},
	}
	factory, err := PlanFactory(payload)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]stream.Tuple, 600)
	for i := range tuples {
		tuples[i] = stream.NewTuple(int64(i), fmt.Sprintf("s%d", i%6), float64(i%11)-2)
	}
	for i := 0; i < len(tuples); i += 40 {
		if err := eng.PushBatch("stocks", tuples[i:i+40]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Stop()

	workers := make([]*Worker, 2)
	hosts := make([]engine.RemoteShardHost, 2)
	for i := range workers {
		w, err := Listen(WorkerConfig{Addr: "127.0.0.1:0", Name: fmt.Sprintf("pw%d", i), Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		c, err := Dial(w.Addr(), DialOptions{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		workers[i], hosts[i] = w, c
	}
	d, err := engine.StartDistributed(factory, engine.DistConfig{Hosts: hosts, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tuples); i += 40 {
		if err := d.PushBatch("stocks", tuples[i:i+40]); err != nil {
			t.Fatal(err)
		}
	}
	d.Stop()
	for _, q := range []string{"t/keyed", "t/global"} {
		got, want := canon(d.Results(q)), canon(eng.Results(q))
		if len(want) == 0 {
			t.Fatalf("%s: oracle produced no results", q)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s differ: got %d tuples, want %d", q, len(got), len(want))
		}
	}
}

// TestBatchCodecRoundTrip: data tuples and punctuation survive the wire
// codec — the punctuation flag is why batches do not travel as gob.
func TestBatchCodecRoundTrip(t *testing.T) {
	in := []stream.Tuple{
		stream.NewTuple(3, "a", 1.5),
		stream.NewPunctuation(7),
		stream.NewTuple(9, "b", -2.0),
	}
	p, err := appendBatch(nil, "xchg:n1", in)
	if err != nil {
		t.Fatal(err)
	}
	name, out, err := decodeBatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if name != "xchg:n1" {
		t.Fatalf("name = %q", name)
	}
	if len(out) != 3 || !out[1].IsPunct() || out[1].Ts != 7 || out[0].Vals[0] != "a" || out[2].Vals[1] != -2.0 {
		t.Fatalf("round trip mangled batch: %+v", out)
	}
	if out[0].IsPunct() || out[2].IsPunct() {
		t.Fatal("data tuples came back punctuated")
	}
	engine.PutBatch(out)
}
