package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// conn frames a TCP connection. Writes are mutex-serialized so frames from
// concurrent producers (a worker's per-sink tap goroutines, a coordinator's
// pushes racing a control request) interleave whole, never byte-wise; reads
// are single-reader by construction — each side runs exactly one read loop.
type conn struct {
	c  net.Conn
	br *bufio.Reader

	wmu  sync.Mutex
	wbuf []byte // frame assembly buffer; one write syscall per frame
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// writeFrame sends one frame as a single write.
func (cn *conn) writeFrame(typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("cluster: frame type %d payload %d exceeds max %d", typ, len(payload), maxFrame)
	}
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	b := append(cn.wbuf[:0], typ)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	cn.wbuf = b[:0]
	_, err := cn.c.Write(b)
	return err
}

// readFrame blocks for the next frame. The payload is freshly allocated and
// owned by the caller.
func (cn *conn) readFrame() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(cn.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame type %d declares %d bytes (max %d)", hdr[0], n, maxFrame)
	}
	if n == 0 {
		return hdr[0], nil, nil
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(cn.br, p); err != nil {
		return 0, nil, err
	}
	return hdr[0], p, nil
}

func (cn *conn) close() error { return cn.c.Close() }
