package cluster

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/cloud"
	"repro/internal/cql"
	"repro/internal/engine"
	"repro/internal/stream"
)

// WorkerConfig assembles a worker process.
type WorkerConfig struct {
	// Addr is the TCP listen address (e.g. ":7071").
	Addr string
	// Name is the worker's self-reported identity, echoed in the handshake
	// and surfaced in the coordinator's /v1/stats workers block.
	Name string
	// Plans derives a plan factory from a deploy payload. Nil means
	// PlanFactory (the standard PlanPayload route); tests inject fixed
	// factories here.
	Plans func(payload any) (func() (*engine.Plan, error), error)
	// Logf, when non-nil, receives connection and push-failure notices.
	Logf func(string, ...any)
}

// Worker is the remote half of a distributed deployment: it accepts one
// coordinator connection at a time, hosts one engine.ShardHost per deploy,
// and frames the shard's exchange/sink output back over the connection. A
// lost connection kills the hosted shard (its output has nowhere to go; the
// coordinator replays the shard's log onto survivors) and the worker goes
// back to accepting — a fresh coordinator, or the same one re-deploying,
// starts a fresh shard.
type Worker struct {
	cfg WorkerConfig
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	cur    net.Conn
}

// Listen binds the worker's address. Serve starts accepting.
func Listen(cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		cfg.Name = cfg.Addr
	}
	if cfg.Plans == nil {
		cfg.Plans = PlanFactory
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", cfg.Addr, err)
	}
	return &Worker{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Serve accepts and serves coordinator connections, one at a time, until
// Close. Returns nil after Close, the accept error otherwise.
func (w *Worker) Serve() error {
	for {
		nc, err := w.ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("cluster: worker %s: accept: %w", w.cfg.Name, err)
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			nc.Close()
			return nil
		}
		w.cur = nc
		w.mu.Unlock()
		w.serveConn(newConn(nc))
		w.mu.Lock()
		w.cur = nil
		w.mu.Unlock()
	}
}

// Close stops accepting and severs the current coordinator, if any.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	cur := w.cur
	w.mu.Unlock()
	err := w.ln.Close()
	if cur != nil {
		cur.Close()
	}
	return err
}

// serveConn runs one coordinator session: handshake, then a frame loop
// hosting at most one ShardHost. The loop is the connection's single
// reader; the host's tap goroutines write exchange/sink frames concurrently
// through the conn's write mutex.
func (w *Worker) serveConn(cn *conn) {
	defer cn.close()
	typ, p, err := cn.readFrame()
	if err != nil || typ != fHello || len(p) != len(magic)+1 ||
		string(p[:len(magic)]) != magic || p[len(magic)] != protoVersion {
		if err == nil {
			cn.writeFrame(fErr, []byte(fmt.Sprintf("%s: bad handshake", w.cfg.Name)))
		}
		return
	}
	if err := cn.writeFrame(fOK, []byte(w.cfg.Name)); err != nil {
		return
	}
	w.cfg.Logf("cluster: worker %s: coordinator connected (%s)", w.cfg.Name, cn.c.RemoteAddr())

	var host *engine.ShardHost
	defer func() {
		if host != nil {
			host.Kill()
			host.Stop()
		}
	}()
	for {
		typ, p, err := cn.readFrame()
		if err != nil {
			w.cfg.Logf("cluster: worker %s: coordinator gone: %v", w.cfg.Name, err)
			return
		}
		switch typ {
		case fDeploy:
			host = w.handleDeploy(cn, host, p)
		case fPush:
			name, batch, err := decodeBatch(p)
			if err != nil {
				w.cfg.Logf("cluster: worker %s: bad push frame: %v", w.cfg.Name, err)
				continue
			}
			if host == nil {
				engine.PutBatch(batch)
				continue
			}
			if err := host.PushOwned(name, batch); err != nil {
				// Rejected whole: ownership stayed here. Pushes are one-way;
				// the coordinator's replay log covers the loss.
				engine.PutBatch(batch)
				w.cfg.Logf("cluster: worker %s: push %s: %v", w.cfg.Name, name, err)
			}
		case fQuiesce:
			reply(cn, nil, withHost(host, func() error { return host.Quiesce() }))
		case fExport:
			if host == nil {
				reply(cn, nil, errNoHost)
				continue
			}
			recs, err := host.ExportState()
			replyGob(cn, recs, err)
		case fResume:
			var spec engine.ResumeSpec
			err := decodeGob(p, &spec)
			if err == nil {
				err = withHost(host, func() error { return host.Resume(spec) })
			}
			reply(cn, nil, err)
		case fDrain:
			if host == nil {
				reply(cn, nil, errNoHost)
				continue
			}
			d, err := host.Drain()
			replyGob(cn, d, err)
		case fCounters:
			if host == nil {
				reply(cn, nil, errNoHost)
				continue
			}
			hc, err := host.Counters()
			replyGob(cn, hc, err)
		case fStop:
			reply(cn, nil, withHost(host, func() error { return host.Stop() }))
		default:
			reply(cn, nil, fmt.Errorf("unexpected frame type %d", typ))
		}
	}
}

// handleDeploy replaces the hosted shard with a fresh one built from the
// deploy spec, replying fOK/fErr. A failed deploy leaves no host.
func (w *Worker) handleDeploy(cn *conn, old *engine.ShardHost, p []byte) *engine.ShardHost {
	if old != nil {
		old.Kill()
		old.Stop()
	}
	var spec DeploySpec
	err := decodeGob(p, &spec)
	var factory func() (*engine.Plan, error)
	if err == nil {
		factory, err = w.cfg.Plans(spec.Payload)
	}
	if err != nil {
		reply(cn, nil, err)
		return nil
	}
	host := engine.NewShardHost(w.cfg.Name, factory)
	err = host.Start(engine.HostSpec{
		Shard: spec.Shard, Width: spec.Width, Buf: spec.Buf,
		DisableFusion: spec.DisableFusion, Columnar: spec.Columnar,
		OnExchange: w.emitter(cn, fExchange),
		OnSink:     w.emitter(cn, fSink),
	})
	if err != nil {
		reply(cn, nil, err)
		return nil
	}
	reply(cn, nil, nil)
	return host
}

// emitter wraps one output direction (exchange edges or parallel sinks) as
// a frame writer. The callback owns each batch; it always recycles. Write
// errors are dropped on the floor — the read loop sees the same dead
// connection and kills the host.
func (w *Worker) emitter(cn *conn, typ byte) func(string, []stream.Tuple) {
	return func(name string, batch []stream.Tuple) {
		p, err := appendBatch(nil, name, batch)
		if err != nil {
			w.cfg.Logf("cluster: worker %s: encode %s: %v", w.cfg.Name, name, err)
		} else if err := cn.writeFrame(typ, p); err != nil {
			w.cfg.Logf("cluster: worker %s: emit %s: %v", w.cfg.Name, name, err)
		}
		engine.PutBatch(batch)
	}
}

var errNoHost = fmt.Errorf("no deployed shard")

// withHost runs fn if a host is deployed.
func withHost(host *engine.ShardHost, fn func() error) error {
	if host == nil {
		return errNoHost
	}
	return fn()
}

// reply answers a control frame.
func reply(cn *conn, payload []byte, err error) {
	if err != nil {
		cn.writeFrame(fErr, []byte(err.Error()))
		return
	}
	cn.writeFrame(fOK, payload)
}

// replyGob answers a control frame with a gob payload.
func replyGob(cn *conn, v any, err error) {
	if err == nil {
		var p []byte
		if p, err = encodeGob(v); err == nil {
			reply(cn, p, nil)
			return
		}
	}
	reply(cn, nil, err)
}

// PlanFactory is the standard deploy-payload interpreter: the payload is a
// PlanPayload, the factory recompiles its queries against its catalog with
// cloud.CompilePlan — the same deterministic compile the coordinator ran,
// yielding a structurally identical plan (which the export/resume state
// cycle requires).
func PlanFactory(payload any) (func() (*engine.Plan, error), error) {
	pp, ok := payload.(PlanPayload)
	if !ok {
		return nil, fmt.Errorf("cluster: deploy payload is %T, want cluster.PlanPayload", payload)
	}
	sources := make([]cloud.SourceDecl, 0, len(pp.Sources))
	catalog := make(cql.Catalog, len(pp.Sources))
	for _, s := range pp.Sources {
		schema, err := stream.NewSchema(s.Fields...)
		if err != nil {
			return nil, fmt.Errorf("cluster: source %q: %w", s.Name, err)
		}
		sources = append(sources, cloud.SourceDecl{Name: s.Name, Schema: schema})
		catalog[s.Name] = cql.Source{Schema: schema}
	}
	costs := cql.DefaultCosts()
	winners := make([]cloud.Submission, 0, len(pp.Queries))
	for _, q := range pp.Queries {
		parsed, err := cql.Parse(q.CQL)
		if err != nil {
			return nil, fmt.Errorf("cluster: query %q: %w", q.Name, err)
		}
		comp, err := cql.Compile(parsed, catalog, costs)
		if err != nil {
			return nil, fmt.Errorf("cluster: query %q: %w", q.Name, err)
		}
		winners = append(winners, cloud.Submission{
			User: q.User, Tenant: q.Tenant, Name: q.Name,
			Operators: comp.Operators, Deploy: comp.Deploy,
		})
	}
	return func() (*engine.Plan, error) { return cloud.CompilePlan(sources, winners) }, nil
}
