package engine

import (
	"sync"

	"repro/internal/stream"
)

// The batch pool recycles []stream.Tuple buffers around the concurrent
// executors' hot path so steady-state execution allocates no batch slices:
// ingress copies, operator output batches and fan-out clones are drawn from
// the pool, travel the channel graph under the single-owner rule (see the
// batch-ownership contract in executor.go), and re-enter the pool where
// their last owner consumes them — the sink/tap boundary, or an operator
// goroutine that has finished reading its input batch.
//
// Two pools cycle together so a put allocates nothing: batchPool holds
// loaded boxes (*[]stream.Tuple with a usable buffer), boxPool holds the
// empty boxes getBatch leaves behind. A pooled buffer keeps its backing
// array's Tuple contents beyond len 0 until overwritten, which pins their
// Vals slices; that retention is bounded by the pool's working set and the
// maximum batch size, the usual sync.Pool trade.
var (
	batchPool sync.Pool
	boxPool   sync.Pool
)

// getBatch returns an empty batch buffer, pooled when available. capHint is
// the expected final length — used only when the pool is empty; a smaller
// pooled buffer is still returned (append grows it once and the grown buffer
// re-enters the pool, so capacities converge on the workload's batch size).
func getBatch(capHint int) []stream.Tuple {
	if p, ok := batchPool.Get().(*[]stream.Tuple); ok {
		b := (*p)[:0]
		*p = nil
		boxPool.Put(p)
		guardGetBatch(b)
		return b
	}
	if capHint < 1 {
		capHint = 1
	}
	b := make([]stream.Tuple, 0, capHint)
	guardGetBatch(b)
	return b
}

// putBatch returns a buffer to the pool. The caller must own b outright: no
// other goroutine may hold b or any slice sharing its backing array, and b
// must not be a sub-slice of a buffer something else still reads. Race
// builds enforce the rule: guardPutBatch panics on a double put and poisons
// the returned contents so stale aliases read impossible data.
func putBatch(b []stream.Tuple) {
	if cap(b) == 0 {
		return
	}
	guardPutBatch(b)
	b = b[:0]
	p, ok := boxPool.Get().(*[]stream.Tuple)
	if !ok {
		p = new([]stream.Tuple)
	}
	*p = b
	batchPool.Put(p)
}

// colPools recycles *stream.ColBatch buffers per physical column layout
// (Schema.Layout): batches of different schemas with identical layouts share
// one pool class, so the executor swap across admission cycles doesn't
// strand a warmed-up pool. Like the row pool, column buffers travel the
// dataflow under the single-owner rule and re-enter the pool where their
// last owner consumes them. The registry is a plain RWMutex map rather than
// a sync.Map: layout classes are few and long-lived, and a string-keyed map
// lookup stays allocation-free on the hot get/put path where sync.Map would
// box the key (and LoadOrStore its value) on every call.
var colPools struct {
	sync.RWMutex
	m map[string]*sync.Pool
}

// colPool returns (creating once) the pool class for a layout.
func colPool(layout string) *sync.Pool {
	colPools.RLock()
	p := colPools.m[layout]
	colPools.RUnlock()
	if p != nil {
		return p
	}
	colPools.Lock()
	defer colPools.Unlock()
	if colPools.m == nil {
		colPools.m = make(map[string]*sync.Pool)
	}
	if p = colPools.m[layout]; p == nil {
		p = &sync.Pool{}
		colPools.m[layout] = p
	}
	return p
}

// getColBatch returns an empty columnar batch bound to schema, pooled when
// one of the matching layout class is available.
func getColBatch(schema *stream.Schema, capHint int) *stream.ColBatch {
	if cb, ok := colPool(schema.Layout()).Get().(*stream.ColBatch); ok {
		guardGetCol(cb)
		cb.ResetFor(schema)
		return cb
	}
	if capHint < 1 {
		capHint = 1
	}
	cb := stream.NewColBatch(schema, capHint)
	guardGetCol(cb)
	return cb
}

// putColBatch returns a columnar batch to its layout class pool. The
// single-owner rule of putBatch applies: no other goroutine may hold cb or
// any of its column slices. Race builds enforce it: guardPutCol panics on a
// double put and invalidates the batch so a stale reference panics on use.
func putColBatch(cb *stream.ColBatch) {
	if cb == nil {
		return
	}
	cb.Reset()
	guardPutCol(cb)
	colPool(cb.Layout()).Put(cb)
}

// GetBatch leases an empty tuple buffer from the engine's shared batch pool,
// with capacity sized by capHint when the pool has nothing to reuse. It is
// the producer half of the zero-copy ingress cycle: fill the buffer, hand it
// to PushOwnedBatch, and the engine recycles it into the pool once the last
// operator consuming it is done — so a steady push loop allocates no batch
// buffers at all.
func GetBatch(capHint int) []stream.Tuple { return getBatch(capHint) }

// PutBatch returns a leased or owned buffer to the engine's batch pool
// without pushing it. The ownership rule of putBatch applies: the caller
// must be the slice's sole owner. Useful when a producer fills a buffer it
// then decides not to push.
func PutBatch(b []stream.Tuple) { putBatch(b) }

// GetColBatch leases an empty columnar batch bound to schema from the
// engine's layout-classed column pools, sized by capHint rows when the pool
// has nothing to reuse. It is the producer half of the zero-copy columnar
// ingress cycle: append rows (ColBatch.AppendTuple or the typed columns
// directly), hand the batch to an OwnedColBatchPusher, and the engine
// recycles it once the dataflow is done — no boxed values, no batch
// allocation at steady state.
func GetColBatch(schema *stream.Schema, capHint int) *stream.ColBatch {
	return getColBatch(schema, capHint)
}

// PutColBatch returns a leased or owned columnar batch to the pool without
// pushing it. The single-owner rule applies. Columnar sink taps
// (RuntimeConfig.ColTaps) call this once they are done with a delivered
// batch.
func PutColBatch(cb *stream.ColBatch) { putColBatch(cb) }
