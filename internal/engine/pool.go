package engine

import (
	"sync"

	"repro/internal/stream"
)

// The batch pool recycles []stream.Tuple buffers around the concurrent
// executors' hot path so steady-state execution allocates no batch slices:
// ingress copies, operator output batches and fan-out clones are drawn from
// the pool, travel the channel graph under the single-owner rule (see the
// batch-ownership contract in executor.go), and re-enter the pool where
// their last owner consumes them — the sink/tap boundary, or an operator
// goroutine that has finished reading its input batch.
//
// Two pools cycle together so a put allocates nothing: batchPool holds
// loaded boxes (*[]stream.Tuple with a usable buffer), boxPool holds the
// empty boxes getBatch leaves behind. A pooled buffer keeps its backing
// array's Tuple contents beyond len 0 until overwritten, which pins their
// Vals slices; that retention is bounded by the pool's working set and the
// maximum batch size, the usual sync.Pool trade.
var (
	batchPool sync.Pool
	boxPool   sync.Pool
)

// getBatch returns an empty batch buffer, pooled when available. capHint is
// the expected final length — used only when the pool is empty; a smaller
// pooled buffer is still returned (append grows it once and the grown buffer
// re-enters the pool, so capacities converge on the workload's batch size).
func getBatch(capHint int) []stream.Tuple {
	if p, ok := batchPool.Get().(*[]stream.Tuple); ok {
		b := (*p)[:0]
		*p = nil
		boxPool.Put(p)
		return b
	}
	if capHint < 1 {
		capHint = 1
	}
	return make([]stream.Tuple, 0, capHint)
}

// putBatch returns a buffer to the pool. The caller must own b outright: no
// other goroutine may hold b or any slice sharing its backing array, and b
// must not be a sub-slice of a buffer something else still reads.
func putBatch(b []stream.Tuple) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	p, ok := boxPool.Get().(*[]stream.Tuple)
	if !ok {
		p = new([]stream.Tuple)
	}
	*p = b
	batchPool.Put(p)
}

// GetBatch leases an empty tuple buffer from the engine's shared batch pool,
// with capacity sized by capHint when the pool has nothing to reuse. It is
// the producer half of the zero-copy ingress cycle: fill the buffer, hand it
// to PushOwnedBatch, and the engine recycles it into the pool once the last
// operator consuming it is done — so a steady push loop allocates no batch
// buffers at all.
func GetBatch(capHint int) []stream.Tuple { return getBatch(capHint) }

// PutBatch returns a leased or owned buffer to the engine's batch pool
// without pushing it. The ownership rule of putBatch applies: the caller
// must be the slice's sole owner. Useful when a producer fills a buffer it
// then decides not to push.
func PutBatch(b []stream.Tuple) { putBatch(b) }
