package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/stream"
)

// StagedConfig tunes StartStaged. The zero value is usable: GOMAXPROCS
// shards, a 64-batch buffer per edge, partition keys inferred from the plan.
type StagedConfig struct {
	// Shards is the parallel-stage width; <= 0 means GOMAXPROCS.
	Shards int
	// Buf is the per-edge channel buffer in batches; <= 0 means 64.
	Buf int
	// Shedder, when non-nil, sheds at the true ingress edges only: every
	// shard's source routers and the global stage's direct source feeds.
	// Exchange edges never shed — they are interior edges of the staged
	// graph, and dropping there would double-penalize tuples that already
	// survived ingress shedding.
	Shedder Shedder
}

// Staged executes any plan across shards by splitting it into two stages
// (see Plan.Analyze): the maximal shardable prefix runs as N independent
// Runtimes partitioned on the plan's inferred keys, and the global suffix —
// ungrouped windows, un-keyed joins, anything whose state spans partition
// keys — runs once, fed by exchange edges that merge the shards' outputs in
// tuple-timestamp order. Plans with no global operators degenerate to pure
// sharding; plans with no parallel operators run on the single global
// runtime. Either way every plan executes, which is what lets an admission
// daemon route all admitted plans through one backend unconditionally.
//
// Ordering guarantees across the merge: within one exchange edge, tuples are
// delivered to the global stage in nondecreasing timestamp order provided
// each shard emits in nondecreasing timestamp order (true when sources push
// timestamp-ordered batches, since every operator preserves or maximizes
// timestamps); ties across shards break by shard index. Across different
// exchange edges (and relative to direct source feeds) no order is
// guaranteed — the same independence the Runtime's channel edges already
// have. With strictly increasing source timestamps, a global stage fed by
// one exchange therefore sees exactly the tuple sequence the synchronous
// Engine would, and produces tuple-identical results.
//
// Results completeness and per-edge merge progress are only guaranteed after
// Stop: the merge may buffer (without bound, and without blocking shards)
// while it waits for slow shards, so mid-run Results can lag. Stats are
// merged across both stages onto the analyzed plan's node IDs, and
// OfferedLoad reconstruction runs over the full staged topology, so shed
// accounting stays correct through the exchange.
type Staged struct {
	split *StageSplit
	topo  *Plan // analyzed full plan: stats topology; its instances run the suffix
	part  PartitionFunc

	shards    []*Runtime
	shardIDs  []int // prefix-plan node index -> topo node ID
	global    *Runtime
	globalIDs []int // suffix-plan node index -> topo node ID

	exchanges []*exchangeMerge
	mergeWG   sync.WaitGroup

	ticks    atomic.Int64
	dropped  atomic.Int64
	stopped  atomic.Bool
	stopOnce sync.Once
}

// StartStaged analyzes the factory's plan, starts the parallel stage (N
// shard Runtimes over the carved prefix) and the global stage (one Runtime
// over the carved suffix), and wires the exchange merges between them. The
// factory must return structurally identical plans with fresh operator
// instances, exactly like StartSharded's.
func StartStaged(factory func() (*Plan, error), cfg StagedConfig) (*Staged, error) {
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	buf := cfg.Buf
	if buf <= 0 {
		buf = 64
	}
	full, err := factory()
	if err != nil {
		return nil, fmt.Errorf("engine: staged plan factory: %w", err)
	}
	split, err := full.Analyze()
	if err != nil {
		return nil, err
	}
	s := &Staged{split: split, topo: full, part: split.Partition()}

	if split.NumParallel() == 0 {
		// Fully global: no parallel stage, no exchanges — the whole plan
		// (sources included, even unconsumed ones) runs on one Runtime,
		// reusing the analyzed plan's instances.
		s.global, err = StartRuntime(full, RuntimeConfig{Buf: buf, Shedder: cfg.Shedder})
		if err != nil {
			return nil, err
		}
		s.globalIDs = identity(len(full.nodes))
		return s, nil
	}

	if split.NumGlobal() > 0 {
		// The suffix reuses the analyzed plan's operator instances; each
		// shard below gets its own factory instances.
		suffix, ids, err := split.suffixPlan(full)
		if err != nil {
			return nil, err
		}
		noShed := make(map[string]bool, len(split.Exchanges))
		for _, id := range split.Exchanges {
			noShed[ExchangeName(id)] = true
		}
		s.global, err = StartRuntime(suffix, RuntimeConfig{Buf: buf, Shedder: cfg.Shedder, NoShedSources: noShed})
		if err != nil {
			return nil, err
		}
		s.globalIDs = ids
		for _, id := range split.Exchanges {
			s.exchanges = append(s.exchanges, newExchangeMerge(ExchangeName(id), n))
		}
	}

	for i := 0; i < n; i++ {
		p, err := factory()
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("engine: staged plan factory: %w", err)
		}
		if len(p.nodes) != len(full.nodes) {
			s.Stop()
			return nil, fmt.Errorf("engine: staged plan factory is not deterministic: analyzed plan has %d nodes, shard %d has %d", len(full.nodes), i, len(p.nodes))
		}
		prefix, ids, err := split.prefixPlan(p)
		if err != nil {
			s.Stop()
			return nil, err
		}
		var taps map[string]func([]stream.Tuple)
		if len(s.exchanges) > 0 {
			taps = make(map[string]func([]stream.Tuple), len(s.exchanges))
			for _, x := range s.exchanges {
				taps[x.name] = x.offer(i)
			}
		}
		rt, err := StartRuntime(prefix, RuntimeConfig{Buf: buf, Shedder: cfg.Shedder, Taps: taps})
		if err != nil {
			s.Stop()
			return nil, err
		}
		if i == 0 {
			s.shardIDs = ids
		}
		s.shards = append(s.shards, rt)
	}

	// One merger per exchange edge, pushing Ts-merged batches into the
	// global stage for the life of the executor.
	for _, x := range s.exchanges {
		s.mergeWG.Add(1)
		go func(x *exchangeMerge) {
			defer s.mergeWG.Done()
			x.run(s.global, buf)
		}(x)
	}
	return s, nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Split returns the stage analysis this executor runs under.
func (s *Staged) Split() *StageSplit { return s.split }

// NumShards returns the parallel-stage width (0 for a fully global plan).
func (s *Staged) NumShards() int { return len(s.shards) }

// PushBatch routes a source batch into the stage(s) consuming it: the
// parallel stage receives it hash-partitioned on the source's inferred key,
// and sources the global stage consumes directly are forwarded there whole.
// Schema validation happens once here — the stage runtimes' carved plans
// carry no schemas, so a source feeding both stages validates (and counts
// rejects for) each tuple exactly once.
func (s *Staged) PushBatch(source string, batch []stream.Tuple) error {
	if s.stopped.Load() {
		return errStopped
	}
	prefix := s.split.PrefixSources[source] && len(s.shards) > 0
	direct := s.split.DirectSources[source] || (s.split.PrefixSources[source] && len(s.shards) == 0)
	if !prefix && !direct {
		s.dropped.Add(int64(len(batch)))
		return fmt.Errorf("engine: unknown source %q", source)
	}
	var first error
	if schema := s.topo.sources[source].schema; schema != nil {
		// Filter lazily: the conforming-only common case forwards the
		// caller's batch without copying.
		kept := batch
		copied := false
		for i, t := range batch {
			if schema.Conforms(t) {
				if copied {
					kept = append(kept, t)
				}
				continue
			}
			if first == nil {
				first = fmt.Errorf("engine: tuple does not conform to source %q schema %s", source, schema)
			}
			s.dropped.Add(1)
			if !copied {
				kept = append(make([]stream.Tuple, 0, len(batch)-1), batch[:i]...)
				copied = true
			}
		}
		batch = kept
		if len(batch) == 0 {
			return first
		}
	}
	if direct {
		// Runtime.PushBatch copies what it retains, so the same caller
		// slice can also feed the shards below.
		if err := s.global.PushBatch(source, batch); err != nil && first == nil {
			first = err
		}
	}
	if prefix {
		n := uint64(len(s.shards))
		sub := make([][]stream.Tuple, len(s.shards))
		for _, t := range batch {
			i := s.part(source, t) % n
			sub[i] = append(sub[i], t)
		}
		for i, ts := range sub {
			if len(ts) == 0 {
				continue
			}
			if err := s.shards[i].PushBatch(source, ts); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Advance moves the merged metering clock forward; the stage runtimes stay
// at zero ticks so their raw costs aggregate cleanly.
func (s *Staged) Advance(ticks int64) { s.ticks.Add(ticks) }

// Results concatenates the named query's outputs across the stage that owns
// its sink (parallel sinks concatenate in shard order) and clears them.
// Complete only after Stop.
func (s *Staged) Results(query string) []stream.Tuple {
	var out []stream.Tuple
	for _, sh := range s.shards {
		out = append(out, sh.Results(query)...)
	}
	if s.global != nil {
		out = append(out, s.global.Results(query)...)
	}
	return out
}

// Stats merges both stages' per-node counters onto the analyzed plan's node
// IDs and recomputes loads over the full staged topology: tuple counts sum
// across shards and stages, and OfferedLoad reconstruction (demandIn)
// propagates upstream shed losses across exchange edges exactly as it does
// across in-plan edges, so drop metering survives the stage boundary.
func (s *Staged) Stats() []NodeLoad {
	n := len(s.topo.nodes)
	tuples := make([]int64, n)
	outs := make([]int64, n)
	sheds := make([]int64, n)
	shedUtil := make([]float64, n)
	add := func(rt *Runtime, ids []int) {
		for j, nl := range rt.Stats() { // stage ticks stay 0: raw counts
			i := ids[j]
			tuples[i] += nl.Tuples
			outs[i] += nl.OutTuples
			sheds[i] += nl.ShedTuples
			shedUtil[i] += nl.ShedUtilityLost
		}
	}
	for _, sh := range s.shards {
		add(sh, s.shardIDs)
	}
	if s.global != nil {
		add(s.global, s.globalIDs)
	}
	return assembleLoads(s.topo, tuples, outs, sheds, shedUtil, s.ticks.Load())
}

// ShardStats returns each parallel shard's own per-node loads (indexed by
// the analyzed plan's node IDs), exposing per-shard imbalance the merged
// Stats sum hides. Ticks are this executor's Advance ticks.
func (s *Staged) ShardStats() [][]NodeLoad {
	return perShardLoads(s.shards, s.shardIDs, s.ticks.Load())
}

// Stop drains the staged graph front to back: the shard runtimes stop
// (flushing open state through their taps), the exchange merges drain their
// remaining buffers into the global stage, and the global runtime stops
// last. Idempotent; every caller returns only after the full drain.
func (s *Staged) Stop() {
	s.stopOnce.Do(func() {
		s.stopped.Store(true)
		var wg sync.WaitGroup
		for _, sh := range s.shards {
			wg.Add(1)
			go func(rt *Runtime) {
				defer wg.Done()
				rt.Stop()
			}(sh)
		}
		wg.Wait()
		for _, x := range s.exchanges {
			x.close()
		}
		s.mergeWG.Wait()
		if s.global != nil {
			s.global.Stop()
		}
	})
}

// Dropped returns the number of rejected tuples across stages.
func (s *Staged) Dropped() int {
	n := int(s.dropped.Load())
	for _, sh := range s.shards {
		n += sh.Dropped()
	}
	if s.global != nil {
		n += s.global.Dropped()
	}
	return n
}

// exchangeMerge is one exchange edge's merge point: each shard appends its
// batches to an unbounded per-shard buffer (never blocking the shard), and
// a single merger goroutine pops tuples in nondecreasing timestamp order —
// a tuple is released only once every shard either shows its next tuple or
// has closed, which is what makes the order deterministic.
type exchangeMerge struct {
	name string
	mu   sync.Mutex
	cond *sync.Cond
	bufs [][]stream.Tuple // per-shard FIFO
	head []int            // per-shard consumed prefix
	done []bool           // per-shard closed flag
}

func newExchangeMerge(name string, shards int) *exchangeMerge {
	x := &exchangeMerge{
		name: name,
		bufs: make([][]stream.Tuple, shards),
		head: make([]int, shards),
		done: make([]bool, shards),
	}
	x.cond = sync.NewCond(&x.mu)
	return x
}

// offer returns the tap installed on one shard's exchange sink.
func (x *exchangeMerge) offer(shard int) func([]stream.Tuple) {
	return func(ts []stream.Tuple) {
		x.mu.Lock()
		x.bufs[shard] = append(x.bufs[shard], ts...)
		x.mu.Unlock()
		x.cond.Broadcast()
	}
}

// close marks every shard's stream ended; called after all shards stopped.
func (x *exchangeMerge) close() {
	x.mu.Lock()
	for i := range x.done {
		x.done[i] = true
	}
	x.mu.Unlock()
	x.cond.Broadcast()
}

// run is the merger loop: it accumulates timestamp-ordered tuples into
// batches of up to batch tuples and pushes them into the global stage's
// exchange source. It returns once every shard has closed and drained.
//
// A tuple is released only when every shard either shows its next tuple or
// has closed. A shard that never emits on this edge (a selective filter
// whose key all hashes elsewhere) therefore holds the merge back until
// Stop: correctness is unaffected — everything buffers and drains then —
// but mid-run the global stage idles and mid-run Stats under-report it.
// Releasing earlier safely needs watermarks/punctuation flowing through
// the shard pipelines (in-flight tuples make push-side watermarks
// unsound); see the ROADMAP.
func (x *exchangeMerge) run(global *Runtime, batch int) {
	out := make([]stream.Tuple, 0, batch)
	flush := func() {
		if len(out) > 0 {
			// The global runtime copies the batch; reusing out is safe. A
			// post-Stop error cannot happen here (Stop waits for this loop).
			_ = global.PushBatch(x.name, out)
			out = out[:0]
		}
	}
	x.mu.Lock()
	for {
		// A pop is safe only when every shard shows its head or has closed.
		ready := true
		min, second := -1, -1
		var minTs, secondTs int64
		for i := range x.bufs {
			if x.head[i] < len(x.bufs[i]) {
				ts := x.bufs[i][x.head[i]].Ts
				switch {
				case min < 0 || ts < minTs:
					second, secondTs = min, minTs
					min, minTs = i, ts
				case second < 0 || ts < secondTs:
					second, secondTs = i, ts
				}
			} else if !x.done[i] {
				ready = false
			}
		}
		if !ready {
			if len(out) > 0 {
				// Hand over what is already merged before sleeping.
				x.mu.Unlock()
				flush()
				x.mu.Lock()
				continue
			}
			x.cond.Wait()
			continue
		}
		if min < 0 {
			break // all shards closed and drained
		}
		// Pop the whole run the min shard wins — every head tuple ordered
		// before the runner-up's head (ties break by shard index) — so the
		// per-tuple scan and lock traffic amortize over the run.
		buf := x.bufs[min]
		h := x.head[min]
		for h < len(buf) && len(out) < batch {
			ts := buf[h].Ts
			if second >= 0 && !(ts < secondTs || (ts == secondTs && min < second)) {
				break
			}
			out = append(out, buf[h])
			h++
		}
		x.head[min] = h
		if h == len(buf) {
			// Reclaim the consumed buffer; append will reuse the capacity.
			x.bufs[min] = buf[:0]
			x.head[min] = 0
		}
		if len(out) == batch {
			x.mu.Unlock()
			flush()
			x.mu.Lock()
		}
	}
	x.mu.Unlock()
	flush()
}

// Compile-time check that Staged satisfies the executor contract.
var _ Executor = (*Staged)(nil)
