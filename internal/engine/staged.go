package engine

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/staging"
	"repro/internal/stream"
)

// StagedConfig tunes StartStaged. The zero value is usable: GOMAXPROCS
// shards, a default buffer per edge, partition keys inferred from the plan.
// The shared knobs live in the embedded ExecConfig; a configured Shedder
// sheds at the true ingress edges only — every shard's source routers and
// the global stage's direct source feeds. Exchange edges never shed: they
// are interior edges of the staged graph, and dropping there would
// double-penalize tuples that already survived ingress shedding. The
// shedder carries over to the runtimes a Reshard starts, so a drop plan
// survives the boundary.
type StagedConfig struct {
	ExecConfig
	// Taps maps sink (query) names to streaming batch consumers, the
	// executor-level result fan-out the service plane streams tenant
	// results through (see RuntimeConfig.Taps for the ownership and
	// concurrency contract). A tapped sink's batches bypass the Results
	// accumulator wherever the sink runs: taps are installed on the global
	// runtime for suffix sinks and on every shard runtime (current and
	// reshard-started epochs alike) for sinks of fully parallel queries —
	// so a tap on a parallel sink may be invoked from several shards
	// concurrently, and tuples of the executor-wide stream arrive in
	// per-shard order only. End-of-run flush emissions reaching a tapped
	// prefix sink through Stop's drain are delivered to the tap as well.
	Taps map[string]func([]stream.Tuple)
	// Heartbeat controls source punctuation, the liveness signal that lets
	// the exchange merge release tuples past a quiet shard mid-run: after
	// every Heartbeat-th batch pushed to a prefix source, a punctuation
	// marker at one below that batch's highest timestamp — the strongest
	// promise a nondecreasing source supports, since the next push may
	// legally repeat the maximum — follows the batch to EVERY shard
	// (stream.NewPunctuation), flows through the shard pipelines under the
	// operator punctuation contract, and advances the merge's per-shard
	// low-watermarks. 0 means every batch — the default ties the heartbeat
	// to the push cadence, so merge latency is bounded by one heartbeat
	// interval (only the stream's frontier tuples, those at the current
	// maximum, wait for the next heartbeat or Stop). Negative disables
	// punctuation entirely, restoring the legacy hold-until-Stop exchange
	// semantics.
	//
	// Heartbeats assume each source's pushes are timestamp-ordered (the
	// exchange merge's existing ordering precondition). Concurrent pushers
	// interleaving one source's timestamps already forfeit merge ordering;
	// with heartbeats they additionally forfeit the watermark promise —
	// results remain complete and the merge remains live either way.
	Heartbeat int
	// Restore names a checkpoint directory written by Checkpoint; the keyed
	// operator state recorded there is imported into the fresh shard plans
	// (routed by the current partition map) before execution starts, so a
	// restarted executor resumes mid-window instead of losing the period.
	Restore string
}

// Staged executes any plan across shards by splitting it into two stages
// (see Plan.Analyze): the maximal shardable prefix runs as N independent
// Runtimes partitioned on the plan's inferred keys, and the global suffix —
// ungrouped windows, un-keyed joins, anything whose state spans partition
// keys — runs once, fed by exchange edges that merge the shards' outputs in
// tuple-timestamp order. Plans with no global operators degenerate to pure
// sharding; plans with no parallel operators run on the single global
// runtime. Either way every plan executes, which is what lets an admission
// daemon route all admitted plans through one backend unconditionally.
//
// Ordering guarantees across the merge: within one exchange edge, tuples are
// delivered to the global stage in nondecreasing timestamp order provided
// each shard emits in nondecreasing timestamp order (true when sources push
// timestamp-ordered batches, since every operator preserves or maximizes
// timestamps); ties across shards break by shard index. Across different
// exchange edges (and relative to direct source feeds) no order is
// guaranteed — the same independence the Runtime's channel edges already
// have. With strictly increasing source timestamps, a global stage fed by
// one exchange therefore sees exactly the tuple sequence the synchronous
// Engine would, and produces tuple-identical results.
//
// The parallel-stage width is elastic: Reshard(n) retires the current shard
// epoch at a period boundary — quiescing the shard runtimes without
// flushing keyed state, draining the exchange merges into the global stage,
// moving each key's open state to its new owner shard under a rebalanced
// partition map — and resumes on n fresh runtimes. The global stage (whose
// state is not keyed, and therefore never moves) runs on across the
// boundary. See Resharder.
//
// Results completeness is only guaranteed after Stop: the merge may buffer
// (without bound, and without blocking shards) while it waits for slow
// shards, so mid-run Results can lag. Mid-run merge PROGRESS, however, is
// bounded by the heartbeat cadence, not by Stop: source punctuation (see
// StagedConfig.Heartbeat) flows through the shard pipelines and proves to
// the merge that a quiet shard — a selective filter, a key distribution
// that starves a shard — has advanced past a timestamp, releasing the
// other shards' tuples into the global stage while the run is live. Stats
// are merged across both stages and every shard epoch onto the analyzed
// plan's node IDs, and OfferedLoad reconstruction runs over the full staged
// topology, so shed accounting stays correct through the exchange.
type Staged struct {
	factory   func() (*Plan, error)
	split     *StageSplit
	topo      *Plan // analyzed full plan: stats topology; its instances run the suffix
	part      PartitionFunc
	buf       int
	shedder   Shedder
	noFusion  bool
	columnar  bool
	taps      map[string]func([]stream.Tuple)
	heartbeat int // batches between source punctuation; <0 disabled
	// partFields is each prefix source's inferred key field (the field
	// Partition hashes), what the columnar split hashes natively.
	partFields map[string]int
	// srcSchemas carries the analyzed plan's source schemas into the shard
	// runtimes for columnar chain qualification — the carved prefix plans
	// deliberately hold none (validation happens once at the staged ingress).
	srcSchemas map[string]*stream.Schema
	// hbCount counts pushed batches per prefix source for the heartbeat
	// cadence; entries are created at start, so pushers only load.
	hbCount map[string]*atomic.Int64
	// lateArrivals counts exchange-edge tuples that arrived at or below
	// their shard's already-emitted watermark — an upstream punctuation
	// promise broken. Always zero when each source's pushes are
	// timestamp-ordered; the race soak asserts it.
	lateArrivals atomic.Int64

	// mu guards the epoch state below: pushers and readers hold the read
	// side, Reshard and Stop swap under the write side.
	mu          sync.RWMutex
	shards      []*Runtime
	prefixPlans []*Plan
	shardIDs    []int // prefix-plan node index -> topo node ID
	global      *Runtime
	globalIDs   []int // suffix-plan node index -> topo node ID
	pmap        *partitionMap
	epoch       int
	// retired accumulates quiesced shard epochs' raw counters, indexed by
	// topo node ID, so merged Stats cover the whole run after a reshard.
	retTuples, retOuts, retSheds []int64
	retShedUtil                  []float64

	exchanges []*exchangeMerge
	mergeWG   sync.WaitGroup

	// stager, when non-nil, is the executor's shared bounded-staging
	// subsystem (ExecConfig.StagingBudget): the exchange merges' un-releasable
	// tails and the runtimes' loss-intolerant ingress overflow stage against
	// one budget, spilling to disk segments beyond it.
	stager *staging.Stager

	// carried holds result tuples drained from quiesced epochs' runtimes.
	carriedMu sync.Mutex
	carried   map[string][]stream.Tuple

	ticks    atomic.Int64
	dropped  atomic.Int64
	stopped  atomic.Bool
	stopOnce sync.Once
}

// StartStaged analyzes the factory's plan, starts the parallel stage (N
// shard Runtimes over the carved prefix) and the global stage (one Runtime
// over the carved suffix), and wires the exchange merges between them. The
// factory must return structurally identical plans with fresh operator
// instances, exactly like StartSharded's; it is retained to build the
// plans later Reshard calls need.
func StartStaged(factory func() (*Plan, error), cfg StagedConfig) (*Staged, error) {
	n, err := cfg.shardCount()
	if err != nil {
		return nil, err
	}
	buf := cfg.bufOrDefault()
	full, err := factory()
	if err != nil {
		return nil, fmt.Errorf("engine: staged plan factory: %w", err)
	}
	split, err := full.Analyze()
	if err != nil {
		return nil, err
	}
	s := &Staged{
		factory:    factory,
		split:      split,
		topo:       full,
		part:       split.Partition(),
		buf:        buf,
		shedder:    cfg.Shedder,
		noFusion:   cfg.DisableFusion,
		columnar:   cfg.Columnar,
		taps:       cfg.Taps,
		heartbeat:  cfg.Heartbeat,
		hbCount:    make(map[string]*atomic.Int64),
		partFields: make(map[string]int),
		srcSchemas: make(map[string]*stream.Schema),
		carried:    make(map[string][]stream.Tuple),
	}
	for name := range split.PrefixSources {
		s.hbCount[name] = new(atomic.Int64)
		k := split.SourceKeys[name]
		if k < 0 {
			k = 0 // Partition's unconstrained-source default
		}
		s.partFields[name] = k
	}
	for name, src := range full.sources {
		s.srcSchemas[name] = src.schema
	}
	if cfg.StagingBudget > 0 {
		s.stager, err = staging.New(cfg.StagingBudget, cfg.SpillDir)
		if err != nil {
			return nil, err
		}
	}

	if split.NumParallel() == 0 {
		// Fully global: no parallel stage, no exchanges — the whole plan
		// (sources included, even unconsumed ones) runs on one Runtime,
		// reusing the analyzed plan's instances.
		s.global, err = StartRuntime(full, RuntimeConfig{ExecConfig: ExecConfig{Buf: buf, Shedder: cfg.Shedder, DisableFusion: cfg.DisableFusion, Columnar: cfg.Columnar}, Taps: stripPunctTaps(cfg.Taps), stager: s.stager})
		if err != nil {
			s.closeStager()
			return nil, err
		}
		s.globalIDs = identity(len(full.nodes))
		return s, nil
	}
	s.pmap = newPartitionMap(n)

	if split.NumGlobal() > 0 {
		// The suffix reuses the analyzed plan's operator instances; each
		// shard below gets its own factory instances.
		suffix, ids, err := split.suffixPlan(full)
		if err != nil {
			s.closeStager()
			return nil, err
		}
		noShed := make(map[string]bool, len(split.Exchanges))
		for _, id := range split.Exchanges {
			noShed[ExchangeName(id)] = true
		}
		s.global, err = StartRuntime(suffix, RuntimeConfig{ExecConfig: ExecConfig{Buf: buf, Shedder: cfg.Shedder, DisableFusion: cfg.DisableFusion, Columnar: cfg.Columnar}, NoShedSources: noShed, Taps: stripPunctTaps(cfg.Taps), stager: s.stager})
		if err != nil {
			s.closeStager()
			return nil, err
		}
		s.globalIDs = ids
	}

	plans, exchanges, err := s.carveEpoch(n)
	if err != nil {
		s.Stop()
		return nil, err
	}
	if cfg.Restore != "" {
		if err := s.restoreCheckpoint(cfg.Restore, plans); err != nil {
			s.Stop()
			return nil, err
		}
	}
	shards, err := startShardRuntimes(plans, exchanges, s.shardRuntimeConfig(), s.taps)
	if err != nil {
		s.Stop()
		return nil, err
	}
	s.shards, s.prefixPlans, s.exchanges = shards, plans, exchanges
	s.startMergers()
	return s, nil
}

// closeStager releases the staging subsystem (spill dir included); safe to
// call with no stager configured.
func (s *Staged) closeStager() {
	if s.stager != nil {
		s.stager.Close()
	}
}

// shardRuntimeConfig is the RuntimeConfig template every shard runtime of
// every epoch starts from (minus the per-shard exchange taps).
func (s *Staged) shardRuntimeConfig() RuntimeConfig {
	return RuntimeConfig{
		ExecConfig:    ExecConfig{Buf: s.buf, Shedder: s.shedder, DisableFusion: s.noFusion, Columnar: s.columnar},
		SourceSchemas: s.srcSchemas,
		stager:        s.stager,
	}
}

// StagingStats reports the shared staging subsystem's accounting; ok is
// false when no staging budget is configured.
func (s *Staged) StagingStats() (staging.Stats, bool) {
	if s.stager == nil {
		return staging.Stats{}, false
	}
	return s.stager.Stats(), true
}

// carveEpoch builds one parallel-stage epoch's skeleton: n prefix plans
// carved from fresh factory plans (keyed state still empty — Reshard
// imports moved state into them before the runtimes start) and one fresh
// exchange merge per crossing edge. The first carve records shardIDs.
func (s *Staged) carveEpoch(n int) ([]*Plan, []*exchangeMerge, error) {
	var exchanges []*exchangeMerge
	for _, id := range s.split.Exchanges {
		exchanges = append(exchanges, newExchangeMerge(ExchangeName(id), n, &s.lateArrivals, s.stager))
	}
	plans := make([]*Plan, n)
	for i := 0; i < n; i++ {
		p, err := s.factory()
		if err != nil {
			return nil, nil, fmt.Errorf("engine: staged plan factory: %w", err)
		}
		if len(p.nodes) != len(s.topo.nodes) {
			return nil, nil, fmt.Errorf("engine: staged plan factory is not deterministic: analyzed plan has %d nodes, shard %d has %d", len(s.topo.nodes), i, len(p.nodes))
		}
		prefix, ids, err := s.split.prefixPlan(p)
		if err != nil {
			return nil, nil, err
		}
		if s.shardIDs == nil {
			s.shardIDs = ids
		}
		plans[i] = prefix
	}
	return plans, exchanges, nil
}

// stripPunctTaps wraps every user result tap in stripPunct; nil maps pass
// through.
func stripPunctTaps(taps map[string]func([]stream.Tuple)) map[string]func([]stream.Tuple) {
	if len(taps) == 0 {
		return taps
	}
	out := make(map[string]func([]stream.Tuple), len(taps))
	for name, tap := range taps {
		out[name] = stripPunct(tap)
	}
	return out
}

// stripPunct wraps a user result tap so punctuation markers — the heartbeat
// liveness signal the exchange merge consumes, not query results — never
// reach the consumer: markers are compacted out of the batch in place, and
// an all-marker batch is recycled instead of delivered.
func stripPunct(tap func([]stream.Tuple)) func([]stream.Tuple) {
	return func(ts []stream.Tuple) {
		out := ts[:0]
		for _, t := range ts {
			if !t.IsPunct() {
				out = append(out, t)
			}
		}
		if len(out) == 0 {
			PutBatch(ts)
			return
		}
		tap(out)
	}
}

// startShardRuntimes starts one Runtime per carved prefix plan from the
// shared config template, with that shard's exchange taps — and the
// executor's user result taps, so fully parallel sinks stream too —
// installed. On error everything started so far is stopped and the error
// returned.
func startShardRuntimes(plans []*Plan, exchanges []*exchangeMerge, base RuntimeConfig, userTaps map[string]func([]stream.Tuple)) ([]*Runtime, error) {
	shards := make([]*Runtime, 0, len(plans))
	for i, prefix := range plans {
		var taps map[string]func([]stream.Tuple)
		if len(exchanges) > 0 || len(userTaps) > 0 {
			taps = make(map[string]func([]stream.Tuple), len(exchanges)+len(userTaps))
			for name, tap := range userTaps {
				taps[name] = stripPunct(tap)
			}
			// Exchange taps win on a (never expected) name collision: the
			// merge edges are what keeps the staged graph correct.
			for _, x := range exchanges {
				taps[x.name] = x.offer(i)
			}
		}
		cfg := base
		cfg.Taps = taps
		rt, err := StartRuntime(prefix, cfg)
		if err != nil {
			for _, started := range shards {
				started.Stop()
			}
			return nil, err
		}
		shards = append(shards, rt)
	}
	return shards, nil
}

// startMergers launches one merger goroutine per exchange edge of the
// current epoch, pushing Ts-merged batches into the global stage until the
// edge closes. Callers hold the write lock (or are inside Start).
func (s *Staged) startMergers() {
	for _, x := range s.exchanges {
		s.mergeWG.Add(1)
		go func(x *exchangeMerge) {
			defer s.mergeWG.Done()
			x.run(s.global, s.buf)
		}(x)
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Split returns the stage analysis this executor runs under.
func (s *Staged) Split() *StageSplit { return s.split }

// NumShards returns the parallel-stage width (0 for a fully global plan).
func (s *Staged) NumShards() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.shards)
}

// Epoch returns the reshard epoch: 0 at start, +1 per completed Reshard.
func (s *Staged) Epoch() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Reshard implements Resharder: it changes the parallel-stage width to n at
// a period boundary. The closing epoch's shard runtimes quiesce (in-flight
// batches drain, keyed state stays put), the exchange merges drain their
// buffers into the global stage and retire, the bucket partition map
// rebalances from observed traffic, every key's open state moves to its new
// owner shard, and n fresh runtimes (with fresh exchange merges) take over.
// The global stage runs on untouched. On a fully global plan (NumShards 0)
// Reshard is a no-op. Concurrent PushBatch calls block for the duration of
// the swap; nothing is lost or duplicated across the boundary.
func (s *Staged) Reshard(n int) error {
	if err := checkReshard(n); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped.Load() {
		return errStopped
	}
	if len(s.shards) == 0 {
		return nil
	}
	if err := reshardable(s.prefixPlans[0]); err != nil {
		return err
	}
	// Carve the new epoch before touching the running one: a factory
	// failure must leave the executor fully operational.
	plans, exchanges, err := s.carveEpoch(n)
	if err != nil {
		return err
	}
	s.retireEpoch()
	s.pmap.rebalance(n)
	moveKeyedState(s.prefixPlans, plans, stateDest(s.pmap))
	shards, err := startShardRuntimes(plans, exchanges, s.shardRuntimeConfig(), s.taps)
	if err != nil {
		// Mid-swap failure: the old epoch is gone, so the executor cannot
		// keep running. Fail it loudly rather than half-swapped.
		s.stopped.Store(true)
		return fmt.Errorf("engine: reshard start: %w", err)
	}
	s.shards, s.prefixPlans, s.exchanges = shards, plans, exchanges
	s.startMergers()
	s.epoch++
	return nil
}

// retireEpoch quiesces the current shard runtimes, drains the exchange
// merges into the global stage, and folds the epoch's counters, result
// buffers and drop counts into the executor-lifetime accumulators. Callers
// hold the write lock.
func (s *Staged) retireEpoch() {
	quiesceAll(s.shards)
	for _, x := range s.exchanges {
		x.close()
	}
	s.mergeWG.Wait()
	s.ensureRetired()
	for _, sh := range s.shards {
		for j, nl := range sh.Stats() { // shard ticks stay 0: raw counts
			i := s.shardIDs[j]
			s.retTuples[i] += nl.Tuples
			s.retOuts[i] += nl.OutTuples
			s.retSheds[i] += nl.ShedTuples
			s.retShedUtil[i] += nl.ShedUtilityLost
		}
		s.dropped.Add(int64(sh.Dropped()))
	}
	s.carriedMu.Lock()
	for q := range s.topo.sinks {
		for _, sh := range s.shards {
			s.carried[q] = append(s.carried[q], sh.Results(q)...)
		}
	}
	s.carriedMu.Unlock()
}

// PushBatch routes a source batch into the stage(s) consuming it: the
// parallel stage receives it hash-partitioned on the source's inferred key,
// and sources the global stage consumes directly are forwarded there whole.
// Schema validation happens once here — the stage runtimes' carved plans
// carry no schemas, so a source feeding both stages validates (and counts
// rejects for) each tuple exactly once.
func (s *Staged) PushBatch(source string, batch []stream.Tuple) error {
	if s.stopped.Load() {
		return errStopped
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	prefix := s.split.PrefixSources[source] && len(s.shards) > 0
	direct := s.split.DirectSources[source] || (s.split.PrefixSources[source] && len(s.shards) == 0)
	if !prefix && !direct {
		s.dropped.Add(int64(len(batch)))
		return fmt.Errorf("engine: unknown source %q", source)
	}
	var first error
	if schema := s.topo.sources[source].schema; schema != nil {
		// Filter lazily: the conforming-only common case forwards the
		// caller's batch without copying. Punctuation markers carry no
		// field values and are exempt.
		kept := batch
		copied := false
		for i, t := range batch {
			if t.IsPunct() || schema.Conforms(t) {
				if copied {
					kept = append(kept, t)
				}
				continue
			}
			if first == nil {
				first = fmt.Errorf("engine: tuple does not conform to source %q schema %s", source, schema)
			}
			s.dropped.Add(1)
			if !copied {
				kept = append(make([]stream.Tuple, 0, len(batch)-1), batch[:i]...)
				copied = true
			}
		}
		batch = kept
		if len(batch) == 0 {
			return first
		}
	}
	if err := s.routeBatchLocked(source, batch, prefix, direct); err != nil && first == nil {
		first = err
	}
	return first
}

// routeBatchLocked forwards a validated batch to the stage(s) consuming its
// source. The caller holds the epoch read lock and keeps ownership of batch;
// per-shard sub-batches are pooled copies.
func (s *Staged) routeBatchLocked(source string, batch []stream.Tuple, prefix, direct bool) error {
	var first error
	if direct {
		// Runtime.PushBatch copies what it retains, so the same caller
		// slice can also feed the shards below.
		if err := s.global.PushBatch(source, batch); err != nil && first == nil {
			first = err
		}
	}
	if prefix {
		// Per-shard sub-batches come from the batch pool and transfer into
		// the shard runtimes owned (PushOwnedBatch below) — the carved prefix
		// plans carry no schemas, so the owned push is a plain channel send
		// and the buffers recycle at the shards' operator goroutines.
		sub := make([][]stream.Tuple, len(s.shards))
		maxTs, sawData := int64(0), false
		for _, t := range batch {
			if t.IsPunct() {
				// A caller-supplied marker promises the whole source stream
				// advanced, so every shard's partition of it has: broadcast.
				for i := range sub {
					if sub[i] == nil {
						sub[i] = getBatch(len(batch))
					}
					sub[i] = append(sub[i], t)
				}
				continue
			}
			if !sawData || t.Ts > maxTs {
				maxTs, sawData = t.Ts, true
			}
			i := s.pmap.route(s.part(source, t))
			if sub[i] == nil {
				sub[i] = getBatch(len(batch))
			}
			sub[i] = append(sub[i], t)
		}
		// Heartbeat: every heartbeat-th batch is followed by a source
		// punctuation at ONE BELOW the batch's highest timestamp, delivered
		// to every shard — the shards that received no tuple of this batch
		// are exactly the ones whose exchange streams need the proof of
		// progress. maxTs-1, not maxTs: the merge's ordering contract only
		// requires nondecreasing per-source timestamps, under which a later
		// push may still carry a tuple AT the current maximum — promising
		// past it would let the merge release an equal-timestamp tuple from
		// a higher-indexed shard first, breaking the deterministic
		// tie-break. "No future tuple at or below maxTs-1" (future >= maxTs)
		// is exactly what nondecreasing order guarantees. The cost is one
		// heartbeat interval of extra latency for the frontier tuples
		// themselves (the stream's final maximum waits for Stop's drain).
		if sawData && s.heartbeat >= 0 && len(s.exchanges) > 0 {
			every := int64(s.heartbeat)
			if every == 0 {
				every = 1
			}
			if s.hbCount[source].Add(1)%every == 0 {
				p := stream.NewPunctuation(maxTs - 1)
				for i := range sub {
					if sub[i] == nil {
						sub[i] = getBatch(1)
					}
					sub[i] = append(sub[i], p)
				}
			}
		}
		for i, ts := range sub {
			if len(ts) == 0 {
				continue
			}
			if err := s.shards[i].PushOwnedBatch(source, ts); err != nil {
				// Rejected whole: ownership of the sub-batch came back.
				putBatch(ts)
				if first == nil {
					first = err
				}
			}
		}
	}
	return first
}

// PushOwnedBatch implements OwnedBatchPusher: identical routing and
// validation to PushBatch, but ownership of the caller's slice transfers to
// the executor on success, which recycles it into the batch pool once the
// routing scan has copied its tuples out. An error rejects the batch whole
// — validation runs before routing consumes anything — and ownership stays
// with the caller (see executor.go).
func (s *Staged) PushOwnedBatch(source string, batch []stream.Tuple) error {
	if s.stopped.Load() {
		return errStopped
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	prefix := s.split.PrefixSources[source] && len(s.shards) > 0
	direct := s.split.DirectSources[source] || (s.split.PrefixSources[source] && len(s.shards) == 0)
	if !prefix && !direct {
		return fmt.Errorf("engine: unknown source %q", source)
	}
	if schema := s.topo.sources[source].schema; schema != nil {
		for _, t := range batch {
			if !t.IsPunct() && !schema.Conforms(t) {
				return fmt.Errorf("engine: tuple does not conform to source %q schema %s; owned batch rejected whole", source, schema)
			}
		}
	}
	if err := s.routeBatchLocked(source, batch, prefix, direct); err != nil {
		// Unreachable under the epoch read lock (the stage runtimes only
		// stop under the write side); surface the error without recycling —
		// leaking a buffer beats a double put if it ever fires.
		return err
	}
	putBatch(batch)
	return nil
}

// PushOwnedColBatch implements OwnedColBatchPusher: a prefix source's owned
// columnar batch splits across the parallel stage straight off its typed key
// column (splitColByField — placement identical to the boxed route loop) and
// stays columnar into the shard runtimes; the heartbeat cadence folds its
// source punctuation into each shard batch's out-of-band watermark instead of
// appending an in-band marker. Sources the global stage consumes (directly,
// or because the plan has no parallel stage) see the batch as rows — the
// global ingress is the row boundary. Validation is by physical layout
// against the analyzed plan's source schema; a mismatched batch is rejected
// whole and, like every owned-push rejection, stays the caller's to recycle
// or retry (see executor.go).
func (s *Staged) PushOwnedColBatch(source string, cb *stream.ColBatch) error {
	if s.stopped.Load() {
		return errStopped
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	prefix := s.split.PrefixSources[source] && len(s.shards) > 0
	direct := s.split.DirectSources[source] || (s.split.PrefixSources[source] && len(s.shards) == 0)
	if !prefix && !direct {
		return fmt.Errorf("engine: unknown source %q", source)
	}
	if schema := s.topo.sources[source].schema; schema != nil && cb.Layout() != schema.Layout() {
		return fmt.Errorf("engine: columnar batch layout %q does not match source %q schema %s", cb.Layout(), source, schema)
	}
	var first error
	if direct && !prefix {
		rows := colToRows(cb)
		first = s.global.PushBatch(source, rows)
		putBatch(rows)
		return first
	}
	if direct {
		// Feeds both stages: the global stage gets a boxed copy (its PushBatch
		// copies what it retains), the shards keep the columnar original.
		rows := getBatch(cb.Len() + 1)
		rows = cb.AppendTo(rows)
		if wm, ok := cb.Watermark(); ok {
			rows = append(rows, stream.NewPunctuation(wm))
		}
		first = s.global.PushBatch(source, rows)
		putBatch(rows)
	}
	// Heartbeat before the split consumes the batch: every heartbeat-th batch
	// carries a source punctuation at one below its highest timestamp to
	// EVERY shard (see PushBatch for why maxTs-1), here folded into the
	// out-of-band watermark.
	heartbeatWM, haveHB := int64(0), false
	if n := cb.Len(); n > 0 && s.heartbeat >= 0 && len(s.exchanges) > 0 {
		every := int64(s.heartbeat)
		if every == 0 {
			every = 1
		}
		if s.hbCount[source].Add(1)%every == 0 {
			maxTs := cb.Ts()[0]
			for _, ts := range cb.Ts()[1:] {
				if ts > maxTs {
					maxTs = ts
				}
			}
			heartbeatWM, haveHB = maxTs-1, true
		}
	}
	schema := cb.Schema()
	sub := splitColByField(s.pmap, cb, s.partFields[source], len(s.shards))
	for i, scb := range sub {
		if haveHB {
			if scb == nil {
				scb = getColBatch(schema, 1)
				sub[i] = scb
			}
			scb.SetWatermark(heartbeatWM)
		}
		if scb == nil {
			continue
		}
		if err := s.shards[i].PushOwnedColBatch(source, scb); err != nil {
			// Rejected whole: ownership of the sub-batch came back.
			putColBatch(scb)
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// Advance moves the merged metering clock forward; the stage runtimes stay
// at zero ticks so their raw costs aggregate cleanly. It also drives the
// partition map's traffic decay (see partitionMap.observeTicks).
func (s *Staged) Advance(ticks int64) {
	s.ticks.Add(ticks)
	if s.pmap != nil {
		s.pmap.observeTicks(ticks)
	}
}

// Results concatenates the named query's outputs — tuples carried over from
// retired shard epochs first, then the current shards in shard order, then
// the global stage — and clears them. Complete only after Stop.
func (s *Staged) Results(query string) []stream.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.carriedMu.Lock()
	out := s.carried[query]
	delete(s.carried, query)
	s.carriedMu.Unlock()
	for _, sh := range s.shards {
		out = append(out, sh.Results(query)...)
	}
	if s.global != nil {
		out = append(out, s.global.Results(query)...)
	}
	return out
}

// Stats merges both stages' per-node counters — every shard epoch included
// — onto the analyzed plan's node IDs and recomputes loads over the full
// staged topology: tuple counts sum across shards, epochs and stages, and
// OfferedLoad reconstruction (demandIn) propagates upstream shed losses
// across exchange edges exactly as it does across in-plan edges, so drop
// metering survives the stage boundary.
func (s *Staged) Stats() []NodeLoad {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.topo.nodes)
	tuples := make([]int64, n)
	outs := make([]int64, n)
	sheds := make([]int64, n)
	shedUtil := make([]float64, n)
	if s.retTuples != nil {
		copy(tuples, s.retTuples)
		copy(outs, s.retOuts)
		copy(sheds, s.retSheds)
		copy(shedUtil, s.retShedUtil)
	}
	add := func(rt *Runtime, ids []int) {
		for j, nl := range rt.Stats() { // stage ticks stay 0: raw counts
			i := ids[j]
			tuples[i] += nl.Tuples
			outs[i] += nl.OutTuples
			sheds[i] += nl.ShedTuples
			shedUtil[i] += nl.ShedUtilityLost
		}
	}
	for _, sh := range s.shards {
		add(sh, s.shardIDs)
	}
	if s.global != nil {
		add(s.global, s.globalIDs)
	}
	return assembleLoads(s.topo, tuples, outs, sheds, shedUtil, s.ticks.Load())
}

// ShardStats returns each current-epoch parallel shard's own per-node loads
// (indexed by the analyzed plan's node IDs and tagged with the shard's
// stable (Epoch, Shard) identity), exposing per-shard imbalance the merged
// Stats sum hides. Ticks are this executor's Advance ticks.
func (s *Staged) ShardStats() []ShardLoad {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return perShardLoads(s.shards, s.shardIDs, s.epoch, s.ticks.Load())
}

// Stop drains the staged graph front to back, faithful to the synchronous
// Engine's drain order: the shard runtimes quiesce (in-flight batches
// processed, operator state intact), the exchange merges hand every regular
// tuple to the global stage and retire, the prefix operators then flush in
// topological order with a per-node timestamp merge across shards — so the
// global stage sees all regular tuples before any flush tuple, and flush
// tuples in the same order the sync Engine would emit them — and the global
// runtime stops last. Idempotent; every caller returns only after the full
// drain.
func (s *Staged) Stop() {
	s.stopOnce.Do(func() {
		s.stopped.Store(true)
		s.mu.Lock()
		defer s.mu.Unlock()
		quiesceAll(s.shards)
		for _, x := range s.exchanges {
			x.close()
		}
		s.mergeWG.Wait()
		s.drainPrefix()
		if s.global != nil {
			s.global.Stop()
		}
		s.closeStager()
	})
}

// ensureRetired sizes the retired-counter arrays on first use.
func (s *Staged) ensureRetired() {
	if s.retTuples == nil {
		n := len(s.topo.nodes)
		s.retTuples = make([]int64, n)
		s.retOuts = make([]int64, n)
		s.retSheds = make([]int64, n)
		s.retShedUtil = make([]float64, n)
	}
}

// drainPrefix flushes the quiesced prefix runtimes' operator state exactly
// the way the synchronous Engine drains at Stop: nodes flush in topological
// order; each node's flush emissions are merged across shards in timestamp
// order (each operator already flushes its own groups in timestamp order)
// and routed one tuple at a time through the emitting shard's downstream
// operators — everything below a flushing node in the prefix is stateless,
// so shard-local routing is exact. Tuples reaching an exchange sink buffer
// up and push to the global stage after the whole prefix has drained, i.e.
// after every regular tuple and in timestamp order per edge; tuples
// reaching a query sink land in the carried-results buffer. All drain
// processing is accounted in the retired counters, keeping Stats identical
// to the sync Engine's. Callers hold the write lock.
func (s *Staged) drainPrefix() {
	if len(s.shards) == 0 {
		return
	}
	s.ensureRetired()
	isExchange := make(map[string]bool, len(s.split.Exchanges))
	for _, id := range s.split.Exchanges {
		isExchange[ExchangeName(id)] = true
	}
	xbuf := make(map[string][]stream.Tuple)
	// tapBuf collects flush tuples reaching tapped (non-exchange) prefix
	// sinks; they are handed to the taps after the drain, preserving the
	// taps-bypass-Results contract through Stop.
	tapBuf := make(map[string][]stream.Tuple)
	s.carriedMu.Lock()
	defer s.carriedMu.Unlock()
	var route func(shard int, eg edge, t stream.Tuple)
	route = func(shard int, eg edge, t stream.Tuple) {
		if eg.node < 0 {
			switch {
			case isExchange[eg.sink]:
				xbuf[eg.sink] = append(xbuf[eg.sink], t)
			case s.taps[eg.sink] != nil:
				tapBuf[eg.sink] = append(tapBuf[eg.sink], t)
			default:
				s.carried[eg.sink] = append(s.carried[eg.sink], t)
			}
			return
		}
		n := s.prefixPlans[shard].nodes[eg.node]
		id := s.shardIDs[eg.node]
		s.retTuples[id]++
		var outs []stream.Tuple
		if n.unary != nil {
			outs = n.unary.Apply(t)
		} else if eg.side == stream.Left {
			outs = n.binary.ApplyLeft(t)
		} else {
			outs = n.binary.ApplyRight(t)
		}
		s.retOuts[id] += int64(len(outs))
		for _, o := range outs {
			for _, next := range n.out {
				route(shard, next, o)
			}
		}
	}
	type flushed struct {
		shard int
		t     stream.Tuple
	}
	for j := range s.prefixPlans[0].nodes {
		var emitted []flushed
		for i, p := range s.prefixPlans {
			n := p.nodes[j]
			var outs []stream.Tuple
			if n.unary != nil {
				outs = n.unary.Flush()
			} else {
				outs = n.binary.Flush()
			}
			s.retOuts[s.shardIDs[j]] += int64(len(outs))
			for _, t := range outs {
				emitted = append(emitted, flushed{i, t})
			}
		}
		// Order by timestamp, ties by the rendered first value — the same
		// tie-break WindowAgg.Flush uses for its (key-leading) emissions —
		// so equal-Ts flush tuples landing on different shards still drain
		// in the single-instance order.
		sort.SliceStable(emitted, func(a, b int) bool {
			if emitted[a].t.Ts != emitted[b].t.Ts {
				return emitted[a].t.Ts < emitted[b].t.Ts
			}
			return flushTieKey(emitted[a].t) < flushTieKey(emitted[b].t)
		})
		for _, f := range emitted {
			for _, next := range s.prefixPlans[f.shard].nodes[j].out {
				route(f.shard, next, f.t)
			}
		}
	}
	for _, id := range s.split.Exchanges {
		name := ExchangeName(id)
		if batch := xbuf[name]; len(batch) > 0 {
			// The global runtime is still accepting (it stops after the
			// drain); its ingress preserves push order per source.
			_ = s.global.PushBatch(name, batch)
		}
	}
	for name, batch := range tapBuf {
		// Ownership of the drain-local batch transfers to the tap.
		s.taps[name](batch)
	}
}

// flushTieKey renders a flush tuple's leading value for same-timestamp
// ordering; window emissions lead with their group key, so this matches the
// key tie-break inside stream.WindowAgg.Flush.
func flushTieKey(t stream.Tuple) string {
	if len(t.Vals) == 0 {
		return ""
	}
	return fmt.Sprint(t.Vals[0])
}

// Dropped returns the number of rejected tuples across stages and epochs.
func (s *Staged) Dropped() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := int(s.dropped.Load())
	for _, sh := range s.shards {
		n += sh.Dropped()
	}
	if s.global != nil {
		n += s.global.Dropped()
	}
	return n
}

// exchangeMerge is one exchange edge's merge point: each shard appends its
// batches to an unbounded per-shard buffer (never blocking the shard), and
// a single merger goroutine pops tuples in nondecreasing timestamp order —
// a tuple is released only once every other shard either shows its next
// tuple, has closed, or has PUNCTUATED past the candidate timestamp (its
// low-watermark wm proves no tuple at or below it is still coming), which
// is what makes the order deterministic without requiring every shard to
// produce.
type exchangeMerge struct {
	name string
	mu   sync.Mutex
	cond *sync.Cond
	bufs [][]stream.Tuple // per-shard FIFO (the resident front)
	head []int            // per-shard consumed prefix
	done []bool           // per-shard closed flag
	// wm is the per-shard punctuation low-watermark: the shard's pipeline
	// has promised every future tuple on this edge carries Ts > wm.
	wm []int64
	// late counts broken promises (a tuple arriving at or below its shard's
	// watermark), shared across the executor's merges; see
	// Staged.lateArrivals.
	late *atomic.Int64
	// stager, when non-nil, bounds the resident buffers: a shard's tuples
	// past the shared budget stage (spilling to disk) on its stg queue and
	// replay into bufs when the merge consumes the front. Per-shard order is
	// bufs[i][head[i]:] then stg[i]; a shard with a non-empty queue appends
	// there unconditionally so the order holds.
	stager *staging.Stager
	stg    []*staging.Queue
}

// Exchange buffer hygiene thresholds: a consumed prefix of at least
// compactAfter tuples that covers half the buffer is compacted away (the
// live tail moves to a right-sized pooled buffer), and a fully drained
// buffer whose capacity grew past largeExchangeBuf is recycled rather than
// kept — so a stall's spike is returned to the pool instead of pinned until
// Stop.
const (
	compactAfter     = 256
	largeExchangeBuf = 4096
)

// noWatermark is the wm value of a shard that has not punctuated yet: it
// clears no timestamp, so the merge behaves exactly like the pre-
// punctuation hold-until-Stop merge for that shard.
const noWatermark = math.MinInt64

func newExchangeMerge(name string, shards int, late *atomic.Int64, stager *staging.Stager) *exchangeMerge {
	x := &exchangeMerge{
		name: name,
		bufs: make([][]stream.Tuple, shards),
		head: make([]int, shards),
		done: make([]bool, shards),
		wm:   make([]int64, shards),
		late: late,
	}
	if stager != nil {
		x.stager = stager
		x.stg = make([]*staging.Queue, shards)
	}
	for i := range x.wm {
		x.wm[i] = noWatermark
	}
	x.cond = sync.NewCond(&x.mu)
	return x
}

// offer returns the tap installed on one shard's exchange sink. Punctuation
// markers advance the shard's low-watermark instead of buffering; the
// in-stream position guarantees every tuple buffered before the marker was
// emitted before the promise was made. The tap owns the batch it receives
// (RuntimeConfig.Taps contract), and the buffering loop copies every tuple
// into the per-shard FIFO, so the batch recycles into the pool on the way
// out — the shard runtime that produced it gets it back at its next
// getBatch.
func (x *exchangeMerge) offer(shard int) func([]stream.Tuple) {
	return func(ts []stream.Tuple) {
		x.mu.Lock()
		for _, t := range ts {
			if t.IsPunct() {
				if t.Ts > x.wm[shard] {
					x.wm[shard] = t.Ts
				}
				continue
			}
			if t.Ts <= x.wm[shard] {
				x.late.Add(1)
			}
			if x.stager != nil {
				// Bounded mode: stage behind an existing spill tail (order),
				// or once the shared budget is exhausted.
				if q := x.stg[shard]; q != nil && !q.Empty() {
					q.Append("", t)
					continue
				}
				if !x.stager.TryReserve(staging.SizeOf(t)) {
					if x.stg[shard] == nil {
						x.stg[shard] = x.stager.NewQueue(x.name + "-s" + fmt.Sprint(shard))
					}
					x.stg[shard].Append("", t)
					continue
				}
			}
			x.bufs[shard] = append(x.bufs[shard], t)
		}
		x.mu.Unlock()
		x.cond.Broadcast()
		putBatch(ts)
	}
}

// refill replays a chunk of shard i's staged tail into its (consumed)
// resident buffer. Caller holds x.mu and guarantees head[i] == len(bufs[i]).
// The chunk reservation is unconditional — replay slack, bounded by max —
// so a full budget cannot wedge the merge.
func (x *exchangeMerge) refill(i, max int) {
	buf := x.bufs[i][:0]
	if cap(buf) >= largeExchangeBuf {
		putBatch(x.bufs[i])
		buf = nil
	}
	x.head[i] = 0
	recs := x.stg[i].PopBatch(nil, max)
	if buf == nil {
		buf = getBatch(len(recs))
	}
	var sz int64
	for _, r := range recs {
		buf = append(buf, r.Tuple)
		sz += staging.SizeOf(r.Tuple)
	}
	x.stager.Reserve(sz)
	x.bufs[i] = buf
}

// discard drops one shard's entire undelivered backlog — the resident FIFO
// past the consumed prefix and any staged spill tail — and marks the shard
// closed, without touching what the merger already released downstream. The
// distributed executor calls it when a worker dies: the backlog will be
// regenerated by replaying the worker's ingress log onto the survivors, so
// releasing it here would only manufacture guaranteed duplicates. Tuples the
// merge had already released before the crash can still duplicate under
// replay (at-least-once across failure); this trims the class that is
// avoidable.
func (x *exchangeMerge) discard(shard int) {
	x.mu.Lock()
	if x.stager != nil {
		var sz int64
		for _, t := range x.bufs[shard][x.head[shard]:] {
			sz += staging.SizeOf(t)
		}
		if sz > 0 {
			x.stager.Release(sz)
		}
		if x.stg != nil && x.stg[shard] != nil {
			x.stg[shard].Close()
			x.stg[shard] = nil
		}
	}
	x.bufs[shard] = nil
	x.head[shard] = 0
	x.done[shard] = true
	x.mu.Unlock()
	x.cond.Broadcast()
}

// close marks every shard's stream ended; called after all shards stopped.
func (x *exchangeMerge) close() {
	x.mu.Lock()
	for i := range x.done {
		x.done[i] = true
	}
	x.mu.Unlock()
	x.cond.Broadcast()
}

// run is the merger loop: it accumulates timestamp-ordered tuples into
// batches of up to batch tuples and pushes them into the global stage's
// exchange source. It returns once every shard has closed and drained.
//
// A tuple is released once every OTHER shard provably cannot precede it:
// each shard either shows its next tuple (so the minimum is known), has
// closed, or has punctuated past the candidate timestamp — its
// low-watermark promises every future tuple on the edge exceeds it, and
// strictly so, which also rules out a losing tie-break arriving later. A
// quiet shard that never punctuates (a punctuation-free legacy pipeline,
// heartbeats disabled, or an operator chain that swallows markers) degrades
// to the old hold-until-Stop semantics: correctness is unaffected,
// everything buffers and drains at Stop or at the epoch's retirement. The
// unsound alternative this design rejects is a push-side watermark derived
// at the ingress alone: tuples still in flight inside the shard pipeline
// can be below it, which is why the promise must travel in-band through
// every operator (stream.Punctuator) and be re-derived at each hop.
func (x *exchangeMerge) run(global *Runtime, batch int) {
	// The release buffer is leased from the batch pool once and reused for
	// every flush of this merger's lifetime: the global runtime's PushBatch
	// copies what it retains (into its own pooled ingress buffer), so out
	// never escapes, and it returns to the pool when the edge closes.
	out := getBatch(batch)
	flush := func() {
		if len(out) > 0 {
			// A post-Stop error cannot happen here (Stop and the reshard
			// retirement both wait for this loop before stopping global).
			_ = global.PushBatch(x.name, out)
			out = out[:0]
		}
	}
	x.mu.Lock()
	for {
		min, second := -1, -1
		var minTs, secondTs int64
		// barrier is what the quiet shards have collectively cleared: the
		// lowest watermark among shards that are empty but still open.
		// Releases above it must wait for those shards to speak (a head
		// tuple, a newer heartbeat, or close).
		barrier := int64(math.MaxInt64)
		idle := true // no shard has a visible head or pending work
		for i := range x.bufs {
			if x.stg != nil && x.head[i] >= len(x.bufs[i]) && x.stg[i] != nil && !x.stg[i].Empty() {
				// The resident front is consumed but the shard has a staged
				// tail: replay a chunk so the scan sees its true head (a
				// closed shard with staged tuples must not look drained).
				x.refill(i, batch)
			}
			if x.head[i] < len(x.bufs[i]) {
				idle = false
				ts := x.bufs[i][x.head[i]].Ts
				switch {
				case min < 0 || ts < minTs:
					second, secondTs = min, minTs
					min, minTs = i, ts
				case second < 0 || ts < secondTs:
					second, secondTs = i, ts
				}
			} else if !x.done[i] {
				idle = false
				if x.wm[i] < barrier {
					barrier = x.wm[i]
				}
			}
		}
		if min < 0 && idle {
			break // all shards closed and drained
		}
		if min < 0 || minTs > barrier {
			// Nothing releasable: either no shard shows a head, or a quiet
			// shard's watermark has not cleared the candidate. Hand over
			// what is already merged, then sleep until a shard offers data,
			// a heartbeat advances a watermark, or the edge closes.
			if len(out) > 0 {
				x.mu.Unlock()
				flush()
				x.mu.Lock()
				continue
			}
			x.cond.Wait()
			continue
		}
		// Pop the whole run the min shard wins — every head tuple ordered
		// before the runner-up's head (ties break by shard index) and
		// cleared by the quiet shards' barrier — so the per-tuple scan and
		// lock traffic amortize over the run.
		buf := x.bufs[min]
		h := x.head[min]
		var released int64
		for h < len(buf) && len(out) < batch {
			ts := buf[h].Ts
			if ts > barrier {
				break
			}
			if second >= 0 && !(ts < secondTs || (ts == secondTs && min < second)) {
				break
			}
			out = append(out, buf[h])
			if x.stager != nil {
				released += staging.SizeOf(buf[h])
			}
			h++
		}
		x.head[min] = h
		if released > 0 {
			x.stager.Release(released)
		}
		if h == len(buf) {
			if cap(buf) >= largeExchangeBuf {
				// A stall grew this buffer; recycle it instead of pinning the
				// spike until Stop.
				putBatch(buf)
				x.bufs[min] = nil
			} else {
				// Reclaim the consumed buffer; append will reuse the capacity.
				x.bufs[min] = buf[:0]
			}
			x.head[min] = 0
		} else if h >= compactAfter && h*2 >= len(buf) {
			// Compact the consumed prefix: head keeps advancing but append
			// writes past len, so without this the released tuples stay
			// pinned in the backing array until the buffer fully drains.
			live := buf[h:]
			fresh := getBatch(len(live))
			fresh = append(fresh, live...)
			putBatch(buf)
			x.bufs[min] = fresh
			x.head[min] = 0
		}
		if len(out) == batch {
			x.mu.Unlock()
			flush()
			x.mu.Lock()
		}
	}
	for i := range x.bufs {
		if x.stg != nil && x.stg[i] != nil {
			x.stg[i].Close()
		}
	}
	x.mu.Unlock()
	flush()
	putBatch(out)
}

// Compile-time check that Staged satisfies the executor contract.
var _ Executor = (*Staged)(nil)
