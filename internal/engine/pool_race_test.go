//go:build race

package engine

import (
	"strings"
	"testing"
)

// pool_race_test.go proves the race-build pool guard (pool_guard_race.go)
// actually catches the violations it exists for, by committing each one
// deliberately: a double put must panic at the second put site, and a
// buffer used after its put must read as obviously-impossible data (rows)
// or panic (columnar batches). These tests only build under `go test -race`
// — the same builds where the guard is armed.

// mustPanic runs fn and requires it to panic with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("deliberate pool violation did not panic (want message containing %q)", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("violation panicked with %v, want message containing %q", r, want)
		}
	}()
	fn()
}

func TestRaceGuardCatchesDoublePutRows(t *testing.T) {
	b := GetBatch(4)
	b = append(b, tup(1, "k", 1))
	PutBatch(b)
	mustPanic(t, "double put of batch buffer", func() { PutBatch(b) })
}

func TestRaceGuardCatchesDoublePutCols(t *testing.T) {
	cb := GetColBatch(testSchema, 4)
	cb.AppendTuple(tup(1, "k", 1))
	PutColBatch(cb)
	mustPanic(t, "double put of ColBatch", func() { PutColBatch(cb) })
}

func TestRaceGuardPoisonsRowsAfterPut(t *testing.T) {
	b := GetBatch(4)
	b = append(b, tup(7, "k", 1), tup(8, "k", 2))
	alias := b // the use-after-put bug: a second reference survives the put
	PutBatch(b)
	for i := range alias {
		if alias[i].Ts != poisonTs || alias[i].Vals != nil {
			t.Fatalf("slot %d of a returned buffer still readable: %+v, want poisoned", i, alias[i])
		}
	}
}

func TestRaceGuardInvalidatesColsAfterPut(t *testing.T) {
	cb := GetColBatch(testSchema, 4)
	cb.AppendTuple(tup(7, "k", 1))
	PutColBatch(cb)
	if cb.Len() != 0 {
		t.Fatalf("returned ColBatch still holds %d rows, want invalidated", cb.Len())
	}
	// Any schema-dependent access through the stale reference must panic
	// (the schema is cleared at put) instead of corrupting the next lease.
	defer func() {
		if recover() == nil {
			t.Fatal("appending through a stale ColBatch reference did not panic")
		}
	}()
	cb.AppendTuple(tup(8, "k", 2))
}
