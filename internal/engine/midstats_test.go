package engine

import "testing"

// TestStagedSettledMidRunStats: a monitoring loop sampling mid-run (no
// Stop) must see the pushed work once the pipeline settles — the staged
// executor's counters are written asynchronously by shard and global-stage
// goroutines, and SettleStats bridges that gap.
func TestStagedSettledMidRunStats(t *testing.T) {
	st, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil }, StagedConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	tuples := keyedTuples(600, 5)
	for i := 0; i < len(tuples); i += 50 {
		if err := st.PushBatch("s", tuples[i:i+50]); err != nil {
			t.Fatal(err)
		}
	}
	st.Advance(100)
	loads := SettleStats(st)
	var executed, offered float64
	for _, nl := range loads {
		executed += nl.Load
		offered += nl.OfferedLoad
	}
	if executed <= 0 || offered <= 0 {
		t.Fatalf("settled mid-run stats zero: executed %.3f offered %.3f", executed, offered)
	}
	// All 600 tuples pass the filter; the settled ingress count must
	// reflect every pushed tuple, not a lagging prefix.
	if loads[0].Tuples != 600 {
		t.Fatalf("settled filter ingress = %d tuples, want 600", loads[0].Tuples)
	}
}
