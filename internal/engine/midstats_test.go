package engine

import "testing"

// TestQuietEdgeMidRunStatsAttribution: before punctuation, a quiet exchange
// shard held the whole merge, so SettleStats mid-run metered ZERO load on
// the global stage even though it had a full stream's work queued — dsmsd's
// mid-period replanning loop (which samples SettleStats and splits load by
// stage) under-reported exactly the stage a quiet edge starves, and the shed
// planner and elasticity controller planned against phantom idle capacity.
// With heartbeats on, the settled mid-run snapshot must attribute executed
// AND offered load to the global-stage node — the same loads-by-split
// computation dsmsd's replan path performs.
func TestQuietEdgeMidRunStatsAttribution(t *testing.T) {
	st, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	tuples := quietShardTuples(400) // one key: three quiet shards
	for i := 0; i < len(tuples); i += 40 {
		if err := st.PushBatch("s", tuples[i:i+40]); err != nil {
			t.Fatal(err)
		}
	}
	st.Advance(100)
	split := st.Split()
	globalID := globalNodeID(split)
	// Everything but the frontier tuple (held for the next heartbeat)
	// reaches the global stage mid-run.
	released := int64(len(tuples)) - 1
	if got := globalTuplesEventually(st, globalID, released); got != released {
		t.Fatalf("global stage metered %d tuples mid-run, want %d", got, released)
	}
	loads := SettleStats(st)
	// The replan path's per-stage split: both stages must show load mid-run.
	var par, glob, globOffered float64
	for _, nl := range loads {
		if split.Global[nl.ID] {
			glob += nl.Load
			globOffered += nl.OfferedLoad
		} else {
			par += nl.Load
		}
	}
	if par <= 0 || glob <= 0 || globOffered <= 0 {
		t.Fatalf("mid-run per-stage loads parallel=%.3f global=%.3f (offered %.3f); global stage under-reported",
			par, glob, globOffered)
	}
	// Attribution, not just presence: the global window saw every released
	// tuple, so its executed load is their full per-tuple cost at this rate.
	info := st.topo.Nodes()[globalID]
	want := float64(released) * info.Cost / 100
	if diff := loads[globalID].Load - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("global node load %.4f mid-run, want %.4f", loads[globalID].Load, want)
	}
}

// TestStagedSettledMidRunStats: a monitoring loop sampling mid-run (no
// Stop) must see the pushed work once the pipeline settles — the staged
// executor's counters are written asynchronously by shard and global-stage
// goroutines, and SettleStats bridges that gap.
func TestStagedSettledMidRunStats(t *testing.T) {
	st, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil }, StagedConfig{ExecConfig: ExecConfig{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	tuples := keyedTuples(600, 5)
	for i := 0; i < len(tuples); i += 50 {
		if err := st.PushBatch("s", tuples[i:i+50]); err != nil {
			t.Fatal(err)
		}
	}
	st.Advance(100)
	loads := SettleStats(st)
	var executed, offered float64
	for _, nl := range loads {
		executed += nl.Load
		offered += nl.OfferedLoad
	}
	if executed <= 0 || offered <= 0 {
		t.Fatalf("settled mid-run stats zero: executed %.3f offered %.3f", executed, offered)
	}
	// All 600 tuples pass the filter; the settled ingress count must
	// reflect every pushed tuple, not a lagging prefix.
	if loads[0].Tuples != 600 {
		t.Fatalf("settled filter ingress = %d tuples, want 600", loads[0].Tuples)
	}
}
