package engine

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/stream"
)

// Loopback tests for the distributed coordinator: in-process ShardHosts play
// the workers, so the full coordinator machinery — routing, replay logs,
// exchange merges over host callbacks, checkpoint/resume, death recovery,
// drain interleaving — runs without a TCP transport (internal/cluster adds
// that layer and re-proves equivalence over real sockets).

func loopbackHosts(n int, factory func() (*Plan, error)) ([]*ShardHost, []RemoteShardHost) {
	hosts := make([]*ShardHost, n)
	remote := make([]RemoteShardHost, n)
	for i := range hosts {
		hosts[i] = NewShardHost("loop"+string(rune('0'+i)), factory)
		remote[i] = hosts[i]
	}
	return hosts, remote
}

// TestDistributedMatchesSync is the core acceptance equivalence: a staged
// plan (parallel prefix, global window) distributed over two worker hosts
// must produce tuple-identical results to the synchronous Engine.
func TestDistributedMatchesSync(t *testing.T) {
	tuples := keyedTuples(1000, 7) // strictly increasing Ts

	eng, err := New(mixedPlan())
	if err != nil {
		t.Fatal(err)
	}
	want := runExecutor(t, eng, tuples, 64, "raw", "ksums", "gsums")

	factory := func() (*Plan, error) { return mixedPlan(), nil }
	_, remote := loopbackHosts(2, factory)
	d, err := StartDistributed(factory, DistConfig{ExecConfig: ExecConfig{Buf: 8}, Hosts: remote})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", d.NumShards())
	}
	got := runExecutor(t, d, tuples, 64, "raw", "ksums", "gsums")

	// Global-stage results: exact sequence equality.
	if !reflect.DeepEqual(got["gsums"], want["gsums"]) {
		t.Fatalf("global window results differ:\n got %v\nwant %v", got["gsums"], want["gsums"])
	}
	// Parallel-stage results: equality up to ordering, like Sharded.
	for _, q := range []string{"raw", "ksums"} {
		if !reflect.DeepEqual(canonTs(got[q]), canonTs(want[q])) {
			t.Fatalf("query %q differs from sync oracle", q)
		}
	}
	if late := d.LateArrivals(); late != 0 {
		t.Fatalf("failure-free ordered run broke %d watermark promises", late)
	}
	ws := d.WorkerStats()
	if len(ws) != 2 || !ws[0].Alive || !ws[1].Alive {
		t.Fatalf("worker stats = %+v, want 2 alive workers", ws)
	}
	if ws[0].Pushed == 0 || ws[1].Pushed == 0 {
		t.Fatalf("worker stats show an idle shard: %+v", ws)
	}
}

// TestDistributedFullyParallel distributes a plan with no global stage: every
// sink lives on the workers, results stream back over the sink callbacks.
func TestDistributedFullyParallel(t *testing.T) {
	tuples := keyedTuples(600, 5)

	eng, err := New(shardablePlan())
	if err != nil {
		t.Fatal(err)
	}
	want := runExecutor(t, eng, tuples, 48, "raw", "sums")

	factory := func() (*Plan, error) { return shardablePlan(), nil }
	_, remote := loopbackHosts(3, factory)
	d, err := StartDistributed(factory, DistConfig{ExecConfig: ExecConfig{Buf: 8}, Hosts: remote})
	if err != nil {
		t.Fatal(err)
	}
	got := runExecutor(t, d, tuples, 48, "raw", "sums")
	for _, q := range []string{"raw", "sums"} {
		if !reflect.DeepEqual(canonTs(got[q]), canonTs(want[q])) {
			t.Fatalf("query %q differs from sync oracle", q)
		}
	}
}

// TestDistributedFullyGlobal: a plan with no parallel stage needs no workers
// at all — the coordinator degenerates to a local runtime.
func TestDistributedFullyGlobal(t *testing.T) {
	plan := func() *Plan {
		p := NewPlan()
		p.AddSource("s", testSchema)
		g := p.AddUnary(stream.MustWindowAgg("gsum", 2, stream.WindowSpec{
			Size: 5, Agg: stream.AggSum, Field: 1, GroupBy: -1,
		}), FromSource("s"))
		p.AddSink("gsums", g)
		return p
	}
	tuples := keyedTuples(400, 3)

	eng, err := New(plan())
	if err != nil {
		t.Fatal(err)
	}
	want := runExecutor(t, eng, tuples, 32, "gsums")

	d, err := StartDistributed(func() (*Plan, error) { return plan(), nil },
		DistConfig{ExecConfig: ExecConfig{Buf: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumShards() != 0 {
		t.Fatalf("fully global plan claims %d worker shards", d.NumShards())
	}
	got := runExecutor(t, d, tuples, 32, "gsums")
	if !reflect.DeepEqual(got["gsums"], want["gsums"]) {
		t.Fatalf("fully global results differ:\n got %v\nwant %v", got["gsums"], want["gsums"])
	}
}

// TestDistributedCheckpointBoundary: a mid-run Checkpoint — quiesce, export,
// resume on a fresh epoch with truncated logs — must be invisible in the
// results (clean boundary, no loss, no duplication) and bump the epoch.
func TestDistributedCheckpointBoundary(t *testing.T) {
	tuples := keyedTuples(1000, 7)

	eng, err := New(mixedPlan())
	if err != nil {
		t.Fatal(err)
	}
	want := runExecutor(t, eng, tuples, 64, "raw", "ksums", "gsums")

	factory := func() (*Plan, error) { return mixedPlan(), nil }
	_, remote := loopbackHosts(2, factory)
	dir := t.TempDir()
	d, err := StartDistributed(factory, DistConfig{ExecConfig: ExecConfig{Buf: 8}, Hosts: remote, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	push := func(ts []stream.Tuple) {
		for i := 0; i < len(ts); i += 64 {
			end := i + 64
			if end > len(ts) {
				end = len(ts)
			}
			if err := d.PushBatch("s", ts[i:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	push(tuples[:500])
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch after checkpoint = %d, want 1", d.Epoch())
	}
	push(tuples[500:])
	d.Stop()
	got := map[string][]stream.Tuple{}
	for _, q := range []string{"raw", "ksums", "gsums"} {
		got[q] = d.Results(q)
	}
	if !reflect.DeepEqual(got["gsums"], want["gsums"]) {
		t.Fatalf("global window results differ across checkpoint:\n got %v\nwant %v", got["gsums"], want["gsums"])
	}
	for _, q := range []string{"raw", "ksums"} {
		if !reflect.DeepEqual(canonTs(got[q]), canonTs(want[q])) {
			t.Fatalf("query %q differs from sync oracle across checkpoint", q)
		}
	}

	// The snapshot restores into a fresh deployment: the checkpointed keyed
	// state (tuples 0..499) carries over, so pushing only the second half
	// yields every window the oracle closes after the boundary.
	_, remote2 := loopbackHosts(2, factory)
	d2, err := StartDistributed(factory, DistConfig{ExecConfig: ExecConfig{Buf: 8}, Hosts: remote2, Restore: dir})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for i := 500; i < len(tuples); i += 64 {
		end := i + 64
		if end > len(tuples) {
			end = len(tuples)
		}
		if err := d2.PushBatch("s", tuples[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	d2.Stop()
	// Keyed windows spanning the boundary must have closed with their
	// pre-checkpoint prefix intact: compare against the oracle's ksums
	// restricted to emissions at or after the restore point.
	var wantTail []stream.Tuple
	for _, kt := range want["ksums"] {
		if kt.Ts >= 500 {
			wantTail = append(wantTail, kt)
		}
	}
	if !reflect.DeepEqual(canonTs(d2.Results("ksums")), canonTs(wantTail)) {
		t.Fatal("restored deployment lost checkpointed keyed state")
	}
}

// TestDistributedWorkerDeathNoAcknowledgedLoss is the kill-a-worker
// acceptance: after one of three workers dies mid-run, the coordinator
// replays its logged ingress onto the survivors and keeps running — every
// acknowledged tuple still reaches the results (duplicates are allowed
// across the failure, loss is not), pushes keep succeeding, and the stats
// surface reports the dead worker.
func TestDistributedWorkerDeathNoAcknowledgedLoss(t *testing.T) {
	tuples := keyedTuples(900, 7)

	eng, err := New(mixedPlan())
	if err != nil {
		t.Fatal(err)
	}
	want := runExecutor(t, eng, tuples, 50, "raw", "gsums")

	factory := func() (*Plan, error) { return mixedPlan(), nil }
	hosts, remote := loopbackHosts(3, factory)
	d, err := StartDistributed(factory, DistConfig{ExecConfig: ExecConfig{Buf: 8}, Hosts: remote, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	push := func(ts []stream.Tuple) {
		for i := 0; i < len(ts); i += 50 {
			end := i + 50
			if end > len(ts) {
				end = len(ts)
			}
			if err := d.PushBatch("s", ts[i:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	push(tuples[:400])
	hosts[1].Kill()
	deadline := time.Now().Add(5 * time.Second)
	for d.NumShards() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("recovery never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	push(tuples[400:])
	d.Stop()

	// At-least-once across the failure: for every distinct oracle tuple the
	// distributed run must deliver at least as many copies.
	count := func(ts []stream.Tuple) map[string]int {
		m := make(map[string]int)
		for _, k := range canonTs(ts) {
			m[k]++
		}
		return m
	}
	gotRaw, wantRaw := count(d.Results("raw")), count(want["raw"])
	for k, w := range wantRaw {
		if gotRaw[k] < w {
			t.Fatalf("acknowledged tuple lost across worker death: %q seen %d times, want >= %d", k, gotRaw[k], w)
		}
	}
	if len(d.Results("gsums")) == 0 && len(want["gsums"]) > 0 {
		t.Fatal("global stage produced nothing after recovery")
	}
	var deadRows int
	for _, ws := range d.WorkerStats() {
		if !ws.Alive {
			deadRows++
		}
	}
	if deadRows != 1 {
		t.Fatalf("worker stats report %d dead workers, want 1", deadRows)
	}
	// The broken-promise counter stays observable (replay may tick it; a
	// clean recovery leaves it at zero — either way it must be readable).
	_ = d.LateArrivals()
}

// TestDistributedPushOwnedContract: Distributed honors the same
// rejection-ownership contract as the in-process executors.
func TestDistributedPushOwnedContract(t *testing.T) {
	factory := func() (*Plan, error) { return mixedPlan(), nil }
	_, remote := loopbackHosts(2, factory)
	d, err := StartDistributed(factory, DistConfig{ExecConfig: ExecConfig{Buf: 8}, Hosts: remote})
	if err != nil {
		t.Fatal(err)
	}
	batch := GetBatch(2)
	batch = append(batch, tup(1, "a", 1), stream.NewTuple(2, "bad", "not-a-float"))
	if err := d.PushOwnedBatch("s", batch); err == nil {
		t.Fatal("nonconforming owned batch must be rejected whole")
	}
	if got := d.Dropped(); got != 0 {
		t.Fatalf("whole-rejection counted %d dropped tuples", got)
	}
	PutBatch(batch)

	good := GetBatch(2)
	good = append(good, tup(1, "a", 1), tup(2, "b", 2))
	if err := d.PushOwnedBatch("s", good); err != nil {
		t.Fatalf("owned push: %v", err)
	}
	d.Stop()
	if res := d.Results("raw"); len(res) != 2 {
		t.Fatalf("owned push delivered %d tuples, want 2", len(res))
	}
}
