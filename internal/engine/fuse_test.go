package engine

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/stream"
)

// TestFusedSteadyStateZeroAllocs pins the hot-path allocation contract: a
// batch leased from the pool, pushed owned, run through the fused 4-deep
// filter→map→filter→map prefix and recycled at the sink tap completes the
// whole cycle without a single heap allocation — no ingress copy, no
// per-operator output slices, no per-tuple Vals (the maps reuse their
// input's values). One buffer circulates: the owned push travels the chain
// in place and the tap returns it to the pool before the next lease.
//
// Each measured run waits for its batch to reach the tap, so the pipeline is
// fully drained — and the pool refilled — between runs; that makes the pool
// hit deterministic rather than a race between producer and consumer.
func TestFusedSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under the race detector")
	}
	var delivered atomic.Int64
	rt, err := StartRuntime(benchDeepPlan(), RuntimeConfig{
		ExecConfig: ExecConfig{Buf: 4},
		Taps: map[string]func([]stream.Tuple){"q": func(ts []stream.Tuple) {
			n := int64(len(ts))
			PutBatch(ts) // recycle before signaling, so the pusher's next lease hits the pool
			delivered.Add(n)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	template := benchDeepTemplate()
	push := func() {
		want := delivered.Load() + int64(len(template))
		buf := GetBatch(len(template))
		buf = append(buf, template...)
		if err := rt.PushOwnedBatch("s", buf); err != nil {
			t.Fatal(err)
		}
		for delivered.Load() < want {
			runtime.Gosched()
		}
	}
	// Warm the cycle: the first trips allocate the circulating buffer and any
	// lazily-grown runtime internals.
	for i := 0; i < 8; i++ {
		push()
	}
	if avg := testing.AllocsPerRun(200, push); avg != 0 {
		t.Errorf("fused steady state allocates %.2f times per %d-tuple owned batch, want 0", avg, len(template))
	}
	rt.Stop()
}
