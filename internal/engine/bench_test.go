package engine

import (
	"fmt"
	"testing"

	"repro/internal/stream"
)

// benchPlan builds a fan-out plan: one shared filter feeding w window
// branches, each with its own sink.
func benchPlan(branches int) *Plan {
	p := NewPlan()
	p.AddSource("s", testSchema)
	shared := p.AddUnary(stream.NewFilter("pos", 1, stream.FieldCmp(1, stream.Gt, 0)), FromSource("s"))
	for i := 0; i < branches; i++ {
		w := p.AddUnary(stream.MustWindowAgg(fmt.Sprintf("sum%d", i), 1, stream.WindowSpec{
			Size: 10, Agg: stream.AggSum, Field: 1, GroupBy: -1,
		}), shared)
		p.AddSink(fmt.Sprintf("q%d", i), w)
	}
	return p
}

// BenchmarkSynchronousPush measures the deterministic engine's per-tuple
// cost through a shared plan with 4 query branches.
func BenchmarkSynchronousPush(b *testing.B) {
	eng, err := New(benchPlan(4))
	if err != nil {
		b.Fatal(err)
	}
	t := tup(1, "a", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Push("s", t); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			// Keep result buffers from growing unboundedly.
			for q := 0; q < 4; q++ {
				eng.Results(fmt.Sprintf("q%d", q))
			}
		}
	}
}

// BenchmarkConcurrentRuntime measures the goroutine runtime end to end on
// the same plan shape.
func BenchmarkConcurrentRuntime(b *testing.B) {
	rt, err := StartConcurrent(benchPlan(4), 256)
	if err != nil {
		b.Fatal(err)
	}
	t := tup(1, "a", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Push("s", t); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rt.Close()
}
