package engine

import (
	"fmt"
	"testing"

	"repro/internal/stream"
)

// benchPlan builds a fan-out plan: one shared filter feeding w window
// branches, each with its own sink.
func benchPlan(branches int) *Plan {
	p := NewPlan()
	p.AddSource("s", testSchema)
	shared := p.AddUnary(stream.NewFilter("pos", 1, stream.FieldCmp(1, stream.Gt, 0)), FromSource("s"))
	for i := 0; i < branches; i++ {
		w := p.AddUnary(stream.MustWindowAgg(fmt.Sprintf("sum%d", i), 1, stream.WindowSpec{
			Size: 10, Agg: stream.AggSum, Field: 1, GroupBy: -1,
		}), shared)
		p.AddSink(fmt.Sprintf("q%d", i), w)
	}
	return p
}

// BenchmarkSynchronousPush measures the deterministic engine's per-tuple
// cost through a shared plan with 4 query branches.
func BenchmarkSynchronousPush(b *testing.B) {
	eng, err := New(benchPlan(4))
	if err != nil {
		b.Fatal(err)
	}
	t := tup(1, "a", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Push("s", t); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			// Keep result buffers from growing unboundedly.
			for q := 0; q < 4; q++ {
				eng.Results(fmt.Sprintf("q%d", q))
			}
		}
	}
}

// BenchmarkConcurrentRuntime measures the goroutine runtime end to end on
// the same plan shape.
func BenchmarkConcurrentRuntime(b *testing.B) {
	rt, err := StartConcurrent(benchPlan(4), 256)
	if err != nil {
		b.Fatal(err)
	}
	t := tup(1, "a", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Push("s", t); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rt.Close()
}

// benchBatch is the batch width the executor benchmarks push with: large
// enough to amortize channel sends, small enough to keep memory flat.
const benchBatch = 256

// benchKeyedPlan is the partition-safe plan the executor comparison runs:
// a filter feeding a per-key windowed sum over 64 keys, so the sharded
// executor's results stay identical to the synchronous engine's.
func benchKeyedPlan() *Plan {
	p := NewPlan()
	p.AddSource("s", testSchema)
	flt := p.AddUnary(stream.NewFilter("pos", 1, stream.FieldCmp(1, stream.Gt, 0)), FromSource("s"))
	agg := p.AddUnary(stream.MustWindowAgg("sum64", 2, stream.WindowSpec{
		Size: 64, Agg: stream.AggSum, Field: 1, GroupBy: 0,
	}), flt)
	p.AddSink("q", agg)
	return p
}

// benchKeyedBatches pre-builds b.N tuples over 64 keys, batched.
func benchKeyedBatches(n int) [][]stream.Tuple {
	var out [][]stream.Tuple
	for base := 0; base < n; base += benchBatch {
		size := benchBatch
		if base+size > n {
			size = n - base
		}
		batch := make([]stream.Tuple, size)
		for i := range batch {
			j := base + i
			batch[i] = tup(int64(j), fmt.Sprintf("k%02d", j%64), float64(j%7)+1)
		}
		out = append(out, batch)
	}
	return out
}

// driveExecutor pushes all batches through ex, draining results
// periodically, and reports throughput in tuples/sec.
func driveExecutor(b *testing.B, ex Executor, batches [][]stream.Tuple) {
	b.Helper()
	b.ResetTimer()
	for i, batch := range batches {
		if err := ex.PushBatch("s", batch); err != nil {
			b.Fatal(err)
		}
		if i%64 == 0 {
			ex.Results("q")
		}
	}
	ex.Stop()
	ex.Results("q")
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkReshard measures one elastic reshard on a loaded staged
// executor — quiesce, exchange drain, partition-map rebalance, keyed state
// movement (64 open window groups), runtime restart — alternating grow and
// shrink so each iteration pays a full boundary. Gated by cmd/benchgate in
// CI: a regression here means period boundaries stall the feed longer.
func BenchmarkReshard(b *testing.B) {
	st, err := StartStaged(func() (*Plan, error) { return benchKeyedPlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 2}})
	if err != nil {
		b.Fatal(err)
	}
	// Populate window state so every reshard moves real keyed bundles.
	for _, batch := range benchKeyedBatches(4096) {
		if err := st.PushBatch("s", batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 2
		if i%2 == 0 {
			n = 4
		}
		if err := st.Reshard(n); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st.Stop()
}

// BenchmarkExchangeQuietShard measures the staged executor end to end on
// the quiet-edge workload: every tuple carries one key, so one shard runs
// hot and the other three never emit on the exchange — the merge advances
// on source heartbeats alone. Before punctuation this shape buffered the
// entire stream until Stop (merge latency unbounded, one giant drain);
// gated via cmd/benchgate so the liveness win never regresses back and the
// watermark bookkeeping in the merge loop stays cheap.
func BenchmarkExchangeQuietShard(b *testing.B) {
	st, err := StartStaged(func() (*Plan, error) { return benchPlan(4), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 4}})
	if err != nil {
		b.Fatal(err)
	}
	var batches [][]stream.Tuple
	for base := 0; base < b.N; base += benchBatch {
		size := benchBatch
		if base+size > b.N {
			size = b.N - base
		}
		batch := make([]stream.Tuple, size)
		for i := range batch {
			batch[i] = tup(int64(base+i+1), "k0", float64((base+i)%7)+1)
		}
		batches = append(batches, batch)
	}
	b.ResetTimer()
	for i, batch := range batches {
		if err := st.PushBatch("s", batch); err != nil {
			b.Fatal(err)
		}
		if i%64 == 0 {
			st.Results("q0")
		}
	}
	st.Stop()
	st.Results("q0")
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// benchDeepPlan builds the 4-deep stateless-prefix plan the hot-path
// benchmarks run: filter→map→filter→map into one sink, with predicates every
// generated tuple passes and maps that reuse their input's Vals. Nothing is
// filtered and nothing allocates per tuple, so the numbers isolate pure
// per-hop execution cost — exactly what operator fusion removes.
func benchDeepPlan() *Plan {
	p := NewPlan()
	p.AddSource("s", testSchema)
	cur := p.AddUnary(stream.NewFilter("f0", 1, stream.FieldCmp(1, stream.Gt, 0)), FromSource("s"))
	cur = p.AddUnary(stream.NewMap("m0", 1, nil, func(t stream.Tuple) []any { return t.Vals }), cur)
	cur = p.AddUnary(stream.NewFilter("f1", 1, stream.FieldCmp(1, stream.Lt, 100)), cur)
	cur = p.AddUnary(stream.NewMap("m1", 1, nil, func(t stream.Tuple) []any { return t.Vals }), cur)
	p.AddSink("q", cur)
	return p
}

// benchDeepTemplate pre-builds one batch of benchBatch tuples for the deep
// chain: values in (0, 100) so both filters pass everything.
func benchDeepTemplate() []stream.Tuple {
	template := make([]stream.Tuple, benchBatch)
	for i := range template {
		template[i] = tup(int64(i+1), "k0", float64(i%7)+1)
	}
	return template
}

// recycleTap is a sink tap that just returns each delivered batch to the
// pool — the cheapest possible consumer, keeping the benchmarks focused on
// the dataflow path rather than Results accumulation.
func recycleTap() map[string]func([]stream.Tuple) {
	return map[string]func([]stream.Tuple){"q": func(ts []stream.Tuple) { PutBatch(ts) }}
}

// driveOwned pushes b.N tuples through rt as owned pooled batches and waits
// for the drain, reporting tuples/s.
func driveOwned(b *testing.B, rt *Runtime, template []stream.Tuple) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for pushed := 0; pushed < b.N; pushed += benchBatch {
		n := benchBatch
		if pushed+n > b.N {
			n = b.N - pushed
		}
		buf := GetBatch(n)
		buf = append(buf, template[:n]...)
		if err := rt.PushOwnedBatch("s", buf); err != nil {
			b.Fatal(err)
		}
	}
	rt.Stop()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkFusedPrefix measures operator fusion on the 4-deep stateless
// prefix: the fused arm runs the whole chain as one goroutine (one channel
// hop, one batch loop), the unfused arm pays four hops per batch. Gated by
// cmd/benchgate in CI; the fused arm is also the zero-alloc hot path
// (b.ReportAllocs should stay at 0 allocs/op).
func BenchmarkFusedPrefix(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fused", false}, {"unfused", true}} {
		b.Run(mode.name, func(b *testing.B) {
			rt, err := StartRuntime(benchDeepPlan(), RuntimeConfig{ExecConfig: ExecConfig{Buf: 256, DisableFusion: mode.disable}, Taps: recycleTap()})
			if err != nil {
				b.Fatal(err)
			}
			driveOwned(b, rt, benchDeepTemplate())
		})
	}
}

// driveOwnedCol is driveOwned on the columnar ingress: pooled
// struct-of-arrays batches bulk-filled from a template and pushed owned.
func driveOwnedCol(b *testing.B, rt *Runtime, template *stream.ColBatch) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	pushed := 0
	for pushed < b.N {
		buf := GetColBatch(template.Schema(), template.Len())
		buf.AppendCols(template)
		if err := rt.PushOwnedColBatch("s", buf); err != nil {
			b.Fatal(err)
		}
		pushed += template.Len()
	}
	rt.Stop()
	b.StopTimer()
	b.ReportMetric(float64(pushed)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkColumnarPrefix measures the struct-of-arrays layout against the
// boxed row layout on the SAME fused 4-deep int/float filter+map chain
// (colDeepPlan): the row arm runs the fused chain batch-at-a-time over
// []Tuple with per-value boxing and type assertions, the columnar arm runs
// it column-at-a-time over typed slices with selection-vector filters and
// in-place adds. Both arms are zero-copy owned ingress with recycling sink
// taps, so the delta isolates layout. Gated by cmd/benchgate in CI; the
// columnar arm is also a zero-alloc hot path (b.ReportAllocs should stay at
// 0 allocs/op — see TestColumnarSteadyStateZeroAllocs).
func BenchmarkColumnarPrefix(b *testing.B) {
	b.Run("row-fused", func(b *testing.B) {
		rt, err := StartRuntime(colDeepPlan(), RuntimeConfig{
			ExecConfig: ExecConfig{Buf: 256},
			Taps:       recycleTap(),
		})
		if err != nil {
			b.Fatal(err)
		}
		driveOwned(b, rt, colRowTemplate(benchBatch))
	})
	b.Run("columnar", func(b *testing.B) {
		rt, err := StartRuntime(colDeepPlan(), RuntimeConfig{
			ExecConfig: ExecConfig{Buf: 256, Columnar: true},
			ColTaps:    map[string]func(*stream.ColBatch){"q": PutColBatch},
		})
		if err != nil {
			b.Fatal(err)
		}
		driveOwnedCol(b, rt, colColTemplate(benchBatch))
	})
}

// BenchmarkPushOwnedBatch compares the two ingress paths on the fused deep
// chain: owned pushes transfer a pooled buffer (zero-copy, allocation-free),
// copied pushes pay PushBatch's defensive memcpy into a pooled buffer. Gated
// by cmd/benchgate in CI.
func BenchmarkPushOwnedBatch(b *testing.B) {
	b.Run("owned", func(b *testing.B) {
		rt, err := StartRuntime(benchDeepPlan(), RuntimeConfig{ExecConfig: ExecConfig{Buf: 256}, Taps: recycleTap()})
		if err != nil {
			b.Fatal(err)
		}
		driveOwned(b, rt, benchDeepTemplate())
	})
	b.Run("copied", func(b *testing.B) {
		rt, err := StartRuntime(benchDeepPlan(), RuntimeConfig{ExecConfig: ExecConfig{Buf: 256}, Taps: recycleTap()})
		if err != nil {
			b.Fatal(err)
		}
		template := benchDeepTemplate()
		b.ReportAllocs()
		b.ResetTimer()
		for pushed := 0; pushed < b.N; pushed += benchBatch {
			n := benchBatch
			if pushed+n > b.N {
				n = b.N - pushed
			}
			if err := rt.PushBatch("s", template[:n]); err != nil {
				b.Fatal(err)
			}
		}
		rt.Stop()
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	})
}

// BenchmarkExecutor compares the three Executor backends on one workload:
// the synchronous reference Engine, the single concurrent Runtime, and the
// sharded executor at GOMAXPROCS shards. Compare the tuples/s metric.
func BenchmarkExecutor(b *testing.B) {
	b.Run("sync", func(b *testing.B) {
		eng, err := New(benchKeyedPlan())
		if err != nil {
			b.Fatal(err)
		}
		driveExecutor(b, eng, benchKeyedBatches(b.N))
	})
	b.Run("runtime", func(b *testing.B) {
		rt, err := StartConcurrent(benchKeyedPlan(), 64)
		if err != nil {
			b.Fatal(err)
		}
		driveExecutor(b, rt, benchKeyedBatches(b.N))
	})
	b.Run("sharded", func(b *testing.B) {
		sh, err := StartSharded(func() (*Plan, error) { return benchKeyedPlan(), nil }, ShardedConfig{})
		if err != nil {
			b.Fatal(err)
		}
		driveExecutor(b, sh, benchKeyedBatches(b.N))
	})
}
