package engine

import (
	"testing"

	"repro/internal/stream"
)

var testSchema = stream.MustSchema(
	stream.Field{Name: "sym", Kind: stream.KindString},
	stream.Field{Name: "v", Kind: stream.KindFloat},
)

func tup(ts int64, sym string, v float64) stream.Tuple {
	return stream.NewTuple(ts, sym, v)
}

func TestPlanValidation(t *testing.T) {
	t.Run("no sinks", func(t *testing.T) {
		p := NewPlan()
		p.AddSource("s", testSchema)
		if err := p.Build(); err == nil {
			t.Error("want error for sink-less plan")
		}
	})
	t.Run("unknown source", func(t *testing.T) {
		p := NewPlan()
		p.AddUnary(stream.NewFilter("f", 1, func(stream.Tuple) bool { return true }), FromSource("missing"))
		p.AddSink("q", PortRef{node: 0})
		if err := p.Build(); err == nil {
			t.Error("want error for unknown source")
		}
	})
	t.Run("duplicate sink", func(t *testing.T) {
		p := NewPlan()
		p.AddSource("s", testSchema)
		p.AddSink("q", FromSource("s"))
		p.AddSink("q", FromSource("s"))
		if err := p.Build(); err == nil {
			t.Error("want error for duplicate sink")
		}
	})
	t.Run("duplicate source", func(t *testing.T) {
		p := NewPlan()
		p.AddSource("s", testSchema)
		p.AddSource("s", testSchema)
		p.AddSink("q", FromSource("s"))
		if err := p.Build(); err == nil {
			t.Error("want error for duplicate source")
		}
	})
}

func TestPushRoutingAndResults(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	f := p.AddUnary(stream.NewFilter("hi", 1, stream.FieldCmp(1, stream.Gt, 10)), FromSource("s"))
	p.AddSink("q", f)
	eng, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	check(t, eng.Push("s", tup(1, "a", 20)))
	check(t, eng.Push("s", tup(2, "a", 5)))
	got := eng.Results("q")
	if len(got) != 1 || got[0].Float(1) != 20 {
		t.Fatalf("results = %+v, want the single passing tuple", got)
	}
	if len(eng.Results("q")) != 0 {
		t.Error("Results should drain")
	}
}

func TestPushErrors(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	p.AddSink("q", FromSource("s"))
	eng, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Push("nope", tup(1, "a", 1)); err == nil {
		t.Error("want error for unknown source")
	}
	if err := eng.Push("s", stream.NewTuple(1, int64(3))); err == nil {
		t.Error("want error for non-conforming tuple")
	}
	if eng.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", eng.Dropped())
	}
}

// TestSharedOperatorRunsOnce: a node feeding two sinks processes each tuple
// once (shared processing) while both queries receive the results.
func TestSharedOperatorRunsOnce(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	shared := p.AddUnary(stream.NewFilter("shared", 2, stream.FieldCmp(1, stream.Gt, 0)), FromSource("s"))
	p.AddSink("q1", shared)
	p.AddSink("q2", shared)
	eng, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		check(t, eng.Push("s", tup(int64(i), "a", 1)))
	}
	eng.Advance(10)
	loads := eng.Loads()
	if len(loads) != 1 {
		t.Fatalf("want one node, got %d", len(loads))
	}
	if loads[0].Tuples != 10 {
		t.Errorf("shared node processed %d tuples, want 10 (once per tuple)", loads[0].Tuples)
	}
	if loads[0].Load != 2 { // cost 2 × 10 tuples / 10 ticks
		t.Errorf("load = %v, want 2", loads[0].Load)
	}
	if len(loads[0].Owners) != 2 {
		t.Errorf("owners = %v, want both queries", loads[0].Owners)
	}
	if len(eng.Results("q1")) != 10 || len(eng.Results("q2")) != 10 {
		t.Error("both sinks should receive every tuple")
	}
}

// TestSharedEqualsUnshared: a shared operator produces exactly the outputs
// two private copies would.
func TestSharedEqualsUnshared(t *testing.T) {
	build := func(shared bool) ([]stream.Tuple, []stream.Tuple) {
		p := NewPlan()
		p.AddSource("s", testSchema)
		mk := func() stream.Transform {
			return stream.NewFilter("f", 1, stream.FieldCmp(1, stream.Gt, 50))
		}
		var out1, out2 PortRef
		if shared {
			n := p.AddUnary(mk(), FromSource("s"))
			out1, out2 = n, n
		} else {
			out1 = p.AddUnary(mk(), FromSource("s"))
			out2 = p.AddUnary(mk(), FromSource("s"))
		}
		p.AddSink("q1", out1)
		p.AddSink("q2", out2)
		eng, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			check(t, eng.Push("s", tup(int64(i), "a", float64(i*3%100))))
		}
		return eng.Results("q1"), eng.Results("q2")
	}
	s1, s2 := build(true)
	u1, u2 := build(false)
	if len(s1) != len(u1) || len(s2) != len(u2) {
		t.Fatalf("shared vs unshared counts differ: %d/%d vs %d/%d", len(s1), len(s2), len(u1), len(u2))
	}
	for i := range s1 {
		if s1[i].Float(1) != u1[i].Float(1) {
			t.Fatal("shared and unshared outputs diverge")
		}
	}
}

func TestBinaryRouting(t *testing.T) {
	p := NewPlan()
	p.AddSource("l", testSchema)
	p.AddSource("r", testSchema)
	j := p.AddBinary(stream.NewHashJoin("join", 2, 0, 0, 8), FromSource("l"), FromSource("r"))
	p.AddSink("q", j)
	eng, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	check(t, eng.Push("l", tup(1, "k", 1)))
	check(t, eng.Push("r", tup(2, "k", 2)))
	check(t, eng.Push("r", tup(3, "x", 9)))
	got := eng.Results("q")
	if len(got) != 1 {
		t.Fatalf("join results = %d, want 1", len(got))
	}
	if got[0].Str(0) != "k" || got[0].Str(2) != "k" {
		t.Errorf("join tuple = %+v", got[0])
	}
}

// TestHoldBuffersAtConnectionPoints: while holding, pushes buffer instead of
// processing and replay after the transition.
func TestHoldBuffersAtConnectionPoints(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	p.AddSink("q", FromSource("s"))
	eng, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	eng.Hold()
	if !eng.Holding() {
		t.Fatal("engine should be holding")
	}
	check(t, eng.Push("s", tup(1, "a", 1)))
	if len(eng.PeekResults("q")) != 0 {
		t.Fatal("held tuple must not be processed")
	}
	// Transition to the same structure; the held tuple replays.
	p2 := NewPlan()
	p2.AddSource("s", testSchema)
	p2.AddSink("q", FromSource("s"))
	if err := eng.Transition(p2); err != nil {
		t.Fatal(err)
	}
	if got := eng.Results("q"); len(got) != 1 {
		t.Fatalf("replayed results = %d, want 1", len(got))
	}
}

// TestTransitionPreservesSurvivorState: an operator instance present in both
// plans keeps its window state across the transition — the paper's
// "correctness of the results output by CQs that continue to execute".
func TestTransitionPreservesSurvivorState(t *testing.T) {
	survivor := stream.MustWindowAgg("sum4", 1, stream.WindowSpec{
		Size: 4, Agg: stream.AggSum, Field: 1, GroupBy: -1,
	})
	p1 := NewPlan()
	p1.AddSource("s", testSchema)
	w1 := p1.AddUnary(survivor, FromSource("s"))
	p1.AddSink("q", w1)
	eng, err := New(p1)
	if err != nil {
		t.Fatal(err)
	}
	// Half-fill the window before the transition.
	check(t, eng.Push("s", tup(1, "a", 1)))
	check(t, eng.Push("s", tup(2, "a", 2)))

	p2 := NewPlan()
	p2.AddSource("s", testSchema)
	w2 := p2.AddUnary(survivor, FromSource("s")) // same instance survives
	p2.AddSink("q", w2)
	newcomer := p2.AddUnary(stream.NewFilter("new", 1, func(stream.Tuple) bool { return true }), FromSource("s"))
	p2.AddSink("q2", newcomer)
	if err := eng.Transition(p2); err != nil {
		t.Fatal(err)
	}

	// Completing the window after the transition must include the
	// pre-transition tuples: 1+2+3+4 = 10.
	check(t, eng.Push("s", tup(3, "a", 3)))
	check(t, eng.Push("s", tup(4, "a", 4)))
	got := eng.Results("q")
	if len(got) != 1 || got[0].Float(1) != 10 {
		t.Fatalf("post-transition window = %+v, want sum 10 across the transition", got)
	}
	if len(eng.Results("q2")) != 2 {
		t.Error("newcomer query should see the post-transition tuples")
	}
}

// TestTransitionDrainsRemovedOperators: operators absent from the new plan
// are flushed and their in-flight results reach the old sinks.
func TestTransitionDrainsRemovedOperators(t *testing.T) {
	removed := stream.MustWindowAgg("sum10", 1, stream.WindowSpec{
		Size: 10, Agg: stream.AggSum, Field: 1, GroupBy: -1,
	})
	p1 := NewPlan()
	p1.AddSource("s", testSchema)
	w := p1.AddUnary(removed, FromSource("s"))
	p1.AddSink("q", w)
	eng, err := New(p1)
	if err != nil {
		t.Fatal(err)
	}
	check(t, eng.Push("s", tup(1, "a", 5)))
	check(t, eng.Push("s", tup(2, "a", 7)))

	p2 := NewPlan()
	p2.AddSource("s", testSchema)
	p2.AddSink("other", FromSource("s"))
	if err := eng.Transition(p2); err != nil {
		t.Fatal(err)
	}
	// The removed window flushed its partial sum through the old sink.
	got := eng.Results("q")
	if len(got) != 1 || got[0].Float(1) != 12 {
		t.Fatalf("drained partial = %+v, want sum 12", got)
	}
}

// TestTransitionDropsUnknownSourceTuples: held tuples for sources absent
// from the new plan are discarded, like a disconnected stream.
func TestTransitionDropsUnknownSourceTuples(t *testing.T) {
	p1 := NewPlan()
	p1.AddSource("s", testSchema)
	p1.AddSink("q", FromSource("s"))
	eng, err := New(p1)
	if err != nil {
		t.Fatal(err)
	}
	eng.Hold()
	check(t, eng.Push("s", tup(1, "a", 1)))

	p2 := NewPlan()
	p2.AddSource("t", testSchema)
	p2.AddSink("q2", FromSource("t"))
	if err := eng.Transition(p2); err != nil {
		t.Fatal(err)
	}
	if eng.Holding() {
		t.Error("transition should resume input")
	}
	if len(eng.PeekResults("q2")) != 0 {
		t.Error("dropped-source tuple leaked into the new plan")
	}
}

// TestOwnersMarkedThroughSharedChain: AddSink walks upstream through shared
// nodes, so the auction sees correct per-operator sharing.
func TestOwnersMarkedThroughSharedChain(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	a := p.AddUnary(stream.NewFilter("a", 1, func(stream.Tuple) bool { return true }), FromSource("s"))
	b := p.AddUnary(stream.NewFilter("b", 1, func(stream.Tuple) bool { return true }), a)
	c := p.AddUnary(stream.NewFilter("c", 1, func(stream.Tuple) bool { return true }), a)
	p.AddSink("q1", b)
	p.AddSink("q2", c)
	if err := p.Build(); err != nil {
		t.Fatal(err)
	}
	nodes := p.Nodes()
	if len(nodes[0].Owners) != 2 {
		t.Errorf("node a owners = %v, want both queries", nodes[0].Owners)
	}
	if len(nodes[1].Owners) != 1 || len(nodes[2].Owners) != 1 {
		t.Errorf("downstream owners = %v / %v, want one each", nodes[1].Owners, nodes[2].Owners)
	}
}

func TestMeasuredSelectivity(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	f := p.AddUnary(stream.NewFilter("quarter", 1, stream.FieldCmp(1, stream.Lt, 25)), FromSource("s"))
	p.AddSink("q", f)
	eng, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		check(t, eng.Push("s", tup(int64(i), "a", float64(i))))
	}
	nl := eng.Loads()[0]
	if nl.Tuples != 100 || nl.OutTuples != 25 {
		t.Fatalf("tuples in/out = %d/%d, want 100/25", nl.Tuples, nl.OutTuples)
	}
	if nl.Selectivity() != 0.25 {
		t.Errorf("selectivity = %v, want 0.25", nl.Selectivity())
	}
	if (NodeLoad{}).Selectivity() != 1 {
		t.Error("empty node selectivity should default to 1")
	}
}

func TestDeliveredAndOutputRate(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	f := p.AddUnary(stream.NewFilter("hi", 1, stream.FieldCmp(1, stream.Gt, 10)), FromSource("s"))
	p.AddSink("q", f)
	eng, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		check(t, eng.Push("s", tup(int64(i), "a", float64(i*3))))
	}
	eng.Advance(10)
	// Values 0,3,...,27: seven exceed 10 (12..27).
	if got := eng.Delivered("q"); got != 6 {
		t.Errorf("Delivered = %d, want 6", got)
	}
	eng.Results("q") // draining results must not affect the counter
	if got := eng.Delivered("q"); got != 6 {
		t.Errorf("Delivered after drain = %d, want 6", got)
	}
	if got := eng.OutputRate("q"); got != 0.6 {
		t.Errorf("OutputRate = %v, want 0.6", got)
	}
	eng.ResetStats()
	if eng.Delivered("q") != 0 || eng.OutputRate("q") != 0 {
		t.Error("ResetStats did not clear delivery stats")
	}
}

func TestResetStats(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	f := p.AddUnary(stream.NewFilter("f", 3, func(stream.Tuple) bool { return true }), FromSource("s"))
	p.AddSink("q", f)
	eng, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	check(t, eng.Push("s", tup(1, "a", 1)))
	eng.Advance(1)
	if eng.Loads()[0].Load != 3 {
		t.Fatalf("load = %v, want 3", eng.Loads()[0].Load)
	}
	eng.ResetStats()
	if eng.Loads()[0].Load != 0 || eng.Loads()[0].Tuples != 0 {
		t.Error("ResetStats did not clear metering")
	}
}

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
