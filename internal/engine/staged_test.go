package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/stream"
)

// mixedPlan builds the canonical staged shape: a stateless filter feeding a
// raw sink, a per-key windowed sum (parallel) and a global (ungrouped)
// windowed sum (global stage) — one plan mixing both stages.
func mixedPlan() *Plan {
	p := NewPlan()
	p.AddSource("s", testSchema)
	flt := p.AddUnary(stream.NewFilter("pos", 1, stream.FieldCmp(1, stream.Gt, 0)), FromSource("s"))
	p.AddSink("raw", flt)
	keyed := p.AddUnary(stream.MustWindowAgg("ksum", 2, stream.WindowSpec{
		Size: 4, Agg: stream.AggSum, Field: 1, GroupBy: 0,
	}), flt)
	p.AddSink("ksums", keyed)
	global := p.AddUnary(stream.MustWindowAgg("gsum", 2, stream.WindowSpec{
		Size: 5, Agg: stream.AggSum, Field: 1, GroupBy: -1,
	}), flt)
	p.AddSink("gsums", global)
	return p
}

func TestAnalyzeMixedPlan(t *testing.T) {
	split, err := mixedPlan().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if split.NumParallel() != 2 || split.NumGlobal() != 1 {
		t.Fatalf("split = %d parallel / %d global, want 2/1", split.NumParallel(), split.NumGlobal())
	}
	if split.Global[0] || split.Global[1] || !split.Global[2] {
		t.Fatalf("Global mask = %v, want [false false true]", split.Global)
	}
	if got := split.SourceKeys["s"]; got != 0 {
		t.Fatalf("SourceKeys[s] = %d, want 0 (keyed window group field)", got)
	}
	if len(split.Exchanges) != 1 || split.Exchanges[0] != 0 {
		t.Fatalf("Exchanges = %v, want [0] (filter output crosses)", split.Exchanges)
	}
	if !split.PrefixSources["s"] || split.DirectSources["s"] {
		t.Fatalf("source routing prefix=%v direct=%v, want prefix only",
			split.PrefixSources["s"], split.DirectSources["s"])
	}
	if s := split.String(); !strings.Contains(s, "2 parallel") || !strings.Contains(s, "s→f0") {
		t.Fatalf("split.String() = %q", s)
	}
}

// TestStagedGlobalWindowMatchesSync is the acceptance scenario: a global
// (ungrouped) window over a sharded prefix, executed at N>1 shards, must be
// tuple-identical to the synchronous Engine — not just multiset-equal,
// because the exchange merges shard outputs back into timestamp order.
func TestStagedGlobalWindowMatchesSync(t *testing.T) {
	tuples := keyedTuples(1000, 7) // strictly increasing Ts

	eng, err := New(mixedPlan())
	if err != nil {
		t.Fatal(err)
	}
	want := runExecutor(t, eng, tuples, 64, "raw", "ksums", "gsums")

	st, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 4, Buf: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", st.NumShards())
	}
	got := runExecutor(t, st, tuples, 64, "raw", "ksums", "gsums")

	// Global-stage results: exact sequence equality.
	if !reflect.DeepEqual(got["gsums"], want["gsums"]) {
		t.Fatalf("global window results differ:\n got %v\nwant %v", got["gsums"], want["gsums"])
	}
	// Parallel-stage results: equality up to ordering, like Sharded.
	for _, q := range []string{"raw", "ksums"} {
		g, w := multiset(got[q]), multiset(want[q])
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("query %q multiset mismatch (%d vs %d tuples)", q, len(g), len(w))
		}
	}
}

// TestStagedStatsBothStages checks the acceptance criterion on metering:
// merged Stats carry the analyzed plan's node identities and show nonzero
// load on the parallel and the global stage.
func TestStagedStatsBothStages(t *testing.T) {
	tuples := keyedTuples(600, 5)
	const ticks = 100

	eng, _ := New(mixedPlan())
	runExecutor(t, eng, tuples, 50, "raw", "ksums", "gsums")
	eng.Advance(ticks)
	want := eng.Stats()

	st, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	runExecutor(t, st, tuples, 50, "raw", "ksums", "gsums")
	st.Advance(ticks)
	got := st.Stats()

	if len(got) != len(want) {
		t.Fatalf("stats length %d, want %d", len(got), len(want))
	}
	split := st.Split()
	for i, nl := range want {
		g := got[i]
		if g.ID != nl.ID || g.Name != nl.Name {
			t.Fatalf("stats[%d] identity %d/%s, want %d/%s", i, g.ID, g.Name, nl.ID, nl.Name)
		}
		if g.Tuples != nl.Tuples || g.OutTuples != nl.OutTuples {
			t.Errorf("stats[%d] %s: tuples %d/%d, want %d/%d", i, g.Name, g.Tuples, g.OutTuples, nl.Tuples, nl.OutTuples)
		}
		if diff := g.Load - nl.Load; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("stats[%d] %s: load %g, want %g", i, g.Name, g.Load, nl.Load)
		}
		if g.Load <= 0 {
			t.Errorf("stats[%d] %s (global=%v): zero load", i, g.Name, split.Global[i])
		}
		if !reflect.DeepEqual(g.Owners, nl.Owners) {
			t.Errorf("stats[%d] %s: owners %v, want %v", i, g.Name, g.Owners, nl.Owners)
		}
	}
}

// TestStagedFullyParallel: a plan with no global operators degenerates to
// pure sharding under Staged.
func TestStagedFullyParallel(t *testing.T) {
	tuples := keyedTuples(500, 6)
	eng, _ := New(shardablePlan())
	want := runExecutor(t, eng, tuples, 32, "raw", "sums")

	st, err := StartStaged(func() (*Plan, error) { return shardablePlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Split().FullyParallel() {
		t.Fatalf("split = %s, want fully parallel", st.Split())
	}
	got := runExecutor(t, st, tuples, 32, "raw", "sums")
	for _, q := range []string{"raw", "sums"} {
		if !reflect.DeepEqual(multiset(got[q]), multiset(want[q])) {
			t.Fatalf("query %q multiset mismatch", q)
		}
	}
}

// TestStagedFullyGlobal: a plan whose only operator is an ungrouped window
// directly on a source runs single-runtime under Staged; an unused source
// still accepts (and discards) pushes, like every other executor.
func TestStagedFullyGlobal(t *testing.T) {
	plan := func() *Plan {
		p := NewPlan()
		p.AddSource("s", testSchema)
		p.AddSource("idle", testSchema)
		w := p.AddUnary(stream.MustWindowAgg("gavg", 1, stream.WindowSpec{
			Size: 3, Agg: stream.AggAvg, Field: 1, GroupBy: -1,
		}), FromSource("s"))
		p.AddSink("avgs", w)
		return p
	}
	tuples := keyedTuples(200, 4)

	eng, _ := New(plan())
	want := runExecutor(t, eng, tuples, 16, "avgs")

	st, err := StartStaged(func() (*Plan, error) { return plan(), nil }, StagedConfig{ExecConfig: ExecConfig{Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards() != 0 {
		t.Fatalf("NumShards = %d, want 0 for a fully global plan", st.NumShards())
	}
	if err := st.PushBatch("idle", []stream.Tuple{tup(1, "a", 1)}); err != nil {
		t.Fatalf("push to unused source: %v", err)
	}
	got := runExecutor(t, st, tuples, 16, "avgs")
	if !reflect.DeepEqual(got["avgs"], want["avgs"]) {
		t.Fatalf("fully-global results differ:\n got %v\nwant %v", got["avgs"], want["avgs"])
	}
}

// nonZeroKeyPlan groups its window on field 1, so partitioning by field 0
// (the old silent default) would split groups across shards.
func nonZeroKeyPlan() *Plan {
	p := NewPlan()
	p.AddSource("s", testSchema)
	agg := p.AddUnary(stream.MustWindowAgg("byval", 1, stream.WindowSpec{
		Size: 2, Agg: stream.AggCount, GroupBy: 1,
	}), FromSource("s"))
	p.AddSink("counts", agg)
	return p
}

// TestStartShardedRejectsInferredNonZeroKey: the PartitionByField(0) default
// must fail loudly, not mis-partition, when the plan's inferred key is a
// different field — and keep working when a Partition is given explicitly.
func TestStartShardedRejectsInferredNonZeroKey(t *testing.T) {
	_, err := StartSharded(func() (*Plan, error) { return nonZeroKeyPlan(), nil }, ShardedConfig{ExecConfig: ExecConfig{Shards: 2}})
	if err == nil || !strings.Contains(err.Error(), "field 1") {
		t.Fatalf("err = %v, want inferred-key rejection naming field 1", err)
	}
	sh, err := StartSharded(func() (*Plan, error) { return nonZeroKeyPlan(), nil },
		ShardedConfig{ExecConfig: ExecConfig{Shards: 2}, Partition: PartitionByField(1)})
	if err != nil {
		t.Fatalf("explicit Partition rejected: %v", err)
	}
	sh.Stop()
}

// TestStartShardedRejectsGlobalPlan: plans needing a global stage are
// pointed at StartStaged instead of running wrong.
func TestStartShardedRejectsGlobalPlan(t *testing.T) {
	_, err := StartSharded(func() (*Plan, error) { return mixedPlan(), nil }, ShardedConfig{ExecConfig: ExecConfig{Shards: 2}})
	if err == nil || !strings.Contains(err.Error(), "StartStaged") {
		t.Fatalf("err = %v, want global-operator rejection pointing at StartStaged", err)
	}
}

// TestStagedInferredKeyPartition: Staged derives its PartitionFunc from the
// analyzed key (field 1 here), so results match sync without any explicit
// partition configuration — the mis-partitioning footgun closed end to end.
func TestStagedInferredKeyPartition(t *testing.T) {
	tuples := keyedTuples(400, 5)
	eng, _ := New(nonZeroKeyPlan())
	want := runExecutor(t, eng, tuples, 32, "counts")

	st, err := StartStaged(func() (*Plan, error) { return nonZeroKeyPlan(), nil }, StagedConfig{ExecConfig: ExecConfig{Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	got := runExecutor(t, st, tuples, 32, "counts")
	if !reflect.DeepEqual(multiset(got["counts"]), multiset(want["counts"])) {
		t.Fatalf("inferred-key sharding changed results (%d vs %d tuples)", len(got["counts"]), len(want["counts"]))
	}
}

// TestStagedKeyedJoinParallel: an equi-join keyed on both sides shards, and
// a global window downstream of it runs in the global stage fed by the
// exchange; total join emission must match the synchronous engine.
func TestStagedKeyedJoinParallel(t *testing.T) {
	plan := func() *Plan {
		p := NewPlan()
		p.AddSource("l", testSchema)
		p.AddSource("r", testSchema)
		j := p.AddBinary(stream.NewHashJoin("j", 1, 0, 0, 1<<20), FromSource("l"), FromSource("r"))
		p.AddSink("pairs", j)
		w := p.AddUnary(stream.MustWindowAgg("gcount", 1, stream.WindowSpec{
			Size: 8, Agg: stream.AggCount, GroupBy: -1,
		}), j)
		p.AddSink("counts", w)
		return p
	}
	split, err := plan().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if split.Global[0] || !split.Global[1] {
		t.Fatalf("Global mask = %v, want join parallel, window global", split.Global)
	}
	if split.SourceKeys["l"] != 0 || split.SourceKeys["r"] != 0 {
		t.Fatalf("SourceKeys = %v, want l,r keyed on field 0", split.SourceKeys)
	}

	push := func(ex Executor) map[string][]stream.Tuple {
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%d", i%5)
			if err := ex.PushBatch("l", []stream.Tuple{tup(int64(2*i), k, float64(i))}); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				if err := ex.PushBatch("r", []stream.Tuple{tup(int64(2*i+1), k, float64(-i))}); err != nil {
					t.Fatal(err)
				}
			}
		}
		ex.Stop()
		return map[string][]stream.Tuple{"pairs": ex.Results("pairs"), "counts": ex.Results("counts")}
	}

	eng, _ := New(plan())
	want := push(eng)
	st, err := StartStaged(func() (*Plan, error) { return plan(), nil }, StagedConfig{ExecConfig: ExecConfig{Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	got := push(st)

	if !reflect.DeepEqual(multiset(got["pairs"]), multiset(want["pairs"])) {
		t.Fatalf("join results mismatch (%d vs %d tuples)", len(got["pairs"]), len(want["pairs"]))
	}
	// The global count window's emissions depend only on the join's output
	// cardinality, which both backends agree on.
	sum := func(ts []stream.Tuple) (total float64) {
		for _, t := range ts {
			total += t.Float(1)
		}
		return
	}
	if sum(got["counts"]) != sum(want["counts"]) {
		t.Fatalf("global count total %g, want %g", sum(got["counts"]), sum(want["counts"]))
	}
}

// TestStagedSkewedPartitioning: a zipf-keyed source concentrates load on the
// shard owning the hot key; ShardStats must expose that imbalance while the
// merged Stats agree with their sum.
func TestStagedSkewedPartitioning(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 2.0, 1, 63)
	tuples := make([]stream.Tuple, 4000)
	for i := range tuples {
		tuples[i] = tup(int64(i), fmt.Sprintf("k%d", zipf.Uint64()), 1)
	}

	st, err := StartStaged(func() (*Plan, error) { return shardablePlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	runExecutor(t, st, tuples, 64, "raw", "sums")
	st.Advance(100)

	merged := st.Stats()
	shards := st.ShardStats()
	if len(shards) != 4 {
		t.Fatalf("ShardStats length %d, want 4", len(shards))
	}
	perShard := make([]float64, len(shards))
	var total float64
	sumByID := make(map[int]int64)
	for i, sl := range shards {
		if sl.Epoch != 0 || sl.Shard != i {
			t.Errorf("ShardStats[%d] identity epoch %d shard %d, want 0/%d", i, sl.Epoch, sl.Shard, i)
		}
		for _, nl := range sl.Loads {
			perShard[i] += nl.Load
			sumByID[nl.ID] += nl.Tuples
		}
		total += perShard[i]
	}
	for _, nl := range merged {
		if nl.Tuples != sumByID[nl.ID] {
			t.Errorf("node %d merged tuples %d != per-shard sum %d", nl.ID, nl.Tuples, sumByID[nl.ID])
		}
	}
	max, min := perShard[0], perShard[0]
	for _, l := range perShard[1:] {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	// The hot zipf key alone carries >half the stream, so whichever shard
	// hashes it dominates regardless of the process hash seed.
	if total == 0 || max/total < 1.5/float64(len(shards)) {
		t.Errorf("max shard share %.2f of total, want skew > %.2f (per-shard %v)",
			max/total, 1.5/float64(len(shards)), perShard)
	}
}

// TestAnalyzeNoStaleClaimFromGlobalJoin: a join that fails its second key
// claim goes global without committing its first — a half-recorded claim
// would force later keyed operators on that source into the global stage
// (or fail StartSharded's field-0 validation) for no reason.
func TestAnalyzeNoStaleClaimFromGlobalJoin(t *testing.T) {
	p := NewPlan()
	p.AddSource("a", testSchema)
	p.AddSource("b", testSchema)
	// Claims a→0.
	wa := p.AddUnary(stream.MustWindowAgg("wa", 1, stream.WindowSpec{
		Size: 2, Agg: stream.AggCount, GroupBy: 0,
	}), FromSource("a"))
	p.AddSink("qa", wa)
	// Left claim (b→1) would succeed, right claim (a→1) conflicts with
	// a→0: the join must go global and leave b unconstrained.
	j := p.AddBinary(stream.NewHashJoin("j", 1, 1, 1, 4), FromSource("b"), FromSource("a"))
	p.AddSink("qj", j)
	// With b unconstrained this window shards on b→0; a stale b→1 claim
	// would wrongly send it global.
	wb := p.AddUnary(stream.MustWindowAgg("wb", 1, stream.WindowSpec{
		Size: 2, Agg: stream.AggCount, GroupBy: 0,
	}), FromSource("b"))
	p.AddSink("qb", wb)

	split, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if split.Global[0] || !split.Global[1] || split.Global[2] {
		t.Fatalf("Global mask = %v, want only the join global", split.Global)
	}
	if split.SourceKeys["a"] != 0 || split.SourceKeys["b"] != 0 {
		t.Fatalf("SourceKeys = %v, want a→0 b→0 (no stale b→1 claim)", split.SourceKeys)
	}
}

// opaqueOp implements Transform but declares neither a partition key nor
// statelessness — the stage analysis must not shard it.
type opaqueOp struct{ seen int64 }

func (o *opaqueOp) Name() string  { return "opaque" }
func (o *opaqueOp) Cost() float64 { return 1 }
func (o *opaqueOp) Apply(t stream.Tuple) []stream.Tuple {
	o.seen++ // cross-tuple state: sharding this would split the count
	return []stream.Tuple{{Ts: t.Ts, Vals: []any{o.seen}}}
}
func (o *opaqueOp) Flush() []stream.Tuple                   { return nil }
func (o *opaqueOp) OutSchema(*stream.Schema) *stream.Schema { return nil }

// TestAnalyzeClosedDefaultForUndeclaredState: a transform that declares
// nothing about its state is pinned to the global stage (and rejected by
// StartSharded), instead of being silently assumed stateless.
func TestAnalyzeClosedDefaultForUndeclaredState(t *testing.T) {
	plan := func() *Plan {
		p := NewPlan()
		p.AddSource("s", testSchema)
		op := p.AddUnary(&opaqueOp{}, FromSource("s"))
		p.AddSink("q", op)
		return p
	}
	split, err := plan().Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !split.Global[0] {
		t.Fatal("undeclared-state transform classified shardable")
	}
	if _, err := StartSharded(func() (*Plan, error) { return plan(), nil }, ShardedConfig{ExecConfig: ExecConfig{Shards: 2}}); err == nil {
		t.Fatal("StartSharded accepted a plan with undeclared state")
	}
	// Staged runs it — globally, so the counter stays one sequence.
	st, err := StartStaged(func() (*Plan, error) { return plan(), nil }, StagedConfig{ExecConfig: ExecConfig{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	got := runExecutor(t, st, keyedTuples(100, 5), 16, "q")
	if len(got["q"]) != 100 {
		t.Fatalf("results = %d, want 100", len(got["q"]))
	}
	if last := got["q"][99].Vals[0].(int64); last != 100 {
		t.Fatalf("final counter = %d, want 100 (state split across shards?)", last)
	}
}

// TestShardedShardStats: the legacy Sharded executor exposes per-shard
// loads too, consistent with its merged Stats.
func TestShardedShardStats(t *testing.T) {
	sh, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil }, ShardedConfig{ExecConfig: ExecConfig{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	runExecutor(t, sh, keyedTuples(300, 5), 32, "raw", "sums")
	sh.Advance(50)
	per := sh.ShardStats()
	if len(per) != 2 {
		t.Fatalf("ShardStats length %d, want 2", len(per))
	}
	merged := sh.Stats()
	for i, nl := range merged {
		var tuples int64
		var load float64
		for _, sl := range per {
			tuples += sl.Loads[i].Tuples
			load += sl.Loads[i].Load
		}
		if tuples != nl.Tuples {
			t.Errorf("node %d: per-shard tuples %d != merged %d", i, tuples, nl.Tuples)
		}
		if diff := load - nl.Load; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("node %d: per-shard load sum %g != merged %g", i, load, nl.Load)
		}
	}
}

// quietShardTuples builds the canonical quiet-edge workload: every tuple
// carries one key, so one shard runs hot and the rest never emit on the
// exchange edge.
func quietShardTuples(n int) []stream.Tuple {
	tuples := make([]stream.Tuple, n)
	for i := range tuples {
		tuples[i] = tup(int64(i+1), "k0", float64(i%5)+1)
	}
	return tuples
}

// globalNodeID returns the ID of the (single) global-stage node of a split.
func globalNodeID(split *StageSplit) int {
	for id, g := range split.Global {
		if g {
			return id
		}
	}
	return -1
}

// globalTuplesEventually polls mid-run (no Stop) until the global-stage
// node has metered want tuples or the deadline passes, returning the last
// count. SettleStats alone can report a stable-but-stale snapshot while the
// merger goroutine is between releases; liveness is "bounded by the
// heartbeat cadence", not by any fixed number of scheduler yields.
func globalTuplesEventually(st *Staged, globalID int, want int64) int64 {
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := SettleStats(st)[globalID].Tuples
		if got >= want || time.Now().After(deadline) {
			return got
		}
		time.Sleep(time.Millisecond)
	}
}

// TestExchangeMergeReleasesQuietShardsMidRun is the flipped quiet-shard
// baseline (the pre-punctuation TestExchangeMergeHoldsForQuietShard pinned
// the opposite): with source heartbeats on (the default), the exchange
// merge must release the hot shard's tuples into the global stage MID-RUN —
// bounded by the heartbeat cadence, not by Stop — because every quiet
// shard's pipeline forwards the punctuation that proves it has advanced.
// The post-Stop half of the old baseline survives unchanged: the drained
// output is tuple-identical to the sync oracle.
func TestExchangeMergeReleasesQuietShardsMidRun(t *testing.T) {
	tuples := quietShardTuples(200)
	st, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 4, Buf: 8}})
	if err != nil {
		t.Fatal(err)
	}
	globalID := globalNodeID(st.Split())
	for i := 0; i < len(tuples); i += 20 {
		if err := st.PushBatch("s", tuples[i:i+20]); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-run: every pushed batch was followed by a heartbeat, so the last
	// one (at one below the final batch's maximum — the strongest promise a
	// nondecreasing source supports) licenses the merge to release the
	// whole stream except the frontier tuple, while three of four shards
	// stay permanently quiet.
	want := int64(len(tuples)) - 1
	if got := globalTuplesEventually(st, globalID, want); got != want {
		t.Fatalf("global stage metered %d tuples mid-run, want %d (quiet shards still hold the merge)", got, want)
	}
	midRun := st.Results("gsums")
	// 199 released tuples through a size-5 ungrouped window: 39 full
	// windows available before Stop (the 40th completes on the held
	// frontier tuple at Stop).
	if len(midRun) != 39 {
		t.Fatalf("global query emitted %d results mid-run, want 39", len(midRun))
	}

	eng, _ := New(mixedPlan())
	for _, tu := range tuples {
		if err := eng.Push("s", tu); err != nil {
			t.Fatal(err)
		}
	}
	eng.Stop()
	st.Stop()
	got := append(midRun, st.Results("gsums")...)
	if want := eng.Results("gsums"); !reflect.DeepEqual(got, want) {
		t.Fatalf("mid-run + post-Stop output differs from sync oracle:\n got %v\nwant %v", got, want)
	}
	if late := st.lateArrivals.Load(); late != 0 {
		t.Fatalf("%d exchange tuples arrived below an emitted punctuation", late)
	}
}

// TestExchangeMergeLegacyHoldsWithoutPunctuation is the companion baseline:
// a punctuation-free pipeline (heartbeats disabled) keeps the original
// hold-until-Stop semantics — the merge releases a tuple only once every
// shard shows its head or has closed, so the global stage idles mid-run —
// and still drains tuple-identically to the sync oracle at Stop.
func TestExchangeMergeLegacyHoldsWithoutPunctuation(t *testing.T) {
	tuples := quietShardTuples(200)
	st, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 4, Buf: 8}, Heartbeat: -1})
	if err != nil {
		t.Fatal(err)
	}
	globalID := globalNodeID(st.Split())
	for i := 0; i < len(tuples); i += 20 {
		if err := st.PushBatch("s", tuples[i:i+20]); err != nil {
			t.Fatal(err)
		}
	}
	loads := SettleStats(st)
	if loads[0].Tuples == 0 {
		t.Fatal("parallel ingress metered nothing mid-run")
	}
	if got := loads[globalID].Tuples; got != 0 {
		t.Fatalf("global stage processed %d tuples mid-run with heartbeats disabled; legacy drain semantics broken", got)
	}
	if got := len(st.Results("gsums")); got != 0 {
		t.Fatalf("global query emitted %d results mid-run under a held merge", got)
	}

	eng, _ := New(mixedPlan())
	for _, tu := range tuples {
		if err := eng.Push("s", tu); err != nil {
			t.Fatal(err)
		}
	}
	eng.Stop()
	st.Stop()
	if got, want := st.Results("gsums"), eng.Results("gsums"); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-Stop drain differs from sync oracle:\n got %v\nwant %v", got, want)
	}
}

// TestStagedDualStageSourceValidatesOnce: a source consumed by both stages
// is validated at the staged ingress exactly once — a nonconforming tuple
// counts one drop, not one per stage, and the conforming remainder reaches
// both stages.
func TestStagedDualStageSourceValidatesOnce(t *testing.T) {
	plan := func() *Plan {
		p := NewPlan()
		p.AddSource("s", testSchema)
		flt := p.AddUnary(stream.NewFilter("pos", 1, stream.FieldCmp(1, stream.Gt, 0)), FromSource("s"))
		p.AddSink("raw", flt)
		gw := p.AddUnary(stream.MustWindowAgg("gcount", 1, stream.WindowSpec{
			Size: 2, Agg: stream.AggCount, GroupBy: -1,
		}), FromSource("s"))
		p.AddSink("counts", gw)
		return p
	}
	st, err := StartStaged(func() (*Plan, error) { return plan(), nil }, StagedConfig{ExecConfig: ExecConfig{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	split := st.Split()
	if !split.PrefixSources["s"] || !split.DirectSources["s"] {
		t.Fatalf("source routing prefix=%v direct=%v, want both", split.PrefixSources["s"], split.DirectSources["s"])
	}
	batch := []stream.Tuple{
		tup(1, "a", 5),
		stream.NewTuple(2, int64(99), 1.0), // wrong kind in field 0
		tup(3, "b", 7),
		tup(4, "a", 2),
	}
	if err := st.PushBatch("s", batch); err == nil {
		t.Fatal("want schema error")
	}
	st.Stop()
	if got := st.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1 (per-stage double counting?)", got)
	}
	if got := len(st.Results("raw")); got != 3 {
		t.Fatalf("raw results = %d, want 3", got)
	}
	// 3 conforming tuples through a size-2 count window: one full window
	// plus a flushed partial.
	if got := len(st.Results("counts")); got != 2 {
		t.Fatalf("global window results = %d, want 2", got)
	}
}
