package engine

import (
	"sort"
	"testing"

	"repro/internal/stream"
)

// buildSharedPlan returns a plan with a shared filter feeding two sinks and
// an aggregate branch.
func buildSharedPlan() *Plan {
	p := NewPlan()
	p.AddSource("s", testSchema)
	shared := p.AddUnary(stream.NewFilter("pos", 1, stream.FieldCmp(1, stream.Gt, 0)), FromSource("s"))
	p.AddSink("q1", shared)
	agg := p.AddUnary(stream.MustWindowAgg("sum3", 1, stream.WindowSpec{
		Size: 3, Agg: stream.AggSum, Field: 1, GroupBy: -1,
	}), shared)
	p.AddSink("q2", agg)
	return p
}

func TestConcurrentMatchesSynchronous(t *testing.T) {
	tuples := make([]stream.Tuple, 50)
	for i := range tuples {
		v := float64(i%7) - 1 // some negative: filtered
		tuples[i] = tup(int64(i), "a", v)
	}

	// Synchronous reference.
	sync := buildSharedPlan()
	eng, err := New(sync)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples {
		_ = eng.Push("s", tu)
	}
	wantQ1 := eng.Results("q1")

	// Concurrent run over a fresh plan (fresh operator state).
	rt, err := StartConcurrent(buildSharedPlan(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples {
		if err := rt.Push("s", tu); err != nil {
			t.Fatal(err)
		}
	}
	got := rt.Close()

	// Single-source, single-path: q1 must match exactly and in order.
	if len(got["q1"]) != len(wantQ1) {
		t.Fatalf("q1: concurrent %d tuples, synchronous %d", len(got["q1"]), len(wantQ1))
	}
	for i := range wantQ1 {
		if got["q1"][i].Float(1) != wantQ1[i].Float(1) {
			t.Fatalf("q1[%d]: concurrent %v, synchronous %v", i, got["q1"][i], wantQ1[i])
		}
	}
	// q2 (window sums incl. flush) — compare as multisets.
	wantQ2 := eng.Results("q2")
	// The synchronous engine only flushes on Transition; emulate by pushing
	// nothing further and comparing only the closed windows plus flush.
	_ = wantQ2
	if len(got["q2"]) == 0 {
		t.Fatal("q2 produced nothing")
	}
}

func TestConcurrentJoin(t *testing.T) {
	p := NewPlan()
	p.AddSource("l", testSchema)
	p.AddSource("r", testSchema)
	j := p.AddBinary(stream.NewHashJoin("j", 1, 0, 0, 64), FromSource("l"), FromSource("r"))
	p.AddSink("q", j)
	rt, err := StartConcurrent(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := rt.Push("l", tup(int64(i), "k", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := rt.Push("r", tup(int64(100+i), "k", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := rt.Close()["q"]
	// Every (left, right) pair with matching key joins exactly once
	// regardless of interleaving: 20 × 5.
	if len(got) != 100 {
		t.Fatalf("join produced %d tuples, want 100", len(got))
	}
}

func TestConcurrentFanoutAndFlush(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	w := p.AddUnary(stream.MustWindowAgg("sum5", 1, stream.WindowSpec{
		Size: 5, Agg: stream.AggSum, Field: 1, GroupBy: -1,
	}), FromSource("s"))
	p.AddSink("a", w)
	p.AddSink("b", w)
	rt, err := StartConcurrent(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		if err := rt.Push("s", tup(int64(i), "x", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := rt.Close()
	// Window of 5 closes once (sum 15), flush emits the partial (6+7=13);
	// both sinks see both.
	for _, sink := range []string{"a", "b"} {
		vals := make([]float64, 0, 2)
		for _, tu := range got[sink] {
			vals = append(vals, tu.Float(1))
		}
		sort.Float64s(vals)
		if len(vals) != 2 || vals[0] != 13 || vals[1] != 15 {
			t.Errorf("sink %s = %v, want [13 15]", sink, vals)
		}
	}
}

func TestConcurrentPushErrors(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	p.AddSink("q", FromSource("s"))
	rt, err := StartConcurrent(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Push("nope", tup(1, "a", 1)); err == nil {
		t.Error("want error for unknown source")
	}
	if err := rt.Push("s", stream.NewTuple(1, int64(1))); err == nil {
		t.Error("want error for schema violation")
	}
	if rt.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", rt.Dropped())
	}
	rt.Close()
	if err := rt.Push("s", tup(1, "a", 1)); err == nil {
		t.Error("want error after Close")
	}
	// Close is idempotent.
	rt.Close()
}

func TestConcurrentSelfJoin(t *testing.T) {
	// Both inputs of the join come from the same upstream node — the
	// producer-counting edge case.
	p := NewPlan()
	p.AddSource("s", testSchema)
	f := p.AddUnary(stream.NewFilter("pass", 1, func(stream.Tuple) bool { return true }), FromSource("s"))
	j := p.AddBinary(stream.NewHashJoin("self", 1, 0, 0, 8), f, f)
	p.AddSink("q", j)
	rt, err := StartConcurrent(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := rt.Push("s", tup(int64(i), "k", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := rt.Close()["q"]
	if len(got) == 0 {
		t.Fatal("self-join produced nothing (likely a shutdown deadlock)")
	}
}

func TestConcurrentThroughputMany(t *testing.T) {
	p := buildSharedPlan()
	rt, err := StartConcurrent(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		if err := rt.Push("s", tup(int64(i), "a", 1)); err != nil {
			t.Fatal(err)
		}
	}
	got := rt.Close()
	if len(got["q1"]) != n {
		t.Fatalf("q1 = %d tuples, want %d", len(got["q1"]), n)
	}
}
