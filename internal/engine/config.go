package engine

import "runtime"

// ExecConfig is the knob set every executor constructor shares, embedded in
// RuntimeConfig, ShardedConfig and StagedConfig so the three stop drifting:
// one struct carries the shard width, edge buffering, shedding hook and
// fusion switch to whichever backend a deployment chooses. The zero value
// is usable everywhere — default width, default buffers, no shedding,
// fusion on.
type ExecConfig struct {
	// Shards is the shard width for the partitioned executors (Sharded's
	// copies, Staged's parallel stage); 0 means GOMAXPROCS, negative values
	// are rejected with an error. StartRuntime ignores it — a Runtime is
	// always a single pipeline.
	Shards int
	// Buf is the per-edge channel buffer in batches (not tuples); <= 0
	// means DefaultRuntimeBuf. It is the backpressure knob: deeper buffers
	// absorb longer bursts before producers block (or, with a Shedder
	// installed, before ingress overflow shedding begins).
	Buf int
	// Shedder, when non-nil, turns on load shedding at the true
	// source-ingress edges: the planned ratio of tuples is dropped before
	// the first operator and ingress sends become non-blocking, so sources
	// never stall. Each executor documents where its ingress edges are
	// (RuntimeConfig, ShardedConfig, StagedConfig).
	Shedder Shedder
	// DisableFusion turns off stateless-chain operator fusion, restoring
	// one goroutine and one channel hop per operator. Fusion changes
	// neither results nor per-node Stats (the equivalence harness sweeps it
	// on and off to prove exactly that); the switch exists for that sweep
	// and for A/B benchmarking.
	DisableFusion bool
	// Columnar enables struct-of-arrays execution on fused chains: a fused
	// prefix whose members all implement stream.ColumnarTransform (at the
	// schemas flowing into them) executes column-at-a-time on
	// stream.ColBatch batches instead of boxed tuple rows. Row↔column
	// conversion happens only at the chain boundaries, so results and
	// per-node Stats are identical either way (the equivalence harness
	// sweeps columnar × fusion to prove it). Columnar ingress
	// (PushOwnedColBatch) is accepted regardless of this switch — the
	// switch governs whether chains execute on columns.
	Columnar bool
	// StagingBudget, when > 0, turns on bounded staging (internal/staging):
	// the executor's staging lanes — the staged exchange merges' tails
	// behind a stalled shard, and the concurrent ingress's overflow for
	// loss-intolerant (shed ratio 0) queries — hold at most this many
	// resident bytes between them and spill to disk segments beyond it,
	// replaying in order when pressure subsides. The bound is the budget
	// plus bounded replay slack (up to one segment per draining lane). 0
	// keeps the legacy behavior: unbounded exchange buffers, and ingress
	// overflow shed even at ratio 0.
	StagingBudget int64
	// SpillDir is where staging spill segments live; the executor creates
	// (and removes on Stop) a private subdirectory. Empty means the OS temp
	// dir. Ignored unless StagingBudget > 0.
	SpillDir string
}

// bufOrDefault resolves the configured edge buffer, applying the shared
// default.
func (c ExecConfig) bufOrDefault() int {
	if c.Buf <= 0 {
		return DefaultRuntimeBuf
	}
	return c.Buf
}

// shardCount validates the configured shard width and resolves the default
// (clamped GOMAXPROCS), so the partitioned constructors share one rule.
func (c ExecConfig) shardCount() (int, error) {
	if err := checkShards(c.Shards); err != nil {
		return 0, err
	}
	if c.Shards == 0 {
		return clampShards(runtime.GOMAXPROCS(0)), nil
	}
	return c.Shards, nil
}
