package engine

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
)

// shardablePlan builds a partition-safe shared plan over the test schema:
// a stateless filter feeding (a) a sink directly and (b) a per-key windowed
// sum grouped on field 0 — every operator's state is keyed no finer than
// the partition key, so sharding on field 0 preserves results.
func shardablePlan() *Plan {
	p := NewPlan()
	p.AddSource("s", testSchema)
	flt := p.AddUnary(stream.NewFilter("pos", 1, stream.FieldCmp(1, stream.Gt, 0)), FromSource("s"))
	p.AddSink("raw", flt)
	agg := p.AddUnary(stream.MustWindowAgg("sum4", 2, stream.WindowSpec{
		Size: 4, Agg: stream.AggSum, Field: 1, GroupBy: 0,
	}), flt)
	p.AddSink("sums", agg)
	return p
}

// keyedTuples generates tuples cycling through k distinct string keys.
func keyedTuples(n, k int) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = tup(int64(i), fmt.Sprintf("k%d", i%k), float64(i%9)-1)
	}
	return out
}

// multiset renders tuples as sorted strings for order-insensitive compare.
func multiset(ts []stream.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		parts := make([]string, len(t.Vals))
		for j, v := range t.Vals {
			parts[j] = fmt.Sprintf("%v", v)
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// runExecutor pushes the tuples in batches, stops, and collects results for
// the given queries.
func runExecutor(t *testing.T, ex Executor, tuples []stream.Tuple, batch int, queries ...string) map[string][]stream.Tuple {
	t.Helper()
	for i := 0; i < len(tuples); i += batch {
		end := i + batch
		if end > len(tuples) {
			end = len(tuples)
		}
		if err := ex.PushBatch("s", tuples[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	ex.Stop()
	out := make(map[string][]stream.Tuple)
	for _, q := range queries {
		out[q] = ex.Results(q)
	}
	return out
}

// TestExecutorsAgree drives the same workload through all three executors
// and requires identical per-query results up to ordering.
func TestExecutorsAgree(t *testing.T) {
	tuples := keyedTuples(1000, 7)

	eng, err := New(shardablePlan())
	if err != nil {
		t.Fatal(err)
	}
	want := runExecutor(t, eng, tuples, 64, "raw", "sums")

	rt, err := StartConcurrent(shardablePlan(), 8)
	if err != nil {
		t.Fatal(err)
	}
	gotRT := runExecutor(t, rt, tuples, 64, "raw", "sums")

	sh, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil },
		ShardedConfig{ExecConfig: ExecConfig{Shards: 4, Buf: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if sh.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", sh.NumShards())
	}
	gotSH := runExecutor(t, sh, tuples, 64, "raw", "sums")

	for _, q := range []string{"raw", "sums"} {
		want := multiset(want[q])
		for name, got := range map[string][]stream.Tuple{"runtime": gotRT[q], "sharded": gotSH[q]} {
			gotM := multiset(got)
			if len(gotM) != len(want) {
				t.Fatalf("%s query %q: %d tuples, want %d", name, q, len(gotM), len(want))
			}
			for i := range want {
				if gotM[i] != want[i] {
					t.Fatalf("%s query %q: multiset mismatch at %d: %s vs %s", name, q, i, gotM[i], want[i])
				}
			}
		}
	}
}

// TestExecutorStatsAgree verifies that merged sharded stats and runtime
// stats meter exactly the same tuple counts and (tick-normalized) loads as
// the synchronous reference.
func TestExecutorStatsAgree(t *testing.T) {
	tuples := keyedTuples(600, 5)
	const ticks = 100

	eng, _ := New(shardablePlan())
	runExecutor(t, eng, tuples, 50, "raw", "sums")
	eng.Advance(ticks)
	want := eng.Stats()

	sh, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil },
		ShardedConfig{ExecConfig: ExecConfig{Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	runExecutor(t, sh, tuples, 50, "raw", "sums")
	sh.Advance(ticks)
	got := sh.Stats()

	if len(got) != len(want) {
		t.Fatalf("stats length %d, want %d", len(got), len(want))
	}
	for i, nl := range want {
		g := got[i]
		if g.ID != nl.ID || g.Name != nl.Name {
			t.Fatalf("stats[%d] identity %d/%s, want %d/%s", i, g.ID, g.Name, nl.ID, nl.Name)
		}
		if g.Tuples != nl.Tuples {
			t.Errorf("stats[%d] %s: tuples %d, want %d", i, g.Name, g.Tuples, nl.Tuples)
		}
		// Flush emissions count toward OutTuples on every backend, and a
		// keyed plan opens the same window groups whichever shard holds
		// them — so selectivity inputs agree exactly.
		if g.OutTuples != nl.OutTuples {
			t.Errorf("stats[%d] %s: out tuples %d, want %d", i, g.Name, g.OutTuples, nl.OutTuples)
		}
		if diff := g.Load - nl.Load; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("stats[%d] %s: load %g, want %g", i, g.Name, g.Load, nl.Load)
		}
	}
}

func TestRuntimePushBatchRejectsNonConforming(t *testing.T) {
	rt, err := StartConcurrent(shardablePlan(), 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := []stream.Tuple{
		tup(1, "a", 5),
		stream.NewTuple(2, int64(99), 1.0), // wrong kind in field 0
		tup(3, "b", 7),
	}
	if err := rt.PushBatch("s", batch); err == nil {
		t.Fatal("want schema error")
	}
	rt.Stop()
	if got := len(rt.Results("raw")); got != 2 {
		t.Fatalf("conforming remainder: %d tuples, want 2", got)
	}
	if rt.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", rt.Dropped())
	}
	if err := rt.PushBatch("s", batch[:1]); err == nil {
		t.Fatal("want error pushing after Stop")
	}
}

// TestPushBatchCallerReusesSlice: the Executor contract says the caller
// keeps ownership of the batch slice — a pusher that refills the same
// backing array between calls must not corrupt in-flight batches.
func TestPushBatchCallerReusesSlice(t *testing.T) {
	for name, start := range map[string]func() (Executor, error){
		"runtime": func() (Executor, error) { return StartConcurrent(shardablePlan(), 4) },
		"sharded": func() (Executor, error) {
			return StartSharded(func() (*Plan, error) { return shardablePlan(), nil }, ShardedConfig{ExecConfig: ExecConfig{Shards: 2}})
		},
	} {
		t.Run(name, func(t *testing.T) {
			ex, err := start()
			if err != nil {
				t.Fatal(err)
			}
			const rounds, width = 200, 16
			buf := make([]stream.Tuple, 0, width)
			pushed := 0
			for r := 0; r < rounds; r++ {
				buf = buf[:0]
				for i := 0; i < width; i++ {
					// Positive values only: every tuple passes the filter.
					buf = append(buf, tup(int64(pushed), fmt.Sprintf("k%d", i%5), 1))
					pushed++
				}
				if err := ex.PushBatch("s", buf); err != nil {
					t.Fatal(err)
				}
			}
			ex.Stop()
			if got := len(ex.Results("raw")); got != pushed {
				t.Fatalf("raw results = %d, want %d (in-flight batch corrupted by slice reuse)", got, pushed)
			}
		})
	}
}

func TestShardedUnknownSource(t *testing.T) {
	sh, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil },
		ShardedConfig{ExecConfig: ExecConfig{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()
	if err := sh.PushBatch("nope", []stream.Tuple{tup(1, "a", 1)}); err == nil {
		t.Fatal("want unknown-source error")
	}
	if sh.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", sh.Dropped())
	}
}

// TestEngineStopFlushes: Stop drains open window state into the sinks, so
// the executor interface delivers complete results on every backend.
func TestEngineStopFlushes(t *testing.T) {
	eng, err := New(shardablePlan())
	if err != nil {
		t.Fatal(err)
	}
	// 3 tuples of one key: window size 4 stays open until flushed.
	for i := 0; i < 3; i++ {
		if err := eng.Push("s", tup(int64(i), "a", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(eng.Results("sums")); got != 0 {
		t.Fatalf("open window emitted %d tuples before Stop", got)
	}
	eng.Stop()
	if got := len(eng.Results("sums")); got != 1 {
		t.Fatalf("flushed window results = %d, want 1", got)
	}
	if err := eng.Push("s", tup(9, "a", 1)); err == nil {
		t.Fatal("want error pushing into a stopped engine")
	}
}

// TestStopDuringPush: Stop called while a producer is mid-push must not
// panic (send on closed channel); the producer sees errStopped instead.
func TestStopDuringPush(t *testing.T) {
	for name, start := range map[string]func() (Executor, error){
		"runtime": func() (Executor, error) { return StartConcurrent(shardablePlan(), 1) },
		"sharded": func() (Executor, error) {
			return StartSharded(func() (*Plan, error) { return shardablePlan(), nil }, ShardedConfig{ExecConfig: ExecConfig{Shards: 2, Buf: 1}})
		},
	} {
		t.Run(name, func(t *testing.T) {
			ex, err := start()
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					if err := ex.PushBatch("s", []stream.Tuple{tup(int64(i), "a", 1)}); err != nil {
						if err != errStopped {
							t.Errorf("push error = %v, want errStopped", err)
						}
						return
					}
				}
			}()
			ex.Stop()
			ex.Stop() // idempotent, still waits for the drain
			wg.Wait()
		})
	}
}

func TestEngineHeldCap(t *testing.T) {
	eng, err := New(shardablePlan())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetHeldCap(2)
	eng.Hold()
	if err := eng.Push("s", tup(1, "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Push("s", tup(2, "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Push("s", tup(3, "a", 1)); err == nil {
		t.Fatal("want overflow error at held cap")
	}
	if eng.HeldDropped() != 1 {
		t.Fatalf("HeldDropped = %d, want 1", eng.HeldDropped())
	}
	// The two held tuples replay through the transition; the dropped third
	// is gone.
	if err := eng.Transition(shardablePlan()); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Results("raw")); got != 2 {
		t.Fatalf("replayed results = %d, want 2", got)
	}
}

// TestShardedThroughputScales guards the sharded executor's reason to
// exist: ≥ 2x the single Runtime's throughput with ≥ 4 cores available.
func TestShardedThroughputScales(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥ 4 cores for the scaling guarantee, have %d", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("throughput measurement is slow")
	}
	const n = 400_000
	tuples := keyedTuples(n, 64)

	measure := func(ex Executor) float64 {
		start := time.Now()
		for i := 0; i < len(tuples); i += 256 {
			end := i + 256
			if end > len(tuples) {
				end = len(tuples)
			}
			if err := ex.PushBatch("s", tuples[i:end]); err != nil {
				t.Fatal(err)
			}
			if i%65536 == 0 {
				ex.Results("raw")
				ex.Results("sums")
			}
		}
		ex.Stop()
		ex.Results("raw")
		ex.Results("sums")
		return float64(n) / time.Since(start).Seconds()
	}

	rt, err := StartConcurrent(shardablePlan(), 64)
	if err != nil {
		t.Fatal(err)
	}
	single := measure(rt)

	sh, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil }, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sharded := measure(sh)

	t.Logf("runtime %.0f tuples/s, sharded×%d %.0f tuples/s (%.2fx)",
		single, sh.NumShards(), sharded, sharded/single)
	if sharded < 2*single {
		t.Errorf("sharded %.0f tuples/s < 2x runtime %.0f tuples/s", sharded, single)
	}
}
