package engine

import (
	"testing"

	"repro/internal/stream"
)

// These tests pin the rejection-ownership contract on OwnedBatchPusher /
// OwnedColBatchPusher: an error rejects the batch whole — nothing applied,
// nothing counted as dropped — and ownership stays with the caller, whose
// single PutBatch afterwards must be the buffer's only recycle (the race
// build's pool guard panics on a double put, so running these under -race
// also proves no executor recycled a rejected batch behind the caller).

// ownedPushers builds one of each concurrent executor over the same simple
// shardable plan.
func ownedPushers(t *testing.T) map[string]Executor {
	t.Helper()
	rt, err := StartConcurrent(shardablePlan(), 8)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil },
		ShardedConfig{ExecConfig: ExecConfig{Shards: 2, Buf: 8}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 2, Buf: 8}})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Executor{"runtime": rt, "sharded": sh, "staged": st}
}

type droppedCounter interface{ Dropped() int }

// TestOwnedPushSchemaRejectionIsWhole pushes an owned batch with one
// nonconforming tuple: every executor must reject the whole batch — no
// prefix applied, no drops counted — and hand ownership back, so the caller
// can recycle the lease exactly once.
func TestOwnedPushSchemaRejectionIsWhole(t *testing.T) {
	for name, ex := range ownedPushers(t) {
		t.Run(name, func(t *testing.T) {
			pusher := ex.(OwnedBatchPusher)
			batch := GetBatch(3)
			batch = append(batch,
				tup(1, "a", 1),
				stream.NewTuple(2, "bad", "not-a-float"), // violates field 1 kind
				tup(3, "b", 2),
			)
			if err := pusher.PushOwnedBatch("s", batch); err == nil {
				t.Fatal("nonconforming owned batch must be rejected")
			}
			// Rejected whole: the batch is still ours — recycle it once.
			PutBatch(batch)
			if got := ex.(droppedCounter).Dropped(); got != 0 {
				t.Fatalf("whole-rejection counted %d dropped tuples; a rejected batch is not dropped", got)
			}
			ex.Stop()
			for _, q := range []string{"raw"} {
				if res := ex.Results(q); len(res) != 0 {
					t.Fatalf("rejected batch leaked %d tuples into %q: %v", len(res), q, res)
				}
			}
		})
	}
}

// TestOwnedPushRejectedBatchIsReusable rejects a batch on an unknown source,
// then pushes the very same slice to the real source: with ownership
// returned on rejection, the retry is legal and must deliver every tuple.
func TestOwnedPushRejectedBatchIsReusable(t *testing.T) {
	for name, ex := range ownedPushers(t) {
		t.Run(name, func(t *testing.T) {
			pusher := ex.(OwnedBatchPusher)
			batch := GetBatch(2)
			batch = append(batch, tup(1, "a", 1), tup(2, "b", 2))
			if err := pusher.PushOwnedBatch("nosuch", batch); err == nil {
				t.Fatal("unknown source must reject")
			}
			if got := ex.(droppedCounter).Dropped(); got != 0 {
				t.Fatalf("unknown-source rejection counted %d dropped tuples", got)
			}
			if err := pusher.PushOwnedBatch("s", batch); err != nil {
				t.Fatalf("retry of the rejected batch: %v", err)
			}
			ex.Stop()
			if res := ex.Results("raw"); len(res) != 2 {
				t.Fatalf("retried batch delivered %d tuples to raw, want 2", len(res))
			}
		})
	}
}

// TestOwnedPushStoppedExecutorKeepsOwnership pushes after Stop: errStopped
// must come back with the batch still owned by the caller, whose recycle is
// then the only put (double-put would panic under -race against executors
// that recycle on the stopped path).
func TestOwnedPushStoppedExecutorKeepsOwnership(t *testing.T) {
	for name, ex := range ownedPushers(t) {
		t.Run(name, func(t *testing.T) {
			ex.Stop()
			pusher := ex.(OwnedBatchPusher)
			batch := GetBatch(1)
			batch = append(batch, tup(1, "a", 1))
			if err := pusher.PushOwnedBatch("s", batch); err == nil {
				t.Fatal("push after Stop must fail")
			}
			// Still ours: writable and recyclable exactly once.
			batch[0] = tup(9, "z", 9)
			PutBatch(batch)
		})
	}
}

// TestOwnedColPushRejectionKeepsOwnership is the columnar twin: a layout
// mismatch (and a stopped executor) must reject the ColBatch whole with
// ownership retained by the caller.
func TestOwnedColPushRejectionKeepsOwnership(t *testing.T) {
	badSchema := stream.MustSchema(
		stream.Field{Name: "x", Kind: stream.KindInt},
	)
	for name, ex := range ownedPushers(t) {
		t.Run(name, func(t *testing.T) {
			pusher := ex.(OwnedColBatchPusher)
			cb := GetColBatch(badSchema, 1)
			cb.AppendTuple(stream.NewTuple(1, int64(5)))
			if err := pusher.PushOwnedColBatch("s", cb); err == nil {
				t.Fatal("layout mismatch must reject")
			}
			if got := ex.(droppedCounter).Dropped(); got != 0 {
				t.Fatalf("layout rejection counted %d dropped tuples", got)
			}
			PutColBatch(cb)

			ex.Stop()
			cb2 := GetColBatch(testSchema, 1)
			cb2.AppendTuple(tup(1, "a", 1))
			if err := pusher.PushOwnedColBatch("s", cb2); err == nil {
				t.Fatal("columnar push after Stop must fail")
			}
			PutColBatch(cb2)
		})
	}
}

// TestStagedPushBatchSalvagesConformingTuples guards the other side of the
// contract split: the non-owned PushBatch keeps its push-what-conforms
// semantics — one bad tuple is dropped and counted, the rest of the batch
// still flows.
func TestStagedPushBatchSalvagesConformingTuples(t *testing.T) {
	for name, ex := range ownedPushers(t) {
		t.Run(name, func(t *testing.T) {
			batch := []stream.Tuple{
				tup(1, "a", 1),
				stream.NewTuple(2, "bad", "not-a-float"),
				tup(3, "b", 2),
			}
			if err := ex.PushBatch("s", batch); err == nil {
				t.Fatal("nonconforming tuple must surface an error")
			}
			ex.Stop()
			if res := ex.Results("raw"); len(res) != 2 {
				t.Fatalf("PushBatch delivered %d tuples to raw, want the 2 conforming ones: %v", len(res), res)
			}
			if got := ex.(droppedCounter).Dropped(); got != 1 {
				t.Fatalf("PushBatch counted %d dropped, want 1", got)
			}
		})
	}
}
