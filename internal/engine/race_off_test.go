//go:build !race

package engine

// raceEnabled reports whether the race detector instruments this build;
// allocation-count tests skip themselves under it.
const raceEnabled = false
