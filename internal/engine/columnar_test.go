package engine

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/stream"
)

// colSchema is the int/float schema the columnar hot-path tests and
// benchmarks run on: no string column, so the whole batch is two typed
// numeric slices plus timestamps.
var colSchema = stream.MustSchema(
	stream.Field{Name: "a", Kind: stream.KindInt},
	stream.Field{Name: "b", Kind: stream.KindFloat},
)

// colDeepPlan builds the 4-deep structured stateless prefix
// (filter→map→filter→map into one sink) out of the columnar-executable
// operator forms: CmpFilter specs refine a selection vector, AddMaps rewrite
// the float column in place. Predicates pass every generated tuple, so the
// numbers isolate pure per-row execution cost — boxed Vals traversal on the
// row path versus contiguous typed columns on the columnar path.
func colDeepPlan() *Plan {
	p := NewPlan()
	p.AddSource("s", colSchema)
	cur := p.AddUnary(stream.NewCmpFilter("f0", 1, stream.CmpSpec{Field: 1, Op: stream.Gt, Num: 0}), FromSource("s"))
	cur = p.AddUnary(stream.NewAddMap("m0", 1, 1, 1), cur)
	cur = p.AddUnary(stream.NewCmpFilter("f1", 1, stream.CmpSpec{Field: 1, Op: stream.Lt, Num: 1e9}), cur)
	cur = p.AddUnary(stream.NewAddMap("m1", 1, 1, 1), cur)
	p.AddSink("q", cur)
	return p
}

// colRowTemplate pre-builds one row-layout batch conforming to colSchema.
func colRowTemplate(n int) []stream.Tuple {
	template := make([]stream.Tuple, n)
	for i := range template {
		template[i] = stream.NewTuple(int64(i+1), int64(i%5), float64(i%7)+1)
	}
	return template
}

// colColTemplate is colRowTemplate in columnar layout.
func colColTemplate(n int) *stream.ColBatch {
	cb := stream.NewColBatch(colSchema, n)
	for _, t := range colRowTemplate(n) {
		cb.AppendTuple(t)
	}
	return cb
}

// TestRuntimeColumnarIngressMatchesRows pushes one workload twice through
// the same plan — boxed rows on one Runtime, struct-of-arrays batches on
// another — and requires identical sink results and identical per-node
// counters. Punctuation rides along: the row arm appends an in-band marker
// where the columnar arm folds the same promise into the batch watermark,
// pinning the out-of-band carry and its boundary re-emission to the in-band
// semantics.
func TestRuntimeColumnarIngressMatchesRows(t *testing.T) {
	run := func(columnar bool) (map[string][]string, [][2]int64) {
		rt, err := StartRuntime(colDeepPlan(), RuntimeConfig{ExecConfig: ExecConfig{Buf: 8, Columnar: columnar}})
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 10; batch++ {
			base := int64(batch * 16)
			if columnar {
				cb := GetColBatch(colSchema, 16)
				for i := 0; i < 16; i++ {
					cb.AppendTuple(stream.NewTuple(base+int64(i)+1, int64(i%3), float64(i%7)+1))
				}
				cb.SetWatermark(base + 16)
				if err := rt.PushOwnedColBatch("s", cb); err != nil {
					t.Fatal(err)
				}
			} else {
				buf := GetBatch(17)
				for i := 0; i < 16; i++ {
					buf = append(buf, stream.NewTuple(base+int64(i)+1, int64(i%3), float64(i%7)+1))
				}
				buf = append(buf, stream.NewPunctuation(base+16))
				if err := rt.PushOwnedBatch("s", buf); err != nil {
					t.Fatal(err)
				}
			}
		}
		rt.Stop()
		out := map[string][]string{"q": canonTs(rt.Results("q"))}
		rt.Advance(1)
		return out, countStats(rt.Stats())
	}
	wantOut, wantCounts := run(false)
	gotOut, gotCounts := run(true)
	if !reflect.DeepEqual(gotOut, wantOut) {
		t.Errorf("columnar ingress diverges from row ingress\n got %v\nwant %v", gotOut, wantOut)
	}
	if !reflect.DeepEqual(gotCounts, wantCounts) {
		t.Errorf("columnar per-node counters diverge\n got %v\nwant %v", gotCounts, wantCounts)
	}
	if len(wantOut["q"]) == 0 {
		t.Fatal("workload produced no results; the comparison is vacuous")
	}
}

// TestColumnarSteadyStateZeroAllocs pins the columnar hot path's allocation
// contract, the column twin of TestFusedSteadyStateZeroAllocs: a batch
// leased from the layout-classed pool, bulk-filled, pushed owned, run
// through the fused columnar chain (selection-vector filters, in-place adds)
// and recycled at the columnar sink tap completes the cycle without a single
// heap allocation — and in particular without boxing one value.
func TestColumnarSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under the race detector")
	}
	var delivered atomic.Int64
	rt, err := StartRuntime(colDeepPlan(), RuntimeConfig{
		ExecConfig: ExecConfig{Buf: 4, Columnar: true},
		ColTaps: map[string]func(*stream.ColBatch){"q": func(cb *stream.ColBatch) {
			n := int64(cb.Len())
			PutColBatch(cb) // recycle before signaling, so the pusher's next lease hits the pool
			delivered.Add(n)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	template := colColTemplate(benchBatch)
	push := func() {
		want := delivered.Load() + int64(template.Len())
		buf := GetColBatch(colSchema, template.Len())
		buf.AppendCols(template)
		if err := rt.PushOwnedColBatch("s", buf); err != nil {
			t.Fatal(err)
		}
		for delivered.Load() < want {
			runtime.Gosched()
		}
	}
	// Warm the cycle: the first trips allocate the circulating batch, its
	// selection-vector scratch and any lazily-grown runtime internals.
	for i := 0; i < 8; i++ {
		push()
	}
	if avg := testing.AllocsPerRun(200, push); avg != 0 {
		t.Errorf("columnar steady state allocates %.2f times per %d-row owned batch, want 0", avg, template.Len())
	}
	rt.Stop()
}
