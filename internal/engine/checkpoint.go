package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/staging"
	"repro/internal/stream"
)

// Operator-state checkpoints: a periodic snapshot of the parallel stage's
// open keyed state (window buffers, join windows — everything a reshard
// already knows how to move via stream.KeyedStateMover), written to disk in
// the staging segment frame format and restorable into a fresh executor via
// StagedConfig.Restore. A killed or restarted deployment resumes mid-window
// instead of losing the open period.
//
// A checkpoint is a reshard to the SAME width whose moved state additionally
// lands on disk: the current shard epoch quiesces at a period boundary (the
// exchange merges drain into the still-running global stage), every key's
// open state is exported, recorded, and re-imported into a fresh epoch under
// the unchanged partition map. Consistency is exactly the reshard boundary's:
// tuples pushed before Checkpoint are fully owned by the snapshot, tuples
// pushed after by the resumed epoch. The global stage's state is not part of
// the snapshot — it is not keyed, and the restore path rebuilds it empty.

// checkpointFile is the segment file a checkpoint writes inside its
// directory; writes go to a temp file first and rename into place, so a
// crash mid-checkpoint leaves the previous snapshot intact.
const checkpointFile = "state.ckpt"

// StateRec is one exported keyed-state entry: the prefix-plan node position
// it belongs to (structurally identical across epochs and executor restarts,
// since both carve from the same factory), the partition key, and the
// operator's exported state. Encoded one gob frame per record. Exported so
// the cluster transport can carry checkpoint/resume state between a
// coordinator and its workers; the key and state types must be gob-encodable
// (the built-in scalar kinds and the windowed operators' movers are
// registered in internal/stream).
type StateRec struct {
	Node  int
	Key   any
	State any
}

// Checkpoint snapshots the parallel stage's keyed operator state into dir
// and resumes on a fresh shard epoch, global stage untouched. On a fully
// global plan it writes an empty (valid, restorable) checkpoint. The write
// error, if any, is returned after the executor has already resumed — a
// failed snapshot never takes the pipeline down.
func (s *Staged) Checkpoint(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped.Load() {
		return errStopped
	}
	if len(s.shards) == 0 {
		return writeCheckpoint(dir, nil)
	}
	if err := reshardable(s.prefixPlans[0]); err != nil {
		return err
	}
	// Carve the next epoch before touching the running one, like Reshard: a
	// factory failure must leave the executor fully operational.
	plans, exchanges, err := s.carveEpoch(len(s.shards))
	if err != nil {
		return err
	}
	s.retireEpoch()
	recs := exportStateRecs(s.prefixPlans)
	werr := writeCheckpoint(dir, recs)
	// Import regardless of the write outcome: the executor resumes with its
	// state either way.
	importStateRecs(plans, recs, stateDest(s.pmap))
	shards, err := startShardRuntimes(plans, exchanges, s.shardRuntimeConfig(), s.taps)
	if err != nil {
		// Mid-swap failure: the old epoch is gone. Fail loudly, like Reshard.
		s.stopped.Store(true)
		return fmt.Errorf("engine: checkpoint resume: %w", err)
	}
	s.shards, s.prefixPlans, s.exchanges = shards, plans, exchanges
	s.startMergers()
	s.epoch++
	return werr
}

// restoreCheckpoint reads dir's snapshot and imports it into the carved
// prefix plans of a starting executor, routed by the current partition map —
// the restored width may differ from the checkpointed one, exactly as a
// reshard's state movement allows. Called by StartStaged before the shard
// runtimes start. A checkpoint from a structurally different plan is
// rejected rather than half-imported.
func (s *Staged) restoreCheckpoint(dir string, plans []*Plan) (err error) {
	recs, rerr := readCheckpoint(dir)
	if rerr != nil {
		return fmt.Errorf("engine: restore checkpoint %q: %w", dir, rerr)
	}
	if len(plans) == 0 || len(recs) == 0 {
		return nil
	}
	for _, rec := range recs {
		if rec.Node < 0 || rec.Node >= len(plans[0].nodes) {
			return fmt.Errorf("engine: restore checkpoint %q: node %d out of range (plan has %d prefix nodes)", dir, rec.Node, len(plans[0].nodes))
		}
	}
	// An operator importing state of the wrong concrete type panics inside
	// its ImportKeyedState assertion; surface that as a plan-mismatch error
	// instead of crashing the starting executor.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: restore checkpoint %q: state does not match the plan: %v", dir, r)
		}
	}()
	importStateRecs(plans, recs, stateDest(s.pmap))
	return nil
}

// exportStateRecs drains every KeyedStateMover node's per-key state out of
// the quiesced epoch's plans, ordered by (node, rendered key) so the
// checkpoint bytes and the import-side first-seen order are deterministic.
func exportStateRecs(plans []*Plan) []StateRec {
	if len(plans) == 0 {
		return nil
	}
	var recs []StateRec
	for j := range plans[0].nodes {
		for _, p := range plans {
			mover, ok := transformOf(p.nodes[j]).(stream.KeyedStateMover)
			if !ok {
				continue
			}
			for key, st := range mover.ExportKeyedState() {
				recs = append(recs, StateRec{Node: j, Key: key, State: st})
			}
		}
	}
	sort.SliceStable(recs, func(a, b int) bool {
		if recs[a].Node != recs[b].Node {
			return recs[a].Node < recs[b].Node
		}
		return fmt.Sprint(recs[a].Key) < fmt.Sprint(recs[b].Key)
	})
	return recs
}

// importStateRecs routes each record's key through dest and imports the
// state into that shard's plan, the same placement moveKeyedState uses.
func importStateRecs(plans []*Plan, recs []StateRec, dest func(key any) int) {
	for _, rec := range recs {
		mover, ok := transformOf(plans[dest(rec.Key)].nodes[rec.Node]).(stream.KeyedStateMover)
		if !ok {
			continue
		}
		mover.ImportKeyedState(rec.Key, rec.State)
	}
}

// writeCheckpoint writes the records to dir/state.ckpt atomically: segment
// frames into a temp file, flushed by Close, renamed into place.
func writeCheckpoint(dir string, recs []StateRec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, "."+checkpointFile+".tmp")
	sw, err := staging.CreateSegment(tmp)
	if err != nil {
		return err
	}
	abort := func(e error) error {
		sw.Close()
		os.Remove(tmp)
		return e
	}
	for _, rec := range recs {
		var b bytes.Buffer
		if err := gob.NewEncoder(&b).Encode(&rec); err != nil {
			return abort(fmt.Errorf("engine: checkpoint encode: %w", err))
		}
		if err := sw.Frame(b.Bytes()); err != nil {
			return abort(err)
		}
	}
	if err := sw.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, checkpointFile))
}

// readCheckpoint decodes dir/state.ckpt back into records.
func readCheckpoint(dir string) ([]StateRec, error) {
	var recs []StateRec
	err := staging.ReadSegment(filepath.Join(dir, checkpointFile), func(p []byte) error {
		var rec StateRec
		if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&rec); err != nil {
			return fmt.Errorf("engine: checkpoint decode: %w", err)
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return recs, nil
}
