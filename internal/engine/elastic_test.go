package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/stream"
	"repro/internal/zipf"
)

// canonTs renders tuples as sorted "ts|vals" strings: the canonical ordering
// the elastic and equivalence tests compare under. Unlike multiset it keeps
// the timestamp, so two tuples with equal values but different timestamps do
// not collapse.
func canonTs(ts []stream.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		parts := make([]string, 0, len(t.Vals)+1)
		parts = append(parts, fmt.Sprintf("%d", t.Ts))
		for _, v := range t.Vals {
			parts = append(parts, fmt.Sprintf("%v", v))
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// pushHalves drives tuples through ex in two halves with a Reshard between
// them, then stops and collects the queries' results.
func pushHalves(t *testing.T, ex Resharder, tuples []stream.Tuple, batch, reshardTo int, queries ...string) map[string][]stream.Tuple {
	t.Helper()
	half := len(tuples) / 2
	push := func(ts []stream.Tuple) {
		for i := 0; i < len(ts); i += batch {
			end := i + batch
			if end > len(ts) {
				end = len(ts)
			}
			if err := ex.PushBatch("s", ts[i:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	push(tuples[:half])
	if err := ex.Reshard(reshardTo); err != nil {
		t.Fatalf("Reshard(%d): %v", reshardTo, err)
	}
	if got := ex.NumShards(); got != reshardTo {
		t.Fatalf("NumShards after reshard = %d, want %d", got, reshardTo)
	}
	push(tuples[half:])
	ex.Stop()
	out := make(map[string][]stream.Tuple)
	for _, q := range queries {
		out[q] = ex.Results(q)
	}
	return out
}

// TestShardedReshardPreservesKeyedState is the core elastic contract on the
// pure-sharded executor: a mid-run grow (and, separately, shrink) moves the
// open per-key window state to the keys' new owner shards, so results stay
// tuple-identical to the synchronous Engine — no lost partial windows, no
// duplicated emissions across the boundary.
func TestShardedReshardPreservesKeyedState(t *testing.T) {
	// Window size 4 over keys cycling mod 7: at the half-way reshard nearly
	// every group holds a partial window that must survive the move.
	tuples := keyedTuples(1001, 7)
	for name, target := range map[string]int{"grow2to5": 5, "shrink3to1": 1} {
		t.Run(name, func(t *testing.T) {
			eng, err := New(shardablePlan())
			if err != nil {
				t.Fatal(err)
			}
			want := runExecutor(t, eng, tuples, 64, "raw", "sums")

			initial := 2
			if target < 2 {
				initial = 3
			}
			sh, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil },
				ShardedConfig{ExecConfig: ExecConfig{Shards: initial, Buf: 8}})
			if err != nil {
				t.Fatal(err)
			}
			got := pushHalves(t, sh, tuples, 37, target, "raw", "sums")
			if sh.Epoch() != 1 {
				t.Fatalf("Epoch = %d, want 1", sh.Epoch())
			}
			for _, q := range []string{"raw", "sums"} {
				if !reflect.DeepEqual(canonTs(got[q]), canonTs(want[q])) {
					t.Fatalf("query %q differs from sync oracle across reshard (%d vs %d tuples)",
						q, len(got[q]), len(want[q]))
				}
			}
		})
	}
}

// TestStagedReshardPreservesState covers the staged executor: keyed window
// state moves across the boundary, the retiring epoch's exchange buffers
// drain into the (surviving) global stage before the new epoch's mergers
// start, and the global window's output stays exactly the synchronous
// Engine's sequence.
func TestStagedReshardPreservesState(t *testing.T) {
	tuples := keyedTuples(1000, 7)
	for name, target := range map[string]int{"grow2to4": 4, "shrink4to2": 2} {
		t.Run(name, func(t *testing.T) {
			eng, err := New(mixedPlan())
			if err != nil {
				t.Fatal(err)
			}
			want := runExecutor(t, eng, tuples, 64, "raw", "ksums", "gsums")

			initial := 2
			if target <= 2 {
				initial = 4
			}
			st, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil },
				StagedConfig{ExecConfig: ExecConfig{Shards: initial, Buf: 8}})
			if err != nil {
				t.Fatal(err)
			}
			got := pushHalves(t, st, tuples, 41, target, "raw", "ksums", "gsums")
			// Global-stage results: exact sequence equality survives the
			// reshard because the old exchange drains before the new one
			// opens and timestamps keep increasing.
			if !reflect.DeepEqual(got["gsums"], want["gsums"]) {
				t.Fatalf("global window results differ across reshard:\n got %v\nwant %v",
					got["gsums"], want["gsums"])
			}
			for _, q := range []string{"raw", "ksums"} {
				if !reflect.DeepEqual(canonTs(got[q]), canonTs(want[q])) {
					t.Fatalf("query %q differs from sync oracle across reshard", q)
				}
			}
		})
	}
}

// TestReshardStatsSpanEpochs: merged Stats keep counting across reshard
// epochs (the retired runtimes' counters fold into the totals), and
// ShardStats identify the current epoch — nothing double-counts, nothing
// vanishes.
func TestReshardStatsSpanEpochs(t *testing.T) {
	tuples := keyedTuples(600, 5)
	const ticks = 100

	eng, _ := New(mixedPlan())
	runExecutor(t, eng, tuples, 50, "raw", "ksums", "gsums")
	eng.Advance(ticks)
	want := eng.Stats()

	st, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil }, StagedConfig{ExecConfig: ExecConfig{Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	got := pushHalves(t, st, tuples, 50, 2, "raw", "ksums", "gsums")
	for q := range got {
		_ = got[q]
	}
	st.Advance(ticks)
	loads := st.Stats()
	if len(loads) != len(want) {
		t.Fatalf("stats length %d, want %d", len(loads), len(want))
	}
	for i, nl := range want {
		g := loads[i]
		if g.ID != nl.ID || g.Name != nl.Name {
			t.Fatalf("stats[%d] identity %d/%s, want %d/%s", i, g.ID, g.Name, nl.ID, nl.Name)
		}
		if g.Tuples != nl.Tuples || g.OutTuples != nl.OutTuples {
			t.Errorf("stats[%d] %s: tuples %d/%d, want %d/%d (epoch counters lost or double-counted?)",
				i, g.Name, g.Tuples, g.OutTuples, nl.Tuples, nl.OutTuples)
		}
		if diff := g.Load - nl.Load; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("stats[%d] %s: load %g, want %g", i, g.Name, g.Load, nl.Load)
		}
	}
	for i, sl := range st.ShardStats() {
		if sl.Epoch != 1 {
			t.Errorf("ShardStats[%d].Epoch = %d, want 1 after one reshard", i, sl.Epoch)
		}
		if sl.Shard != i {
			t.Errorf("ShardStats[%d].Shard = %d, want %d", i, sl.Shard, i)
		}
	}
}

// TestReshardValidation pins the argument contracts: negative configured
// shard counts fail Start with a clear error (0 still means GOMAXPROCS),
// non-positive reshard targets are rejected, a stopped executor reports
// errStopped, and a fully global plan treats Reshard as a no-op.
func TestReshardValidation(t *testing.T) {
	if _, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil },
		ShardedConfig{ExecConfig: ExecConfig{Shards: -1}}); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("StartSharded(-1) err = %v, want negative-shards rejection", err)
	}
	if _, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: -3}}); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("StartStaged(-3) err = %v, want negative-shards rejection", err)
	}

	// Beyond the partition map's bucket granularity the extra shards could
	// never receive a tuple; reject instead of idling them silently.
	if _, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil },
		ShardedConfig{ExecConfig: ExecConfig{Shards: partitionBuckets + 1}}); err == nil || !strings.Contains(err.Error(), "bucket") {
		t.Fatalf("StartSharded(>buckets) err = %v, want bucket-granularity rejection", err)
	}

	sh, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil }, ShardedConfig{ExecConfig: ExecConfig{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Reshard(0); err == nil || !strings.Contains(err.Error(), ">= 1") {
		t.Fatalf("Reshard(0) err = %v, want target rejection", err)
	}
	if err := sh.Reshard(partitionBuckets + 1); err == nil || !strings.Contains(err.Error(), "bucket") {
		t.Fatalf("Reshard(>buckets) err = %v, want bucket-granularity rejection", err)
	}
	sh.Stop()
	if err := sh.Reshard(2); err != errStopped {
		t.Fatalf("Reshard after Stop err = %v, want errStopped", err)
	}

	// Fully global plan: no parallel stage, Reshard is a documented no-op.
	globalOnly := func() *Plan {
		p := NewPlan()
		p.AddSource("s", testSchema)
		w := p.AddUnary(stream.MustWindowAgg("g", 1, stream.WindowSpec{
			Size: 3, Agg: stream.AggSum, Field: 1, GroupBy: -1,
		}), FromSource("s"))
		p.AddSink("q", w)
		return p
	}
	st, err := StartStaged(func() (*Plan, error) { return globalOnly(), nil }, StagedConfig{ExecConfig: ExecConfig{Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	if st.NumShards() != 0 {
		t.Fatalf("NumShards = %d, want 0", st.NumShards())
	}
	if err := st.Reshard(3); err != nil {
		t.Fatalf("Reshard on fully global plan: %v", err)
	}
}

// TestStagedDrainFlushTieOrder: flush tuples from different shards that tie
// on timestamp must drain in the single-instance order — WindowAgg breaks
// timestamp ties by rendered key, and Staged's cross-shard drain merge must
// apply the same rule, or a downstream global window packs different tuples
// into its windows than the sync Engine does.
func TestStagedDrainFlushTieOrder(t *testing.T) {
	plan := func() *Plan {
		p := NewPlan()
		p.AddSource("s", testSchema)
		keyed := p.AddUnary(stream.MustWindowAgg("ksum", 1, stream.WindowSpec{
			Size: 100, Agg: stream.AggSum, Field: 1, GroupBy: 0,
		}), FromSource("s"))
		pairs := p.AddUnary(stream.MustWindowAgg("gpair", 1, stream.WindowSpec{
			Size: 2, Agg: stream.AggMax, Field: 1, GroupBy: -1,
		}), keyed)
		p.AddSink("q", pairs)
		return p
	}
	// Every key's window stays open (size 100) and every key's LAST tuple
	// shares Ts=50: the flush emits one tied tuple per key, spread across
	// shards, and the downstream size-2 pairing observes their order.
	var tuples []stream.Tuple
	for i := 0; i < 40; i++ {
		tuples = append(tuples, tup(int64(i+1), fmt.Sprintf("k%d", i%8), float64(i%5)))
	}
	for k := 0; k < 8; k++ {
		tuples = append(tuples, tup(50, fmt.Sprintf("k%d", k), float64(k)))
	}
	eng, _ := New(plan())
	want := runExecutor(t, eng, tuples, 16, "q")

	st, err := StartStaged(func() (*Plan, error) { return plan(), nil }, StagedConfig{ExecConfig: ExecConfig{Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	got := runExecutor(t, st, tuples, 16, "q")
	if !reflect.DeepEqual(got["q"], want["q"]) {
		t.Fatalf("tied flush tuples drained out of sync order:\n got %v\nwant %v", got["q"], want["q"])
	}
}

// keyedOpaqueOp declares a partition key (so it shards) but no state
// movement — resharding it would silently drop its per-key counters.
type keyedOpaqueOp struct{ seen map[any]int64 }

func (o *keyedOpaqueOp) Name() string        { return "keyed-opaque" }
func (o *keyedOpaqueOp) Cost() float64       { return 1 }
func (o *keyedOpaqueOp) PartitionField() int { return 0 }
func (o *keyedOpaqueOp) Apply(t stream.Tuple) []stream.Tuple {
	if o.seen == nil {
		o.seen = make(map[any]int64)
	}
	o.seen[t.Vals[0]]++
	return []stream.Tuple{{Ts: t.Ts, Vals: []any{t.Vals[0], o.seen[t.Vals[0]]}}}
}
func (o *keyedOpaqueOp) Flush() []stream.Tuple                   { return nil }
func (o *keyedOpaqueOp) OutSchema(*stream.Schema) *stream.Schema { return nil }

// TestReshardRejectsUnmovableKeyedState: an operator with keyed state but
// no KeyedStateMover runs sharded fine, but Reshard refuses up front (the
// running epoch stays untouched) instead of silently dropping its state.
func TestReshardRejectsUnmovableKeyedState(t *testing.T) {
	plan := func() *Plan {
		p := NewPlan()
		p.AddSource("s", testSchema)
		op := p.AddUnary(&keyedOpaqueOp{}, FromSource("s"))
		p.AddSink("q", op)
		return p
	}
	sh, err := StartSharded(func() (*Plan, error) { return plan(), nil }, ShardedConfig{ExecConfig: ExecConfig{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.PushBatch("s", keyedTuples(20, 4)); err != nil {
		t.Fatal(err)
	}
	if err := sh.Reshard(4); err == nil || !strings.Contains(err.Error(), "KeyedStateMover") {
		t.Fatalf("Reshard err = %v, want unmovable-state rejection", err)
	}
	// The refusal left the executor running: pushes still work.
	if err := sh.PushBatch("s", keyedTuples(20, 4)); err != nil {
		t.Fatalf("push after refused reshard: %v", err)
	}
	sh.Stop()
	if got := len(sh.Results("q")); got != 40 {
		t.Fatalf("results = %d, want 40", got)
	}
}

// TestPartitionMapRebalanceIsolatesHotBucket: the LPT rebalance must give an
// observed-hot bucket its own shard while cold buckets pack around it, and
// reset the traffic counters for the next period.
func TestPartitionMapRebalanceIsolatesHotBucket(t *testing.T) {
	pm := newPartitionMap(4)
	// Bucket 7 carries half of all traffic; the rest spreads evenly.
	for b := 0; b < partitionBuckets; b++ {
		for i := 0; i < 4; i++ {
			pm.route(uint64(b))
		}
	}
	for i := 0; i < 4*partitionBuckets; i++ {
		pm.route(7)
	}
	pm.rebalance(4)
	hot := pm.shardOf(7)
	share := make([]int, 4)
	for b := 0; b < partitionBuckets; b++ {
		share[pm.shardOf(uint64(b))]++
	}
	// The hot bucket's shard holds (almost) nothing else; the remaining
	// buckets split across the other three shards.
	if share[hot] > partitionBuckets/16 {
		t.Fatalf("hot shard owns %d buckets, want it (nearly) isolated (shares %v)", share[hot], share)
	}
	for s, n := range share {
		if s != hot && n < partitionBuckets/5 {
			t.Errorf("cold shard %d owns only %d buckets (shares %v)", s, n, share)
		}
	}
	// Counters were reset: a rebalance with no further traffic stripes
	// evenly again.
	pm.rebalance(4)
	share = make([]int, 4)
	for b := 0; b < partitionBuckets; b++ {
		share[pm.shardOf(uint64(b))]++
	}
	for s, n := range share {
		if n != partitionBuckets/4 {
			t.Fatalf("post-reset shard %d owns %d buckets, want %d", s, n, partitionBuckets/4)
		}
	}
}

// TestStagedReshardRebalancesZipfSkew drives a zipf-skewed key workload,
// reshards at the same width (a pure rebalance), replays the workload and
// requires the hot shard's executed-load share to drop — the measured-skew
// feedback the elastic controller relies on — while results stay correct.
func TestStagedReshardRebalancesZipfSkew(t *testing.T) {
	const shards = 4
	rng := rand.New(rand.NewSource(23))
	z := zipf.New(rng, 64, 1.4)
	tuples := make([]stream.Tuple, 6000)
	for i := range tuples {
		tuples[i] = tup(int64(i+1), fmt.Sprintf("k%d", z.Draw()), 1)
	}
	half := len(tuples) / 2

	maxShare := func(st *Staged) float64 {
		var total, max float64
		for _, sl := range st.ShardStats() {
			var l float64
			for _, nl := range sl.Loads {
				l += nl.Load
			}
			if l > max {
				max = l
			}
			total += l
		}
		if total == 0 {
			t.Fatal("no load measured")
		}
		return max / total
	}

	st, err := StartStaged(func() (*Plan, error) { return shardablePlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: shards}})
	if err != nil {
		t.Fatal(err)
	}
	push := func(ts []stream.Tuple) {
		for i := 0; i < len(ts); i += 64 {
			end := i + 64
			if end > len(ts) {
				end = len(ts)
			}
			if err := st.PushBatch("s", ts[i:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	push(tuples[:half])
	SettleStats(st) // the shard goroutines meter asynchronously
	before := maxShare(st)
	if err := st.Reshard(shards); err != nil {
		t.Fatal(err)
	}
	push(tuples[half:])
	st.Stop()
	after := maxShare(st)
	t.Logf("hot-shard share before %.2f, after rebalance %.2f (hot key carries %.2f of mass)",
		before, after, z.CDF(1))
	// The blind bucket striping can stack several hot keys on one shard;
	// after an LPT rebalance the max share must come down toward the hot
	// key's own mass (it can never go below the hottest key).
	if after >= before-0.02 {
		t.Errorf("rebalance did not reduce skew: before %.3f, after %.3f", before, after)
	}

	// Correctness across the rebalancing reshard: the moved hot-key state
	// kept every window intact.
	eng, _ := New(shardablePlan())
	want := runExecutor(t, eng, tuples, 64, "raw", "sums")
	for _, q := range []string{"raw", "sums"} {
		got := st.Results(q)
		if !reflect.DeepEqual(canonTs(got), canonTs(want[q])) {
			t.Fatalf("query %q differs from sync oracle after rebalance (%d vs %d tuples)",
				q, len(got), len(want[q]))
		}
	}
}

// TestShardedReshardUnderShedding: a shed plan survives the boundary — the
// new epoch's runtimes re-resolve the same shedder, drops keep accumulating,
// and the conservation identity processed + shed = pushed holds across
// epochs in the merged Stats.
func TestShardedReshardUnderShedding(t *testing.T) {
	shedder := &stubShedder{ratio: 0.5, util: 1, gen: 1}
	sh, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil },
		ShardedConfig{ExecConfig: ExecConfig{Shards: 2, Buf: 64, Shedder: shedder}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	got := pushHalves(t, sh, keyedTuples(n, 7), 64, 4, "raw", "sums")
	_ = got
	loads := sh.Stats()
	if total := loads[0].Tuples + loads[0].ShedTuples; total != n {
		t.Fatalf("processed+shed = %d across epochs, want %d", total, n)
	}
	// Each epoch's per-shard samplers drop every other tuple of their
	// partitions; the credit accumulators reset at the boundary, so allow
	// one tuple of slack per shard per epoch (2 + 4 shards).
	if diff := loads[0].ShedTuples - n/2; diff < -6 || diff > 6 {
		t.Fatalf("ShedTuples = %d, want %d±6", loads[0].ShedTuples, n/2)
	}
}

// TestPartitionMapTrafficDecay pins the traffic counters' exponential decay
// on the metering clock: once partitionDecayTicks Advance ticks accumulate,
// every bucket counter halves — repeatedly when the clock jumps several
// intervals at once — so the counters approximate recent traffic, not an
// all-time sum.
func TestPartitionMapTrafficDecay(t *testing.T) {
	pm := newPartitionMap(2)
	for i := 0; i < 1024; i++ {
		pm.route(3)
	}
	for i := 0; i < 64; i++ {
		pm.route(7)
	}
	pm.observeTicks(partitionDecayTicks - 1)
	if got := pm.counts[3].Load(); got != 1024 {
		t.Fatalf("bucket 3 decayed %d ticks early: count %d, want 1024", partitionDecayTicks-1, got)
	}
	pm.observeTicks(1)
	if got := pm.counts[3].Load(); got != 512 {
		t.Fatalf("bucket 3 after one decay interval: count %d, want 512", got)
	}
	pm.observeTicks(3 * partitionDecayTicks)
	if got := pm.counts[3].Load(); got != 64 {
		t.Fatalf("bucket 3 after a 3-interval clock jump: count %d, want 64", got)
	}
	if got := pm.counts[7].Load(); got != 4 {
		t.Fatalf("bucket 7 after four total decay intervals: count %d, want 4", got)
	}
}

// TestPartitionMapDecayFavorsRecentTraffic is the decay's reason to exist:
// a bucket that was scorching long ago must not outweigh the bucket that is
// hot NOW when a rebalance places buckets. Without decay the ancient bucket
// keeps the larger all-time count and gets the isolation the current hot
// bucket needs.
func TestPartitionMapDecayFavorsRecentTraffic(t *testing.T) {
	pm := newPartitionMap(4)
	// Bucket 3 carries a huge burst long ago...
	for i := 0; i < 8*partitionBuckets; i++ {
		pm.route(3)
	}
	// ...then eight decay intervals pass under light, even traffic...
	for e := 0; e < 8; e++ {
		for b := 0; b < partitionBuckets; b++ {
			pm.route(uint64(b))
		}
		pm.observeTicks(partitionDecayTicks)
	}
	// ...and bucket 7 runs hot today.
	for i := 0; i < 4*partitionBuckets; i++ {
		pm.route(7)
	}
	if ancient, recent := pm.counts[3].Load(), pm.counts[7].Load(); ancient >= recent {
		t.Fatalf("ancient-hot bucket (count %d) still outweighs the recently-hot bucket (count %d)", ancient, recent)
	}
	pm.rebalance(4)
	hot := pm.shardOf(7)
	share := make([]int, 4)
	for b := 0; b < partitionBuckets; b++ {
		share[pm.shardOf(uint64(b))]++
	}
	if share[hot] > partitionBuckets/16 {
		t.Fatalf("recently-hot bucket's shard owns %d buckets, want it (nearly) isolated (shares %v)", share[hot], share)
	}
	if pm.shardOf(3) == hot {
		t.Errorf("the decayed ancient-hot bucket still shares the isolation shard")
	}
}
