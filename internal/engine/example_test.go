package engine_test

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/stream"
)

// Example demonstrates shared processing: one filter node serves two
// queries, processing each tuple once.
func Example() {
	schema := stream.MustSchema(
		stream.Field{Name: "symbol", Kind: stream.KindString},
		stream.Field{Name: "price", Kind: stream.KindFloat},
	)
	plan := engine.NewPlan()
	plan.AddSource("stocks", schema)
	shared := plan.AddUnary(
		stream.NewFilter("high", 2, stream.FieldCmp(1, stream.Gt, 100)),
		engine.FromSource("stocks"),
	)
	plan.AddSink("alice", shared)
	plan.AddSink("bob", shared)

	eng, err := engine.New(plan)
	if err != nil {
		panic(err)
	}
	for i, price := range []float64{90, 120, 150} {
		if err := eng.Push("stocks", stream.NewTuple(int64(i), "ACME", price)); err != nil {
			panic(err)
		}
	}
	eng.Advance(3)
	fmt.Printf("alice got %d, bob got %d\n", len(eng.Results("alice")), len(eng.Results("bob")))
	for _, nl := range eng.Loads() {
		fmt.Printf("%s processed %d tuples for %d queries (load %.0f)\n",
			nl.Name, nl.Tuples, len(nl.Owners), nl.Load)
	}
	// Output:
	// alice got 2, bob got 2
	// high processed 3 tuples for 2 queries (load 2)
}
