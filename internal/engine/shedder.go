package engine

import (
	"math"
	"sync/atomic"
)

// Shedder is the executors' hook into the load-shedding control plane. When
// one is installed, every executor consults it at the ingress edges — the
// source-to-operator hops — and drops the planned fraction of tuples there,
// before any operator cost is paid. Dropping at the ingress (Aurora's
// earliest-drop rule) keeps operator-internal state consistent: a window or
// join never sees a partial batch mid-stream, it simply sees fewer tuples.
//
// The interface is deliberately a plan snapshot, not a per-tuple callback:
// executors cache each ingress node's policy and re-resolve it only when
// Generation changes, so the hot path costs one comparison per batch. The
// internal/shed package provides the standard implementation (utility-slope
// and random policies over qos.Graph); the engine package only defines the
// seam so the dependency arrow keeps pointing engine <- qos <- shed.
type Shedder interface {
	// Generation identifies the current shed plan; it increments whenever
	// the plan changes. Executors may cache NodePolicy results until the
	// generation moves.
	Generation() uint64
	// NodePolicy returns the drop ratio in [0, 1] and the estimated QoS
	// utility lost per dropped tuple for an ingress operator owned by the
	// given queries. A ratio of zero means keep everything.
	NodePolicy(owners []string) (ratio, utilityPerTuple float64)
}

// shedState is one ingress edge's cached shed policy plus the deterministic
// drop sampler. The credit accumulator spreads drops evenly through the
// stream (ratio 0.5 drops every other tuple) instead of dropping bursts,
// which is what keeps windowed aggregates representative under shedding.
// Each state is owned by a single goroutine; no locking.
type shedState struct {
	gen    uint64
	ratio  float64
	util   float64
	credit float64
	known  bool
}

// refresh re-resolves the cached policy if the shed plan moved.
func (st *shedState) refresh(s Shedder, owners []string) {
	if g := s.Generation(); !st.known || g != st.gen {
		st.ratio, st.util = s.NodePolicy(owners)
		st.gen = g
		st.known = true
	}
}

// drop reports whether the next tuple should be shed under the cached ratio.
func (st *shedState) drop() bool {
	if st.ratio <= 0 {
		return false
	}
	if st.ratio >= 1 {
		return true
	}
	st.credit += st.ratio
	if st.credit >= 1 {
		st.credit--
		return true
	}
	return false
}

// atomicFloat64 is a CAS-add float used for the shed-utility counters, which
// are written by router goroutines and read mid-run by Stats.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// demandIn estimates each node's unshedded input tuple count: the tuples it
// processed, plus those shed at its own ingress, plus the outputs its
// upstream producers would have emitted had nothing been shed — assuming
// shedding does not change an operator's selectivity, the standard
// load-shedding approximation. Nodes are indexed in topological order
// (edges only point forward), so one ascending pass suffices. A fully-shed
// upstream node (zero processed tuples) leaves no selectivity estimate and
// contributes nothing, making the estimate a lower bound in that case.
func demandIn(p *Plan, tuples, out, shed []int64) []float64 {
	demand := make([]float64, len(p.nodes))
	for i := range demand {
		demand[i] = float64(tuples[i] + shed[i])
	}
	for i, n := range p.nodes {
		processed := float64(tuples[i])
		if processed <= 0 {
			continue
		}
		missFactor := demand[i]/processed - 1
		if missFactor <= 0 {
			continue
		}
		// Outputs lost to upstream drops, at this node's measured
		// selectivity; each outgoing edge would have carried its own copy.
		missedOut := float64(out[i]) * missFactor
		for _, e := range n.out {
			if e.node >= 0 {
				demand[e.node] += missedOut
			}
		}
	}
	return demand
}

// nodeOwners extracts each node's sorted owner list once at executor start,
// so shed policy lookups never touch the plan's owner maps on the hot path.
func nodeOwners(p *Plan) [][]string {
	out := make([][]string, len(p.nodes))
	for i, n := range p.nodes {
		owners := make([]string, 0, len(n.owners))
		for o := range n.owners {
			owners = append(owners, o)
		}
		out[i] = sortedOwners(owners)
	}
	return out
}
