package engine

import (
	"testing"

	"repro/internal/stream"
)

// stubShedder is a fixed-policy engine.Shedder for exercising the executor
// wiring without the shed package (which sits above engine).
type stubShedder struct {
	ratio float64
	util  float64
	gen   uint64
}

func (s *stubShedder) Generation() uint64                     { return s.gen }
func (s *stubShedder) NodePolicy([]string) (float64, float64) { return s.ratio, s.util }

// shedTotals sums drop accounting over a Stats slice.
func shedTotals(loads []NodeLoad) (tuples int64, util float64) {
	for _, nl := range loads {
		tuples += nl.ShedTuples
		util += nl.ShedUtilityLost
	}
	return tuples, util
}

// TestEngineShedsAtIngress verifies the synchronous engine's planned-ratio
// shedding: a 50% ratio drops exactly every other tuple at each ingress
// edge, charges the stubbed utility, and never touches interior nodes.
func TestEngineShedsAtIngress(t *testing.T) {
	eng, err := New(shardablePlan())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetShedder(&stubShedder{ratio: 0.5, util: 0.25, gen: 1})
	tuples := keyedTuples(100, 5)
	if err := eng.PushBatch("s", tuples); err != nil {
		t.Fatal(err)
	}
	eng.Stop()
	loads := eng.Stats()
	// Node 0 ("pos") is the only ingress node; the aggregate is interior.
	if loads[0].ShedTuples != 50 {
		t.Fatalf("ingress ShedTuples = %d, want 50", loads[0].ShedTuples)
	}
	if loads[0].Tuples != 50 {
		t.Fatalf("ingress Tuples = %d, want 50", loads[0].Tuples)
	}
	if got := loads[0].ShedUtilityLost; got != 50*0.25 {
		t.Fatalf("ShedUtilityLost = %g, want %g", got, 50*0.25)
	}
	for _, nl := range loads[1:] {
		if nl.ShedTuples != 0 {
			t.Fatalf("interior node %q shed %d tuples", nl.Name, nl.ShedTuples)
		}
	}
}

// TestEngineShedderRemoval verifies SetShedder(nil) restores full delivery.
func TestEngineShedderRemoval(t *testing.T) {
	eng, err := New(shardablePlan())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetShedder(&stubShedder{ratio: 1, gen: 1})
	if err := eng.PushBatch("s", keyedTuples(10, 2)); err != nil {
		t.Fatal(err)
	}
	eng.SetShedder(nil)
	if err := eng.PushBatch("s", keyedTuples(10, 2)); err != nil {
		t.Fatal(err)
	}
	loads := eng.Stats()
	if loads[0].ShedTuples != 10 || loads[0].Tuples != 10 {
		t.Fatalf("got shed %d processed %d, want 10 and 10",
			loads[0].ShedTuples, loads[0].Tuples)
	}
}

// TestRuntimeShedsPlannedRatio drives the concurrent runtime with a fixed
// 50% plan and checks the conservation identity processed + shed = pushed at
// the ingress node, with drops spread evenly (not bursty). The buffer holds
// every batch of the run so no overflow shedding can add to the planned
// drops and the counts stay deterministic.
func TestRuntimeShedsPlannedRatio(t *testing.T) {
	rt, err := StartRuntime(shardablePlan(), RuntimeConfig{ExecConfig: ExecConfig{Buf: 64, Shedder: &stubShedder{ratio: 0.5, util: 1, gen: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	runExecutor(t, rt, keyedTuples(n, 7), 64, "raw", "sums")
	loads := rt.Stats()
	if got := loads[0].Tuples + loads[0].ShedTuples; got != n {
		t.Fatalf("processed+shed = %d, want %d", got, n)
	}
	if loads[0].ShedTuples != n/2 {
		t.Fatalf("ShedTuples = %d, want %d", loads[0].ShedTuples, n/2)
	}
	if loads[0].ShedUtilityLost != float64(n/2) {
		t.Fatalf("ShedUtilityLost = %g, want %g", loads[0].ShedUtilityLost, float64(n/2))
	}
}

// TestShardedMergedShedStats is the merged-drop-stats contract: per-shard
// shedders account their drops independently and Stats sums them by node
// ID, preserving processed + shed = pushed across the whole executor. As
// above, buffers are sized to rule out overflow drops.
func TestShardedMergedShedStats(t *testing.T) {
	sh, err := StartSharded(func() (*Plan, error) { return shardablePlan(), nil },
		ShardedConfig{ExecConfig: ExecConfig{Shards: 4, Buf: 64, Shedder: &stubShedder{ratio: 0.5, util: 0.5, gen: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	runExecutor(t, sh, keyedTuples(n, 7), 64, "raw", "sums")
	loads := sh.Stats()
	if got := loads[0].Tuples + loads[0].ShedTuples; got != n {
		t.Fatalf("merged processed+shed = %d, want %d", got, n)
	}
	// Each shard's sampler drops every other tuple of its partition; across
	// 4 shards the merged count can differ from n/2 by at most one tuple per
	// shard (the trailing credit).
	if diff := loads[0].ShedTuples - n/2; diff < -4 || diff > 4 {
		t.Fatalf("merged ShedTuples = %d, want %d±4", loads[0].ShedTuples, n/2)
	}
	if want := float64(loads[0].ShedTuples) * 0.5; loads[0].ShedUtilityLost != want {
		t.Fatalf("merged ShedUtilityLost = %g, want %g", loads[0].ShedUtilityLost, want)
	}
	// Interior nodes never shed, in any shard.
	tuplesShed, _ := shedTotals(loads[1:])
	if tuplesShed != 0 {
		t.Fatalf("interior nodes shed %d tuples", tuplesShed)
	}
}

// TestOfferedLoadPropagatesDownstream: a node downstream of a shed ingress
// never sees the dropped tuples, but its OfferedLoad must still report the
// demand — reconstructed through the plan at measured selectivity. With
// pass-all filters the reconstruction is exact.
func TestOfferedLoadPropagatesDownstream(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	f1 := p.AddUnary(stream.NewFilter("f1", 2, func(stream.Tuple) bool { return true }), FromSource("s"))
	f2 := p.AddUnary(stream.NewFilter("f2", 3, func(stream.Tuple) bool { return true }), f1)
	p.AddSink("q", f2)
	eng, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetShedder(&stubShedder{ratio: 0.5, util: 1, gen: 1})
	if err := eng.PushBatch("s", keyedTuples(1000, 4)); err != nil {
		t.Fatal(err)
	}
	eng.Advance(100)
	eng.Stop()
	loads := eng.Stats()
	// f1 processed 500 of 1000 (cost 2): executed 10/tick, offered 20/tick.
	if loads[0].Load != 10 || loads[0].OfferedLoad != 20 {
		t.Fatalf("f1 load = %g offered %g, want 10 and 20", loads[0].Load, loads[0].OfferedLoad)
	}
	// f2 processed the same 500 (cost 3) with zero local shed; its offered
	// load must still be the full 1000-tuple demand: 30/tick, not 15.
	if loads[1].ShedTuples != 0 {
		t.Fatalf("f2 shed %d tuples locally", loads[1].ShedTuples)
	}
	if loads[1].Load != 15 || loads[1].OfferedLoad != 30 {
		t.Fatalf("f2 load = %g offered %g, want 15 and 30", loads[1].Load, loads[1].OfferedLoad)
	}
}

// TestRuntimeDefaultBuffer pins the RuntimeConfig zero-value default.
func TestRuntimeDefaultBuffer(t *testing.T) {
	rt, err := StartRuntime(shardablePlan(), RuntimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := runExecutor(t, rt, keyedTuples(100, 4), 10, "raw")
	if len(got["raw"]) == 0 {
		t.Fatal("no results through default-buffer runtime")
	}
}

// TestShedderGenerationRefresh verifies executors pick up a plan change:
// bumping the stub's generation mid-stream switches the cached ratio.
func TestShedderGenerationRefresh(t *testing.T) {
	eng, err := New(shardablePlan())
	if err != nil {
		t.Fatal(err)
	}
	sh := &stubShedder{ratio: 0, gen: 1}
	eng.SetShedder(sh)
	if err := eng.PushBatch("s", keyedTuples(10, 2)); err != nil {
		t.Fatal(err)
	}
	sh.ratio = 1
	sh.gen = 2
	if err := eng.PushBatch("s", keyedTuples(10, 2)); err != nil {
		t.Fatal(err)
	}
	loads := eng.Stats()
	if loads[0].Tuples != 10 || loads[0].ShedTuples != 10 {
		t.Fatalf("got processed %d shed %d, want 10 and 10",
			loads[0].Tuples, loads[0].ShedTuples)
	}
}

// TestRuntimeShedUnknownSource keeps the error contract intact under
// shedding: unknown sources still reject whole batches.
func TestRuntimeShedUnknownSource(t *testing.T) {
	rt, err := StartRuntime(shardablePlan(), RuntimeConfig{ExecConfig: ExecConfig{Shedder: &stubShedder{gen: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if err := rt.PushBatch("nope", []stream.Tuple{tup(1, "a", 1)}); err == nil {
		t.Fatal("push to unknown source succeeded")
	}
}
