package engine

import (
	"fmt"

	"repro/internal/stream"
)

// PortRef names a tuple producer inside a plan: either a source stream or a
// node's output.
type PortRef struct {
	source string // non-empty for a source stream
	node   int    // node index otherwise
}

// FromSource returns a PortRef for the named source stream.
func FromSource(name string) PortRef { return PortRef{source: name} }

// IsSource reports whether the ref points at a source stream.
func (r PortRef) IsSource() bool { return r.source != "" }

// edge is a downstream consumer of a port: a node input or a sink.
type edge struct {
	node int         // target node index; -1 for a sink
	side stream.Side // which input of a binary node
	sink string      // sink (query) name when node == -1
}

// node is one physical operator in the plan. Exactly one of unary / binary
// is set. The same stream.Transform instance may appear in successive plans;
// its internal state then carries across the transition (shared-operator
// continuity).
type node struct {
	id     int
	unary  stream.Transform
	binary stream.BinaryTransform
	out    []edge
	// Owners is the set of query names that contain this operator; it is
	// what the admission auction sees as the operator's sharing degree.
	owners map[string]bool
}

func (n *node) name() string {
	if n.unary != nil {
		return n.unary.Name()
	}
	return n.binary.Name()
}

func (n *node) cost() float64 {
	if n.unary != nil {
		return n.unary.Cost()
	}
	return n.binary.Cost()
}

// Plan is an immutable-once-built shared query plan: sources, operator
// nodes, and per-query sinks.
type Plan struct {
	sources map[string]*source
	nodes   []*node
	sinks   map[string]bool // query name -> exists
	built   bool
	err     error
}

type source struct {
	name   string
	schema *stream.Schema
	out    []edge
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{sources: make(map[string]*source), sinks: make(map[string]bool)}
}

func (p *Plan) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("engine: "+format, args...)
	}
}

// AddSource declares a named input stream.
func (p *Plan) AddSource(name string, schema *stream.Schema) {
	if name == "" {
		p.fail("source name must be non-empty")
		return
	}
	if _, dup := p.sources[name]; dup {
		p.fail("duplicate source %q", name)
		return
	}
	p.sources[name] = &source{name: name, schema: schema}
}

// AddUnary attaches a unary operator to the given input and returns its
// output port.
func (p *Plan) AddUnary(op stream.Transform, in PortRef) PortRef {
	id := len(p.nodes)
	n := &node{id: id, unary: op, owners: make(map[string]bool)}
	p.nodes = append(p.nodes, n)
	p.connect(in, edge{node: id, side: stream.Left})
	return PortRef{node: id}
}

// AddBinary attaches a binary operator to the two inputs and returns its
// output port.
func (p *Plan) AddBinary(op stream.BinaryTransform, left, right PortRef) PortRef {
	id := len(p.nodes)
	n := &node{id: id, binary: op, owners: make(map[string]bool)}
	p.nodes = append(p.nodes, n)
	p.connect(left, edge{node: id, side: stream.Left})
	p.connect(right, edge{node: id, side: stream.Right})
	return PortRef{node: id}
}

// AddSink routes a port's output to the named query's result stream and
// marks every operator upstream of the port as owned by that query.
func (p *Plan) AddSink(queryName string, in PortRef) {
	if queryName == "" {
		p.fail("sink name must be non-empty")
		return
	}
	if p.sinks[queryName] {
		p.fail("duplicate sink %q", queryName)
		return
	}
	p.sinks[queryName] = true
	p.connect(in, edge{node: -1, sink: queryName})
	p.markOwners(queryName, in)
}

// markOwners walks upstream from ref marking ownership.
func (p *Plan) markOwners(queryName string, ref PortRef) {
	if ref.IsSource() {
		return
	}
	if ref.node < 0 || ref.node >= len(p.nodes) {
		return
	}
	n := p.nodes[ref.node]
	if n.owners[queryName] {
		return
	}
	n.owners[queryName] = true
	for _, up := range p.inputsOf(ref.node) {
		p.markOwners(queryName, up)
	}
}

// inputsOf returns the ports feeding node id (found by scanning producer
// edge lists; plans are small relative to streams so this is build-time-only
// work).
func (p *Plan) inputsOf(id int) []PortRef {
	var ins []PortRef
	for name, s := range p.sources {
		for _, e := range s.out {
			if e.node == id {
				ins = append(ins, FromSource(name))
			}
		}
	}
	for _, n := range p.nodes {
		for _, e := range n.out {
			if e.node == id {
				ins = append(ins, PortRef{node: n.id})
			}
		}
	}
	return ins
}

// connect validates the producer ref and appends the edge.
func (p *Plan) connect(in PortRef, e edge) {
	if in.IsSource() {
		s, ok := p.sources[in.source]
		if !ok {
			p.fail("unknown source %q", in.source)
			return
		}
		s.out = append(s.out, e)
		return
	}
	if in.node < 0 || in.node >= len(p.nodes) {
		p.fail("unknown node %d", in.node)
		return
	}
	if e.node >= 0 && e.node <= in.node {
		p.fail("edge from node %d to non-downstream node %d", in.node, e.node)
		return
	}
	p.nodes[in.node].out = append(p.nodes[in.node].out, e)
}

// Build finalizes the plan.
func (p *Plan) Build() error {
	if p.err != nil {
		return p.err
	}
	if len(p.sinks) == 0 {
		return fmt.Errorf("engine: plan has no sinks")
	}
	p.built = true
	return nil
}

// NumNodes returns the number of operator nodes.
func (p *Plan) NumNodes() int { return len(p.nodes) }

// Queries returns the sink (query) names.
func (p *Plan) Queries() []string {
	out := make([]string, 0, len(p.sinks))
	for name := range p.sinks {
		out = append(out, name)
	}
	return out
}

// NodeInfo describes one physical operator for introspection and for
// feeding the admission auction.
type NodeInfo struct {
	ID     int
	Name   string
	Cost   float64
	Owners []string
}

// Nodes returns descriptions of every operator node.
func (p *Plan) Nodes() []NodeInfo {
	out := make([]NodeInfo, len(p.nodes))
	for i, n := range p.nodes {
		owners := make([]string, 0, len(n.owners))
		for o := range n.owners {
			owners = append(owners, o)
		}
		out[i] = NodeInfo{ID: n.id, Name: n.name(), Cost: n.cost(), Owners: owners}
	}
	return out
}

// hasTransform reports whether any node in the plan uses the given operator
// instance (used by the transition phase to decide which state survives).
func (p *Plan) hasTransform(unary stream.Transform, binary stream.BinaryTransform) bool {
	for _, n := range p.nodes {
		if unary != nil && n.unary == unary {
			return true
		}
		if binary != nil && n.binary == binary {
			return true
		}
	}
	return false
}
