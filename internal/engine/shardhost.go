package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stream"
)

// Worker-side half of the distributed executor (see distributed.go for the
// coordinator). A ShardHost owns exactly one parallel-stage shard: it carves
// the shardable prefix out of a factory plan exactly like Staged does for a
// local shard, runs it on a Runtime, and streams the exchange-edge output —
// tuples AND punctuation, the low-watermark promises the coordinator's merge
// orders by — through the OnExchange callback instead of an in-process
// exchangeMerge. The cluster transport wraps these callbacks in framed-TCP
// writes; in-process tests wire them straight back into a Distributed
// coordinator.

// HostSpec is one shard assignment from a coordinator. Shard/Width identify
// the slot in the coordinator's partition map (the host itself only reports
// them back — partition routing happens coordinator-side, before tuples reach
// PushOwned). The callbacks receive ownership of every batch they are handed
// (recycle via PutBatch when done); OnExchange batches carry in-band
// punctuation markers, OnSink batches are punctuation-stripped query results
// of fully parallel sinks.
type HostSpec struct {
	Shard, Width  int
	Buf           int
	DisableFusion bool
	Columnar      bool
	// Payload rides the deploy to remote workers so they can derive the same
	// plan factory the coordinator analyzed (e.g. the admitted query set);
	// ShardHost itself ignores it — its factory arrives in NewShardHost.
	Payload any
	// OnExchange receives every batch a prefix exchange sink emits on this
	// shard, punctuation included.
	OnExchange func(edge string, batch []stream.Tuple)
	// OnSink receives every batch a non-exchange prefix sink emits
	// (fully parallel query results), punctuation stripped.
	OnSink func(sink string, batch []stream.Tuple)
}

// ResumeSpec restarts a quiesced host on a fresh epoch: a new shard slot
// (the width may have changed — a dead peer's slot compacts away) and the
// keyed operator state the coordinator routed to this shard under the new
// partition map.
type ResumeSpec struct {
	Shard, Width int
	Recs         []StateRec
}

// HostCounters is a shard's raw per-node accounting, indexed by PREFIX-plan
// node position (the coordinator maps positions onto analyzed-plan node IDs
// via its shardIDs). Raw counts, no tick normalization — the coordinator
// folds them into its retired accumulators at epoch boundaries.
type HostCounters struct {
	Tuples, Outs, Sheds []int64
	ShedUtil            []float64
	Dropped             int64
}

// SinkEmit is one contiguous run of same-sink tuples a drain emission
// produced, in the emission's shard-local route order.
type SinkEmit struct {
	Sink   string
	Tuples []stream.Tuple
}

// DrainEmit is one flush emission of one prefix node: the emitted tuple's
// timestamp and tie-break key (what the coordinator's cross-shard merge
// sorts by — the same (Ts, rendered-first-value) order Staged.drainPrefix
// uses) and the terminal sink outputs that resulted from routing it through
// the shard's downstream operators.
type DrainEmit struct {
	Ts   int64
	Tie  string
	Outs []SinkEmit
}

// HostDrain is the shard's end-of-run flush: per prefix node (topological
// order), the node's flush emissions in shard-local order, plus the final
// counters with all drain processing folded in. The coordinator merges the
// per-node emission lists across shards to reproduce the synchronous drain
// order exactly.
type HostDrain struct {
	Nodes    [][]DrainEmit
	Counters HostCounters
}

// RemoteShardHost is what the distributed coordinator drives — one parallel
// shard living somewhere else. ShardHost implements it in-process; the
// cluster transport's client implements it over framed TCP. Every method is
// coordinator-initiated and synchronous; only the HostSpec callbacks (and
// Dead) flow the other way.
//
// Lifecycle: Start → PushOwned* → {Quiesce → ExportState → Resume}* →
// Quiesce → Drain → Stop. Quiesce drains in-flight batches and parks the
// operator state; ExportState/Drain are only valid on a quiesced host.
// Dead returns a channel closed when the host is lost (transport failure,
// process death); a dead host's methods fail and the coordinator recovers
// the shard onto the survivors.
type RemoteShardHost interface {
	Name() string
	Start(spec HostSpec) error
	PushOwned(source string, batch []stream.Tuple) error
	Quiesce() error
	ExportState() ([]StateRec, error)
	Resume(spec ResumeSpec) error
	Drain() (*HostDrain, error)
	Counters() (*HostCounters, error)
	Stop() error
	Dead() <-chan struct{}
}

// ShardHost is the in-process RemoteShardHost: one shard's prefix runtime
// plus the carve/quiesce/export/drain machinery, shared by the cluster
// worker (which frames its callbacks over TCP) and by loopback tests.
type ShardHost struct {
	name    string
	factory func() (*Plan, error)

	// killed is read by the runtime's tap goroutines (guard) while Quiesce
	// holds mu across the pipeline drain — it must stay lock-free or the
	// drain deadlocks against its own taps.
	killed atomic.Bool

	mu       sync.Mutex
	spec     HostSpec
	split    *StageSplit
	topo     *Plan // analyzed factory plan: schema + sink metadata
	prefix   *Plan
	rt       *Runtime
	quiesced bool
	stopped  bool
	dead     chan struct{}
	// drain deltas, indexed by prefix node position, folded into the
	// counters Drain returns.
	drainTuples, drainOuts []int64
}

var _ RemoteShardHost = (*ShardHost)(nil)

// NewShardHost builds an idle host around a plan factory (same contract as
// StartStaged's: structurally identical plans, fresh operator instances).
// Nothing runs until Start.
func NewShardHost(name string, factory func() (*Plan, error)) *ShardHost {
	return &ShardHost{name: name, factory: factory, dead: make(chan struct{})}
}

func (h *ShardHost) Name() string { return h.name }

// Start analyzes the factory plan, carves this host's prefix, and starts the
// shard runtime with the spec's callbacks installed as taps. A fully global
// plan has no parallel stage to host and is rejected.
func (h *ShardHost) Start(spec HostSpec) error {
	if h.killed.Load() {
		return fmt.Errorf("engine: shard host %q is dead", h.name)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rt != nil && !h.quiesced {
		return fmt.Errorf("engine: shard host %q already running", h.name)
	}
	full, err := h.factory()
	if err != nil {
		return fmt.Errorf("engine: shard host plan factory: %w", err)
	}
	split, err := full.Analyze()
	if err != nil {
		return err
	}
	if split.NumParallel() == 0 {
		return fmt.Errorf("engine: plan is fully global; nothing to host on shard %d", spec.Shard)
	}
	prefix, _, err := split.prefixPlan(full)
	if err != nil {
		return err
	}
	h.spec, h.split, h.topo = spec, split, full
	h.stopped, h.quiesced = false, false
	h.drainTuples, h.drainOuts = nil, nil
	return h.startRuntime(prefix)
}

// startRuntime starts a fresh Runtime over a carved prefix plan with the
// exchange and sink taps wired to the spec callbacks. Caller holds h.mu.
func (h *ShardHost) startRuntime(prefix *Plan) error {
	isExchange := make(map[string]bool, len(h.split.Exchanges))
	for _, id := range h.split.Exchanges {
		isExchange[ExchangeName(id)] = true
	}
	taps := make(map[string]func([]stream.Tuple), len(prefix.sinks))
	for sink := range prefix.sinks {
		sink := sink
		if isExchange[sink] {
			if tap := h.spec.OnExchange; tap != nil {
				taps[sink] = h.guard(func(ts []stream.Tuple) { tap(sink, ts) })
			}
		} else if tap := h.spec.OnSink; tap != nil {
			taps[sink] = h.guard(stripPunct(func(ts []stream.Tuple) { tap(sink, ts) }))
		}
	}
	srcSchemas := make(map[string]*stream.Schema, len(h.topo.sources))
	for name, src := range h.topo.sources {
		srcSchemas[name] = src.schema
	}
	// No shedder and no staging budget on a worker shard: shedding happened
	// at the coordinator's ingress, and backpressure propagates through the
	// transport instead of staging host-side.
	rt, err := StartRuntime(prefix, RuntimeConfig{
		ExecConfig:    ExecConfig{Buf: h.spec.Buf, DisableFusion: h.spec.DisableFusion, Columnar: h.spec.Columnar},
		Taps:          taps,
		SourceSchemas: srcSchemas,
	})
	if err != nil {
		return err
	}
	h.prefix, h.rt, h.quiesced = prefix, rt, false
	return nil
}

// guard wraps a tap so a killed host emits nothing — a crashed process
// would not have delivered either, and tests that Kill a host rely on its
// in-flight output vanishing rather than racing the recovery.
func (h *ShardHost) guard(tap func([]stream.Tuple)) func([]stream.Tuple) {
	return func(ts []stream.Tuple) {
		if h.killed.Load() {
			putBatch(ts)
			return
		}
		tap(ts)
	}
}

// PushOwned forwards a coordinator-routed sub-batch into the shard runtime,
// ownership transferring on success. The carved prefix carries no source
// schemas (the coordinator validated at ingress), so this is a plain channel
// send.
func (h *ShardHost) PushOwned(source string, batch []stream.Tuple) error {
	h.mu.Lock()
	rt, bad := h.rt, h.killed.Load() || h.quiesced || h.stopped
	h.mu.Unlock()
	if rt == nil || bad {
		return fmt.Errorf("engine: shard host %q not accepting pushes", h.name)
	}
	return rt.PushOwnedBatch(source, batch)
}

// Quiesce drains the shard runtime without flushing keyed state; idempotent.
func (h *ShardHost) Quiesce() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quiesceLocked()
}

func (h *ShardHost) quiesceLocked() error {
	if h.rt == nil {
		return fmt.Errorf("engine: shard host %q has no deployment", h.name)
	}
	if !h.quiesced {
		h.rt.Quiesce()
		h.quiesced = true
	}
	return nil
}

// ExportState drains the quiesced prefix's keyed operator state, in the same
// deterministic (node, rendered key) order a local checkpoint uses.
func (h *ShardHost) ExportState() ([]StateRec, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rt == nil || !h.quiesced {
		return nil, fmt.Errorf("engine: shard host %q must be quiesced to export state", h.name)
	}
	return exportStateRecs([]*Plan{h.prefix}), nil
}

// Resume replaces the quiesced epoch with a fresh factory carve, imports the
// coordinator-routed state records (all of them — routing already happened),
// and starts a new runtime. The old epoch's counters are gone after Resume;
// the coordinator folds Counters() before calling it.
func (h *ShardHost) Resume(spec ResumeSpec) error {
	if h.killed.Load() {
		return fmt.Errorf("engine: shard host %q is dead", h.name)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rt == nil || !h.quiesced {
		return fmt.Errorf("engine: shard host %q must be quiesced to resume", h.name)
	}
	full, err := h.factory()
	if err != nil {
		return fmt.Errorf("engine: shard host plan factory: %w", err)
	}
	if len(full.nodes) != len(h.topo.nodes) {
		return fmt.Errorf("engine: shard host plan factory is not deterministic: %d nodes, want %d", len(full.nodes), len(h.topo.nodes))
	}
	prefix, _, err := h.split.prefixPlan(full)
	if err != nil {
		return err
	}
	for _, rec := range spec.Recs {
		if rec.Node < 0 || rec.Node >= len(prefix.nodes) {
			return fmt.Errorf("engine: resume state rec node %d out of range", rec.Node)
		}
	}
	importStateRecs([]*Plan{prefix}, spec.Recs, func(any) int { return 0 })
	h.spec.Shard, h.spec.Width = spec.Shard, spec.Width
	h.drainTuples, h.drainOuts = nil, nil
	return h.startRuntime(prefix)
}

// Counters reports the current epoch's raw per-node counts (prefix node
// positions); valid mid-run and after quiesce.
func (h *ShardHost) Counters() (*HostCounters, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rt == nil {
		return nil, fmt.Errorf("engine: shard host %q has no deployment", h.name)
	}
	return h.countersLocked(), nil
}

func (h *ShardHost) countersLocked() *HostCounters {
	n := len(h.prefix.nodes)
	c := &HostCounters{
		Tuples:   make([]int64, n),
		Outs:     make([]int64, n),
		Sheds:    make([]int64, n),
		ShedUtil: make([]float64, n),
		Dropped:  int64(h.rt.Dropped()),
	}
	for j, nl := range h.rt.Stats() { // runtime ticks stay 0: raw counts
		c.Tuples[j] = nl.Tuples
		c.Outs[j] = nl.OutTuples
		c.Sheds[j] = nl.ShedTuples
		c.ShedUtil[j] = nl.ShedUtilityLost
	}
	for j := range h.drainTuples {
		c.Tuples[j] += h.drainTuples[j]
		c.Outs[j] += h.drainOuts[j]
	}
	return c
}

// Drain flushes the quiesced prefix front to back, exactly Staged's
// drainPrefix restricted to one shard: each node's flush emissions route
// through THIS shard's downstream operators (everything below a flushing
// node is stateless, so shard-local routing is exact), and the terminal
// sink outputs ride back per emission so the coordinator can interleave
// emissions across shards in (Ts, tie-key) order before delivering them.
// The returned counters are final: runtime counts plus all drain work.
func (h *ShardHost) Drain() (*HostDrain, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rt == nil {
		return nil, fmt.Errorf("engine: shard host %q has no deployment", h.name)
	}
	if err := h.quiesceLocked(); err != nil {
		return nil, err
	}
	n := len(h.prefix.nodes)
	h.drainTuples = make([]int64, n)
	h.drainOuts = make([]int64, n)
	d := &HostDrain{Nodes: make([][]DrainEmit, n)}

	var outs []SinkEmit
	var route func(eg edge, t stream.Tuple)
	route = func(eg edge, t stream.Tuple) {
		if eg.node < 0 {
			if k := len(outs) - 1; k >= 0 && outs[k].Sink == eg.sink {
				outs[k].Tuples = append(outs[k].Tuples, t)
			} else {
				outs = append(outs, SinkEmit{Sink: eg.sink, Tuples: []stream.Tuple{t}})
			}
			return
		}
		node := h.prefix.nodes[eg.node]
		h.drainTuples[eg.node]++
		var emitted []stream.Tuple
		if node.unary != nil {
			emitted = node.unary.Apply(t)
		} else if eg.side == stream.Left {
			emitted = node.binary.ApplyLeft(t)
		} else {
			emitted = node.binary.ApplyRight(t)
		}
		h.drainOuts[eg.node] += int64(len(emitted))
		for _, o := range emitted {
			for _, next := range node.out {
				route(next, o)
			}
		}
	}
	for j := 0; j < n; j++ {
		node := h.prefix.nodes[j]
		var flushed []stream.Tuple
		if node.unary != nil {
			flushed = node.unary.Flush()
		} else {
			flushed = node.binary.Flush()
		}
		h.drainOuts[j] += int64(len(flushed))
		for _, t := range flushed {
			outs = nil
			for _, next := range node.out {
				route(next, t)
			}
			d.Nodes[j] = append(d.Nodes[j], DrainEmit{Ts: t.Ts, Tie: flushTieKey(t), Outs: outs})
		}
	}
	// Results accumulated runtime-side (untapped sinks — only possible when
	// the coordinator installed no OnSink) surface as zero-node emissions so
	// nothing is lost; tapped deployments leave this empty.
	for q := range h.prefix.sinks {
		for _, t := range h.rt.Results(q) {
			d.Nodes[0] = append(d.Nodes[0], DrainEmit{Ts: t.Ts, Tie: flushTieKey(t), Outs: []SinkEmit{{Sink: q, Tuples: []stream.Tuple{t}}}})
		}
	}
	d.Counters = *h.countersLocked()
	return d, nil
}

// Stop quiesces and abandons the deployment; the host returns to idle and a
// new Start may follow. Idempotent.
func (h *ShardHost) Stop() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rt != nil && !h.quiesced {
		h.rt.Quiesce()
		h.quiesced = true
	}
	h.stopped = true
	return nil
}

// Dead reports host loss; the in-process host only dies via Kill.
func (h *ShardHost) Dead() <-chan struct{} { return h.dead }

// Kill simulates the process crashing: pushes start failing, in-flight
// exchange/sink output is swallowed (a dead process would not have framed it
// either), and Dead() fires so the coordinator's watcher recovers the shard.
// Test hook for the failure path; a clean shutdown uses Stop.
func (h *ShardHost) Kill() {
	if h.killed.Swap(true) {
		return
	}
	h.mu.Lock()
	rt, quiesced := h.rt, h.quiesced
	h.mu.Unlock()
	if rt != nil && !quiesced {
		rt.Quiesce() // taps are guarded: the drain output vanishes
		h.mu.Lock()
		h.quiesced = true
		h.mu.Unlock()
	}
	close(h.dead)
}

// mergeHostDrains interleaves per-shard drain emissions for one prefix node
// into the synchronous drain order: (Ts, tie-key) ascending, ties by shard
// index, shard-local order preserved — identical to drainPrefix's stable
// sort over its shard-ordered emission list.
func mergeHostDrains(perShard [][]DrainEmit) []DrainEmit {
	var all []DrainEmit
	for _, ems := range perShard {
		all = append(all, ems...)
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].Ts != all[b].Ts {
			return all[a].Ts < all[b].Ts
		}
		return all[a].Tie < all[b].Tie
	})
	return all
}
