package engine

import (
	"fmt"
	"sort"

	"repro/internal/staging"
	"repro/internal/stream"
)

// Engine executes a shared plan over pushed tuples and implements the
// paper's end-of-period transition phase. It also meters per-operator cost,
// producing the load estimates the admission auction consumes.
type Engine struct {
	plan *Plan

	// Connection-point state: while holding, pushed tuples are buffered
	// per-source instead of processed, exactly like Aurora's upstream
	// connection points during plan modification. The buffer is bounded by
	// heldCap so a stalled transition cannot grow memory without limit; with
	// staging enabled (EnableStaging) tuples past the cap stage to heldQ —
	// bounded memory AND no loss — instead of being dropped.
	holding     bool
	held        []heldTuple
	heldCap     int
	heldDropped int
	stager      *staging.Stager
	heldQ       *staging.Queue

	// results accumulates per-query outputs for the current period.
	results map[string][]stream.Tuple
	// delivered counts tuples routed to each sink since the last stats
	// reset, surviving Results() drains.
	delivered map[string]int64

	// stats accumulates per-node processed-tuple counts and cost.
	stats []nodeStats
	// shedder, when set, is consulted at the source-ingress edges: the
	// planned fraction of tuples is dropped (and accounted per node) before
	// the first operator runs. The synchronous engine has no channels to
	// overflow, so only planned ratio shedding applies here.
	shedder    Shedder
	shedStates []shedState
	shedOwners [][]string
	// ticks is the simulated time elapsed in the current metering period.
	ticks int64
	// dropped counts tuples pushed to sources absent from the plan.
	dropped int
	// stopped is set by Stop; subsequent pushes are rejected, matching the
	// concurrent executors' behavior under the Executor contract.
	stopped bool
}

type heldTuple struct {
	source string
	tuple  stream.Tuple
}

type nodeStats struct {
	tuples   int64
	out      int64
	cost     float64
	shed     int64
	shedUtil float64
}

// New returns an engine running the given built plan.
func New(p *Plan) (*Engine, error) {
	if !p.built {
		if err := p.Build(); err != nil {
			return nil, err
		}
	}
	return &Engine{
		plan:      p,
		results:   make(map[string][]stream.Tuple),
		delivered: make(map[string]int64),
		stats:     make([]nodeStats, len(p.nodes)),
		heldCap:   DefaultHeldCap,
	}, nil
}

// DefaultHeldCap bounds the transition-phase held-tuple buffer: enough for
// any realistic hold window, small enough that a wedged transition fails
// loudly instead of exhausting memory.
const DefaultHeldCap = 1 << 16

// SetHeldCap sets the maximum number of tuples buffered while holding;
// n <= 0 removes the bound. Tuples pushed beyond the cap are dropped with
// an error and counted by HeldDropped.
func (e *Engine) SetHeldCap(n int) { e.heldCap = n }

// HeldDropped returns the number of tuples dropped at full held buffers.
func (e *Engine) HeldDropped() int { return e.heldDropped }

// EnableStaging turns on bounded staging for the transition-phase hold
// buffer: tuples pushed past the held cap land on a staging queue — resident
// up to budget bytes, spilled to disk segments under dir beyond it — and
// replay after the in-memory held tuples at the next Transition, so a long
// hold loses nothing while memory stays bounded. Idempotent per engine; the
// staging resources release at Stop.
func (e *Engine) EnableStaging(budget int64, dir string) error {
	if e.stager != nil {
		return fmt.Errorf("engine: staging already enabled")
	}
	s, err := staging.New(budget, dir)
	if err != nil {
		return err
	}
	e.stager = s
	e.heldQ = s.NewQueue("held")
	return nil
}

// StagingStats reports the staging subsystem's counters and whether staging
// is enabled.
func (e *Engine) StagingStats() (staging.Stats, bool) {
	if e.stager == nil {
		return staging.Stats{}, false
	}
	return e.stager.Stats(), true
}

// SetShedder installs (or, with nil, removes) a load shedder. Shedding
// applies at the source-ingress edges from the next Push on; drops are
// accounted in Loads as ShedTuples / ShedUtilityLost.
func (e *Engine) SetShedder(s Shedder) {
	e.shedder = s
	e.resetShedStates()
}

// resetShedStates sizes the per-node sampler state to the current plan.
func (e *Engine) resetShedStates() {
	if e.shedder == nil {
		e.shedStates, e.shedOwners = nil, nil
		return
	}
	e.shedStates = make([]shedState, len(e.plan.nodes))
	e.shedOwners = nodeOwners(e.plan)
}

// Push injects a tuple into the named source stream. While the engine is
// holding (mid-transition), the tuple is buffered at the source's connection
// point and replayed after the plan swap. Pushing to an unknown source
// drops the tuple and returns an error.
func (e *Engine) Push(sourceName string, t stream.Tuple) error {
	if e.stopped {
		return errStopped
	}
	if t.IsPunct() {
		// Punctuation is a liveness signal for asynchronous merges; the
		// synchronous engine processes every tuple to completion before
		// Push returns, so the marker is meaningless here and is dropped
		// without metering — keeping counters identical whether or not a
		// caller punctuates.
		return nil
	}
	if e.holding {
		if e.heldCap > 0 && len(e.held) >= e.heldCap {
			if e.heldQ != nil {
				// Staging on: overflow stages (spilling past the budget)
				// instead of dropping, and replays after the held buffer at
				// the next Transition. A spill failure degrades to resident
				// staging (Queue keeps the tuple either way), so the tuple is
				// never lost.
				e.heldQ.Append(sourceName, t)
				return nil
			}
			e.heldDropped++
			return fmt.Errorf("engine: held-tuple buffer full (%d tuples) during transition; tuple dropped", e.heldCap)
		}
		e.held = append(e.held, heldTuple{sourceName, t})
		return nil
	}
	s, ok := e.plan.sources[sourceName]
	if !ok {
		e.dropped++
		return fmt.Errorf("engine: unknown source %q", sourceName)
	}
	if s.schema != nil && !s.schema.Conforms(t) {
		e.dropped++
		return fmt.Errorf("engine: tuple does not conform to source %q schema %s", sourceName, s.schema)
	}
	for _, eg := range s.out {
		if eg.node >= 0 && e.shedder != nil {
			st := &e.shedStates[eg.node]
			st.refresh(e.shedder, e.shedOwners[eg.node])
			if st.drop() {
				e.stats[eg.node].shed++
				e.stats[eg.node].shedUtil += st.util
				continue
			}
		}
		e.route(eg, t)
	}
	return nil
}

// route delivers a tuple across one edge: into a node (processing it and
// recursing on the outputs) or into a sink.
func (e *Engine) route(eg edge, t stream.Tuple) {
	if eg.node < 0 {
		e.results[eg.sink] = append(e.results[eg.sink], t)
		e.delivered[eg.sink]++
		return
	}
	n := e.plan.nodes[eg.node]
	st := &e.stats[eg.node]
	st.tuples++
	st.cost += n.cost()
	var outs []stream.Tuple
	if n.unary != nil {
		outs = n.unary.Apply(t)
	} else if eg.side == stream.Left {
		outs = n.binary.ApplyLeft(t)
	} else {
		outs = n.binary.ApplyRight(t)
	}
	st.out += int64(len(outs))
	for _, o := range outs {
		for _, next := range n.out {
			e.route(next, o)
		}
	}
}

// Advance moves the simulated clock forward; load estimates divide
// accumulated operator cost by elapsed ticks.
func (e *Engine) Advance(ticks int64) { e.ticks += ticks }

// Results returns and clears the accumulated output tuples of the named
// query.
func (e *Engine) Results(queryName string) []stream.Tuple {
	out := e.results[queryName]
	delete(e.results, queryName)
	return out
}

// PeekResults returns the accumulated outputs without clearing them.
func (e *Engine) PeekResults(queryName string) []stream.Tuple {
	return e.results[queryName]
}

// Dropped returns the number of tuples rejected at Push.
func (e *Engine) Dropped() int { return e.dropped }

// NodeLoad describes an operator's measured load over the metering period.
type NodeLoad struct {
	ID     int
	Name   string
	Tuples int64
	// OutTuples counts emitted tuples; OutTuples/Tuples is the operator's
	// measured selectivity, the quantity the CQL compiler's load estimates
	// assume and the feedback loop calibrates.
	OutTuples int64
	// Load is accumulated cost divided by elapsed ticks: the fraction of
	// one capacity unit the operator consumed per tick, the c_j of the
	// paper's model. Under shedding this is the work actually executed —
	// what a schedulability check should see.
	Load float64
	// OfferedLoad estimates what Load would have been with no shedding:
	// the cost of processed + shed tuples per tick, plus the cost of input
	// the operator lost to upstream drops (reconstructed through the plan
	// at each node's measured selectivity — exact for ingress nodes, an
	// estimate downstream, and a lower bound below a fully-shed node). It
	// equals Load when nothing was shed, and it is what a shed planner
	// (and a load-pricing auction) must consume — feeding post-shed Load
	// back would make a successful shed look like the demand disappeared.
	OfferedLoad float64
	// ShedTuples counts tuples dropped at this operator's ingress by the
	// installed Shedder — planned ratio drops plus (on the concurrent
	// executors) channel-overflow drops. Unlike Load it is a period total,
	// not divided by ticks.
	ShedTuples int64
	// ShedUtilityLost is the QoS utility those drops cost, per the shed
	// plan's per-tuple estimate; summed over a Stats slice it is the
	// utility the period sacrificed to stay schedulable.
	ShedUtilityLost float64
	Owners          []string
}

// Selectivity returns OutTuples/Tuples (1 before any input).
func (nl NodeLoad) Selectivity() float64 {
	if nl.Tuples == 0 {
		return 1
	}
	return float64(nl.OutTuples) / float64(nl.Tuples)
}

// Loads returns the measured load of every operator node, sorted by node ID.
// With zero elapsed ticks loads are reported as raw accumulated cost.
func (e *Engine) Loads() []NodeLoad {
	infos := e.plan.Nodes()
	tuples := make([]int64, len(infos))
	outs := make([]int64, len(infos))
	sheds := make([]int64, len(infos))
	for i := range e.stats {
		tuples[i] = e.stats[i].tuples
		outs[i] = e.stats[i].out
		sheds[i] = e.stats[i].shed
	}
	demand := demandIn(e.plan, tuples, outs, sheds)
	out := make([]NodeLoad, len(infos))
	for i, info := range infos {
		load := e.stats[i].cost
		// Reconstructing the demand the feed actually offered: shed and
		// upstream-lost tuples would have cost the node's per-tuple price.
		offered := demand[i] * info.Cost
		if e.ticks > 0 {
			load /= float64(e.ticks)
			offered /= float64(e.ticks)
		}
		owners := append([]string(nil), info.Owners...)
		sort.Strings(owners)
		out[i] = NodeLoad{
			ID:              info.ID,
			Name:            info.Name,
			Tuples:          e.stats[i].tuples,
			OutTuples:       e.stats[i].out,
			Load:            load,
			OfferedLoad:     offered,
			ShedTuples:      e.stats[i].shed,
			ShedUtilityLost: e.stats[i].shedUtil,
			Owners:          owners,
		}
	}
	return out
}

// Delivered returns the number of tuples routed to the named query's sink
// since the last stats reset (unaffected by Results drains).
func (e *Engine) Delivered(queryName string) int64 { return e.delivered[queryName] }

// OutputRate returns the named query's delivered tuples per tick over the
// metering period (0 before any Advance).
func (e *Engine) OutputRate(queryName string) float64 {
	if e.ticks == 0 {
		return 0
	}
	return float64(e.delivered[queryName]) / float64(e.ticks)
}

// ResetStats zeroes per-operator metering, per-sink delivery counters and
// the period clock.
func (e *Engine) ResetStats() {
	e.stats = make([]nodeStats, len(e.plan.nodes))
	e.delivered = make(map[string]int64)
	e.ticks = 0
}

// Hold closes the upstream connection points: subsequent pushes buffer
// instead of processing. Idempotent.
func (e *Engine) Hold() { e.holding = true }

// Holding reports whether the engine is currently holding input.
func (e *Engine) Holding() bool { return e.holding }

// Transition performs the paper's end-of-period plan change:
//
//  1. hold incoming tuples at the upstream connection points,
//  2. drain: flush exactly the operators that do NOT survive into the new
//     plan (state of surviving operator instances carries over untouched, so
//     continuing queries keep producing correct results),
//  3. swap the plan,
//  4. replay the held tuples into the new plan before newly arriving ones.
//
// Flush outputs of drained operators are routed through the old plan so any
// in-progress window results still reach their sinks.
func (e *Engine) Transition(newPlan *Plan) error {
	if !newPlan.built {
		if err := newPlan.Build(); err != nil {
			return err
		}
	}
	e.Hold()
	// Drain removed operators in topological (construction) order so flushed
	// tuples flow through downstream operators that are themselves about to
	// be flushed.
	for _, n := range e.plan.nodes {
		if newPlan.hasTransform(n.unary, n.binary) {
			continue
		}
		e.drainNode(n)
	}

	e.plan = newPlan
	e.stats = make([]nodeStats, len(newPlan.nodes))
	e.delivered = make(map[string]int64)
	e.ticks = 0
	// Node IDs changed with the plan; restart the shed samplers against it.
	e.resetShedStates()

	// Replay held tuples in arrival order before resuming live input: the
	// in-memory buffer first, then the staged overflow (which holds the
	// tuples that arrived after the buffer filled, so FIFO order is exact).
	held := e.held
	e.held = nil
	e.holding = false
	for _, h := range held {
		// Sources dropped from the new plan lose their held tuples, which
		// matches disconnecting the stream; ignore the error.
		_ = e.Push(h.source, h.tuple)
	}
	if e.heldQ != nil {
		for {
			r, ok := e.heldQ.Pop()
			if !ok {
				break
			}
			_ = e.Push(r.Source, r.Tuple)
		}
	}
	return nil
}

// drainNode flushes one node's open state and routes the output through the
// current plan, crediting the emissions to the node's out count so measured
// selectivity agrees with the concurrent executors.
func (e *Engine) drainNode(n *node) {
	var outs []stream.Tuple
	if n.unary != nil {
		outs = n.unary.Flush()
	} else {
		outs = n.binary.Flush()
	}
	e.stats[n.id].out += int64(len(outs))
	for _, o := range outs {
		for _, next := range n.out {
			e.route(next, o)
		}
	}
}

// Plan returns the currently-running plan.
func (e *Engine) Plan() *Plan { return e.plan }
