package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/stream"
	"repro/internal/zipf"
)

// equiv_test.go is the randomized executor-equivalence harness: it generates
// random plans (filter / map / window-agg / hash-join / union over 1–3
// sources), random batch schedules, random shard counts, random mid-run
// Reshard calls and random heartbeat cadences — sweeping operator fusion on
// and off, owned vs copied ingress, and row vs columnar batch layout on top
// — and asserts that every
// executor produces results tuple-identical (after canonical ordering) to
// the synchronous Engine oracle, with per-node tuple counters to match. It
// is the regression net for all executor work: a change that breaks
// partitioning, exchange merging, stage analysis, stats merging, reshard
// state movement, punctuation forwarding, chain fusion or batch-buffer
// recycling fails here with a reproducible case seed.
//
// Quiet exchange edges are generated deliberately: a slice of the plans
// carry a dead filter (threshold no tuple reaches — the edge below it never
// produces) and a slice of the schedules use a single key (every tuple
// hashes to one shard, starving the rest), the two shapes the punctuation
// protocol exists for. The heartbeat cadence sweeps disabled / every batch
// / sparse, so hold-until-Stop and punctuated merges are both continuously
// re-proven against the oracle.
//
// Determinism constraints built into the generator (violating any of them
// makes results legitimately racy, not a bug):
//
//   - Timestamps increase strictly across the WHOLE schedule (all sources
//     share one clock), so the sync oracle's processing order is timestamp
//     order and an exchange's Ts-merge reconstructs exactly that order.
//   - Window aggregates only consume "order-deterministic" ports: sources
//     and unary chains (filter/map/window) above them. Join and union
//     outputs interleave racily across executors — their multiset is stable
//     but their order is not, and window contents depend on order.
//   - Hash joins never evict (the join window exceeds any possible input
//     volume), so the emitted pair multiset is interleaving-independent —
//     and no join consumes a join-derived port, which would let the
//     quadratic pair volume overflow any fixed window and make eviction
//     order observable.
//   - Aggregated values are small integers, so sums are exact in float64
//     and order-insensitive.

// equivOp is one generated operator; the spec (not the instances) is what
// the plan factory replays, so every factory call yields structurally
// identical plans with fresh operator state.
type equivOp struct {
	kind     string // "filter", "map", "window", "join", "union"
	in1, in2 int    // port indices: sources first, then op outputs
	cmp      stream.CmpOp
	thresh   float64
	spec     stream.WindowSpec
	joinWin  int
}

// equivSpec is a full generated plan: sources s0..sN-1, ops, and the port
// indices that get sinks q0..qK-1.
type equivSpec struct {
	nSources int
	ops      []equivOp
	sinks    []int
}

func (es equivSpec) sourceName(i int) string { return fmt.Sprintf("s%d", i) }

// build constructs a fresh plan from the spec (the executor factory).
func (es equivSpec) build() *Plan {
	p := NewPlan()
	ports := make([]PortRef, 0, es.nSources+len(es.ops))
	for i := 0; i < es.nSources; i++ {
		p.AddSource(es.sourceName(i), testSchema)
		ports = append(ports, FromSource(es.sourceName(i)))
	}
	for i, op := range es.ops {
		name := fmt.Sprintf("%s%d", op.kind, i)
		var out PortRef
		switch op.kind {
		case "filter":
			// Structured (NewCmpFilter) rather than an opaque closure, so
			// generated stateless chains qualify for the columnar kernels the
			// columnar arms sweep; row-path semantics are identical to
			// FieldCmp(1, cmp, thresh).
			out = p.AddUnary(stream.NewCmpFilter(name, 1, stream.CmpSpec{Field: 1, Op: op.cmp, Num: op.thresh}), ports[op.in1])
		case "map":
			// Structured add-map: same row semantics as the closure form
			// ({Vals[0], Float(1)+1}) with a columnar-executable rewrite.
			out = p.AddUnary(stream.NewAddMap(name, 1, 1, 1), ports[op.in1])
		case "window":
			out = p.AddUnary(stream.MustWindowAgg(name, 1, op.spec), ports[op.in1])
		case "join":
			out = p.AddBinary(stream.NewHashJoin(name, 1, 0, 0, op.joinWin), ports[op.in1], ports[op.in2])
		case "union":
			out = p.AddBinary(stream.NewUnion(name, 1), ports[op.in1], ports[op.in2])
		default:
			panic("unknown op kind " + op.kind)
		}
		ports = append(ports, out)
	}
	for i, port := range es.sinks {
		p.AddSink(fmt.Sprintf("q%d", i), ports[port])
	}
	return p
}

// genSpec generates a random plan spec under the determinism constraints.
func genSpec(rng *rand.Rand) equivSpec {
	es := equivSpec{nSources: 1 + rng.Intn(3)}
	// det[i] reports port i delivers tuples in an order every executor
	// reproduces; binary outputs never do. joiny[i] reports port i carries
	// join-derived (quadratic-volume) tuples, which joins must not consume.
	det := make([]bool, es.nSources)
	joiny := make([]bool, es.nSources)
	for i := range det {
		det[i] = true
	}
	var detPorts []int
	for i := range det {
		detPorts = append(detPorts, i)
	}
	anyPort := func() int { return rng.Intn(es.nSources + len(es.ops)) }
	leanPort := func() int { // any port not derived from a join
		for {
			if p := anyPort(); !joiny[p] {
				return p
			}
		}
	}
	nOps := 1 + rng.Intn(6)
	for len(es.ops) < nOps {
		var op equivOp
		outDet, outJoiny := false, false
		switch k := rng.Intn(10); {
		case k < 3: // filter
			op = equivOp{
				kind:   "filter",
				in1:    anyPort(),
				cmp:    []stream.CmpOp{stream.Gt, stream.Lt, stream.Ge, stream.Ne}[rng.Intn(4)],
				thresh: float64(rng.Intn(5)),
			}
			if rng.Intn(6) == 0 {
				// Dead filter: no generated value exceeds it, so the port
				// below is a permanently quiet edge — if it feeds an
				// exchange, only punctuation (or Stop) can unblock the merge.
				op.cmp, op.thresh = stream.Gt, 99
			}
			outDet, outJoiny = det[op.in1], joiny[op.in1]
		case k < 5: // map
			op = equivOp{kind: "map", in1: anyPort()}
			outDet, outJoiny = det[op.in1], joiny[op.in1]
		case k < 8: // window: only on deterministic ports
			size := 1 + rng.Intn(4)
			groupBy := 0
			if rng.Intn(2) == 0 {
				groupBy = -1
			}
			op = equivOp{
				kind: "window",
				in1:  detPorts[rng.Intn(len(detPorts))],
				spec: stream.WindowSpec{
					Size:    size,
					Slide:   1 + rng.Intn(size),
					Agg:     stream.AggKind(rng.Intn(5)),
					Field:   1,
					GroupBy: groupBy,
				},
			}
			outDet = true
		case k < 9: // join over linear-volume ports, never evicting
			op = equivOp{kind: "join", in1: leanPort(), in2: leanPort(), joinWin: 1 << 20}
			outJoiny = true
		default: // union
			op = equivOp{kind: "union", in1: anyPort(), in2: anyPort()}
			outJoiny = joiny[op.in1] || joiny[op.in2]
		}
		es.ops = append(es.ops, op)
		det = append(det, outDet)
		joiny = append(joiny, outJoiny)
		if outDet {
			detPorts = append(detPorts, es.nSources+len(es.ops)-1)
		}
	}
	// Sink every port no operator consumes (at least the final op's port),
	// plus a random sample of interior ports, so every dataflow is
	// observable at some sink.
	consumed := make(map[int]bool)
	for _, op := range es.ops {
		consumed[op.in1] = true
		if op.kind == "join" || op.kind == "union" {
			consumed[op.in2] = true
		}
	}
	for port := 0; port < es.nSources+len(es.ops); port++ {
		leaf := !consumed[port] && port >= es.nSources
		if leaf || rng.Intn(3) == 0 {
			es.sinks = append(es.sinks, port)
		}
	}
	if len(es.sinks) == 0 {
		es.sinks = append(es.sinks, es.nSources+len(es.ops)-1)
	}
	return es
}

// equivEvent is one step of a schedule: a batch push or a reshard.
type equivEvent struct {
	src     int // -1 for a reshard event
	batch   []stream.Tuple
	reshard int
}

// genSchedule generates the tuple stream and its batching. Timestamps are
// globally strictly increasing; keys are drawn uniformly or zipf-skewed;
// values are small integers. Reshard events are spliced between batches.
func genSchedule(rng *rand.Rand, nSources int) []equivEvent {
	n := 150 + rng.Intn(250)
	keys := 3 + rng.Intn(6)
	if rng.Intn(6) == 0 {
		// Single-key schedule: every tuple hashes to one shard, so every
		// other shard is quiet on every exchange edge.
		keys = 1
	}
	var skew *zipf.Zipf
	if rng.Intn(2) == 0 {
		skew = zipf.New(rng, keys, 0.5+rng.Float64())
	}
	flushAt := 1 + rng.Intn(40)
	pending := make([][]stream.Tuple, nSources)
	var events []equivEvent
	flush := func(src int) {
		if len(pending[src]) > 0 {
			events = append(events, equivEvent{src: src, batch: pending[src]})
			pending[src] = nil
		}
	}
	for i := 0; i < n; i++ {
		src := rng.Intn(nSources)
		k := 1 + rng.Intn(keys)
		if skew != nil {
			k = skew.Draw()
		}
		pending[src] = append(pending[src], tup(int64(i+1), fmt.Sprintf("k%d", k), float64(rng.Intn(6))))
		if len(pending[src]) >= flushAt {
			flush(src)
		}
	}
	for src := range pending {
		flush(src)
	}
	// Splice 0..3 reshard events between batches (never before the first,
	// so every epoch sees some traffic in expectation).
	for r := rng.Intn(4); r > 0; r-- {
		at := 1 + rng.Intn(len(events))
		ev := equivEvent{src: -1, reshard: 1 + rng.Intn(5)}
		events = append(events[:at], append([]equivEvent{ev}, events[at:]...)...)
	}
	return events
}

// runEquivSchedule drives one executor through the schedule. Reshard events
// apply only to Resharders (the oracle ignores them); grow/shrink are
// tallied into the suite-wide coverage counters. With owned set, batches are
// copied into pool-leased buffers and pushed through PushOwnedBatch on
// executors that offer it (the copy keeps the shared schedule reusable
// across executors while still exercising the ownership-transfer ingress
// and its recycling end to end). With columnar set, batches are instead
// unboxed into pool-leased struct-of-arrays batches and pushed through
// PushOwnedColBatch, exercising the columnar ingress, partition split and
// row-boundary conversions end to end.
func runEquivSchedule(t *testing.T, ex Executor, es equivSpec, events []equivEvent, grew, shrank *int, owned, columnar bool) map[string][]string {
	t.Helper()
	for _, ev := range events {
		if ev.src < 0 {
			rs, ok := ex.(Resharder)
			if !ok {
				continue
			}
			before := rs.NumShards()
			if before == 0 {
				continue
			}
			if err := rs.Reshard(ev.reshard); err != nil {
				t.Fatalf("Reshard(%d): %v", ev.reshard, err)
			}
			ex.Stats() // shake mid-run metering across the boundary
			switch {
			case ev.reshard > before:
				*grew++
			case ev.reshard < before:
				*shrank++
			}
			continue
		}
		src := es.sourceName(ev.src)
		if op, ok := ex.(OwnedColBatchPusher); ok && columnar {
			cb := GetColBatch(testSchema, len(ev.batch))
			for _, tp := range ev.batch {
				cb.AppendTuple(tp)
			}
			if err := op.PushOwnedColBatch(src, cb); err != nil {
				t.Fatalf("push owned columnar %s: %v", src, err)
			}
			continue
		}
		if op, ok := ex.(OwnedBatchPusher); ok && owned {
			buf := GetBatch(len(ev.batch))
			buf = append(buf, ev.batch...)
			if err := op.PushOwnedBatch(src, buf); err != nil {
				t.Fatalf("push owned %s: %v", src, err)
			}
			continue
		}
		if err := ex.PushBatch(src, ev.batch); err != nil {
			t.Fatalf("push %s: %v", src, err)
		}
	}
	ex.Stop()
	out := make(map[string][]string, len(es.sinks))
	for i := range es.sinks {
		q := fmt.Sprintf("q%d", i)
		out[q] = canonTs(ex.Results(q))
	}
	return out
}

// countStats reduces a Stats slice to the per-node monotone counters the
// harness compares (loads are derived from these; shed stays zero here).
func countStats(loads []NodeLoad) [][2]int64 {
	out := make([][2]int64, len(loads))
	for i, nl := range loads {
		out[i] = [2]int64{nl.Tuples, nl.OutTuples}
	}
	return out
}

// TestEquivalenceRandomized is the harness entry point: 200 randomized
// plan/schedule/reshard cases, each executed on the sync Engine (oracle),
// the Staged executor (every plan) and the Sharded executor (fully parallel
// plans, partitioned per the stage analysis). Any divergence fails with the
// case seed for replay. The suite additionally requires that at least one
// mid-run grow and one shrink ran on each elastic executor.
func TestEquivalenceRandomized(t *testing.T) {
	const cases = 200
	const baseSeed = 1031
	coverage := map[string]*[2]int{"staged": {}, "sharded": {}}
	for c := 0; c < cases; c++ {
		seed := int64(baseSeed + c)
		rng := rand.New(rand.NewSource(seed))
		events := genScheduleForSpec(rng)
		es := events.spec
		fail := func(format string, args ...any) {
			t.Fatalf("case %d (seed %d, plan %d sources / %d ops / %d sinks): %s",
				c, seed, es.nSources, len(es.ops), len(es.sinks), fmt.Sprintf(format, args...))
		}

		oracle, err := New(es.build())
		if err != nil {
			fail("oracle: %v", err)
		}
		var g0, s0 int
		want := runEquivSchedule(t, oracle, es, events.events, &g0, &s0, false, false)
		oracle.Advance(1)
		wantCounts := countStats(oracle.Stats())

		check := func(name string, ex Executor, grew, shrank *int, owned, columnar bool) {
			got := runEquivSchedule(t, ex, es, events.events, grew, shrank, owned, columnar)
			for q, w := range want {
				if !reflect.DeepEqual(got[q], w) {
					fail("%s: query %q diverges from sync oracle (%d vs %d tuples)\n got %v\nwant %v",
						name, q, len(got[q]), len(w), got[q], w)
				}
			}
			ex.Advance(1)
			if gotCounts := countStats(ex.Stats()); !reflect.DeepEqual(gotCounts, wantCounts) {
				fail("%s: per-node {in,out} counters diverge\n got %v\nwant %v", name, gotCounts, wantCounts)
			}
		}

		shards := 1 + rng.Intn(5)
		buf := 1 + rng.Intn(64)
		// Sweep the heartbeat cadence: disabled (legacy hold-until-Stop),
		// every batch (the default), and sparse. Results and counters must
		// be oracle-identical at every setting — punctuation may only move
		// WHEN the merge releases, never WHAT reaches the global stage.
		heartbeat := []int{-1, 0, 1, 2, 5}[rng.Intn(5)]
		// Sweep operator fusion, the ingress path and the batch layout: every
		// case runs the staged executor through all four {fusion on,off} ×
		// {columnar on,off} combinations (the row arms additionally alternate
		// owned vs copied ingress), so fusion, buffer pooling, columnar
		// kernels and the row↔column boundary conversions are all
		// continuously re-proven oracle-identical — none may change results
		// or any constituent node's counters. The unfused-columnar arm is
		// deliberate: with no fused chains every columnar batch converts to
		// rows at its consumer, which is the conversion path's soak.
		// The spill arm re-runs the default arm under a deliberately tiny
		// staging budget: exchange buffering then continuously spills to disk
		// segments and replays, and the whole staging path must be invisible —
		// identical results and per-node counters, zero lost tuples.
		ownedFirst := c%2 == 0
		for _, variant := range []struct {
			name     string
			noFusion bool
			owned    bool
			columnar bool
			staging  int64 // staging byte budget; 0 = staging off
		}{
			{"staged", false, ownedFirst, false, 0},
			{"staged-unfused", true, !ownedFirst, false, 0},
			{"staged-columnar", false, true, true, 0},
			{"staged-unfused-columnar", true, true, true, 0},
			{"staged-spill", false, ownedFirst, false, 2048},
		} {
			st, err := StartStaged(func() (*Plan, error) { return es.build(), nil },
				StagedConfig{ExecConfig: ExecConfig{Shards: shards, Buf: buf, DisableFusion: variant.noFusion, Columnar: variant.columnar, StagingBudget: variant.staging}, Heartbeat: heartbeat})
			if err != nil {
				fail("StartStaged (%s): %v", variant.name, err)
			}
			cov := coverage["staged"]
			check(variant.name, st, &cov[0], &cov[1], variant.owned, variant.columnar)
			if late := st.lateArrivals.Load(); late != 0 {
				fail("%s: %d exchange tuples arrived below an emitted punctuation (heartbeat %d)", variant.name, late, heartbeat)
			}
		}

		if split, err := es.build().Analyze(); err == nil && split.FullyParallel() {
			columnar := c%2 == 1
			sh, err := StartSharded(func() (*Plan, error) { return es.build(), nil },
				ShardedConfig{ExecConfig: ExecConfig{Shards: shards, Buf: buf, DisableFusion: c%4 >= 2, Columnar: columnar}, Partition: split.Partition()})
			if err != nil {
				fail("StartSharded: %v", err)
			}
			cov := coverage["sharded"]
			check("sharded", sh, &cov[0], &cov[1], ownedFirst, columnar)
		}
	}
	for name, cov := range coverage {
		if cov[0] == 0 || cov[1] == 0 {
			t.Errorf("%s executor: %d grows / %d shrinks across the suite, want at least one of each", name, cov[0], cov[1])
		}
	}
}

// specSchedule bundles a generated plan with its schedule.
type specSchedule struct {
	spec   equivSpec
	events []equivEvent
}

// genScheduleForSpec draws a full case from one rng: plan first, then the
// schedule sized to it.
func genScheduleForSpec(rng *rand.Rand) specSchedule {
	es := genSpec(rng)
	return specSchedule{spec: es, events: genSchedule(rng, es.nSources)}
}
