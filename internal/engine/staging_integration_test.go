package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stream"
)

// stallPlan is the staging acceptance plan: a stateless filter (parallel
// stage) feeding a global ungrouped windowed sum, so every pushed tuple
// crosses an exchange edge. With heartbeats disabled the exchange merge can
// release nothing until Stop — the worst-case stall the staging budget
// exists for.
func stallPlan() *Plan {
	p := NewPlan()
	p.AddSource("s", testSchema)
	flt := p.AddUnary(stream.NewFilter("pos", 1, stream.FieldCmp(1, stream.Gt, 0)), FromSource("s"))
	agg := p.AddUnary(stream.MustWindowAgg("gsum", 2, stream.WindowSpec{
		Size: 1024, Agg: stream.AggSum, Field: 1, GroupBy: -1,
	}), flt)
	p.AddSink("gsums", agg)
	return p
}

// stallTuples: every value positive, so the whole stream reaches the
// exchange.
func stallTuples(n int) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = tup(int64(i), fmt.Sprintf("k%d", i%7), float64(1+i%9))
	}
	return out
}

// TestStagedBoundedMemoryUnderStall is the tentpole acceptance scenario: a
// staged run whose exchange edge is fully stalled (heartbeats disabled, so
// no watermark ever releases the merge) pushes a stream many times larger
// than the staging budget. The heap must stay within the budget plus a fixed
// slack — the overflow spills to disk segments — and after the stall lifts
// (Stop drains and replays everything) the results must match the sync
// oracle exactly. With STAGING_STATS_OUT set, the final staging counters are
// written there as JSON for the CI soak job.
func TestStagedBoundedMemoryUnderStall(t *testing.T) {
	const (
		n      = 200_000
		budget = 2 << 20 // 2 MiB; the stream is ~10x larger by staging accounting
		batch  = 512
	)
	tuples := stallTuples(n)

	oracle, err := New(stallPlan())
	if err != nil {
		t.Fatal(err)
	}
	want := runExecutor(t, oracle, tuples, batch, "gsums")

	st, err := StartStaged(func() (*Plan, error) { return stallPlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 2, Buf: 8, StagingBudget: budget, SpillDir: t.TempDir()}, Heartbeat: -1})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	for i := 0; i < n; i += batch {
		end := i + batch
		if end > n {
			end = n
		}
		if err := st.PushBatch("s", tuples[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	// Let the shard pipelines drain into the (stalled) exchange so the
	// measurement sees the steady stalled state, not tuples still in flight.
	SettleStats(st)
	runtime.GC()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	stats, on := st.StagingStats()
	if !on {
		t.Fatal("StagingStats reports staging off")
	}
	if stats.SpilledBytes == 0 || stats.Segments == 0 {
		t.Fatalf("stalled run did not spill: %+v", stats)
	}
	// The bound: resident staging accounting must respect the budget (plus
	// the documented replay slack of one segment chunk), and the process heap
	// delta must be nowhere near the unstaged footprint (~25 MiB of buffered
	// tuples for this stream). The slack absorbs executor structures, pooled
	// batches and accounting-vs-Go-heap overhead per resident tuple.
	const heapSlack = 14 << 20
	if delta := int64(after.HeapAlloc) - int64(before.HeapAlloc); delta > budget+heapSlack {
		t.Fatalf("stalled heap delta %d B exceeds budget %d B + slack %d B (staging failed to bound memory)", delta, budget, heapSlack)
	}

	st.Stop()
	finalStats, _ := st.StagingStats()
	if finalStats.Replays == 0 {
		t.Fatalf("drain did not replay spilled segments: %+v", finalStats)
	}
	got := st.Results("gsums")
	if gm, wm := multiset(got), multiset(want["gsums"]); len(gm) != len(wm) {
		t.Fatalf("staged results = %d tuples, oracle %d", len(gm), len(wm))
	} else {
		for i := range wm {
			if gm[i] != wm[i] {
				t.Fatalf("staged results diverge from oracle at %d: %q vs %q", i, gm[i], wm[i])
			}
		}
	}

	if out := os.Getenv("STAGING_STATS_OUT"); out != "" {
		b, err := json.MarshalIndent(finalStats, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExchangeMergeCompactsConsumedPrefix drives an exchange merge directly:
// shard 0 offers 600 tuples, shard 1 stays quiet but punctuates 450, so the
// merge releases a 450-tuple prefix and must then hold the 150-tuple tail.
// Before the compaction fix the released prefix stayed pinned in the backing
// array (head advanced, len did not shrink) until the buffer fully drained;
// now the live tail moves to a right-sized pooled buffer and the prefix's
// capacity is freed.
func TestExchangeMergeCompactsConsumedPrefix(t *testing.T) {
	p := NewPlan()
	p.AddSource("exch", testSchema)
	flt := p.AddUnary(stream.NewFilter("id", 1, func(stream.Tuple) bool { return true }), FromSource("exch"))
	p.AddSink("out", flt)
	rt, err := StartRuntime(p, RuntimeConfig{ExecConfig: ExecConfig{Buf: 8}})
	if err != nil {
		t.Fatal(err)
	}

	var late atomic.Int64
	x := newExchangeMerge("exch", 2, &late, nil)
	done := make(chan struct{})
	go func() { x.run(rt, 64); close(done) }()

	const n = 600
	const released = n * 3 / 4 // past compactAfter, and over half the buffer
	batch := getBatch(n)
	for i := 1; i <= n; i++ {
		batch = append(batch, tup(int64(i), "k", 1))
	}
	x.offer(0)(batch)
	x.mu.Lock()
	capFull := cap(x.bufs[0])
	x.mu.Unlock()
	if capFull < n {
		t.Fatalf("shard buffer cap %d after offer, want >= %d", capFull, n)
	}
	pb := getBatch(1)
	pb = append(pb, stream.NewPunctuation(int64(released)))
	x.offer(1)(pb)

	// Wait for the runtime to have received the released prefix.
	deadline := time.Now().Add(10 * time.Second)
	for {
		loads := rt.Stats()
		if len(loads) > 0 && loads[0].Tuples >= released {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("merge released %d tuples, want %d", loads[0].Tuples, released)
		}
		time.Sleep(time.Millisecond)
	}
	x.mu.Lock()
	length, head, capNow := len(x.bufs[0]), x.head[0], cap(x.bufs[0])
	x.mu.Unlock()
	if length >= n {
		t.Fatalf("consumed prefix not compacted: len %d (head %d), released tuples still pinned", length, head)
	}
	if capNow >= capFull {
		t.Fatalf("compaction freed no capacity: cap %d, was %d", capNow, capFull)
	}
	if live := length - head; live != n-released {
		t.Fatalf("live tail = %d tuples, want %d", live, n-released)
	}

	x.close()
	<-done
	rt.Stop()
	if got := len(rt.Results("out")); got != n {
		t.Fatalf("released %d tuples end to end, want %d", got, n)
	}
	if late.Load() != 0 {
		t.Fatalf("%d late arrivals", late.Load())
	}
}

// TestEngineHeldStagingNoDrops: with staging enabled, the synchronous
// engine's transition hold loses nothing past the held cap — overflow lands
// on the staging queue (spilling at this tiny budget) and replays in arrival
// order at Transition. HeldDropped must stay 0.
func TestEngineHeldStagingNoDrops(t *testing.T) {
	eng, err := New(shardablePlan())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableStaging(512, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	eng.SetHeldCap(4)
	eng.Hold()
	const n = 200
	for i := 0; i < n; i++ {
		if err := eng.Push("s", tup(int64(i), "k", 1)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if d := eng.HeldDropped(); d != 0 {
		t.Fatalf("HeldDropped = %d with staging enabled, want 0", d)
	}
	stats, on := eng.StagingStats()
	if !on || stats.SpilledTuples == 0 {
		t.Fatalf("held overflow did not spill at a 512 B budget: %+v (on=%v)", stats, on)
	}
	if err := eng.Transition(shardablePlan()); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Results("raw")); got != n {
		t.Fatalf("replayed %d tuples through the transition, want %d", got, n)
	}
}

// TestEnginePushBatchHoldAllOrNothing: a batch that would overflow the held
// cap (no staging) is rejected whole — no prefix is applied — so the HTTP
// ingress can report "batch rejected" and the client can retry safely.
func TestEnginePushBatchHoldAllOrNothing(t *testing.T) {
	eng, err := New(shardablePlan())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetHeldCap(2)
	eng.Hold()
	if err := eng.PushBatch("s", []stream.Tuple{tup(1, "k", 1), tup(2, "k", 1), tup(3, "k", 1)}); err == nil {
		t.Fatal("want whole-batch rejection at held cap")
	}
	if got := len(eng.held); got != 0 {
		t.Fatalf("rejected batch applied a %d-tuple prefix, want 0", got)
	}
	if d := eng.HeldDropped(); d != 0 {
		t.Fatalf("HeldDropped = %d for a whole-batch rejection, want 0 (caller keeps the batch)", d)
	}
	if err := eng.PushBatch("s", []stream.Tuple{tup(1, "k", 1), tup(2, "k", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Transition(shardablePlan()); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Results("raw")); got != 2 {
		t.Fatalf("replayed %d tuples, want exactly the accepted batch of 2", got)
	}
}

// TestRuntimeLossIntolerantOverflowStages: a loss-intolerant ingress (shed
// ratio 0) whose consumer is slower than the pusher used to shed overflow at
// the non-blocking edge. With staging enabled the overflow stages (spilling
// past the tiny budget) and replays in order — every tuple arrives, in
// arrival order, and nothing is counted shed.
func TestRuntimeLossIntolerantOverflowStages(t *testing.T) {
	p := NewPlan()
	p.AddSource("s", testSchema)
	var seen int
	slow := p.AddUnary(stream.NewFilter("slow", 1, func(stream.Tuple) bool {
		if seen++; seen%64 == 0 {
			time.Sleep(time.Millisecond)
		}
		return true
	}), FromSource("s"))
	p.AddSink("out", slow)

	rt, err := StartRuntime(p, RuntimeConfig{ExecConfig: ExecConfig{
		Buf:           1,
		Shedder:       &stubShedder{ratio: 0, util: 0, gen: 1},
		StagingBudget: 2048,
		SpillDir:      t.TempDir(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	tuples := stallTuples(n)
	for i := 0; i < n; i += 100 {
		if err := rt.PushBatch("s", tuples[i:i+100]); err != nil {
			t.Fatal(err)
		}
	}
	stats, on := rt.StagingStats()
	if !on {
		t.Fatal("StagingStats reports staging off")
	}
	if stats.ResidentPeakBytes == 0 {
		t.Fatalf("no ingress overflow ever staged: %+v", stats)
	}
	rt.Stop()
	got := rt.Results("out")
	if len(got) != n {
		t.Fatalf("loss-intolerant query received %d of %d tuples", len(got), n)
	}
	for i, g := range got {
		if g.Ts != int64(i) {
			t.Fatalf("tuple %d has ts %d: staged replay broke arrival order", i, g.Ts)
		}
	}
	for _, nl := range rt.Stats() {
		if nl.ShedTuples != 0 {
			t.Fatalf("node %q shed %d tuples on a ratio-0 plan", nl.Name, nl.ShedTuples)
		}
	}
}

// TestStagedCheckpointKillShardRestore is the kill-a-shard acceptance test:
// push half the stream, checkpoint, then "crash" the executor — its
// post-checkpoint flush is discarded, exactly what a kill loses — and start
// a fresh executor (at a different width) restoring from the checkpoint.
// The pre-checkpoint results plus the restored run's results must equal the
// sync oracle over the whole stream: the open window state crossed the
// crash on disk.
func TestStagedCheckpointKillShardRestore(t *testing.T) {
	mk := func(n, off int) []stream.Tuple {
		out := make([]stream.Tuple, n)
		for i := range out {
			out[i] = tup(int64(off+i), fmt.Sprintf("k%d", (off+i)%3), float64(1+(off+i)%5))
		}
		return out
	}
	b1, b2 := mk(10, 0), mk(14, 10)

	oracle, err := New(shardablePlan())
	if err != nil {
		t.Fatal(err)
	}
	want := runExecutor(t, oracle, append(append([]stream.Tuple{}, b1...), b2...), 5, "raw", "sums")

	dir := t.TempDir()
	a, err := StartStaged(func() (*Plan, error) { return shardablePlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 2, Buf: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PushBatch("s", b1); err != nil {
		t.Fatal(err)
	}
	if err := a.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	recs, err := readCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("checkpoint recorded no open keyed state")
	}
	// Everything b1 completed is in the results now (Checkpoint quiesced the
	// epoch); the open windows live only in the snapshot.
	resA := map[string][]stream.Tuple{"raw": a.Results("raw"), "sums": a.Results("sums")}
	// The "kill": Stop still flushes a's restored open state into results,
	// but nobody reads them — that flush is what the crash loses.
	a.Stop()

	b, err := StartStaged(func() (*Plan, error) { return shardablePlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 3, Buf: 4}, Restore: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := runExecutor(t, b, b2, 5, "raw", "sums")
	for _, q := range []string{"raw", "sums"} {
		merged := multiset(append(append([]stream.Tuple{}, resA[q]...), got[q]...))
		wantM := multiset(want[q])
		if len(merged) != len(wantM) {
			t.Fatalf("query %q: %d tuples across the restart, oracle has %d\n got %v\nwant %v",
				q, len(merged), len(wantM), merged, wantM)
		}
		for i := range wantM {
			if merged[i] != wantM[i] {
				t.Fatalf("query %q diverges at %d: %q vs %q", q, i, merged[i], wantM[i])
			}
		}
	}

	// A structurally different plan must be rejected, not half-imported.
	if _, err := StartStaged(func() (*Plan, error) { return stallPlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 2}, Restore: dir}); err == nil {
		t.Fatal("restore into a structurally different plan succeeded, want rejection")
	}
}
