//go:build !race

package engine

import "repro/internal/stream"

// No-op twin of the race-build pool guard (pool_guard_race.go): normal
// builds pay nothing for the single-owner enforcement. The guard calls sit
// on the pool chokepoints either way so the instrumented build needs no
// extra wiring.

const raceGuardEnabled = false

func guardGetBatch([]stream.Tuple) {}
func guardPutBatch([]stream.Tuple) {}
func guardGetCol(*stream.ColBatch) {}
func guardPutCol(*stream.ColBatch) {}
