package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stream"
)

// TestElasticSoak hammers the elastic executors with grow→shrink→grow
// cycles while producers keep pushing and a monitor keeps sampling
// SettleStats/ShardStats — the concurrency pattern dsmsd's per-period
// controller produces. CI runs this package under -race, so the test's job
// is to drive every lock-ordering path (push vs reshard vs stats vs stop)
// and then prove conservation: every pushed tuple comes out exactly once
// across all epochs.
func TestElasticSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	start := map[string]func() (Resharder, error){
		"sharded": func() (Resharder, error) {
			return StartSharded(func() (*Plan, error) { return shardablePlan(), nil },
				ShardedConfig{Shards: 3, Buf: 16})
		},
		"staged": func() (Resharder, error) {
			return StartStaged(func() (*Plan, error) { return mixedPlan(), nil },
				StagedConfig{Shards: 3, Buf: 16})
		},
	}
	for name, startEx := range start {
		t.Run(name, func(t *testing.T) {
			ex, err := startEx()
			if err != nil {
				t.Fatal(err)
			}
			const producers = 3
			const rounds = 80
			const width = 16
			var pushed atomic.Int64
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					buf := make([]stream.Tuple, 0, width)
					for r := 0; r < rounds; r++ {
						buf = buf[:0]
						for i := 0; i < width; i++ {
							n := pushed.Add(1)
							// Positive values: every tuple passes the filter,
							// so the raw sink count proves conservation.
							buf = append(buf, tup(n, fmt.Sprintf("k%d", i%7), 1))
						}
						if err := ex.PushBatch("s", buf); err != nil {
							t.Errorf("producer %d: %v", p, err)
							return
						}
					}
				}(p)
			}
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					SettleStats(ex)
					ex.ShardStats()
				}
			}()
			// Grow → shrink → grow cycles interleaved with the pushes above.
			for _, n := range []int{5, 2, 6, 1, 4, 3} {
				if err := ex.Reshard(n); err != nil {
					t.Fatalf("Reshard(%d): %v", n, err)
				}
				if got := ex.NumShards(); got != n {
					t.Fatalf("NumShards = %d, want %d", got, n)
				}
			}
			close(stop)
			wg.Wait()
			ex.Stop()
			want := pushed.Load()
			if got := int64(len(ex.Results("raw"))); got != want {
				t.Fatalf("raw results = %d, want %d (tuples lost or duplicated across reshards)", got, want)
			}
			loads := SettleStats(ex)
			if loads[0].Tuples != want {
				t.Fatalf("ingress Tuples = %d across epochs, want %d", loads[0].Tuples, want)
			}
		})
	}
}
