package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stream"
)

// punctSoakPlan is the punctuation soak's staged shape: two sources with
// their own filters, a keyed window on the first (so reshards move real
// state), and a union feeding a global size-1 count window — the union's
// output is the single exchange edge, quiet on any side whose filter passes
// nothing. The size-1 count emits exactly one tuple per exchange tuple, so
// the global sink's cardinality proves end-to-end conservation.
func punctSoakPlan() *Plan {
	p := NewPlan()
	p.AddSource("a", testSchema)
	p.AddSource("b", testSchema)
	fa := p.AddUnary(stream.NewFilter("fa", 1, stream.FieldCmp(1, stream.Gt, 0)), FromSource("a"))
	fb := p.AddUnary(stream.NewFilter("fb", 1, stream.FieldCmp(1, stream.Gt, 0)), FromSource("b"))
	p.AddSink("rawa", fa)
	ka := p.AddUnary(stream.MustWindowAgg("ka", 1, stream.WindowSpec{
		Size: 3, Agg: stream.AggCount, GroupBy: 0,
	}), fa)
	p.AddSink("keyed", ka)
	u := p.AddBinary(stream.NewUnion("u", 1), fa, fb)
	g := p.AddUnary(stream.MustWindowAgg("g", 1, stream.WindowSpec{
		Size: 1, Agg: stream.AggCount, GroupBy: -1,
	}), u)
	p.AddSink("global", g)
	return p
}

// TestPunctuationSoak races punctuation against everything that can move
// underneath it: one timestamp-ordered producer per source (the soundness
// precondition) pushing through a pass → all-quiet → pass phase cycle, a
// monitor hammering SettleStats/ShardStats, and grow→shrink→grow Reshard
// cycles retiring exchange merges mid-promise. CI runs this under -race.
// Invariants at the end: no exchange tuple ever arrived at or below its
// shard's emitted punctuation (the watermark promise held through every
// operator, epoch boundary and filter), every passing tuple reached the
// global stage exactly once, and the all-quiet phase — no shard emitting on
// the edge, heartbeats only — neither deadlocked the merge nor leaked a
// phantom tuple.
func TestPunctuationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	st, err := StartStaged(func() (*Plan, error) { return punctSoakPlan(), nil },
		StagedConfig{ExecConfig: ExecConfig{Shards: 3, Buf: 16}})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 40 // per phase; 3 phases
	const width = 16
	var pushedA, pushedB, passed atomic.Int64
	var wg sync.WaitGroup
	for p, source := range []string{"a", "b"} {
		wg.Add(1)
		go func(p int, source string, pushed *atomic.Int64) {
			defer wg.Done()
			ts := int64(p + 1) // disjoint odd/even timestamps, increasing per source
			buf := make([]stream.Tuple, 0, width)
			for r := 0; r < 3*rounds; r++ {
				val := 1.0
				if r/rounds == 1 {
					val = -1 // quiet phase: everything filtered, edge starves
				}
				buf = buf[:0]
				for i := 0; i < width; i++ {
					buf = append(buf, tup(ts, fmt.Sprintf("k%d", i%5), val))
					ts += 2
					pushed.Add(1)
					if val > 0 {
						passed.Add(1)
					}
				}
				if err := st.PushBatch(source, buf); err != nil {
					t.Errorf("producer %s: %v", source, err)
					return
				}
			}
		}(p, source, map[string]*atomic.Int64{"a": &pushedA, "b": &pushedB}[source])
	}
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			SettleStats(st)
			st.ShardStats()
		}
	}()
	for _, n := range []int{5, 2, 6, 1, 4, 3} {
		if err := st.Reshard(n); err != nil {
			t.Fatalf("Reshard(%d): %v", n, err)
		}
	}
	close(stop)
	wg.Wait()
	st.Stop()
	if late := st.lateArrivals.Load(); late != 0 {
		t.Fatalf("%d exchange tuples arrived at or below an emitted punctuation", late)
	}
	if got, want := int64(len(st.Results("global"))), passed.Load(); got != want {
		t.Fatalf("global-stage results = %d, want %d (tuples lost or duplicated across the merge)", got, want)
	}
	loads := SettleStats(st)
	if loads[0].Tuples != pushedA.Load() || loads[1].Tuples != pushedB.Load() {
		t.Fatalf("ingress counters %d/%d across epochs, want %d/%d",
			loads[0].Tuples, loads[1].Tuples, pushedA.Load(), pushedB.Load())
	}
}

// TestElasticSoak hammers the elastic executors with grow→shrink→grow
// cycles while producers keep pushing and a monitor keeps sampling
// SettleStats/ShardStats — the concurrency pattern dsmsd's per-period
// controller produces. CI runs this package under -race, so the test's job
// is to drive every lock-ordering path (push vs reshard vs stats vs stop)
// and then prove conservation: every pushed tuple comes out exactly once
// across all epochs.
func TestElasticSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	start := map[string]func() (Resharder, error){
		"sharded": func() (Resharder, error) {
			return StartSharded(func() (*Plan, error) { return shardablePlan(), nil },
				ShardedConfig{ExecConfig: ExecConfig{Shards: 3, Buf: 16}})
		},
		"staged": func() (Resharder, error) {
			return StartStaged(func() (*Plan, error) { return mixedPlan(), nil },
				StagedConfig{ExecConfig: ExecConfig{Shards: 3, Buf: 16}})
		},
	}
	for name, startEx := range start {
		t.Run(name, func(t *testing.T) {
			ex, err := startEx()
			if err != nil {
				t.Fatal(err)
			}
			const producers = 3
			const rounds = 80
			const width = 16
			var pushed atomic.Int64
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					buf := make([]stream.Tuple, 0, width)
					for r := 0; r < rounds; r++ {
						buf = buf[:0]
						for i := 0; i < width; i++ {
							n := pushed.Add(1)
							// Positive values: every tuple passes the filter,
							// so the raw sink count proves conservation.
							buf = append(buf, tup(n, fmt.Sprintf("k%d", i%7), 1))
						}
						if err := ex.PushBatch("s", buf); err != nil {
							t.Errorf("producer %d: %v", p, err)
							return
						}
					}
				}(p)
			}
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					SettleStats(ex)
					ex.ShardStats()
				}
			}()
			// Grow → shrink → grow cycles interleaved with the pushes above.
			for _, n := range []int{5, 2, 6, 1, 4, 3} {
				if err := ex.Reshard(n); err != nil {
					t.Fatalf("Reshard(%d): %v", n, err)
				}
				if got := ex.NumShards(); got != n {
					t.Fatalf("NumShards = %d, want %d", got, n)
				}
			}
			close(stop)
			wg.Wait()
			ex.Stop()
			want := pushed.Load()
			if got := int64(len(ex.Results("raw"))); got != want {
				t.Fatalf("raw results = %d, want %d (tuples lost or duplicated across reshards)", got, want)
			}
			loads := SettleStats(ex)
			if loads[0].Tuples != want {
				t.Fatalf("ingress Tuples = %d across epochs, want %d", loads[0].Tuples, want)
			}
		})
	}
}
