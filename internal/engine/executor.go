package engine

import (
	"errors"
	"sort"

	"repro/internal/stream"
)

// Executor is the uniform interface over the execution stack: the
// synchronous reference Engine, the per-operator-goroutine Runtime, and the
// hash-partitioned Sharded executor all drive a built Plan through it. The
// admission daemon programs against this interface, so the executor an
// installation runs is a deployment choice, not a code path.
//
// The unit of data movement is the batch ([]stream.Tuple): callers amortize
// per-tuple overhead by pushing many tuples per call, and the concurrent
// executors carry whole batches across their channel edges.
type Executor interface {
	// PushBatch injects a batch of tuples into the named source stream in
	// order. Implementations keep processing the rest of a batch when one
	// tuple is rejected; the returned error reports the first rejection.
	// The batch slice stays owned by the caller and may be reused once
	// PushBatch returns (implementations copy what they retain); the
	// tuples' Vals must not be mutated afterwards.
	PushBatch(source string, batch []stream.Tuple) error
	// Advance moves the executor's metering clock forward; Stats loads are
	// accumulated operator cost divided by elapsed ticks.
	Advance(ticks int64)
	// Results returns and clears the accumulated output tuples of the named
	// query. Concurrent executors only guarantee completeness after Stop.
	Results(query string) []stream.Tuple
	// Stats returns the measured per-operator loads of the current metering
	// period, sorted by node ID (merged across shards where applicable).
	Stats() []NodeLoad
	// Stop halts execution: input is drained, every operator's open state is
	// flushed toward the sinks, and the final results become available via
	// Results. Stop is idempotent.
	Stop()
}

// Compile-time checks that every executor satisfies the interface.
var (
	_ Executor = (*Engine)(nil)
	_ Executor = (*Runtime)(nil)
	_ Executor = (*Sharded)(nil)
)

// PushBatch pushes each tuple of the batch in order. Rejected tuples
// (unknown source, schema mismatch, held-buffer overflow) are counted and
// skipped; the first error is returned after the whole batch is attempted.
func (e *Engine) PushBatch(source string, batch []stream.Tuple) error {
	var first error
	for _, t := range batch {
		if err := e.Push(source, t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats implements Executor; it is Loads under the interface's name.
func (e *Engine) Stats() []NodeLoad { return e.Loads() }

// Stop flushes every operator's open state (in topological order, so flushed
// tuples flow through downstream operators) into the sinks and rejects
// further pushes, matching the concurrent executors. Idempotent. Metering
// and Results stay readable; Transition is unaffected (it manages its own
// lifecycle and never follows Stop in practice).
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	for _, n := range e.plan.nodes {
		e.drainNode(n)
	}
}

// errStopped is returned by concurrent executors on pushes after Stop.
var errStopped = errors.New("engine: executor stopped")

// sortedOwners copies and sorts an owner list for stable NodeLoad output.
func sortedOwners(owners []string) []string {
	out := append([]string(nil), owners...)
	sort.Strings(out)
	return out
}
