package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/stream"
)

// Executor is the uniform interface over the execution stack: the
// synchronous reference Engine, the per-operator-goroutine Runtime, and the
// hash-partitioned Sharded executor all drive a built Plan through it. The
// admission daemon programs against this interface, so the executor an
// installation runs is a deployment choice, not a code path.
//
// The unit of data movement is the batch ([]stream.Tuple): callers amortize
// per-tuple overhead by pushing many tuples per call, and the concurrent
// executors carry whole batches across their channel edges.
type Executor interface {
	// PushBatch injects a batch of tuples into the named source stream in
	// order. Implementations keep processing the rest of a batch when one
	// tuple is rejected; the returned error reports the first rejection.
	//
	// Batch ownership: the batch slice stays owned by the caller and may be
	// reused once PushBatch returns — implementations copy what they retain
	// (into the engine's batch pool, so the copy is an allocation-free
	// memcpy at steady state). The tuples' Vals must not be mutated
	// afterwards: value slices are shared, not copied, all the way to
	// Results. Callers that can give the slice up entirely should push
	// through OwnedBatchPusher instead and skip the copy.
	PushBatch(source string, batch []stream.Tuple) error
	// Advance moves the executor's metering clock forward; Stats loads are
	// accumulated operator cost divided by elapsed ticks.
	Advance(ticks int64)
	// Results returns and clears the accumulated output tuples of the named
	// query. Concurrent executors only guarantee completeness after Stop.
	Results(query string) []stream.Tuple
	// Stats returns the measured per-operator loads of the current metering
	// period, sorted by node ID (merged across shards where applicable).
	Stats() []NodeLoad
	// Stop halts execution: input is drained, every operator's open state is
	// flushed toward the sinks, and the final results become available via
	// Results. Stop is idempotent.
	Stop()
}

// OwnedBatchPusher is the zero-copy ingress path the concurrent executors
// offer on top of Executor. PushOwnedBatch is PushBatch with the ownership
// arrow reversed: on success (nil error) the slice and its backing array
// transfer to the executor at the call — the caller must not read, write,
// reuse or recycle it afterwards — and in exchange the defensive ingress
// copy is skipped. The buffer re-enters the engine's shared batch pool once
// its last consumer finishes, so a producer that leases buffers via
// GetBatch, fills them, and pushes them owned runs a fully recycled,
// allocation-free ingress loop.
//
// Rejection ownership: a returned error means the batch was rejected whole
// and ownership stays with the caller, who may retry, recycle (PutBatch) or
// drop it. Owned pushes are therefore all-or-nothing — an implementation
// validates before it consumes, unlike PushBatch's push-what-conforms
// contract — so an error never leaves a prefix of the batch applied, and
// the caller's recycle can never race a recycle inside the executor.
//
// The synchronous Engine does not implement it: its Push path holds no
// batch buffers, so there is no copy to skip.
type OwnedBatchPusher interface {
	PushOwnedBatch(source string, batch []stream.Tuple) error
}

// OwnedColBatchPusher is the columnar twin of OwnedBatchPusher: the caller
// hands a schema-typed struct-of-arrays batch (leased via GetColBatch) to
// the executor, transferring ownership exactly as PushOwnedBatch does — on
// success the batch must not be touched again; on error it was rejected
// whole and stays the caller's to recycle (PutColBatch) or retry. A
// columnar push skips the boxed row layout entirely on ingress: fused
// chains whose operators run columnar (ExecConfig.Columnar) execute it
// column-at-a-time, and anything that needs rows converts once at its own
// boundary. Punctuation rides out-of-band as the batch watermark
// (ColBatch.SetWatermark); validation is by physical layout, so a batch
// whose schema layout differs from the source's is rejected whole.
type OwnedColBatchPusher interface {
	PushOwnedColBatch(source string, cb *stream.ColBatch) error
}

// Compile-time checks that every executor satisfies the interfaces.
var (
	_ Executor = (*Engine)(nil)
	_ Executor = (*Runtime)(nil)
	_ Executor = (*Sharded)(nil)
	_ Executor = (*Distributed)(nil)

	_ OwnedBatchPusher = (*Runtime)(nil)
	_ OwnedBatchPusher = (*Sharded)(nil)
	_ OwnedBatchPusher = (*Staged)(nil)
	// Distributed takes owned row batches too; its columnar ingress is the
	// row boundary (sub-batches cross the wire as rows), so it deliberately
	// does NOT implement OwnedColBatchPusher — callers fall back to rows.
	_ OwnedBatchPusher = (*Distributed)(nil)

	_ OwnedColBatchPusher = (*Runtime)(nil)
	_ OwnedColBatchPusher = (*Sharded)(nil)
	_ OwnedColBatchPusher = (*Staged)(nil)
)

// PushBatch pushes each tuple of the batch in order. Rejected tuples
// (unknown source, schema mismatch) are counted and skipped; the first
// error is returned after the whole batch is attempted.
//
// Held-buffer overflow is the exception: mid-transition, a batch that would
// overflow the held cap (and has no staging queue to absorb it) is rejected
// whole, up front — a mid-batch overflow would otherwise apply a prefix and
// drop the rest, which a caller reporting "batch rejected" cannot retry
// without duplicating the applied prefix. The rejected batch stays fully
// owned by the caller; HeldDropped does not count it.
func (e *Engine) PushBatch(source string, batch []stream.Tuple) error {
	if e.holding && e.heldQ == nil && e.heldCap > 0 && len(e.held)+len(batch) > e.heldCap {
		return fmt.Errorf("engine: held-tuple buffer full (%d held, cap %d) during transition; batch of %d rejected whole", len(e.held), e.heldCap, len(batch))
	}
	var first error
	for _, t := range batch {
		if err := e.Push(source, t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats implements Executor; it is Loads under the interface's name.
func (e *Engine) Stats() []NodeLoad { return e.Loads() }

// Stop flushes every operator's open state (in topological order, so flushed
// tuples flow through downstream operators) into the sinks and rejects
// further pushes, matching the concurrent executors. Idempotent. Metering
// and Results stay readable; Transition is unaffected (it manages its own
// lifecycle and never follows Stop in practice).
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	for _, n := range e.plan.nodes {
		e.drainNode(n)
	}
	if e.stager != nil {
		e.stager.Close()
		e.stager, e.heldQ = nil, nil
	}
}

// errStopped is returned by concurrent executors on pushes after Stop.
var errStopped = errors.New("engine: executor stopped")

// SettleStats samples ex.Stats repeatedly, yielding the processor between
// samples, until three consecutive snapshots agree on every tuple counter
// (or a bounded number of yields elapses), and returns the last snapshot.
// Concurrent executors meter asynchronously: a sample taken right after a
// burst of pushes can run ahead of the operator goroutines, reading zeros
// that a Stop-less monitoring loop (mid-period shed replanning, dashboards)
// would mistake for an idle plan. On a continuously loaded executor the
// counters never settle and the latest snapshot is returned — which is then
// a current reading by construction.
func SettleStats(ex Executor) []NodeLoad {
	prev := ex.Stats()
	stable := 0
	for i := 0; i < 4096 && stable < 3; i++ {
		runtime.Gosched()
		cur := ex.Stats()
		if sameCounts(prev, cur) {
			stable++
		} else {
			stable = 0
		}
		prev = cur
	}
	return prev
}

// sameCounts reports whether two stats snapshots agree on the monotone
// tuple counters (loads are derived from them, so counter equality implies
// load equality at fixed ticks).
func sameCounts(a, b []NodeLoad) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Tuples != b[i].Tuples || a[i].OutTuples != b[i].OutTuples || a[i].ShedTuples != b[i].ShedTuples {
			return false
		}
	}
	return true
}

// sortedOwners copies and sorts an owner list for stable NodeLoad output.
func sortedOwners(owners []string) []string {
	out := append([]string(nil), owners...)
	sort.Strings(out)
	return out
}
