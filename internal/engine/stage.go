package engine

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"repro/internal/stream"
)

// This file implements the staged-dataflow analysis behind the Staged
// executor: a built Plan is split into a maximal shardable ("parallel")
// prefix and a global suffix, connected by exchange edges. The split follows
// the classic Volcano exchange design: every operator whose state is keyed
// no finer than its source's partition key runs replicated across shards;
// everything downstream of the first global (ungrouped) operator runs once,
// fed by a repartition/merge edge.
//
// The analysis reads partition-key metadata straight off the operator
// instances (stream.PartitionKeyer / BinaryPartitionKeyer / TuplePreserver),
// so plans compiled by internal/cql or hand-built against internal/stream
// carry everything the split needs.

// ExchangeName returns the reserved sink/source name carrying the output of
// plan node id across the stage boundary. Prefix plans route the node's
// cross-stage edges to a sink of this name; the suffix plan declares a
// source of the same name, fed by the executor's timestamp-ordered merge.
func ExchangeName(id int) string { return fmt.Sprintf("xchg:n%d", id) }

// StageSplit is the result of analyzing a built plan for staged sharded
// execution. Node IDs refer to the analyzed plan.
type StageSplit struct {
	plan *Plan
	// Global[i] reports that node i must run in the single global stage:
	// its state spans partition keys (an ungrouped window, an un-keyed
	// join, a key conflict) or it consumes a global node's output.
	Global []bool
	// SourceKeys maps each source to the tuple field that must partition
	// it for the parallel stage to be correct, or -1 when any consistent
	// partitioning works (only stateless or global operators consume it).
	SourceKeys map[string]int
	// Exchanges lists the parallel-stage node IDs whose output crosses into
	// the global stage, in ascending order — one merge edge each.
	Exchanges []int
	// PrefixSources are sources consumed by the parallel stage (or by
	// nothing at all); DirectSources are sources consumed by the global
	// stage. A source feeding both stages appears in both sets.
	PrefixSources map[string]bool
	DirectSources map[string]bool

	numParallel int
}

// NumParallel returns the number of parallel-stage nodes.
func (s *StageSplit) NumParallel() int { return s.numParallel }

// NumGlobal returns the number of global-stage nodes.
func (s *StageSplit) NumGlobal() int { return len(s.Global) - s.numParallel }

// FullyParallel reports that every node can run sharded — no global stage,
// no exchanges.
func (s *StageSplit) FullyParallel() bool { return s.NumGlobal() == 0 }

// String renders the split for logs: stage sizes, exchange count, and the
// inferred per-source partition keys.
func (s *StageSplit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d parallel + %d global nodes, %d exchanges", s.numParallel, s.NumGlobal(), len(s.Exchanges))
	keys := make([]string, 0, len(s.SourceKeys))
	for name, k := range s.SourceKeys {
		if k >= 0 {
			keys = append(keys, fmt.Sprintf("%s→f%d", name, k))
		}
	}
	if len(keys) > 0 {
		sort.Strings(keys)
		fmt.Fprintf(&b, ", keys %s", strings.Join(keys, " "))
	}
	return b.String()
}

// Partition returns the PartitionFunc the parallel stage requires: each
// source is hashed on its inferred key field (field 0 for unconstrained
// sources, a stable default that co-locates key-agnostic streams the same
// way the legacy Sharded executor did).
func (s *StageSplit) Partition() PartitionFunc {
	fields := make(map[string]int, len(s.SourceKeys))
	for name, k := range s.SourceKeys {
		if k < 0 {
			k = 0
		}
		fields[name] = k
	}
	return func(source string, t stream.Tuple) uint64 {
		return hashField(fields[source], t)
	}
}

// inEdge is one resolved input of a node: the producing port and the
// consumer side it feeds.
type inEdge struct {
	from PortRef
	side stream.Side
}

// inputEdges resolves every node's input edges (with sides) by scanning
// producer out-lists; build-time-only work, like inputsOf.
func (p *Plan) inputEdges() [][]inEdge {
	ins := make([][]inEdge, len(p.nodes))
	add := func(from PortRef, out []edge) {
		for _, e := range out {
			if e.node >= 0 {
				ins[e.node] = append(ins[e.node], inEdge{from, e.side})
			}
		}
	}
	for name, s := range p.sources {
		add(FromSource(name), s.out)
	}
	for _, n := range p.nodes {
		add(PortRef{node: n.id}, n.out)
	}
	for _, es := range ins {
		sort.SliceStable(es, func(i, j int) bool { return es[i].side < es[j].side })
	}
	return ins
}

// Analyze splits the plan into a maximal shardable prefix and a global
// suffix. It builds the plan if necessary. A node is parallel when its state
// is keyed no finer than the partition key of the single source its input
// traces back to through tuple-preserving operators; key requirements are
// accumulated per source in topological order, first requirement wins, and
// any node that conflicts (or whose key lineage is untraceable, or that
// declares global state, or that consumes a global node) joins the global
// stage. Transforms declaring neither a partition key nor statelessness
// (stream.StatelessOp) are treated as global — the closed default that
// keeps an undeclared stateful operator from being sharded wrong. The
// split is a prefix: global-ness propagates downstream.
func (p *Plan) Analyze() (*StageSplit, error) {
	if !p.built {
		if err := p.Build(); err != nil {
			return nil, err
		}
	}
	s := &StageSplit{
		plan:          p,
		Global:        make([]bool, len(p.nodes)),
		SourceKeys:    make(map[string]int, len(p.sources)),
		PrefixSources: make(map[string]bool),
		DirectSources: make(map[string]bool),
	}
	for name := range p.sources {
		s.SourceKeys[name] = -1
	}
	ins := p.inputEdges()

	// lineage[i] is the source whose tuples node i emits unchanged (through
	// tuple-preserving stateless operators only); "" = untraceable.
	lineage := make([]string, len(p.nodes))
	lineageOf := func(ref PortRef) string {
		if ref.IsSource() {
			return ref.source
		}
		return lineage[ref.node]
	}
	inputGlobal := func(es []inEdge) bool {
		for _, e := range es {
			if !e.from.IsSource() && s.Global[e.from.node] {
				return true
			}
		}
		return false
	}
	// claimable reports whether src can (still) be partitioned on field;
	// claim records the requirement. They are split so a node needing two
	// claims (a join) commits neither unless both hold — a half-recorded
	// claim from a node that then goes global would constrain sources no
	// parallel node actually keys on.
	claimable := func(src string, field int) bool {
		have := s.SourceKeys[src]
		return have == -1 || have == field
	}
	claim := func(src string, field int) {
		s.SourceKeys[src] = field
	}
	stateless := func(op any) bool {
		so, ok := op.(stream.StatelessOp)
		return ok && so.Stateless()
	}

	for i, n := range p.nodes {
		es := ins[i]
		global := inputGlobal(es)
		if n.unary != nil {
			if len(es) != 1 {
				return nil, fmt.Errorf("engine: node %d (%s) has %d inputs, want 1", i, n.name(), len(es))
			}
			if pk, ok := n.unary.(stream.PartitionKeyer); ok {
				if !global {
					k := pk.PartitionField()
					src := lineageOf(es[0].from)
					if k < 0 || src == "" || !claimable(src, k) {
						global = true
					} else {
						claim(src, k)
					}
				}
			} else if !stateless(n.unary) {
				// Closed default: a transform declaring neither a partition
				// key nor statelessness may hold arbitrary state — pin it to
				// the global stage rather than shard it wrong.
				global = true
			}
			s.Global[i] = global
			if !global {
				if tp, ok := n.unary.(stream.TuplePreserver); ok && tp.PreservesTuples() {
					lineage[i] = lineageOf(es[0].from)
				}
			}
			continue
		}
		// Binary: exactly one left and one right input (AddBinary wires both;
		// a self-join has the same producer on both sides).
		if len(es) != 2 || es[0].side != stream.Left || es[1].side != stream.Right {
			return nil, fmt.Errorf("engine: node %d (%s) has malformed binary inputs", i, n.name())
		}
		if pk, ok := n.binary.(stream.BinaryPartitionKeyer); ok {
			if !global {
				l, r := pk.PartitionFields()
				srcL, srcR := lineageOf(es[0].from), lineageOf(es[1].from)
				switch {
				case l < 0 || r < 0 || srcL == "" || srcR == "":
					global = true
				case srcL == srcR && l != r:
					// One source cannot be partitioned on two different fields.
					global = true
				case !claimable(srcL, l) || !claimable(srcR, r):
					global = true
				default:
					claim(srcL, l)
					claim(srcR, r)
				}
			}
		} else if !stateless(n.binary) {
			global = true // closed default, as for unary transforms
		}
		s.Global[i] = global
		if !global {
			if tp, ok := n.binary.(stream.TuplePreserver); ok && tp.PreservesTuples() {
				// A union preserves lineage only when both inputs carry the
				// same source's tuples.
				if srcL, srcR := lineageOf(es[0].from), lineageOf(es[1].from); srcL != "" && srcL == srcR {
					lineage[i] = srcL
				}
			}
		}
	}

	for i, g := range s.Global {
		if !g {
			s.numParallel++
		} else {
			// A global node consuming a parallel port creates an exchange.
			for _, e := range ins[i] {
				if e.from.IsSource() {
					s.DirectSources[e.from.source] = true
				} else if !s.Global[e.from.node] {
					s.addExchange(e.from.node)
				}
			}
		}
	}
	for name, src := range p.sources {
		used := false
		for _, e := range src.out {
			if e.node < 0 || !s.Global[e.node] {
				s.PrefixSources[name] = true
			}
			used = true
		}
		// Sources no admitted query consumes still accept pushes (and
		// discard them); route them through the parallel stage.
		if !used {
			s.PrefixSources[name] = true
		}
	}
	warnDarkPunctuation(p)
	return s, nil
}

// darkPunctWarned dedups the dark-operator warning below by concrete
// transform type: once per type per process, not once per plan analysis.
var darkPunctWarned sync.Map

// warnDarkPunctuation logs, once per concrete type, every operator that
// implements neither stream.Punctuator nor stream.BinaryPunctuator. Such a
// "dark" operator silently swallows punctuation markers — always sound (a
// dropped promise only delays liveness), but it cuts the heartbeat chain:
// every exchange merge downstream of it degrades to hold-until-Stop
// buffering for that shard, exactly the stall the staging subsystem then has
// to absorb. The warning names the operator so the omission is a visible
// choice instead of a silent one; see the punctuation contract in this
// package's doc.go.
func warnDarkPunctuation(p *Plan) {
	for _, n := range p.nodes {
		dark := false
		if n.unary != nil {
			_, ok := n.unary.(stream.Punctuator)
			dark = !ok
		} else {
			_, ok := n.binary.(stream.BinaryPunctuator)
			dark = !ok
		}
		if !dark {
			continue
		}
		key := fmt.Sprintf("%T", transformOf(n))
		if _, seen := darkPunctWarned.LoadOrStore(key, true); seen {
			continue
		}
		log.Printf("engine: operator %q (%s) declares no punctuation contract (stream.Punctuator / stream.BinaryPunctuator); it will swallow heartbeat markers, so exchange merges behind it hold tuples until Stop — implement Punctuate to restore mid-run liveness (see engine doc.go)", n.name(), key)
	}
}

// copyOwners merges src's query ownership into dst.
func copyOwners(dst, src *node) {
	for o := range src.owners {
		dst.owners[o] = true
	}
}

// addExchange records a parallel producer node crossing the boundary,
// keeping Exchanges sorted and unique.
func (s *StageSplit) addExchange(id int) {
	i := sort.SearchInts(s.Exchanges, id)
	if i < len(s.Exchanges) && s.Exchanges[i] == id {
		return
	}
	s.Exchanges = append(s.Exchanges, 0)
	copy(s.Exchanges[i+1:], s.Exchanges[i:])
	s.Exchanges[i] = id
}

// prefixPlan carves the parallel-stage plan for one shard out of full — a
// plan structurally identical to the analyzed one (typically another call of
// the same factory), whose operator instances the sub-plan reuses. Edges
// into global nodes become exchange sinks. The returned ids slice maps
// sub-plan node indices back to analyzed-plan node IDs.
func (s *StageSplit) prefixPlan(full *Plan) (*Plan, []int, error) {
	if len(full.nodes) != len(s.Global) {
		return nil, nil, fmt.Errorf("engine: stage split of %d nodes applied to plan with %d", len(s.Global), len(full.nodes))
	}
	sub := NewPlan()
	// Schemas stay nil: the Staged executor validates tuples once at its
	// own ingress (a source feeding both stages would otherwise validate —
	// and count rejects — twice).
	for name := range full.sources {
		if s.PrefixSources[name] {
			sub.AddSource(name, nil)
		}
	}
	ins := full.inputEdges()
	ports := make([]PortRef, len(full.nodes))
	var ids []int
	mapIn := func(ref PortRef) PortRef {
		if ref.IsSource() {
			return ref
		}
		return ports[ref.node]
	}
	for i, n := range full.nodes {
		if s.Global[i] {
			continue
		}
		if n.unary != nil {
			ports[i] = sub.AddUnary(n.unary, mapIn(ins[i][0].from))
		} else {
			ports[i] = sub.AddBinary(n.binary, mapIn(ins[i][0].from), mapIn(ins[i][1].from))
		}
		// Carry the full plan's ownership over: a prefix node may serve
		// queries whose sinks live in the global stage, and shed policies
		// resolve by owner.
		copyOwners(sub.nodes[len(sub.nodes)-1], n)
		ids = append(ids, i)
	}
	// Query sinks owned by the parallel stage.
	addSinks := func(from PortRef, out []edge) {
		for _, e := range out {
			if e.node < 0 {
				sub.AddSink(e.sink, mapIn(from))
			}
		}
	}
	for name, src := range full.sources {
		if s.PrefixSources[name] {
			addSinks(FromSource(name), src.out)
		}
	}
	for i, n := range full.nodes {
		if !s.Global[i] {
			addSinks(PortRef{node: i}, n.out)
		}
	}
	// Exchange sinks: one per crossing producer. Wired without AddSink so
	// the exchange pseudo-query never appears in operator owner lists —
	// owners feed shed policies and the auction, and an exchange is an
	// edge, not a query.
	for _, id := range s.Exchanges {
		name := ExchangeName(id)
		sub.sinks[name] = true
		sub.connect(ports[id], edge{node: -1, sink: name})
	}
	if err := sub.Build(); err != nil {
		return nil, nil, err
	}
	return sub, ids, nil
}

// suffixPlan carves the global-stage plan out of full, reusing its operator
// instances. Inputs arriving from the parallel stage become exchange
// sources (nil schema: their tuples were validated at the real ingress);
// sources feeding global nodes directly keep their names and schemas. The
// returned ids slice maps sub-plan node indices to analyzed-plan node IDs.
func (s *StageSplit) suffixPlan(full *Plan) (*Plan, []int, error) {
	if len(full.nodes) != len(s.Global) {
		return nil, nil, fmt.Errorf("engine: stage split of %d nodes applied to plan with %d", len(s.Global), len(full.nodes))
	}
	sub := NewPlan()
	// Nil schemas, like prefixPlan: the Staged executor validates at its
	// own ingress, and exchange tuples were validated there already.
	for name := range full.sources {
		if s.DirectSources[name] {
			sub.AddSource(name, nil)
		}
	}
	for _, id := range s.Exchanges {
		sub.AddSource(ExchangeName(id), nil)
	}
	ins := full.inputEdges()
	ports := make([]PortRef, len(full.nodes))
	var ids []int
	mapIn := func(ref PortRef) PortRef {
		if ref.IsSource() {
			return ref
		}
		if s.Global[ref.node] {
			return ports[ref.node]
		}
		return FromSource(ExchangeName(ref.node))
	}
	for i, n := range full.nodes {
		if !s.Global[i] {
			continue
		}
		if n.unary != nil {
			ports[i] = sub.AddUnary(n.unary, mapIn(ins[i][0].from))
		} else {
			ports[i] = sub.AddBinary(n.binary, mapIn(ins[i][0].from), mapIn(ins[i][1].from))
		}
		copyOwners(sub.nodes[len(sub.nodes)-1], n)
		ids = append(ids, i)
	}
	for i, n := range full.nodes {
		if !s.Global[i] {
			continue
		}
		for _, e := range n.out {
			if e.node < 0 {
				sub.AddSink(e.sink, ports[i])
			}
		}
	}
	if err := sub.Build(); err != nil {
		return nil, nil, err
	}
	return sub, ids, nil
}
