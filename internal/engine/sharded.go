package engine

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/stream"
)

// PartitionFunc maps a source tuple to a partition key; tuples with equal
// keys are guaranteed to execute on the same shard, in push order.
type PartitionFunc func(source string, t stream.Tuple) uint64

// ShardedConfig tunes StartSharded. The zero value is usable: GOMAXPROCS
// shards, a 64-batch channel buffer per edge, and partitioning by the hash
// of each tuple's first field.
type ShardedConfig struct {
	// Shards is the number of shard runtimes; <= 0 means GOMAXPROCS.
	Shards int
	// Buf is the per-edge channel buffer in batches; <= 0 means 64.
	Buf int
	// Partition routes tuples to shards. When nil, StartSharded verifies
	// via Plan.Analyze that PartitionByField(0) is correct for the plan and
	// uses it — or returns an error, instead of silently mis-partitioning a
	// plan keyed on another field.
	Partition PartitionFunc
	// Shedder, when non-nil, is installed in every shard runtime: each shard
	// sheds independently at its own ingress edges (per-shard sampler state
	// and overflow accounting against the shared plan), and Stats merges the
	// per-shard drop counts by node ID like every other counter.
	Shedder Shedder
}

// Sharded executes N independent copies of a plan, hash-partitioning source
// tuples across them and merging per-shard results and operator stats. It
// scales a continuous-query network across cores the way a distributed DSMS
// scales it across machines: each shard owns a full operator chain, so no
// operator state is shared and no locks sit on the data path.
//
// Correctness contract: results equal the synchronous Engine's up to
// ordering whenever every stateful operator's state is keyed no finer than
// the partition key — e.g. filters (stateless), per-key windowed aggregates
// and equi-joins partitioned on the group/join key. A global (ungrouped)
// window over an unpartitioned stream is NOT shardable here; the Staged
// executor runs such plans by splitting them into a shardable prefix and a
// global suffix connected by exchange edges (see StartStaged).
type Sharded struct {
	shards   []*Runtime
	part     PartitionFunc
	sources  map[string]bool
	ticks    atomic.Int64
	dropped  atomic.Int64
	stopped  atomic.Bool
	stopOnce sync.Once
}

// partitionSeed makes hash partitioning stable within a process.
var partitionSeed = maphash.MakeSeed()

// PartitionByField returns a PartitionFunc hashing the i-th field of each
// tuple (falling back to the timestamp when the field is absent). Streams
// that agree on the key field — e.g. a symbol column shared by a quote and
// a news stream — co-locate joinable tuples on one shard.
func PartitionByField(i int) PartitionFunc {
	return func(_ string, t stream.Tuple) uint64 {
		return hashField(i, t)
	}
}

// hashField hashes one tuple field with the process-stable seed, falling
// back to the timestamp for absent or unhashable fields.
func hashField(i int, t stream.Tuple) uint64 {
	if i < 0 || i >= len(t.Vals) {
		return uint64(t.Ts)
	}
	var h maphash.Hash
	h.SetSeed(partitionSeed)
	switch v := t.Vals[i].(type) {
	case string:
		h.WriteString(v)
	case int64:
		writeUint64(&h, uint64(v))
	case float64:
		writeUint64(&h, uint64(int64(v)))
	case bool:
		if v {
			h.WriteByte(1)
		} else {
			h.WriteByte(0)
		}
	default:
		return uint64(t.Ts)
	}
	return h.Sum64()
}

func writeUint64(h *maphash.Hash, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// StartSharded compiles one plan per shard via factory and starts a Runtime
// on each. The factory must return structurally identical plans with fresh
// operator instances (stats are merged by node ID), which is exactly what a
// deterministic plan builder produces.
//
// When no Partition is configured, the plan's inferred partition keys (see
// Plan.Analyze) must agree with the PartitionByField(0) default; a plan that
// is keyed on another field, or that contains global operators, is rejected
// with an error instead of silently mis-partitioning. Pass an explicit
// Partition to override the check, or use StartStaged, which derives the
// partition from the analysis and runs global operators in a merge stage.
func StartSharded(factory func() (*Plan, error), cfg ShardedConfig) (*Sharded, error) {
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	buf := cfg.Buf
	if buf <= 0 {
		buf = 64
	}
	part := cfg.Partition
	s := &Sharded{part: part, sources: make(map[string]bool)}
	var nodes int
	for i := 0; i < n; i++ {
		p, err := factory()
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("engine: sharded plan factory: %w", err)
		}
		if i == 0 && part == nil {
			split, err := p.Analyze()
			if err != nil {
				s.Stop()
				return nil, err
			}
			if !split.FullyParallel() {
				s.Stop()
				return nil, fmt.Errorf("engine: plan has %d global operator(s) and cannot run on Sharded; use StartStaged", split.NumGlobal())
			}
			for name, k := range split.SourceKeys {
				if k > 0 {
					s.Stop()
					return nil, fmt.Errorf("engine: plan partitions source %q by field %d, not the default field 0; set ShardedConfig.Partition (e.g. from StageSplit.Partition) or use StartStaged", name, k)
				}
			}
			s.part = PartitionByField(0)
		}
		rt, err := StartRuntime(p, RuntimeConfig{Buf: buf, Shedder: cfg.Shedder})
		if err != nil {
			s.Stop()
			return nil, err
		}
		if i == 0 {
			nodes = len(p.nodes)
			for name := range p.sources {
				s.sources[name] = true
			}
		} else if len(p.nodes) != nodes {
			rt.Stop()
			s.Stop()
			return nil, fmt.Errorf("engine: sharded plan factory is not deterministic: shard 0 has %d nodes, shard %d has %d", nodes, i, len(p.nodes))
		}
		s.shards = append(s.shards, rt)
	}
	return s, nil
}

// NumShards returns the number of shard runtimes.
func (s *Sharded) NumShards() int { return len(s.shards) }

// PushBatch partitions the batch across shards and forwards each sub-batch
// with one channel send per shard touched. Tuple order is preserved within
// a partition key, which is the strongest order a sharded executor can (and
// the correctness contract needs to) keep.
func (s *Sharded) PushBatch(source string, batch []stream.Tuple) error {
	if s.stopped.Load() {
		return errStopped
	}
	if !s.sources[source] {
		s.dropped.Add(int64(len(batch)))
		return fmt.Errorf("engine: unknown source %q", source)
	}
	n := uint64(len(s.shards))
	sub := make([][]stream.Tuple, len(s.shards))
	for _, t := range batch {
		i := s.part(source, t) % n
		sub[i] = append(sub[i], t)
	}
	var first error
	for i, ts := range sub {
		if len(ts) == 0 {
			continue
		}
		if err := s.shards[i].PushBatch(source, ts); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Advance moves the merged metering clock forward (shard clocks stay at
// zero so their raw costs sum cleanly).
func (s *Sharded) Advance(ticks int64) { s.ticks.Add(ticks) }

// Results concatenates the named query's outputs across shards in shard
// order and clears them. Complete only after Stop, like Runtime.
func (s *Sharded) Results(query string) []stream.Tuple {
	var out []stream.Tuple
	for _, sh := range s.shards {
		out = append(out, sh.Results(query)...)
	}
	return out
}

// Stats merges per-shard operator stats by node ID: tuple counts and costs
// add up, and the merged load divides by this executor's Advance ticks.
func (s *Sharded) Stats() []NodeLoad {
	if len(s.shards) == 0 {
		return nil
	}
	merged := s.shards[0].Stats()
	for _, sh := range s.shards[1:] {
		for i, nl := range sh.Stats() {
			merged[i].Tuples += nl.Tuples
			merged[i].OutTuples += nl.OutTuples
			merged[i].Load += nl.Load
			merged[i].OfferedLoad += nl.OfferedLoad
			merged[i].ShedTuples += nl.ShedTuples
			merged[i].ShedUtilityLost += nl.ShedUtilityLost
		}
	}
	if ticks := s.ticks.Load(); ticks > 0 {
		for i := range merged {
			merged[i].Load /= float64(ticks)
			merged[i].OfferedLoad /= float64(ticks)
		}
	}
	return merged
}

// ShardStats returns each shard's own per-node loads (node IDs are shared
// across shards), exposing skew the merged Stats sum hides: under a skewed
// key distribution one shard's Load dwarfs the others'. Ticks are this
// executor's Advance ticks, like Stats.
func (s *Sharded) ShardStats() [][]NodeLoad {
	return perShardLoads(s.shards, nil, s.ticks.Load())
}

// perShardLoads collects each shard runtime's raw stats, optionally remaps
// node IDs (ids nil keeps them), and normalizes loads by the owning
// executor's ticks — shared by Sharded.ShardStats and Staged.ShardStats.
func perShardLoads(shards []*Runtime, ids []int, ticks int64) [][]NodeLoad {
	out := make([][]NodeLoad, len(shards))
	for i, sh := range shards {
		loads := sh.Stats()
		for j := range loads {
			if ids != nil {
				loads[j].ID = ids[j]
			}
			if ticks > 0 {
				loads[j].Load /= float64(ticks)
				loads[j].OfferedLoad /= float64(ticks)
			}
		}
		out[i] = loads
	}
	return out
}

// Stop stops every shard concurrently and waits: each shard drains its
// operators, flushing open state into its result buffers. Idempotent, safe
// alongside PushBatch, and every caller returns only after the drain.
func (s *Sharded) Stop() {
	s.stopOnce.Do(func() {
		s.stopped.Store(true)
		var wg sync.WaitGroup
		for _, sh := range s.shards {
			wg.Add(1)
			go func(rt *Runtime) {
				defer wg.Done()
				rt.Stop()
			}(sh)
		}
		wg.Wait()
	})
}

// Dropped returns the number of rejected tuples across shards.
func (s *Sharded) Dropped() int {
	n := int(s.dropped.Load())
	for _, sh := range s.shards {
		n += sh.Dropped()
	}
	return n
}
