package engine

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/staging"
	"repro/internal/stream"
)

// PartitionFunc maps a source tuple to a partition key; tuples with equal
// keys are guaranteed to execute on the same shard, in push order.
type PartitionFunc func(source string, t stream.Tuple) uint64

// ShardedConfig tunes StartSharded. The zero value is usable: GOMAXPROCS
// shards, a default channel buffer per edge, and partitioning by the hash
// of each tuple's first field. The shared knobs live in the embedded
// ExecConfig; a configured Shedder is installed in every shard runtime —
// each shard sheds independently at its own ingress edges (per-shard
// sampler state and overflow accounting against the shared plan), Stats
// merges the per-shard drop counts by node ID like every other counter,
// and the shedder carries over to the runtimes a Reshard starts, so a drop
// plan survives the boundary.
type ShardedConfig struct {
	ExecConfig
	// Partition routes tuples to shards. When nil, StartSharded verifies
	// via Plan.Analyze that PartitionByField(0) is correct for the plan and
	// uses it — or returns an error, instead of silently mis-partitioning a
	// plan keyed on another field.
	Partition PartitionFunc
}

// Sharded executes N independent copies of a plan, hash-partitioning source
// tuples across them and merging per-shard results and operator stats. It
// scales a continuous-query network across cores the way a distributed DSMS
// scales it across machines: each shard owns a full operator chain, so no
// operator state is shared and no locks sit on the data path.
//
// Correctness contract: results equal the synchronous Engine's up to
// ordering whenever every stateful operator's state is keyed no finer than
// the partition key — e.g. filters (stateless), per-key windowed aggregates
// and equi-joins partitioned on the group/join key. A global (ungrouped)
// window over an unpartitioned stream is NOT shardable here; the Staged
// executor runs such plans by splitting them into a shardable prefix and a
// global suffix connected by exchange edges (see StartStaged).
//
// The shard count is elastic: Reshard(n) drains the current epoch's shards
// without flushing their keyed state, moves each key's open windows and
// join buffers to its new owner shard, and resumes on n fresh runtimes —
// see Resharder. Stats, Results and Dropped aggregate across every epoch of
// the executor's lifetime.
type Sharded struct {
	factory  func() (*Plan, error)
	buf      int
	shedder  Shedder
	noFusion bool
	columnar bool
	part     PartitionFunc
	// partField is the partition key's field index when it is known (the
	// defaulted PartitionByField(0) case) — what the columnar split hashes
	// natively. partFieldOpaque means the PartitionFunc came from the caller
	// and the key field is unknowable; columnar pushes then route boxed.
	partField int
	sources   map[string]bool
	topo      *Plan // epoch-0 shard-0 plan: the stable stats topology

	// mu guards the epoch state below: pushers and readers hold the read
	// side, Reshard and Stop swap under the write side.
	mu     sync.RWMutex
	shards []*Runtime
	plans  []*Plan
	pmap   *partitionMap
	epoch  int
	// retired accumulates quiesced epochs' raw per-node counters so Stats
	// keeps reporting the whole run after a reshard.
	retired []NodeLoad

	// carried holds result tuples drained from quiesced epochs' runtimes.
	carriedMu sync.Mutex
	carried   map[string][]stream.Tuple

	// stager, when non-nil, is the executor's shared bounded-staging
	// subsystem (ExecConfig.StagingBudget), handed to every shard runtime of
	// every epoch so the budget bounds the executor, not budget × shards.
	stager *staging.Stager

	ticks    atomic.Int64
	dropped  atomic.Int64
	stopped  atomic.Bool
	stopOnce sync.Once
}

// partitionSeed makes hash partitioning stable within a process.
var partitionSeed = maphash.MakeSeed()

// partFieldOpaque marks a caller-supplied PartitionFunc whose key field the
// executor cannot see (distinct from -1, hashField's route-by-timestamp).
const partFieldOpaque = -2

// PartitionByField returns a PartitionFunc hashing the i-th field of each
// tuple (falling back to the timestamp when the field is absent). Streams
// that agree on the key field — e.g. a symbol column shared by a quote and
// a news stream — co-locate joinable tuples on one shard.
func PartitionByField(i int) PartitionFunc {
	return func(_ string, t stream.Tuple) uint64 {
		return hashField(i, t)
	}
}

// hashField hashes one tuple field with the process-stable seed, falling
// back to the timestamp for absent or unhashable fields.
func hashField(i int, t stream.Tuple) uint64 {
	if i < 0 || i >= len(t.Vals) {
		return uint64(t.Ts)
	}
	if h, ok := hashValue(t.Vals[i]); ok {
		return h
	}
	return uint64(t.Ts)
}

func writeUint64(h *maphash.Hash, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// StartSharded compiles one plan per shard via factory and starts a Runtime
// on each. The factory must return structurally identical plans with fresh
// operator instances (stats are merged by node ID), which is exactly what a
// deterministic plan builder produces; the factory is retained to build the
// plans later Reshard calls need.
//
// When no Partition is configured, the plan's inferred partition keys (see
// Plan.Analyze) must agree with the PartitionByField(0) default; a plan that
// is keyed on another field, or that contains global operators, is rejected
// with an error instead of silently mis-partitioning. Pass an explicit
// Partition to override the check, or use StartStaged, which derives the
// partition from the analysis and runs global operators in a merge stage.
func StartSharded(factory func() (*Plan, error), cfg ShardedConfig) (*Sharded, error) {
	n, err := cfg.shardCount()
	if err != nil {
		return nil, err
	}
	buf := cfg.bufOrDefault()
	s := &Sharded{
		factory:   factory,
		buf:       buf,
		shedder:   cfg.Shedder,
		noFusion:  cfg.DisableFusion,
		columnar:  cfg.Columnar,
		part:      cfg.Partition,
		partField: partFieldOpaque,
		sources:   make(map[string]bool),
		pmap:      newPartitionMap(n),
		carried:   make(map[string][]stream.Tuple),
	}
	if cfg.StagingBudget > 0 {
		s.stager, err = staging.New(cfg.StagingBudget, cfg.SpillDir)
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		p, err := factory()
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("engine: sharded plan factory: %w", err)
		}
		if i == 0 {
			if s.part == nil {
				split, err := p.Analyze()
				if err != nil {
					s.Stop()
					return nil, err
				}
				if !split.FullyParallel() {
					s.Stop()
					return nil, fmt.Errorf("engine: plan has %d global operator(s) and cannot run on Sharded; use StartStaged", split.NumGlobal())
				}
				for name, k := range split.SourceKeys {
					if k > 0 {
						s.Stop()
						return nil, fmt.Errorf("engine: plan partitions source %q by field %d, not the default field 0; set ShardedConfig.Partition (e.g. from StageSplit.Partition) or use StartStaged", name, k)
					}
				}
				s.part = PartitionByField(0)
				s.partField = 0
			}
		}
		rt, err := StartRuntime(p, RuntimeConfig{ExecConfig: ExecConfig{Buf: buf, Shedder: cfg.Shedder, DisableFusion: cfg.DisableFusion, Columnar: cfg.Columnar}, stager: s.stager})
		if err != nil {
			s.Stop()
			return nil, err
		}
		if i == 0 {
			s.topo = p
			for name := range p.sources {
				s.sources[name] = true
			}
		} else if len(p.nodes) != len(s.topo.nodes) {
			rt.Stop()
			s.Stop()
			return nil, fmt.Errorf("engine: sharded plan factory is not deterministic: shard 0 has %d nodes, shard %d has %d", len(s.topo.nodes), i, len(p.nodes))
		}
		s.shards = append(s.shards, rt)
		s.plans = append(s.plans, p)
	}
	return s, nil
}

// NumShards returns the number of shard runtimes in the current epoch.
func (s *Sharded) NumShards() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.shards)
}

// Epoch returns the reshard epoch: 0 at start, +1 per completed Reshard.
func (s *Sharded) Epoch() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Reshard implements Resharder: it changes the shard count to n at a period
// boundary. The call drains the closing epoch's shard runtimes without
// flushing their operator state, rebalances the bucket partition map from
// the traffic observed since the last reshard (hot buckets placed first, so
// a skewed key distribution spreads as evenly as its hottest key allows),
// moves every key's open state to its new owner shard, and starts n fresh
// runtimes. Tuples pushed before Reshard returns are fully processed by the
// old epoch; tuples pushed after flow to the new one — nothing is lost or
// duplicated across the boundary. Concurrent PushBatch calls block for the
// duration of the swap.
func (s *Sharded) Reshard(n int) error {
	if err := checkReshard(n); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped.Load() {
		return errStopped
	}
	if err := reshardable(s.plans[0]); err != nil {
		return err
	}
	// Build the new epoch's plans before touching the running one: a
	// factory failure must leave the executor fully operational.
	newPlans := make([]*Plan, n)
	for i := 0; i < n; i++ {
		p, err := s.factory()
		if err != nil {
			return fmt.Errorf("engine: reshard plan factory: %w", err)
		}
		if len(p.nodes) != len(s.topo.nodes) {
			return fmt.Errorf("engine: sharded plan factory is not deterministic: topology has %d nodes, reshard plan has %d", len(s.topo.nodes), len(p.nodes))
		}
		newPlans[i] = p
	}
	s.retireEpoch()
	s.pmap.rebalance(n)
	moveKeyedState(s.plans, newPlans, stateDest(s.pmap))
	shards := make([]*Runtime, n)
	for i, p := range newPlans {
		rt, err := StartRuntime(p, RuntimeConfig{ExecConfig: ExecConfig{Buf: s.buf, Shedder: s.shedder, DisableFusion: s.noFusion, Columnar: s.columnar}, stager: s.stager})
		if err != nil {
			// Mid-swap failure: the old epoch is gone, so the executor
			// cannot keep running. Fail it loudly rather than half-swapped.
			for _, started := range shards[:i] {
				started.Stop()
			}
			s.stopped.Store(true)
			return fmt.Errorf("engine: reshard start: %w", err)
		}
		shards[i] = rt
	}
	s.shards, s.plans = shards, newPlans
	s.epoch++
	return nil
}

// retireEpoch quiesces the current shard runtimes and folds their counters,
// result buffers and drop counts into the executor-lifetime accumulators.
// Callers hold the write lock.
func (s *Sharded) retireEpoch() {
	quiesceAll(s.shards)
	for _, sh := range s.shards {
		loads := sh.Stats() // shard ticks stay 0: raw counts
		if s.retired == nil {
			s.retired = make([]NodeLoad, len(loads))
		}
		for i, nl := range loads {
			addCounters(&s.retired[i], nl)
		}
		s.dropped.Add(int64(sh.Dropped()))
	}
	s.carriedMu.Lock()
	for q := range s.topo.sinks {
		for _, sh := range s.shards {
			s.carried[q] = append(s.carried[q], sh.Results(q)...)
		}
	}
	s.carriedMu.Unlock()
}

// addCounters folds one raw per-node stat into an accumulator.
func addCounters(dst *NodeLoad, nl NodeLoad) {
	dst.Tuples += nl.Tuples
	dst.OutTuples += nl.OutTuples
	dst.Load += nl.Load
	dst.OfferedLoad += nl.OfferedLoad
	dst.ShedTuples += nl.ShedTuples
	dst.ShedUtilityLost += nl.ShedUtilityLost
}

// PushBatch partitions the batch across shards and forwards each sub-batch
// with one channel send per shard touched. Tuple order is preserved within
// a partition key, which is the strongest order a sharded executor can (and
// the correctness contract needs to) keep. Sub-batches come from the batch
// pool and transfer into the shard runtimes owned (PushOwnedBatch), so the
// partitioning adds no defensive copy and no steady-state allocation; the
// caller's own slice is never retained.
func (s *Sharded) PushBatch(source string, batch []stream.Tuple) error {
	if s.stopped.Load() {
		return errStopped
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.sources[source] {
		s.dropped.Add(int64(len(batch)))
		return fmt.Errorf("engine: unknown source %q", source)
	}
	return s.pushRowsLocked(source, batch)
}

// pushRowsLocked is PushBatch's partition-and-forward core; callers hold the
// epoch read lock and have validated the source. The caller keeps ownership
// of batch.
func (s *Sharded) pushRowsLocked(source string, batch []stream.Tuple) error {
	sub := make([][]stream.Tuple, len(s.shards))
	for _, t := range batch {
		if t.IsPunct() {
			// A punctuation marker promises the SOURCE stream has advanced,
			// so every shard's partition of it has too: broadcast.
			for i := range sub {
				if sub[i] == nil {
					sub[i] = getBatch(len(batch))
				}
				sub[i] = append(sub[i], t)
			}
			continue
		}
		i := s.pmap.route(s.part(source, t))
		if sub[i] == nil {
			sub[i] = getBatch(len(batch))
		}
		sub[i] = append(sub[i], t)
	}
	var first error
	for i, ts := range sub {
		if len(ts) == 0 {
			continue
		}
		if err := s.shards[i].PushOwnedBatch(source, ts); err != nil {
			// Rejected whole (a nonconforming tuple): ownership of the
			// sub-batch came back. Salvage the conforming remainder through
			// the copying push — it drops and counts per tuple, preserving
			// PushBatch's push-what-conforms contract — then recycle.
			if first == nil {
				first = err
			}
			s.shards[i].PushBatch(source, ts)
			putBatch(ts)
		}
	}
	return first
}

// PushOwnedBatch implements OwnedBatchPusher: identical routing to
// PushBatch, but ownership of the caller's slice transfers to the executor
// on success, which recycles it into the batch pool once the partition scan
// has copied its tuples out. An error rejects the batch whole — validation
// runs before the partition scan consumes anything — and ownership stays
// with the caller (see executor.go).
func (s *Sharded) PushOwnedBatch(source string, batch []stream.Tuple) error {
	if s.stopped.Load() {
		return errStopped
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.sources[source] {
		return fmt.Errorf("engine: unknown source %q", source)
	}
	if schema := s.topo.sources[source].schema; schema != nil {
		for _, t := range batch {
			if !t.IsPunct() && !schema.Conforms(t) {
				return fmt.Errorf("engine: tuple does not conform to source %q schema %s; owned batch rejected whole", source, schema)
			}
		}
	}
	if err := s.pushRowsLocked(source, batch); err != nil {
		// Unreachable after validation under the epoch read lock; surface
		// without recycling — leaking a buffer beats a double put.
		return err
	}
	putBatch(batch)
	return nil
}

// PushOwnedColBatch implements OwnedColBatchPusher: the owned columnar batch
// splits across shards straight off its typed key column (splitColByField —
// placement identical to the boxed route loop) and each shard's sub-batch
// pushes onward columnar, so a qualified chain behind the partition never
// sees a boxed tuple. When the partition function is caller-supplied, its key
// field is opaque and the batch demotes to rows for routing. An error
// rejects the batch whole — layout validation runs before the split
// consumes it — and ownership stays with the caller (see executor.go).
func (s *Sharded) PushOwnedColBatch(source string, cb *stream.ColBatch) error {
	if s.stopped.Load() {
		return errStopped
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.sources[source] {
		return fmt.Errorf("engine: unknown source %q", source)
	}
	if schema := s.topo.sources[source].schema; schema != nil && cb.Layout() != schema.Layout() {
		return fmt.Errorf("engine: columnar batch layout %q does not match source %q schema %s", cb.Layout(), source, schema)
	}
	if s.partField == partFieldOpaque {
		rows := colToRows(cb)
		err := s.pushRowsLocked(source, rows)
		putBatch(rows)
		return err
	}
	sub := splitColByField(s.pmap, cb, s.partField, len(s.shards))
	var first error
	for i, scb := range sub {
		if scb == nil {
			continue
		}
		if err := s.shards[i].PushOwnedColBatch(source, scb); err != nil {
			// Rejected whole: ownership of the sub-batch came back.
			putColBatch(scb)
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// Advance moves the merged metering clock forward (shard clocks stay at
// zero so their raw costs sum cleanly) and drives the partition map's
// traffic decay, so rebalances weigh recent buckets over ancient ones.
func (s *Sharded) Advance(ticks int64) {
	s.ticks.Add(ticks)
	s.pmap.observeTicks(ticks)
}

// Results concatenates the named query's outputs — tuples carried over from
// retired epochs first, then the current shards in shard order — and clears
// them. Complete only after Stop, like Runtime.
func (s *Sharded) Results(query string) []stream.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.carriedMu.Lock()
	out := s.carried[query]
	delete(s.carried, query)
	s.carriedMu.Unlock()
	for _, sh := range s.shards {
		out = append(out, sh.Results(query)...)
	}
	return out
}

// Stats merges per-shard operator stats by node ID across every epoch of
// the run: tuple counts and costs add up (retired epochs included), and the
// merged load divides by this executor's Advance ticks.
func (s *Sharded) Stats() []NodeLoad {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.shards) == 0 {
		return nil
	}
	merged := s.shards[0].Stats()
	for _, sh := range s.shards[1:] {
		for i, nl := range sh.Stats() {
			addCounters(&merged[i], nl)
		}
	}
	if s.retired != nil {
		for i := range merged {
			addCounters(&merged[i], s.retired[i])
		}
	}
	if ticks := s.ticks.Load(); ticks > 0 {
		for i := range merged {
			merged[i].Load /= float64(ticks)
			merged[i].OfferedLoad /= float64(ticks)
		}
	}
	return merged
}

// ShardStats returns each current-epoch shard's own per-node loads (node
// IDs are shared across shards), exposing skew the merged Stats sum hides:
// under a skewed key distribution one shard's Load dwarfs the others'.
// Ticks are this executor's Advance ticks, like Stats.
func (s *Sharded) ShardStats() []ShardLoad {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return perShardLoads(s.shards, nil, s.epoch, s.ticks.Load())
}

// perShardLoads collects each shard runtime's raw stats, optionally remaps
// node IDs (ids nil keeps them), normalizes loads by the owning executor's
// ticks, and tags each entry with its (epoch, shard) identity — shared by
// Sharded.ShardStats and Staged.ShardStats.
func perShardLoads(shards []*Runtime, ids []int, epoch int, ticks int64) []ShardLoad {
	out := make([]ShardLoad, len(shards))
	for i, sh := range shards {
		loads := sh.Stats()
		for j := range loads {
			if ids != nil {
				loads[j].ID = ids[j]
			}
			if ticks > 0 {
				loads[j].Load /= float64(ticks)
				loads[j].OfferedLoad /= float64(ticks)
			}
		}
		out[i] = ShardLoad{Epoch: epoch, Shard: i, Loads: loads}
	}
	return out
}

// Stop stops every shard concurrently and waits: each shard drains its
// operators, flushing open state into its result buffers. Idempotent, safe
// alongside PushBatch and Reshard, and every caller returns only after the
// drain.
func (s *Sharded) Stop() {
	s.stopOnce.Do(func() {
		s.stopped.Store(true)
		s.mu.Lock()
		shards := s.shards
		s.mu.Unlock()
		var wg sync.WaitGroup
		for _, sh := range shards {
			wg.Add(1)
			go func(rt *Runtime) {
				defer wg.Done()
				rt.Stop()
			}(sh)
		}
		wg.Wait()
		if s.stager != nil {
			s.stager.Close()
		}
	})
}

// StagingStats reports the shared staging subsystem's accounting; ok is
// false when no staging budget is configured.
func (s *Sharded) StagingStats() (staging.Stats, bool) {
	if s.stager == nil {
		return staging.Stats{}, false
	}
	return s.stager.Stats(), true
}

// Dropped returns the number of rejected tuples across shards and epochs.
func (s *Sharded) Dropped() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := int(s.dropped.Load())
	for _, sh := range s.shards {
		n += sh.Dropped()
	}
	return n
}
