//go:build race

package engine

import (
	"fmt"
	"sync"
	"unsafe"

	"repro/internal/stream"
)

// Race-build pool correctness guard. The batch pools' single-owner contract
// ("exactly one owner; putting a buffer ends your ownership") is enforced by
// convention on normal builds — a violation shows up, if at all, as data
// corruption far from the bug. Under `go test -race` this guard turns both
// violation modes into immediate, attributable failures:
//
//   - double put: returning a buffer (row batch backing array or *ColBatch)
//     that is already in the pool panics at the second put site;
//   - use after put: a returned row buffer is poisoned (every slot's Ts set
//     to poisonTs, Vals cleared) so a stale alias reads impossible data, and
//     a returned ColBatch is invalidated so any schema-dependent access
//     through a stale reference nil-panics.
//
// Tracking is keyed by identity — the backing-array pointer for row batches
// (unsafe.SliceData), the *ColBatch pointer for columnar batches — held in a
// mutexed map. Keys are real pointers, so the GC keeps tracked buffers
// alive and an address is never reused under a stale map entry; the map
// grows with the pool's lifetime working set, an acceptable cost for an
// instrumented test build. Non-race builds compile the no-op twin
// (pool_guard_norace.go) and pay nothing.

// poisonTs is the timestamp written into every slot of a row buffer at put:
// large, negative, and recognizable in a failure dump.
const poisonTs int64 = -0x5EADBEEFCAFE

const raceGuardEnabled = true

var poolGuard = struct {
	sync.Mutex
	// pooled[key] is true while the buffer sits in a pool, false while
	// leased out.
	rows map[unsafe.Pointer]bool
	cols map[*stream.ColBatch]bool
}{
	rows: make(map[unsafe.Pointer]bool),
	cols: make(map[*stream.ColBatch]bool),
}

func guardGetBatch(b []stream.Tuple) {
	if cap(b) == 0 {
		return
	}
	k := unsafe.Pointer(unsafe.SliceData(b))
	poolGuard.Lock()
	poolGuard.rows[k] = false
	poolGuard.Unlock()
}

func guardPutBatch(b []stream.Tuple) {
	if cap(b) == 0 {
		return
	}
	k := unsafe.Pointer(unsafe.SliceData(b))
	poolGuard.Lock()
	if pooled, seen := poolGuard.rows[k]; seen && pooled {
		poolGuard.Unlock()
		panic(fmt.Sprintf("engine: double put of batch buffer %p (cap %d): a pooled buffer was returned again — some path kept using a batch after handing it off", k, cap(b)))
	}
	poolGuard.rows[k] = true
	poolGuard.Unlock()
	full := b[:cap(b)]
	for i := range full {
		full[i] = stream.Tuple{Ts: poisonTs}
	}
}

func guardGetCol(cb *stream.ColBatch) {
	poolGuard.Lock()
	poolGuard.cols[cb] = false
	poolGuard.Unlock()
}

func guardPutCol(cb *stream.ColBatch) {
	poolGuard.Lock()
	if pooled, seen := poolGuard.cols[cb]; seen && pooled {
		poolGuard.Unlock()
		panic(fmt.Sprintf("engine: double put of ColBatch %p (layout %q): a pooled columnar batch was returned again — some path kept using it after handing it off", cb, cb.Layout()))
	}
	poolGuard.cols[cb] = true
	poolGuard.Unlock()
	cb.Invalidate()
}
