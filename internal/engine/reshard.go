package engine

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync/atomic"

	"repro/internal/stream"
)

// This file holds the elastic-sharding machinery shared by the Sharded and
// Staged executors: the bucketed partition map that routes keys to shards
// (and rebalances hot buckets from observed traffic), the keyed-state
// movement that carries open windows and join buffers across a reshard
// boundary, and the epoch-tagged per-shard load reporting.
//
// A reshard is a period boundary in miniature: the closing epoch's shard
// runtimes quiesce (drain in-flight batches WITHOUT flushing operator
// state), their per-key state is exported and re-imported on the key's new
// owner shard, and a fresh set of runtimes takes over — so no tuple is lost
// or duplicated and no open window restarts from scratch.

// Resharder is the elastic extension of Executor: executors that can change
// their shard count at a period boundary. Reshard(n) blocks until the swap
// is complete; tuples pushed before the call are fully owned by the old
// epoch, tuples pushed after by the new one.
type Resharder interface {
	Executor
	// Reshard drains the current epoch's shards, moves keyed operator state
	// to n fresh shard runtimes under a rebalanced partition map, and
	// resumes. n must be >= 1.
	Reshard(n int) error
	// NumShards returns the current parallel width.
	NumShards() int
	// ShardStats returns the current epoch's per-shard loads, each tagged
	// with its stable (Epoch, Shard) identity.
	ShardStats() []ShardLoad
}

// Compile-time checks that both sharded executors are elastic.
var (
	_ Resharder = (*Sharded)(nil)
	_ Resharder = (*Staged)(nil)
)

// ShardLoad is one shard runtime's per-node loads tagged with the shard's
// stable identity: the reshard epoch that created it and its index within
// that epoch. Skew logs keyed by (Epoch, Shard) stay meaningful across
// reshards — "shard 2" of epoch 0 and of epoch 1 are different runtimes
// owning different key ranges, and a bare slice index conflates them.
type ShardLoad struct {
	Epoch int
	Shard int
	Loads []NodeLoad
}

// partitionBuckets is the virtual-bucket count of the partition map. Keys
// hash into buckets, buckets map to shards; 256 buckets keep the map small
// while leaving enough granularity to isolate a hot key on its own shard.
const partitionBuckets = 256

// partitionDecayTicks is the metering-tick interval of the traffic decay:
// every time this many Advance ticks accumulate, every bucket counter halves.
// The counters thus approximate exponentially-weighted recent traffic rather
// than an all-time sum, so a rebalance long after a hot spell places buckets
// by where the heat is now, not where it once was.
const partitionDecayTicks = 256

// partitionMap routes partition-key hashes to shards through virtual
// buckets and counts per-bucket traffic, so a reshard can place observed-hot
// buckets first (LPT-style) instead of striping blindly. The owner table is
// replaced wholesale under the owning executor's write lock; the traffic
// counters are atomic because concurrent pushers route under the read lock,
// and decay on the owning executor's metering clock (see observeTicks).
type partitionMap struct {
	owner  []int32
	counts []atomic.Int64
	// tickAcc accumulates Advance ticks toward the next decay step.
	tickAcc atomic.Int64
}

// newPartitionMap returns a map striping buckets across shards round-robin.
func newPartitionMap(shards int) *partitionMap {
	pm := &partitionMap{
		owner:  make([]int32, partitionBuckets),
		counts: make([]atomic.Int64, partitionBuckets),
	}
	for b := range pm.owner {
		pm.owner[b] = int32(b % shards)
	}
	return pm
}

// route returns the hash's owner shard and records the traffic.
func (pm *partitionMap) route(h uint64) int {
	b := h % partitionBuckets
	pm.counts[b].Add(1)
	return int(pm.owner[b])
}

// shardOf returns the hash's owner shard without recording traffic (used
// when routing exported state, which is not feed traffic).
func (pm *partitionMap) shardOf(h uint64) int {
	return int(pm.owner[h%partitionBuckets])
}

// observeTicks advances the traffic decay clock by the executor's metering
// ticks: once partitionDecayTicks have accumulated, every bucket counter
// halves (repeatedly, if the clock jumped several intervals at once). Called
// from the sharded executors' Advance; CAS loops keep it lock-free against
// concurrent route() increments — a lost-in-flight increment during the halve
// is noise well under the decay's own resolution.
func (pm *partitionMap) observeTicks(ticks int64) {
	if ticks <= 0 {
		return
	}
	acc := pm.tickAcc.Add(ticks)
	for acc >= partitionDecayTicks {
		if !pm.tickAcc.CompareAndSwap(acc, acc-partitionDecayTicks) {
			acc = pm.tickAcc.Load()
			continue
		}
		acc -= partitionDecayTicks
		for b := range pm.counts {
			for {
				c := pm.counts[b].Load()
				if pm.counts[b].CompareAndSwap(c, c/2) {
					break
				}
			}
		}
	}
}

// rebalance rebuilds the owner table for n shards from the traffic observed
// since the last rebalance, then resets the counters. Buckets are placed
// heaviest-first onto the least-loaded shard (longest-processing-time
// scheduling), so a single hot bucket ends up isolated while cold buckets
// pack around it; ties break deterministically by bucket index. Every
// bucket carries a +1 floor so unobserved buckets still spread evenly.
func (pm *partitionMap) rebalance(n int) {
	type bucket struct {
		b int
		c int64
	}
	buckets := make([]bucket, partitionBuckets)
	for b := range buckets {
		buckets[b] = bucket{b, pm.counts[b].Swap(0) + 1}
	}
	sort.SliceStable(buckets, func(i, j int) bool { return buckets[i].c > buckets[j].c })
	loads := make([]int64, n)
	owner := make([]int32, partitionBuckets)
	for _, bk := range buckets {
		min := 0
		for s := 1; s < n; s++ {
			if loads[s] < loads[min] {
				min = s
			}
		}
		owner[bk.b] = int32(min)
		loads[min] += bk.c
	}
	pm.owner = owner
}

// hashValue hashes one partition-key value with the process-stable seed;
// ok is false for kinds the partitioner cannot hash. It is the value-level
// core of hashField, reused to route exported keyed state: a window group
// keyed on field i holds the key VALUE of that field, so hashing the value
// lands the state on the same shard its future tuples route to.
func hashValue(v any) (h64 uint64, ok bool) {
	switch v := v.(type) {
	case string:
		return hashString(v), true
	case int64:
		return hashInt(v), true
	case float64:
		return hashFloat(v), true
	case bool:
		return hashBool(v), true
	}
	return 0, false
}

// The per-kind hash cores below are shared between the boxed path (hashValue
// above) and the columnar split (splitColByField), which reads values out of
// typed columns without ever boxing them. Keeping one implementation per kind
// is a correctness requirement, not tidiness: keyed-state movement
// (stateDest) hashes exported key VALUES through hashValue, so a columnar
// tuple must land on exactly the shard its boxed twin would.

func hashString(v string) uint64 {
	var h maphash.Hash
	h.SetSeed(partitionSeed)
	h.WriteString(v)
	return h.Sum64()
}

func hashInt(v int64) uint64 {
	var h maphash.Hash
	h.SetSeed(partitionSeed)
	writeUint64(&h, uint64(v))
	return h.Sum64()
}

// hashFloat truncates like the boxed float64 case always has: equal-keyed
// tuples agree on a shard, which is all partitioning needs.
func hashFloat(v float64) uint64 { return hashInt(int64(v)) }

func hashBool(v bool) uint64 {
	var h maphash.Hash
	h.SetSeed(partitionSeed)
	if v {
		h.WriteByte(1)
	} else {
		h.WriteByte(0)
	}
	return h.Sum64()
}

// splitColByField partitions an owned columnar batch across shards by the
// hash of one field, reading the key straight out of its typed column — the
// columnar twin of the sharded executors' per-tuple route loop, producing
// shard-identical placement (see the hash cores above). Absent or unhashable
// key fields fall back to the timestamp, like hashField. The batch watermark
// broadcasts to every shard (a source-stream promise covers every partition
// of it), mirroring the row path's punctuation broadcast. The input batch is
// consumed; the returned per-shard batches (nil where a shard gets nothing)
// are owned by the caller.
func splitColByField(pm *partitionMap, cb *stream.ColBatch, field int, shards int) []*stream.ColBatch {
	sub := make([]*stream.ColBatch, shards)
	schema := cb.Schema()
	n := cb.Len()
	lease := func(i int) *stream.ColBatch {
		if sub[i] == nil {
			sub[i] = getColBatch(schema, n)
		}
		return sub[i]
	}
	if field < 0 || field >= schema.NumFields() {
		ts := cb.Ts()
		for r := 0; r < n; r++ {
			lease(pm.route(uint64(ts[r]))).AppendRowFrom(cb, r)
		}
	} else {
		switch schema.Field(field).Kind {
		case stream.KindInt:
			col := cb.Ints(field)
			for r := 0; r < n; r++ {
				lease(pm.route(hashInt(col[r]))).AppendRowFrom(cb, r)
			}
		case stream.KindFloat:
			col := cb.Floats(field)
			for r := 0; r < n; r++ {
				lease(pm.route(hashFloat(col[r]))).AppendRowFrom(cb, r)
			}
		case stream.KindString:
			col := cb.Strs(field)
			for r := 0; r < n; r++ {
				lease(pm.route(hashString(col[r]))).AppendRowFrom(cb, r)
			}
		case stream.KindBool:
			col := cb.Bools(field)
			for r := 0; r < n; r++ {
				lease(pm.route(hashBool(col[r]))).AppendRowFrom(cb, r)
			}
		}
	}
	if wm, ok := cb.Watermark(); ok {
		for i := 0; i < shards; i++ {
			lease(i).SetWatermark(wm)
		}
	}
	putColBatch(cb)
	return sub
}

// transformOf returns a node's operator instance, whichever arity it has.
func transformOf(n *node) any {
	if n.unary != nil {
		return n.unary
	}
	return n.binary
}

// reshardable reports whether every keyed-stateful operator in the plan can
// move its state: operators declaring a partition key must also implement
// stream.KeyedStateMover, or a reshard would silently drop their open
// windows. Checked before any teardown so a failure leaves the running
// epoch untouched. Stateless operators and global-keyed (-1) operators are
// exempt — the former hold nothing, the latter never run in a shard stage.
func reshardable(p *Plan) error {
	for _, n := range p.nodes {
		op := transformOf(n)
		keyed := false
		if pk, ok := op.(stream.PartitionKeyer); ok {
			keyed = pk.PartitionField() >= 0
		} else if bk, ok := op.(stream.BinaryPartitionKeyer); ok {
			l, r := bk.PartitionFields()
			keyed = l >= 0 && r >= 0
		}
		if !keyed {
			continue
		}
		if _, ok := op.(stream.KeyedStateMover); !ok {
			return fmt.Errorf("engine: cannot reshard: operator %q holds keyed state but does not implement stream.KeyedStateMover", n.name())
		}
	}
	return nil
}

// moveKeyedState carries every KeyedStateMover node's per-key state from
// the quiesced epoch's plans into the new epoch's plans (both structurally
// identical, node-by-node): each exported key is imported into the same
// node position on the shard dest assigns it. Keys are imported in sorted
// render order so the receiving operators' first-seen (flush) order is
// deterministic regardless of export map iteration.
func moveKeyedState(oldPlans, newPlans []*Plan, dest func(key any) int) {
	if len(oldPlans) == 0 || len(newPlans) == 0 {
		return
	}
	type keyedState struct {
		key   any
		state any
	}
	for j := range newPlans[0].nodes {
		var moved []keyedState
		for _, p := range oldPlans {
			mover, ok := transformOf(p.nodes[j]).(stream.KeyedStateMover)
			if !ok {
				continue
			}
			for key, st := range mover.ExportKeyedState() {
				moved = append(moved, keyedState{key, st})
			}
		}
		if len(moved) == 0 {
			continue
		}
		sort.Slice(moved, func(a, b int) bool {
			return fmt.Sprint(moved[a].key) < fmt.Sprint(moved[b].key)
		})
		for _, m := range moved {
			tgt := transformOf(newPlans[dest(m.key)].nodes[j]).(stream.KeyedStateMover)
			tgt.ImportKeyedState(m.key, m.state)
		}
	}
}

// stateDest returns the destination function moveKeyedState routes exported
// keys through: the key value hashes like the tuple field it came from, so
// state and future tuples agree on the owner shard. Unhashable keys (which
// hashField routed by timestamp — tuples of such a key were never
// co-located to begin with) deterministically land on shard 0.
func stateDest(pm *partitionMap) func(key any) int {
	return func(key any) int {
		h, ok := hashValue(key)
		if !ok {
			return 0
		}
		return pm.shardOf(h)
	}
}

// quiesceAll quiesces the runtimes concurrently and waits for the drain.
func quiesceAll(shards []*Runtime) {
	done := make(chan struct{})
	for _, sh := range shards {
		go func(rt *Runtime) {
			rt.Quiesce()
			done <- struct{}{}
		}(sh)
	}
	for range shards {
		<-done
	}
}

// checkShards validates a configured shard count: 0 delegates to the
// GOMAXPROCS default, negatives are rejected up front with a clear error
// instead of surfacing later as a slice-bounds or modulo-by-zero panic, and
// counts beyond the partition map's bucket granularity are rejected because
// the extra shards could never receive a tuple.
func checkShards(n int) error {
	if n < 0 {
		return fmt.Errorf("engine: shard count %d is negative (use 0 for the GOMAXPROCS default)", n)
	}
	if n > partitionBuckets {
		return fmt.Errorf("engine: shard count %d exceeds the %d-bucket partition granularity; shards past it would never receive a tuple", n, partitionBuckets)
	}
	return nil
}

// checkReshard validates a reshard target, with the same bucket bound.
func checkReshard(n int) error {
	if n < 1 {
		return fmt.Errorf("engine: cannot reshard to %d shards; the target must be >= 1", n)
	}
	if n > partitionBuckets {
		return fmt.Errorf("engine: cannot reshard to %d shards; the %d-bucket partition map caps parallelism there", n, partitionBuckets)
	}
	return nil
}

// clampShards bounds a defaulted (GOMAXPROCS-derived) shard count to the
// partition granularity so very large machines don't start idle shards.
func clampShards(n int) int {
	if n > partitionBuckets {
		return partitionBuckets
	}
	return n
}
