package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/staging"
	"repro/internal/stream"
)

// Runtime executes a built plan concurrently: one goroutine per operator
// node, channels as dataflow edges — the natural Go rendering of a
// continuous-query network. Each stateful transform is owned by exactly one
// goroutine, so no locking is needed inside operators.
//
// Dataflow edges carry whole batches ([]stream.Tuple) per channel send, so
// the per-send synchronization cost is amortized over the batch: a source
// batch stays a batch through the routers, and each operator accumulates its
// outputs for a batch into one downstream send.
//
// Two hot-path optimizations sit on top of that (see doc.go's hot-path
// section): maximal stateless unary chains are fused into one goroutine each
// (see fuse.go) so a filter→map→filter prefix costs one channel hop and one
// stats flush per batch instead of three, and every batch buffer on the data
// path — ingress copies, operator outputs, fan-out clones — cycles through a
// sync.Pool (pool.go), recycled where its last owner consumes it, so steady-
// state execution allocates no batch slices. PushOwnedBatch extends the
// cycle to the caller: a pushed buffer whose ownership transfers skips the
// ingress copy entirely.
//
// The synchronous Engine remains the reference implementation (deterministic
// interleaving, transition phase); Runtime is the throughput-oriented
// executor for a fixed plan. Results are identical up to tuple interleaving
// across independent paths.
type Runtime struct {
	plan *Plan
	// srcIn carries ingress batches — boxed rows or columnar — from the push
	// methods into the per-source router.
	srcIn map[string]chan srcMsg
	// taps and colTaps hold the streaming sink consumers from RuntimeConfig;
	// read-only after start.
	taps    map[string]func([]stream.Tuple)
	colTaps map[string]func(*stream.ColBatch)

	mu      sync.Mutex
	results map[string][]stream.Tuple
	dropped int

	// stats holds per-node counters, written only by the owning operator
	// goroutine and read via atomics so Stats is safe mid-run.
	stats []runtimeCounters
	ticks atomic.Int64

	// stager, when non-nil, backs the loss-intolerant ingress overflow
	// lanes; ownStager marks a runtime-created (vs executor-shared) one,
	// closed at Stop.
	stager     *staging.Stager
	ownStager  bool
	stagerOnce sync.Once

	wg sync.WaitGroup
	// stopMu serializes Stop's channel closes against in-flight PushBatch
	// sends: pushers hold the read side across the send, so Stop cannot
	// close a source channel under a blocked sender (send-on-closed panic).
	stopMu sync.RWMutex
	closed bool
	// noFlush, set by Quiesce before the channels close, makes the operator
	// goroutines exit without flushing open state — the state stays inside
	// the plan's operator instances for an elastic reshard to move.
	noFlush atomic.Bool
}

// runtimeCounters meters one node. Cost is derived at read time as
// tuples × per-tuple cost (operator costs are constants). shed counts
// tuples dropped at the node's ingress — planned ratio drops and
// channel-overflow drops alike — and shedUtil the QoS utility those drops
// cost, per the shed plan's estimate.
type runtimeCounters struct {
	tuples   atomic.Int64
	out      atomic.Int64
	shed     atomic.Int64
	shedUtil atomicFloat64
}

// srcMsg is one ingress send: exactly one of rows / cols is set, depending on
// which push path produced it. Both layouts flow through the same source
// channel so ordering across mixed pushes is preserved.
type srcMsg struct {
	rows []stream.Tuple
	cols *stream.ColBatch
}

// sidedBatch tags one dataflow-edge batch with the binary-operator input it
// belongs to. Exactly one of ts / cols is set: edges carry whichever layout
// the producer emitted, and every consumer accepts both — columnar-capable
// fused chains run cols natively, everything else converts to rows at its
// own loop top (the row↔column boundary rule from doc.go).
type sidedBatch struct {
	ts   []stream.Tuple
	cols *stream.ColBatch
	side stream.Side
}

// DefaultRuntimeBuf is the per-edge channel buffer (in batches) used when a
// RuntimeConfig leaves Buf unset, matching ShardedConfig's default.
const DefaultRuntimeBuf = 64

// RuntimeConfig tunes StartRuntime. The zero value is usable: a
// DefaultRuntimeBuf-batch buffer per edge and no load shedding. The shared
// knobs (Buf, Shedder, DisableFusion; Shards is ignored here) live in the
// embedded ExecConfig. The runtime's shedding sits at the source-ingress
// edges: the planned ratio of tuples is dropped before the first operator,
// and ingress channel sends become non-blocking — a full ingress channel
// drops the batch (counted per node as shed overflow) instead of stalling
// the source. Interior edges keep blocking sends, so a slow interior
// operator backs pressure up to the ingress where the shedder absorbs it;
// sources never stall.
type RuntimeConfig struct {
	ExecConfig
	// NoShedSources exempts the named sources from the Shedder: their
	// ingress edges keep the lossless blocking path. The staged executor
	// uses it for exchange sources — interior edges of the staged graph,
	// where shedding already happened at the true ingress.
	NoShedSources map[string]bool
	// Taps maps sink names to streaming batch consumers: a tapped sink's
	// batches are handed to the tap (which takes ownership of the slice,
	// and may recycle it via PutBatch once done) the moment they are
	// emitted, instead of accumulating for Results.
	// Taps are invoked from operator goroutines, possibly concurrently, and
	// must not block indefinitely — a blocking tap stalls its producer. The
	// staged executor uses taps as the shard side of exchange edges; the
	// service plane uses them as per-query result fan-out.
	Taps map[string]func([]stream.Tuple)
	// ColTaps maps sink names to streaming columnar consumers. A ColTap fires
	// only when the producing edge delivers a columnar batch (ownership of the
	// *stream.ColBatch transfers to the tap, which recycles it via PutColBatch
	// once done); batches arriving as rows still go to the sink's row Tap, so
	// a sink expecting both layouts installs both. Without a ColTap a columnar
	// sink batch converts to rows at the boundary and follows the row rules.
	ColTaps map[string]func(*stream.ColBatch)
	// SourceSchemas supplies per-source schemas for columnar chain
	// qualification only — it never adds ingress validation. The staged
	// executor builds shard plans whose sources deliberately carry nil schemas
	// (tuples were validated once at the staged ingress); without the planning
	// schema the fused chains behind those sources could never qualify for
	// columnar execution. Ignored unless ExecConfig.Columnar is set.
	SourceSchemas map[string]*stream.Schema
	// stager, when non-nil, is an executor-shared staging subsystem (the
	// Staged and Sharded backends hand every runtime of every epoch the
	// same one, so StagingBudget bounds the executor, not budget × shards).
	// When nil and StagingBudget > 0, the runtime creates and owns its own.
	stager *staging.Stager
}

// StartConcurrent builds and starts the runtime over a built plan with the
// given per-edge channel buffering (counted in batches, not tuples). It is
// StartRuntime with only the buffer configured, kept for the common case;
// note it preserves the historical floor of 1 rather than applying
// DefaultRuntimeBuf.
func StartConcurrent(p *Plan, buf int) (*Runtime, error) {
	if buf < 1 {
		buf = 1
	}
	return StartRuntime(p, RuntimeConfig{ExecConfig: ExecConfig{Buf: buf}})
}

// StartRuntime builds and starts the runtime over a built plan.
func StartRuntime(p *Plan, cfg RuntimeConfig) (*Runtime, error) {
	if !p.built {
		if err := p.Build(); err != nil {
			return nil, err
		}
	}
	buf := cfg.bufOrDefault()
	r := &Runtime{
		plan:    p,
		srcIn:   make(map[string]chan srcMsg),
		taps:    cfg.Taps,
		colTaps: cfg.ColTaps,
		results: make(map[string][]stream.Tuple),
		stats:   make([]runtimeCounters, len(p.nodes)),
		stager:  cfg.stager,
	}
	if r.stager == nil && cfg.StagingBudget > 0 {
		st, err := staging.New(cfg.StagingBudget, cfg.SpillDir)
		if err != nil {
			return nil, err
		}
		r.stager, r.ownStager = st, true
	}

	// Fuse maximal stateless unary chains (see fuse.go): each chain runs in
	// one goroutine reading the head's input channel; the interior members'
	// channels and goroutines are elided entirely. chainAt maps a head node
	// to its chain; fused marks every non-head member (no goroutine, no
	// producers); internalOut marks every non-tail member (its single output
	// edge is consumed inside the chain, not via a channel).
	var chains [][]int
	if !cfg.DisableFusion {
		chains = fusedChains(p)
	}
	chainAt := make(map[int]int, len(chains))
	fused := make([]bool, len(p.nodes))
	internalOut := make([]bool, len(p.nodes))
	for ci, chain := range chains {
		chainAt[chain[0]] = ci
		for _, id := range chain[1:] {
			fused[id] = true
		}
		for _, id := range chain[:len(chain)-1] {
			internalOut[id] = true
		}
	}

	// Columnar qualification needs the schema flowing into each chain head.
	// Plans own their source schemas in the common case; SourceSchemas covers
	// the staged shard plans whose sources are deliberately schema-free.
	var headIn []*stream.Schema
	if cfg.Columnar && len(chains) > 0 {
		headIn = planInputSchemas(p, cfg.SourceSchemas)
	}

	// One tagged input channel per node; unary nodes use side Left only.
	nodeIn := make([]chan sidedBatch, len(p.nodes))
	// producers counts the writers per node channel so the last one closes it.
	producers := make([]*sync.WaitGroup, len(p.nodes))
	for i := range nodeIn {
		nodeIn[i] = make(chan sidedBatch, buf)
		producers[i] = &sync.WaitGroup{}
	}

	// Count producers per node input (sources and upstream nodes). A
	// producer with several edges into one node (e.g. a self-join) is one
	// writer, counted once — mirroring done's per-producer decrement.
	addProducers := func(out []edge) {
		seen := map[int]bool{}
		for _, e := range out {
			if e.node >= 0 && !seen[e.node] {
				seen[e.node] = true
				producers[e.node].Add(1)
			}
		}
	}
	for _, s := range p.sources {
		addProducers(s.out)
	}
	for i, n := range p.nodes {
		if internalOut[i] {
			continue // chain-internal edge: consumed in-goroutine, no channel
		}
		addProducers(n.out)
	}

	// emit fans one batch out across a node's output edges. Sibling
	// consumers get their own deep copies; when the producer owns the batch
	// (it won't touch it again), the final edge takes it as-is — on the
	// common single-consumer path that makes emission copy-free. Every emit
	// call site passes pool-eligible owned buffers, so an owned batch with
	// nothing to carry or nowhere to go is recycled here instead of leaking
	// to the garbage collector.
	emit := func(out []edge, ts []stream.Tuple, owned bool) {
		if len(ts) == 0 || len(out) == 0 {
			if owned {
				putBatch(ts)
			}
			return
		}
		last := len(out) - 1
		for i, e := range out {
			batch := ts
			if !owned || i < last {
				batch = cloneBatch(ts)
			}
			if e.node >= 0 {
				nodeIn[e.node] <- sidedBatch{ts: batch, side: e.side}
				continue
			}
			r.deliver(e.sink, batch)
		}
	}

	// colEmit is emit for owned columnar batches: the final edge takes the
	// batch as-is, siblings get column-level copies, and a batch with nothing
	// to carry (no rows, no watermark) or nowhere to go recycles here. Unlike
	// emit there is no unowned variant — columnar batches always travel under
	// the single-owner rule.
	colEmit := func(out []edge, cb *stream.ColBatch) {
		_, hasWM := cb.Watermark()
		if (cb.Len() == 0 && !hasWM) || len(out) == 0 {
			putColBatch(cb)
			return
		}
		last := len(out) - 1
		for i, e := range out {
			batch := cb
			if i < last {
				batch = cloneColBatch(cb)
			}
			if e.node >= 0 {
				nodeIn[e.node] <- sidedBatch{cols: batch, side: e.side}
				continue
			}
			r.deliverCol(e.sink, batch)
		}
	}

	// done signals a producer finished with every downstream node channel;
	// the final producer closes the channel.
	done := func(out []edge) {
		seen := map[int]bool{}
		for _, e := range out {
			if e.node >= 0 && !seen[e.node] {
				seen[e.node] = true
				producers[e.node].Done()
			}
		}
	}

	// emitIngress is the shed-aware source-edge fanout used when a Shedder
	// is installed: per ingress edge it applies the planned drop ratio, then
	// sends without blocking — a full node channel sheds the whole remainder
	// as overflow, charged to that node. Sink edges (a source wired straight
	// to a query) never shed. Unlike emit, every edge gets its own clone;
	// shedding filters per edge, so batches cannot be shared.
	//
	// With a stager configured, overflow on a LOSS-INTOLERANT edge (planned
	// ratio 0 — the shed plan says this query must not drop) stages instead
	// of shedding: the batch lands on the edge's bounded staging queue
	// (spilling to disk past the budget) and replays, in order and ahead of
	// fresh tuples, as soon as the channel accepts again — with a final
	// blocking drain when the source closes. Edges with a positive planned
	// ratio keep the legacy overflow shed: the plan already priced their
	// losses.
	var owners [][]string
	if cfg.Shedder != nil {
		owners = nodeOwners(p)
	}
	emitIngress := func(out []edge, states []shedState, stage *ingressStage, ts []stream.Tuple) {
		last := len(out) - 1
		// tsSent flips once ts itself is handed to a consumer; otherwise the
		// router still owns it at the end and recycles it.
		tsSent := false
		for i, e := range out {
			if e.node < 0 {
				batch := ts
				if i < last {
					batch = cloneBatch(ts)
				} else {
					tsSent = true
				}
				r.deliver(e.sink, batch)
				continue
			}
			st := &states[i]
			st.refresh(cfg.Shedder, owners[e.node])
			counters := &r.stats[e.node]
			// Staged backlog replays first so the edge stays FIFO.
			backlog := false
			if stage != nil {
				backlog = stage.drain(i, nodeIn[e.node], e.side)
			}
			kept := ts
			// owns marks kept as a fresh buffer this loop must recycle unless
			// a consumer takes it.
			owns := false
			if st.ratio > 0 {
				// Filtering builds a fresh slice; tuples deep-copy only when
				// a sibling edge will also read ts (emit's ownership rule).
				// Punctuation markers bypass the sampler: shedding drops
				// data, not the promise that the data has advanced.
				deep := i < last
				kept = getBatch(len(ts))
				owns = true
				dropped := 0
				for _, t := range ts {
					if !t.IsPunct() && st.drop() {
						dropped++
						continue
					}
					if deep {
						t = t.Clone()
					}
					kept = append(kept, t)
				}
				counters.shed.Add(int64(dropped))
				counters.shedUtil.Add(float64(dropped) * st.util)
			} else if i < last {
				// Zero ratio: same ownership rule as emit — only the final
				// edge may take the router-owned batch copy-free.
				kept = cloneBatch(ts)
				owns = true
			}
			if len(kept) == 0 {
				if owns {
					putBatch(kept)
				}
				continue
			}
			if stage != nil && st.ratio == 0 {
				// Loss-intolerant edge under staging: never drop. Order the
				// fresh batch behind any remaining backlog, else try the
				// channel and stage on overflow.
				if backlog {
					stage.stash(i, kept, owns)
					continue
				}
				select {
				case nodeIn[e.node] <- sidedBatch{ts: kept, side: e.side}:
					if !owns {
						tsSent = true
					}
				default:
					stage.stash(i, kept, owns)
				}
				continue
			}
			select {
			case nodeIn[e.node] <- sidedBatch{ts: kept, side: e.side}:
				if !owns {
					tsSent = true
				}
			default:
				// Overflow drops the whole batch; only the data tuples in it
				// count as shed (a lost marker just delays liveness — the
				// next heartbeat renews the promise).
				n := int64(0)
				for _, t := range kept {
					if !t.IsPunct() {
						n++
					}
				}
				counters.shed.Add(n)
				counters.shedUtil.Add(float64(n) * st.util)
				if owns {
					putBatch(kept)
				}
			}
		}
		if !tsSent {
			putBatch(ts)
		}
	}

	// Source routers. Columnar ingress stays columnar through a shed-free
	// router (the common hot path); a shedding router demotes it to rows
	// first — the sampler filters per edge and per tuple, which is exactly
	// the boxed layout's job.
	for name, s := range p.sources {
		ch := make(chan srcMsg, buf)
		r.srcIn[name] = ch
		src := s
		shedHere := cfg.Shedder != nil && !cfg.NoShedSources[name]
		stageName := "ingress-" + name
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			if shedHere {
				// Per-edge sampler state is owned by this router goroutine,
				// as are the staging lanes backing loss-intolerant overflow.
				states := make([]shedState, len(src.out))
				var stage *ingressStage
				if r.stager != nil {
					stage = newIngressStage(r.stager, stageName, len(src.out))
				}
				for m := range ch {
					ts := m.rows
					if m.cols != nil {
						ts = colToRows(m.cols)
					}
					emitIngress(src.out, states, stage, ts)
				}
				if stage != nil {
					// Blocking final drain: the consumers stay live until this
					// router calls done, so every staged tuple lands before the
					// downstream channels close. Nothing loss-intolerant is lost
					// across a whole run.
					stage.flush(src.out, nodeIn)
				}
			} else {
				for m := range ch {
					if m.cols != nil {
						colEmit(src.out, m.cols)
						continue
					}
					// The push path allocated the batch; the router owns it.
					emit(src.out, m.rows, true)
				}
			}
			done(src.out)
		}()
	}

	// Operator goroutines. A fused chain's head goroutine runs the whole
	// chain; interior chain members get neither a goroutine nor a live
	// channel (their nodeIn exists but nothing writes to it).
	for i, n := range p.nodes {
		if fused[i] {
			continue
		}
		in := nodeIn[i]
		prod := producers[i]
		// Close the node's input once every producer has finished.
		go func() {
			prod.Wait()
			close(in)
		}()

		if ci, ok := chainAt[i]; ok {
			fr := newFusedRunner(p, chains[ci], r.stats)
			if headIn != nil {
				fr.initColumnar(headIn[i])
			}
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				for m := range in {
					if m.cols != nil {
						if fr.colOK {
							// Columnar fast path: the whole chain runs in place
							// on the typed columns — no boxing in, none out.
							cb := m.cols
							fr.runColBatch(cb)
							colEmit(fr.tail.out, cb)
							continue
						}
						m.ts, m.cols = colToRows(m.cols), nil
					}
					out, reused := fr.runBatch(m.ts)
					if len(out) == 0 {
						// reused means out aliases m.ts — one backing array,
						// one recycle.
						putBatch(m.ts)
						if !reused {
							putBatch(out)
						}
						continue
					}
					emit(fr.tail.out, out, true)
					if !reused {
						putBatch(m.ts)
					}
				}
				if !r.noFlush.Load() {
					// Constituents flush in chain order; each flush routes
					// through the downstream constituents exactly as its
					// emission would unfused. The copy keeps in-place batch
					// application off operator-owned Flush slices.
					for k := range fr.members {
						flushed := fr.members[k].unary.Flush()
						fr.stats[k].out.Add(int64(len(flushed)))
						if len(flushed) == 0 {
							continue
						}
						fb := getBatch(len(flushed))
						fb = append(fb, flushed...)
						out, reused := fb, true
						if k+1 < len(fr.members) {
							out, reused = fr.runSeg(fb, k+1)
						}
						if len(out) == 0 {
							putBatch(fb)
							if !reused {
								putBatch(out)
							}
							continue
						}
						emit(fr.tail.out, out, true)
						if !reused {
							putBatch(fb)
						}
					}
				}
				done(fr.tail.out)
			}()
			continue
		}

		node := n
		counters := &r.stats[i]
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for m := range in {
				// Stateful and unfused operators keep the boxed Tuple API:
				// a columnar batch converts to rows once at this boundary
				// (its watermark re-emerges as a trailing in-band marker).
				ts := m.ts
				if m.cols != nil {
					ts = colToRows(m.cols)
				}
				// Punctuation markers are control entries: they route through
				// the operator's Punctuator contract (or are swallowed),
				// stay in stream position relative to the data tuples around
				// them, and never touch the metering counters — Stats must
				// match the punctuation-free sync Engine exactly.
				var nIn, nOut int64
				outs := getBatch(len(ts))
				for _, t := range ts {
					if t.IsPunct() {
						if w, ok := punctuate(node, m.side, t.Ts); ok {
							outs = append(outs, stream.NewPunctuation(w))
						}
						continue
					}
					nIn++
					var emitted []stream.Tuple
					if node.unary != nil {
						emitted = node.unary.Apply(t)
					} else if m.side == stream.Left {
						emitted = node.binary.ApplyLeft(t)
					} else {
						emitted = node.binary.ApplyRight(t)
					}
					nOut += int64(len(emitted))
					outs = append(outs, emitted...)
				}
				counters.tuples.Add(nIn)
				counters.out.Add(nOut)
				emit(node.out, outs, true)
				putBatch(ts)
			}
			if !r.noFlush.Load() {
				var flushed []stream.Tuple
				if node.unary != nil {
					flushed = node.unary.Flush()
				} else {
					flushed = node.binary.Flush()
				}
				counters.out.Add(int64(len(flushed)))
				if len(flushed) > 0 {
					// Copy before emitting: the consumer recycles what it
					// receives, and a transform may retain its Flush slice.
					fb := getBatch(len(flushed))
					fb = append(fb, flushed...)
					emit(node.out, fb, true)
				}
			}
			done(node.out)
		}()
	}
	return r, nil
}

// ingressReplayBatch caps how many staged records one replay pop pulls back
// into a pooled batch: the in-flight replay buffer per edge is bounded slack
// on top of the staging budget, not a second unbounded buffer.
const ingressReplayBatch = 256

// ingressStage holds one shedding router's per-edge staging lanes: when the
// shed plan marks an edge loss-intolerant (ratio 0) and its channel is full,
// overflow batches land on a bounded staging queue (resident up to the shared
// budget, spilled to disk segments beyond it) instead of being dropped, and
// replay in FIFO order as the channel drains. It is owned by the router
// goroutine — no locking beyond the queues' own.
type ingressStage struct {
	stager *staging.Stager
	// qs and pending are indexed by the source's out-edge position. pending
	// holds at most one replayed-but-unsent batch per edge (popped from the
	// queue, then refused by a non-blocking send), kept aside so replay
	// never re-spills what it already paid to read back.
	qs      []*staging.Queue
	pending [][]stream.Tuple
	name    string
	recs    []staging.Rec
}

func newIngressStage(s *staging.Stager, name string, n int) *ingressStage {
	return &ingressStage{
		stager:  s,
		name:    name,
		qs:      make([]*staging.Queue, n),
		pending: make([][]stream.Tuple, n),
	}
}

// next returns edge i's oldest staged batch (the pending holdover, else a
// fresh pop of up to ingressReplayBatch records) or nil when the lane is dry.
func (g *ingressStage) next(i int) []stream.Tuple {
	if b := g.pending[i]; b != nil {
		g.pending[i] = nil
		return b
	}
	q := g.qs[i]
	if q == nil || q.Empty() {
		return nil
	}
	g.recs = q.PopBatch(g.recs[:0], ingressReplayBatch)
	if len(g.recs) == 0 {
		return nil
	}
	b := getBatch(len(g.recs))
	for _, rec := range g.recs {
		b = append(b, rec.Tuple)
	}
	return b
}

// drain replays edge i's staged backlog into its channel without blocking and
// reports whether backlog remains — fresh batches must queue behind it to
// keep the edge FIFO.
func (g *ingressStage) drain(i int, ch chan<- sidedBatch, side stream.Side) bool {
	for {
		b := g.next(i)
		if b == nil {
			return false
		}
		select {
		case ch <- sidedBatch{ts: b, side: side}:
		default:
			g.pending[i] = b
			return true
		}
	}
}

// stash appends an overflow batch to edge i's staging lane. Tuple structs are
// copied in (Vals backing arrays are shared under the same single-owner rule
// the exchange offer path relies on), so an owned buffer recycles here.
func (g *ingressStage) stash(i int, kept []stream.Tuple, owns bool) {
	q := g.qs[i]
	if q == nil {
		q = g.stager.NewQueue(fmt.Sprintf("%s-e%d", g.name, i))
		g.qs[i] = q
	}
	for _, t := range kept {
		q.Append("", t)
	}
	if owns {
		putBatch(kept)
	}
}

// flush blocking-drains every lane into its channel and closes the queues.
// Called by the router after its input closes and before done: the consumers
// are still live (this router is a registered producer), so the sends cannot
// deadlock and no staged tuple is lost at shutdown.
func (g *ingressStage) flush(out []edge, nodeIn []chan sidedBatch) {
	for i, e := range out {
		if e.node >= 0 {
			for {
				b := g.next(i)
				if b == nil {
					break
				}
				nodeIn[e.node] <- sidedBatch{ts: b, side: e.side}
			}
		}
		if g.qs[i] != nil {
			g.qs[i].Close()
		}
	}
}

// deliver routes one owned sink batch: to the sink's tap when one is
// installed, otherwise into the Results accumulator. Taps receive
// punctuation markers in stream position (the staged exchange merge is
// built on exactly that); Results never contain them — a query's output is
// data only. The sink boundary is where batch buffers leave the dataflow
// graph, so an untapped batch re-enters the pool here once its tuples are
// copied out; a tapped batch's ownership passes to the tap instead.
func (r *Runtime) deliver(sink string, batch []stream.Tuple) {
	if tap := r.taps[sink]; tap != nil {
		tap(batch)
		return
	}
	kept := dropPuncts(batch)
	if len(kept) > 0 {
		r.mu.Lock()
		r.results[sink] = append(r.results[sink], kept...)
		r.mu.Unlock()
	}
	putBatch(batch) // kept aliases batch: one backing array, one recycle
}

// deliverCol routes one owned columnar sink batch: to the sink's columnar tap
// when one is installed (ownership passes to the tap), otherwise it converts
// to rows at the boundary and follows deliver's rules — row tap, or the
// Results accumulator.
func (r *Runtime) deliverCol(sink string, cb *stream.ColBatch) {
	if tap := r.colTaps[sink]; tap != nil {
		tap(cb)
		return
	}
	r.deliver(sink, colToRows(cb))
}

// colToRows is the column→row boundary conversion: it boxes an owned
// columnar batch into a pooled row batch, re-emits the batch watermark as one
// trailing in-band punctuation marker, and recycles the columnar buffer. The
// trailing position is the one the out-of-band fold licenses — a watermark is
// a floor for everything still ahead, so surfacing it after the rows it rode
// with only tightens it.
func colToRows(cb *stream.ColBatch) []stream.Tuple {
	rows := getBatch(cb.Len() + 1)
	rows = cb.AppendTo(rows)
	if wm, ok := cb.Watermark(); ok {
		rows = append(rows, stream.NewPunctuation(wm))
	}
	putColBatch(cb)
	return rows
}

// cloneColBatch copies a columnar batch — column-level memcpys, no boxing —
// so each fan-out consumer owns its data.
func cloneColBatch(cb *stream.ColBatch) *stream.ColBatch {
	out := getColBatch(cb.Schema(), cb.Len())
	out.AppendCols(cb)
	return out
}

// planInputSchemas propagates schemas forward through a built plan and
// returns the schema arriving at each node's left input (nil where unknown) —
// what fusedRunner.initColumnar needs for its chain head. Node indices are
// topological, so one pass suffices. overrides supplies schemas for sources
// whose plan entry carries none (see RuntimeConfig.SourceSchemas); an input
// fed by producers that disagree on schema is treated as unknown.
func planInputSchemas(p *Plan, overrides map[string]*stream.Schema) []*stream.Schema {
	inL := make([]*stream.Schema, len(p.nodes))
	inR := make([]*stream.Schema, len(p.nodes))
	haveL := make([]bool, len(p.nodes))
	haveR := make([]bool, len(p.nodes))
	feed := func(out []edge, s *stream.Schema) {
		for _, e := range out {
			if e.node < 0 {
				continue
			}
			in, have := &inL[e.node], &haveL[e.node]
			if e.side == stream.Right {
				in, have = &inR[e.node], &haveR[e.node]
			}
			if !*have {
				*in, *have = s, true
			} else if *in != s {
				*in = nil
			}
		}
	}
	for name, s := range p.sources {
		ss := s.schema
		if ss == nil {
			ss = overrides[name]
		}
		if ss != nil {
			feed(s.out, ss)
		}
	}
	for i, n := range p.nodes {
		var out *stream.Schema
		if n.unary != nil {
			if inL[i] != nil {
				out = n.unary.OutSchema(inL[i])
			}
		} else if inL[i] != nil && inR[i] != nil {
			out = n.binary.OutSchema(inL[i], inR[i])
		}
		if out != nil {
			feed(n.out, out)
		}
	}
	return inL
}

// punctuate routes one punctuation marker through a node's operator: the
// operator's Punctuator / BinaryPunctuator decides what output promise the
// input promise licenses. Operators implementing neither swallow the marker
// — always sound (a dropped promise only delays downstream liveness),
// mirroring the closed default the stage analysis applies to undeclared
// state. Called only from the node's owning goroutine, so the operator's
// watermark state needs no locking.
func punctuate(n *node, side stream.Side, ts int64) (int64, bool) {
	if n.unary != nil {
		if p, ok := n.unary.(stream.Punctuator); ok {
			return p.Punctuate(ts)
		}
		return 0, false
	}
	if p, ok := n.binary.(stream.BinaryPunctuator); ok {
		return p.PunctuateSide(side, ts)
	}
	return 0, false
}

// dropPuncts filters punctuation markers out of an owned batch in place.
func dropPuncts(ts []stream.Tuple) []stream.Tuple {
	kept := ts[:0]
	for _, t := range ts {
		if !t.IsPunct() {
			kept = append(kept, t)
		}
	}
	return kept
}

// cloneBatch deep-copies a batch so each consumer owns its tuples. The
// clone's slice comes from the batch pool (its Vals are fresh allocations —
// deep tuple copies are the price of fan-out, not of the batch buffer).
func cloneBatch(ts []stream.Tuple) []stream.Tuple {
	out := getBatch(len(ts))
	for _, t := range ts {
		out = append(out, t.Clone())
	}
	return out
}

// Push sends a single tuple into a source stream. It returns an error after
// Close or for unknown sources.
func (r *Runtime) Push(source string, t stream.Tuple) error {
	return r.PushBatch(source, []stream.Tuple{t})
}

// PushBatch sends a batch of tuples into a source stream as one channel
// send. Tuples that fail the source schema are dropped (counted locally,
// folded into the drop counter under one lock acquisition per call) and the
// first failure is reported after the conforming remainder is sent.
func (r *Runtime) PushBatch(source string, batch []stream.Tuple) error {
	r.stopMu.RLock()
	defer r.stopMu.RUnlock()
	if r.closed {
		return errStopped
	}
	ch, ok := r.srcIn[source]
	if !ok {
		r.mu.Lock()
		r.dropped += len(batch)
		r.mu.Unlock()
		return fmt.Errorf("engine: unknown source %q", source)
	}
	s := r.plan.sources[source]
	// Copy into a pooled slice: the batch crosses a channel and outlives this
	// call, while the caller keeps ownership of (and may reuse) its slice.
	// PushOwnedBatch is the opt-out for callers willing to transfer ownership.
	send := getBatch(len(batch))
	var first error
	dropped := 0
	for _, t := range batch {
		// Punctuation markers carry no field values and are exempt from
		// schema validation — they are control entries, not source data.
		if !t.IsPunct() && s.schema != nil && !s.schema.Conforms(t) {
			if first == nil {
				first = fmt.Errorf("engine: tuple does not conform to source %q schema %s", source, s.schema)
			}
			dropped++
			continue
		}
		send = append(send, t)
	}
	if dropped > 0 {
		r.mu.Lock()
		r.dropped += dropped
		r.mu.Unlock()
	}
	if len(send) > 0 {
		ch <- srcMsg{rows: send}
	} else {
		putBatch(send)
	}
	return first
}

// PushOwnedBatch is PushBatch with ownership transfer: on success the caller
// hands the batch slice (and its backing array) to the runtime and must not
// read, write, or reuse it after the call — in exchange the defensive
// ingress copy is skipped entirely, making the push zero-copy. The buffer
// re-enters the engine's batch pool once its last consumer is done with it;
// lease buffers via GetBatch to close the cycle without allocating.
//
// An error rejects the batch whole: validation runs before anything is
// consumed, nothing is applied, and ownership stays with the caller (see
// the rejection-ownership contract in executor.go). Rejected tuples are not
// counted as dropped — the executor discarded nothing.
func (r *Runtime) PushOwnedBatch(source string, batch []stream.Tuple) error {
	r.stopMu.RLock()
	defer r.stopMu.RUnlock()
	if r.closed {
		return errStopped
	}
	ch, ok := r.srcIn[source]
	if !ok {
		return fmt.Errorf("engine: unknown source %q", source)
	}
	s := r.plan.sources[source]
	if s.schema != nil {
		for _, t := range batch {
			if !t.IsPunct() && !s.schema.Conforms(t) {
				return fmt.Errorf("engine: tuple does not conform to source %q schema %s; owned batch rejected whole", source, s.schema)
			}
		}
	}
	if len(batch) > 0 {
		ch <- srcMsg{rows: batch}
	} else {
		putBatch(batch)
	}
	return nil
}

// PushOwnedColBatch implements OwnedColBatchPusher: on success the caller
// hands an owned struct-of-arrays batch (leased via GetColBatch) to the
// runtime and must not touch it afterwards. The batch crosses the dataflow
// in columnar form — chains that qualified for columnar execution run it in
// place; everything else converts to rows at its own boundary. Validation is
// by physical layout against the source schema: a mismatched batch is
// rejected whole (per-tuple salvage would require boxing, defeating the
// point), and like every owned-push rejection the batch stays the caller's
// to recycle or retry (see executor.go).
func (r *Runtime) PushOwnedColBatch(source string, cb *stream.ColBatch) error {
	r.stopMu.RLock()
	defer r.stopMu.RUnlock()
	if r.closed {
		return errStopped
	}
	ch, ok := r.srcIn[source]
	if !ok {
		return fmt.Errorf("engine: unknown source %q", source)
	}
	s := r.plan.sources[source]
	if s.schema != nil && cb.Layout() != s.schema.Layout() {
		return fmt.Errorf("engine: columnar batch layout %q does not match source %q schema %s", cb.Layout(), source, s.schema)
	}
	if _, hasWM := cb.Watermark(); cb.Len() == 0 && !hasWM {
		putColBatch(cb)
		return nil
	}
	ch <- srcMsg{cols: cb}
	return nil
}

// Advance moves the metering clock forward (see Stats).
func (r *Runtime) Advance(ticks int64) { r.ticks.Add(ticks) }

// Stats returns per-node measured loads. Counters are read atomically, so
// Stats may be called mid-run; loads divide accumulated cost by the ticks
// registered via Advance (raw cost when no ticks have elapsed).
func (r *Runtime) Stats() []NodeLoad {
	return statsFromCounters(r.plan, r.stats, r.ticks.Load())
}

// statsFromCounters converts a plan's runtime counters into NodeLoads.
func statsFromCounters(p *Plan, counters []runtimeCounters, ticks int64) []NodeLoad {
	tuples := make([]int64, len(counters))
	outs := make([]int64, len(counters))
	sheds := make([]int64, len(counters))
	shedUtil := make([]float64, len(counters))
	for i := range counters {
		tuples[i] = counters[i].tuples.Load()
		outs[i] = counters[i].out.Load()
		sheds[i] = counters[i].shed.Load()
		shedUtil[i] = counters[i].shedUtil.Load()
	}
	return assembleLoads(p, tuples, outs, sheds, shedUtil, ticks)
}

// assembleLoads builds the NodeLoad slice from aggregated per-node counter
// arrays over plan p's topology: demand reconstruction (OfferedLoad) runs
// across p's edges and loads divide by ticks. Shared by Runtime stats and
// the Staged executor's cross-stage merge.
func assembleLoads(p *Plan, tuples, outs, sheds []int64, shedUtil []float64, ticks int64) []NodeLoad {
	infos := p.Nodes()
	demand := demandIn(p, tuples, outs, sheds)
	out := make([]NodeLoad, len(infos))
	for i, info := range infos {
		load := float64(tuples[i]) * info.Cost
		offered := demand[i] * info.Cost
		if ticks > 0 {
			load /= float64(ticks)
			offered /= float64(ticks)
		}
		out[i] = NodeLoad{
			ID:              info.ID,
			Name:            info.Name,
			Tuples:          tuples[i],
			OutTuples:       outs[i],
			Load:            load,
			OfferedLoad:     offered,
			ShedTuples:      sheds[i],
			ShedUtilityLost: shedUtil[i],
			Owners:          sortedOwners(info.Owners),
		}
	}
	return out
}

// Results returns and clears the tuples accumulated for the named query.
// Before Stop this drains whatever has reached the sink so far.
func (r *Runtime) Results(query string) []stream.Tuple {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.results[query]
	delete(r.results, query)
	return out
}

// Stop implements Executor: it closes input, drains every operator (flushing
// open state) and waits for all goroutines. Safe to call concurrently with
// PushBatch (late pushers get errStopped) and idempotent; every caller
// returns only once the drain is complete.
func (r *Runtime) Stop() {
	r.stopMu.Lock()
	if !r.closed {
		r.closed = true
		for _, ch := range r.srcIn {
			close(ch)
		}
	}
	r.stopMu.Unlock()
	r.wg.Wait()
	if r.ownStager {
		// Only a runtime-owned stager closes here; an executor-shared one
		// outlives this runtime (the staged/sharded backends reuse it across
		// epochs and close it themselves).
		r.stagerOnce.Do(func() { r.stager.Close() })
	}
}

// StagingStats reports the staging subsystem's counters and whether staging
// is enabled for this runtime.
func (r *Runtime) StagingStats() (staging.Stats, bool) {
	if r.stager == nil {
		return staging.Stats{}, false
	}
	return r.stager.Stats(), true
}

// Quiesce drains the runtime like Stop — input closes, every in-flight
// batch is processed, all goroutines exit — but does NOT flush open
// operator state: windows and join buffers stay inside the plan's operator
// instances, where the elastic reshard picks them up and moves them to the
// next epoch's runtimes. Like Stop it is idempotent and safe alongside
// PushBatch; a runtime that has been quiesced rejects further pushes.
func (r *Runtime) Quiesce() {
	r.noFlush.Store(true)
	r.Stop()
}

// Close stops the runtime and returns a copy of the per-query results
// accumulated so far (kept for callers that prefer the map form; Results
// drains are unaffected).
func (r *Runtime) Close() map[string][]stream.Tuple {
	r.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]stream.Tuple, len(r.results))
	for k, v := range r.results {
		out[k] = v
	}
	return out
}

// Dropped returns the number of rejected tuples.
func (r *Runtime) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
