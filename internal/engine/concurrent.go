package engine

import (
	"fmt"
	"sync"

	"repro/internal/stream"
)

// Runtime executes a built plan concurrently: one goroutine per operator
// node, channels as dataflow edges — the natural Go rendering of a
// continuous-query network. Each stateful transform is owned by exactly one
// goroutine, so no locking is needed inside operators.
//
// The synchronous Engine remains the reference implementation (deterministic
// interleaving, transition phase); Runtime is the throughput-oriented
// executor for a fixed plan. Results are identical up to tuple interleaving
// across independent paths.
type Runtime struct {
	plan *Plan
	// srcIn carries tuples from Push into the per-source router.
	srcIn map[string]chan stream.Tuple

	mu      sync.Mutex
	results map[string][]stream.Tuple
	dropped int

	wg     sync.WaitGroup
	closed bool
}

// sided tags a tuple with the binary-operator input it belongs to.
type sided struct {
	t    stream.Tuple
	side stream.Side
}

// StartConcurrent builds and starts the runtime over a built plan with the
// given per-edge channel buffering.
func StartConcurrent(p *Plan, buf int) (*Runtime, error) {
	if !p.built {
		if err := p.Build(); err != nil {
			return nil, err
		}
	}
	if buf < 1 {
		buf = 1
	}
	r := &Runtime{
		plan:    p,
		srcIn:   make(map[string]chan stream.Tuple),
		results: make(map[string][]stream.Tuple),
	}

	// One tagged input channel per node; unary nodes use side Left only.
	nodeIn := make([]chan sided, len(p.nodes))
	// producers counts the writers per node channel so the last one closes it.
	producers := make([]*sync.WaitGroup, len(p.nodes))
	for i := range nodeIn {
		nodeIn[i] = make(chan sided, buf)
		producers[i] = &sync.WaitGroup{}
	}

	// Count producers per node input (sources and upstream nodes). A
	// producer with several edges into one node (e.g. a self-join) is one
	// writer, counted once — mirroring done's per-producer decrement.
	addProducers := func(out []edge) {
		seen := map[int]bool{}
		for _, e := range out {
			if e.node >= 0 && !seen[e.node] {
				seen[e.node] = true
				producers[e.node].Add(1)
			}
		}
	}
	for _, s := range p.sources {
		addProducers(s.out)
	}
	for _, n := range p.nodes {
		addProducers(n.out)
	}

	// emit fans one tuple out across a node's output edges.
	emit := func(out []edge, t stream.Tuple) {
		for _, e := range out {
			if e.node >= 0 {
				nodeIn[e.node] <- sided{t.Clone(), e.side}
				continue
			}
			r.mu.Lock()
			r.results[e.sink] = append(r.results[e.sink], t.Clone())
			r.mu.Unlock()
		}
	}

	// done signals a producer finished with every downstream node channel;
	// the final producer closes the channel.
	done := func(out []edge) {
		seen := map[int]bool{}
		for _, e := range out {
			if e.node >= 0 && !seen[e.node] {
				seen[e.node] = true
				wg := producers[e.node]
				wg.Done()
			}
		}
	}

	// Source routers.
	for name, s := range p.sources {
		ch := make(chan stream.Tuple, buf)
		r.srcIn[name] = ch
		src := s
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for t := range ch {
				emit(src.out, t)
			}
			done(src.out)
		}()
	}

	// Operator goroutines.
	for i, n := range p.nodes {
		node := n
		in := nodeIn[i]
		prod := producers[i]
		// Close the node's input once every producer has finished.
		go func() {
			prod.Wait()
			close(in)
		}()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for m := range in {
				var outs []stream.Tuple
				if node.unary != nil {
					outs = node.unary.Apply(m.t)
				} else if m.side == stream.Left {
					outs = node.binary.ApplyLeft(m.t)
				} else {
					outs = node.binary.ApplyRight(m.t)
				}
				for _, o := range outs {
					emit(node.out, o)
				}
			}
			var flushed []stream.Tuple
			if node.unary != nil {
				flushed = node.unary.Flush()
			} else {
				flushed = node.binary.Flush()
			}
			for _, o := range flushed {
				emit(node.out, o)
			}
			done(node.out)
		}()
	}
	return r, nil
}

// Push sends a tuple into a source stream. It returns an error after Close
// or for unknown sources.
func (r *Runtime) Push(source string, t stream.Tuple) error {
	if r.closed {
		return fmt.Errorf("engine: runtime closed")
	}
	ch, ok := r.srcIn[source]
	if !ok {
		r.mu.Lock()
		r.dropped++
		r.mu.Unlock()
		return fmt.Errorf("engine: unknown source %q", source)
	}
	s := r.plan.sources[source]
	if s.schema != nil && !s.schema.Conforms(t) {
		r.mu.Lock()
		r.dropped++
		r.mu.Unlock()
		return fmt.Errorf("engine: tuple does not conform to source %q schema %s", source, s.schema)
	}
	ch <- t
	return nil
}

// Close stops input, drains every operator (flushing open state), waits for
// all goroutines, and returns the per-query results.
func (r *Runtime) Close() map[string][]stream.Tuple {
	if !r.closed {
		r.closed = true
		for _, ch := range r.srcIn {
			close(ch)
		}
		r.wg.Wait()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]stream.Tuple, len(r.results))
	for k, v := range r.results {
		out[k] = v
	}
	return out
}

// Dropped returns the number of rejected tuples.
func (r *Runtime) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
