package engine

import (
	"repro/internal/stream"
)

// Operator fusion collapses maximal chains of stateless unary operators
// (filter→map→filter→…) into a single execution unit: one goroutine runs
// the whole chain as a loop over each batch, so a k-operator prefix costs
// one channel hop and one stats flush per batch instead of k. Fusion is an
// execution-time construct: the Plan's node list is untouched, so
// Plan.Analyze, stage splitting, shed-plan owner resolution and dsmsd
// replanning see exactly the topology they see today, and every constituent
// keeps its own runtimeCounters slot — per-node Stats (and the OfferedLoad
// reconstruction built on them) are indistinguishable from unfused
// execution.
//
// A chain link i→j requires: both nodes unary and declaring StatelessOp,
// node i's entire fan-out being the single edge into j, and j having no
// other producer. The head of a chain may have any number of producers (its
// input channel is the chain's input); the tail's fan-out is the chain's
// output. Only chains of length >= 2 are fused.

// fusableNode reports whether a plan node can be a fused-chain constituent:
// a unary operator declaring statelessness.
func fusableNode(n *node) bool {
	if n.unary == nil {
		return false
	}
	s, ok := n.unary.(stream.StatelessOp)
	return ok && s.Stateless()
}

// fusedChains returns the maximal fusable chains of a plan as slices of node
// indices in dataflow order, each of length >= 2. Node indices are
// topological (edges only point forward), so walking the nodes in order
// visits every chain head before its members.
func fusedChains(p *Plan) [][]int {
	inDeg := make([]int, len(p.nodes))
	count := func(out []edge) {
		for _, e := range out {
			if e.node >= 0 {
				inDeg[e.node]++
			}
		}
	}
	for _, s := range p.sources {
		count(s.out)
	}
	for _, n := range p.nodes {
		count(n.out)
	}

	// next[i] is i's fused successor (or -1): the single consumer of i's
	// single output edge, when both ends are fusable and the consumer has no
	// other producer.
	next := make([]int, len(p.nodes))
	prev := make([]int, len(p.nodes))
	for i := range next {
		next[i], prev[i] = -1, -1
	}
	for i, n := range p.nodes {
		if !fusableNode(n) || len(n.out) != 1 {
			continue
		}
		e := n.out[0]
		if e.node < 0 || inDeg[e.node] != 1 || !fusableNode(p.nodes[e.node]) {
			continue
		}
		next[i] = e.node
		prev[e.node] = i
	}

	var chains [][]int
	for i := range p.nodes {
		if next[i] < 0 || prev[i] >= 0 {
			continue // not the head of a multi-node chain
		}
		chain := []int{i}
		for j := next[i]; j >= 0; j = next[j] {
			chain = append(chain, j)
		}
		chains = append(chains, chain)
	}
	return chains
}

// fusedRunner executes one fused chain inside its owning goroutine. It holds
// the constituents in dataflow order with their batch fast paths,
// punctuators and counter slots resolved once at start.
type fusedRunner struct {
	tail    *node // chain tail; its out edges are the chain's output
	members []*node
	natives []stream.BatchTransform // per member; nil -> per-tuple Apply fallback
	puncts  []stream.Punctuator     // per member; nil -> marker swallowed
	stats   []*runtimeCounters      // per member: the node's own Stats slot

	// colOK marks the chain columnar-capable: every member implements
	// stream.ColumnarTransform and accepts the schema flowing into it (see
	// initColumnar). colMembers holds the per-member columnar kernels.
	colOK      bool
	colMembers []stream.ColumnarTransform
}

func newFusedRunner(p *Plan, chain []int, stats []runtimeCounters) *fusedRunner {
	fr := &fusedRunner{
		members: make([]*node, 0, len(chain)),
		natives: make([]stream.BatchTransform, 0, len(chain)),
		puncts:  make([]stream.Punctuator, 0, len(chain)),
		stats:   make([]*runtimeCounters, 0, len(chain)),
	}
	for _, id := range chain {
		n := p.nodes[id]
		fr.members = append(fr.members, n)
		bt, _ := n.unary.(stream.BatchTransform)
		fr.natives = append(fr.natives, bt)
		pc, _ := n.unary.(stream.Punctuator)
		fr.puncts = append(fr.puncts, pc)
		fr.stats = append(fr.stats, &stats[id])
	}
	fr.tail = fr.members[len(fr.members)-1]
	return fr
}

// initColumnar qualifies the chain for struct-of-arrays execution given the
// schema arriving at its head. The chain qualifies when every constituent
// implements stream.ColumnarTransform, accepts its propagated input schema
// (ColumnarOK), and preserves the physical column layout through OutSchema —
// the contract that lets one ColBatch run the whole chain in place. Any
// failure leaves the chain on the boxed row path, which is always correct.
func (fr *fusedRunner) initColumnar(in *stream.Schema) {
	if in == nil {
		return
	}
	cols := make([]stream.ColumnarTransform, len(fr.members))
	cur := in
	for k, n := range fr.members {
		ct, ok := n.unary.(stream.ColumnarTransform)
		if !ok || !ct.ColumnarOK(cur) {
			return
		}
		cols[k] = ct
		next := n.unary.OutSchema(cur)
		if next == nil || next.Layout() != cur.Layout() {
			return
		}
		cur = next
	}
	fr.colMembers = cols
	fr.colOK = true
}

// runColBatch processes one owned columnar batch through the whole chain in
// place: per constituent, one stats flush and one kernel call over the
// typed columns — no boxing, no per-tuple dispatch. The batch watermark
// (the out-of-band rendering of in-band punctuation) is rewritten once by
// the composed punctuator chain, exactly as a trailing in-band marker would
// be. Metering matches the row path: a constituent that empties the batch
// stops the walk with downstream counters untouched, and watermarks never
// touch counters. The caller keeps ownership of the (possibly now empty)
// batch.
func (fr *fusedRunner) runColBatch(cb *stream.ColBatch) {
	if wm, ok := cb.Watermark(); ok {
		cb.ClearWatermark()
		if w, ok := fr.punctuate(wm); ok {
			cb.SetWatermark(w)
		}
	}
	if cb.Len() == 0 {
		return
	}
	for k, ct := range fr.colMembers {
		c := fr.stats[k]
		c.tuples.Add(int64(cb.Len()))
		ct.ApplyColBatch(cb)
		c.out.Add(int64(cb.Len()))
		if cb.Len() == 0 {
			// Downstream constituents see nothing — as unfused, where an
			// empty batch is never sent, so their counters stay untouched.
			break
		}
	}
}

// punctuate threads one marker through every constituent's Punctuator in
// chain order — the composition of the per-operator promise rewrites, which
// is exactly what the marker would experience hopping node to node unfused.
// A constituent without a Punctuator swallows the marker (always sound).
func (fr *fusedRunner) punctuate(ts int64) (int64, bool) {
	for _, pc := range fr.puncts {
		if pc == nil {
			return 0, false
		}
		var ok bool
		if ts, ok = pc.Punctuate(ts); !ok {
			return 0, false
		}
	}
	return ts, true
}

// runSeg runs constituents from..end over a punctuation-free segment,
// metering each constituent's in/out counts. Constituents with a native
// BatchTransform run in place on the segment (out = in[:0], sound because
// they emit at most one tuple per input scanning forward); a constituent
// without one falls back to per-tuple Apply into a fresh slice — a
// correctness fallback, since every in-repo stateless operator is native.
// The bool result reports whether the returned batch still shares seg's
// backing array (false once the fallback allocated).
func (fr *fusedRunner) runSeg(seg []stream.Tuple, from int) ([]stream.Tuple, bool) {
	cur, reused := seg, true
	for k := from; k < len(fr.members); k++ {
		c := fr.stats[k]
		c.tuples.Add(int64(len(cur)))
		if bt := fr.natives[k]; bt != nil {
			cur = bt.ApplyBatch(cur, cur[:0])
		} else {
			next := make([]stream.Tuple, 0, len(cur))
			for _, t := range cur {
				next = append(next, fr.members[k].unary.Apply(t)...)
			}
			cur, reused = next, false
		}
		c.out.Add(int64(len(cur)))
		if len(cur) == 0 {
			// Downstream constituents see nothing — exactly as unfused, where
			// an empty batch is never sent, so their counters stay untouched.
			break
		}
	}
	return cur, reused
}

// runBatch processes one owned input batch through the whole chain and
// returns the chain's output batch. Punctuation markers keep their stream
// position: the data runs around each marker process as in-place segments,
// and the marker itself is rewritten by the composed punctuator chain. The
// bool result reports whether the output shares the input's backing array
// (true on the marker-free fast path); when false the caller still owns —
// and should recycle — the input buffer.
func (fr *fusedRunner) runBatch(ts []stream.Tuple) ([]stream.Tuple, bool) {
	hasPunct := false
	for i := range ts {
		if ts[i].IsPunct() {
			hasPunct = true
			break
		}
	}
	if !hasPunct {
		return fr.runSeg(ts, 0)
	}
	out := getBatch(len(ts))
	i := 0
	for i < len(ts) {
		if ts[i].IsPunct() {
			if w, ok := fr.punctuate(ts[i].Ts); ok {
				out = append(out, stream.NewPunctuation(w))
			}
			i++
			continue
		}
		j := i + 1
		for j < len(ts) && !ts[j].IsPunct() {
			j++
		}
		seg, _ := fr.runSeg(ts[i:j], 0)
		out = append(out, seg...)
		i = j
	}
	return out, false
}
