package engine

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/stream"
)

// tapCollector accumulates tapped batches under a lock, since taps on
// parallel sinks are invoked from several shard runtimes concurrently. It
// copies tuples out before recycling the batch, exercising the ownership
// contract a real streaming consumer follows.
type tapCollector struct {
	mu  sync.Mutex
	got map[string][]stream.Tuple
}

func newTapCollector() *tapCollector {
	return &tapCollector{got: make(map[string][]stream.Tuple)}
}

func (c *tapCollector) tap(q string) func([]stream.Tuple) {
	return func(ts []stream.Tuple) {
		c.mu.Lock()
		c.got[q] = append(c.got[q], ts...)
		c.mu.Unlock()
		PutBatch(ts)
	}
}

func (c *tapCollector) results(q string) []stream.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.got[q]
}

// TestStagedTapsAllSinks pins the service-plane delivery contract on the
// staged executor: tapping every sink of a mixed plan — parallel sinks that
// live on the shard runtimes, a global sink that lives on the suffix
// runtime — streams exactly the tuples the synchronous Engine accumulates,
// including the end-of-run flush emissions Stop drains, while Results stays
// empty for every tapped sink.
func TestStagedTapsAllSinks(t *testing.T) {
	tuples := keyedTuples(1000, 7)

	eng, err := New(mixedPlan())
	if err != nil {
		t.Fatal(err)
	}
	want := runExecutor(t, eng, tuples, 64, "raw", "ksums", "gsums")

	col := newTapCollector()
	st, err := StartStaged(func() (*Plan, error) { return mixedPlan(), nil },
		StagedConfig{
			ExecConfig: ExecConfig{Shards: 4, Buf: 8},
			Taps: map[string]func([]stream.Tuple){
				"raw":   col.tap("raw"),
				"ksums": col.tap("ksums"),
				"gsums": col.tap("gsums"),
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	got := runExecutor(t, st, tuples, 64, "raw", "ksums", "gsums")

	for _, q := range []string{"raw", "ksums", "gsums"} {
		if len(got[q]) != 0 {
			t.Errorf("Results(%q) = %d tuples, want 0: tapped sinks bypass the accumulator", q, len(got[q]))
		}
	}
	// The global sink's tap sees the merged, timestamp-ordered stream the
	// suffix runtime produces: exact sequence equality with the sync run.
	if !reflect.DeepEqual(multiset(col.results("gsums")), multiset(want["gsums"])) {
		t.Fatalf("tapped global results differ:\n got %v\nwant %v", col.results("gsums"), want["gsums"])
	}
	// Parallel sinks deliver in per-shard order only: multiset equality.
	for _, q := range []string{"raw", "ksums"} {
		g, w := multiset(col.results(q)), multiset(want[q])
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("tapped %q multiset mismatch (%d vs %d tuples)", q, len(g), len(w))
		}
	}
}

// TestStagedTapsSurviveReshard checks that user taps carry over to the shard
// runtimes a Reshard starts: tuples pushed after the boundary still reach
// the tap, and nothing is double-delivered.
func TestStagedTapsSurviveReshard(t *testing.T) {
	tuples := keyedTuples(800, 5)

	eng, err := New(shardablePlan())
	if err != nil {
		t.Fatal(err)
	}
	want := runExecutor(t, eng, tuples, 50, "raw", "sums")

	col := newTapCollector()
	st, err := StartStaged(func() (*Plan, error) { return shardablePlan(), nil },
		StagedConfig{
			ExecConfig: ExecConfig{Shards: 2, Buf: 8},
			Taps: map[string]func([]stream.Tuple){
				"raw":  col.tap("raw"),
				"sums": col.tap("sums"),
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	half := len(tuples) / 2
	if err := st.PushBatch("s", tuples[:half]); err != nil {
		t.Fatal(err)
	}
	if err := st.Reshard(4); err != nil {
		t.Fatal(err)
	}
	if err := st.PushBatch("s", tuples[half:]); err != nil {
		t.Fatal(err)
	}
	st.Stop()

	for _, q := range []string{"raw", "sums"} {
		if n := len(st.Results(q)); n != 0 {
			t.Errorf("Results(%q) = %d tuples after reshard, want 0", q, n)
		}
		g, w := multiset(col.results(q)), multiset(want[q])
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("tapped %q across reshard: multiset mismatch (%d vs %d tuples)", q, len(g), len(w))
		}
	}
}
