// Package engine is the Aurora-style continuous-query engine the paper's
// DSMS center assumes (Section II): a shared physical operator graph where
// one operator instance serves every query that contains it, upstream
// connection points that can hold and replay tuples, and an end-of-period
// transition phase that drains the subnetworks being modified before the
// plan changes — so queries that survive the auction keep producing correct
// results across periods.
//
// Execution is synchronous push-based (deterministic, single goroutine),
// which makes transition-phase correctness testable; the stream package's
// Pipeline offers goroutine execution for standalone operator chains. The
// concurrent executors (Runtime, Sharded, Staged) layer goroutine-per-
// operator and hash-partitioned execution on top of the same plans.
//
// # Bounded staging and spill
//
// Three places in the execution stack buffer tuples they cannot yet release,
// and each used to trade either memory or correctness for it: the staged
// executor's exchange merges grow per-shard FIFOs until punctuation arrives,
// the synchronous Engine drops held tuples past the transition cap, and the
// concurrent Runtime's non-blocking ingress sheds overflow even for queries
// whose plans promised zero loss. ExecConfig.StagingBudget bounds all three
// with one subsystem (internal/staging): buffered tuples are accounted
// against a shared byte budget, tuples past the budget spill to append-only
// framed disk segments under ExecConfig.SpillDir, and spilled runs replay in
// arrival order — after the resident tuples of the same lane — once pressure
// subsides. Memory stays within budget plus a bounded replay slack (one
// in-flight segment chunk per lane), and no tuple is dropped: a spill-write
// failure degrades that lane to resident-only buffering rather than losing
// data. Executors expose the accounting via StagingStats (resident and
// spilled bytes, segment and replay counts); dsmsd surfaces it per day
// (sim) and under "staging" in GET /v1/stats (serve).
//
// # Checkpoints
//
// The same segment format carries operator-state checkpoints:
// (*Staged).Checkpoint quiesces the parallel stage exactly like a reshard,
// exports every stream.KeyedStateMover's per-key state (open window buffers,
// join windows), writes it atomically to a state.ckpt segment, and resumes
// on a fresh epoch with the state re-imported. StagedConfig.Restore points a
// starting executor at such a directory and rebuilds the keyed state under
// the current partition map — a restarted deployment resumes mid-window
// instead of losing the open period. The global stage is not part of the
// snapshot: its state is unkeyed and rebuilds empty.
//
// # The punctuation contract
//
// Mid-run liveness of the staged executor depends on punctuation flowing
// through every operator: an exchange merge can only release a shard's
// buffered tuples up to the minimum punctuation watermark it has seen from
// all shards, so an operator that swallows markers stalls release until
// Stop. Built-in operators forward punctuation; a custom stream.Transform
// must declare how it does so by implementing stream.Punctuator (or
// stream.BinaryPunctuator for binary operators). An operator that declares
// neither still computes correct results, but every heartbeat entering it
// dies there — downstream exchange merges then hold (or, with staging,
// spill) tuples until the run ends. Plan analysis logs a one-time warning
// naming each such dark operator type.
package engine
