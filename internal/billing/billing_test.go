package billing

import (
	"sync"
	"testing"
)

func TestChargeAndBalances(t *testing.T) {
	l := NewLedger()
	inv, err := l.Charge(0, 1, "q1", 50)
	if err != nil {
		t.Fatal(err)
	}
	if inv.ID != 0 || inv.Amount != 50 || inv.User != 1 {
		t.Errorf("invoice = %+v", inv)
	}
	if _, err := l.Charge(0, 2, "q2", 60); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Charge(1, 1, "q1", 10); err != nil {
		t.Fatal(err)
	}
	if l.Balance(1) != 60 || l.Balance(2) != 60 || l.Balance(99) != 0 {
		t.Errorf("balances = %v / %v / %v", l.Balance(1), l.Balance(2), l.Balance(99))
	}
	if l.Revenue(0) != 110 || l.Revenue(1) != 10 || l.Revenue(-1) != 120 {
		t.Errorf("revenue = %v / %v / %v", l.Revenue(0), l.Revenue(1), l.Revenue(-1))
	}
	if len(l.Invoices()) != 3 {
		t.Errorf("invoices = %d, want 3", len(l.Invoices()))
	}
}

func TestNegativeChargeRejected(t *testing.T) {
	l := NewLedger()
	if _, err := l.Charge(0, 1, "q", -1); err == nil {
		t.Error("want error for negative charge")
	}
}

func TestZeroChargeAllowed(t *testing.T) {
	l := NewLedger()
	if _, err := l.Charge(0, 1, "q", 0); err != nil {
		t.Errorf("zero charge should be legal: %v", err)
	}
}

func TestTopUsers(t *testing.T) {
	l := NewLedger()
	mustCharge(t, l, 0, 1, 10)
	mustCharge(t, l, 0, 2, 30)
	mustCharge(t, l, 0, 3, 30)
	mustCharge(t, l, 0, 4, 5)
	got := l.TopUsers(3)
	want := []int{2, 3, 1} // 30, 30 (tie by ID), 10
	if len(got) != 3 {
		t.Fatalf("TopUsers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopUsers = %v, want %v", got, want)
		}
	}
	if n := len(l.TopUsers(100)); n != 4 {
		t.Errorf("TopUsers(100) = %d users, want 4", n)
	}
}

func TestConcurrentCharges(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := l.Charge(0, user, "q", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Revenue(-1) != 800 {
		t.Errorf("revenue = %v, want 800", l.Revenue(-1))
	}
	ids := map[int]bool{}
	for _, inv := range l.Invoices() {
		if ids[inv.ID] {
			t.Fatalf("duplicate invoice ID %d", inv.ID)
		}
		ids[inv.ID] = true
	}
}

func mustCharge(t *testing.T, l *Ledger, period, user int, amount float64) {
	t.Helper()
	if _, err := l.Charge(period, user, "q", amount); err != nil {
		t.Fatal(err)
	}
}

func TestChargeUsageKinds(t *testing.T) {
	l := NewLedger()
	adm, err := l.Charge(3, 1, "q1", 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Kind != KindAdmission {
		t.Errorf("Charge kind = %q, want %q", adm.Kind, KindAdmission)
	}
	use, err := l.ChargeUsage(3, 1, "q1", 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if use.Kind != KindUsage {
		t.Errorf("ChargeUsage kind = %q, want %q", use.Kind, KindUsage)
	}
	if use.ID != adm.ID+1 {
		t.Errorf("usage invoice ID = %d, want %d: both kinds share one ID sequence", use.ID, adm.ID+1)
	}
	if _, err := l.ChargeUsage(3, 1, "q1", -1); err == nil {
		t.Error("negative usage charge accepted, want error")
	}
	if got := l.Balance(1); got != 3.25 {
		t.Errorf("balance = %v, want 3.25: both kinds accrue to the balance", got)
	}
	if got := l.Revenue(3); got != 3.25 {
		t.Errorf("revenue = %v, want 3.25", got)
	}

	// Round-trip through Restore, including a legacy invoice with no Kind.
	invs := l.Invoices()
	legacy := Invoice{ID: len(invs), Period: 4, User: 2, Query: "q2", Amount: 1}
	restored, err := Restore(append(invs, legacy))
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Invoices()
	if got[0].Kind != KindAdmission || got[1].Kind != KindUsage || got[2].Kind != "" {
		t.Errorf("restored kinds = %q/%q/%q, want admission/usage/(empty legacy)", got[0].Kind, got[1].Kind, got[2].Kind)
	}
	if restored.Balance(1) != 3.25 || restored.Balance(2) != 1 {
		t.Errorf("restored balances = %v/%v, want 3.25/1", restored.Balance(1), restored.Balance(2))
	}
}
