package billing

import (
	"sync"
	"testing"
)

func TestChargeAndBalances(t *testing.T) {
	l := NewLedger()
	inv, err := l.Charge(0, 1, "q1", 50)
	if err != nil {
		t.Fatal(err)
	}
	if inv.ID != 0 || inv.Amount != 50 || inv.User != 1 {
		t.Errorf("invoice = %+v", inv)
	}
	if _, err := l.Charge(0, 2, "q2", 60); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Charge(1, 1, "q1", 10); err != nil {
		t.Fatal(err)
	}
	if l.Balance(1) != 60 || l.Balance(2) != 60 || l.Balance(99) != 0 {
		t.Errorf("balances = %v / %v / %v", l.Balance(1), l.Balance(2), l.Balance(99))
	}
	if l.Revenue(0) != 110 || l.Revenue(1) != 10 || l.Revenue(-1) != 120 {
		t.Errorf("revenue = %v / %v / %v", l.Revenue(0), l.Revenue(1), l.Revenue(-1))
	}
	if len(l.Invoices()) != 3 {
		t.Errorf("invoices = %d, want 3", len(l.Invoices()))
	}
}

func TestNegativeChargeRejected(t *testing.T) {
	l := NewLedger()
	if _, err := l.Charge(0, 1, "q", -1); err == nil {
		t.Error("want error for negative charge")
	}
}

func TestZeroChargeAllowed(t *testing.T) {
	l := NewLedger()
	if _, err := l.Charge(0, 1, "q", 0); err != nil {
		t.Errorf("zero charge should be legal: %v", err)
	}
}

func TestTopUsers(t *testing.T) {
	l := NewLedger()
	mustCharge(t, l, 0, 1, 10)
	mustCharge(t, l, 0, 2, 30)
	mustCharge(t, l, 0, 3, 30)
	mustCharge(t, l, 0, 4, 5)
	got := l.TopUsers(3)
	want := []int{2, 3, 1} // 30, 30 (tie by ID), 10
	if len(got) != 3 {
		t.Fatalf("TopUsers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopUsers = %v, want %v", got, want)
		}
	}
	if n := len(l.TopUsers(100)); n != 4 {
		t.Errorf("TopUsers(100) = %d users, want 4", n)
	}
}

func TestConcurrentCharges(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := l.Charge(0, user, "q", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Revenue(-1) != 800 {
		t.Errorf("revenue = %v, want 800", l.Revenue(-1))
	}
	ids := map[int]bool{}
	for _, inv := range l.Invoices() {
		if ids[inv.ID] {
			t.Fatalf("duplicate invoice ID %d", inv.ID)
		}
		ids[inv.ID] = true
	}
}

func mustCharge(t *testing.T, l *Ledger, period, user int, amount float64) {
	t.Helper()
	if _, err := l.Charge(period, user, "q", amount); err != nil {
		t.Fatal(err)
	}
}
