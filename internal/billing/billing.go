// Package billing is the DSMS center's revenue ledger: accounts for each
// user, invoices issued per subscription period from auction outcomes, and
// revenue reports. The paper's business model charges each admitted query
// its auction payment at the start of each period.
package billing

import (
	"fmt"
	"sort"
	"sync"
)

// Invoice records one charge: a user owes Amount for running Query during
// Period. Kind distinguishes the paper's per-period auction payment
// (KindAdmission) from the service plane's usage metering (KindUsage); the
// empty string reads as KindAdmission, so invoices exported before the
// field existed restore unchanged.
type Invoice struct {
	ID     int
	Period int
	User   int
	Query  string
	Amount float64
	Kind   string `json:",omitempty"`
}

// Invoice kinds.
const (
	// KindAdmission is an auction payment: the critical value charged for
	// holding a subscription through one period.
	KindAdmission = "admission"
	// KindUsage is a metered charge: price per unit of measured operator
	// load the query imposed on the center during one period.
	KindUsage = "usage"
)

// Ledger accumulates invoices and per-user balances. It is safe for
// concurrent use.
type Ledger struct {
	mu       sync.Mutex
	invoices []Invoice
	balances map[int]float64
	nextID   int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{balances: make(map[int]float64)}
}

// Restore rebuilds a ledger from a previously exported invoice list
// (Invoices()); balances and the next invoice ID are recomputed. It returns
// an error if the invoices are not in issue order or contain negative
// amounts.
func Restore(invoices []Invoice) (*Ledger, error) {
	l := NewLedger()
	for i, inv := range invoices {
		if inv.ID != i {
			return nil, fmt.Errorf("billing: invoice %d out of order (ID %d)", i, inv.ID)
		}
		if inv.Amount < 0 {
			return nil, fmt.Errorf("billing: invoice %d has negative amount %.4f", i, inv.Amount)
		}
		l.invoices = append(l.invoices, inv)
		l.balances[inv.User] += inv.Amount
		l.nextID++
	}
	return l, nil
}

// Charge records an invoice and returns it. Zero-amount charges are legal —
// a winner whose critical value is zero still holds a subscription.
func (l *Ledger) Charge(period, user int, queryName string, amount float64) (Invoice, error) {
	if amount < 0 {
		return Invoice{}, fmt.Errorf("billing: negative charge %.4f for user %d", amount, user)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.record(Invoice{Period: period, User: user, Query: queryName, Amount: amount, Kind: KindAdmission}), nil
}

// ChargeUsage records a metered-usage invoice: amount is the measured load
// the query imposed during the period times the center's metering price.
func (l *Ledger) ChargeUsage(period, user int, queryName string, amount float64) (Invoice, error) {
	if amount < 0 {
		return Invoice{}, fmt.Errorf("billing: negative usage charge %.4f for user %d", amount, user)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.record(Invoice{Period: period, User: user, Query: queryName, Amount: amount, Kind: KindUsage}), nil
}

// record issues the next invoice ID and books the invoice; callers hold mu.
func (l *Ledger) record(inv Invoice) Invoice {
	inv.ID = l.nextID
	l.nextID++
	l.invoices = append(l.invoices, inv)
	l.balances[inv.User] += inv.Amount
	return inv
}

// Balance returns the total charged to a user across all periods.
func (l *Ledger) Balance(user int) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[user]
}

// Revenue returns the total charged in the given period (all periods if
// period < 0).
func (l *Ledger) Revenue(period int) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum float64
	for _, inv := range l.invoices {
		if period < 0 || inv.Period == period {
			sum += inv.Amount
		}
	}
	return sum
}

// Invoices returns a copy of all invoices in issue order.
func (l *Ledger) Invoices() []Invoice {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Invoice(nil), l.invoices...)
}

// TopUsers returns the n users with the highest total charges, descending;
// ties break on user ID ascending.
func (l *Ledger) TopUsers(n int) []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	users := make([]int, 0, len(l.balances))
	for u := range l.balances {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool {
		bi, bj := l.balances[users[i]], l.balances[users[j]]
		if bi != bj {
			return bi > bj
		}
		return users[i] < users[j]
	})
	if n < len(users) {
		users = users[:n]
	}
	return users
}
