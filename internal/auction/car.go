package auction

import (
	"math"

	"repro/internal/query"
)

// car implements the CAR mechanism (paper Section IV-A): queries are chosen
// iteratively by highest remaining-load priority b_i / C_R(i), where C_R(i)
// shrinks as winners that share i's operators are admitted. Payments charge
// each winner her admission-time remaining load at the first loser's
// per-unit remaining-load price.
//
// CAR is the paper's cautionary baseline: it is NOT bid-strategyproof — a
// user sharing operators with other winners can lower her bid so she is
// picked later, with a smaller C_R and hence a smaller payment (demonstrated
// by gametheory.FindBidDeviation and the Fig 5 lying workloads).
type car struct{}

// NewCAR returns the CAR mechanism.
func NewCAR() Mechanism { return car{} }

func (car) Name() string { return "CAR" }

func (car) Run(p *query.Pool, capacity float64) *Outcome {
	n := p.NumQueries()
	tracker := query.NewLoadTracker(p)
	chosen := make([]bool, n)
	admissionCR := make([]float64, n)
	winners := make([]query.QueryID, 0, n)

	// remaining[i] caches C_R(i) against the current winner set; it is
	// refreshed incrementally after each admission (operators are only ever
	// newly provisioned, so C_R only decreases).
	remaining := make([]float64, n)
	for i := 0; i < n; i++ {
		remaining[i] = p.TotalLoad(query.QueryID(i))
	}

	var lostID query.QueryID = -1
	var lostCR float64
	for len(winners) < n {
		best := -1
		bestPri := math.Inf(-1)
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			pri := priorityOf(p.Bid(query.QueryID(i)), remaining[i])
			if pri > bestPri {
				bestPri, best = pri, i
			}
		}
		if best == -1 {
			break
		}
		id := query.QueryID(best)
		if !fits(tracker, remaining[best], capacity) {
			// First query that does not fit: CAR stops here; this is q_lost.
			lostID, lostCR = id, remaining[best]
			break
		}
		chosen[best] = true
		admissionCR[best] = remaining[best]
		winners = append(winners, id)
		// Newly provisioned operators shrink the remaining load of every
		// query sharing them.
		for _, op := range p.Query(id).Operators {
			if tracker.Provisioned(op) {
				continue
			}
			load := p.Operator(op).Load
			for _, q := range p.Operator(op).Queries {
				if !chosen[q] {
					remaining[q] -= load
				}
			}
		}
		tracker.Admit(id)
	}

	payments := make([]float64, n)
	if lostID >= 0 && lostCR > 0 {
		unit := p.Bid(lostID) / lostCR
		for _, w := range winners {
			payments[w] = admissionCR[w] * unit
		}
	}
	out := newOutcome("CAR", p, capacity, winners, payments)
	out.allowAboveBid = true
	return out
}
