package auction

import (
	"math"
	"sort"

	"repro/internal/query"
)

// optWelfare is the exhaustive social-welfare benchmark: the feasible winner
// set maximizing the sum of valuations. The paper (Section III) notes the
// shared-operator selection problem generalizes the densest-subgraph
// problem, so no polynomial approximation is known — this implementation is
// branch-and-bound over subsets and is intended for small instances
// (ablations and tests), not production auctions. It charges nothing: it is
// an efficiency yardstick, not a mechanism.
type optWelfare struct {
	// Limit bounds the instance size; larger pools return the best solution
	// found by the greedy fallback bound instead of exploding.
	limit int
}

// NewOptWelfare returns the exhaustive welfare benchmark for instances of at
// most limit queries (default 20 when limit <= 0).
func NewOptWelfare(limit int) Mechanism {
	if limit <= 0 {
		limit = 20
	}
	return &optWelfare{limit: limit}
}

func (*optWelfare) Name() string { return "OPT_W" }

func (m *optWelfare) Run(p *query.Pool, capacity float64) *Outcome {
	n := p.NumQueries()
	payments := make([]float64, n)
	var winners []query.QueryID
	if n <= m.limit {
		winners = exhaustiveWelfare(p, capacity)
	} else {
		winners = greedyWelfare(p, capacity)
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i] < winners[j] })
	return newOutcome("OPT_W", p, capacity, winners, payments)
}

// exhaustiveWelfare branch-and-bounds over inclusion decisions in
// value-density order, pruning with the fractional-knapsack upper bound on
// remaining value (computed against remaining loads, which upper-bounds the
// true shared cost and therefore never prunes an optimal branch... the bound
// uses value only, which is always admissible).
func exhaustiveWelfare(p *query.Pool, capacity float64) []query.QueryID {
	n := p.NumQueries()
	order := make([]query.QueryID, n)
	for i := range order {
		order[i] = query.QueryID(i)
	}
	// Highest value first gives the bound tighter prefixes.
	sort.SliceStable(order, func(a, b int) bool { return p.Value(order[a]) > p.Value(order[b]) })
	suffixValue := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffixValue[i] = suffixValue[i+1] + p.Value(order[i])
	}

	best := math.Inf(-1)
	var bestSet []query.QueryID
	tracker := query.NewLoadTracker(p)
	var current []query.QueryID

	var visit func(i int, value float64)
	visit = func(i int, value float64) {
		if value > best {
			best = value
			bestSet = append(bestSet[:0], current...)
		}
		if i == n || value+suffixValue[i] <= best {
			return
		}
		id := order[i]
		// Branch 1: include (if feasible).
		rem := tracker.Remaining(id)
		if tracker.Load()+rem <= capacity+fitEps {
			// LoadTracker has no un-admit; emulate by snapshotting the used
			// operators this admission provisions.
			var fresh []query.OperatorID
			for _, op := range p.Query(id).Operators {
				if !tracker.Provisioned(op) {
					fresh = append(fresh, op)
				}
			}
			tracker.Admit(id)
			current = append(current, id)
			visit(i+1, value+p.Value(id))
			current = current[:len(current)-1]
			tracker.Release(fresh)
		}
		// Branch 2: exclude.
		visit(i+1, value)
	}
	visit(0, 0)
	return bestSet
}

// greedyWelfare is the large-instance fallback: density greedy by
// value/remaining-load, recomputed as operators are provisioned (CAR's
// selection with valuations) — a reasonable welfare heuristic.
func greedyWelfare(p *query.Pool, capacity float64) []query.QueryID {
	n := p.NumQueries()
	tracker := query.NewLoadTracker(p)
	chosen := make([]bool, n)
	var winners []query.QueryID
	for {
		best, bestPri := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			id := query.QueryID(i)
			rem := tracker.Remaining(id)
			if tracker.Load()+rem > capacity+fitEps {
				continue
			}
			pri := priorityOf(p.Value(id), rem)
			if pri > bestPri {
				bestPri, best = pri, i
			}
		}
		if best == -1 {
			return winners
		}
		chosen[best] = true
		tracker.Admit(query.QueryID(best))
		winners = append(winners, query.QueryID(best))
	}
}

// Welfare returns the social welfare of an outcome: the sum of admitted
// valuations.
func Welfare(o *Outcome) float64 {
	var sum float64
	for _, w := range o.Winners {
		sum += o.pool.Value(w)
	}
	return sum
}
