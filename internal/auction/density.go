package auction

import (
	"repro/internal/query"
)

// LoadNotion selects which per-query load definition a density mechanism
// uses for its priorities and payments (the capacity check always uses the
// actual incremental load, per paper Algorithms 1-2).
type LoadNotion int

const (
	// FairShare uses the static fair-share load C_SF (paper Definition 3).
	FairShare LoadNotion = iota
	// Total uses the total load C_T (paper Section IV-C).
	Total
)

func (ln LoadNotion) loadOf(p *query.Pool, id query.QueryID) float64 {
	if ln == FairShare {
		return p.FairShareLoad(id)
	}
	return p.TotalLoad(id)
}

// density implements the four greedy density mechanisms. With skip == false
// it admits the maximal priority-ordered prefix that fits and charges every
// winner the first loser's per-unit-load price (CAF, CAT). With skip == true
// it skips over queries that do not fit, continues down the list (CAF+,
// CAT+), and charges each winner her movement-window critical value (paper
// Definitions 5-6).
type density struct {
	name   string
	notion LoadNotion
	skip   bool
}

// NewCAF returns the CAF mechanism: fair-share priorities, prefix stop,
// first-loser pricing (paper Algorithm 1). Strategyproof; universally
// vulnerable to sybil attack.
func NewCAF() Mechanism { return &density{name: "CAF", notion: FairShare} }

// NewCAFPlus returns the CAF+ mechanism: fair-share priorities,
// skip-and-continue, movement-window pricing (paper Algorithm 2).
// Strategyproof; universally vulnerable to sybil attack.
func NewCAFPlus() Mechanism { return &density{name: "CAF+", notion: FairShare, skip: true} }

// NewCAT returns the CAT mechanism: total-load priorities, prefix stop,
// first-loser pricing. Strategyproof and sybil-strategyproof (paper
// Theorem 19) — the only mechanism with both properties.
func NewCAT() Mechanism { return &density{name: "CAT", notion: Total} }

// NewCATPlus returns the CAT+ mechanism: total-load priorities,
// skip-and-continue, movement-window pricing. Strategyproof but vulnerable
// to the paper's Table II sybil attack.
func NewCATPlus() Mechanism { return &density{name: "CAT+", notion: Total, skip: true} }

func (d *density) Name() string { return d.name }

func (d *density) Run(p *query.Pool, capacity float64) *Outcome {
	n := p.NumQueries()
	loads := make([]float64, n)
	pri := make([]float64, n)
	for i := 0; i < n; i++ {
		id := query.QueryID(i)
		loads[i] = d.notion.loadOf(p, id)
		pri[i] = priorityOf(p.Bid(id), loads[i])
	}
	order := byPriority(n, pri)

	winners, lost := d.selectWinners(p, capacity, order)
	payments := make([]float64, n)
	if d.skip {
		d.movementWindowPayments(p, capacity, order, winners, loads, payments)
	} else if lost >= 0 {
		lostID := order[lost]
		unit := p.Bid(lostID) / loads[lostID] // loads[lost] > 0: zero-load queries always fit
		for _, w := range winners {
			payments[w] = loads[w] * unit
		}
	}
	return newOutcome(d.name, p, capacity, winners, payments)
}

// selectWinners runs the greedy admission over the priority order. It
// returns the winners in admission order and, for prefix mode, the position
// in order of the first loser (-1 if every query was admitted).
func (d *density) selectWinners(p *query.Pool, capacity float64, order []query.QueryID) ([]query.QueryID, int) {
	tracker := query.NewLoadTracker(p)
	winners := make([]query.QueryID, 0, len(order))
	for pos, id := range order {
		rem := tracker.Remaining(id)
		if fits(tracker, rem, capacity) {
			tracker.Admit(id)
			winners = append(winners, id)
			continue
		}
		if !d.skip {
			return winners, pos
		}
	}
	return winners, -1
}

// movementWindowPayments computes the CAF+/CAT+ critical-value payments.
//
// For winner i, last(i) is the first position j after i in the priority list
// such that, were i's priority lowered to sit directly below position j, the
// skip-greedy would reject i. Because skip-greedy admits a query exactly
// when it fits against the set admitted from earlier positions, this is
// equivalent to simulating one greedy pass over the order with i removed and
// testing, after each position j ≥ pos(i), whether i still fits. That turns
// the textbook O(W·n) full re-runs into a single O(n) pass per winner while
// computing the identical quantity (see DESIGN.md "Substitutions").
func (d *density) movementWindowPayments(p *query.Pool, capacity float64, order []query.QueryID, winners []query.QueryID, loads, payments []float64) {
	posOf := make([]int, p.NumQueries())
	for pos, id := range order {
		posOf[id] = pos
	}
	for _, w := range winners {
		payments[w] = d.criticalPayment(p, capacity, order, w, posOf[w], loads)
	}
}

// criticalPayment simulates skip-greedy over order with query w removed,
// checking after each position j ≥ pos whether w would still fit. The first
// failing position is last(w); the payment is load(w) · Pr(last(w)). If w
// fits after every position the movement window spans the whole remaining
// list and the payment is zero (paper Definition 6).
func (d *density) criticalPayment(p *query.Pool, capacity float64, order []query.QueryID, w query.QueryID, pos int, loads []float64) float64 {
	tracker := query.NewLoadTracker(p)
	for j, id := range order {
		if id == w {
			continue
		}
		if rem := tracker.Remaining(id); fits(tracker, rem, capacity) {
			tracker.Admit(id)
		}
		if j < pos {
			continue
		}
		if !fits(tracker, tracker.Remaining(w), capacity) {
			// Moving w directly below position j gets w rejected: position j
			// holds last(w).
			unit := priorityOf(p.Bid(id), loads[id])
			return loads[w] * unit
		}
	}
	return 0
}
