package auction

import (
	"fmt"

	"repro/internal/query"
)

// reserve wraps a density mechanism with a reserve price per unit of load:
// queries whose per-unit bid falls below the reserve are excluded before the
// auction, and every winner pays at least reserve × load.
//
// This is the mechanism-level rendering of the paper's Section VII
// observation that running at full capacity can collapse prices: a reserve
// floor keeps the threshold price from being driven to zero when sharing
// (or over-capacity) lets everyone in, at the cost of admitting fewer
// queries. Monotonicity and critical-value pricing are preserved — the
// critical value simply becomes max(threshold, reserve × load) — so the
// wrapped mechanism stays bid-strategyproof.
type reserve struct {
	inner   *density
	perUnit float64
}

// NewReserveCAT returns CAT with a per-unit-load reserve price.
func NewReserveCAT(perUnit float64) (Mechanism, error) {
	if perUnit < 0 {
		return nil, fmt.Errorf("auction: reserve price must be non-negative, got %g", perUnit)
	}
	return &reserve{inner: &density{name: "CAT", notion: Total}, perUnit: perUnit}, nil
}

// MustReserveCAT is NewReserveCAT that panics on error.
func MustReserveCAT(perUnit float64) Mechanism {
	m, err := NewReserveCAT(perUnit)
	if err != nil {
		panic(err)
	}
	return m
}

func (r *reserve) Name() string { return fmt.Sprintf("CAT-R%g", r.perUnit) }

func (r *reserve) Run(p *query.Pool, capacity float64) *Outcome {
	n := p.NumQueries()
	// Exclude below-reserve queries by running the inner mechanism on a pool
	// where their bids are zeroed (zero-bid queries sort last and, if they
	// ever fit, pay at least the reserve check below keeps them out).
	loads := make([]float64, n)
	eligible := make([]bool, n)
	b := query.NewBuilder()
	for _, op := range p.Operators() {
		b.AddOperator(op.Load)
	}
	for _, q := range p.Queries() {
		loads[q.ID] = r.inner.notion.loadOf(p, q.ID)
		bid := q.Bid
		if bid < r.perUnit*loads[q.ID] {
			bid = 0
		} else {
			eligible[q.ID] = true
		}
		b.AddQueryValued(bid, q.Value, q.User, q.Operators...)
	}
	masked := b.MustBuild()

	inner := r.inner.Run(masked, capacity)
	winners := make([]query.QueryID, 0, len(inner.Winners))
	payments := make([]float64, n)
	for _, w := range inner.Winners {
		if !eligible[w] {
			continue
		}
		winners = append(winners, w)
		floor := r.perUnit * loads[w]
		if pay := inner.Payment(w); pay > floor {
			payments[w] = pay
		} else {
			payments[w] = floor
		}
	}
	return newOutcome(r.Name(), p, capacity, winners, payments)
}
