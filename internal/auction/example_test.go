package auction_test

import (
	"fmt"
	"testing"

	"repro/internal/auction"
	"repro/internal/query"
)

// ExampleMechanism runs the paper's Example 1 under CAT: operator A (load
// 4) is shared by q1 and q2, so the pair's aggregate load is 7 and both fit
// in capacity 10; q3 prices them at $10 per unit of total load.
func ExampleMechanism() {
	b := query.NewBuilder()
	opA := b.AddOperator(4)
	opB := b.AddOperator(1)
	opC := b.AddOperator(2)
	opD := b.AddOperator(6)
	opE := b.AddOperator(4)
	b.AddQuery(55, opA, opB)
	b.AddQuery(72, opA, opC)
	b.AddQuery(100, opD, opE)
	pool := b.MustBuild()

	out := auction.NewCAT().Run(pool, 10)
	fmt.Printf("winners: %v\n", out.Winners)
	fmt.Printf("q1 pays $%.0f, q2 pays $%.0f, profit $%.0f\n",
		out.Payment(0), out.Payment(1), out.Profit())
	// Output:
	// winners: [1 0]
	// q1 pays $50, q2 pays $60, profit $110
}

func ExampleByName() {
	m, err := auction.ByName("CAF", 0)
	if err != nil {
		panic(err)
	}
	pool, capacity := query.Example1()
	fmt.Printf("%s profit: $%.0f\n", m.Name(), m.Run(pool, capacity).Profit())
	// Output: CAF profit: $70
}

func TestByName(t *testing.T) {
	for _, name := range auction.Names() {
		m, err := auction.ByName(name, 7)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := auction.ByName("nope", 0); err == nil {
		t.Error("want error for unknown name")
	}
}

// TestThresholdStructure: for the prefix mechanisms, every winner's priority
// is at least the first loser's priority — the threshold structure that
// makes first-loser pricing a critical value.
func TestThresholdStructure(t *testing.T) {
	pool, capacity := query.Example1()
	out := auction.NewCAT().Run(pool, capacity)
	lostPri := pool.Bid(2) / pool.TotalLoad(2)
	for _, w := range out.Winners {
		if pri := pool.Bid(w) / pool.TotalLoad(w); pri < lostPri {
			t.Errorf("winner %d priority %.2f below loser's %.2f", w, pri, lostPri)
		}
	}
}
