package auction_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/auction"
	"repro/internal/query"
)

// randomPool builds an arbitrary valid pool with operator sharing.
func randomPool(rng *rand.Rand) *query.Pool {
	b := query.NewBuilder()
	numOps := 1 + rng.Intn(15)
	ops := make([]query.OperatorID, numOps)
	for i := range ops {
		ops[i] = b.AddOperator(0.5 + rng.Float64()*9.5)
	}
	numQueries := 2 + rng.Intn(12)
	for q := 0; q < numQueries; q++ {
		k := 1 + rng.Intn(min(4, numOps))
		chosen := rng.Perm(numOps)[:k]
		ids := make([]query.OperatorID, k)
		for i, c := range chosen {
			ids[i] = ops[c]
		}
		bid := 1 + rng.Float64()*99
		b.AddQueryValued(bid, bid, q, ids...)
	}
	return b.MustBuild()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func allMechanisms() []auction.Mechanism {
	return []auction.Mechanism{
		auction.NewCAR(),
		auction.NewCAF(),
		auction.NewCAFPlus(),
		auction.NewCAT(),
		auction.NewCATPlus(),
		auction.NewGV(),
		auction.NewTwoPrice(11),
		auction.NewRandom(11),
		auction.NewOptConstant(),
	}
}

// TestUniversalInvariants property-checks every mechanism on random pools:
// capacity feasibility, losers pay zero, payments within [0, bid], winner
// lists deduplicated.
func TestUniversalInvariants(t *testing.T) {
	f := func(seed int64, capScale uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPool(rng)
		all := make([]query.QueryID, p.NumQueries())
		for i := range all {
			all[i] = query.QueryID(i)
		}
		capacity := p.AggregateLoad(all) * (0.1 + float64(capScale%100)/100)
		for _, m := range allMechanisms() {
			out := m.Run(p, capacity)
			if err := out.Validate(); err != nil {
				t.Logf("mechanism %s: %v", m.Name(), err)
				return false
			}
			seen := map[query.QueryID]bool{}
			for _, w := range out.Winners {
				if seen[w] {
					t.Logf("mechanism %s: duplicate winner %d", m.Name(), w)
					return false
				}
				seen[w] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDeterminism verifies mechanisms are pure functions of their inputs
// (the randomized ones are seeded).
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomPool(rng)
	for _, m := range allMechanisms() {
		a := m.Run(p, 20)
		b := m.Run(p, 20)
		if len(a.Winners) != len(b.Winners) {
			t.Fatalf("%s: winner counts differ between runs", m.Name())
		}
		for i := range a.Winners {
			if a.Winners[i] != b.Winners[i] {
				t.Fatalf("%s: winners differ between runs", m.Name())
			}
		}
		for i := range a.Payments {
			if a.Payments[i] != b.Payments[i] {
				t.Fatalf("%s: payments differ between runs", m.Name())
			}
		}
	}
}

// TestPrefixVsSkip: the + variants admit a superset of queries whenever a
// large query blocks the prefix but later small queries fit.
func TestPrefixVsSkip(t *testing.T) {
	b := query.NewBuilder()
	big := b.AddOperator(8)
	mid := b.AddOperator(5)
	small := b.AddOperator(1)
	b.AddQuery(80, big)  // density 10, admitted first
	b.AddQuery(45, mid)  // density 9, does not fit after big (8+5 > 10)
	b.AddQuery(5, small) // density 5, fits in the leftover
	p := b.MustBuild()

	caf := auction.NewCAF().Run(p, 10)
	if len(caf.Winners) != 1 || caf.Winners[0] != 0 {
		t.Fatalf("CAF winners = %v, want [0] (prefix stops at first non-fit)", caf.Winners)
	}
	cafPlus := auction.NewCAFPlus().Run(p, 10)
	if len(cafPlus.Winners) != 2 || !cafPlus.IsWinner(0) || !cafPlus.IsWinner(2) {
		t.Fatalf("CAF+ winners = %v, want {0, 2} (skips the non-fitting query)", cafPlus.Winners)
	}
}

// TestCAFPaymentIsFirstLoserRate pins Algorithm 1 step 5 on a no-sharing
// instance where fair-share equals total load.
func TestCAFPaymentIsFirstLoserRate(t *testing.T) {
	b := query.NewBuilder()
	o1 := b.AddOperator(2)
	o2 := b.AddOperator(4)
	o3 := b.AddOperator(5)
	b.AddQuery(20, o1) // density 10
	b.AddQuery(24, o2) // density 6
	b.AddQuery(20, o3) // density 4 -> first loser (2+4+5 > 8)
	p := b.MustBuild()
	out := auction.NewCAF().Run(p, 8)
	if len(out.Winners) != 2 {
		t.Fatalf("winners = %v, want two", out.Winners)
	}
	// Unit price = 20/5 = 4; q0 pays 2*4=8, q1 pays 4*4=16.
	if !almost(out.Payment(0), 8) || !almost(out.Payment(1), 16) {
		t.Errorf("payments = %v / %v, want 8 / 16", out.Payment(0), out.Payment(1))
	}
}

// TestNoLoserMeansFreeService: when every query fits, threshold pricing has
// no first loser and everyone is served at price zero.
func TestNoLoserMeansFreeService(t *testing.T) {
	b := query.NewBuilder()
	o1 := b.AddOperator(1)
	o2 := b.AddOperator(2)
	b.AddQuery(10, o1)
	b.AddQuery(20, o2)
	p := b.MustBuild()
	for _, m := range []auction.Mechanism{auction.NewCAF(), auction.NewCAT(), auction.NewCAR(), auction.NewGV()} {
		out := m.Run(p, 100)
		if len(out.Winners) != 2 {
			t.Errorf("%s admitted %d, want 2", m.Name(), len(out.Winners))
		}
		if out.Profit() != 0 {
			t.Errorf("%s profit = %v, want 0 with no loser", m.Name(), out.Profit())
		}
	}
}

// TestGVPayments: all winners pay the first losing bid.
func TestGVPayments(t *testing.T) {
	b := query.NewBuilder()
	o1 := b.AddOperator(4)
	o2 := b.AddOperator(4)
	o3 := b.AddOperator(4)
	b.AddQuery(90, o1)
	b.AddQuery(70, o2)
	b.AddQuery(50, o3)
	p := b.MustBuild()
	out := auction.NewGV().Run(p, 8)
	if len(out.Winners) != 2 {
		t.Fatalf("winners = %v, want 2", out.Winners)
	}
	if !almost(out.Payment(0), 50) || !almost(out.Payment(1), 50) {
		t.Errorf("payments = %v / %v, want 50 / 50 (first losing bid)", out.Payment(0), out.Payment(1))
	}
}

// TestGVSharedCapacityCheck: GV's capacity check exploits sharing like the
// density mechanisms.
func TestGVSharedCapacityCheck(t *testing.T) {
	b := query.NewBuilder()
	shared := b.AddOperator(6)
	solo := b.AddOperator(3)
	b.AddQuery(90, shared)
	b.AddQuery(70, shared, solo)
	p := b.MustBuild()
	out := auction.NewGV().Run(p, 9)
	if len(out.Winners) != 2 {
		t.Fatalf("winners = %v, want both (aggregate load 9 fits)", out.Winners)
	}
}

// TestRandomBaseline: admits a feasible prefix and charges nothing.
func TestRandomBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomPool(rng)
	out := auction.NewRandom(9).Run(p, 15)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.Profit() != 0 {
		t.Errorf("random baseline profit = %v, want 0", out.Profit())
	}
}

// TestCARStopsAtFirstNonFit pins the paper's Example-1 narration: the third
// iteration encounters q3, which does not fit, and the auction stops there.
func TestCARStopsAtFirstNonFit(t *testing.T) {
	p, capacity := query.Example1()
	out := auction.NewCAR().Run(p, capacity)
	if out.IsWinner(2) {
		t.Error("q3 must lose")
	}
	// q_lost = q3 with remaining load 10 and bid 100: unit price 10.
	if !almost(out.Payment(1), 60) {
		t.Errorf("q2 pays %v, want 60 = admission-time C_R 6 × unit 10", out.Payment(1))
	}
}

// TestCARZeroRemainingLoadRidesFree: a query whose operators are all
// provisioned by earlier winners has infinite priority and zero incremental
// load.
func TestCARZeroRemainingLoadRidesFree(t *testing.T) {
	b := query.NewBuilder()
	shared := b.AddOperator(5)
	solo := b.AddOperator(6)
	b.AddQuery(50, shared) // density 10, picked first
	b.AddQuery(1, shared)  // rides free after q0
	b.AddQuery(60, solo)   // density 10, but does not fit after q0
	p := b.MustBuild()
	out := auction.NewCAR().Run(p, 10)
	if !out.IsWinner(0) || !out.IsWinner(1) {
		t.Fatalf("winners = %v, want q0 and q1", out.Winners)
	}
	if out.IsWinner(2) {
		t.Error("q2 cannot fit")
	}
	if !almost(out.Payment(1), 0) {
		t.Errorf("free-riding q1 pays %v, want 0 (zero remaining load)", out.Payment(1))
	}
}
