package auction

import (
	"fmt"
	"sort"
)

// ByName constructs a mechanism from its paper name ("CAR", "CAF", "CAF+",
// "CAT", "CAT+", "GV", "Two-price", "Random", "OPT_C"). The seed drives the
// randomized mechanisms and is ignored by the deterministic ones.
func ByName(name string, seed int64) (Mechanism, error) {
	switch name {
	case "CAR":
		return NewCAR(), nil
	case "CAF":
		return NewCAF(), nil
	case "CAF+":
		return NewCAFPlus(), nil
	case "CAT":
		return NewCAT(), nil
	case "CAT+":
		return NewCATPlus(), nil
	case "GV":
		return NewGV(), nil
	case "Two-price":
		return NewTwoPrice(seed), nil
	case "Random":
		return NewRandom(seed), nil
	case "OPT_C":
		return NewOptConstant(), nil
	case "OPT_W":
		return NewOptWelfare(0), nil
	case "VCG":
		return NewVCG(0), nil
	default:
		return nil, fmt.Errorf("auction: unknown mechanism %q (have %v)", name, Names())
	}
}

// Names lists every mechanism name accepted by ByName, sorted. OPT_C, OPT_W
// and VCG are benchmarks rather than deployable mechanisms (the first two
// charge constant/no prices; VCG is exponential).
func Names() []string {
	names := []string{"CAR", "CAF", "CAF+", "CAT", "CAT+", "GV", "Two-price", "Random", "OPT_C", "OPT_W", "VCG"}
	sort.Strings(names)
	return names
}
