package auction

import (
	"sort"

	"repro/internal/query"
)

// optConstant computes the optimal constant-pricing profit OPT_C (paper
// Section IV-D): the best profit attainable by any valid single price p,
// where every query bidding strictly above p must be admitted (and must
// fit), queries bidding exactly p may be admitted or not, and every winner
// pays p.
//
// OPT_C is a benchmark, not a strategyproof mechanism; the Two-price profit
// guarantee (Theorem 11) is stated against it. Candidate prices need only be
// the distinct bid values: for a fixed set of mandatory winners the profit
// p·|winners| is maximized by pushing p up to the next bid.
type optConstant struct{}

// NewOptConstant returns the OPT_C benchmark as a Mechanism so it can run in
// the same experiment harness as the real mechanisms.
func NewOptConstant() Mechanism { return optConstant{} }

func (optConstant) Name() string { return "OPT_C" }

func (optConstant) Run(p *query.Pool, capacity float64) *Outcome {
	n := p.NumQueries()
	order := make([]query.QueryID, n)
	for i := range order {
		order[i] = query.QueryID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ba, bb := p.Bid(order[a]), p.Bid(order[b])
		if ba != bb {
			return ba > bb
		}
		return order[a] < order[b]
	})

	bestProfit := 0.0
	var bestWinners []query.QueryID
	var bestPrice float64

	// Sweep candidate prices from the highest bid down. mandatory is the
	// prefix of queries bidding strictly above the candidate price; its
	// aggregate load is maintained incrementally.
	tracker := query.NewLoadTracker(p)
	mandatory := make([]query.QueryID, 0, n)
	feasible := true
	i := 0
	for i < n {
		price := p.Bid(order[i])
		// The tie block: every query bidding exactly price.
		j := i
		for j < n && p.Bid(order[j]) == price {
			j++
		}
		if !feasible {
			break
		}
		// Winners so far: mandatory (all > price). Optionally add tie-block
		// members while they fit, packing smallest remaining load first to
		// maximize the count.
		winners := append([]query.QueryID(nil), mandatory...)
		winners = append(winners, packTies(p, capacity, tracker, order[i:j])...)
		if profit := price * float64(len(winners)); profit > bestProfit {
			bestProfit, bestWinners, bestPrice = profit, winners, price
		}
		// Absorb the tie block into mandatory for the next (lower) price.
		for _, id := range order[i:j] {
			rem := tracker.Remaining(id)
			if !fits(tracker, rem, capacity) {
				feasible = false
				break
			}
			tracker.Admit(id)
			mandatory = append(mandatory, id)
		}
		i = j
	}

	payments := make([]float64, n)
	for _, w := range bestWinners {
		payments[w] = bestPrice
	}
	return newOutcome("OPT_C", p, capacity, bestWinners, payments)
}

// packTies greedily admits tie-block queries by smallest remaining load over
// the mandatory tracker without mutating it, returning the admitted subset.
func packTies(p *query.Pool, capacity float64, base *query.LoadTracker, ties []query.QueryID) []query.QueryID {
	if len(ties) == 0 {
		return nil
	}
	scratch := query.NewLoadTracker(p)
	load := base.Load()
	remainingOf := func(id query.QueryID) float64 {
		var sum float64
		for _, op := range p.Query(id).Operators {
			if !base.Provisioned(op) && !scratch.Provisioned(op) {
				sum += p.Operator(op).Load
			}
		}
		return sum
	}
	pending := append([]query.QueryID(nil), ties...)
	var chosen []query.QueryID
	for len(pending) > 0 {
		bestIdx := -1
		bestRem := 0.0
		for k, id := range pending {
			rem := remainingOf(id)
			if bestIdx == -1 || rem < bestRem {
				bestIdx, bestRem = k, rem
			}
		}
		if load+bestRem > capacity+fitEps {
			break
		}
		id := pending[bestIdx]
		load += bestRem
		scratch.Admit(id)
		chosen = append(chosen, id)
		pending = append(pending[:bestIdx], pending[bestIdx+1:]...)
	}
	return chosen
}
