package auction_test

import (
	"math/rand"
	"testing"

	"repro/internal/auction"
	"repro/internal/gametheory"
	"repro/internal/query"
)

// smallPool builds a random pool with at most 9 queries (VCG is
// exponential).
func smallPool(rng *rand.Rand) *query.Pool {
	b := query.NewBuilder()
	numOps := 1 + rng.Intn(8)
	ops := make([]query.OperatorID, numOps)
	for i := range ops {
		ops[i] = b.AddOperator(0.5 + rng.Float64()*9.5)
	}
	numQueries := 2 + rng.Intn(7)
	for q := 0; q < numQueries; q++ {
		k := 1 + rng.Intn(minInt(3, numOps))
		chosen := rng.Perm(numOps)[:k]
		ids := make([]query.OperatorID, k)
		for i, c := range chosen {
			ids[i] = ops[c]
		}
		bid := 1 + rng.Float64()*99
		b.AddQueryValued(bid, bid, q, ids...)
	}
	return b.MustBuild()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func capFor(p *query.Pool, frac float64) float64 {
	all := make([]query.QueryID, p.NumQueries())
	for i := range all {
		all[i] = query.QueryID(i)
	}
	return p.AggregateLoad(all) * frac
}

// TestVCGWelfareOptimalAndIR: VCG's allocation matches OPT_W and its Clarke
// payments are individually rational (within [0, bid]).
func TestVCGWelfareOptimalAndIR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := auction.NewVCG(0)
	for trial := 0; trial < 40; trial++ {
		p := smallPool(rng)
		capacity := capFor(p, 0.5)
		out := m.Run(p, capacity)
		if err := out.Validate(); err != nil {
			t.Fatal(err)
		}
		opt := auction.Welfare(auction.NewOptWelfare(0).Run(p, capacity))
		if got := auction.Welfare(out); got < opt-1e-9 {
			t.Errorf("trial %d: VCG welfare %v below OPT_W %v", trial, got, opt)
		}
	}
}

// TestVCGStrategyproof: the deviation search finds no profitable bid lie.
func TestVCGStrategyproof(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := auction.NewVCG(0)
	for trial := 0; trial < 6; trial++ {
		p := smallPool(rng)
		capacity := capFor(p, 0.5)
		for i := 0; i < p.NumQueries(); i++ {
			if dev, found := gametheory.FindBidDeviation(m, p, capacity, query.QueryID(i)); found {
				t.Errorf("trial %d: VCG deviation found: %s", trial, dev.String())
			}
		}
	}
}

// TestVCGPivotExample: hand-checked Clarke payments. Two unit-load queries
// compete for one slot: the winner pays the displaced bid; with room for
// both, nobody pays.
func TestVCGPivotExample(t *testing.T) {
	b := query.NewBuilder()
	o1 := b.AddOperator(1)
	o2 := b.AddOperator(1)
	b.AddQuery(30, o1)
	b.AddQuery(20, o2)
	p := b.MustBuild()

	tight := auction.NewVCG(0).Run(p, 1)
	if len(tight.Winners) != 1 || tight.Winners[0] != 0 {
		t.Fatalf("winners = %v, want the 30-bidder", tight.Winners)
	}
	if !almost(tight.Payment(0), 20) {
		t.Errorf("pivot payment = %v, want 20 (the displaced bid)", tight.Payment(0))
	}
	loose := auction.NewVCG(0).Run(p, 2)
	if len(loose.Winners) != 2 || loose.Profit() != 0 {
		t.Errorf("with room for both: winners %v profit %v, want both free", loose.Winners, loose.Profit())
	}
}

// TestVCGSharingPivot: sharing shrinks externalities — a free rider imposes
// none and pays nothing.
func TestVCGSharingPivot(t *testing.T) {
	b := query.NewBuilder()
	shared := b.AddOperator(10)
	b.AddQuery(50, shared)
	b.AddQuery(5, shared) // rides along at zero marginal load
	p := b.MustBuild()
	out := auction.NewVCG(0).Run(p, 10)
	if len(out.Winners) != 2 {
		t.Fatalf("winners = %v, want both", out.Winners)
	}
	if out.Payment(1) != 0 {
		t.Errorf("free rider pays %v, want 0 (no externality)", out.Payment(1))
	}
}

// TestVCGFallbackFeasible: above the limit the heuristic allocation still
// validates.
func TestVCGFallbackFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := smallPool(rng)
	out := auction.NewVCG(1).Run(p, capFor(p, 0.5))
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.Profit() != 0 {
		t.Error("fallback VCG charges nothing (payments undefined without exact OPT)")
	}
}
