package auction_test

import (
	"math"
	"testing"

	"repro/internal/auction"
	"repro/internal/query"
)

// almost reports approximate float equality.
func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestExample1Loads pins the load bookkeeping of the paper's Example 1.
func TestExample1Loads(t *testing.T) {
	p, capacity := query.Example1()
	if capacity != 10 {
		t.Fatalf("capacity = %v, want 10", capacity)
	}
	wantTotal := []float64{5, 6, 10}
	wantFair := []float64{3, 4, 10}
	for i := 0; i < 3; i++ {
		id := query.QueryID(i)
		if got := p.TotalLoad(id); !almost(got, wantTotal[i]) {
			t.Errorf("TotalLoad(q%d) = %v, want %v", i+1, got, wantTotal[i])
		}
		if got := p.FairShareLoad(id); !almost(got, wantFair[i]) {
			t.Errorf("FairShareLoad(q%d) = %v, want %v", i+1, got, wantFair[i])
		}
	}
	if got := p.AggregateLoad([]query.QueryID{0, 1}); !almost(got, 7) {
		t.Errorf("AggregateLoad(q1,q2) = %v, want 7 (operator A shared)", got)
	}
}

// TestExample1Payments reproduces the worked payments of Sections IV-A to
// IV-C: CAR charges q1 $10 and q2 $60; CAF charges $30 and $40; CAT charges
// $50 and $60. All three admit exactly q1 and q2.
func TestExample1Payments(t *testing.T) {
	cases := []struct {
		mech   auction.Mechanism
		p1, p2 float64
	}{
		{auction.NewCAR(), 10, 60},
		{auction.NewCAF(), 30, 40},
		{auction.NewCAT(), 50, 60},
	}
	for _, tc := range cases {
		t.Run(tc.mech.Name(), func(t *testing.T) {
			p, capacity := query.Example1()
			out := tc.mech.Run(p, capacity)
			if err := out.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(out.Winners) != 2 || !out.IsWinner(0) || !out.IsWinner(1) || out.IsWinner(2) {
				t.Fatalf("winners = %v, want {q1, q2}", out.Winners)
			}
			if got := out.Payment(0); !almost(got, tc.p1) {
				t.Errorf("payment(q1) = %v, want %v", got, tc.p1)
			}
			if got := out.Payment(1); !almost(got, tc.p2) {
				t.Errorf("payment(q2) = %v, want %v", got, tc.p2)
			}
			if got := out.Profit(); !almost(got, tc.p1+tc.p2) {
				t.Errorf("profit = %v, want %v", got, tc.p1+tc.p2)
			}
			if got := out.Load(); !almost(got, 7) {
				t.Errorf("winner load = %v, want 7", got)
			}
		})
	}
}

// TestExample1AdmissionOrder pins the selection order the paper narrates:
// CAR picks q2 first (priority 12 vs 11), then q1 at remaining load 1; CAF
// picks q1 first (18.33 vs 18).
func TestExample1AdmissionOrder(t *testing.T) {
	p, capacity := query.Example1()
	car := auction.NewCAR().Run(p, capacity)
	if car.Winners[0] != 1 || car.Winners[1] != 0 {
		t.Errorf("CAR admission order = %v, want [q2 q1]", car.Winners)
	}
	caf := auction.NewCAF().Run(p, capacity)
	if caf.Winners[0] != 0 || caf.Winners[1] != 1 {
		t.Errorf("CAF admission order = %v, want [q1 q2]", caf.Winners)
	}
}
