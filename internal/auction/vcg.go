package auction

import (
	"sort"

	"repro/internal/query"
)

// vcg is the Vickrey-Clarke-Groves mechanism over the shared-operator
// admission problem: allocate the welfare-maximizing feasible set (the
// exhaustive OPT_W search) and charge each winner her Clarke pivot — the
// welfare the others lose by her presence. VCG is strategyproof and
// welfare-optimal by construction, which makes it the natural theory
// counterpoint to the paper's greedy mechanisms: the paper avoids it
// because optimal selection is densest-subgraph-hard (Section III), and
// this implementation is accordingly exponential — usable only at small n,
// for ablations and tests.
type vcg struct {
	limit int
}

// NewVCG returns the VCG mechanism for instances of at most limit queries
// (default 16 when limit <= 0). Larger instances fall back to the greedy
// welfare heuristic for allocation, which forfeits the strategyproofness
// guarantee — the whole point of the paper's cheaper mechanisms.
func NewVCG(limit int) Mechanism {
	if limit <= 0 {
		limit = 16
	}
	return &vcg{limit: limit}
}

func (*vcg) Name() string { return "VCG" }

func (m *vcg) Run(p *query.Pool, capacity float64) *Outcome {
	n := p.NumQueries()
	var winners []query.QueryID
	if n <= m.limit {
		winners = exhaustiveWelfare(p, capacity)
	} else {
		winners = greedyWelfare(p, capacity)
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i] < winners[j] })

	totalWelfare := 0.0
	for _, w := range winners {
		totalWelfare += p.Value(w)
	}
	payments := make([]float64, n)
	if n <= m.limit {
		for _, w := range winners {
			// Clarke pivot: welfare of the others without i minus welfare of
			// the others with i.
			othersWithout := welfareWithout(p, capacity, w)
			othersWith := totalWelfare - p.Value(w)
			pay := othersWithout - othersWith
			if pay < 0 {
				pay = 0
			}
			payments[w] = pay
		}
	}
	return newOutcome("VCG", p, capacity, winners, payments)
}

// welfareWithout returns the optimal welfare achievable when query exclude
// is removed from the instance.
func welfareWithout(p *query.Pool, capacity float64, exclude query.QueryID) float64 {
	// Rebuild the pool without the excluded query. Operator degrees change,
	// but only valuations and feasibility matter here.
	b := query.NewBuilder()
	for _, op := range p.Operators() {
		b.AddOperator(op.Load)
	}
	ids := make([]query.QueryID, 0, p.NumQueries()-1)
	for _, q := range p.Queries() {
		if q.ID == exclude {
			continue
		}
		ids = append(ids, b.AddQueryValued(q.Bid, q.Value, q.User, q.Operators...))
	}
	if len(ids) == 0 {
		return 0
	}
	reduced := b.MustBuild()
	best := exhaustiveWelfare(reduced, capacity)
	sum := 0.0
	for _, w := range best {
		sum += reduced.Value(w)
	}
	return sum
}
