// Package auction implements the paper's auction-based admission-control
// mechanisms for continuous queries (Section IV): the greedy density
// mechanisms CAF, CAF+, CAT and CAT+, the non-strategyproof CAR baseline, the
// bid-ordered GV mechanism, the randomized Two-Price mechanism with a profit
// guarantee, a random-admission runtime baseline, and the optimal
// constant-pricing benchmark OPT_C.
//
// All mechanisms consume a query.Pool (the abstract operator/query incidence
// structure of paper Figure 2) and a server capacity, and produce an Outcome:
// the admitted queries and the payment charged to each. The capacity
// constraint is always on the aggregate load of the union of the winners'
// operators — shared operators are paid for once.
package auction

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/query"
)

// fitEps absorbs floating-point rounding in capacity-fit comparisons.
const fitEps = 1e-9

// Mechanism is an admission-control auction: given the submitted queries and
// the server capacity it decides which queries to admit and what to charge.
// Implementations must not mutate the pool.
type Mechanism interface {
	// Name returns the mechanism's display name as used in the paper
	// ("CAF", "CAT+", "Two-price", ...).
	Name() string
	// Run executes the auction and returns the outcome.
	Run(p *query.Pool, capacity float64) *Outcome
}

// Outcome is the result of running a mechanism: the winner set (in admission
// order) and the payment charged to every query (zero for losers), together
// with the inputs needed to derive the paper's evaluation metrics.
type Outcome struct {
	// Mechanism is the name of the mechanism that produced the outcome.
	Mechanism string
	// Capacity is the server capacity the auction ran against.
	Capacity float64
	// Winners lists admitted queries in admission order.
	Winners []query.QueryID
	// Payments[i] is the payment charged to query i; zero for losers.
	Payments []float64

	pool   *query.Pool
	winner []bool
	load   float64
	// allowAboveBid marks mechanisms that do not guarantee individual
	// rationality. CAR's payment rate b_lost/C_R(lost) is evaluated at stop
	// time, after sharing has shrunk the loser's remaining load, so it can
	// exceed a winner's admission-time priority and push her payment above
	// her bid — one more reason users shade bids under CAR (Section IV-A).
	allowAboveBid bool
}

// newOutcome assembles an Outcome, computing the winner mask and aggregate
// load once.
func newOutcome(name string, p *query.Pool, capacity float64, winners []query.QueryID, payments []float64) *Outcome {
	mask := make([]bool, p.NumQueries())
	for _, w := range winners {
		mask[w] = true
	}
	return &Outcome{
		Mechanism: name,
		Capacity:  capacity,
		Winners:   winners,
		Payments:  payments,
		pool:      p,
		winner:    mask,
		load:      p.AggregateLoad(winners),
	}
}

// Pool returns the pool the auction ran on.
func (o *Outcome) Pool() *query.Pool { return o.pool }

// IsWinner reports whether query id was admitted.
func (o *Outcome) IsWinner(id query.QueryID) bool { return o.winner[id] }

// Payment returns the payment charged to query id (zero for losers).
func (o *Outcome) Payment(id query.QueryID) float64 { return o.Payments[id] }

// Profit returns the system profit: the sum of all payments (paper §VI-A).
func (o *Outcome) Profit() float64 {
	var sum float64
	for _, p := range o.Payments {
		sum += p
	}
	return sum
}

// AdmissionRate returns the fraction of submitted queries admitted.
func (o *Outcome) AdmissionRate() float64 {
	if o.pool.NumQueries() == 0 {
		return 0
	}
	return float64(len(o.Winners)) / float64(o.pool.NumQueries())
}

// TotalPayoff returns the sum over winners of valuation minus payment — the
// paper's total-user-payoff (user satisfaction) metric. For truthful
// workloads valuation equals bid.
func (o *Outcome) TotalPayoff() float64 {
	var sum float64
	for _, w := range o.Winners {
		sum += o.pool.Value(w) - o.Payments[w]
	}
	return sum
}

// Load returns the aggregate load of the winner set.
func (o *Outcome) Load() float64 { return o.load }

// Utilization returns the fraction of server capacity used by the winners.
func (o *Outcome) Utilization() float64 {
	if o.Capacity == 0 {
		return 0
	}
	return o.load / o.Capacity
}

// PayoffOf returns the payoff of the user owning query id: value − payment
// if admitted, zero otherwise.
func (o *Outcome) PayoffOf(id query.QueryID) float64 {
	if !o.winner[id] {
		return 0
	}
	return o.pool.Value(id) - o.Payments[id]
}

// UserPayoff returns the aggregate payoff of the given principal across all
// of her queries: Σ (value − payment) over her admitted queries, minus the
// payments of any admitted queries she values at zero (the sybil-attack
// accounting of paper Section V, where the attacker covers her fake
// identities' bills).
func (o *Outcome) UserPayoff(user int) float64 {
	var sum float64
	for _, q := range o.pool.Queries() {
		if q.User != user || !o.winner[q.ID] {
			continue
		}
		sum += q.Value - o.Payments[q.ID]
	}
	return sum
}

// Validate checks the universal mechanism invariants: winners fit within
// capacity, losers pay zero, and every payment is non-negative and (for
// bid-respecting mechanisms) at most the bid. It returns the first violation
// found, or nil.
func (o *Outcome) Validate() error {
	if o.load > o.Capacity+fitEps {
		return fmt.Errorf("auction %s: winner load %.6f exceeds capacity %.6f", o.Mechanism, o.load, o.Capacity)
	}
	for i, p := range o.Payments {
		id := query.QueryID(i)
		switch {
		case !o.winner[id] && p != 0:
			return fmt.Errorf("auction %s: loser %d charged %.6f", o.Mechanism, id, p)
		case p < -fitEps:
			return fmt.Errorf("auction %s: negative payment %.6f for query %d", o.Mechanism, p, id)
		case !o.allowAboveBid && o.winner[id] && p > o.pool.Bid(id)+1e-6:
			return fmt.Errorf("auction %s: winner %d charged %.6f above bid %.6f", o.Mechanism, id, p, o.pool.Bid(id))
		}
	}
	return nil
}

// byPriority returns query IDs sorted by non-increasing priority, breaking
// ties by ascending query ID so every mechanism is deterministic.
func byPriority(n int, pri []float64) []query.QueryID {
	order := make([]query.QueryID, n)
	for i := range order {
		order[i] = query.QueryID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := pri[order[a]], pri[order[b]]
		if pa != pb {
			return pa > pb
		}
		return order[a] < order[b]
	})
	return order
}

// fits reports whether admitting a query with the given remaining load keeps
// the tracker within capacity.
func fits(t *query.LoadTracker, rem, capacity float64) bool {
	return t.Load()+rem <= capacity+fitEps
}

// priorityOf computes b_i / load_i, treating zero load as infinite priority
// (a query whose every operator is free rides for free and always fits).
func priorityOf(bid, load float64) float64 {
	if load <= 0 {
		return math.Inf(1)
	}
	return bid / load
}
