package auction_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/auction"
	"repro/internal/query"
)

// TestCATReducesToKPlusOnePrice: the paper's Section III special case —
// with no sharing and identical query loads, room for k queries, the
// density mechanisms become the k-unit (k+1)st-price auction: the k highest
// bidders win and each pays the (k+1)st bid.
func TestCATReducesToKPlusOnePrice(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(8)
		b := query.NewBuilder()
		bids := make([]float64, n)
		for i := 0; i < n; i++ {
			op := b.AddOperator(2) // identical loads, no sharing
			bids[i] = 1 + rng.Float64()*99
			b.AddQuery(bids[i], op)
		}
		p := b.MustBuild()
		k := 1 + rng.Intn(n-1)
		capacity := float64(2 * k)

		for _, m := range []auction.Mechanism{auction.NewCAF(), auction.NewCAT(), auction.NewGV()} {
			out := m.Run(p, capacity)
			if len(out.Winners) != k {
				t.Fatalf("%s admitted %d, want k=%d", m.Name(), len(out.Winners), k)
			}
			sorted := append([]float64(nil), bids...)
			sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
			kth1 := sorted[k] // the (k+1)st highest bid
			for _, w := range out.Winners {
				wantPay := kth1
				if m.Name() != "GV" {
					wantPay = 2 * (kth1 / 2) // density price × load == bid
				}
				if !almost(out.Payment(w), wantPay) {
					t.Fatalf("%s: winner %d pays %v, want (k+1)st bid %v", m.Name(), w, out.Payment(w), wantPay)
				}
				// Winners are exactly the top-k bidders.
				if bids[w] < kth1 {
					t.Fatalf("%s: winner %d bid %v below the (k+1)st bid %v", m.Name(), w, bids[w], kth1)
				}
			}
		}
	}
}

// TestNoSharingDensityEqualsFairShare: without sharing, C_SF == C_T, so CAF
// and CAT coincide exactly.
func TestNoSharingDensityEqualsFairShare(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(8)
		b := query.NewBuilder()
		for i := 0; i < n; i++ {
			op := b.AddOperator(0.5 + rng.Float64()*9.5)
			b.AddQuery(1+rng.Float64()*99, op)
		}
		p := b.MustBuild()
		capacity := 10 + rng.Float64()*20
		caf := auction.NewCAF().Run(p, capacity)
		cat := auction.NewCAT().Run(p, capacity)
		if len(caf.Winners) != len(cat.Winners) {
			t.Fatalf("winner counts differ without sharing: %d vs %d", len(caf.Winners), len(cat.Winners))
		}
		for i := range caf.Winners {
			if caf.Winners[i] != cat.Winners[i] {
				t.Fatal("winner sets differ without sharing")
			}
		}
		for i := range caf.Payments {
			if !almost(caf.Payments[i], cat.Payments[i]) {
				t.Fatalf("payments differ without sharing: %v vs %v", caf.Payments[i], cat.Payments[i])
			}
		}
	}
}

// TestKnapsackAuctionShape: no sharing but heterogeneous loads — the
// knapsack-auction setting of Aggarwal & Hartline. Density selection must
// dominate bid-order selection in welfare per capacity on load-skewed
// instances.
func TestKnapsackAuctionShape(t *testing.T) {
	b := query.NewBuilder()
	oBig := b.AddOperator(10)
	o1 := b.AddOperator(1)
	o2 := b.AddOperator(1)
	o3 := b.AddOperator(1)
	b.AddQuery(12, oBig) // highest bid, terrible density
	b.AddQuery(10, o1)
	b.AddQuery(9, o2)
	b.AddQuery(8, o3)
	p := b.MustBuild()
	const capacity = 10

	gv := auction.NewGV().Run(p, capacity)
	if !gv.IsWinner(0) {
		t.Fatal("GV must take the highest bid first")
	}
	cat := auction.NewCAT().Run(p, capacity)
	if cat.IsWinner(0) {
		t.Fatal("CAT must skip the low-density query")
	}
	if auction.Welfare(cat) <= auction.Welfare(gv) {
		t.Errorf("density welfare %v should beat bid-order %v here",
			auction.Welfare(cat), auction.Welfare(gv))
	}
}
