package auction

import (
	"math/rand"

	"repro/internal/query"
)

// gv implements the Greedy-by-Valuation mechanism (paper Section IV-D):
// queries sorted by decreasing bid, admitted until the first that does not
// fit; every winner pays the bid of the first losing query. GV is
// strategyproof (it is a k-unit (k+1)st-price auction over whatever number
// of queries happens to fit) but admits no profit guarantee.
type gv struct{}

// NewGV returns the GV mechanism.
func NewGV() Mechanism { return gv{} }

func (gv) Name() string { return "GV" }

func (gv) Run(p *query.Pool, capacity float64) *Outcome {
	n := p.NumQueries()
	pri := make([]float64, n)
	for i := 0; i < n; i++ {
		pri[i] = p.Bid(query.QueryID(i))
	}
	order := byPriority(n, pri)

	tracker := query.NewLoadTracker(p)
	winners := make([]query.QueryID, 0, n)
	payments := make([]float64, n)
	for pos, id := range order {
		rem := tracker.Remaining(id)
		if !fits(tracker, rem, capacity) {
			price := p.Bid(order[pos])
			for _, w := range winners {
				payments[w] = price
			}
			break
		}
		tracker.Admit(id)
		winners = append(winners, id)
	}
	return newOutcome("GV", p, capacity, winners, payments)
}

// randomMech is the random-admission baseline from the paper's Table IV:
// pick queries uniformly at random, stop at the first that does not fit the
// remaining capacity. It charges nothing — it exists purely as a runtime
// (and utilization) baseline, not as an auction.
type randomMech struct {
	seed int64
}

// NewRandom returns the random-admission baseline. The seed makes runs
// reproducible; distinct instances (or distinct pools) explore distinct
// orders.
func NewRandom(seed int64) Mechanism { return &randomMech{seed: seed} }

func (*randomMech) Name() string { return "Random" }

func (m *randomMech) Run(p *query.Pool, capacity float64) *Outcome {
	n := p.NumQueries()
	rng := rand.New(rand.NewSource(m.seed))
	order := rng.Perm(n)
	tracker := query.NewLoadTracker(p)
	winners := make([]query.QueryID, 0, n)
	for _, i := range order {
		id := query.QueryID(i)
		rem := tracker.Remaining(id)
		if !fits(tracker, rem, capacity) {
			break
		}
		tracker.Admit(id)
		winners = append(winners, id)
	}
	return newOutcome("Random", p, capacity, winners, make([]float64, n))
}
