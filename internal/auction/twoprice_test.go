package auction_test

import (
	"math/rand"
	"testing"

	"repro/internal/auction"
	"repro/internal/query"
)

// TestTwoPriceWinnersPayBelowBid: winners bid strictly above their charged
// price, so every winner has strictly positive payoff.
func TestTwoPriceWinnersPayBelowBid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		p := randomPool(rng)
		out := auction.NewTwoPrice(int64(trial)).Run(p, 25)
		for _, w := range out.Winners {
			if out.Payment(w) >= p.Bid(w) {
				t.Fatalf("winner %d pays %v, bid %v: not strictly below", w, out.Payment(w), p.Bid(w))
			}
		}
	}
}

// TestTwoPriceProfitGuarantee checks Theorem 11's bound in expectation:
// E[profit] ≥ OPT_C − 2h, averaged over many coin sequences.
func TestTwoPriceProfitGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		p := randomPool(rng)
		all := make([]query.QueryID, p.NumQueries())
		h := 0.0
		for i := range all {
			all[i] = query.QueryID(i)
			if b := p.Bid(query.QueryID(i)); b > h {
				h = b
			}
		}
		capacity := p.AggregateLoad(all) * 0.6
		optc := auction.NewOptConstant().Run(p, capacity).Profit()

		mech := auction.NewTwoPrice(0)
		const runs = 400
		var sum float64
		coins := rand.New(rand.NewSource(int64(trial)))
		for r := 0; r < runs; r++ {
			sum += mech.RunWith(p, capacity, coins).Profit()
		}
		expected := sum / runs
		if expected < optc-2*h-1e-6 {
			t.Errorf("trial %d: E[profit] = %.3f < OPT_C − 2h = %.3f − %.3f", trial, expected, optc, 2*h)
		}
	}
}

// TestTwoPriceStep3RepacksTies: when the H boundary falls inside a block of
// equal bids, Step 3 re-packs the tie set to the largest fitting subset.
func TestTwoPriceStep3RepacksTies(t *testing.T) {
	b := query.NewBuilder()
	oBig := b.AddOperator(6)
	o1 := b.AddOperator(2)
	o2 := b.AddOperator(2)
	o3 := b.AddOperator(2)
	b.AddQuery(90, oBig) // top bidder, load 6
	// Three tied bidders at 50, loads 2 each; capacity 10 fits only two of
	// them next to the top bidder.
	b.AddQuery(50, o1)
	b.AddQuery(50, o2)
	b.AddQuery(50, o3)
	p := b.MustBuild()

	// With the naive prefix, H = {90, 50, 50} and the last H member ties the
	// first loser (50): Step 3 must fire. The re-packed H keeps the top
	// bidder plus the largest tie subset that fits — still three queries.
	mech := auction.NewTwoPrice(123)
	out := mech.Run(p, 10)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) > 3 {
		t.Fatalf("winners = %v exceed capacity plan", out.Winners)
	}
}

// TestTwoPriceTinyInstances: degenerate sizes must not panic and must stay
// feasible.
func TestTwoPriceTinyInstances(t *testing.T) {
	b := query.NewBuilder()
	op := b.AddOperator(5)
	b.AddQuery(10, op)
	p := b.MustBuild()
	for _, capacity := range []float64{0, 1, 5, 100} {
		out := auction.NewTwoPrice(1).Run(p, capacity)
		if err := out.Validate(); err != nil {
			t.Fatalf("capacity %v: %v", capacity, err)
		}
		// A single query can never win: whichever half it lands in, the
		// other half prices at +Inf or it must beat its own price.
		if len(out.Winners) > 1 {
			t.Fatalf("capacity %v: winners = %v", capacity, out.Winners)
		}
	}
}

// TestTwoPriceAdmitsFewer: the paper's Figure 4(a) observation — Two-price
// admits a smaller share than the density mechanisms because it ignores
// loads when selecting winners.
func TestTwoPriceAdmitsFewer(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	lower, total := 0, 0
	for trial := 0; trial < 30; trial++ {
		p := randomPool(rng)
		all := make([]query.QueryID, p.NumQueries())
		for i := range all {
			all[i] = query.QueryID(i)
		}
		capacity := p.AggregateLoad(all) * 0.5
		tp := auction.NewTwoPrice(int64(trial)).Run(p, capacity)
		cat := auction.NewCAT().Run(p, capacity)
		total++
		if len(tp.Winners) <= len(cat.Winners) {
			lower++
		}
	}
	if lower*10 < total*7 {
		t.Errorf("Two-price admitted fewer than CAT in only %d/%d trials", lower, total)
	}
}

// TestOptConstantExact verifies OPT_C on a hand instance: bids 10, 6, 6, 1
// with unit loads and room for three. Price 6 with three winners (the 10 and
// both 6s) earns 18, beating price 10 (one winner) and price 1 (4 winners,
// but only 3 fit — price 1 is invalid since all four must then be served).
func TestOptConstantExact(t *testing.T) {
	b := query.NewBuilder()
	ops := []query.OperatorID{b.AddOperator(1), b.AddOperator(1), b.AddOperator(1), b.AddOperator(1)}
	b.AddQuery(10, ops[0])
	b.AddQuery(6, ops[1])
	b.AddQuery(6, ops[2])
	b.AddQuery(1, ops[3])
	p := b.MustBuild()
	out := auction.NewOptConstant().Run(p, 3)
	if !almost(out.Profit(), 18) {
		t.Fatalf("OPT_C profit = %v, want 18", out.Profit())
	}
	if len(out.Winners) != 3 || out.IsWinner(3) {
		t.Fatalf("winners = %v, want the top three", out.Winners)
	}
}

// TestOptConstantRespectsMandatoryFit: a price is invalid if the queries
// bidding strictly above it cannot all fit.
func TestOptConstantRespectsMandatoryFit(t *testing.T) {
	b := query.NewBuilder()
	o1 := b.AddOperator(6)
	o2 := b.AddOperator(6)
	o3 := b.AddOperator(1)
	b.AddQuery(100, o1)
	b.AddQuery(90, o2)
	b.AddQuery(10, o3)
	p := b.MustBuild()
	// Capacity 7: {100, 90} never fit together, so every price below 90 is
	// invalid. Price 90 serves only the mandatory 100-bidder (the tied
	// 90-bidder no longer fits) for 90; price 100 may designate the
	// exact-100 bidder a winner for 100 — the optimum.
	out := auction.NewOptConstant().Run(p, 7)
	if !almost(out.Profit(), 100) {
		t.Fatalf("OPT_C profit = %v, want 100", out.Profit())
	}
}

// TestOptConstantSharing: constant pricing's feasibility accounts for shared
// operators.
func TestOptConstantSharing(t *testing.T) {
	b := query.NewBuilder()
	shared := b.AddOperator(6)
	b.AddQuery(10, shared)
	b.AddQuery(10, shared)
	b.AddQuery(10, shared)
	p := b.MustBuild()
	// All three share one load-6 operator: with capacity 6 every price is
	// feasible; best is price 10 with all three designated winners = 30.
	out := auction.NewOptConstant().Run(p, 6)
	if !almost(out.Profit(), 30) {
		t.Fatalf("OPT_C profit = %v, want 30", out.Profit())
	}
}
