package auction_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/auction"
	"repro/internal/query"
)

// bruteForceWelfare enumerates all subsets — the trusted oracle for small n.
func bruteForceWelfare(p *query.Pool, capacity float64) float64 {
	n := p.NumQueries()
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var set []query.QueryID
		value := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, query.QueryID(i))
				value += p.Value(query.QueryID(i))
			}
		}
		if value > best && p.AggregateLoad(set) <= capacity+1e-9 {
			best = value
		}
	}
	return best
}

// TestOptWelfareMatchesBruteForce: the branch-and-bound equals subset
// enumeration on random instances.
func TestOptWelfareMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPool(rng)
		if p.NumQueries() > 12 {
			return true // keep the oracle cheap
		}
		all := make([]query.QueryID, p.NumQueries())
		for i := range all {
			all[i] = query.QueryID(i)
		}
		capacity := p.AggregateLoad(all) * 0.55
		got := auction.Welfare(auction.NewOptWelfare(0).Run(p, capacity))
		want := bruteForceWelfare(p, capacity)
		return almost(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestOptWelfareDominatesMechanisms: no mechanism achieves more welfare than
// the exhaustive optimum.
func TestOptWelfareDominatesMechanisms(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		p := randomPool(rng)
		if p.NumQueries() > 14 {
			continue
		}
		all := make([]query.QueryID, p.NumQueries())
		for i := range all {
			all[i] = query.QueryID(i)
		}
		capacity := p.AggregateLoad(all) * 0.5
		opt := auction.Welfare(auction.NewOptWelfare(0).Run(p, capacity))
		for _, m := range allMechanisms() {
			if w := auction.Welfare(m.Run(p, capacity)); w > opt+1e-9 {
				t.Errorf("trial %d: %s welfare %v exceeds OPT_W %v", trial, m.Name(), w, opt)
			}
		}
	}
}

// TestOptWelfareSharingBeatsKnapsack: with heavy sharing, the optimal set
// packs more value than any no-sharing accounting could — the Section III
// observation that a low-value high-load query becomes cheap when its
// operators are carried by others.
func TestOptWelfareSharingBeatsKnapsack(t *testing.T) {
	b := query.NewBuilder()
	shared := b.AddOperator(9)
	tiny := b.AddOperator(1)
	b.AddQuery(50, shared)       // valuable anchor
	b.AddQuery(10, shared)       // free rider: shares everything
	b.AddQuery(12, shared, tiny) // nearly free rider
	p := b.MustBuild()
	out := auction.NewOptWelfare(0).Run(p, 10)
	if len(out.Winners) != 3 {
		t.Fatalf("winners = %v, want all three (aggregate load 10)", out.Winners)
	}
	if got := auction.Welfare(out); !almost(got, 72) {
		t.Errorf("welfare = %v, want 72", got)
	}
}

// TestGreedyWelfareFallback: above the exhaustive limit the fallback still
// returns a feasible, reasonable set.
func TestGreedyWelfareFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomPool(rng)
	m := auction.NewOptWelfare(1) // force the fallback
	out := m.Run(p, 20)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.Profit() != 0 {
		t.Error("welfare benchmark must charge nothing")
	}
}

// TestLoadTrackerRelease: Release undoes exactly one Admit.
func TestLoadTrackerRelease(t *testing.T) {
	p, _ := query.Example1()
	tr := query.NewLoadTracker(p)
	tr.Admit(1) // q2: provisions A and C
	var fresh []query.OperatorID
	for _, op := range p.Query(0).Operators {
		if !tr.Provisioned(op) {
			fresh = append(fresh, op)
		}
	}
	tr.Admit(0) // q1: freshly provisions only B
	load := tr.Load()
	tr.Release(fresh)
	if got := tr.Load(); !almost(got, load-1) {
		t.Errorf("release load = %v, want %v", got, load-1)
	}
	if !almost(tr.Remaining(0), 1) {
		t.Errorf("remaining(q1) = %v, want 1 (B released, A still held by q2)", tr.Remaining(0))
	}
}
