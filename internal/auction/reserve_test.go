package auction_test

import (
	"math/rand"
	"testing"

	"repro/internal/auction"
	"repro/internal/query"
)

func TestReserveValidation(t *testing.T) {
	if _, err := auction.NewReserveCAT(-1); err == nil {
		t.Error("want error for negative reserve")
	}
	if m := auction.MustReserveCAT(2); m.Name() != "CAT-R2" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestZeroReserveMatchesCAT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		p := randomPool(rng)
		plain := auction.NewCAT().Run(p, 20)
		reserved := auction.MustReserveCAT(0).Run(p, 20)
		if len(plain.Winners) != len(reserved.Winners) {
			t.Fatalf("winner counts differ: %d vs %d", len(plain.Winners), len(reserved.Winners))
		}
		for i := range plain.Winners {
			if plain.Winners[i] != reserved.Winners[i] {
				t.Fatal("winner sets differ at zero reserve")
			}
		}
		for i := range plain.Payments {
			if plain.Payments[i] != reserved.Payments[i] {
				t.Fatal("payments differ at zero reserve")
			}
		}
	}
}

// TestReserveFloorsPayments: when everything fits (threshold price zero),
// the reserve keeps profit positive — the Section VII fix in action.
func TestReserveFloorsPayments(t *testing.T) {
	b := query.NewBuilder()
	o1 := b.AddOperator(2)
	o2 := b.AddOperator(3)
	b.AddQuery(20, o1) // density 10
	b.AddQuery(30, o2) // density 10
	p := b.MustBuild()
	plain := auction.NewCAT().Run(p, 100)
	if plain.Profit() != 0 {
		t.Fatalf("plain CAT profit = %v, want 0 (no loser)", plain.Profit())
	}
	reserved := auction.MustReserveCAT(4).Run(p, 100)
	if len(reserved.Winners) != 2 {
		t.Fatalf("winners = %v, want both (densities above reserve)", reserved.Winners)
	}
	if got := reserved.Profit(); got != 4*2+4*3 {
		t.Errorf("reserved profit = %v, want 20", got)
	}
	if err := reserved.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestReserveExcludesBelowFloor: a query bidding under reserve × load never
// wins, even with free capacity.
func TestReserveExcludesBelowFloor(t *testing.T) {
	b := query.NewBuilder()
	o1 := b.AddOperator(2)
	o2 := b.AddOperator(2)
	b.AddQuery(20, o1) // density 10 ≥ reserve
	b.AddQuery(6, o2)  // density 3 < reserve 5
	p := b.MustBuild()
	out := auction.MustReserveCAT(5).Run(p, 100)
	if !out.IsWinner(0) || out.IsWinner(1) {
		t.Fatalf("winners = %v, want only the above-reserve query", out.Winners)
	}
}

// TestReserveMonotone: raising a winner's bid keeps her winning (the wrap
// preserves bid-strategyproofness's monotonicity half).
func TestReserveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := auction.MustReserveCAT(1.5)
	for trial := 0; trial < 15; trial++ {
		p := randomPool(rng)
		out := m.Run(p, 15)
		for _, w := range out.Winners {
			raised := m.Run(p.WithBid(w, p.Bid(w)*2), 15)
			if !raised.IsWinner(w) {
				t.Fatalf("trial %d: winner %d lost after raising bid", trial, w)
			}
		}
	}
}

// TestReserveProfitCanBeatPlainCAT: on an over-capacity instance the
// reserve recovers profit plain CAT loses; on a tight instance it may cost
// admissions. This is the tradeoff the Section VII discussion predicts.
func TestReserveProfitCanBeatPlainCAT(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	better := 0
	for trial := 0; trial < 30; trial++ {
		p := randomPool(rng)
		all := make([]query.QueryID, p.NumQueries())
		for i := range all {
			all[i] = query.QueryID(i)
		}
		capacity := p.AggregateLoad(all) * 2 // everything fits: plain profit 0
		plain := auction.NewCAT().Run(p, capacity).Profit()
		reserved := auction.MustReserveCAT(1).Run(p, capacity).Profit()
		if reserved > plain {
			better++
		}
	}
	if better < 25 {
		t.Errorf("reserve beat plain CAT in only %d/30 over-capacity trials", better)
	}
}
