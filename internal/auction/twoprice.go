package auction

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/query"
)

// TwoPrice implements the paper's randomized Two-price mechanism
// (Algorithm 3), the only proposed mechanism with a provable profit
// guarantee: in expectation its profit is at least OPT_C − 2h, where OPT_C
// is the optimal constant-pricing profit and h the largest valuation
// (Theorem 11).
//
// Phases:
//  1. Sort queries by decreasing bid; H is the maximal prefix that fits.
//  2. (Step 3) If the last query of H ties the first loser's bid, the tie
//     set D is re-packed: H keeps H−D plus the largest subset of D that
//     still fits. This exhaustive step is exponential in |D|; above
//     Step3Limit duplicates it falls back to the polynomial variant the
//     paper analyzes in Theorem 12 (largest-cardinality greedy re-pack).
//  3. H is split uniformly at random into halves A and B; each half's
//     optimal constant price is offered to the other half (the
//     random-sampling optimal-price auction of Goldberg et al.).
type TwoPrice struct {
	seed int64
	// Step3Limit bounds the exhaustive tie-set search; tie sets larger than
	// this use the greedy re-pack instead (the paper's polynomial-time
	// variant). Zero disables Step 3 entirely.
	Step3Limit int
	// IndependentFlips switches Step 4 from the even uniformly-random
	// partition to independent per-query coin flips — the variant the paper
	// discusses at the end of Section V-C.
	IndependentFlips bool
	// FreeWhenEmptySample sets the sampled price of an empty half to zero
	// (the opposite half is served free) instead of +Inf (nobody wins).
	// The paper's Section V-C sybil-attack example requires this
	// convention; the default +Inf is the conservative choice.
	FreeWhenEmptySample bool
}

// DefaultStep3Limit is the largest tie set re-packed exhaustively by
// default: 2^18 subsets is still sub-millisecond work.
const DefaultStep3Limit = 18

// NewTwoPrice returns a Two-price mechanism with the default Step 3 limit.
// The seed drives the random partition, making runs reproducible.
func NewTwoPrice(seed int64) *TwoPrice {
	return &TwoPrice{seed: seed, Step3Limit: DefaultStep3Limit}
}

// Name implements Mechanism.
func (*TwoPrice) Name() string { return "Two-price" }

// Run implements Mechanism.
func (m *TwoPrice) Run(p *query.Pool, capacity float64) *Outcome {
	rng := rand.New(rand.NewSource(m.seed))
	return m.runWith(p, capacity, rng)
}

// RunWith executes the auction with caller-supplied randomness; the
// gametheory package and expectation tests use it to control or average
// over the coin flips.
func (m *TwoPrice) RunWith(p *query.Pool, capacity float64, rng *rand.Rand) *Outcome {
	return m.runWith(p, capacity, rng)
}

func (m *TwoPrice) runWith(p *query.Pool, capacity float64, rng *rand.Rand) *Outcome {
	n := p.NumQueries()
	pri := make([]float64, n)
	for i := 0; i < n; i++ {
		pri[i] = p.Bid(query.QueryID(i))
	}
	order := byPriority(n, pri)

	// Steps 1-2: H = maximal prefix that fits.
	tracker := query.NewLoadTracker(p)
	h := make([]query.QueryID, 0, n)
	lost := -1
	for pos, id := range order {
		rem := tracker.Remaining(id)
		if !fits(tracker, rem, capacity) {
			lost = pos
			break
		}
		tracker.Admit(id)
		h = append(h, id)
	}

	// Step 3: re-pack the tie set if the boundary bids collide.
	if lost >= 0 && len(h) > 0 {
		vL := p.Bid(order[lost])
		if p.Bid(h[len(h)-1]) == vL {
			h = m.repackTies(p, capacity, order, vL)
		}
	}

	payments := make([]float64, n)
	if len(h) == 0 {
		return newOutcome(m.Name(), p, capacity, nil, payments)
	}

	// Step 4: partition H into A and B — evenly at random by default, by
	// independent coin flips in the IndependentFlips variant.
	var a, b []query.QueryID
	if m.IndependentFlips {
		for _, id := range h {
			if rng.Intn(2) == 0 {
				a = append(a, id)
			} else {
				b = append(b, id)
			}
		}
	} else {
		shuffled := append([]query.QueryID(nil), h...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		mid := len(shuffled) / 2
		a, b = shuffled[:mid], shuffled[mid:]
	}

	// Steps 5-6: each half prices the other.
	pa := m.samplePrice(p, a)
	pb := m.samplePrice(p, b)
	var winners []query.QueryID
	for _, id := range b {
		if p.Bid(id) > pa {
			winners = append(winners, id)
			payments[id] = pa
		}
	}
	for _, id := range a {
		if p.Bid(id) > pb {
			winners = append(winners, id)
			payments[id] = pb
		}
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i] < winners[j] })
	return newOutcome(m.Name(), p, capacity, winners, payments)
}

// repackTies implements Step 3: D is every query bidding vL, H' the fitting
// prefix above the tie, and H becomes H' plus the largest subset of D that
// fits alongside H'.
func (m *TwoPrice) repackTies(p *query.Pool, capacity float64, order []query.QueryID, vL float64) []query.QueryID {
	base := query.NewLoadTracker(p)
	var hPrime []query.QueryID
	var ties []query.QueryID
	for _, id := range order {
		bid := p.Bid(id)
		if bid > vL {
			// H' is the prefix strictly above the tie bid; it fits because H
			// (a superset restricted to a prefix) fit.
			if fits(base, base.Remaining(id), capacity) {
				base.Admit(id)
				hPrime = append(hPrime, id)
			}
			continue
		}
		if bid == vL {
			ties = append(ties, id)
		}
	}
	var best []query.QueryID
	if len(ties) <= m.Step3Limit {
		best = largestFittingSubset(p, capacity, base, ties)
	} else {
		best = greedyFittingSubset(p, capacity, base, ties)
	}
	return append(hPrime, best...)
}

// largestFittingSubset exhaustively searches the subsets of ties for the
// largest one whose members all fit alongside the already-admitted base set.
// Exponential in len(ties) — callers bound it.
func largestFittingSubset(p *query.Pool, capacity float64, base *query.LoadTracker, ties []query.QueryID) []query.QueryID {
	baseLoad := base.Load()
	var best []query.QueryID
	for mask := 0; mask < 1<<len(ties); mask++ {
		count := popcount(mask)
		if count <= len(best) {
			continue
		}
		subset := make([]query.QueryID, 0, count)
		for i, id := range ties {
			if mask&(1<<i) != 0 {
				subset = append(subset, id)
			}
		}
		// Aggregate load of base ∪ subset must fit. Compute the subset's
		// incremental load over the base tracker without mutating it.
		if baseLoad+incrementalLoad(p, base, subset) <= capacity+fitEps {
			best = subset
		}
	}
	return best
}

// greedyFittingSubset approximates the largest fitting tie subset by
// repeatedly admitting the tie query with the smallest remaining load. This
// is the polynomial-time fallback (paper Theorem 12 analyses omitting Step 3
// altogether; packing greedily only increases profit).
func greedyFittingSubset(p *query.Pool, capacity float64, base *query.LoadTracker, ties []query.QueryID) []query.QueryID {
	// t tracks operators provisioned by already-chosen ties; base tracks the
	// operators of H'. A tie's remaining load excludes both.
	t := query.NewLoadTracker(p)
	load := base.Load()
	remainingOf := func(id query.QueryID) float64 {
		var sum float64
		for _, op := range p.Query(id).Operators {
			if !base.Provisioned(op) && !t.Provisioned(op) {
				sum += p.Operator(op).Load
			}
		}
		return sum
	}
	pending := append([]query.QueryID(nil), ties...)
	var chosen []query.QueryID
	for len(pending) > 0 {
		bestIdx, bestRem := -1, math.Inf(1)
		for i, id := range pending {
			if rem := remainingOf(id); rem < bestRem {
				bestIdx, bestRem = i, rem
			}
		}
		if bestIdx == -1 || load+bestRem > capacity+fitEps {
			break
		}
		id := pending[bestIdx]
		load += bestRem
		t.Admit(id)
		chosen = append(chosen, id)
		pending = append(pending[:bestIdx], pending[bestIdx+1:]...)
	}
	return chosen
}

// incrementalLoad returns the extra load the subset adds over the base
// tracker, counting operators shared within the subset once.
func incrementalLoad(p *query.Pool, base *query.LoadTracker, subset []query.QueryID) float64 {
	seen := make(map[query.OperatorID]bool)
	var sum float64
	for _, id := range subset {
		for _, op := range p.Query(id).Operators {
			if base.Provisioned(op) || seen[op] {
				continue
			}
			seen[op] = true
			sum += p.Operator(op).Load
		}
	}
	return sum
}

// samplePrice returns the half's sampled optimal constant price, applying
// the configured empty-sample convention.
func (m *TwoPrice) samplePrice(p *query.Pool, set []query.QueryID) float64 {
	if len(set) == 0 {
		if m.FreeWhenEmptySample {
			return 0
		}
		return math.Inf(1)
	}
	return optimalConstantPrice(p, set)
}

// optimalConstantPrice returns the price p maximizing p × |{i in set :
// bid_i ≥ p}| over the set's own bids — the sampled optimal constant price
// of Algorithm 3 Step 5 (pX = v_k at k = argmax_i i·v_i). An empty set
// yields +Inf so that no query can beat the price of an empty sample.
func optimalConstantPrice(p *query.Pool, set []query.QueryID) float64 {
	if len(set) == 0 {
		return math.Inf(1)
	}
	bids := make([]float64, len(set))
	for i, id := range set {
		bids[i] = p.Bid(id)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(bids)))
	bestProfit, bestPrice := math.Inf(-1), bids[0]
	for i, v := range bids {
		if profit := float64(i+1) * v; profit > bestProfit {
			bestProfit, bestPrice = profit, v
		}
	}
	return bestPrice
}

// popcount returns the number of set bits in mask.
func popcount(mask int) int {
	count := 0
	for mask != 0 {
		mask &= mask - 1
		count++
	}
	return count
}
