package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		n     int
		theta float64
	}{
		{0, 1},
		{-5, 1},
		{10, -0.1},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(n=%d, theta=%g) did not panic", tc.n, tc.theta)
				}
			}()
			New(rand.New(rand.NewSource(1)), tc.n, tc.theta)
		}()
	}
}

func TestProbSumsToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 1, 2} {
		z := New(rand.New(rand.NewSource(1)), 100, theta)
		sum := 0.0
		for k := 1; k <= 100; k++ {
			p := z.Prob(k)
			if p <= 0 {
				t.Fatalf("theta=%g: Prob(%d) = %g, want positive", theta, k, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta=%g: probabilities sum to %g, want 1", theta, sum)
		}
	}
}

func TestProbOutOfRange(t *testing.T) {
	z := New(rand.New(rand.NewSource(1)), 10, 1)
	if z.Prob(0) != 0 || z.Prob(11) != 0 || z.Prob(-3) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestZeroThetaIsUniform(t *testing.T) {
	z := New(rand.New(rand.NewSource(1)), 50, 0)
	for k := 1; k <= 50; k++ {
		if math.Abs(z.Prob(k)-0.02) > 1e-12 {
			t.Fatalf("Prob(%d) = %g, want 0.02", k, z.Prob(k))
		}
	}
}

func TestSkewOrdersProbabilities(t *testing.T) {
	z := New(rand.New(rand.NewSource(1)), 30, 1.5)
	for k := 2; k <= 30; k++ {
		if z.Prob(k) >= z.Prob(k-1) {
			t.Fatalf("Prob(%d)=%g not below Prob(%d)=%g", k, z.Prob(k), k-1, z.Prob(k-1))
		}
	}
}

func TestDrawWithinSupport(t *testing.T) {
	f := func(seed int64) bool {
		z := New(rand.New(rand.NewSource(seed)), 17, 0.8)
		for i := 0; i < 200; i++ {
			v := z.Draw()
			if v < 1 || v > 17 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalMatchesTheoretical(t *testing.T) {
	const n = 20
	const draws = 200000
	z := New(rand.New(rand.NewSource(42)), n, 1)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	for k := 1; k <= n; k++ {
		want := z.Prob(k)
		got := float64(counts[k]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical P(%d) = %.4f, theoretical %.4f", k, got, want)
		}
	}
}

func TestMeanMatchesEmpirical(t *testing.T) {
	z := New(rand.New(rand.NewSource(7)), 60, 1)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(z.Draw())
	}
	got := sum / draws
	want := z.Mean()
	if math.Abs(got-want) > 0.2 {
		t.Errorf("empirical mean %.3f, theoretical %.3f", got, want)
	}
	// The paper's degree distribution: mean of Zipf(60, 1) is 60/H(60) ≈ 12.8.
	if want < 12 || want > 13.5 {
		t.Errorf("Mean() = %.3f, want ≈ 12.8 for Zipf(60, 1)", want)
	}
}

func TestDeterminism(t *testing.T) {
	a := New(rand.New(rand.NewSource(9)), 100, 0.5)
	b := New(rand.New(rand.NewSource(9)), 100, 0.5)
	for i := 0; i < 1000; i++ {
		if a.Draw() != b.Draw() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestAccessors(t *testing.T) {
	z := New(rand.New(rand.NewSource(1)), 42, 0.7)
	if z.N() != 42 {
		t.Errorf("N() = %d, want 42", z.N())
	}
	if z.Theta() != 0.7 {
		t.Errorf("Theta() = %g, want 0.7", z.Theta())
	}
}

func TestCDF(t *testing.T) {
	z := New(rand.New(rand.NewSource(3)), 50, 1.2)
	if got := z.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %g, want 0", got)
	}
	if got := z.CDF(50); got != 1 {
		t.Errorf("CDF(N) = %g, want 1", got)
	}
	if got := z.CDF(99); got != 1 {
		t.Errorf("CDF(>N) = %g, want 1", got)
	}
	if got, want := z.CDF(1), z.Prob(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("CDF(1) = %g, want P(1) = %g", got, want)
	}
	// CDF is nondecreasing and consistent with the point masses.
	run := 0.0
	for k := 1; k <= 50; k++ {
		run += z.Prob(k)
		if got := z.CDF(k); math.Abs(got-run) > 1e-9 {
			t.Fatalf("CDF(%d) = %g, want running sum %g", k, got, run)
		}
		if k > 1 && z.CDF(k) < z.CDF(k-1) {
			t.Fatalf("CDF decreasing at %d", k)
		}
	}
}
