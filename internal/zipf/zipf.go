// Package zipf provides a Zipf-distributed sampler over {1, ..., N} with an
// arbitrary skewness parameter θ ≥ 0, including θ ≤ 1 which the standard
// library's rand.Zipf does not support.
//
// The paper's workload (Table III) draws operator loads and sharing degrees
// from Zipf with skewness 1 and bids from Zipf with skewness 0.5, so an
// arbitrary-θ sampler is required. Sampling uses the inverse-CDF method over
// precomputed cumulative weights: P(k) ∝ 1/k^θ.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples integers in [1, N] with probability proportional to 1/k^θ.
// θ = 0 is the uniform distribution; larger θ skews mass toward small values.
// A Zipf is safe for use by a single goroutine (it wraps a *rand.Rand).
type Zipf struct {
	n   int
	th  float64
	cum []float64 // cum[k-1] = P(X <= k), cum[n-1] == 1
	rng *rand.Rand
}

// New returns a sampler over {1..n} with skewness theta, driven by rng.
// It panics if n < 1 or theta < 0; the workload generator validates its
// parameters before constructing samplers, so a panic here indicates a bug.
func New(rng *rand.Rand, n int, theta float64) *Zipf {
	if n < 1 {
		panic(fmt.Sprintf("zipf: n must be >= 1, got %d", n))
	}
	if theta < 0 {
		panic(fmt.Sprintf("zipf: theta must be >= 0, got %g", theta))
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k), -theta)
		cum[k-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against floating-point shortfall
	return &Zipf{n: n, th: theta, cum: cum, rng: rng}
}

// N returns the upper bound of the support.
func (z *Zipf) N() int { return z.n }

// Theta returns the skewness parameter.
func (z *Zipf) Theta() float64 { return z.th }

// Draw returns one sample in [1, N].
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// First index whose cumulative probability reaches u.
	i := sort.SearchFloat64s(z.cum, u)
	if i >= z.n {
		i = z.n - 1
	}
	return i + 1
}

// CDF returns P(X <= k): 0 for k < 1 and 1 for k >= N. Skew-sensitive
// tests use it to bound how much of a workload the hottest keys carry —
// e.g. the elastic-sharding rebalance can never push the hot shard's share
// below CDF(1).
func (z *Zipf) CDF(k int) float64 {
	if k < 1 {
		return 0
	}
	if k >= z.n {
		return 1
	}
	return z.cum[k-1]
}

// Prob returns P(X = k), or 0 if k is outside [1, N].
func (z *Zipf) Prob(k int) float64 {
	if k < 1 || k > z.n {
		return 0
	}
	if k == 1 {
		return z.cum[0]
	}
	return z.cum[k-1] - z.cum[k-2]
}

// Mean returns E[X] computed from the exact distribution.
func (z *Zipf) Mean() float64 {
	m := 0.0
	for k := 1; k <= z.n; k++ {
		m += float64(k) * z.Prob(k)
	}
	return m
}
