package qos

import (
	"math"
	"testing"

	"repro/internal/sched"
)

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(); err == nil {
		t.Error("want error for empty graph")
	}
	if _, err := NewGraph(Point{Latency: -1, Utility: 1}); err == nil {
		t.Error("want error for negative latency")
	}
	if _, err := NewGraph(Point{Latency: 0, Utility: 2}); err == nil {
		t.Error("want error for utility above 1")
	}
	if _, err := NewGraph(Point{0, 0.5}, Point{10, 0.9}); err == nil {
		t.Error("want error for increasing utility")
	}
}

func TestUtilityInterpolation(t *testing.T) {
	g := MustGraph(Point{0, 1}, Point{10, 1}, Point{20, 0.2}, Point{40, 0})
	cases := []struct {
		latency float64
		want    float64
	}{
		{0, 1},
		{5, 1},
		{10, 1},
		{15, 0.6}, // halfway down the 1 -> 0.2 segment
		{20, 0.2},
		{30, 0.1},
		{100, 0},
		{math.Inf(1), 0},
	}
	for _, tc := range cases {
		if got := g.Utility(tc.latency); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Utility(%v) = %v, want %v", tc.latency, got, tc.want)
		}
	}
}

// TestUtilitySinglePoint: a one-vertex graph is a constant function — the
// flat-before-first and flat-after-last rules meet at the same point.
func TestUtilitySinglePoint(t *testing.T) {
	g := MustGraph(Point{Latency: 10, Utility: 0.7})
	for _, latency := range []float64{0, 10, 10.000001, 1e9, math.Inf(1)} {
		if got := g.Utility(latency); got != 0.7 {
			t.Errorf("Utility(%v) = %v, want 0.7", latency, got)
		}
	}
	// A single point at latency zero must not divide by a zero-width segment.
	z := MustGraph(Point{Latency: 0, Utility: 1})
	if z.Utility(0) != 1 || z.Utility(5) != 1 {
		t.Error("zero-latency single-point graph should be constant 1")
	}
}

// TestUtilityExactVertices: evaluation exactly on a vertex returns that
// vertex's utility, including the first and last vertex and duplicated
// latencies (a discontinuity like StepGraph's, where the earlier, upper
// vertex still applies at the shared latency — left-continuity).
func TestUtilityExactVertices(t *testing.T) {
	g := MustGraph(Point{0, 1}, Point{10, 0.8}, Point{20, 0.3}, Point{40, 0})
	for _, tc := range []struct{ latency, want float64 }{
		{0, 1}, {10, 0.8}, {20, 0.3}, {40, 0},
	} {
		if got := g.Utility(tc.latency); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Utility(%v) = %v, want %v", tc.latency, got, tc.want)
		}
	}
	// Two vertices at one latency make a discontinuity; Utility is
	// left-continuous there — exactly at the shared latency the upper
	// (earlier) value still applies, and the drop takes effect just after.
	step := MustGraph(Point{5, 1}, Point{5, 0.25}, Point{30, 0})
	if got := step.Utility(5); got != 1 {
		t.Errorf("Utility at duplicated vertex = %v, want 1 (left-continuous)", got)
	}
	if got := step.Utility(5.000001); math.Abs(got-0.25) > 1e-3 {
		t.Errorf("Utility just past duplicated vertex = %v, want ~0.25", got)
	}
}

func TestStepGraph(t *testing.T) {
	g := StepGraph(5)
	if g.Utility(4.9) != 1 {
		t.Error("before deadline should be full utility")
	}
	if g.Utility(6) != 0 {
		t.Error("after deadline should be zero")
	}
}

// TestEvaluateStableVsOverload: an underloaded period yields near-zero
// latencies and full utility; an overloaded one starves the queries.
func TestEvaluateStableVsOverload(t *testing.T) {
	run := func(loads []float64, capacity float64) *sched.Report {
		s, err := sched.New(capacity)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range loads {
			if err := s.Add(sched.Operator{Name: "op", Load: l}); err != nil {
				t.Fatal(err)
			}
		}
		report, err := s.Run(400, sched.RoundRobin{})
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	graphs := map[string]*Graph{
		"q1": MustGraph(Point{0, 1}, Point{50, 0}),
		"q2": MustGraph(Point{0, 1}, Point{50, 0}),
	}
	queryOps := map[string][]int{"q1": {0}, "q2": {0, 1}}

	good, err := Evaluate(run([]float64{3, 3}, 10), graphs, queryOps)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range good {
		if q.Utility < 0.9 {
			t.Errorf("underloaded %s utility = %v, want ≈ 1", q.Query, q.Utility)
		}
	}

	bad, err := Evaluate(run([]float64{8, 8}, 10), graphs, queryOps)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range bad {
		if q.Utility > 0.2 {
			t.Errorf("overloaded %s utility = %v, want ≈ 0", q.Query, q.Utility)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	s, _ := sched.New(10)
	_ = s.Add(sched.Operator{Name: "op", Load: 1})
	report, err := s.Run(10, sched.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*Graph{"q": StepGraph(5)}
	if _, err := Evaluate(report, graphs, map[string][]int{"other": {0}}); err == nil {
		t.Error("want error for query without a graph")
	}
	if _, err := Evaluate(report, graphs, map[string][]int{"q": {7}}); err == nil {
		t.Error("want error for out-of-range operator")
	}
}

// TestQueryLatencyIsSlowestOperator: a query's latency is gated by its
// slowest shared operator.
func TestQueryLatencyIsSlowestOperator(t *testing.T) {
	s, _ := sched.New(10)
	_ = s.Add(sched.Operator{Name: "fast", Load: 1})
	_ = s.Add(sched.Operator{Name: "slow", Load: 12}) // overloaded alone
	report, err := s.Run(200, sched.Proportional{})
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*Graph{"q": MustGraph(Point{0, 1}, Point{1000, 0})}
	out, err := Evaluate(report, graphs, map[string][]int{"q": {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Latency < report.PerOperatorDelay[1]-1e-9 {
		t.Errorf("query latency %v below slow operator's %v", out[0].Latency, report.PerOperatorDelay[1])
	}
}
