// Package qos implements Aurora-style quality-of-service graphs for
// continuous queries: piecewise-linear utility as a function of result
// latency. The paper's cited substrate ([1], [3]) drives scheduling and
// load-shedding from exactly such graphs; here they close the loop between
// the admission auction and the execution layer — Evaluate maps a scheduled
// period (per-operator delays from the sched package) to per-query
// delivered utility, so a provider can verify that admitted queries receive
// the service their payments bought.
package qos

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/sched"
)

// Point is one vertex of a QoS graph: at Latency (ticks) the user receives
// Utility (in [0, 1]).
type Point struct {
	Latency float64
	Utility float64
}

// Graph is a piecewise-linear, non-increasing latency-utility function.
type Graph struct {
	points []Point
}

// NewGraph builds a QoS graph from vertices sorted by ascending latency.
// Utilities must be within [0, 1] and non-increasing in latency.
func NewGraph(points ...Point) (*Graph, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("qos: graph needs at least one point")
	}
	sorted := append([]Point(nil), points...)
	// Stable: duplicated latencies (a utility discontinuity) must keep
	// their input order, or the non-increasing validation below would
	// reject a legitimate step.
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Latency < sorted[j].Latency })
	for i, p := range sorted {
		if p.Latency < 0 {
			return nil, fmt.Errorf("qos: negative latency %g", p.Latency)
		}
		if p.Utility < 0 || p.Utility > 1 {
			return nil, fmt.Errorf("qos: utility %g outside [0, 1]", p.Utility)
		}
		if i > 0 && p.Utility > sorted[i-1].Utility {
			return nil, fmt.Errorf("qos: utility must be non-increasing in latency")
		}
	}
	return &Graph{points: sorted}, nil
}

// MustGraph is NewGraph that panics on error.
func MustGraph(points ...Point) *Graph {
	g, err := NewGraph(points...)
	if err != nil {
		panic(err)
	}
	return g
}

// StepGraph returns full utility up to deadline and zero beyond — the
// hard-deadline special case.
func StepGraph(deadline float64) *Graph {
	return MustGraph(Point{Latency: deadline, Utility: 1}, Point{Latency: deadline + 1e-9, Utility: 0})
}

// Utility evaluates the graph at the given latency: flat before the first
// vertex, linear between vertices, flat after the last.
func (g *Graph) Utility(latency float64) float64 {
	if math.IsInf(latency, 1) {
		return g.points[len(g.points)-1].Utility
	}
	if latency <= g.points[0].Latency {
		return g.points[0].Utility
	}
	for i := 1; i < len(g.points); i++ {
		a, b := g.points[i-1], g.points[i]
		if latency <= b.Latency {
			if b.Latency == a.Latency {
				return b.Utility
			}
			frac := (latency - a.Latency) / (b.Latency - a.Latency)
			return a.Utility + frac*(b.Utility-a.Utility)
		}
	}
	return g.points[len(g.points)-1].Utility
}

// QueryQoS is one query's delivered quality of service.
type QueryQoS struct {
	Query string
	// Latency is the query's end-to-end delay estimate: the maximum mean
	// delay over its operators (the slowest shared operator gates results).
	Latency float64
	// Utility is the QoS graph evaluated at Latency.
	Utility float64
}

// QueryOperators derives the query-to-operator-index mapping Evaluate needs
// from an executor's measured stats: each NodeLoad's owners are the queries
// containing that operator, and the indices match a simulator built with
// sched.FromMeasured over the same loads.
func QueryOperators(loads []engine.NodeLoad) map[string][]int {
	out := make(map[string][]int)
	for i, nl := range loads {
		for _, owner := range nl.Owners {
			out[owner] = append(out[owner], i)
		}
	}
	return out
}

// Evaluate maps a sched report to per-query QoS: queries name their
// operators by index into the simulator's operator order, and each query's
// latency is the max of its operators' mean delays.
func Evaluate(report *sched.Report, graphs map[string]*Graph, queryOps map[string][]int) ([]QueryQoS, error) {
	out := make([]QueryQoS, 0, len(queryOps))
	names := make([]string, 0, len(queryOps))
	for name := range queryOps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, ok := graphs[name]
		if !ok {
			return nil, fmt.Errorf("qos: query %q has no QoS graph", name)
		}
		latency := 0.0
		for _, op := range queryOps[name] {
			if op < 0 || op >= len(report.PerOperatorDelay) {
				return nil, fmt.Errorf("qos: query %q references operator %d outside the report", name, op)
			}
			if d := report.PerOperatorDelay[op]; d > latency {
				latency = d
			}
		}
		out = append(out, QueryQoS{Query: name, Latency: latency, Utility: g.Utility(latency)})
	}
	return out, nil
}
