// Package cloud implements the paper's DSMS center: a for-profit service
// that, at the end of each subscription period, collects (continuous query,
// bid) submissions, runs an auction-based admission-control mechanism
// against server capacity, bills the winners their auction payments, and
// transitions the shared stream-processing engine to the admitted plan so
// surviving queries keep running correctly into the next period.
package cloud

import (
	"fmt"
	"sort"

	"repro/internal/auction"
	"repro/internal/billing"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/stream"
)

// OperatorSpec is the shared submission vocabulary (see query.OperatorSpec):
// Key identifies the operator globally — two submissions declaring the same
// Key share one physical operator, and its load is paid once — and Load is
// the operator's estimated fraction of server capacity. The alias keeps one
// spec type across both admission paths (cloud and subscription), so a
// compiled operator list submits unchanged to either.
type OperatorSpec = query.OperatorSpec

// Submission is one client's entry into the next period's auction.
type Submission struct {
	// User is the submitting principal (billing account).
	User int
	// Tenant optionally names the submitting service-plane tenant; the
	// simulator's synthetic users leave it empty. It rides through the
	// auction so PeriodReport entries can be routed back to the tenant's
	// session without a side table.
	Tenant string
	// Name identifies the query; it is also the engine sink name. Names
	// must be unique within a period.
	Name string
	// Bid is the user's declared willingness to pay for the period.
	Bid float64
	// Value is the user's private valuation; zero means Value = Bid
	// (truthful). Only reports and payoff metrics read it.
	Value float64
	// Operators lists the query's operators.
	Operators []OperatorSpec
	// Deploy, if non-nil, adds the query's dataflow to the shared engine
	// plan being assembled for the period. Submissions without Deploy
	// participate in the auction but run no dataflow (auction-only mode).
	Deploy DeployFunc
}

// DeployFunc wires a query into a period plan. Implementations must obtain
// operators through the SharedOps registry so physically-shared operators
// are instantiated once, and must finish by calling reg.Sink with the
// query's name.
type DeployFunc func(reg *SharedOps) error

// AdmittedQuery describes one winner of a period's auction.
type AdmittedQuery struct {
	Name    string
	User    int
	Tenant  string `json:",omitempty"`
	Bid     float64
	Payment float64
}

// PeriodReport summarizes one closed period.
type PeriodReport struct {
	Period   int
	Outcome  *auction.Outcome
	Admitted []AdmittedQuery
	Rejected []string
	Revenue  float64
	// Utilization is the admitted aggregate load over capacity.
	Utilization float64
}

// Center is the DSMS cloud service.
type Center struct {
	mech     auction.Mechanism
	capacity float64
	ledger   *billing.Ledger

	sources []SourceDecl
	// instances persists operator state across periods: a shared operator
	// admitted in consecutive periods keeps its windows.
	unaryInstances  map[string]stream.Transform
	binaryInstances map[string]stream.BinaryTransform

	pending map[string]Submission
	order   []string // submission order, for deterministic pools
	eng     *engine.Engine
	period  int
}

// SourceDecl declares one input stream: its name and tuple schema.
type SourceDecl struct {
	Name   string
	Schema *stream.Schema
}

// New creates a center running the given mechanism with the given capacity.
func New(mech auction.Mechanism, capacity float64) *Center {
	return &Center{
		mech:            mech,
		capacity:        capacity,
		ledger:          billing.NewLedger(),
		unaryInstances:  make(map[string]stream.Transform),
		binaryInstances: make(map[string]stream.BinaryTransform),
		pending:         make(map[string]Submission),
	}
}

// DeclareSource registers an input stream available to deployed queries.
func (c *Center) DeclareSource(name string, schema *stream.Schema) {
	c.sources = append(c.sources, SourceDecl{name, schema})
}

// Sources returns the declared input streams.
func (c *Center) Sources() []SourceDecl { return append([]SourceDecl(nil), c.sources...) }

// Ledger returns the center's billing ledger.
func (c *Center) Ledger() *billing.Ledger { return c.ledger }

// Capacity returns the server capacity.
func (c *Center) Capacity() float64 { return c.capacity }

// Period returns the index of the next period to close.
func (c *Center) Period() int { return c.period }

// Submit enters a query into the next auction. Submitting a name twice
// before the period closes replaces the earlier submission (a client may
// revise her bid until the auction runs).
func (c *Center) Submit(s Submission) error {
	if s.Name == "" {
		return fmt.Errorf("cloud: submission needs a name")
	}
	if s.Bid < 0 {
		return fmt.Errorf("cloud: submission %q has negative bid %g", s.Name, s.Bid)
	}
	if len(s.Operators) == 0 {
		return fmt.Errorf("cloud: submission %q declares no operators", s.Name)
	}
	for _, op := range s.Operators {
		if op.Key == "" || op.Load <= 0 {
			return fmt.Errorf("cloud: submission %q has invalid operator %+v", s.Name, op)
		}
	}
	if s.Value == 0 {
		s.Value = s.Bid
	}
	if _, seen := c.pending[s.Name]; !seen {
		c.order = append(c.order, s.Name)
	}
	c.pending[s.Name] = s
	return nil
}

// buildPool assembles the auction pool from pending submissions, deduping
// operators by key. It returns the pool and the query-ID-to-name mapping.
func (c *Center) buildPool() (*query.Pool, []string, error) {
	b := query.NewBuilder()
	opIDs := make(map[string]query.OperatorID)
	names := make([]string, 0, len(c.order))
	for _, name := range c.order {
		s := c.pending[name]
		ids := make([]query.OperatorID, 0, len(s.Operators))
		for _, op := range s.Operators {
			id, ok := opIDs[op.Key]
			if !ok {
				id = b.AddOperator(op.Load)
				opIDs[op.Key] = id
			}
			ids = append(ids, id)
		}
		b.AddQueryValued(s.Bid, s.Value, s.User, ids...)
		names = append(names, name)
	}
	pool, err := b.Build()
	return pool, names, err
}

// ClosePeriod runs the auction over the pending submissions, bills the
// winners, deploys the admitted queries to the engine (transitioning from
// the previous period's plan) and returns the period report. Pending
// submissions are consumed; clients re-submit for the next period.
func (c *Center) ClosePeriod() (*PeriodReport, error) {
	if len(c.pending) == 0 {
		return nil, fmt.Errorf("cloud: no submissions for period %d", c.period)
	}
	pool, names, err := c.buildPool()
	if err != nil {
		return nil, err
	}
	out := c.mech.Run(pool, c.capacity)
	if err := out.Validate(); err != nil {
		return nil, err
	}

	report := &PeriodReport{
		Period:      c.period,
		Outcome:     out,
		Revenue:     out.Profit(),
		Utilization: out.Utilization(),
	}
	var winners []Submission
	for i, name := range names {
		id := query.QueryID(i)
		s := c.pending[name]
		if !out.IsWinner(id) {
			report.Rejected = append(report.Rejected, name)
			continue
		}
		if _, err := c.ledger.Charge(c.period, s.User, name, out.Payment(id)); err != nil {
			return nil, err
		}
		report.Admitted = append(report.Admitted, AdmittedQuery{
			Name: name, User: s.User, Tenant: s.Tenant, Bid: s.Bid, Payment: out.Payment(id),
		})
		winners = append(winners, s)
	}
	sort.Strings(report.Rejected)

	if err := c.deploy(winners); err != nil {
		return nil, err
	}
	c.pending = make(map[string]Submission)
	c.order = nil
	c.period++
	return report, nil
}

// deploy builds the period plan from the winners' Deploy functions and
// transitions the engine onto it.
func (c *Center) deploy(winners []Submission) error {
	var deployable []Submission
	for _, w := range winners {
		if w.Deploy != nil {
			deployable = append(deployable, w)
		}
	}
	if len(deployable) == 0 {
		return nil // auction-only mode, or no dataflow winners this period
	}
	// Persistent instance stores: a shared operator admitted in consecutive
	// periods keeps its windows across the transition.
	plan, err := compile(c.sources, deployable, c.unaryInstances, c.binaryInstances)
	if err != nil {
		return err
	}
	if c.eng == nil {
		eng, err := engine.New(plan)
		if err != nil {
			return err
		}
		c.eng = eng
		return nil
	}
	return c.eng.Transition(plan)
}

// Engine returns the running engine, or nil before the first deployed
// period.
func (c *Center) Engine() *engine.Engine { return c.eng }

// Push injects a tuple into a source stream of the running plan.
func (c *Center) Push(source string, t stream.Tuple) error {
	if c.eng == nil {
		return fmt.Errorf("cloud: no deployed plan")
	}
	return c.eng.Push(source, t)
}

// Results drains the named query's output tuples.
func (c *Center) Results(queryName string) []stream.Tuple {
	if c.eng == nil {
		return nil
	}
	return c.eng.Results(queryName)
}

// MeasuredLoad returns the engine's measured load for the operator with the
// given key during the current metering period, closing the paper's loop of
// "load can be reasonably approximated by the system": submissions for the
// next period can carry measured instead of declared loads. The bool is
// false when the operator is not deployed.
func (c *Center) MeasuredLoad(key string) (float64, bool) {
	if c.eng == nil {
		return 0, false
	}
	for _, nl := range c.eng.Loads() {
		if nl.Name == key {
			return nl.Load, true
		}
	}
	return 0, false
}

// MeasuredSelectivity returns the operator's measured selectivity
// (OutTuples/Tuples) during the current metering period. Re-submitted
// queries feed these into the CQL compiler (cql.Costs.Measured) so
// downstream load estimates stop assuming the static selectivity guess —
// the compiler's half of the feedback loop Reestimate closes for loads.
// The bool is false when the operator is not deployed or saw no input.
func (c *Center) MeasuredSelectivity(key string) (float64, bool) {
	if c.eng == nil {
		return 0, false
	}
	for _, nl := range c.eng.Loads() {
		if nl.Name == key && nl.Tuples > 0 {
			return nl.Selectivity(), true
		}
	}
	return 0, false
}

// Reestimate returns a copy of the submission with every operator's load
// replaced by its measured value where available — the feedback step a
// client (or the center acting for it) performs between periods. Clients
// re-deriving their declarations from the cost model instead should
// recompile with cql.Costs.Measured fed from MeasuredSelectivity, which
// recalibrates the estimates the static model got wrong.
func (c *Center) Reestimate(s Submission) Submission {
	ops := make([]OperatorSpec, len(s.Operators))
	copy(ops, s.Operators)
	for i, op := range ops {
		if measured, ok := c.MeasuredLoad(op.Key); ok && measured > 0 {
			ops[i].Load = measured
		}
	}
	s.Operators = ops
	return s
}

// CompilePlan assembles a standalone shared plan from the submissions'
// Deploy functions with fresh operator instances. It is the executor
// layer's plan factory: the admission daemon compiles each period's auction
// winners into one shared plan per executor shard, with operator sharing
// within the plan (same key → one physical node) but no state carried in
// from previous periods. Submissions without a Deploy function are skipped.
//
// The compiled plan carries partition-key metadata on its operator
// instances (stream.PartitionKeyer et al., populated by the CQL compiler's
// GroupBy/JoinOn fields and by hand-built deployments alike), so
// engine.Plan.Analyze can split it into a shardable prefix and a global
// suffix and derive the correct PartitionFunc — the staged executor
// (engine.StartStaged) consumes exactly that, and no longer assumes the
// partition key is field 0.
func CompilePlan(sources []SourceDecl, winners []Submission) (*engine.Plan, error) {
	var deployable []Submission
	for _, w := range winners {
		if w.Deploy != nil {
			deployable = append(deployable, w)
		}
	}
	if len(deployable) == 0 {
		return nil, fmt.Errorf("cloud: no deployable submissions")
	}
	return compile(sources, deployable,
		make(map[string]stream.Transform), make(map[string]stream.BinaryTransform))
}

// compile builds a period plan from deployable submissions, drawing operator
// instances from the given stores (persistent for the Center's transitioning
// engine, fresh for standalone compilation).
func compile(sources []SourceDecl, deployable []Submission,
	unary map[string]stream.Transform, binary map[string]stream.BinaryTransform) (*engine.Plan, error) {
	plan := engine.NewPlan()
	reg := &SharedOps{
		plan:    plan,
		ports:   make(map[string]engine.PortRef),
		sources: make(map[string]bool),
		unary:   unary,
		binary:  binary,
	}
	for _, src := range sources {
		plan.AddSource(src.Name, src.Schema)
		reg.sources[src.Name] = true
	}
	for _, w := range deployable {
		reg.current = w.Name
		if err := w.Deploy(reg); err != nil {
			return nil, fmt.Errorf("cloud: deploying %q: %w", w.Name, err)
		}
	}
	if err := plan.Build(); err != nil {
		return nil, err
	}
	return plan, nil
}

// SharedOps is the per-period deployment registry: it memoizes operator
// instantiation by key so queries declaring the same operator key share one
// physical node, and it draws instances from a store that may outlive the
// period, so surviving operators keep their state through the Center's
// transition phase.
type SharedOps struct {
	plan    *engine.Plan
	ports   map[string]engine.PortRef
	sources map[string]bool
	unary   map[string]stream.Transform
	binary  map[string]stream.BinaryTransform
	current string
}

// Source returns the port of a declared source stream.
func (r *SharedOps) Source(name string) (engine.PortRef, error) {
	if !r.sources[name] {
		return engine.PortRef{}, fmt.Errorf("cloud: unknown source %q", name)
	}
	return engine.FromSource(name), nil
}

// Unary returns the output port of the operator identified by key, building
// it on first use in this period via build. The key must uniquely identify
// the operator together with its input, so sharing is semantically sound.
func (r *SharedOps) Unary(key string, in engine.PortRef, build func() stream.Transform) engine.PortRef {
	if port, ok := r.ports[key]; ok {
		return port
	}
	inst, ok := r.unary[key]
	if !ok {
		inst = build()
		r.unary[key] = inst
	}
	port := r.plan.AddUnary(inst, in)
	r.ports[key] = port
	return port
}

// Binary is Unary for two-input operators.
func (r *SharedOps) Binary(key string, left, right engine.PortRef, build func() stream.BinaryTransform) engine.PortRef {
	if port, ok := r.ports[key]; ok {
		return port
	}
	inst, ok := r.binary[key]
	if !ok {
		inst = build()
		r.binary[key] = inst
	}
	port := r.plan.AddBinary(inst, left, right)
	r.ports[key] = port
	return port
}

// Sink routes the port to the deploying query's result stream.
func (r *SharedOps) Sink(in engine.PortRef) {
	r.plan.AddSink(r.current, in)
}
