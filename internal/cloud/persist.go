package cloud

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/auction"
	"repro/internal/billing"
)

// Snapshot is the center's durable business state: the subscription period
// counter and the complete billing history. Engine dataflow state
// (in-flight windows) is deliberately runtime-only — after a restart the
// next period's transition starts from a clean plan, exactly like the
// paper's end-of-day boundary.
type Snapshot struct {
	Version   int               `json:"version"`
	Mechanism string            `json:"mechanism"`
	Capacity  float64           `json:"capacity"`
	Period    int               `json:"period"`
	Invoices  []billing.Invoice `json:"invoices"`
}

// snapshotVersion guards the wire format.
const snapshotVersion = 1

// Snapshot exports the center's durable state.
func (c *Center) Snapshot() Snapshot {
	return Snapshot{
		Version:   snapshotVersion,
		Mechanism: c.mech.Name(),
		Capacity:  c.capacity,
		Period:    c.period,
		Invoices:  c.ledger.Invoices(),
	}
}

// WriteSnapshot serializes the center's durable state as JSON.
func (c *Center) WriteSnapshot(w io.Writer) error {
	return json.NewEncoder(w).Encode(c.Snapshot())
}

// Restore rebuilds a center from a snapshot: same mechanism (by name, with
// the given seed for randomized ones), same capacity, resumed period
// counter and billing history. Sources and submissions are re-declared by
// the caller, as after any restart.
func Restore(snap Snapshot, seed int64) (*Center, error) {
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("cloud: unsupported snapshot version %d", snap.Version)
	}
	mech, err := auction.ByName(snap.Mechanism, seed)
	if err != nil {
		return nil, err
	}
	if snap.Capacity <= 0 {
		return nil, fmt.Errorf("cloud: snapshot has non-positive capacity %g", snap.Capacity)
	}
	ledger, err := billing.Restore(snap.Invoices)
	if err != nil {
		return nil, err
	}
	c := New(mech, snap.Capacity)
	c.ledger = ledger
	c.period = snap.Period
	return c, nil
}

// ReadSnapshot deserializes and restores a center.
func ReadSnapshot(r io.Reader, seed int64) (*Center, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("cloud: decoding snapshot: %w", err)
	}
	return Restore(snap, seed)
}
