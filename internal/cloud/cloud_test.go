package cloud

import (
	"math"
	"testing"

	"repro/internal/auction"
	"repro/internal/stream"
)

var schema = stream.MustSchema(
	stream.Field{Name: "sym", Kind: stream.KindString},
	stream.Field{Name: "v", Kind: stream.KindFloat},
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// example1Submissions recreates the paper's Example 1 as cloud submissions;
// operator A is shared between Alice and Bob through its key.
func example1Submissions() []Submission {
	return []Submission{
		{User: 1, Name: "q1", Bid: 55, Operators: []OperatorSpec{{Key: "A", Load: 4}, {Key: "B", Load: 1}}},
		{User: 2, Name: "q2", Bid: 72, Operators: []OperatorSpec{{Key: "A", Load: 4}, {Key: "C", Load: 2}}},
		{User: 3, Name: "q3", Bid: 100, Operators: []OperatorSpec{{Key: "D", Load: 6}, {Key: "E", Load: 4}}},
	}
}

func TestSubmitValidation(t *testing.T) {
	c := New(auction.NewCAT(), 10)
	cases := []Submission{
		{},
		{Name: "q", Bid: -1, Operators: []OperatorSpec{{Key: "k", Load: 1}}},
		{Name: "q", Bid: 1},
		{Name: "q", Bid: 1, Operators: []OperatorSpec{{Key: "", Load: 1}}},
		{Name: "q", Bid: 1, Operators: []OperatorSpec{{Key: "k", Load: 0}}},
	}
	for i, s := range cases {
		if err := c.Submit(s); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestClosePeriodExample1(t *testing.T) {
	c := New(auction.NewCAT(), 10)
	for _, s := range example1Submissions() {
		if err := c.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	report, err := c.ClosePeriod()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Admitted) != 2 {
		t.Fatalf("admitted = %+v, want q1 and q2", report.Admitted)
	}
	want := map[string]float64{"q1": 50, "q2": 60}
	for _, a := range report.Admitted {
		if !almost(a.Payment, want[a.Name]) {
			t.Errorf("%s payment = %v, want %v", a.Name, a.Payment, want[a.Name])
		}
	}
	if len(report.Rejected) != 1 || report.Rejected[0] != "q3" {
		t.Errorf("rejected = %v, want [q3]", report.Rejected)
	}
	if !almost(report.Revenue, 110) {
		t.Errorf("revenue = %v, want 110", report.Revenue)
	}
	if !almost(report.Utilization, 0.7) {
		t.Errorf("utilization = %v, want 0.7", report.Utilization)
	}
	// Billing recorded the charges.
	if got := c.Ledger().Revenue(0); !almost(got, 110) {
		t.Errorf("ledger revenue = %v, want 110", got)
	}
	if got := c.Ledger().Balance(2); !almost(got, 60) {
		t.Errorf("user 2 balance = %v, want 60", got)
	}
	// Pending is consumed.
	if _, err := c.ClosePeriod(); err == nil {
		t.Error("want error closing an empty period")
	}
	if c.Period() != 1 {
		t.Errorf("period = %d, want 1", c.Period())
	}
}

func TestResubmitReplaces(t *testing.T) {
	c := New(auction.NewCAT(), 10)
	subs := example1Submissions()
	for _, s := range subs {
		if err := c.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	// q3's user revises her bid down; the revision must replace, not append.
	revised := subs[2]
	revised.Bid = 1
	if err := c.Submit(revised); err != nil {
		t.Fatal(err)
	}
	report, err := c.ClosePeriod()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Admitted)+len(report.Rejected) != 3 {
		t.Fatalf("period saw %d queries, want 3", len(report.Admitted)+len(report.Rejected))
	}
}

// deploySubmission wires a trivial filter for a query.
func deploySubmission(user int, name string, bid float64, opKey string, load float64) Submission {
	return Submission{
		User: user, Name: name, Bid: bid,
		Operators: []OperatorSpec{{Key: opKey, Load: load}},
		Deploy: func(reg *SharedOps) error {
			src, err := reg.Source("s")
			if err != nil {
				return err
			}
			out := reg.Unary(opKey, src, func() stream.Transform {
				return stream.NewFilter(opKey, load, func(stream.Tuple) bool { return true })
			})
			reg.Sink(out)
			return nil
		},
	}
}

func TestDeployAndSharedInstances(t *testing.T) {
	c := New(auction.NewCAT(), 100)
	c.DeclareSource("s", schema)
	// Two queries sharing one physical operator by key.
	if err := c.Submit(deploySubmission(1, "qa", 10, "op", 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(deploySubmission(2, "qb", 20, "op", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	if c.Engine() == nil {
		t.Fatal("engine not deployed")
	}
	if n := c.Engine().Plan().NumNodes(); n != 1 {
		t.Fatalf("plan has %d nodes, want 1 shared", n)
	}
	if err := c.Push("s", stream.NewTuple(1, "a", 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(c.Results("qa")) != 1 || len(c.Results("qb")) != 1 {
		t.Error("both queries should see the tuple")
	}
}

// TestStateCarriesAcrossPeriods: a window operator surviving two auctions
// keeps its state through the engine transition.
func TestStateCarriesAcrossPeriods(t *testing.T) {
	c := New(auction.NewCAT(), 100)
	c.DeclareSource("s", schema)
	windowSub := func(bid float64) Submission {
		return Submission{
			User: 1, Name: "win", Bid: bid,
			Operators: []OperatorSpec{{Key: "sum4", Load: 1}},
			Deploy: func(reg *SharedOps) error {
				src, err := reg.Source("s")
				if err != nil {
					return err
				}
				out := reg.Unary("sum4", src, func() stream.Transform {
					return stream.MustWindowAgg("sum4", 1, stream.WindowSpec{
						Size: 4, Agg: stream.AggSum, Field: 1, GroupBy: -1,
					})
				})
				reg.Sink(out)
				return nil
			},
		}
	}
	if err := c.Submit(windowSub(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := c.Push("s", stream.NewTuple(int64(i), "a", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Re-admit for the next period; the half-full window must survive.
	if err := c.Submit(windowSub(12)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i <= 4; i++ {
		if err := c.Push("s", stream.NewTuple(int64(i), "a", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Results("win")
	if len(got) != 1 || got[0].Float(1) != 10 {
		t.Fatalf("cross-period window = %+v, want sum 10", got)
	}
}

// TestRejectedQueryNotDeployed: losers do not appear in the engine plan.
func TestRejectedQueryNotDeployed(t *testing.T) {
	c := New(auction.NewCAT(), 2) // room for only the cheap query
	c.DeclareSource("s", schema)
	if err := c.Submit(deploySubmission(1, "cheap", 50, "op-cheap", 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(deploySubmission(2, "pricy", 10, "op-pricy", 9)); err != nil {
		t.Fatal(err)
	}
	report, err := c.ClosePeriod()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Admitted) != 1 || report.Admitted[0].Name != "cheap" {
		t.Fatalf("admitted = %+v, want only cheap", report.Admitted)
	}
	if err := c.Push("s", stream.NewTuple(1, "a", 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(c.Results("pricy")) != 0 {
		t.Error("rejected query produced results")
	}
}

func TestAuctionOnlyMode(t *testing.T) {
	c := New(auction.NewCAF(), 10)
	for _, s := range example1Submissions() {
		if err := c.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	report, err := c.ClosePeriod()
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine() != nil {
		t.Error("no Deploy functions: engine must stay nil")
	}
	if !almost(report.Revenue, 70) { // CAF on Example 1: 30 + 40
		t.Errorf("CAF revenue = %v, want 70", report.Revenue)
	}
	if err := c.Push("s", stream.NewTuple(1, "a", 1.0)); err == nil {
		t.Error("push without a deployed plan should error")
	}
}
