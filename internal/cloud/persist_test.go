package cloud

import (
	"bytes"
	"testing"

	"repro/internal/auction"
)

func TestSnapshotRoundTrip(t *testing.T) {
	c := New(auction.NewCAT(), 10)
	for _, s := range example1Submissions() {
		if err := c.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.ClosePeriod(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf, 7)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Period() != 1 || restored.Capacity() != 10 {
		t.Errorf("restored period/capacity = %d/%v", restored.Period(), restored.Capacity())
	}
	if got, want := restored.Ledger().Revenue(-1), c.Ledger().Revenue(-1); got != want {
		t.Errorf("restored revenue = %v, want %v", got, want)
	}
	if got := restored.Ledger().Balance(2); got != 60 {
		t.Errorf("restored user 2 balance = %v, want 60", got)
	}
	// The restored center keeps billing from where it left off: close a new
	// period and verify invoice IDs continue.
	for _, s := range example1Submissions() {
		if err := restored.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := restored.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	invoices := restored.Ledger().Invoices()
	for i, inv := range invoices {
		if inv.ID != i {
			t.Fatalf("invoice IDs not contiguous after restore: %+v", invoices)
		}
	}
	if invoices[len(invoices)-1].Period != 1 {
		t.Errorf("new invoices should carry period 1")
	}
}

func TestRestoreErrors(t *testing.T) {
	if _, err := Restore(Snapshot{Version: 99}, 0); err == nil {
		t.Error("want error for unknown version")
	}
	if _, err := Restore(Snapshot{Version: 1, Mechanism: "nope", Capacity: 1}, 0); err == nil {
		t.Error("want error for unknown mechanism")
	}
	if _, err := Restore(Snapshot{Version: 1, Mechanism: "CAT", Capacity: 0}, 0); err == nil {
		t.Error("want error for zero capacity")
	}
	if _, err := ReadSnapshot(bytes.NewBufferString("{bad json"), 0); err == nil {
		t.Error("want error for malformed JSON")
	}
}
