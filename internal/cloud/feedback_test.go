package cloud

import (
	"math"
	"testing"

	"repro/internal/auction"
	"repro/internal/stream"
)

// TestMeasuredLoadFeedback: the engine meters a deployed operator's real
// cost×rate; Reestimate folds it back into the next period's submission.
func TestMeasuredLoadFeedback(t *testing.T) {
	c := New(auction.NewCAT(), 100)
	c.DeclareSource("s", schema)
	// Declared load 10 is a wild overestimate; the operator's true per-tuple
	// cost is 2.
	sub := Submission{
		User: 1, Name: "q", Bid: 30,
		Operators: []OperatorSpec{{Key: "flt", Load: 10}},
		Deploy: func(reg *SharedOps) error {
			src, err := reg.Source("s")
			if err != nil {
				return err
			}
			out := reg.Unary("flt", src, func() stream.Transform {
				return stream.NewFilter("flt", 2, func(stream.Tuple) bool { return true })
			})
			reg.Sink(out)
			return nil
		},
	}
	if err := c.Submit(sub); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.MeasuredLoad("missing"); ok {
		t.Error("missing key should not be measured")
	}
	// One tuple per tick for 50 ticks: measured load = cost 2 × rate 1 = 2.
	for i := 0; i < 50; i++ {
		if err := c.Push("s", stream.NewTuple(int64(i), "a", 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	c.Engine().Advance(50)
	got, ok := c.MeasuredLoad("flt")
	if !ok {
		t.Fatal("operator not measured")
	}
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("measured load = %v, want 2", got)
	}
	updated := c.Reestimate(sub)
	if updated.Operators[0].Load != got {
		t.Errorf("reestimated load = %v, want %v", updated.Operators[0].Load, got)
	}
	// The original submission is untouched.
	if sub.Operators[0].Load != 10 {
		t.Error("Reestimate mutated the input submission")
	}
}

// TestMeasuredSelectivityFeedback: the center reports a deployed operator's
// measured selectivity (OutTuples/Tuples), which re-submitted queries feed
// into the CQL cost model in place of the static guess.
func TestMeasuredSelectivityFeedback(t *testing.T) {
	c := New(auction.NewCAT(), 100)
	c.DeclareSource("s", schema)
	sub := Submission{
		User: 1, Name: "q", Bid: 30,
		Operators: []OperatorSpec{{Key: "pos", Load: 5}},
		Deploy: func(reg *SharedOps) error {
			src, err := reg.Source("s")
			if err != nil {
				return err
			}
			out := reg.Unary("pos", src, func() stream.Transform {
				return stream.NewFilter("pos", 1, stream.FieldCmp(1, stream.Gt, 0))
			})
			reg.Sink(out)
			return nil
		},
	}
	if err := c.Submit(sub); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.MeasuredSelectivity("pos"); ok {
		t.Error("selectivity measured before any input")
	}
	// 3 of 4 tuples pass the filter.
	for i, v := range []float64{1, -1, 2, 3} {
		if err := c.Push("s", stream.NewTuple(int64(i), "a", v)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := c.MeasuredSelectivity("pos")
	if !ok {
		t.Fatal("operator not measured")
	}
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("measured selectivity = %v, want 0.75", got)
	}
}
