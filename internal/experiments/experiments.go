// Package experiments regenerates the paper's evaluation (Section VI):
// the Figure 4 sharing-degree sweeps of admission rate, total user payoff,
// profit and utilization at four capacities; the Figure 5 manipulation study
// of CAR under lying workloads; the Table IV runtime comparison; and the
// Table I/V property matrix verified by the gametheory harness.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/auction"
	"repro/internal/gametheory"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/workload"
)

// Config scales an experiment between the paper's full size and quick runs.
type Config struct {
	// Sets is the number of workload sets averaged per point (paper: 50).
	Sets int
	// NumQueries per instance (paper: 2000).
	NumQueries int
	// Degrees is the swept maximum-sharing-degree axis (paper: 1..60).
	Degrees []int
	// MaxSharing is the base instance's degree; it must be ≥ max(Degrees).
	MaxSharing int
	// BaseSeed offsets workload seeds so configurations are reproducible.
	BaseSeed int64
	// Workers bounds sweep parallelism across workload sets; 0 or 1 runs
	// serially. Results are merged in set order, so outputs are identical
	// at any worker count.
	Workers int
}

// PaperConfig returns the paper's full experimental scale. A full sweep is
// minutes of CPU (CAF+/CAT+ payments dominate, as Table IV predicts).
func PaperConfig() Config {
	degrees := make([]int, 0, 60)
	for d := 1; d <= 60; d++ {
		degrees = append(degrees, d)
	}
	return Config{Sets: 50, NumQueries: 2000, Degrees: degrees, MaxSharing: 60, BaseSeed: 1}
}

// QuickConfig returns a CI-scale configuration preserving the sweep's shape:
// fewer sets, 200-query instances and a coarser degree axis.
func QuickConfig() Config {
	return Config{
		Sets:       5,
		NumQueries: 200,
		Degrees:    []int{1, 2, 4, 8, 12, 16, 20},
		MaxSharing: 20,
		BaseSeed:   1,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if c.Sets < 1 {
		return fmt.Errorf("experiments: Sets must be >= 1, got %d", c.Sets)
	}
	if c.NumQueries < 1 {
		return fmt.Errorf("experiments: NumQueries must be >= 1, got %d", c.NumQueries)
	}
	if len(c.Degrees) == 0 {
		return fmt.Errorf("experiments: empty degree axis")
	}
	for _, d := range c.Degrees {
		if d < 1 || d > c.MaxSharing {
			return fmt.Errorf("experiments: degree %d outside [1, MaxSharing %d]", d, c.MaxSharing)
		}
	}
	return nil
}

// params builds the workload parameters for one set.
func (c Config) params(set int) workload.Params {
	p := workload.PaperParams(c.BaseSeed + int64(set))
	p.NumQueries = c.NumQueries
	p.MaxSharing = c.MaxSharing
	return p
}

// ScaleCapacity converts one of the paper's absolute capacities (5000,
// 10000, 15000, 20000 for 2000 queries) to this configuration's query
// count, preserving the capacity-to-total-demand ratio that determines
// where the profit crossovers fall.
func (c Config) ScaleCapacity(paperCapacity float64) float64 {
	return paperCapacity * float64(c.NumQueries) / 2000
}

// Mechanisms returns the paper's mechanism set in its reporting order. The
// seed drives Two-price's partition (and the Random baseline when included
// elsewhere).
func Mechanisms(seed int64) []auction.Mechanism {
	return []auction.Mechanism{
		auction.NewCAF(),
		auction.NewCAFPlus(),
		auction.NewCAT(),
		auction.NewCATPlus(),
		auction.NewTwoPrice(seed),
	}
}

// SweepResult bundles the four Figure 4 metrics over one sharing sweep.
type SweepResult struct {
	Capacity    float64
	Admission   *metrics.Series
	Payoff      *metrics.Series
	Profit      *metrics.Series
	Utilization *metrics.Series
}

// observation is one (mechanism, degree) measurement from one set.
type observation struct {
	mech        string
	x           float64
	admission   float64
	payoff      float64
	profit      float64
	utilization float64
}

// SharingSweep runs every mechanism over cfg.Sets workload sets at each
// sharing degree and capacity, producing the data behind Figures 4(a)-(f)
// and the Section VI-B utilization observation in one pass. Sets run in
// parallel up to cfg.Workers; each worker uses its own mechanism instances
// (mechanisms carry no mutable state, but randomized ones are re-seeded per
// worker deterministically), and observations merge in set order so the
// output is identical at any worker count.
func SharingSweep(cfg Config, mechs []auction.Mechanism, capacity float64) (*SweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &SweepResult{
		Capacity:    capacity,
		Admission:   metrics.NewSeries("maxSharing", "admission rate (%)"),
		Payoff:      metrics.NewSeries("maxSharing", "total user payoff"),
		Profit:      metrics.NewSeries("maxSharing", "profit"),
		Utilization: metrics.NewSeries("maxSharing", "utilization (%)"),
	}

	runSet := func(set int) ([]observation, error) {
		base, err := workload.Generate(cfg.params(set))
		if err != nil {
			return nil, err
		}
		var obs []observation
		for _, degree := range cfg.Degrees {
			pool, err := base.Instance(degree)
			if err != nil {
				return nil, err
			}
			x := float64(degree)
			for _, m := range mechs {
				out := m.Run(pool, capacity)
				if err := out.Validate(); err != nil {
					return nil, fmt.Errorf("set %d degree %d: %w", set, degree, err)
				}
				obs = append(obs, observation{
					mech:        m.Name(),
					x:           x,
					admission:   100 * out.AdmissionRate(),
					payoff:      out.TotalPayoff(),
					profit:      out.Profit(),
					utilization: 100 * out.Utilization(),
				})
			}
		}
		return obs, nil
	}

	perSet := make([][]observation, cfg.Sets)
	errs := make([]error, cfg.Sets)
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Sets {
		workers = cfg.Sets
	}
	if workers == 1 {
		for set := 0; set < cfg.Sets; set++ {
			perSet[set], errs[set] = runSet(set)
		}
	} else {
		sets := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for set := range sets {
					perSet[set], errs[set] = runSet(set)
				}
			}()
		}
		for set := 0; set < cfg.Sets; set++ {
			sets <- set
		}
		close(sets)
		wg.Wait()
	}
	for set := 0; set < cfg.Sets; set++ {
		if errs[set] != nil {
			return nil, errs[set]
		}
		for _, o := range perSet[set] {
			res.Admission.Observe(o.mech, o.x, o.admission)
			res.Payoff.Observe(o.mech, o.x, o.payoff)
			res.Profit.Observe(o.mech, o.x, o.profit)
			res.Utilization.Observe(o.mech, o.x, o.utilization)
		}
	}
	return res, nil
}

// ManipulationResult is the Figure 5 data: profit of the strategyproof
// mechanisms against CAR run truthfully and under the two lying workloads.
type ManipulationResult struct {
	Profit *metrics.Series
}

// ManipulationSweep reproduces Figure 5 at the given capacity: CAF, CAT and
// Two-price on truthful bids versus CAR on truthful, moderately-lying
// (CAR-ML) and aggressively-lying (CAR-AL) workloads.
func ManipulationSweep(cfg Config, capacity float64, twoPriceSeed int64) (*ManipulationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	moderate := workload.ModerateLying()
	aggressive := workload.AggressiveLying()
	honest := []auction.Mechanism{
		auction.NewCAF(),
		auction.NewCAT(),
		auction.NewTwoPrice(twoPriceSeed),
	}
	car := auction.NewCAR()

	profit := metrics.NewSeries("maxSharing", "profit")
	for set := 0; set < cfg.Sets; set++ {
		base, err := workload.Generate(cfg.params(set))
		if err != nil {
			return nil, err
		}
		for _, degree := range cfg.Degrees {
			pool, err := base.Instance(degree)
			if err != nil {
				return nil, err
			}
			x := float64(degree)
			for _, m := range honest {
				profit.Observe(m.Name(), x, m.Run(pool, capacity).Profit())
			}
			lieSeed := cfg.BaseSeed + int64(set)*1000 + int64(degree)
			profit.Observe("CAR", x, car.Run(pool, capacity).Profit())
			profit.Observe("CAR-ML", x, car.Run(moderate.Apply(pool, lieSeed), capacity).Profit())
			profit.Observe("CAR-AL", x, car.Run(aggressive.Apply(pool, lieSeed), capacity).Profit())
		}
	}
	return &ManipulationResult{Profit: profit}, nil
}

// RuntimeRow is one mechanism's Table IV measurement.
type RuntimeRow struct {
	Mechanism string
	// Millis is the mean wall-clock milliseconds per auction run.
	Millis float64
	Runs   int
}

// RuntimeTable reproduces Table IV: mean runtime of each mechanism over
// cfg.Sets workloads at the given sharing degree and capacity. The
// mechanism list includes the Random and GV baselines, matching the paper's
// row set.
func RuntimeTable(cfg Config, capacity float64, degree int, seed int64) ([]RuntimeRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mechs := []auction.Mechanism{
		auction.NewRandom(seed),
		auction.NewGV(),
		auction.NewTwoPrice(seed),
		auction.NewCAF(),
		auction.NewCAFPlus(),
		auction.NewCAT(),
		auction.NewCATPlus(),
	}
	rows := make([]RuntimeRow, len(mechs))
	for i, m := range mechs {
		rows[i].Mechanism = m.Name()
	}
	for set := 0; set < cfg.Sets; set++ {
		base, err := workload.Generate(cfg.params(set))
		if err != nil {
			return nil, err
		}
		pool, err := base.Instance(degree)
		if err != nil {
			return nil, err
		}
		for i, m := range mechs {
			start := time.Now()
			m.Run(pool, capacity)
			rows[i].Millis += float64(time.Since(start).Microseconds()) / 1000
			rows[i].Runs++
		}
	}
	for i := range rows {
		if rows[i].Runs > 0 {
			rows[i].Millis /= float64(rows[i].Runs)
		}
	}
	return rows, nil
}

// PropertyRow is one mechanism's Table I/V verification outcome.
type PropertyRow struct {
	Mechanism string
	// Strategyproof reports that the deviation search found no profitable
	// bid lie on any probe instance (for CAR it reports false with a
	// counterexample).
	Strategyproof bool
	// SybilImmune reports that the attack search found no profitable sybil
	// attack (true only for CAT, per Theorem 19).
	SybilImmune bool
	// ProfitGuarantee is the paper's analytic column (Two-price only).
	ProfitGuarantee bool
	// Witness holds a found counterexample, if any.
	Witness string
}

// PropertyMatrix verifies Table I empirically: it probes each mechanism
// with bid-deviation and sybil-attack searches over randomized instances
// and reports which properties survive. probes controls how many random
// instances are searched.
func PropertyMatrix(probes int, seed int64) ([]PropertyRow, error) {
	type entry struct {
		mech      auction.Mechanism
		guarantee bool
	}
	entries := []entry{
		{auction.NewCAR(), false},
		{auction.NewCAF(), false},
		{auction.NewCAFPlus(), false},
		{auction.NewCAT(), false},
		{auction.NewCATPlus(), false},
		{auction.NewGV(), false},
		{auction.NewTwoPrice(seed), true},
	}
	rows := make([]PropertyRow, 0, len(entries))
	for _, e := range entries {
		row := PropertyRow{Mechanism: e.mech.Name(), Strategyproof: true, SybilImmune: true, ProfitGuarantee: e.guarantee}
		for probe := 0; probe < probes; probe++ {
			pool, capacity := probeInstance(seed + int64(probe))
			if _, isRandomized := e.mech.(*auction.TwoPrice); !isRandomized {
				for i := 0; i < pool.NumQueries(); i++ {
					if dev, found := gametheory.FindBidDeviation(e.mech, pool, capacity, query.QueryID(i)); found {
						row.Strategyproof = false
						row.Witness = dev.String()
						break
					}
				}
			}
			if _, isRandomized := e.mech.(*auction.TwoPrice); !isRandomized {
				for i := 0; i < pool.NumQueries(); i++ {
					attack, err := gametheory.SearchSybilAttack(e.mech, pool, capacity, query.QueryID(i))
					if err != nil {
						return nil, err
					}
					if attack != nil {
						row.SybilImmune = false
						if row.Witness == "" {
							row.Witness = fmt.Sprintf("sybil attack by user %d", attack.Attacker)
						}
						break
					}
				}
			}
		}
		// The Table II instance specifically defeats CAT+.
		if attack, capacity := gametheory.TableII(1e-3); attack.Gain(e.mech, capacity) > 0 {
			row.SybilImmune = false
			if row.Witness == "" {
				row.Witness = "Table II attack"
			}
		}
		// Two-price falls to the Section V-C construction under the paper's
		// coin-flip variant (the generic search cannot see expectations).
		if _, ok := e.mech.(*auction.TwoPrice); ok {
			variant := auction.NewTwoPrice(seed)
			variant.IndependentFlips = true
			variant.FreeWhenEmptySample = true
			attack, capacity := gametheory.TwoPriceSectionVC(0.01)
			if attack.ExpectedGain(variant, capacity, 2000, seed) > 0 {
				row.SybilImmune = false
				if row.Witness == "" {
					row.Witness = "Section V-C expectation attack"
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// EfficiencyRow reports one mechanism's social-welfare efficiency against
// the exhaustive optimum OPT_W over small probe instances — an extension
// experiment quantifying the paper's Section III hardness discussion: how
// much welfare do the truthful greedy mechanisms leave on the table?
type EfficiencyRow struct {
	Mechanism string
	// Mean and Min are welfare ratios mech/OPT_W across the probes.
	Mean float64
	Min  float64
}

// EfficiencyTable measures welfare efficiency over probes random instances
// (small enough for the exhaustive benchmark).
func EfficiencyTable(probes int, seed int64) ([]EfficiencyRow, error) {
	if probes < 1 {
		return nil, fmt.Errorf("experiments: probes must be >= 1, got %d", probes)
	}
	mechs := []auction.Mechanism{
		auction.NewCAR(),
		auction.NewCAF(),
		auction.NewCAFPlus(),
		auction.NewCAT(),
		auction.NewCATPlus(),
		auction.NewGV(),
		auction.NewTwoPrice(seed),
	}
	opt := auction.NewOptWelfare(0)
	rows := make([]EfficiencyRow, len(mechs))
	for i, m := range mechs {
		rows[i] = EfficiencyRow{Mechanism: m.Name(), Min: 1}
	}
	counted := 0
	for probe := 0; probe < probes; probe++ {
		pool, capacity := probeInstance(seed + int64(probe))
		optW := auction.Welfare(opt.Run(pool, capacity))
		if optW <= 0 {
			continue
		}
		counted++
		for i, m := range mechs {
			ratio := auction.Welfare(m.Run(pool, capacity)) / optW
			rows[i].Mean += ratio
			if ratio < rows[i].Min {
				rows[i].Min = ratio
			}
		}
	}
	if counted == 0 {
		return nil, fmt.Errorf("experiments: no probe had positive optimal welfare")
	}
	for i := range rows {
		rows[i].Mean /= float64(counted)
	}
	return rows, nil
}

// probeInstance builds a small random instance with heavy sharing for the
// property searches.
func probeInstance(seed int64) (*query.Pool, float64) {
	p := workload.PaperParams(seed)
	p.NumQueries = 12
	p.MaxSharing = 4
	p.MeanOpsPerQuery = 2.5
	base := workload.MustGenerate(p)
	pool := base.MustInstance(4)
	// Capacity around half the total demand keeps admission competitive.
	total := 0.0
	for i := 0; i < pool.NumQueries(); i++ {
		total += pool.TotalLoad(query.QueryID(i))
	}
	return pool, total / 2
}
