package experiments

import (
	"testing"
)

// tinyConfig keeps test sweeps fast while preserving the workload shape.
func tinyConfig() Config {
	return Config{
		Sets:       3,
		NumQueries: 150,
		Degrees:    []int{1, 4, 10, 16},
		MaxSharing: 16,
		BaseSeed:   1,
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Sets = 0 },
		func(c *Config) { c.NumQueries = 0 },
		func(c *Config) { c.Degrees = nil },
		func(c *Config) { c.Degrees = []int{0} },
		func(c *Config) { c.Degrees = []int{c.MaxSharing + 1} },
	}
	for i, mutate := range cases {
		cfg := tinyConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Errorf("paper config invalid: %v", err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Errorf("quick config invalid: %v", err)
	}
}

func TestScaleCapacity(t *testing.T) {
	cfg := tinyConfig()
	if got := cfg.ScaleCapacity(15000); got != 15000*150.0/2000 {
		t.Errorf("ScaleCapacity = %v", got)
	}
}

// TestSharingSweepShape verifies the paper's qualitative Figure 4 claims on
// a small sweep: admission rates rise with sharing for the density
// mechanisms and Two-price admits the smallest share; density mechanisms
// beat Two-price on profit at degree 1 (low sharing) under the binding
// 5000-equivalent capacity; total user payoff of the density mechanisms
// exceeds Two-price's.
func TestSharingSweepShape(t *testing.T) {
	cfg := tinyConfig()
	res, err := SharingSweep(cfg, Mechanisms(7), cfg.ScaleCapacity(5000))
	if err != nil {
		t.Fatal(err)
	}
	lines := res.Admission.Lines()
	if len(lines) != 5 {
		t.Fatalf("lines = %v, want the five mechanisms", lines)
	}

	first, last := 1.0, 16.0
	for _, mech := range []string{"CAF", "CAF+", "CAT", "CAT+"} {
		if res.Admission.Mean(mech, last) <= res.Admission.Mean(mech, first) {
			t.Errorf("%s admission does not rise with sharing: %.1f%% -> %.1f%%",
				mech, res.Admission.Mean(mech, first), res.Admission.Mean(mech, last))
		}
		// Figure 4(a): Two-price admits less than the density mechanisms.
		if res.Admission.Mean("Two-price", last) >= res.Admission.Mean(mech, last) {
			t.Errorf("Two-price admission %.1f%% not below %s %.1f%% at degree %v",
				res.Admission.Mean("Two-price", last), mech, res.Admission.Mean(mech, last), last)
		}
		// Figure 4(b): density payoff beats Two-price.
		if res.Payoff.Mean(mech, last) <= res.Payoff.Mean("Two-price", last) {
			t.Errorf("%s payoff %.1f not above Two-price %.1f at degree %v",
				mech, res.Payoff.Mean(mech, last), res.Payoff.Mean("Two-price", last), last)
		}
	}
	// Figure 4(c): at low sharing under binding capacity the density
	// mechanisms out-profit Two-price.
	for _, mech := range []string{"CAF", "CAT"} {
		if res.Profit.Mean(mech, first) <= res.Profit.Mean("Two-price", first) {
			t.Errorf("%s profit %.1f not above Two-price %.1f at degree 1",
				mech, res.Profit.Mean(mech, first), res.Profit.Mean("Two-price", first))
		}
	}
	// Section VI-B: density utilization is (weakly) above Two-price's while
	// capacity binds.
	if res.Utilization.Mean("CAT", first) < res.Utilization.Mean("Two-price", first) {
		t.Errorf("CAT utilization %.1f%% below Two-price %.1f%% at degree 1",
			res.Utilization.Mean("CAT", first), res.Utilization.Mean("Two-price", first))
	}
}

// TestParallelSweepDeterministic: any worker count yields identical series.
func TestParallelSweepDeterministic(t *testing.T) {
	serial := tinyConfig()
	parallel := tinyConfig()
	parallel.Workers = 4
	a, err := SharingSweep(serial, Mechanisms(7), serial.ScaleCapacity(5000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharingSweep(parallel, Mechanisms(7), parallel.ScaleCapacity(5000))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range a.Profit.Lines() {
		av, bv := a.Profit.Values(line), b.Profit.Values(line)
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("%s profit differs at point %d: %v vs %v", line, i, av[i], bv[i])
			}
		}
	}
}

// TestCrossoverShiftsLeft reproduces the Figure 4(c)-(f) narrative: the
// sharing degree at which Two-price first out-profits CAT is lower at a
// larger capacity.
func TestCrossoverShiftsLeft(t *testing.T) {
	cfg := tinyConfig()
	crossover := func(capacity float64) float64 {
		res, err := SharingSweep(cfg, Mechanisms(7), capacity)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range res.Profit.Xs() {
			if res.Profit.Mean("Two-price", x) > res.Profit.Mean("CAT", x) {
				return x
			}
		}
		return 1e9 // never crosses in range
	}
	low := crossover(cfg.ScaleCapacity(5000))
	high := crossover(cfg.ScaleCapacity(20000))
	if high > low {
		t.Errorf("crossover at capacity 20000-eq (degree %v) should not be right of 5000-eq (degree %v)", high, low)
	}
	if high > 4 {
		t.Errorf("crossover at 20000-equivalent = degree %v, want ≤ 4 (capacity near total demand)", high)
	}
}

// TestManipulationSweep reproduces Figure 5's claim: lying strictly reduces
// CAR's profit, aggressively more than moderately, while the strategyproof
// mechanisms' profit is untouched by the lying models (they run the
// truthful workload by definition of strategyproofness).
func TestManipulationSweep(t *testing.T) {
	// Liars only exist where fair-share/total ratios drop below the lying
	// thresholds, i.e. at the higher sharing degrees; sweep those, at a
	// binding capacity, with enough sets to average out unit-price jumps.
	cfg := Config{
		Sets:       10,
		NumQueries: 300,
		Degrees:    []int{8, 12, 16, 20},
		MaxSharing: 20,
		BaseSeed:   1,
	}
	res, err := ManipulationSweep(cfg, cfg.ScaleCapacity(5000), 7)
	if err != nil {
		t.Fatal(err)
	}
	var honest, moderate, aggressive float64
	for _, x := range res.Profit.Xs() {
		honest += res.Profit.Mean("CAR", x)
		moderate += res.Profit.Mean("CAR-ML", x)
		aggressive += res.Profit.Mean("CAR-AL", x)
	}
	if moderate >= honest {
		t.Errorf("moderate lying did not reduce CAR profit: %.1f >= %.1f", moderate, honest)
	}
	if aggressive >= honest {
		t.Errorf("aggressive lying did not reduce CAR profit: %.1f >= %.1f", aggressive, honest)
	}
	if aggressive >= moderate {
		t.Errorf("aggressive lying (%.1f) should cost more profit than moderate (%.1f)", aggressive, moderate)
	}
	for _, line := range []string{"CAF", "CAT", "Two-price"} {
		if res.Profit.Values(line) == nil {
			t.Errorf("missing strategyproof line %s", line)
		}
	}
}

// TestRuntimeTable reproduces Table IV's ordering: the movement-window
// mechanisms (CAF+, CAT+) are at least an order of magnitude slower than
// their prefix counterparts, and the simple baselines are fastest.
func TestRuntimeTable(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sets = 2
	cfg.NumQueries = 400
	rows, err := RuntimeTable(cfg, cfg.ScaleCapacity(5000), 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	ms := map[string]float64{}
	for _, r := range rows {
		if r.Runs != 2 {
			t.Errorf("%s runs = %d, want 2", r.Mechanism, r.Runs)
		}
		ms[r.Mechanism] = r.Millis
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 (Table IV's mechanisms)", len(rows))
	}
	if ms["CAF+"] < 5*ms["CAF"] {
		t.Errorf("CAF+ (%.3fms) should be ≫ CAF (%.3fms)", ms["CAF+"], ms["CAF"])
	}
	if ms["CAT+"] < 5*ms["CAT"] {
		t.Errorf("CAT+ (%.3fms) should be ≫ CAT (%.3fms)", ms["CAT+"], ms["CAT"])
	}
	if ms["Random"] > ms["CAF+"] {
		t.Errorf("Random (%.3fms) should be far below CAF+ (%.3fms)", ms["Random"], ms["CAF+"])
	}
}

// TestEfficiencyTable: every mechanism's welfare ratio lies in (0, 1], and
// the truthful greedy mechanisms stay near-efficient while Two-price (which
// ignores loads entirely) trails — quantifying what the profit guarantee
// costs in welfare.
func TestEfficiencyTable(t *testing.T) {
	rows, err := EfficiencyTable(25, 3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EfficiencyRow{}
	for _, r := range rows {
		if r.Mean <= 0 || r.Mean > 1+1e-9 || r.Min < 0 || r.Min > 1+1e-9 {
			t.Errorf("%s: efficiency out of range: %+v", r.Mechanism, r)
		}
		byName[r.Mechanism] = r
	}
	if byName["CAT"].Mean < 0.8 {
		t.Errorf("CAT mean efficiency %.3f, want ≥ 0.8", byName["CAT"].Mean)
	}
	if byName["Two-price"].Mean >= byName["CAT"].Mean {
		t.Errorf("Two-price efficiency %.3f should trail CAT %.3f",
			byName["Two-price"].Mean, byName["CAT"].Mean)
	}
	if _, err := EfficiencyTable(0, 1); err == nil {
		t.Error("want error for zero probes")
	}
}

// TestPropertyMatrix reproduces Table I: CAR is the only
// non-bid-strategyproof mechanism; CAT (and GV, which Table I omits) are
// the only sybil-immune ones; Two-price carries the profit guarantee.
func TestPropertyMatrix(t *testing.T) {
	rows, err := PropertyMatrix(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]PropertyRow{}
	for _, r := range rows {
		got[r.Mechanism] = r
	}
	if got["CAR"].Strategyproof {
		t.Error("CAR must not be strategyproof")
	}
	for _, name := range []string{"CAF", "CAF+", "CAT", "CAT+", "GV", "Two-price"} {
		if !got[name].Strategyproof {
			t.Errorf("%s must be strategyproof (witness: %s)", name, got[name].Witness)
		}
	}
	for _, name := range []string{"CAF", "CAF+", "CAT+", "Two-price"} {
		if got[name].SybilImmune {
			t.Errorf("%s must be sybil-vulnerable", name)
		}
	}
	if !got["CAT"].SybilImmune {
		t.Errorf("CAT must be sybil-immune (witness: %s)", got["CAT"].Witness)
	}
	if !got["Two-price"].ProfitGuarantee || got["CAT"].ProfitGuarantee {
		t.Error("profit guarantee column wrong")
	}
}
