package sched

import (
	"fmt"

	"repro/internal/auction"
	"repro/internal/query"
)

// FromOutcome builds a simulator loaded with exactly the operators
// provisioned by an auction outcome: each operator of the union of the
// winners' queries appears once, at its pool load — shared processing at the
// execution layer.
func FromOutcome(out *auction.Outcome) (*Simulator, error) {
	sim, err := New(out.Capacity)
	if err != nil {
		return nil, err
	}
	pool := out.Pool()
	seen := make(map[query.OperatorID]bool)
	for _, w := range out.Winners {
		for _, opID := range pool.Query(w).Operators {
			if seen[opID] {
				continue
			}
			seen[opID] = true
			op := pool.Operator(opID)
			if err := sim.Add(Operator{
				Name: fmt.Sprintf("op%d", opID),
				Load: op.Load,
			}); err != nil {
				return nil, err
			}
		}
	}
	return sim, nil
}

// ValidateAdmission runs the outcome's operator set for the given ticks and
// confirms the admitted load is executable: utilization matches the
// offered-load fraction and the backlog stays bounded. It returns the report
// and an error when the outcome is not schedulable — which a correct
// mechanism can never produce.
func ValidateAdmission(out *auction.Outcome, ticks int, policy Policy) (*Report, error) {
	sim, err := FromOutcome(out)
	if err != nil {
		return nil, err
	}
	report, err := sim.Run(ticks, policy)
	if err != nil {
		return nil, err
	}
	if !report.Stable {
		return report, fmt.Errorf("sched: admitted set of %s is not schedulable: backlog %.2f after %d ticks",
			out.Mechanism, report.FinalBacklog, ticks)
	}
	return report, nil
}
