// Package sched is the execution-level substrate behind the paper's
// capacity model (Section II): "the system capacity is the amount of work
// that can be executed in a time unit". It simulates a subscription period
// as discrete-time queueing — each admitted operator receives work at its
// offered load per tick, the server executes up to capacity work units per
// tick under a pluggable scheduling policy — and reports backlog, latency
// and stability.
//
// This closes the loop on admission control: a winner set whose aggregate
// load respects capacity keeps every queue bounded, while over-admission
// grows backlog without bound. The paper's Aurora citation assumes exactly
// this operator-scheduling layer.
package sched

import (
	"fmt"
	"math"
	"sort"
)

// Operator is one scheduled work source.
type Operator struct {
	// Name labels the operator in reports.
	Name string
	// Load is the work arriving per tick (the paper's c_j, in the same
	// units as capacity).
	Load float64
}

// Policy decides how to split the server's per-tick capacity across
// operator queues. Implementations receive the current queue lengths
// (pending work per operator, including this tick's arrivals) and return
// the work to execute per operator; the simulator clamps allocations to
// both the queue and the capacity.
type Policy interface {
	// Name labels the policy.
	Name() string
	// Allocate returns per-operator work grants for one tick.
	Allocate(capacity float64, queues []float64) []float64
}

// RoundRobin grants equal shares, re-distributing unused share to
// still-backlogged operators (processor sharing).
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "round-robin" }

// Allocate implements Policy.
func (RoundRobin) Allocate(capacity float64, queues []float64) []float64 {
	grants := make([]float64, len(queues))
	remainingQ := make([]int, 0, len(queues))
	for i, q := range queues {
		if q > 0 {
			remainingQ = append(remainingQ, i)
		}
	}
	left := capacity
	// Repeatedly split the leftover evenly among backlogged operators;
	// operators that drain return their unused share to the pool.
	for len(remainingQ) > 0 && left > 1e-12 {
		share := left / float64(len(remainingQ))
		next := remainingQ[:0]
		for _, i := range remainingQ {
			need := queues[i] - grants[i]
			take := math.Min(share, need)
			grants[i] += take
			left -= take
			if grants[i] < queues[i]-1e-12 {
				next = append(next, i)
			}
		}
		if len(next) == len(remainingQ) {
			break // everyone saturated their share; left is ~0
		}
		remainingQ = next
	}
	return grants
}

// Proportional grants capacity proportionally to queue lengths (weighted
// processor sharing) — heavy queues drain faster, light ones still progress.
type Proportional struct{}

// Name implements Policy.
func (Proportional) Name() string { return "proportional" }

// Allocate implements Policy.
func (Proportional) Allocate(capacity float64, queues []float64) []float64 {
	grants := make([]float64, len(queues))
	total := 0.0
	for _, q := range queues {
		total += q
	}
	if total <= 0 {
		return grants
	}
	for i, q := range queues {
		grants[i] = math.Min(q, capacity*q/total)
	}
	return grants
}

// LongestQueueFirst serves queues in decreasing length until capacity is
// exhausted — the greedy drain that minimizes the maximum backlog.
type LongestQueueFirst struct{}

// Name implements Policy.
func (LongestQueueFirst) Name() string { return "longest-queue-first" }

// Allocate implements Policy.
func (LongestQueueFirst) Allocate(capacity float64, queues []float64) []float64 {
	grants := make([]float64, len(queues))
	order := make([]int, len(queues))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return queues[order[a]] > queues[order[b]] })
	left := capacity
	for _, i := range order {
		if left <= 0 {
			break
		}
		take := math.Min(queues[i], left)
		grants[i] = take
		left -= take
	}
	return grants
}

// Report summarizes one simulated period.
type Report struct {
	Policy string
	Ticks  int
	// Utilization is executed work over capacity × ticks.
	Utilization float64
	// MaxBacklog is the largest queue observed (work units).
	MaxBacklog float64
	// FinalBacklog is total queued work at the end.
	FinalBacklog float64
	// MeanLatency approximates per-unit waiting time in ticks (time-average
	// total backlog divided by throughput per tick, Little's law).
	MeanLatency float64
	// Stable reports whether total backlog stopped growing in the second
	// half of the run.
	Stable bool
	// PerOperator holds each operator's final queue length.
	PerOperator []float64
	// PerOperatorDelay approximates each operator's mean queueing delay in
	// ticks (time-averaged backlog over throughput, Little's law; +Inf for
	// an operator that received work but executed none).
	PerOperatorDelay []float64
}

// Simulator runs discrete-time execution of a fixed operator set.
type Simulator struct {
	capacity float64
	ops      []Operator
}

// New returns a simulator with the given per-tick capacity.
func New(capacity float64) (*Simulator, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sched: capacity must be positive, got %g", capacity)
	}
	return &Simulator{capacity: capacity}, nil
}

// Add registers an operator. Shared operators must be added once — the
// admission layer already deduplicates them.
func (s *Simulator) Add(op Operator) error {
	if op.Load < 0 {
		return fmt.Errorf("sched: operator %q has negative load", op.Name)
	}
	s.ops = append(s.ops, op)
	return nil
}

// OfferedLoad returns the total work arriving per tick.
func (s *Simulator) OfferedLoad() float64 {
	total := 0.0
	for _, op := range s.ops {
		total += op.Load
	}
	return total
}

// Run simulates the given number of ticks under the policy.
func (s *Simulator) Run(ticks int, policy Policy) (*Report, error) {
	if ticks <= 0 {
		return nil, fmt.Errorf("sched: ticks must be positive, got %d", ticks)
	}
	if policy == nil {
		return nil, fmt.Errorf("sched: nil policy")
	}
	queues := make([]float64, len(s.ops))
	perOpIntegral := make([]float64, len(s.ops))
	perOpExecuted := make([]float64, len(s.ops))
	var executed, backlogIntegral, maxBacklog float64
	halfTotal := 0.0
	for t := 0; t < ticks; t++ {
		for i, op := range s.ops {
			queues[i] += op.Load
		}
		grants := policy.Allocate(s.capacity, queues)
		granted := 0.0
		for i, g := range grants {
			if g < 0 {
				return nil, fmt.Errorf("sched: policy %s granted negative work", policy.Name())
			}
			g = math.Min(g, queues[i])
			queues[i] -= g
			perOpExecuted[i] += g
			granted += g
		}
		if granted > s.capacity+1e-6 {
			return nil, fmt.Errorf("sched: policy %s granted %.6f above capacity %.6f", policy.Name(), granted, s.capacity)
		}
		executed += granted
		total := 0.0
		for i, q := range queues {
			total += q
			perOpIntegral[i] += q
		}
		backlogIntegral += total
		if total > maxBacklog {
			maxBacklog = total
		}
		if t == ticks/2 {
			halfTotal = total
		}
	}
	finalTotal := 0.0
	for _, q := range queues {
		finalTotal += q
	}
	throughput := executed / float64(ticks)
	meanLatency := 0.0
	if throughput > 0 {
		meanLatency = (backlogIntegral / float64(ticks)) / throughput
	}
	perOpDelay := make([]float64, len(s.ops))
	for i := range perOpDelay {
		switch {
		case perOpExecuted[i] > 0:
			perOpDelay[i] = (perOpIntegral[i] / float64(ticks)) / (perOpExecuted[i] / float64(ticks))
		case s.ops[i].Load > 0:
			perOpDelay[i] = math.Inf(1)
		}
	}
	return &Report{
		Policy:       policy.Name(),
		Ticks:        ticks,
		Utilization:  executed / (s.capacity * float64(ticks)),
		MaxBacklog:   maxBacklog,
		FinalBacklog: finalTotal,
		MeanLatency:  meanLatency,
		// Stable if the backlog did not keep growing through the second
		// half (small epsilon absorbs the fractional-tick residue).
		Stable:           finalTotal <= halfTotal+s.capacity,
		PerOperator:      append([]float64(nil), queues...),
		PerOperatorDelay: perOpDelay,
	}, nil
}
