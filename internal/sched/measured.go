package sched

import (
	"fmt"

	"repro/internal/engine"
)

// FromMeasured builds a simulator loaded with the executor's measured
// per-operator loads instead of the auction pool's declared estimates —
// the second half of the paper's "load can be reasonably approximated by
// the system": once a period has run, the schedulability check can use
// what the operators actually cost.
func FromMeasured(capacity float64, loads []engine.NodeLoad) (*Simulator, error) {
	sim, err := New(capacity)
	if err != nil {
		return nil, err
	}
	for _, nl := range loads {
		if err := sim.Add(Operator{Name: nl.Name, Load: nl.Load}); err != nil {
			return nil, err
		}
	}
	return sim, nil
}

// ValidateMeasured runs the measured operator set for the given ticks and
// confirms the load the executor actually metered is executable within
// capacity. Unlike ValidateAdmission this can legitimately fail: measured
// loads may exceed the declared estimates a correct mechanism admitted on.
func ValidateMeasured(capacity float64, loads []engine.NodeLoad, ticks int, policy Policy) (*Report, error) {
	sim, err := FromMeasured(capacity, loads)
	if err != nil {
		return nil, err
	}
	report, err := sim.Run(ticks, policy)
	if err != nil {
		return nil, err
	}
	if !report.Stable {
		return report, fmt.Errorf("sched: measured load is not schedulable: backlog %.2f after %d ticks",
			report.FinalBacklog, ticks)
	}
	return report, nil
}
