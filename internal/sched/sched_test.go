package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/auction"
	"repro/internal/query"
	"repro/internal/workload"
)

func policies() []Policy {
	return []Policy{RoundRobin{}, Proportional{}, LongestQueueFirst{}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("want error for zero capacity")
	}
	s, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Operator{Name: "bad", Load: -1}); err == nil {
		t.Error("want error for negative load")
	}
}

func TestRunValidation(t *testing.T) {
	s, _ := New(10)
	if _, err := s.Run(0, RoundRobin{}); err == nil {
		t.Error("want error for zero ticks")
	}
	if _, err := s.Run(10, nil); err == nil {
		t.Error("want error for nil policy")
	}
}

// TestUnderloadedStable: offered load below capacity keeps backlog at zero
// under every policy.
func TestUnderloadedStable(t *testing.T) {
	for _, p := range policies() {
		s, _ := New(10)
		for _, load := range []float64{2, 3, 4} { // Σ = 9 < 10
			if err := s.Add(Operator{Name: "op", Load: load}); err != nil {
				t.Fatal(err)
			}
		}
		report, err := s.Run(500, p)
		if err != nil {
			t.Fatal(err)
		}
		if !report.Stable {
			t.Errorf("%s: underloaded system reported unstable", p.Name())
		}
		if report.FinalBacklog > 1e-6 {
			t.Errorf("%s: backlog %v, want 0", p.Name(), report.FinalBacklog)
		}
		if want := 0.9; math.Abs(report.Utilization-want) > 1e-6 {
			t.Errorf("%s: utilization %v, want %v", p.Name(), report.Utilization, want)
		}
	}
}

// TestOverloadedUnstable: offered load above capacity grows backlog without
// bound — the failure mode admission control exists to prevent.
func TestOverloadedUnstable(t *testing.T) {
	for _, p := range policies() {
		s, _ := New(10)
		for i := 0; i < 4; i++ { // Σ = 16 > 10
			if err := s.Add(Operator{Name: "op", Load: 4}); err != nil {
				t.Fatal(err)
			}
		}
		report, err := s.Run(500, p)
		if err != nil {
			t.Fatal(err)
		}
		if report.Stable {
			t.Errorf("%s: overloaded system reported stable", p.Name())
		}
		// Backlog grows by (16-10) per tick.
		if want := 6.0 * 500; math.Abs(report.FinalBacklog-want) > 1 {
			t.Errorf("%s: backlog %v, want ≈ %v", p.Name(), report.FinalBacklog, want)
		}
		if report.Utilization < 0.999 {
			t.Errorf("%s: overloaded utilization %v, want 1", p.Name(), report.Utilization)
		}
	}
}

// TestCriticallyLoaded: offered load exactly at capacity is the boundary —
// stable with zero steady-state headroom.
func TestCriticallyLoaded(t *testing.T) {
	s, _ := New(10)
	if err := s.Add(Operator{Name: "op", Load: 10}); err != nil {
		t.Fatal(err)
	}
	report, err := s.Run(200, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Stable || report.FinalBacklog > 1e-6 {
		t.Errorf("critical load: stable=%v backlog=%v", report.Stable, report.FinalBacklog)
	}
}

// TestPoliciesConserveCapacity: no policy may grant more than capacity or
// more than a queue holds (the simulator enforces it; the property test
// drives diverse loads through).
func TestPoliciesConserveCapacity(t *testing.T) {
	f := func(loads []uint8) bool {
		if len(loads) == 0 {
			return true
		}
		if len(loads) > 12 {
			loads = loads[:12]
		}
		for _, p := range policies() {
			s, _ := New(7)
			for _, l := range loads {
				if err := s.Add(Operator{Name: "op", Load: float64(l%10) / 2}); err != nil {
					return false
				}
			}
			if _, err := s.Run(60, p); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLQFBoundsMaxQueue: with skewed loads, longest-queue-first keeps the
// max backlog no worse than proportional sharing.
func TestLQFBoundsMaxQueue(t *testing.T) {
	build := func() *Simulator {
		s, _ := New(10)
		_ = s.Add(Operator{Name: "heavy", Load: 8})
		_ = s.Add(Operator{Name: "light1", Load: 2})
		_ = s.Add(Operator{Name: "light2", Load: 2})
		return s // offered 12 > 10: overloaded, queues grow
	}
	lqf, err := build().Run(300, LongestQueueFirst{})
	if err != nil {
		t.Fatal(err)
	}
	prop, err := build().Run(300, Proportional{})
	if err != nil {
		t.Fatal(err)
	}
	if lqf.MaxBacklog > prop.MaxBacklog+1e-6 {
		t.Errorf("LQF max backlog %v exceeds proportional %v", lqf.MaxBacklog, prop.MaxBacklog)
	}
}

// TestValidateAdmission: every mechanism's winner set is schedulable — the
// end-to-end guarantee that ties the auction's capacity constraint to the
// execution layer.
func TestValidateAdmission(t *testing.T) {
	params := workload.PaperParams(5)
	params.NumQueries = 120
	params.MaxSharing = 10
	pool := workload.MustGenerate(params).MustInstance(6)
	total := 0.0
	for i := 0; i < pool.NumQueries(); i++ {
		total += pool.TotalLoad(query.QueryID(i))
	}
	capacity := total * 0.4
	for _, name := range []string{"CAR", "CAF", "CAF+", "CAT", "CAT+", "GV", "Two-price", "Random"} {
		m, err := auction.ByName(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		out := m.Run(pool, capacity)
		report, err := ValidateAdmission(out, 400, RoundRobin{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if report.FinalBacklog > 1e-6 {
			t.Errorf("%s: admitted set leaves backlog %v", name, report.FinalBacklog)
		}
	}
}

// TestOverAdmissionCaughtByValidate: an infeasible winner set (constructed
// directly, bypassing the mechanisms) is flagged.
func TestOverAdmissionCaughtByValidate(t *testing.T) {
	s, _ := New(5)
	_ = s.Add(Operator{Name: "a", Load: 4})
	_ = s.Add(Operator{Name: "b", Load: 4})
	report, err := s.Run(300, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Stable {
		t.Error("infeasible load must be unstable")
	}
}

// TestMeanLatencyLittle: for a stable system fed in bursts, mean latency is
// finite and positive; for an empty system it is zero.
func TestMeanLatencyLittle(t *testing.T) {
	s, _ := New(10)
	_ = s.Add(Operator{Name: "op", Load: 9.5})
	report, err := s.Run(100, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if report.MeanLatency < 0 {
		t.Errorf("mean latency %v negative", report.MeanLatency)
	}
}
