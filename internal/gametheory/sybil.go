package gametheory

import (
	"fmt"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/query"
)

// SybilAttack is a constructed attack: the attacker keeps her true query but
// additionally submits fake queries under fresh identities. AttackedPool
// contains the original queries followed by the fakes, all fakes carrying
// Value 0 and the attacker's User so Outcome.UserPayoff charges her for any
// fake that wins (the paper's accounting in Section V).
type SybilAttack struct {
	// Attacker is the user perpetrating the attack.
	Attacker int
	// Original is the honest pool.
	Original *query.Pool
	// Attacked is the pool including the fake queries.
	Attacked *query.Pool
	// Fakes lists the fake queries' IDs in Attacked.
	Fakes []query.QueryID
}

// Gain runs the mechanism on both pools and returns the attacker's payoff
// improvement (positive means the attack succeeds).
func (a *SybilAttack) Gain(m auction.Mechanism, capacity float64) float64 {
	before := m.Run(a.Original, capacity).UserPayoff(a.Attacker)
	after := m.Run(a.Attacked, capacity).UserPayoff(a.Attacker)
	return after - before
}

// FairShareAttack builds the paper's universal attack against CAF and CAF+
// (Theorem 15): the attacker submits numFakes fake queries, each consisting
// exactly of her own query's operators, with negligible bids. Every fake
// inflates the sharing degree of her operators, deflating her static
// fair-share load — boosting her priority and cutting her payment — while
// the fakes' bids are too low to ever be admitted at a positive price.
func FairShareAttack(p *query.Pool, attacker query.QueryID, numFakes int, fakeBid float64) (*SybilAttack, error) {
	if numFakes < 1 {
		return nil, fmt.Errorf("gametheory: need at least one fake, got %d", numFakes)
	}
	if fakeBid <= 0 {
		return nil, fmt.Errorf("gametheory: fake bid must be positive, got %g", fakeBid)
	}
	target := p.Query(attacker)
	b := p.ExtendedBuilder()
	var fakes []query.QueryID
	for i := 0; i < numFakes; i++ {
		// Fake queries have zero value to the attacker: she gains nothing if
		// they run but pays their price.
		id := b.AddQueryValued(fakeBid, 0, target.User, target.Operators...)
		fakes = append(fakes, id)
	}
	attacked, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &SybilAttack{Attacker: target.User, Original: p, Attacked: attacked, Fakes: fakes}, nil
}

// TableII reconstructs the paper's Table II instance, the sybil attack that
// beats CAT+: capacity 1; user 1 bids 100 for load 1; user 2 bids 89 for
// load 0.9. Honestly, user 1 fills the server and user 2 loses. User 2's
// fake "user 3" bids 100ε+ε at load ε: it outranks user 1, making user 1 no
// longer fit, after which user 2 (skip-greedy!) is admitted. User 2 pays 0
// (nobody ranks below her) and covers the fake's 100ε payment, netting
// payoff 89 − 100ε > 0.
//
// It returns the attack and the capacity.
func TableII(epsilon float64) (*SybilAttack, float64) {
	const capacity = 1.0
	b := query.NewBuilder()
	op1 := b.AddOperator(1)
	op2 := b.AddOperator(0.9)
	b.AddQueryValued(100, 100, 1, op1) // user 1
	b.AddQueryValued(89, 89, 2, op2)   // user 2, the attacker
	original := b.MustBuild()

	eb := original.ExtendedBuilder()
	opFake := eb.AddOperator(epsilon)
	fake := eb.AddQueryValued(100*epsilon+epsilon, 0, 2, opFake) // "user 3"
	attacked := eb.MustBuild()

	return &SybilAttack{Attacker: 2, Original: original, Attacked: attacked, Fakes: []query.QueryID{fake}}, capacity
}

// TwoPriceSectionVC builds the paper's Section V-C construction against the
// randomized mechanism: user 1 (valuation 100, load 2) shares H with three
// valuation-10 users whose loads fill capacity 8 exactly; her fake has
// valuation 10+ε and the combined size of the three. Under the
// independent-coin-flip partition with free empty samples, the attack cuts
// her expected payment from 10·(1−1/2³) to (10+ε)/2. It returns the attack
// and the capacity.
func TwoPriceSectionVC(epsilon float64) (*SybilAttack, float64) {
	b := query.NewBuilder()
	o1 := b.AddOperator(2)
	oc1 := b.AddOperator(2)
	oc2 := b.AddOperator(2)
	oc3 := b.AddOperator(2)
	b.AddQueryValued(100, 100, 1, o1)
	b.AddQueryValued(10, 10, 2, oc1)
	b.AddQueryValued(10, 10, 3, oc2)
	b.AddQueryValued(10, 10, 4, oc3)
	original := b.MustBuild()

	eb := original.ExtendedBuilder()
	oFake := eb.AddOperator(6)
	fake := eb.AddQueryValued(10+epsilon, 0, 1, oFake)
	attacked := eb.MustBuild()
	return &SybilAttack{Attacker: 1, Original: original, Attacked: attacked, Fakes: []query.QueryID{fake}}, 8
}

// ExpectedGain evaluates a randomized mechanism's attack gain in expectation
// over runs coin sequences.
func (a *SybilAttack) ExpectedGain(m *auction.TwoPrice, capacity float64, runs int, seed int64) float64 {
	coins := rand.New(rand.NewSource(seed))
	var before, after float64
	for r := 0; r < runs; r++ {
		before += m.RunWith(a.Original, capacity, coins).UserPayoff(a.Attacker)
		after += m.RunWith(a.Attacked, capacity, coins).UserPayoff(a.Attacker)
	}
	return (after - before) / float64(runs)
}

// SharedLowballAttack builds a generic attack template used by the immunity
// search: the attacker adds one fake query over a chosen subset of her
// operators with a chosen bid and value 0.
func SharedLowballAttack(p *query.Pool, attacker query.QueryID, ops []query.OperatorID, bid float64) (*SybilAttack, error) {
	if bid <= 0 {
		return nil, fmt.Errorf("gametheory: fake bid must be positive, got %g", bid)
	}
	target := p.Query(attacker)
	b := p.ExtendedBuilder()
	id := b.AddQueryValued(bid, 0, target.User, ops...)
	attacked, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &SybilAttack{Attacker: target.User, Original: p, Attacked: attacked, Fakes: []query.QueryID{id}}, nil
}

// SearchSybilAttack tries a family of single-fake attacks for the given
// attacker — fakes over her full operator set, each single operator, and a
// fresh private operator, at a ladder of bids — and returns the first attack
// that strictly improves her payoff, or nil. CAT must survive every search
// (it is sybil-strategyproof, Theorem 19); CAF and CAF+ must fall to the
// fair-share attack on essentially every instance.
func SearchSybilAttack(m auction.Mechanism, p *query.Pool, capacity float64, attacker query.QueryID) (*SybilAttack, error) {
	target := p.Query(attacker)
	// Bid ladder: tiny bids (free riders) through bids near the attacker's
	// own, scaled by rough load so priorities land in interesting places.
	bidLadder := []float64{1e-6, 1e-3, 0.1, 1}
	for _, q := range p.Queries() {
		bidLadder = append(bidLadder, q.Bid*0.5, q.Bid*1.001)
	}

	var opChoices [][]query.OperatorID
	opChoices = append(opChoices, target.Operators)
	for _, op := range target.Operators {
		opChoices = append(opChoices, []query.OperatorID{op})
	}

	for _, ops := range opChoices {
		for _, bid := range bidLadder {
			attack, err := SharedLowballAttack(p, attacker, ops, bid)
			if err != nil {
				return nil, err
			}
			if attack.Gain(m, capacity) > 1e-9 {
				return attack, nil
			}
		}
	}
	// Multi-fake fair-share attack.
	for _, n := range []int{1, 3, 10} {
		attack, err := FairShareAttack(p, attacker, n, 1e-6)
		if err != nil {
			return nil, err
		}
		if attack.Gain(m, capacity) > 1e-9 {
			return attack, nil
		}
	}
	return nil, nil
}
