// Package gametheory verifies (and falsifies) the game-theoretic properties
// the paper claims for each mechanism: bid-strategyproofness via the
// monotonicity + critical-payment characterization (Section III), full
// strategyproofness including operator lying, and sybil immunity
// (Section V). It provides a deviation search that finds profitable lies
// where they exist — demonstrating CAR's manipulability and the sybil
// attacks of Theorems 15, 17 and 20 — and exhaustive checkers used by the
// property-based test suite.
package gametheory

import (
	"fmt"
	"sort"

	"repro/internal/auction"
	"repro/internal/query"
)

// Deviation describes a profitable lie found for some user: the alternative
// bid, and the payoffs under truthful and strategic play.
type Deviation struct {
	Query          query.QueryID
	TruthfulBid    float64
	DeviantBid     float64
	TruthfulPayoff float64
	DeviantPayoff  float64
}

// String renders the deviation.
func (d Deviation) String() string {
	return fmt.Sprintf("query %d: bid %.4g instead of %.4g raises payoff %.4g -> %.4g",
		d.Query, d.DeviantBid, d.TruthfulBid, d.TruthfulPayoff, d.DeviantPayoff)
}

// candidateBids enumerates the informative alternative bids for a deviation
// search: every other bid in the pool, points just above and below each, and
// a handful of scale points of the user's own valuation. Payoffs under every
// mechanism in this paper are piecewise-constant between these breakpoints
// (a bid matters only through the priority ordering), so searching them is
// effectively exhaustive for the deterministic mechanisms.
func candidateBids(p *query.Pool, id query.QueryID) []float64 {
	v := p.Value(id)
	set := map[float64]bool{}
	add := func(b float64) {
		if b > 0 {
			set[b] = true
		}
	}
	for _, q := range p.Queries() {
		if q.ID == id {
			continue
		}
		add(q.Bid * 0.999)
		add(q.Bid)
		add(q.Bid * 1.001)
	}
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.1, 1.5, 2, 5} {
		add(v * f)
	}
	out := make([]float64, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Float64s(out)
	return out
}

// FindBidDeviation searches for a bid that strictly improves the payoff of
// query id's user over truthful bidding (bid == value) under mechanism m.
// It returns the best deviation found and whether one exists. For
// strategyproof mechanisms it must return false on every input — the
// property tests rely on this; for CAR it finds the paper's Section IV-A
// manipulation.
func FindBidDeviation(m auction.Mechanism, p *query.Pool, capacity float64, id query.QueryID) (Deviation, bool) {
	truthful := p.WithBid(id, p.Value(id))
	basePayoff := m.Run(truthful, capacity).PayoffOf(id)

	best := Deviation{Query: id, TruthfulBid: p.Value(id), TruthfulPayoff: basePayoff, DeviantPayoff: basePayoff}
	found := false
	for _, bid := range candidateBids(p, id) {
		if bid == p.Value(id) {
			continue
		}
		out := m.Run(truthful.WithBid(id, bid), capacity)
		if payoff := out.PayoffOf(id); payoff > best.DeviantPayoff+1e-9 {
			best.DeviantBid = bid
			best.DeviantPayoff = payoff
			found = true
		}
	}
	return best, found
}

// FindOperatorDeviation searches for a profitable lie about the query's
// operator set: bidding truthfully but declaring extra operators drawn from
// the pool (a user can only add operators she does not need — she cannot
// omit operators her query requires, or the DSMS would not run it). A
// strategyproof mechanism admits no such deviation.
func FindOperatorDeviation(m auction.Mechanism, p *query.Pool, capacity float64, id query.QueryID, extras []query.OperatorID) (Deviation, bool) {
	base := m.Run(p, capacity).PayoffOf(id)
	orig := p.Query(id).Operators
	for _, extra := range extras {
		if containsOp(orig, extra) {
			continue
		}
		declared := append(append([]query.OperatorID(nil), orig...), extra)
		out := m.Run(p.WithOperators(id, declared), capacity)
		if payoff := out.PayoffOf(id); payoff > base+1e-9 {
			return Deviation{
				Query:          id,
				TruthfulBid:    p.Bid(id),
				DeviantBid:     p.Bid(id),
				TruthfulPayoff: base,
				DeviantPayoff:  payoff,
			}, true
		}
	}
	return Deviation{}, false
}

func containsOp(ops []query.OperatorID, op query.OperatorID) bool {
	for _, o := range ops {
		if o == op {
			return true
		}
	}
	return false
}

// CheckMonotone verifies the monotonicity half of the strategyproofness
// characterization: every winner who raises her bid keeps winning. It
// returns an error naming the first violation.
func CheckMonotone(m auction.Mechanism, p *query.Pool, capacity float64, factors []float64) error {
	out := m.Run(p, capacity)
	for _, w := range out.Winners {
		for _, f := range factors {
			if f <= 1 {
				return fmt.Errorf("gametheory: raise factor %g must exceed 1", f)
			}
			raised := m.Run(p.WithBid(w, p.Bid(w)*f), capacity)
			if !raised.IsWinner(w) {
				return fmt.Errorf("gametheory: %s not monotone: winner %d loses after raising bid %.4g x%g",
					m.Name(), w, p.Bid(w), f)
			}
		}
	}
	return nil
}

// CheckCriticalPayment verifies the second half of the characterization:
// each winner's payment is her critical value — bidding above it wins,
// bidding below it loses. Winners with zero payment are only checked on the
// winning side (there is no positive bid below zero).
func CheckCriticalPayment(m auction.Mechanism, p *query.Pool, capacity float64) error {
	out := m.Run(p, capacity)
	const delta = 1e-6
	for _, w := range out.Winners {
		pay := out.Payment(w)
		if above := m.Run(p.WithBid(w, pay*(1+delta)+1e-12), capacity); !above.IsWinner(w) {
			return fmt.Errorf("gametheory: %s: winner %d bidding just above payment %.6g loses",
				m.Name(), w, pay)
		}
		if pay <= 0 {
			continue
		}
		if below := m.Run(p.WithBid(w, pay*(1-delta)), capacity); below.IsWinner(w) {
			return fmt.Errorf("gametheory: %s: winner %d bidding just below payment %.6g still wins",
				m.Name(), w, pay)
		}
	}
	return nil
}
