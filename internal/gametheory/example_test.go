package gametheory_test

import (
	"fmt"

	"repro/internal/auction"
	"repro/internal/gametheory"
	"repro/internal/query"
)

// ExampleTableII reproduces the paper's Table II sybil attack: forging
// "user 3" wins user 2 the auction under CAT+ for a gain of 89 − 100ε,
// while CAT shrugs it off.
func ExampleTableII() {
	attack, capacity := gametheory.TableII(1e-3)
	fmt.Printf("CAT+ gain: %.1f\n", attack.Gain(auction.NewCATPlus(), capacity))
	fmt.Printf("CAT  gain: %.1f\n", attack.Gain(auction.NewCAT(), capacity))
	// Output:
	// CAT+ gain: 88.9
	// CAT  gain: -0.1
}

// ExampleFindBidDeviation shows the harness catching CAR's manipulability
// on the paper's own Example 1: q2 profits from shading her bid below 66 so
// q1 is picked first, shrinking q2's remaining load and payment.
func ExampleFindBidDeviation() {
	pool, capacity := query.Example1()
	dev, found := gametheory.FindBidDeviation(auction.NewCAR(), pool, capacity, 1)
	fmt.Printf("found=%v truthful=%.0f deviant=%.0f\n", found, dev.TruthfulPayoff, dev.DeviantPayoff)
	// Output: found=true truthful=12 deviant=52
}
