package gametheory_test

import (
	"math/rand"
	"testing"

	"repro/internal/auction"
	"repro/internal/gametheory"
	"repro/internal/query"
	"repro/internal/workload"
)

// strategyproofMechanisms are the deterministic mechanisms the paper proves
// strategyproof (Theorems 4, 7, 8, 9 plus GV).
func strategyproofMechanisms() []auction.Mechanism {
	return []auction.Mechanism{
		auction.NewCAF(),
		auction.NewCAFPlus(),
		auction.NewCAT(),
		auction.NewCATPlus(),
		auction.NewGV(),
	}
}

// probePool builds a small, heavily-shared instance.
func probePool(seed int64) (*query.Pool, float64) {
	params := workload.PaperParams(seed)
	params.NumQueries = 10
	params.MaxSharing = 4
	params.MeanOpsPerQuery = 2.5
	base := workload.MustGenerate(params)
	pool := base.MustInstance(4)
	total := 0.0
	for i := 0; i < pool.NumQueries(); i++ {
		total += pool.TotalLoad(query.QueryID(i))
	}
	return pool, total * 0.5
}

// TestMonotonicity: winners keep winning after raising their bids — half of
// the bid-strategyproofness characterization (Section III).
func TestMonotonicity(t *testing.T) {
	factors := []float64{1.001, 1.5, 10}
	for seed := int64(1); seed <= 12; seed++ {
		pool, capacity := probePool(seed)
		for _, m := range strategyproofMechanisms() {
			if err := gametheory.CheckMonotone(m, pool, capacity, factors); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestCriticalPayments: payments equal critical values — the other half of
// the characterization.
func TestCriticalPayments(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		pool, capacity := probePool(seed)
		for _, m := range strategyproofMechanisms() {
			if err := gametheory.CheckCriticalPayment(m, pool, capacity); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestNoBidDeviationForStrategyproof: the deviation search must come up
// empty for every strategyproof mechanism on every probe.
func TestNoBidDeviationForStrategyproof(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		pool, capacity := probePool(seed)
		for _, m := range strategyproofMechanisms() {
			for i := 0; i < pool.NumQueries(); i++ {
				if dev, found := gametheory.FindBidDeviation(m, pool, capacity, query.QueryID(i)); found {
					t.Errorf("seed %d, %s: %s", seed, m.Name(), dev.String())
				}
			}
		}
	}
}

// TestCARBidDeviationExists reproduces Section IV-A: under CAR, a user who
// shares operators with other winners profits from shading her bid so she
// is chosen later, with a smaller remaining load and a smaller payment. On
// Example 1, q2 (truthful payoff 72−60=12) can bid below 66 so q1 goes
// first, dropping her remaining load from 6 to 2 and her payment to 20.
func TestCARBidDeviationExists(t *testing.T) {
	pool, capacity := query.Example1()
	dev, found := gametheory.FindBidDeviation(auction.NewCAR(), pool, capacity, 1)
	if !found {
		t.Fatal("CAR admitted no profitable deviation on Example 1; it must (Section IV-A)")
	}
	if dev.DeviantBid >= dev.TruthfulBid {
		t.Errorf("expected an underbid, got %s", dev.String())
	}
	if dev.DeviantPayoff <= dev.TruthfulPayoff {
		t.Errorf("deviation does not improve payoff: %s", dev.String())
	}
	if dev.TruthfulPayoff != 12 {
		t.Errorf("truthful payoff = %v, want 72 − 60 = 12", dev.TruthfulPayoff)
	}
	if dev.DeviantPayoff < 50 {
		t.Errorf("deviant payoff = %v, want ≥ 52 (payment drops to ≈ 20)", dev.DeviantPayoff)
	}
}

// TestNoOperatorDeviationTotalLoad: declaring extra operators (the only
// operator lie available — omitting needed operators would break the query)
// never helps under the total-load mechanisms and GV: padding only raises
// C_T, never lowers anyone's priority denominator.
func TestNoOperatorDeviationTotalLoad(t *testing.T) {
	mechs := []auction.Mechanism{auction.NewCAT(), auction.NewCATPlus(), auction.NewGV()}
	for seed := int64(1); seed <= 8; seed++ {
		pool, capacity := probePool(seed)
		extras := make([]query.OperatorID, pool.NumOperators())
		for i := range extras {
			extras[i] = query.OperatorID(i)
		}
		for _, m := range mechs {
			for i := 0; i < pool.NumQueries(); i++ {
				if dev, found := gametheory.FindOperatorDeviation(m, pool, capacity, query.QueryID(i), extras); found {
					t.Errorf("seed %d, %s: operator lie helps: %s", seed, m.Name(), dev.String())
				}
			}
		}
	}
}

// TestOperatorPaddingCanBeatFairShare documents a reproduction finding: the
// paper argues (via the Lehmann et al. SMB characterization) that CAF and
// CAF+ are strategyproof against operator lies, but fair-share loads carry
// an externality the SMB framework does not model — declaring an extra
// operator raises its sharing degree and so lowers OTHER queries' fair-share
// loads, reshuffling the priority list. The deviation search finds instances
// where padding strictly improves a CAF+ user's payoff; it is the
// single-identity cousin of the Theorem 15 sybil attack.
func TestOperatorPaddingCanBeatFairShare(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 12 && !found; seed++ {
		pool, capacity := probePool(seed)
		extras := make([]query.OperatorID, pool.NumOperators())
		for i := range extras {
			extras[i] = query.OperatorID(i)
		}
		for i := 0; i < pool.NumQueries() && !found; i++ {
			_, found = gametheory.FindOperatorDeviation(auction.NewCAFPlus(), pool, capacity, query.QueryID(i), extras)
		}
	}
	if !found {
		t.Error("expected at least one operator-padding deviation against CAF+ across probes")
	}
}

// TestTwoPriceBidStrategyproofInExpectation: averaged over coin flips, no
// alternative bid beats truthful bidding by more than noise.
func TestTwoPriceBidStrategyproofInExpectation(t *testing.T) {
	pool, capacity := probePool(3)
	mech := auction.NewTwoPrice(0)
	const runs = 600
	expectedPayoff := func(p *query.Pool, id query.QueryID) float64 {
		coins := rand.New(rand.NewSource(99))
		var sum float64
		for r := 0; r < runs; r++ {
			out := mech.RunWith(p, capacity, coins)
			if out.IsWinner(id) {
				sum += p.Value(id) - out.Payment(id)
			}
		}
		return sum / runs
	}
	for i := 0; i < pool.NumQueries(); i++ {
		id := query.QueryID(i)
		truthful := expectedPayoff(pool, id)
		for _, factor := range []float64{0.5, 0.9, 1.1, 2} {
			deviant := expectedPayoff(pool.WithBid(id, pool.Value(id)*factor), id)
			// Tolerance: sampled prices move by one bid-step between coin
			// sequences; allow small noise but no systematic gain.
			if deviant > truthful+1.5 {
				t.Errorf("query %d bidding ×%.1f: E[payoff] %.3f > truthful %.3f", i, factor, deviant, truthful)
			}
		}
	}
}
