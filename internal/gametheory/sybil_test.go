package gametheory_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/auction"
	"repro/internal/gametheory"
	"repro/internal/query"
)

// TestTableIIBeatsCATPlus reproduces the paper's Table II: the fake "user 3"
// flips the CAT+ outcome, the attacker's real query wins at payment 0, and
// she covers the fake's 100ε bill for a net gain of 89 − 100ε.
func TestTableIIBeatsCATPlus(t *testing.T) {
	const eps = 1e-3
	attack, capacity := gametheory.TableII(eps)
	mech := auction.NewCATPlus()

	honest := mech.Run(attack.Original, capacity)
	if !honest.IsWinner(0) || honest.IsWinner(1) {
		t.Fatalf("honest winners = %v, want only user 1's query", honest.Winners)
	}
	attacked := mech.Run(attack.Attacked, capacity)
	if attacked.IsWinner(0) {
		t.Error("user 1 must be displaced by the fake")
	}
	if !attacked.IsWinner(1) || !attacked.IsWinner(2) {
		t.Fatalf("attacked winners = %v, want q2 and the fake", attacked.Winners)
	}
	if got := attacked.Payment(2); math.Abs(got-100*eps) > 1e-9 {
		t.Errorf("fake's payment = %v, want 100ε = %v (Table II)", got, 100*eps)
	}
	if got := attacked.Payment(1); got != 0 {
		t.Errorf("attacker's own payment = %v, want 0 (nobody ranks below her)", got)
	}
	gain := attack.Gain(mech, capacity)
	if want := 89 - 100*eps; math.Abs(gain-want) > 1e-9 {
		t.Errorf("attack gain = %v, want %v", gain, want)
	}
}

// TestTableIIFailsAgainstCAT: the same instance bounces off CAT (prefix
// stop), which is sybil-strategyproof (Theorem 19) — the fake gets admitted
// but the attacker still loses and now pays the fake's bill.
func TestTableIIFailsAgainstCAT(t *testing.T) {
	attack, capacity := gametheory.TableII(1e-3)
	if gain := attack.Gain(auction.NewCAT(), capacity); gain > 0 {
		t.Errorf("CAT attack gain = %v, want ≤ 0", gain)
	}
}

// TestFairShareAttackBeatsCAFUniversally: Theorem 15 — on Example 1 every
// user can profit from the fair-share attack under CAF and CAF+. We verify
// for the losing user q3 (selection flip) and the winning user q2 (payment
// drop).
func TestFairShareAttackBeatsCAF(t *testing.T) {
	pool, capacity := query.Example1()
	for _, m := range []auction.Mechanism{auction.NewCAF(), auction.NewCAFPlus()} {
		// q3 (loser honestly): fakes sharing D and E collapse her fair-share
		// load from 10 toward 1, lifting her priority above everyone.
		attack, err := gametheory.FairShareAttack(pool, 2, 9, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if gain := attack.Gain(m, capacity); gain <= 0 {
			t.Errorf("%s: q3's fair-share attack gain = %v, want > 0", m.Name(), gain)
		}
	}
	// q2 (winner honestly, pays 40 under CAF): fakes shrink her fair-share
	// load and with it her payment.
	attack, err := gametheory.FairShareAttack(pool, 1, 9, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if gain := attack.Gain(auction.NewCAF(), capacity); gain <= 0 {
		t.Errorf("CAF: q2's fair-share attack gain = %v, want > 0", gain)
	}
}

// TestFairShareAttackDoesNotBeatCAT: total loads are insensitive to fake
// sharing, so the same attacks gain nothing under CAT.
func TestFairShareAttackDoesNotBeatCAT(t *testing.T) {
	pool, capacity := query.Example1()
	for attacker := 0; attacker < 3; attacker++ {
		for _, fakes := range []int{1, 5, 20} {
			attack, err := gametheory.FairShareAttack(pool, query.QueryID(attacker), fakes, 1e-6)
			if err != nil {
				t.Fatal(err)
			}
			if gain := attack.Gain(auction.NewCAT(), capacity); gain > 1e-9 {
				t.Errorf("CAT: attacker q%d with %d fakes gains %v, want ≤ 0", attacker+1, fakes, gain)
			}
		}
	}
}

// TestSearchFindsNoAttackOnCAT: the generic attack search must come up
// empty against CAT on randomized probes (sybil-strategyproofness).
func TestSearchFindsNoAttackOnCAT(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		pool, capacity := probePool(seed)
		for i := 0; i < pool.NumQueries(); i++ {
			attack, err := gametheory.SearchSybilAttack(auction.NewCAT(), pool, capacity, query.QueryID(i))
			if err != nil {
				t.Fatal(err)
			}
			if attack != nil {
				t.Errorf("seed %d: found attack on CAT by query %d", seed, i)
			}
		}
	}
}

// TestSearchFindsAttacksOnFairShare: the search must find attacks against
// CAF on instances with competition (Theorem 15's universality).
func TestSearchFindsAttacksOnFairShare(t *testing.T) {
	pool, capacity := query.Example1()
	found := 0
	for i := 0; i < pool.NumQueries(); i++ {
		attack, err := gametheory.SearchSybilAttack(auction.NewCAF(), pool, capacity, query.QueryID(i))
		if err != nil {
			t.Fatal(err)
		}
		if attack != nil {
			found++
		}
	}
	if found == 0 {
		t.Error("no fair-share attacks found against CAF on Example 1")
	}
}

// TestTwoPriceSybilVulnerable reproduces Section V-C's final construction:
// user 1 (valuation 100) shares H with three valuation-10 users that fill
// capacity exactly. Her fake (valuation 10+ε, size equal to the three
// combined) kicks them out of H, and in expectation her payment drops from
// 10·(1 − 1/2³) to (10+ε)/2 — the attack profits in expectation.
func TestTwoPriceSybilVulnerable(t *testing.T) {
	const eps = 0.01
	b := query.NewBuilder()
	o1 := b.AddOperator(2)
	oc1 := b.AddOperator(2)
	oc2 := b.AddOperator(2)
	oc3 := b.AddOperator(2)
	b.AddQueryValued(100, 100, 1, o1)
	b.AddQueryValued(10, 10, 2, oc1)
	b.AddQueryValued(10, 10, 3, oc2)
	b.AddQueryValued(10, 10, 4, oc3)
	original := b.MustBuild()

	eb := original.ExtendedBuilder()
	oFake := eb.AddOperator(6) // the combined size of the three c-users
	eb.AddQueryValued(10+eps, 0, 1, oFake)
	attacked := eb.MustBuild()

	const capacity = 8
	// The paper's construction uses the independent-coin-flip partition with
	// an empty sample pricing the other half at zero: before the attack user
	// 1 pays c·(1 − 1/2³); after it, (c+ε)/2.
	mech := auction.NewTwoPrice(0)
	mech.IndependentFlips = true
	mech.FreeWhenEmptySample = true
	const runs = 4000
	expPayoff := func(p *query.Pool) float64 {
		coins := rand.New(rand.NewSource(1234))
		var sum float64
		for r := 0; r < runs; r++ {
			sum += mech.RunWith(p, capacity, coins).UserPayoff(1)
		}
		return sum / runs
	}
	honest := expPayoff(original)
	withAttack := expPayoff(attacked)
	if withAttack <= honest {
		t.Errorf("E[payoff] honest %.3f, attacked %.3f: attack should profit in expectation (Theorem 20)",
			honest, withAttack)
	}
	// Quantitatively: honest ≈ 100 − 10·(7/8) = 91.25, attacked ≈ 100 −
	// (10+ε)/2 ≈ 95.0.
	if honest < 90 || honest > 92.5 {
		t.Errorf("honest E[payoff] = %.3f, want ≈ 91.25", honest)
	}
	if withAttack < 93.5 || withAttack > 96.5 {
		t.Errorf("attacked E[payoff] = %.3f, want ≈ 95.0", withAttack)
	}
}
