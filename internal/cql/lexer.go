// Package cql is a small continuous-query language front-end for the DSMS
// center: clients write SELECT/FROM/JOIN/WHERE/WINDOW/GROUP BY text, the
// compiler canonicalizes each physical operator into a key, and identical
// sub-plans from different users therefore share one operator instance —
// the paper's premise that "many of the CQs are similar, but not identical"
// made concrete.
//
// Grammar (case-insensitive keywords):
//
//	query   = SELECT sel FROM ident
//	          [ JOIN ident ON ident [ WINDOW int ] ]
//	          [ WHERE cmp { AND cmp } ]
//	          [ WINDOW int [ SLIDE int ] ] [ GROUP BY ident ]
//	sel     = '*' | ident { ',' ident } | agg '(' ident ')'
//	agg     = COUNT | SUM | AVG | MIN | MAX
//	cmp     = ident op ( number | string )
//	op      = '=' | '!=' | '<' | '<=' | '>' | '>='
package cql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp // comparison operators
	tokComma
	tokLParen
	tokRParen
	tokStar
)

// token is one lexeme with its source position (byte offset) for errors.
type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "JOIN": true, "ON": true, "WHERE": true,
	"AND": true, "WINDOW": true, "SLIDE": true, "GROUP": true, "BY": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// lex splits the input into tokens. It returns an error for unterminated
// strings or unexpected runes.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '\'':
			end := strings.IndexByte(input[i+1:], '\'')
			if end < 0 {
				return nil, fmt.Errorf("cql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : i+1+end], i})
			i += end + 2
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!' || c == '<' || c == '>':
			op := string(c)
			if i+1 < len(input) && input[i+1] == '=' {
				op += "="
				i++
			}
			if op == "!" {
				return nil, fmt.Errorf("cql: stray '!' at offset %d", i)
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case unicode.IsDigit(c) || c == '.' || c == '-':
			start := i
			i++
			for i < len(input) && (unicode.IsDigit(rune(input[i])) || input[i] == '.') {
				i++
			}
			// Scientific notation: 1e6, 2.5E-3, 1e+06.
			if i < len(input) && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < len(input) && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < len(input) && unicode.IsDigit(rune(input[j])) {
					i = j
					for i < len(input) && unicode.IsDigit(rune(input[i])) {
						i++
					}
				}
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{tokKeyword, strings.ToUpper(word), start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		default:
			return nil, fmt.Errorf("cql: unexpected %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}
