package cql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Query is the parsed form of one continuous query.
type Query struct {
	// SelectAll is true for SELECT *.
	SelectAll bool
	// Fields are the projected field names (empty with SelectAll or Agg).
	Fields []string
	// Agg is the aggregate function name ("" if none); AggField its input.
	Agg      string
	AggField string
	// From is the primary source stream.
	From string
	// Join names the joined source ("" if none); JoinOn the equi-join field
	// present in both schemas; JoinWindow the per-side retention (default 8).
	Join       string
	JoinOn     string
	JoinWindow int
	// Where holds the conjunctive predicates, canonically sorted.
	Where []Cmp
	// Window/Slide configure the aggregate window (tuples); GroupBy the
	// grouping field ("" for a single group).
	Window  int
	Slide   int
	GroupBy string
}

// Cmp is one comparison predicate.
type Cmp struct {
	Field string
	Op    string // = != < <= > >=
	// Num / Str hold the literal; IsStr selects which.
	Num   float64
	Str   string
	IsStr bool
}

// Canon renders the predicate canonically. Numbers use plain decimal
// notation (never scientific) so the canonical form always re-parses.
func (c Cmp) Canon() string {
	if c.IsStr {
		return fmt.Sprintf("%s%s'%s'", c.Field, c.Op, c.Str)
	}
	return c.Field + c.Op + strconv.FormatFloat(c.Num, 'f', -1, 64)
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

// Parse parses one query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return q, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokenKind) bool {
	return p.cur().kind == k
}
func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == kw
}
func (p *parser) eatKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.i++
		return true
	}
	return false
}
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("cql: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	if !p.eatKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if !p.at(tokIdent) {
		return "", p.errf("expected identifier, got %q", p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) expectInt() (int, error) {
	if !p.at(tokNumber) {
		return 0, p.errf("expected number, got %q", p.cur().text)
	}
	n, err := strconv.Atoi(p.next().text)
	if err != nil {
		return 0, p.errf("expected integer: %v", err)
	}
	if n <= 0 {
		return 0, p.errf("expected positive integer, got %d", n)
	}
	return n, nil
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{JoinWindow: 8}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.parseSelect(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q.From = from

	if p.eatKeyword("JOIN") {
		if q.Join, err = p.expectIdent(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		if q.JoinOn, err = p.expectIdent(); err != nil {
			return nil, err
		}
		if p.eatKeyword("WINDOW") {
			if q.JoinWindow, err = p.expectInt(); err != nil {
				return nil, err
			}
		}
	}
	if p.eatKeyword("WHERE") {
		for {
			cmp, err := p.parseCmp()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, cmp)
			if !p.eatKeyword("AND") {
				break
			}
		}
		// Canonical order makes textually-reordered conjunctions share.
		sort.Slice(q.Where, func(a, b int) bool { return q.Where[a].Canon() < q.Where[b].Canon() })
	}
	if p.eatKeyword("WINDOW") {
		if q.Window, err = p.expectInt(); err != nil {
			return nil, err
		}
		if p.eatKeyword("SLIDE") {
			if q.Slide, err = p.expectInt(); err != nil {
				return nil, err
			}
		}
	}
	if p.eatKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if q.GroupBy, err = p.expectIdent(); err != nil {
			return nil, err
		}
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseSelect(q *Query) error {
	if p.at(tokStar) {
		p.next()
		q.SelectAll = true
		return nil
	}
	if p.cur().kind == tokKeyword && aggNames[p.cur().text] {
		q.Agg = p.next().text
		if !p.at(tokLParen) {
			return p.errf("expected ( after %s", q.Agg)
		}
		p.next()
		if p.at(tokStar) && q.Agg == "COUNT" {
			p.next()
			q.AggField = "*"
		} else {
			f, err := p.expectIdent()
			if err != nil {
				return err
			}
			q.AggField = f
		}
		if !p.at(tokRParen) {
			return p.errf("expected ) after aggregate field")
		}
		p.next()
		return nil
	}
	for {
		f, err := p.expectIdent()
		if err != nil {
			return err
		}
		q.Fields = append(q.Fields, f)
		if !p.at(tokComma) {
			return nil
		}
		p.next()
	}
}

func (p *parser) parseCmp() (Cmp, error) {
	field, err := p.expectIdent()
	if err != nil {
		return Cmp{}, err
	}
	if !p.at(tokOp) {
		return Cmp{}, p.errf("expected comparison operator, got %q", p.cur().text)
	}
	op := p.next().text
	switch {
	case p.at(tokNumber):
		v, err := strconv.ParseFloat(p.next().text, 64)
		if err != nil {
			return Cmp{}, p.errf("bad number: %v", err)
		}
		return Cmp{Field: field, Op: op, Num: v}, nil
	case p.at(tokString):
		s := p.next().text
		if op != "=" && op != "!=" {
			return Cmp{}, p.errf("operator %s not defined on strings", op)
		}
		return Cmp{Field: field, Op: op, Str: s, IsStr: true}, nil
	default:
		return Cmp{}, p.errf("expected literal, got %q", p.cur().text)
	}
}

// validate enforces cross-clause constraints.
func (q *Query) validate() error {
	if q.Window > 0 && q.Agg == "" {
		return fmt.Errorf("cql: WINDOW requires an aggregate SELECT")
	}
	if q.Slide > 0 && q.Slide > q.Window {
		return fmt.Errorf("cql: SLIDE %d exceeds WINDOW %d", q.Slide, q.Window)
	}
	if q.GroupBy != "" && q.Agg == "" {
		return fmt.Errorf("cql: GROUP BY requires an aggregate SELECT")
	}
	if q.Agg != "" && q.Window == 0 {
		return fmt.Errorf("cql: aggregate SELECT requires a WINDOW clause")
	}
	if q.Agg != "" && q.Join != "" {
		return fmt.Errorf("cql: aggregates over joins are not supported")
	}
	if len(q.Fields) > 0 && q.Join != "" {
		return fmt.Errorf("cql: projections over joins are not supported; use SELECT *")
	}
	return nil
}

// String renders the query canonically (stable across formatting-only
// differences of the input).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case q.SelectAll:
		b.WriteString("*")
	case q.Agg != "":
		fmt.Fprintf(&b, "%s(%s)", q.Agg, q.AggField)
	default:
		b.WriteString(strings.Join(q.Fields, ", "))
	}
	fmt.Fprintf(&b, " FROM %s", q.From)
	if q.Join != "" {
		fmt.Fprintf(&b, " JOIN %s ON %s WINDOW %d", q.Join, q.JoinOn, q.JoinWindow)
	}
	if len(q.Where) > 0 {
		parts := make([]string, len(q.Where))
		for i, c := range q.Where {
			parts[i] = c.Canon()
		}
		fmt.Fprintf(&b, " WHERE %s", strings.Join(parts, " AND "))
	}
	if q.Window > 0 {
		fmt.Fprintf(&b, " WINDOW %d", q.Window)
		if q.Slide > 0 {
			fmt.Fprintf(&b, " SLIDE %d", q.Slide)
		}
	}
	if q.GroupBy != "" {
		fmt.Fprintf(&b, " GROUP BY %s", q.GroupBy)
	}
	return b.String()
}
