package cql

import (
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary inputs: they must
// never panic, and anything Parse accepts must re-parse from its canonical
// String() form to the same canonical form (parse-print-parse fixpoint).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM stocks",
		"SELECT symbol, price FROM stocks WHERE price > 100",
		"select avg(price) from stocks window 20 slide 5 group by symbol",
		"SELECT COUNT(*) FROM stocks WHERE symbol = 'ACME' WINDOW 10",
		"SELECT * FROM stocks JOIN news ON symbol WINDOW 16 WHERE price >= 150",
		"SELECT min(price) FROM stocks WHERE price != 5 AND volume <= 1000 WINDOW 3",
		"SELECT * FROM s WHERE a > -1.5",
		"SELECT * FROM s WHERE x = 'quoted string'",
		"}{[]()!@#$%^&*",
		"SELECT SELECT FROM FROM",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, input, err)
		}
		if q2.String() != canon {
			t.Fatalf("canonicalization not a fixpoint:\n  %q\n  %q", canon, q2.String())
		}
	})
}

// FuzzLex checks the lexer in isolation.
func FuzzLex(f *testing.F) {
	f.Add("SELECT * FROM x WHERE a >= 1.25 AND b = 'y'")
	f.Add("'unterminated")
	f.Add("a!b")
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatal("token stream must end with EOF")
		}
	})
}
