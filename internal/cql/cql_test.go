package cql

import (
	"strings"
	"testing"

	"repro/internal/auction"
	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/stream"
)

func catalog() Catalog {
	return Catalog{
		"stocks": {
			Schema: stream.MustSchema(
				stream.Field{Name: "symbol", Kind: stream.KindString},
				stream.Field{Name: "price", Kind: stream.KindFloat},
				stream.Field{Name: "volume", Kind: stream.KindInt},
			),
			Rate: 10,
		},
		"news": {
			Schema: stream.MustSchema(
				stream.Field{Name: "symbol", Kind: stream.KindString},
				stream.Field{Name: "sentiment", Kind: stream.KindFloat},
			),
			Rate: 2,
		},
	}
}

func TestParseBasic(t *testing.T) {
	q, err := Parse("SELECT symbol, price FROM stocks WHERE price > 100 AND symbol = 'ACME'")
	if err != nil {
		t.Fatal(err)
	}
	if q.From != "stocks" || len(q.Fields) != 2 || len(q.Where) != 2 {
		t.Fatalf("parsed %+v", q)
	}
	// Canonical WHERE order sorts the conjuncts.
	if q.Where[0].Field != "price" || q.Where[1].Field != "symbol" {
		t.Errorf("canonical order wrong: %v %v", q.Where[0], q.Where[1])
	}
}

func TestParseAggregate(t *testing.T) {
	q, err := Parse("select avg(price) from stocks where symbol = 'X' window 20 slide 5 group by symbol")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != "AVG" || q.AggField != "price" || q.Window != 20 || q.Slide != 5 || q.GroupBy != "symbol" {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseCountStar(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM stocks WINDOW 10")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != "COUNT" || q.AggField != "*" {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseJoin(t *testing.T) {
	q, err := Parse("SELECT * FROM stocks JOIN news ON symbol WINDOW 16 WHERE price >= 150")
	if err != nil {
		t.Fatal(err)
	}
	if q.Join != "news" || q.JoinOn != "symbol" || q.JoinWindow != 16 || !q.SelectAll {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM stocks WHERE",
		"SELECT * FROM stocks WHERE price >",
		"SELECT * FROM stocks WHERE price > 'x' extra",
		"SELECT avg(price) FROM stocks",                  // aggregate without WINDOW
		"SELECT * FROM stocks WINDOW 5",                  // WINDOW without aggregate
		"SELECT avg(price) FROM stocks WINDOW 2 SLIDE 5", // slide > window
		"SELECT * FROM stocks GROUP BY symbol",           // GROUP BY without aggregate
		"SELECT sum(price FROM stocks WINDOW 5",          // missing paren
		"SELECT * FROM stocks WHERE symbol < 'A'",        // < on string
		"SELECT price FROM stocks JOIN news ON symbol",   // projection over join
		"SELECT * FROM stocks WHERE price ! 5",
		"SELECT * FROM stocks WHERE price = 'unterminated",
	}
	for _, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q): want error", text)
		}
	}
}

func TestCompileFieldErrors(t *testing.T) {
	cases := []string{
		"SELECT * FROM nowhere",
		"SELECT * FROM stocks WHERE missing > 1",
		"SELECT missing FROM stocks",
		"SELECT avg(missing) FROM stocks WINDOW 5",
		"SELECT avg(price) FROM stocks WINDOW 5 GROUP BY missing",
		"SELECT * FROM stocks JOIN nowhere ON symbol",
		"SELECT * FROM stocks JOIN news ON price", // not in news
		"SELECT * FROM stocks WHERE symbol > 3",   // numeric cmp on string
		"SELECT * FROM stocks WHERE price = 'x'",  // string cmp on number
	}
	for _, text := range cases {
		q, err := Parse(text)
		if err != nil {
			continue // parse-level failure also acceptable for some cases
		}
		if _, err := Compile(q, catalog(), DefaultCosts()); err == nil {
			t.Errorf("Compile(%q): want error", text)
		}
	}
}

// TestCanonicalizationShares: semantically identical queries written
// differently produce identical operator keys — automatic sharing.
func TestCanonicalizationShares(t *testing.T) {
	a := MustCompile("SELECT * FROM stocks WHERE price > 100 AND symbol = 'ACME'", catalog(), DefaultCosts())
	b := MustCompile("select * from stocks where symbol='ACME' and price>100", catalog(), DefaultCosts())
	if len(a.Operators) != 1 || len(b.Operators) != 1 {
		t.Fatalf("operator counts %d / %d", len(a.Operators), len(b.Operators))
	}
	if a.Operators[0].Key != b.Operators[0].Key {
		t.Errorf("keys differ:\n  %s\n  %s", a.Operators[0].Key, b.Operators[0].Key)
	}
	// A different threshold must NOT share.
	c := MustCompile("SELECT * FROM stocks WHERE price > 200 AND symbol = 'ACME'", catalog(), DefaultCosts())
	if c.Operators[0].Key == a.Operators[0].Key {
		t.Error("different predicates share a key")
	}
}

// TestSelectStarPassthrough: SELECT * with no WHERE compiles to a
// passthrough operator (the model requires every query to own at least one
// operator), and it still flows tuples end to end.
func TestSelectStarPassthrough(t *testing.T) {
	comp := MustCompile("SELECT * FROM stocks", catalog(), DefaultCosts())
	if len(comp.Operators) != 1 {
		t.Fatalf("operators = %+v, want one passthrough", comp.Operators)
	}
	if !strings.Contains(comp.Operators[0].Key, "true") {
		t.Errorf("passthrough key = %q", comp.Operators[0].Key)
	}
	center := cloud.New(auction.NewCAT(), 100)
	for name, src := range catalog() {
		center.DeclareSource(name, src.Schema)
	}
	if err := center.Submit(cloud.Submission{User: 1, Name: "all", Bid: 5, Operators: comp.Operators, Deploy: comp.Deploy}); err != nil {
		t.Fatal(err)
	}
	if _, err := center.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	if err := center.Push("stocks", stream.NewTuple(1, "X", 1.0, int64(1))); err != nil {
		t.Fatal(err)
	}
	if got := len(center.Results("all")); got != 1 {
		t.Fatalf("results = %d, want 1", got)
	}
}

func TestLoadEstimation(t *testing.T) {
	costs := DefaultCosts()
	comp := MustCompile("SELECT avg(price) FROM stocks WHERE price > 100 WINDOW 10", catalog(), costs)
	if len(comp.Operators) != 2 {
		t.Fatalf("operators = %+v, want filter + window", comp.Operators)
	}
	// Filter: cost 1 × rate 10 = 10; window: cost 2 × (10 × selectivity 0.5) = 10.
	if comp.Operators[0].Load != 10 {
		t.Errorf("filter load = %v, want 10", comp.Operators[0].Load)
	}
	if comp.Operators[1].Load != 10 {
		t.Errorf("window load = %v, want 10", comp.Operators[1].Load)
	}
}

// TestEndToEndThroughCenter: two users submit equivalent CQL; the center
// shares the physical filter, admits both, and both receive results.
func TestEndToEndThroughCenter(t *testing.T) {
	cat := catalog()
	center := cloud.New(auction.NewCAT(), 100)
	for name, src := range cat {
		center.DeclareSource(name, src.Schema)
	}
	submit := func(user int, name, text string, bid float64) {
		comp := MustCompile(text, cat, DefaultCosts())
		err := center.Submit(cloud.Submission{
			User: user, Name: name, Bid: bid,
			Operators: comp.Operators, Deploy: comp.Deploy,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	submit(1, "alice", "SELECT * FROM stocks WHERE price > 100", 30)
	submit(2, "bob", "select * from stocks where price>100", 20)
	submit(3, "carol", "SELECT avg(price) FROM stocks WINDOW 4", 25)
	report, err := center.ClosePeriod()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Admitted) != 3 {
		t.Fatalf("admitted %d, want 3", len(report.Admitted))
	}
	// Plan: one shared filter + one window = 2 nodes.
	if n := center.Engine().Plan().NumNodes(); n != 2 {
		t.Fatalf("plan nodes = %d, want 2 (filter shared)", n)
	}
	for i := 0; i < 8; i++ {
		price := 90.0 + float64(i)*10
		if err := center.Push("stocks", stream.NewTuple(int64(i), "ACME", price, int64(100))); err != nil {
			t.Fatal(err)
		}
	}
	alice, bob := center.Results("alice"), center.Results("bob")
	if len(alice) != 6 || len(bob) != 6 { // prices 100..160 exceed 100: 110..160 = 6
		t.Errorf("alice=%d bob=%d results, want 6 each", len(alice), len(bob))
	}
	carol := center.Results("carol")
	if len(carol) != 2 { // two tumbling windows of 4
		t.Errorf("carol results = %d, want 2", len(carol))
	}
}

// TestJoinEndToEnd compiles a join query and runs tuples through it.
func TestJoinEndToEnd(t *testing.T) {
	cat := catalog()
	center := cloud.New(auction.NewCAT(), 1000)
	for name, src := range cat {
		center.DeclareSource(name, src.Schema)
	}
	comp := MustCompile("SELECT * FROM stocks JOIN news ON symbol WINDOW 8 WHERE price > 100", cat, DefaultCosts())
	if err := center.Submit(cloud.Submission{User: 1, Name: "corr", Bid: 50, Operators: comp.Operators, Deploy: comp.Deploy}); err != nil {
		t.Fatal(err)
	}
	if _, err := center.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(center.Push("stocks", stream.NewTuple(1, "ACME", 150.0, int64(10))))
	check(center.Push("stocks", stream.NewTuple(2, "ACME", 50.0, int64(10)))) // filtered out
	check(center.Push("news", stream.NewTuple(3, "ACME", 0.9)))
	check(center.Push("news", stream.NewTuple(4, "OTHER", 0.1)))
	got := center.Results("corr")
	if len(got) != 1 {
		t.Fatalf("join results = %d, want 1", len(got))
	}
	if got[0].Str(0) != "ACME" {
		t.Errorf("joined tuple = %+v", got[0])
	}
}

func TestQueryStringCanonical(t *testing.T) {
	a, err := Parse("select * from stocks where symbol='X' and price>5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("SELECT  *  FROM stocks  WHERE price > 5 AND symbol = 'X'")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("canonical strings differ:\n  %s\n  %s", a, b)
	}
	if !strings.Contains(a.String(), "price>5") {
		t.Errorf("canonical string = %s", a)
	}
}

// TestMeasuredSelectivityRecalibrates: a re-submitted query compiled with
// measured selectivities (Costs.Measured) sizes its downstream operators
// from what the filter actually passed, not the static Selectivity guess.
func TestMeasuredSelectivityRecalibrates(t *testing.T) {
	const text = "SELECT AVG(price) FROM stocks WHERE price > 100 WINDOW 10"
	costs := DefaultCosts() // static selectivity 0.5, stocks rate 10
	static := MustCompile(text, catalog(), costs)
	if len(static.Operators) != 2 {
		t.Fatalf("want filter+window, got %d operators", len(static.Operators))
	}
	filterKey := static.Operators[0].Key
	// Window load under the guess: cost 2 × rate 10 × 0.5.
	if got := static.Operators[1].Load; got != 10 {
		t.Fatalf("static window load = %v, want 10", got)
	}

	// The previous period measured the filter passing 20% of its input.
	costs.Measured = MeasuredSelectivities([]engine.NodeLoad{
		{Name: filterKey, Tuples: 1000, OutTuples: 200},
		{Name: "idle-op", Tuples: 0, OutTuples: 0}, // no evidence: skipped
	})
	if _, ok := costs.Measured["idle-op"]; ok {
		t.Fatal("operator with no input must not override the static guess")
	}
	measured := MustCompile(text, catalog(), costs)
	if got := measured.Operators[1].Load; got != 4 {
		t.Fatalf("recalibrated window load = %v, want 2×10×0.2 = 4", got)
	}
	// Out-of-range measurements are ignored, not trusted.
	costs.Measured[filterKey] = 0
	if got := MustCompile(text, catalog(), costs).Operators[1].Load; got != 10 {
		t.Fatalf("zero measurement must fall back to static guess, got load %v", got)
	}
}

// TestGlobalWindowQueryOnStagedBackend is the PR's acceptance scenario at
// the CQL layer: a query with a global (ungrouped) window, compiled through
// cloud.CompilePlan, executes on the staged sharded backend with N>1 shards
// and produces tuple-identical results to the synchronous Engine — and the
// merged stats show nonzero load on both the parallel and global stages.
func TestGlobalWindowQueryOnStagedBackend(t *testing.T) {
	cat := catalog()
	sources := []cloud.SourceDecl{{Name: "stocks", Schema: cat["stocks"].Schema}}
	comp := MustCompile("SELECT AVG(price) FROM stocks WHERE price > 100 WINDOW 5", cat, DefaultCosts())
	sub := cloud.Submission{User: 1, Name: "gavg", Bid: 10, Operators: comp.Operators, Deploy: comp.Deploy}
	factory := func() (*engine.Plan, error) { return cloud.CompilePlan(sources, []cloud.Submission{sub}) }

	push := func(ex engine.Executor) []stream.Tuple {
		for i := 0; i < 500; i++ {
			// Strictly increasing timestamps: the exchange merge then
			// reconstructs exactly the synchronous processing order.
			tu := stream.NewTuple(int64(i), []string{"AAA", "BBB", "CCC"}[i%3], 90.0+float64(i%40), int64(i))
			if err := ex.PushBatch("stocks", []stream.Tuple{tu}); err != nil {
				t.Fatal(err)
			}
		}
		ex.Advance(100)
		ex.Stop()
		return ex.Results("gavg")
	}

	plan, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	want := push(eng)

	st, err := engine.StartStaged(factory, engine.StagedConfig{ExecConfig: engine.ExecConfig{Shards: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards() != 4 || st.Split().FullyParallel() {
		t.Fatalf("staged: %d shards, split %s; want 4 shards with a global stage", st.NumShards(), st.Split())
	}
	got := push(st)

	if len(got) != len(want) {
		t.Fatalf("staged results = %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Ts != want[i].Ts || got[i].Float(1) != want[i].Float(1) {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	var par, glob float64
	for _, nl := range st.Stats() {
		if st.Split().Global[nl.ID] {
			glob += nl.Load
		} else {
			par += nl.Load
		}
	}
	if par <= 0 || glob <= 0 {
		t.Fatalf("per-stage loads parallel=%.3f global=%.3f, want both nonzero", par, glob)
	}
}
