package cql

import (
	"fmt"
	"strings"

	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/stream"
)

// Source describes one catalog stream: its schema and expected arrival rate
// (tuples per tick), used for load estimation.
type Source struct {
	Schema *stream.Schema
	Rate   float64
}

// Catalog maps source names to their descriptions.
type Catalog map[string]Source

// Costs holds per-tuple operator costs for load estimation (the paper's
// "load can at least be reasonably approximated by the system").
type Costs struct {
	Filter  float64
	Project float64
	Window  float64
	Join    float64
	// Selectivity estimates the fraction of tuples surviving a filter when
	// sizing downstream operators — the static guess used when no
	// measurement exists.
	Selectivity float64
	// Measured maps operator keys to selectivities measured by a previous
	// period's execution (NodeLoad.OutTuples/Tuples, see
	// MeasuredSelectivities). A re-submitted query compiles its downstream
	// load estimates from what its filters actually passed instead of the
	// static Selectivity guess — the compiler's half of the monitoring
	// feedback loop. Values outside (0, 1] are ignored.
	Measured map[string]float64
}

// DefaultCosts returns sensible defaults.
func DefaultCosts() Costs {
	return Costs{Filter: 1, Project: 0.5, Window: 2, Join: 4, Selectivity: 0.5}
}

// MeasuredSelectivities extracts per-operator measured selectivities from an
// executor's Stats, keyed by operator name (which the compiler emits as the
// operator key). Operators that processed no tuples are skipped — there is
// no evidence to override the static guess with.
func MeasuredSelectivities(loads []engine.NodeLoad) map[string]float64 {
	out := make(map[string]float64, len(loads))
	for _, nl := range loads {
		if nl.Tuples > 0 {
			out[nl.Name] = nl.Selectivity()
		}
	}
	return out
}

// Compiled is the result of compiling a query: everything a cloud.Submission
// needs besides the user and bid.
type Compiled struct {
	// Query is the canonicalized query.
	Query *Query
	// Operators lists the physical operators with canonical sharing keys
	// and estimated loads.
	Operators []cloud.OperatorSpec
	// Deploy wires the dataflow into a period plan.
	Deploy cloud.DeployFunc
}

// Compile type-checks the query against the catalog and produces the
// canonical operator decomposition. Two textually different but semantically
// identical queries compile to identical operator keys, so the DSMS shares
// their physical operators.
func Compile(q *Query, catalog Catalog, costs Costs) (*Compiled, error) {
	src, ok := catalog[q.From]
	if !ok {
		return nil, fmt.Errorf("cql: unknown source %q", q.From)
	}
	if costs.Selectivity <= 0 || costs.Selectivity > 1 {
		return nil, fmt.Errorf("cql: selectivity must be in (0, 1], got %g", costs.Selectivity)
	}
	c := &compiler{q: q, catalog: catalog, costs: costs}
	if err := c.checkFields(src.Schema); err != nil {
		return nil, err
	}
	return c.build(src)
}

// MustCompile parses and compiles, panicking on error; for fixtures.
func MustCompile(text string, catalog Catalog, costs Costs) *Compiled {
	q, err := Parse(text)
	if err != nil {
		panic(err)
	}
	comp, err := Compile(q, catalog, costs)
	if err != nil {
		panic(err)
	}
	return comp
}

type compiler struct {
	q       *Query
	catalog Catalog
	costs   Costs
}

// checkFields resolves every referenced field against the relevant schema.
func (c *compiler) checkFields(schema *stream.Schema) error {
	q := c.q
	for _, cmp := range q.Where {
		if schema.IndexOf(cmp.Field) < 0 {
			return fmt.Errorf("cql: WHERE references unknown field %q of %s", cmp.Field, q.From)
		}
		idx := schema.IndexOf(cmp.Field)
		if cmp.IsStr && schema.Field(idx).Kind != stream.KindString {
			return fmt.Errorf("cql: field %q is not a string", cmp.Field)
		}
		if !cmp.IsStr && schema.Field(idx).Kind == stream.KindString {
			return fmt.Errorf("cql: field %q is a string; numeric comparison invalid", cmp.Field)
		}
	}
	for _, f := range q.Fields {
		if schema.IndexOf(f) < 0 {
			return fmt.Errorf("cql: SELECT references unknown field %q of %s", f, q.From)
		}
	}
	if q.Agg != "" && q.AggField != "*" && schema.IndexOf(q.AggField) < 0 {
		return fmt.Errorf("cql: aggregate references unknown field %q of %s", q.AggField, q.From)
	}
	if q.GroupBy != "" && schema.IndexOf(q.GroupBy) < 0 {
		return fmt.Errorf("cql: GROUP BY references unknown field %q of %s", q.GroupBy, q.From)
	}
	if q.Join != "" {
		join, ok := c.catalog[q.Join]
		if !ok {
			return fmt.Errorf("cql: unknown join source %q", q.Join)
		}
		if schema.IndexOf(q.JoinOn) < 0 || join.Schema.IndexOf(q.JoinOn) < 0 {
			return fmt.Errorf("cql: join field %q must exist in both %s and %s", q.JoinOn, q.From, q.Join)
		}
	}
	return nil
}

// build assembles the operator chain and deploy function.
func (c *compiler) build(src Source) (*Compiled, error) {
	q := c.q
	schema := src.Schema
	rate := src.Rate

	type stage struct {
		key  string
		load float64
		wire func(reg *cloud.SharedOps, in anyPort) anyPort
	}
	var stages []stage
	upstream := fmt.Sprintf("src[%s]", q.From)

	// Filter stage (canonical conjunction), built structured (NewCmpFilter)
	// rather than from opaque closures so the engine can run it columnar on
	// the fused prefix path.
	if len(q.Where) > 0 {
		canon := make([]string, len(q.Where))
		specs := make([]stream.CmpSpec, len(q.Where))
		for i, cmp := range q.Where {
			canon[i] = cmp.Canon()
			specs[i] = cmpSpec(schema, cmp)
		}
		key := fmt.Sprintf("σ[%s][%s]", upstream, strings.Join(canon, "&"))
		cost := c.costs.Filter
		stages = append(stages, stage{
			key:  key,
			load: cost * rate,
			wire: func(reg *cloud.SharedOps, in anyPort) anyPort {
				return anyPort{port: reg.Unary(key, in.port, func() stream.Transform {
					return stream.NewCmpFilter(key, cost, specs...)
				})}
			},
		})
		upstream = key
		rate *= c.selectivity(key)
	}

	switch {
	case q.Join != "":
		join := c.catalog[q.Join]
		leftIdx := schema.IndexOf(q.JoinOn)
		rightIdx := join.Schema.IndexOf(q.JoinOn)
		key := fmt.Sprintf("⋈[%s|src[%s]][%s][w%d]", upstream, q.Join, q.JoinOn, q.JoinWindow)
		cost := c.costs.Join
		load := cost * (rate + join.Rate)
		window := q.JoinWindow
		joinSrc := q.Join
		stages = append(stages, stage{
			key:  key,
			load: load,
			wire: func(reg *cloud.SharedOps, in anyPort) anyPort {
				right, err := reg.Source(joinSrc)
				if err != nil {
					in.err = err
					return in
				}
				return anyPort{port: reg.Binary(key, in.port, right, func() stream.BinaryTransform {
					return stream.NewHashJoin(key, cost, leftIdx, rightIdx, window)
				})}
			},
		})

	case q.Agg != "":
		spec := stream.WindowSpec{Size: q.Window, Slide: q.Slide, GroupBy: -1}
		switch q.Agg {
		case "COUNT":
			spec.Agg = stream.AggCount
		case "SUM":
			spec.Agg = stream.AggSum
		case "AVG":
			spec.Agg = stream.AggAvg
		case "MIN":
			spec.Agg = stream.AggMin
		case "MAX":
			spec.Agg = stream.AggMax
		}
		if q.AggField != "*" {
			spec.Field = schema.IndexOf(q.AggField)
		}
		if q.GroupBy != "" {
			spec.GroupBy = schema.IndexOf(q.GroupBy)
		}
		key := fmt.Sprintf("W[%s][%s(%s)][w%d,s%d,g%s]", upstream, q.Agg, q.AggField, q.Window, q.Slide, q.GroupBy)
		cost := c.costs.Window
		stages = append(stages, stage{
			key:  key,
			load: cost * rate,
			wire: func(reg *cloud.SharedOps, in anyPort) anyPort {
				return anyPort{port: reg.Unary(key, in.port, func() stream.Transform {
					return stream.MustWindowAgg(key, cost, spec)
				})}
			},
		})

	case len(q.Fields) > 0:
		idx := make([]int, len(q.Fields))
		for i, f := range q.Fields {
			idx[i] = schema.IndexOf(f)
		}
		key := fmt.Sprintf("π[%s][%s]", upstream, strings.Join(q.Fields, ","))
		cost := c.costs.Project
		inSchema := schema
		stages = append(stages, stage{
			key:  key,
			load: cost * rate,
			wire: func(reg *cloud.SharedOps, in anyPort) anyPort {
				return anyPort{port: reg.Unary(key, in.port, func() stream.Transform {
					return stream.NewProject(key, cost, inSchema, idx...)
				})}
			},
		})
	}

	if len(stages) == 0 {
		// SELECT * with no WHERE: a passthrough filter so the query owns at
		// least one operator (the model requires ≥ 1). The empty conjunction
		// keeps it structured, hence columnar-eligible.
		key := fmt.Sprintf("σ[src[%s]][true]", q.From)
		cost := c.costs.Filter
		stages = append(stages, stage{
			key:  key,
			load: cost * rate,
			wire: func(reg *cloud.SharedOps, in anyPort) anyPort {
				return anyPort{port: reg.Unary(key, in.port, func() stream.Transform {
					return stream.NewCmpFilter(key, cost)
				})}
			},
		})
	}

	ops := make([]cloud.OperatorSpec, len(stages))
	for i, st := range stages {
		ops[i] = cloud.OperatorSpec{Key: st.key, Load: st.load}
	}
	from := q.From
	deploy := func(reg *cloud.SharedOps) error {
		port, err := reg.Source(from)
		if err != nil {
			return err
		}
		cur := anyPort{port: port}
		for _, st := range stages {
			cur = st.wire(reg, cur)
			if cur.err != nil {
				return cur.err
			}
		}
		reg.Sink(cur.port)
		return nil
	}
	return &Compiled{Query: q, Operators: ops, Deploy: deploy}, nil
}

// selectivity returns the estimated fraction of tuples surviving the
// operator with the given key: its measured selectivity when a previous
// period produced one, the static Selectivity guess otherwise.
func (c *compiler) selectivity(key string) float64 {
	if m, ok := c.costs.Measured[key]; ok && m > 0 && m <= 1 {
		return m
	}
	return c.costs.Selectivity
}

// cmpSpec renders one parsed comparison as a structured stream.CmpSpec; the
// row-path predicates NewCmpFilter derives from it match what the compiler
// historically built by hand (FieldEqString / negated string equality /
// FieldCmp).
func cmpSpec(schema *stream.Schema, cmp Cmp) stream.CmpSpec {
	spec := stream.CmpSpec{Field: schema.IndexOf(cmp.Field), Op: cmpOp(cmp.Op)}
	if cmp.IsStr {
		spec.IsStr = true
		spec.Str = cmp.Str
	} else {
		spec.Num = cmp.Num
	}
	return spec
}

func cmpOp(op string) stream.CmpOp {
	switch op {
	case "=":
		return stream.Eq
	case "!=":
		return stream.Ne
	case "<":
		return stream.Lt
	case "<=":
		return stream.Le
	case ">":
		return stream.Gt
	case ">=":
		return stream.Ge
	}
	return stream.Eq
}

// anyPort threads an engine port (plus a deferred error) through the wiring
// closures.
type anyPort struct {
	port engine.PortRef
	err  error
}
