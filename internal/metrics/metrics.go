// Package metrics aggregates per-run measurements into the averaged series
// the paper plots (each reported point is the mean over 50 workload sets)
// and renders aligned text tables and CSV for the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations of one quantity.
type Sample struct {
	n    int
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// Add records an observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sum2 += v * v
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Std returns the sample standard deviation (0 with <2 observations).
func (s *Sample) Std() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.Mean()
	v := (s.sum2 - float64(s.n)*mean*mean) / float64(s.n-1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.max }

// Series is a family of curves over a shared x-axis: one named line per
// mechanism, one Sample per (line, x) cell. It is the shape of every figure
// in the paper's Section VI.
type Series struct {
	// XLabel and YLabel name the axes for rendering.
	XLabel, YLabel string
	xs             []float64
	lines          []string
	cells          map[string]map[float64]*Sample
}

// NewSeries creates an empty series with the given axis labels.
func NewSeries(xLabel, yLabel string) *Series {
	return &Series{XLabel: xLabel, YLabel: yLabel, cells: make(map[string]map[float64]*Sample)}
}

// Observe records one measurement of line at x.
func (s *Series) Observe(line string, x, y float64) {
	row, ok := s.cells[line]
	if !ok {
		row = make(map[float64]*Sample)
		s.cells[line] = row
		s.lines = append(s.lines, line)
	}
	cell, ok := row[x]
	if !ok {
		cell = &Sample{}
		row[x] = cell
		if !containsFloat(s.xs, x) {
			s.xs = append(s.xs, x)
			sort.Float64s(s.xs)
		}
	}
	cell.Add(y)
}

func containsFloat(xs []float64, x float64) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Lines returns the line names in first-observed order.
func (s *Series) Lines() []string { return append([]string(nil), s.lines...) }

// Xs returns the sorted x values.
func (s *Series) Xs() []float64 { return append([]float64(nil), s.xs...) }

// Mean returns the mean of line at x (0 if never observed).
func (s *Series) Mean(line string, x float64) float64 {
	if row, ok := s.cells[line]; ok {
		if cell, ok := row[x]; ok {
			return cell.Mean()
		}
	}
	return 0
}

// Values returns line's means across all xs, in x order.
func (s *Series) Values(line string) []float64 {
	out := make([]float64, len(s.xs))
	for i, x := range s.xs {
		out[i] = s.Mean(line, x)
	}
	return out
}

// Table renders the series as an aligned text table: one row per x, one
// column per line.
func (s *Series) Table() string {
	header := append([]string{s.XLabel}, s.lines...)
	rows := [][]string{header}
	for _, x := range s.xs {
		row := []string{trimFloat(x)}
		for _, line := range s.lines {
			row = append(row, fmt.Sprintf("%.2f", s.Mean(line, x)))
		}
		rows = append(rows, row)
	}
	return Render(rows)
}

// CSV renders the series as comma-separated values with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString(s.XLabel)
	for _, line := range s.lines {
		b.WriteString(",")
		b.WriteString(line)
	}
	b.WriteString("\n")
	for _, x := range s.xs {
		b.WriteString(trimFloat(x))
		for _, line := range s.lines {
			fmt.Fprintf(&b, ",%g", s.Mean(line, x))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// trimFloat formats x without trailing zeros.
func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Render aligns rows of cells into a text table; the first row is treated
// as the header and underlined.
func Render(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(rows[0])
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range rows[1:] {
		writeRow(row)
	}
	return b.String()
}
