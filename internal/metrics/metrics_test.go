package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleStats(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 {
		t.Error("empty sample stats should be zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Sample std of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); math.Abs(s.Std()-want) > 1e-9 {
		t.Errorf("std = %v, want %v", s.Std(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSampleStdNonNegative(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				// Metrics aggregate profits/rates; squared-sum overflow at
				// astronomically large magnitudes is out of scope.
				continue
			}
			s.Add(v)
		}
		return s.Std() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("x", "y")
	s.Observe("CAT", 1, 10)
	s.Observe("CAT", 1, 20)
	s.Observe("CAT", 2, 30)
	s.Observe("CAF", 1, 5)
	if got := s.Mean("CAT", 1); got != 15 {
		t.Errorf("mean = %v, want 15", got)
	}
	if got := s.Mean("CAT", 99); got != 0 {
		t.Errorf("unobserved mean = %v, want 0", got)
	}
	if got := s.Mean("missing", 1); got != 0 {
		t.Errorf("missing line mean = %v, want 0", got)
	}
	lines := s.Lines()
	if len(lines) != 2 || lines[0] != "CAT" || lines[1] != "CAF" {
		t.Errorf("lines = %v, want [CAT CAF] in first-observed order", lines)
	}
	xs := s.Xs()
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 2 {
		t.Errorf("xs = %v, want [1 2]", xs)
	}
	vals := s.Values("CAT")
	if len(vals) != 2 || vals[0] != 15 || vals[1] != 30 {
		t.Errorf("values = %v, want [15 30]", vals)
	}
}

func TestSeriesTableAndCSV(t *testing.T) {
	s := NewSeries("deg", "profit")
	s.Observe("CAT", 1, 10)
	s.Observe("CAF", 1, 20)
	table := s.Table()
	for _, want := range []string{"deg", "CAT", "CAF", "10.00", "20.00"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "deg,CAT,CAF\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "1,10,20") {
		t.Errorf("csv row wrong: %q", csv)
	}
}

func TestRenderAlignment(t *testing.T) {
	out := Render([][]string{
		{"name", "value"},
		{"a", "1"},
		{"longer", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4", len(lines))
	}
	// All data rows align the second column.
	col := strings.Index(lines[2], "1")
	if strings.Index(lines[3], "22") != col {
		t.Errorf("columns not aligned:\n%s", out)
	}
	if Render(nil) != "" {
		t.Error("empty render should be empty")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(5) != "5" {
		t.Errorf("trimFloat(5) = %q", trimFloat(5))
	}
	if trimFloat(2.5) != "2.5" {
		t.Errorf("trimFloat(2.5) = %q", trimFloat(2.5))
	}
}
