package metrics

import (
	"fmt"
	"math"
	"strings"
)

// plotMarks assigns one mark per line, cycling if there are many.
var plotMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot renders the series as an ASCII chart (x ascending left to right, y
// scaled to height rows), one mark per line, with a legend — good enough to
// eyeball the paper's figure shapes in a terminal.
func (s *Series) Plot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	xs := s.Xs()
	lines := s.Lines()
	if len(xs) == 0 || len(lines) == 0 {
		return "(empty series)\n"
	}

	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, line := range lines {
		for _, x := range xs {
			y := s.Mean(line, x)
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	minX, maxX := xs[0], xs[len(xs)-1]
	spanX := maxX - minX
	if spanX == 0 {
		spanX = 1
	}
	col := func(x float64) int {
		c := int(math.Round((x - minX) / spanX * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round((maxY - y) / (maxY - minY) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for li, line := range lines {
		mark := plotMarks[li%len(plotMarks)]
		for _, x := range xs {
			grid[row(s.Mean(line, x))][col(x)] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s (max %.4g)\n", s.YLabel, maxY)
	for _, r := range grid {
		b.WriteString("|")
		b.Write(r)
		b.WriteString("\n")
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n")
	fmt.Fprintf(&b, " %s: %s .. %s   (min y %.4g)\n", s.XLabel, trimFloat(minX), trimFloat(maxX), minY)
	for li, line := range lines {
		fmt.Fprintf(&b, " %c %s\n", plotMarks[li%len(plotMarks)], line)
	}
	return b.String()
}
