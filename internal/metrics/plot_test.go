package metrics

import (
	"strings"
	"testing"
)

func TestPlotRendersLines(t *testing.T) {
	s := NewSeries("deg", "profit")
	for x := 1.0; x <= 10; x++ {
		s.Observe("CAT", x, 100-5*x)
		s.Observe("Two-price", x, 50+5*x)
	}
	out := s.Plot(40, 10)
	if !strings.Contains(out, "* CAT") || !strings.Contains(out, "+ Two-price") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "deg: 1 .. 10") {
		t.Errorf("x range missing:\n%s", out)
	}
	// Both marks must appear in the grid.
	grid := out[:strings.Index(out, "+----")]
	if !strings.Contains(grid, "*") || !strings.Contains(grid, "+") {
		t.Errorf("marks missing from grid:\n%s", out)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	s := NewSeries("x", "y")
	if got := s.Plot(40, 10); !strings.Contains(got, "empty") {
		t.Errorf("empty plot = %q", got)
	}
	s.Observe("flat", 1, 5)
	s.Observe("flat", 2, 5)
	out := s.Plot(1, 1) // clamped to minimums
	if out == "" {
		t.Error("degenerate plot empty")
	}
}
