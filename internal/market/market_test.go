package market

import (
	"testing"
	"testing/quick"
)

func TestNewFeedValidation(t *testing.T) {
	if _, err := NewFeed(1); err == nil {
		t.Error("want error for no symbols")
	}
}

func TestQuotesConform(t *testing.T) {
	f := MustFeed(1, "AAA", "BBB")
	for i := 0; i < 200; i++ {
		q := f.Quote()
		if !QuoteSchema.Conforms(q) {
			t.Fatalf("quote %v does not conform to %s", q, QuoteSchema)
		}
		if q.Float(1) < 1 {
			t.Fatalf("price %v below floor", q.Float(1))
		}
	}
}

func TestHeadlinesConform(t *testing.T) {
	f := MustFeed(2, "AAA")
	for i := 0; i < 100; i++ {
		h := f.Headline()
		if !NewsSchema.Conforms(h) {
			t.Fatalf("headline %v does not conform", h)
		}
		if s := h.Float(1); s < -1 || s > 1 {
			t.Fatalf("sentiment %v outside [-1, 1]", s)
		}
	}
}

func TestTimestampsMonotone(t *testing.T) {
	f := MustFeed(3, "AAA", "BBB")
	last := int64(0)
	for i := 0; i < 100; i++ {
		var ts int64
		if i%3 == 0 {
			ts = f.Headline().Ts
		} else {
			ts = f.Quote().Ts
		}
		if ts <= last {
			t.Fatalf("timestamp %d not after %d", ts, last)
		}
		last = ts
	}
}

func TestDeterminism(t *testing.T) {
	a := MustFeed(7, "X", "Y")
	b := MustFeed(7, "X", "Y")
	for i := 0; i < 100; i++ {
		qa, qb := a.Quote(), b.Quote()
		if qa.Str(0) != qb.Str(0) || qa.Float(1) != qb.Float(1) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestMeanReversion(t *testing.T) {
	f := MustFeed(11, "X")
	anchor, _ := f.Price("X")
	// After many steps the price stays within a band of the anchor.
	for i := 0; i < 5000; i++ {
		f.Quote()
	}
	price, ok := f.Price("X")
	if !ok {
		t.Fatal("symbol lost")
	}
	if price < anchor-80 || price > anchor+80 {
		t.Errorf("price %v wandered far from anchor %v", price, anchor)
	}
	if _, ok := f.Price("missing"); ok {
		t.Error("unknown symbol should not resolve")
	}
}

func TestPricesStayPositive(t *testing.T) {
	f := func(seed int64) bool {
		feed := MustFeed(seed, "A")
		for i := 0; i < 500; i++ {
			if feed.Quote().Float(1) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
