// Package market generates the synthetic stock-quote and news streams the
// paper's motivating monitoring applications consume (Section I): per-symbol
// random-walk prices with mean reversion, trade volumes, and sentiment-
// scored headlines. It backs cmd/dsmsd and the examples with a shared,
// deterministic feed.
package market

import (
	"fmt"
	"math/rand"

	"repro/internal/stream"
)

// QuoteSchema is (symbol string, price float, volume int).
var QuoteSchema = stream.MustSchema(
	stream.Field{Name: "symbol", Kind: stream.KindString},
	stream.Field{Name: "price", Kind: stream.KindFloat},
	stream.Field{Name: "volume", Kind: stream.KindInt},
)

// NewsSchema is (symbol string, sentiment float).
var NewsSchema = stream.MustSchema(
	stream.Field{Name: "symbol", Kind: stream.KindString},
	stream.Field{Name: "sentiment", Kind: stream.KindFloat},
)

// Feed produces deterministic synthetic market data.
type Feed struct {
	rng     *rand.Rand
	symbols []string
	prices  []float64
	anchor  []float64
	ts      int64
}

// NewFeed creates a feed over the given symbols; prices start anchored in
// [80, 280). Equal seeds give identical streams.
func NewFeed(seed int64, symbols ...string) (*Feed, error) {
	if len(symbols) == 0 {
		return nil, fmt.Errorf("market: need at least one symbol")
	}
	rng := rand.New(rand.NewSource(seed))
	f := &Feed{rng: rng, symbols: append([]string(nil), symbols...)}
	f.prices = make([]float64, len(symbols))
	f.anchor = make([]float64, len(symbols))
	for i := range symbols {
		f.anchor[i] = 80 + rng.Float64()*200
		f.prices[i] = f.anchor[i]
	}
	return f, nil
}

// MustFeed is NewFeed that panics on error.
func MustFeed(seed int64, symbols ...string) *Feed {
	f, err := NewFeed(seed, symbols...)
	if err != nil {
		panic(err)
	}
	return f
}

// Symbols returns the feed's symbols.
func (f *Feed) Symbols() []string { return append([]string(nil), f.symbols...) }

// Quote emits the next trade: a random symbol whose price follows a
// mean-reverting random walk, with a heavy-ish volume distribution.
func (f *Feed) Quote() stream.Tuple {
	i := f.rng.Intn(len(f.symbols))
	// Mean-reverting walk: drift toward the anchor plus noise.
	f.prices[i] += 0.05*(f.anchor[i]-f.prices[i]) + f.rng.NormFloat64()*2
	if f.prices[i] < 1 {
		f.prices[i] = 1
	}
	volume := int64(100 * (1 + f.rng.Intn(100)))
	f.ts++
	return stream.NewTuple(f.ts, f.symbols[i], f.prices[i], volume)
}

// Headline emits the next news item: a random symbol with sentiment in
// [-1, 1].
func (f *Feed) Headline() stream.Tuple {
	i := f.rng.Intn(len(f.symbols))
	f.ts++
	return stream.NewTuple(f.ts, f.symbols[i], f.rng.Float64()*2-1)
}

// Price returns the current price of the given symbol (for assertions).
func (f *Feed) Price(symbol string) (float64, bool) {
	for i, s := range f.symbols {
		if s == symbol {
			return f.prices[i], true
		}
	}
	return 0, false
}
