package workload

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

func TestValidate(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.NumQueries = 0 },
		func(p *Params) { p.MaxSharing = 0 },
		func(p *Params) { p.MaxSharing = p.NumQueries + 1 },
		func(p *Params) { p.MaxBid = 0 },
		func(p *Params) { p.MaxOpLoad = 0 },
		func(p *Params) { p.MeanOpsPerQuery = 0 },
		func(p *Params) { p.BidSkew = -1 },
		func(p *Params) { p.MaxUnitValue = 0 },
	}
	for i, mutate := range cases {
		p := PaperParams(1)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	if err := PaperParams(1).Validate(); err != nil {
		t.Errorf("paper params invalid: %v", err)
	}
}

// TestPaperScaleOperatorCounts checks the generator against the paper's own
// reported instance sizes: 2000 queries with ≈8800 operators at max degree 1
// and ≈700 at max degree 60.
func TestPaperScaleOperatorCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation")
	}
	base := MustGenerate(PaperParams(1))
	deg1 := base.MustInstance(1)
	deg60 := base.MustInstance(60)
	if n := deg1.NumOperators(); n < 7500 || n > 10500 {
		t.Errorf("operators at degree 1 = %d, paper reports ≈8800", n)
	}
	if n := deg60.NumOperators(); n < 550 || n > 900 {
		t.Errorf("operators at degree 60 = %d, paper reports ≈700", n)
	}
	if deg1.MaxSharingDegree() != 1 {
		t.Errorf("degree-1 instance has sharing degree %d", deg1.MaxSharingDegree())
	}
}

// TestDegreeDistributionIsZipf: at the base instance, operator sharing
// degrees follow Zipf(θ=1): P(degree 1) ≈ 1/H(60) ≈ 0.214 and the frequency
// ratio between degrees 1 and 2 is ≈ 2.
func TestDegreeDistributionIsZipf(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation")
	}
	base := MustGenerate(PaperParams(2))
	pool := base.MustInstance(60)
	counts := map[int]int{}
	for _, op := range pool.Operators() {
		counts[op.Degree()]++
	}
	total := pool.NumOperators()
	p1 := float64(counts[1]) / float64(total)
	if p1 < 0.15 || p1 > 0.28 {
		t.Errorf("P(degree=1) = %.3f, want ≈ 0.214", p1)
	}
	if counts[2] == 0 {
		t.Fatal("no degree-2 operators")
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.5 || ratio > 2.7 {
		t.Errorf("degree 1:2 frequency ratio = %.2f, want ≈ 2 (Zipf θ=1)", ratio)
	}
}

// TestPerQueryLoadInvariant: the degree-splitting procedure must keep every
// query's total load constant across derived instances — the paper's "we
// keep the average query load the same throughout a workload set".
func TestPerQueryLoadInvariant(t *testing.T) {
	f := func(seed int64) bool {
		p := PaperParams(seed)
		p.NumQueries = 60
		p.MaxSharing = 16
		base := MustGenerate(p)
		ref := base.MustInstance(16)
		for _, degree := range []int{1, 2, 5, 9, 16} {
			inst := base.MustInstance(degree)
			if inst.MaxSharingDegree() > degree {
				return false
			}
			for q := 0; q < p.NumQueries; q++ {
				id := query.QueryID(q)
				if math.Abs(inst.TotalLoad(id)-ref.TotalLoad(id)) > 1e-9 {
					return false
				}
				if inst.Bid(id) != ref.Bid(id) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSplitOwnersPaperExample pins the worked example: a degree-8 operator
// split for max degree 7 becomes groups of 4, 2, 1, 1.
func TestSplitOwnersPaperExample(t *testing.T) {
	owners := []int{10, 11, 12, 13, 14, 15, 16, 17}
	parts := splitOwners(owners, 7)
	sizes := make([]int, len(parts))
	for i, part := range parts {
		sizes[i] = len(part)
	}
	want := []int{4, 2, 1, 1}
	if len(sizes) != len(want) {
		t.Fatalf("split sizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("split sizes = %v, want %v", sizes, want)
		}
	}
	// Partition property: every owner appears exactly once.
	seen := map[int]bool{}
	for _, part := range parts {
		for _, o := range part {
			if seen[o] {
				t.Fatalf("owner %d duplicated", o)
			}
			seen[o] = true
		}
	}
	if len(seen) != len(owners) {
		t.Fatalf("split dropped owners: %d of %d", len(seen), len(owners))
	}
}

func TestSplitOwnersProperties(t *testing.T) {
	f := func(n uint8, m uint8) bool {
		owners := make([]int, int(n%64)+1)
		for i := range owners {
			owners[i] = i
		}
		maxDegree := int(m%16) + 1
		parts := splitOwners(owners, maxDegree)
		total := 0
		for _, part := range parts {
			if len(part) == 0 || len(part) > maxDegree {
				return false
			}
			total += len(part)
		}
		return total == len(owners)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBidModes(t *testing.T) {
	p := PaperParams(5)
	p.NumQueries = 120
	p.MaxSharing = 8

	t.Run("density", func(t *testing.T) {
		base := MustGenerate(p)
		pool := base.MustInstance(8)
		for i := 0; i < pool.NumQueries(); i++ {
			id := query.QueryID(i)
			unit := pool.Bid(id) / pool.TotalLoad(id)
			if unit < 1-1e-9 || unit > float64(p.MaxUnitValue)+1e-9 {
				t.Fatalf("query %d: unit value %v outside [1, %d]", i, unit, p.MaxUnitValue)
			}
			if math.Abs(unit-math.Round(unit)) > 1e-9 {
				t.Fatalf("query %d: unit value %v not integral", i, unit)
			}
		}
	})
	t.Run("independent", func(t *testing.T) {
		q := p
		q.BidMode = BidZipf
		base := MustGenerate(q)
		pool := base.MustInstance(8)
		for i := 0; i < pool.NumQueries(); i++ {
			b := pool.Bid(query.QueryID(i))
			if b < 1 || b > float64(q.MaxBid) {
				t.Fatalf("bid %v outside [1, %d]", b, q.MaxBid)
			}
		}
	})
}

func TestDeterminism(t *testing.T) {
	p := QuickParams(9)
	a := MustGenerate(p).MustInstance(10)
	b := MustGenerate(p).MustInstance(10)
	if a.NumOperators() != b.NumOperators() || a.NumQueries() != b.NumQueries() {
		t.Fatal("same seed produced structurally different instances")
	}
	for i := 0; i < a.NumQueries(); i++ {
		id := query.QueryID(i)
		if a.Bid(id) != b.Bid(id) || a.TotalLoad(id) != b.TotalLoad(id) {
			t.Fatal("same seed produced different queries")
		}
	}
}

func TestEveryQueryHasOperators(t *testing.T) {
	f := func(seed int64) bool {
		p := PaperParams(seed)
		p.NumQueries = 40
		p.MaxSharing = 6
		p.MeanOpsPerQuery = 1 // sparse: forces the coverage fallback
		pool := MustGenerate(p).MustInstance(6)
		for i := 0; i < pool.NumQueries(); i++ {
			if len(pool.Query(query.QueryID(i)).Operators) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLyingModel(t *testing.T) {
	p := QuickParams(4)
	pool := MustGenerate(p).MustInstance(12)
	model := ModerateLying()
	lied := model.Apply(pool, 77)
	if lied.NumQueries() != pool.NumQueries() {
		t.Fatal("lying changed the query count")
	}
	liars := 0
	for i := 0; i < pool.NumQueries(); i++ {
		id := query.QueryID(i)
		if lied.Value(id) != pool.Value(id) {
			t.Fatalf("query %d: valuation changed", i)
		}
		ratio := pool.FairShareLoad(id) / pool.TotalLoad(id)
		switch {
		case lied.Bid(id) == pool.Bid(id):
			// Honest — always allowed.
		case math.Abs(lied.Bid(id)-pool.Value(id)*model.Factor) < 1e-9:
			liars++
			if ratio >= model.Threshold {
				t.Fatalf("query %d lied with ratio %.3f ≥ threshold %.3f", i, ratio, model.Threshold)
			}
		default:
			t.Fatalf("query %d: unexpected bid %v (honest %v)", i, lied.Bid(id), pool.Bid(id))
		}
	}
	if liars == 0 {
		t.Error("no queries lied under the moderate model; workload should include eligible liars")
	}
	// Deterministic in the seed.
	again := model.Apply(pool, 77)
	for i := 0; i < pool.NumQueries(); i++ {
		if again.Bid(query.QueryID(i)) != lied.Bid(query.QueryID(i)) {
			t.Fatal("lying model not deterministic")
		}
	}
}

func TestAggressiveLiesLower(t *testing.T) {
	if f, m := AggressiveLying(), ModerateLying(); f.Factor >= m.Factor || f.Prob <= m.Prob {
		t.Error("aggressive model should lie more often and more deeply")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := QuickParams(2)
	p.NumQueries = 50
	pool := MustGenerate(p).MustInstance(10)
	var buf bytes.Buffer
	if err := WriteInstance(&buf, pool); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumQueries() != pool.NumQueries() || got.NumOperators() != pool.NumOperators() {
		t.Fatal("roundtrip changed instance shape")
	}
	for i := 0; i < pool.NumQueries(); i++ {
		id := query.QueryID(i)
		if got.Bid(id) != pool.Bid(id) || math.Abs(got.TotalLoad(id)-pool.TotalLoad(id)) > 1e-9 ||
			math.Abs(got.FairShareLoad(id)-pool.FairShareLoad(id)) > 1e-9 {
			t.Fatalf("query %d differs after roundtrip", i)
		}
	}
}

func TestDecodeInstanceErrors(t *testing.T) {
	if _, err := DecodeInstance(InstanceJSON{}); err == nil {
		t.Error("want error for empty instance")
	}
	bad := InstanceJSON{
		Operators: []OperatorJSON{{Load: 1, Queries: []int{5}}},
		Bids:      []float64{10},
	}
	if _, err := DecodeInstance(bad); err == nil {
		t.Error("want error for out-of-range query reference")
	}
}
