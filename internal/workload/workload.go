// Package workload generates the paper's experimental workloads (Table III):
// 2000-query instances whose operator loads, bids and operator-sharing
// degrees are Zipf-distributed, together with the paper's degree-splitting
// procedure that derives lower-sharing instances from a single base instance
// while keeping every query's total load constant, and the moderate /
// aggressive lying models used for Figure 5.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/query"
	"repro/internal/zipf"
)

// BidMode selects how query bids are generated.
type BidMode int

const (
	// BidDensityZipf draws a Zipf per-unit value u and bids u × C_T(query):
	// bids scale with query size, so profit densities are comparable across
	// queries — exactly the regime of the paper's Example 1 (densities 11,
	// 12, 10). This mode reproduces the published Figure 4 shapes (density
	// mechanisms win profit at low sharing, Two-price crosses over, the
	// crossover shifts left as capacity grows) and is the experiments'
	// default.
	BidDensityZipf BidMode = iota
	// BidZipf draws bids independently of loads from Zipf(MaxBid, BidSkew) —
	// the literal reading of Table III. Under independent mild-skew bids,
	// constant pricing (and hence Two-price) dominates every density
	// mechanism at every sharing degree, contradicting Figure 4's narrative;
	// see EXPERIMENTS.md for the calibration analysis.
	BidZipf
)

// Params configures workload generation. PaperParams returns the values of
// Table III.
type Params struct {
	// NumQueries is the number of queries per instance (paper: 2000).
	NumQueries int
	// MaxSharing is the base instance's maximum operator sharing degree
	// (paper: 60); lower-degree instances are derived by splitting.
	MaxSharing int
	// DegreeSkew is the Zipf skewness of per-operator sharing degrees
	// (paper: 1).
	DegreeSkew float64
	// BidMode selects independent (BidZipf) or density-scaled
	// (BidDensityZipf) bids.
	BidMode BidMode
	// MaxBid and BidSkew parameterize the Zipf bid distribution
	// (paper: 100, 0.5). In BidDensityZipf mode the Zipf draw is the
	// per-unit value over [1, MaxUnitValue] with the same skew.
	MaxBid  int
	BidSkew float64
	// MaxUnitValue bounds the per-unit value in BidDensityZipf mode
	// (default 10, giving Example-1-like densities).
	MaxUnitValue int
	// MaxOpLoad and LoadSkew parameterize the Zipf operator-load
	// distribution (paper: 10, 1).
	MaxOpLoad int
	LoadSkew  float64
	// MeanOpsPerQuery sets how many (query, operator) incidences to
	// generate: NumQueries × MeanOpsPerQuery. The paper's instances have
	// 700–8800 operators over 2000 queries, implying ≈ 4.4 operators per
	// query.
	MeanOpsPerQuery float64
	// Seed drives all randomness; equal seeds give identical workloads.
	Seed int64
}

// PaperParams returns Table III's parameters.
func PaperParams(seed int64) Params {
	return Params{
		NumQueries:      2000,
		MaxSharing:      60,
		DegreeSkew:      1,
		BidMode:         BidDensityZipf,
		MaxBid:          100,
		BidSkew:         0.5,
		MaxUnitValue:    10,
		MaxOpLoad:       10,
		LoadSkew:        1,
		MeanOpsPerQuery: 4.4,
		Seed:            seed,
	}
}

// QuickParams returns a scaled-down workload (for tests and -quick runs)
// with the same distributional shape.
func QuickParams(seed int64) Params {
	p := PaperParams(seed)
	p.NumQueries = 200
	p.MaxSharing = 20
	return p
}

// Validate reports the first invalid parameter.
func (p Params) Validate() error {
	switch {
	case p.NumQueries < 1:
		return fmt.Errorf("workload: NumQueries must be >= 1, got %d", p.NumQueries)
	case p.MaxSharing < 1:
		return fmt.Errorf("workload: MaxSharing must be >= 1, got %d", p.MaxSharing)
	case p.MaxSharing > p.NumQueries:
		return fmt.Errorf("workload: MaxSharing %d exceeds NumQueries %d", p.MaxSharing, p.NumQueries)
	case p.MaxBid < 1:
		return fmt.Errorf("workload: MaxBid must be >= 1, got %d", p.MaxBid)
	case p.MaxOpLoad < 1:
		return fmt.Errorf("workload: MaxOpLoad must be >= 1, got %d", p.MaxOpLoad)
	case p.MeanOpsPerQuery <= 0:
		return fmt.Errorf("workload: MeanOpsPerQuery must be positive, got %g", p.MeanOpsPerQuery)
	case p.BidMode == BidDensityZipf && p.MaxUnitValue < 1:
		return fmt.Errorf("workload: MaxUnitValue must be >= 1 in density bid mode, got %d", p.MaxUnitValue)
	case p.BidSkew < 0 || p.DegreeSkew < 0 || p.LoadSkew < 0:
		return fmt.Errorf("workload: skew parameters must be non-negative")
	}
	return nil
}

// opSpec is one operator of the base instance: its load and owner queries.
type opSpec struct {
	load   float64
	owners []int // query indices
}

// Base is a generated base instance at the maximum sharing degree. Instances
// at every lower maximum degree are derived from it deterministically by
// Instance, so a sweep over sharing degrees varies only sharing — bids and
// per-query total loads stay fixed, exactly as in the paper's methodology.
type Base struct {
	params Params
	ops    []opSpec
	bids   []float64
}

// Generate builds a base instance.
func Generate(p Params) (*Base, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	loadDist := zipf.New(rng, p.MaxOpLoad, p.LoadSkew)
	degreeDist := zipf.New(rng, p.MaxSharing, p.DegreeSkew)
	var bidDist *zipf.Zipf
	if p.BidMode == BidDensityZipf {
		bidDist = zipf.New(rng, p.MaxUnitValue, p.BidSkew)
	} else {
		bidDist = zipf.New(rng, p.MaxBid, p.BidSkew)
	}

	target := int(float64(p.NumQueries) * p.MeanOpsPerQuery)
	if target < p.NumQueries {
		target = p.NumQueries
	}
	var ops []opSpec
	incidences := 0
	covered := make([]bool, p.NumQueries)
	for incidences < target {
		degree := degreeDist.Draw()
		owners := sampleQueries(rng, p.NumQueries, degree)
		ops = append(ops, opSpec{load: float64(loadDist.Draw()), owners: owners})
		incidences += len(owners)
		for _, q := range owners {
			covered[q] = true
		}
	}
	// Every query needs at least one operator: give uncovered queries a
	// dedicated (degree-1) operator.
	for q, ok := range covered {
		if !ok {
			ops = append(ops, opSpec{load: float64(loadDist.Draw()), owners: []int{q}})
		}
	}

	// Per-query total loads (invariant under degree splitting, so computing
	// them on the base instance is sound for every derived instance).
	totals := make([]float64, p.NumQueries)
	for _, op := range ops {
		for _, q := range op.owners {
			totals[q] += op.load
		}
	}
	bids := make([]float64, p.NumQueries)
	for i := range bids {
		switch p.BidMode {
		case BidDensityZipf:
			bids[i] = float64(bidDist.Draw()) * totals[i]
		default:
			bids[i] = float64(bidDist.Draw())
		}
	}
	return &Base{params: p, ops: ops, bids: bids}, nil
}

// MustGenerate is Generate that panics on error, for fixtures.
func MustGenerate(p Params) *Base {
	b, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return b
}

// sampleQueries draws k distinct query indices uniformly (partial
// Fisher-Yates over a reusable index space would save allocations, but
// generation is not on any hot path).
func sampleQueries(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

// Params returns the generation parameters.
func (b *Base) Params() Params { return b.params }

// Instance derives the instance with maximum sharing degree maxDegree: every
// operator shared by more than maxDegree queries is split into operators of
// the same load whose degrees sum to the original degree (ceil-halving, the
// paper's 8 → 4,2,1,1 scheme), and the owning queries are distributed across
// the pieces. Per-query total load is invariant across maxDegree.
func (b *Base) Instance(maxDegree int) (*query.Pool, error) {
	if maxDegree < 1 {
		return nil, fmt.Errorf("workload: maxDegree must be >= 1, got %d", maxDegree)
	}
	qb := query.NewBuilder()
	queryOps := make([][]query.OperatorID, b.params.NumQueries)
	for _, op := range b.ops {
		for _, part := range splitOwners(op.owners, maxDegree) {
			id := qb.AddOperator(op.load)
			for _, q := range part {
				queryOps[q] = append(queryOps[q], id)
			}
		}
	}
	for q := 0; q < b.params.NumQueries; q++ {
		qb.AddQueryValued(b.bids[q], b.bids[q], q, queryOps[q]...)
	}
	return qb.Build()
}

// MustInstance is Instance that panics on error.
func (b *Base) MustInstance(maxDegree int) *query.Pool {
	p, err := b.Instance(maxDegree)
	if err != nil {
		panic(err)
	}
	return p
}

// splitOwners partitions the owner list into groups of size at most
// maxDegree using ceil-halving: a degree-8 operator constrained to degree 7
// splits into groups of 4, 2, 1, 1 — the paper's worked example.
func splitOwners(owners []int, maxDegree int) [][]int {
	if len(owners) <= maxDegree {
		return [][]int{owners}
	}
	// Repeatedly peel off the ceiling-half of the remaining owners (capped at
	// maxDegree): degree 8 → 4, 2, 1, 1 exactly as in the paper's example,
	// spreading the pieces across "other varying degrees".
	var parts [][]int
	rest := owners
	for len(rest) > 0 {
		size := (len(rest) + 1) / 2
		if size > maxDegree {
			size = maxDegree
		}
		parts = append(parts, rest[:size])
		rest = rest[size:]
	}
	return parts
}

// LyingModel parameterizes the Figure 5 strategic-bidding simulation: a user
// whose fair-share-to-total-load ratio is below Threshold submits, with
// probability Prob, an alternative bid of Value × Factor instead of her
// valuation.
type LyingModel struct {
	Name      string
	Threshold float64
	Prob      float64
	Factor    float64
}

// ModerateLying returns the paper's moderate model (threshold .25,
// probability .5, factor .5).
func ModerateLying() LyingModel {
	return LyingModel{Name: "ML", Threshold: 0.25, Prob: 0.5, Factor: 0.5}
}

// AggressiveLying returns the paper's aggressive model (threshold .35,
// probability .7, factor .3).
func AggressiveLying() LyingModel {
	return LyingModel{Name: "AL", Threshold: 0.35, Prob: 0.7, Factor: 0.3}
}

// Apply returns a copy of the pool in which strategic users bid their
// alternative bids; valuations are unchanged, so payoff and profit metrics
// remain meaningful. The seed makes the coin flips reproducible.
func (m LyingModel) Apply(p *query.Pool, seed int64) *query.Pool {
	rng := rand.New(rand.NewSource(seed))
	qb := query.NewBuilder()
	for _, op := range p.Operators() {
		qb.AddOperator(op.Load)
	}
	for _, q := range p.Queries() {
		bid := q.Bid
		ratio := p.FairShareLoad(q.ID) / p.TotalLoad(q.ID)
		if ratio < m.Threshold && rng.Float64() < m.Prob {
			bid = q.Value * m.Factor
		}
		qb.AddQueryValued(bid, q.Value, q.User, q.Operators...)
	}
	return qb.MustBuild()
}
