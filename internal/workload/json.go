package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/query"
)

// InstanceJSON is the serialized form of one auction instance: the shared
// operator structure and per-query bids, sufficient to rerun any mechanism.
type InstanceJSON struct {
	// MaxDegree records the instance's maximum sharing degree.
	MaxDegree int `json:"maxDegree"`
	// Operators lists every operator's load and owning query indices.
	Operators []OperatorJSON `json:"operators"`
	// Bids holds one bid per query, indexed by query ID.
	Bids []float64 `json:"bids"`
}

// OperatorJSON serializes one shared operator.
type OperatorJSON struct {
	Load    float64 `json:"load"`
	Queries []int   `json:"queries"`
}

// EncodeInstance converts a pool to its serialized form.
func EncodeInstance(p *query.Pool) InstanceJSON {
	inst := InstanceJSON{MaxDegree: p.MaxSharingDegree()}
	for _, op := range p.Operators() {
		qs := make([]int, len(op.Queries))
		for i, q := range op.Queries {
			qs[i] = int(q)
		}
		inst.Operators = append(inst.Operators, OperatorJSON{Load: op.Load, Queries: qs})
	}
	inst.Bids = make([]float64, p.NumQueries())
	for i := range inst.Bids {
		inst.Bids[i] = p.Bid(query.QueryID(i))
	}
	return inst
}

// DecodeInstance rebuilds a pool from its serialized form.
func DecodeInstance(inst InstanceJSON) (*query.Pool, error) {
	n := len(inst.Bids)
	if n == 0 {
		return nil, fmt.Errorf("workload: instance has no queries")
	}
	b := query.NewBuilder()
	queryOps := make([][]query.OperatorID, n)
	for i, op := range inst.Operators {
		id := b.AddOperator(op.Load)
		for _, q := range op.Queries {
			if q < 0 || q >= n {
				return nil, fmt.Errorf("workload: operator %d references query %d outside [0,%d)", i, q, n)
			}
			queryOps[q] = append(queryOps[q], id)
		}
	}
	for q := 0; q < n; q++ {
		b.AddQueryValued(inst.Bids[q], inst.Bids[q], q, queryOps[q]...)
	}
	return b.Build()
}

// WriteInstance writes the pool as JSON.
func WriteInstance(w io.Writer, p *query.Pool) error {
	enc := json.NewEncoder(w)
	return enc.Encode(EncodeInstance(p))
}

// ReadInstance reads a pool from JSON.
func ReadInstance(r io.Reader) (*query.Pool, error) {
	var inst InstanceJSON
	if err := json.NewDecoder(r).Decode(&inst); err != nil {
		return nil, fmt.Errorf("workload: decoding instance: %w", err)
	}
	return DecodeInstance(inst)
}
