package server

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/auction"
	"repro/internal/cluster"
	"repro/internal/engine"
)

// startClusterWorkers brings up n real TCP workers running the standard
// PlanFactory payload route and returns their addresses.
func startClusterWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		w, err := cluster.Listen(cluster.WorkerConfig{Addr: "127.0.0.1:0", Name: fmt.Sprintf("sw%d", i), Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
	}
	return addrs
}

// TestServerDistributedDeploy drives the full coordinator path: a serve
// configured with two TCP workers admits a keyed CQL query, deploys it
// distributed (parallel stage on the workers), ingests tuples over HTTP,
// surfaces the per-worker block in /v1/stats, and settles the period with
// results flowing back through the hub.
func TestServerDistributedDeploy(t *testing.T) {
	addrs := startClusterWorkers(t, 2)
	mech, err := auction.ByName("CAT", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Mechanism:   mech,
		Capacity:    100,
		Exec:        engine.ExecConfig{Buf: 8},
		Catalog:     testCatalog(),
		Workers:     addrs,
		DialTimeout: 5 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	url := newHTTPServer(t, s)

	call(t, "POST", url+"/v1/tenants", map[string]string{"name": "acme"}, nil)
	code := call(t, "POST", url+"/v1/queries", map[string]any{
		"tenant": "acme", "name": "persym",
		"cql": "SELECT sum(price) FROM stocks WINDOW 4 GROUP BY symbol",
		"bid": 10.0,
	}, nil)
	if code != http.StatusCreated {
		t.Fatalf("submit query = %d, want 201", code)
	}
	var cycle CycleReport
	if code := call(t, "POST", url+"/v1/admission/run", nil, &cycle); code != http.StatusOK || len(cycle.Admitted) != 1 {
		t.Fatalf("cycle = %d admitted %d, want 200 / 1", code, len(cycle.Admitted))
	}
	s.mu.RLock()
	_, distributed := s.exec.(*engine.Distributed)
	s.mu.RUnlock()
	if !distributed {
		t.Fatal("executor after cycle is not *engine.Distributed")
	}

	for i := 0; i < 12; i++ {
		tuples := []map[string]any{
			{"vals": []any{"AAA", float64(i + 1), 10}},
			{"vals": []any{"BBB", float64(i + 2), 10}},
		}
		if code := call(t, "POST", url+"/v1/streams/stocks", map[string]any{"tuples": tuples}, nil); code != http.StatusOK {
			t.Fatalf("push %d = %d, want 200", i, code)
		}
	}

	var stats struct {
		Running bool `json:"running"`
		Shards  int  `json:"shards"`
		Workers []struct {
			Name   string `json:"name"`
			Alive  bool   `json:"alive"`
			Pushed int64  `json:"pushed_tuples"`
		} `json:"workers"`
		LateArrivals *int64 `json:"late_arrivals"`
	}
	if code := call(t, "GET", url+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats = %d, want 200", code)
	}
	if !stats.Running || stats.Shards != 2 {
		t.Fatalf("stats running=%v shards=%d, want running 2 shards", stats.Running, stats.Shards)
	}
	if len(stats.Workers) != 2 {
		t.Fatalf("stats workers = %d rows, want 2", len(stats.Workers))
	}
	var pushed int64
	for _, w := range stats.Workers {
		if !w.Alive {
			t.Errorf("worker %s reported dead", w.Name)
		}
		pushed += w.Pushed
	}
	if pushed == 0 {
		t.Error("no tuples reported pushed to workers")
	}
	if stats.LateArrivals == nil {
		t.Error("stats missing late_arrivals")
	}

	// Settling the period drains the distributed executor; the keyed sums
	// computed on the workers must have reached the query's result counter.
	if code := call(t, "POST", url+"/v1/admission/run", nil, &cycle); code != http.StatusOK {
		t.Fatalf("second cycle = %d, want 200", code)
	}
	var list struct {
		Queries []queryJSON `json:"queries"`
	}
	if code := call(t, "GET", url+"/v1/queries?tenant=acme", nil, &list); code != http.StatusOK || len(list.Queries) != 1 {
		t.Fatalf("list queries = %d / %d entries", code, len(list.Queries))
	}
	if list.Queries[0].Results == 0 {
		t.Error("admitted query streamed no results through the distributed deploy")
	}
}

// TestServerDegradesWithoutWorkers pins the fallback: configured workers
// that are unreachable must not fail New or RunCycle — the deploy runs on
// the local staged executor instead.
func TestServerDegradesWithoutWorkers(t *testing.T) {
	mech, err := auction.ByName("CAT", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Mechanism:   mech,
		Capacity:    100,
		Exec:        engine.ExecConfig{Shards: 2, Buf: 8},
		Catalog:     testCatalog(),
		Workers:     []string{"127.0.0.1:1"}, // nothing listens here
		DialTimeout: 50 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("New with unreachable worker: %v", err)
	}
	url := newHTTPServer(t, s)
	call(t, "POST", url+"/v1/tenants", map[string]string{"name": "acme"}, nil)
	call(t, "POST", url+"/v1/queries", map[string]any{
		"tenant": "acme", "name": "q", "cql": "SELECT * FROM stocks", "bid": 5.0,
	}, nil)
	var cycle CycleReport
	if code := call(t, "POST", url+"/v1/admission/run", nil, &cycle); code != http.StatusOK || len(cycle.Admitted) != 1 {
		t.Fatalf("cycle = %d admitted %d, want 200 / 1", code, len(cycle.Admitted))
	}
	s.mu.RLock()
	_, staged := s.exec.(*engine.Staged)
	s.mu.RUnlock()
	if !staged {
		t.Fatal("executor did not fall back to *engine.Staged")
	}
}
