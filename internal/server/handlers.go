package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/billing"
	"repro/internal/cql"
	"repro/internal/engine"
	"repro/internal/qos"
	"repro/internal/staging"
	"repro/internal/stream"
)

// Handler returns the service plane's HTTP API:
//
//	POST /v1/tenants                         register a tenant (idempotent)
//	POST /v1/queries                         submit a CQL query with bid + QoS
//	GET  /v1/queries[?tenant=]               list queries
//	GET  /v1/queries/{tenant}/{name}         one query's status
//	GET  /v1/queries/{tenant}/{name}/results stream results (SSE)
//	POST /v1/streams/{source}                push tuples into a stream
//	POST /v1/admission/run                   run one admission cycle now
//	GET  /v1/load                            live measured load vs capacity
//	GET  /v1/prices                          meter price + measured operator loads
//	GET  /v1/invoices?tenant=                a tenant's ledger entries
//	GET  /v1/stats                           per-operator executor statistics
//	GET  /v1/healthz                         liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants", s.handleRegisterTenant)
	mux.HandleFunc("POST /v1/queries", s.handleSubmitQuery)
	mux.HandleFunc("GET /v1/queries", s.handleListQueries)
	mux.HandleFunc("GET /v1/queries/{tenant}/{name}", s.handleGetQuery)
	mux.HandleFunc("GET /v1/queries/{tenant}/{name}/results", s.handleResults)
	mux.HandleFunc("POST /v1/streams/{source}", s.handleIngest)
	mux.HandleFunc("POST /v1/admission/run", s.handleRunAdmission)
	mux.HandleFunc("GET /v1/load", s.handleLoad)
	mux.HandleFunc("GET /v1/prices", s.handlePrices)
	mux.HandleFunc("GET /v1/invoices", s.handleInvoices)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the API's error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body, rejecting unknown fields so typos
// in tenant requests fail loudly instead of silently defaulting.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleRegisterTenant(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "tenant name required")
		return
	}
	s.mu.Lock()
	user, ok := s.tenants[req.Name]
	if !ok {
		s.nextUser++
		user = s.nextUser
		s.tenants[req.Name] = user
	}
	s.mu.Unlock()
	status := http.StatusCreated
	if ok {
		status = http.StatusOK
	}
	writeJSON(w, status, map[string]any{"tenant": req.Name, "user": user})
}

// queryJSON is the wire form of a query's status.
type queryJSON struct {
	ID           string         `json:"id"`
	Tenant       string         `json:"tenant"`
	Name         string         `json:"name"`
	CQL          string         `json:"cql"`
	Bid          float64        `json:"bid"`
	Status       string         `json:"status"`
	Payment      float64        `json:"payment,omitempty"`
	DeclaredLoad float64        `json:"declared_load"`
	MeasuredLoad float64        `json:"measured_load,omitempty"`
	Results      int64          `json:"results"`
	QoS          []qosPointJSON `json:"qos,omitempty"`
	Operators    []opJSON       `json:"operators"`
}

// qosPointJSON is the wire form of one QoS graph vertex.
type qosPointJSON struct {
	Latency float64 `json:"latency"`
	Utility float64 `json:"utility"`
}

type opJSON struct {
	Key  string  `json:"key"`
	Load float64 `json:"load"`
}

func (s *Server) queryJSONLocked(q *tenantQuery) queryJSON {
	out := queryJSON{
		ID: q.id, Tenant: q.tenant, Name: q.name, CQL: q.text, Bid: q.bid,
		Status: q.status, Payment: q.payment, DeclaredLoad: q.declared,
		MeasuredLoad: q.measured, Results: q.results.Load(),
	}
	out.QoS = q.qosPoints
	for _, op := range q.comp.Operators {
		out.Operators = append(out.Operators, opJSON{Key: op.Key, Load: op.Load})
	}
	return out
}

func (s *Server) handleSubmitQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Tenant string         `json:"tenant"`
		Name   string         `json:"name"`
		CQL    string         `json:"cql"`
		Bid    float64        `json:"bid"`
		QoS    []qosPointJSON `json:"qos"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "query name required")
		return
	}
	if req.Bid < 0 {
		writeError(w, http.StatusBadRequest, "bid must be non-negative, got %g", req.Bid)
		return
	}
	parsed, err := cql.Parse(req.CQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed CQL: %v", err)
		return
	}
	costs := s.costs
	s.mu.RLock()
	measured := make(map[string]float64, len(s.measured))
	for k, v := range s.measured {
		measured[k] = v
	}
	s.mu.RUnlock()
	costs.Measured = measured
	comp, err := cql.Compile(parsed, s.cfg.Catalog, costs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "CQL does not compile: %v", err)
		return
	}
	var graph *qos.Graph
	if len(req.QoS) > 0 {
		pts := make([]qos.Point, len(req.QoS))
		for i, p := range req.QoS {
			pts[i] = qos.Point{Latency: p.Latency, Utility: p.Utility}
		}
		graph, err = qos.NewGraph(pts...)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid QoS graph: %v", err)
			return
		}
	}

	s.mu.Lock()
	user, ok := s.tenants[req.Tenant]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "unknown tenant %q: register it via POST /v1/tenants", req.Tenant)
		return
	}
	id := req.Tenant + "/" + req.Name
	if _, dup := s.queries[id]; dup {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "query %q already registered", id)
		return
	}
	q := &tenantQuery{
		id: id, tenant: req.Tenant, user: user, name: req.Name,
		text: parsed.String(), bid: req.Bid, qos: graph, qosPoints: req.QoS,
		comp: comp, status: StatusPending,
	}
	for _, op := range comp.Operators {
		q.declared += op.Load
	}
	s.queries[id] = q
	s.order = append(s.order, id)
	resp := s.queryJSONLocked(q)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	s.mu.RLock()
	out := make([]queryJSON, 0, len(s.order))
	for _, id := range s.order {
		q := s.queries[id]
		if tenant != "" && q.tenant != tenant {
			continue
		}
		out = append(out, s.queryJSONLocked(q))
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"queries": out})
}

// lookupQuery resolves {tenant}/{name} path values, writing a 404 on miss.
func (s *Server) lookupQuery(w http.ResponseWriter, r *http.Request) (*tenantQuery, bool) {
	id := r.PathValue("tenant") + "/" + r.PathValue("name")
	s.mu.RLock()
	q, ok := s.queries[id]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown query %q", id)
		return nil, false
	}
	return q, true
}

func (s *Server) handleGetQuery(w http.ResponseWriter, r *http.Request) {
	q, ok := s.lookupQuery(w, r)
	if !ok {
		return
	}
	s.mu.RLock()
	resp := s.queryJSONLocked(q)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

// tupleJSON is the wire form of an ingested stream tuple: vals in schema
// order, ts optional. The timestamp is a pointer so the wire distinguishes
// "assign the next timestamp" (field absent or null) from an explicit ts of
// 0 — a client pushing at ts 0 on a fresh stream is a valid, distinct
// request.
type tupleJSON struct {
	Ts   *int64 `json:"ts,omitempty"`
	Vals []any  `json:"vals"`
}

// tupleOutJSON is the wire form of a result tuple: the timestamp is always
// known on the way out, so it stays a plain integer.
type tupleOutJSON struct {
	Ts   int64 `json:"ts,omitempty"`
	Vals []any `json:"vals"`
}

// handleResults streams a query's results as server-sent events, one
// `data:` event per delivered batch. The stream replays the retained
// backlog first, then follows the live run; ?max=N closes the stream after
// at least N tuples, which is what lets one-shot clients (tests, the CI
// smoke probe) terminate cleanly.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	q, ok := s.lookupQuery(w, r)
	if !ok {
		return
	}
	max := 0
	if m := r.URL.Query().Get("max"); m != "" {
		v, err := strconv.Atoi(m)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "invalid max %q", m)
			return
		}
		max = v
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sub := s.hub.Subscribe(q.id, 32)
	defer sub.Cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	sent := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case batch, live := <-sub.C():
			if !live {
				return
			}
			out := make([]tupleOutJSON, len(batch))
			for i, t := range batch {
				out[i] = tupleOutJSON{Ts: t.Ts, Vals: t.Vals}
			}
			if _, err := fmt.Fprint(w, "data: "); err != nil {
				return
			}
			if err := enc.Encode(out); err != nil {
				return
			}
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return
			}
			flusher.Flush()
			sent += len(batch)
			if max > 0 && sent >= max {
				return
			}
		}
	}
}

// handleIngest pushes a batch of tuples into one declared stream. Numbers
// arrive as JSON float64; integer fields coerce when the value is whole.
// Timestamps must be nondecreasing per source (the staged merge's ordering
// precondition); omitted timestamps continue from the source's frontier.
//
// Ingest is all-or-nothing per request: the entire batch is coerced and
// validated — schema kinds and per-source timestamp monotonicity — before a
// single tuple reaches the executor, and the source frontier, tuple count,
// and metering clock advance only after the executor accepted the whole
// batch. A 400 (validation) or 409 (push rejected) response therefore
// guarantees the stream is exactly as it was, so clients can repair and
// resubmit the same batch without double-applying a prefix.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	source := r.PathValue("source")
	var req struct {
		Tuples []tupleJSON `json:"tuples"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Tuples) == 0 {
		writeError(w, http.StatusBadRequest, "no tuples")
		return
	}
	// The write lock: ingest advances the source frontier and the metering
	// clock, and must not interleave with an admission cycle's executor
	// swap mid-push.
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.srcs[source]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", source)
		return
	}
	if s.exec == nil {
		writeError(w, http.StatusConflict, "no admitted plan is running; run an admission cycle first")
		return
	}
	// Phase 1: validate and coerce the whole batch. Nothing has been pushed
	// yet, so any rejection here discards the leased buffer and returns with
	// the stream untouched.
	batch, lastTs, idx, cerr := coerceBatch(st.schema, req.Tuples, st.lastTs)
	if cerr != nil {
		engine.PutBatch(batch)
		writeError(w, http.StatusBadRequest, "tuple %d: %v", idx, cerr)
		return
	}
	n := len(batch)
	// Phase 2: hand the validated batch to the executor in one push.
	// Columnar ingest: with -columnar on a backend offering the columnar
	// ingress, coerced tuples unbox straight into a pooled struct-of-arrays
	// batch — qualified fused chains downstream never see a boxed row.
	// An owned push that errors was rejected whole and ownership stays
	// here (the rejection-ownership contract on the pusher interfaces), so
	// the 409 path recycles the lease instead of leaking it.
	var err error
	if colPusher, ok := s.exec.(engine.OwnedColBatchPusher); ok && s.cfg.Exec.Columnar {
		cb := engine.GetColBatch(st.schema, n)
		for _, t := range batch {
			cb.AppendTuple(t)
		}
		engine.PutBatch(batch)
		if err = colPusher.PushOwnedColBatch(source, cb); err != nil {
			engine.PutColBatch(cb)
		}
	} else if pusher, owned := s.exec.(engine.OwnedBatchPusher); owned {
		if err = pusher.PushOwnedBatch(source, batch); err != nil {
			engine.PutBatch(batch)
		}
	} else {
		err = s.exec.PushBatch(source, batch)
		engine.PutBatch(batch)
	}
	if err != nil {
		writeError(w, http.StatusConflict, "push rejected: %v", err)
		return
	}
	st.lastTs = lastTs
	st.tuples += int64(n)
	s.exec.Advance(1)
	s.ticks++
	writeJSON(w, http.StatusOK, map[string]any{"pushed": n, "source": source, "frontier": lastTs})
}

// coerceBatch coerces every wire tuple against the schema and the source
// frontier into a leased batch, enforcing timestamp monotonicity across the
// whole request before anything is pushed. On error it returns the index of
// the offending tuple; the (partially filled) leased batch is returned in
// all cases so the caller can recycle it.
func coerceBatch(schema *stream.Schema, in []tupleJSON, lastTs int64) ([]stream.Tuple, int64, int, error) {
	batch := engine.GetBatch(len(in))
	for i, tj := range in {
		t, err := coerceTuple(schema, tj, lastTs)
		if err != nil {
			return batch, 0, i, err
		}
		lastTs = t.Ts
		batch = append(batch, t)
	}
	return batch, lastTs, -1, nil
}

// coerceTuple converts one wire tuple to a stream.Tuple conforming to the
// schema, assigning the next timestamp past lastTs when none is given.
func coerceTuple(schema *stream.Schema, in tupleJSON, lastTs int64) (stream.Tuple, error) {
	if len(in.Vals) != schema.NumFields() {
		return stream.Tuple{}, fmt.Errorf("want %d values, got %d", schema.NumFields(), len(in.Vals))
	}
	vals := make([]any, len(in.Vals))
	for i, v := range in.Vals {
		f := schema.Field(i)
		switch f.Kind {
		case stream.KindInt:
			fv, ok := v.(float64)
			if !ok || fv != float64(int64(fv)) {
				return stream.Tuple{}, fmt.Errorf("field %d (%s): want integer, got %v", i, f.Name, v)
			}
			vals[i] = int64(fv)
		case stream.KindFloat:
			fv, ok := v.(float64)
			if !ok {
				return stream.Tuple{}, fmt.Errorf("field %d (%s): want number, got %v", i, f.Name, v)
			}
			vals[i] = fv
		case stream.KindString:
			sv, ok := v.(string)
			if !ok {
				return stream.Tuple{}, fmt.Errorf("field %d (%s): want string, got %v", i, f.Name, v)
			}
			vals[i] = sv
		default:
			return stream.Tuple{}, fmt.Errorf("field %d (%s): unsupported kind", i, f.Name)
		}
	}
	// nil means "assign the next timestamp"; an explicit value — including
	// an explicit 0 — is taken as given and only checked against the
	// frontier.
	ts := lastTs + 1
	if in.Ts != nil {
		ts = *in.Ts
	}
	if ts < lastTs {
		return stream.Tuple{}, fmt.Errorf("timestamp %d regresses below the stream frontier %d", ts, lastTs)
	}
	t := stream.Tuple{Ts: ts, Vals: vals}
	if !schema.Conforms(t) {
		return stream.Tuple{}, fmt.Errorf("does not conform to schema %s", schema)
	}
	return t, nil
}

func (s *Server) handleRunAdmission(w http.ResponseWriter, _ *http.Request) {
	report, err := s.RunCycle()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "admission cycle: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

// handleLoad reports the live measured load — engine.SettleStats on the
// running executor, so a mid-period read sees settled counters rather than
// a racing snapshot — against capacity, plus per-source ingress frontiers.
func (s *Server) handleLoad(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	exec := s.exec
	period := s.period
	ticks := s.ticks
	type srcJSON struct {
		Tuples   int64 `json:"tuples"`
		Frontier int64 `json:"frontier"`
	}
	srcs := make(map[string]srcJSON, len(s.srcs))
	for name, st := range s.srcs {
		srcs[name] = srcJSON{Tuples: st.tuples, Frontier: st.lastTs}
	}
	s.mu.RUnlock()

	resp := map[string]any{
		"period":   period,
		"capacity": s.cfg.Capacity,
		"running":  exec != nil,
		"ticks":    ticks,
		"sources":  srcs,
	}
	if exec != nil {
		loads := engine.SettleStats(exec)
		var executed, offered float64
		for _, nl := range loads {
			executed += nl.Load
			offered += nl.OfferedLoad
		}
		resp["executed_load"] = executed
		resp["offered_load"] = offered
		if st, ok := exec.(*engine.Staged); ok {
			resp["shards"] = st.NumShards()
			resp["epoch"] = st.Epoch()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePrices publishes the center's price signals: the usage meter price
// and the measured per-operator loads the next auction will charge declared
// bids against — what a tenant needs to reprice a resubmission.
func (s *Server) handlePrices(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	ops := make(map[string]float64, len(s.measured))
	for k, v := range s.measured {
		ops[k] = v
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity":       s.cfg.Capacity,
		"meter_price":    s.cfg.MeterPrice,
		"measured_loads": ops,
	})
}

func (s *Server) handleInvoices(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	var user int
	if tenant != "" {
		s.mu.RLock()
		u, ok := s.tenants[tenant]
		s.mu.RUnlock()
		if !ok {
			writeError(w, http.StatusNotFound, "unknown tenant %q", tenant)
			return
		}
		user = u
	}
	var invoices []billing.Invoice
	var balance float64
	for _, inv := range s.Ledger().Invoices() {
		if tenant == "" || inv.User == user {
			invoices = append(invoices, inv)
			balance += inv.Amount
		}
	}
	if invoices == nil {
		invoices = []billing.Invoice{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant": tenant, "invoices": invoices, "balance": balance,
	})
}

// handleStats reports per-operator executor statistics for the running
// period: node loads with owners, and per-shard loads on the staged
// backend.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	exec := s.exec
	s.mu.RUnlock()
	if exec == nil {
		writeJSON(w, http.StatusOK, map[string]any{"running": false})
		return
	}
	loads := engine.SettleStats(exec)
	type nodeJSON struct {
		ID          int      `json:"id"`
		Name        string   `json:"name"`
		Tuples      int64    `json:"tuples"`
		OutTuples   int64    `json:"out_tuples"`
		Load        float64  `json:"load"`
		OfferedLoad float64  `json:"offered_load"`
		ShedTuples  int64    `json:"shed_tuples,omitempty"`
		Owners      []string `json:"owners,omitempty"`
	}
	nodes := make([]nodeJSON, len(loads))
	for i, nl := range loads {
		nodes[i] = nodeJSON{
			ID: nl.ID, Name: nl.Name, Tuples: nl.Tuples, OutTuples: nl.OutTuples,
			Load: nl.Load, OfferedLoad: nl.OfferedLoad, ShedTuples: nl.ShedTuples,
			Owners: nl.Owners,
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	resp := map[string]any{"running": true, "nodes": nodes}
	if st, ok := exec.(*engine.Staged); ok {
		resp["shards"] = st.NumShards()
		resp["epoch"] = st.Epoch()
		resp["split"] = st.Split().String()
	}
	// Distributed backend: per-worker liveness rows plus the broken-promise
	// counter (tuples that arrived below an already-promised watermark —
	// nonzero after a worker-death replay).
	if dx, ok := exec.(*engine.Distributed); ok {
		resp["shards"] = dx.NumShards()
		resp["epoch"] = dx.Epoch()
		resp["split"] = dx.Split().String()
	}
	if ws, ok := exec.(interface{ WorkerStats() []engine.WorkerStat }); ok {
		resp["workers"] = ws.WorkerStats()
	}
	if la, ok := exec.(interface{ LateArrivals() int64 }); ok {
		resp["late_arrivals"] = la.LateArrivals()
	}
	// Bounded-staging counters (resident/spilled bytes, segments, replays)
	// when the running backend has a staging budget configured.
	if sg, ok := exec.(interface{ StagingStats() (staging.Stats, bool) }); ok {
		if stats, on := sg.StagingStats(); on {
			resp["staging"] = stats
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
