package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/auction"
	"repro/internal/billing"
	"repro/internal/cql"
	"repro/internal/engine"
	"repro/internal/market"
)

func testCatalog() cql.Catalog {
	return cql.Catalog{
		"stocks": {Schema: market.QuoteSchema, Rate: 1},
		"news":   {Schema: market.NewsSchema, Rate: 0.2},
	}
}

func newTestServer(t *testing.T, capacity float64) (*Server, *httptest.Server) {
	t.Helper()
	mech, err := auction.ByName("CAT", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Mechanism:  mech,
		Capacity:   capacity,
		MeterPrice: 0.5,
		Exec:       engine.ExecConfig{Shards: 2, Buf: 8},
		Catalog:    testCatalog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// call posts (or gets) JSON and decodes the response envelope into out.
func call(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// readSSE reads one result stream until the server closes it, returning the
// streamed tuples.
func readSSE(t *testing.T, url string) []tupleJSON {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("results Content-Type = %q, want text/event-stream", ct)
	}
	var tuples []tupleJSON
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var batch []tupleJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &batch); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		tuples = append(tuples, batch...)
	}
	return tuples
}

// TestServicePlaneE2E is the acceptance path: a tenant registers, submits a
// CQL query with a bid and QoS graph over HTTP, an admission cycle admits
// and deploys it, tuples pushed AFTER admission stream back over the
// query's result stream, and after the next cycle the tenant's ledger holds
// both the admission payment and a metered usage charge.
func TestServicePlaneE2E(t *testing.T) {
	s, ts := newTestServer(t, 100)

	if code := call(t, "POST", ts.URL+"/v1/tenants", map[string]string{"name": "acme"}, nil); code != http.StatusCreated {
		t.Fatalf("register tenant = %d, want 201", code)
	}
	// Re-registration is idempotent.
	var reg struct {
		User int `json:"user"`
	}
	if code := call(t, "POST", ts.URL+"/v1/tenants", map[string]string{"name": "acme"}, &reg); code != http.StatusOK || reg.User != 1 {
		t.Fatalf("re-register = %d user %d, want 200 user 1", code, reg.User)
	}

	var q queryJSON
	code := call(t, "POST", ts.URL+"/v1/queries", map[string]any{
		"tenant": "acme", "name": "alerts",
		"cql": "SELECT * FROM stocks WHERE price > 100",
		"bid": 10.0,
		"qos": []map[string]float64{{"latency": 2, "utility": 1}, {"latency": 20, "utility": 0}},
	}, &q)
	if code != http.StatusCreated {
		t.Fatalf("submit query = %d, want 201", code)
	}
	if q.ID != "acme/alerts" || q.Status != StatusPending || len(q.Operators) == 0 {
		t.Fatalf("submitted query = %+v", q)
	}

	var cycle CycleReport
	if code := call(t, "POST", ts.URL+"/v1/admission/run", nil, &cycle); code != http.StatusOK {
		t.Fatalf("admission run = %d, want 200", code)
	}
	if len(cycle.Admitted) != 1 || cycle.Admitted[0].ID != "acme/alerts" {
		t.Fatalf("cycle admitted %+v, want acme/alerts", cycle.Admitted)
	}

	if code := call(t, "GET", ts.URL+"/v1/queries/acme/alerts", nil, &q); code != http.StatusOK || q.Status != StatusAdmitted {
		t.Fatalf("query after admission: code %d status %q, want 200 admitted", code, q.Status)
	}

	// Push tuples after admission: two pass the predicate, one does not.
	var push struct {
		Pushed int `json:"pushed"`
	}
	code = call(t, "POST", ts.URL+"/v1/streams/stocks", map[string]any{
		"tuples": []map[string]any{
			{"vals": []any{"AAA", 150.5, 10}},
			{"vals": []any{"BBB", 50.0, 5}},
			{"vals": []any{"AAA", 200.0, 3}},
		},
	}, &push)
	if code != http.StatusOK || push.Pushed != 3 {
		t.Fatalf("ingest = %d pushed %d, want 200/3", code, push.Pushed)
	}

	got := readSSE(t, ts.URL+"/v1/queries/acme/alerts/results?max=2")
	if len(got) < 2 {
		t.Fatalf("streamed %d tuples, want >= 2", len(got))
	}
	for _, tp := range got {
		price, ok := tp.Vals[1].(float64)
		if !ok || price <= 100 {
			t.Fatalf("streamed tuple %+v does not satisfy price > 100", tp)
		}
	}

	// The next cycle settles the period: measured loads reprice the auction
	// and usage is metered on the ledger.
	if code := call(t, "POST", ts.URL+"/v1/admission/run", nil, &cycle); code != http.StatusOK {
		t.Fatalf("second admission run = %d", code)
	}
	if len(cycle.Metered) != 1 || cycle.Metered[0].Amount <= 0 {
		t.Fatalf("metered charges = %+v, want one positive usage charge", cycle.Metered)
	}

	var inv struct {
		Invoices []billing.Invoice `json:"invoices"`
		Balance  float64           `json:"balance"`
	}
	if code := call(t, "GET", ts.URL+"/v1/invoices?tenant=acme", nil, &inv); code != http.StatusOK {
		t.Fatalf("invoices = %d", code)
	}
	kinds := map[string]int{}
	for _, i := range inv.Invoices {
		kinds[i.Kind]++
	}
	if kinds[billing.KindAdmission] < 1 || kinds[billing.KindUsage] != 1 {
		t.Fatalf("invoice kinds = %v, want >=1 admission and 1 usage", kinds)
	}
	if inv.Balance != s.Ledger().Balance(1) || inv.Balance <= 0 {
		t.Fatalf("balance over HTTP = %v, ledger = %v", inv.Balance, s.Ledger().Balance(1))
	}

	// The usage charge equals MeterPrice times the measured load the cycle
	// reported for the query.
	var usage billing.Invoice
	for _, i := range inv.Invoices {
		if i.Kind == billing.KindUsage {
			usage = i
		}
	}
	if want := 0.5 * cycle.Metered[0].Load; usage.Amount != want {
		t.Fatalf("usage amount = %v, want MeterPrice * load = %v", usage.Amount, want)
	}
}

// TestSubmitRejections pins the handler's failure modes: malformed CQL,
// unknown tenant, duplicate names, bad QoS, bad bids.
func TestSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, 100)
	call(t, "POST", ts.URL+"/v1/tenants", map[string]string{"name": "acme"}, nil)

	submit := func(body map[string]any) (int, string) {
		var e struct {
			Error string `json:"error"`
		}
		code := call(t, "POST", ts.URL+"/v1/queries", body, &e)
		return code, e.Error
	}

	if code, msg := submit(map[string]any{"tenant": "acme", "name": "q", "cql": "SELECT * FROM stocks WHERE", "bid": 1.0}); code != http.StatusBadRequest || !strings.Contains(msg, "malformed CQL") {
		t.Errorf("malformed CQL: code %d msg %q", code, msg)
	}
	if code, msg := submit(map[string]any{"tenant": "acme", "name": "q", "cql": "SELECT * FROM nosuch", "bid": 1.0}); code != http.StatusBadRequest || !strings.Contains(msg, "compile") {
		t.Errorf("unknown source: code %d msg %q", code, msg)
	}
	if code, _ := submit(map[string]any{"tenant": "ghost", "name": "q", "cql": "SELECT * FROM stocks", "bid": 1.0}); code != http.StatusNotFound {
		t.Errorf("unknown tenant: code %d, want 404", code)
	}
	if code, _ := submit(map[string]any{"tenant": "acme", "name": "q", "cql": "SELECT * FROM stocks", "bid": -1.0}); code != http.StatusBadRequest {
		t.Errorf("negative bid: code %d, want 400", code)
	}
	if code, _ := submit(map[string]any{"tenant": "acme", "name": "q", "cql": "SELECT * FROM stocks", "bid": 1.0, "qos": []map[string]float64{{"latency": 1, "utility": 7}}}); code != http.StatusBadRequest {
		t.Errorf("invalid QoS: code %d, want 400", code)
	}
	if code, _ := submit(map[string]any{"tenant": "acme", "name": "q", "cql": "SELECT * FROM stocks", "bid": 1.0}); code != http.StatusCreated {
		t.Errorf("valid submit: code %d, want 201", code)
	}
	if code, _ := submit(map[string]any{"tenant": "acme", "name": "q", "cql": "SELECT * FROM stocks", "bid": 2.0}); code != http.StatusConflict {
		t.Errorf("duplicate name: code %d, want 409", code)
	}
}

// TestOverCapacityBidRejected submits a query whose declared load cannot fit
// the center's capacity: the auction must reject it, the status surface must
// say so, and no plan may be deployed for it.
func TestOverCapacityBidRejected(t *testing.T) {
	_, ts := newTestServer(t, 0.01)
	call(t, "POST", ts.URL+"/v1/tenants", map[string]string{"name": "acme"}, nil)
	var q queryJSON
	if code := call(t, "POST", ts.URL+"/v1/queries", map[string]any{
		"tenant": "acme", "name": "big", "cql": "SELECT * FROM stocks WHERE price > 1", "bid": 1000.0,
	}, &q); code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	if q.DeclaredLoad <= 0.01 {
		t.Fatalf("declared load %v not over the test capacity", q.DeclaredLoad)
	}
	var cycle CycleReport
	if code := call(t, "POST", ts.URL+"/v1/admission/run", nil, &cycle); code != http.StatusOK {
		t.Fatalf("admission run = %d", code)
	}
	if len(cycle.Admitted) != 0 || len(cycle.Rejected) != 1 {
		t.Fatalf("cycle = %+v, want pure rejection", cycle)
	}
	if code := call(t, "GET", ts.URL+"/v1/queries/acme/big", nil, &q); code != http.StatusOK || q.Status != StatusRejected {
		t.Fatalf("status = %q, want rejected", q.Status)
	}
	// With nothing deployed, ingest must refuse rather than drop silently.
	var e struct {
		Error string `json:"error"`
	}
	code := call(t, "POST", ts.URL+"/v1/streams/stocks", map[string]any{
		"tuples": []map[string]any{{"vals": []any{"AAA", 5.0, 1}}},
	}, &e)
	if code != http.StatusConflict {
		t.Fatalf("ingest with no plan = %d (%s), want 409", code, e.Error)
	}
}

// TestIngestValidation pins the ingress contract: schema arity and kinds,
// integer coercion, unknown streams, and the monotone timestamp frontier.
func TestIngestValidation(t *testing.T) {
	_, ts := newTestServer(t, 100)
	call(t, "POST", ts.URL+"/v1/tenants", map[string]string{"name": "acme"}, nil)
	call(t, "POST", ts.URL+"/v1/queries", map[string]any{
		"tenant": "acme", "name": "q", "cql": "SELECT * FROM stocks", "bid": 5.0,
	}, nil)
	call(t, "POST", ts.URL+"/v1/admission/run", nil, nil)

	push := func(source string, tuples []map[string]any) int {
		return call(t, "POST", ts.URL+"/v1/streams/"+source, map[string]any{"tuples": tuples}, nil)
	}
	if code := push("nosuch", []map[string]any{{"vals": []any{1.0}}}); code != http.StatusNotFound {
		t.Errorf("unknown stream = %d, want 404", code)
	}
	if code := push("stocks", []map[string]any{{"vals": []any{"AAA", 1.0}}}); code != http.StatusBadRequest {
		t.Errorf("wrong arity = %d, want 400", code)
	}
	if code := push("stocks", []map[string]any{{"vals": []any{"AAA", 1.0, 2.5}}}); code != http.StatusBadRequest {
		t.Errorf("fractional int field = %d, want 400", code)
	}
	if code := push("stocks", []map[string]any{{"vals": []any{42.0, 1.0, 2}}}); code != http.StatusBadRequest {
		t.Errorf("number for string field = %d, want 400", code)
	}
	if code := push("stocks", []map[string]any{{"ts": 100, "vals": []any{"AAA", 1.0, 2}}}); code != http.StatusOK {
		t.Errorf("valid explicit ts = %d, want 200", code)
	}
	if code := push("stocks", []map[string]any{{"ts": 50, "vals": []any{"AAA", 1.0, 2}}}); code != http.StatusBadRequest {
		t.Errorf("timestamp regression = %d, want 400", code)
	}
	var load struct {
		Sources map[string]struct {
			Tuples   int64 `json:"tuples"`
			Frontier int64 `json:"frontier"`
		} `json:"sources"`
		Running bool `json:"running"`
	}
	if code := call(t, "GET", ts.URL+"/v1/load", nil, &load); code != http.StatusOK {
		t.Fatalf("load = %d", code)
	}
	if !load.Running || load.Sources["stocks"].Tuples != 1 || load.Sources["stocks"].Frontier != 100 {
		t.Fatalf("load = %+v, want running with stocks frontier 100 after one accepted push", load)
	}
}

// TestIngestAllOrNothing pins the batch atomicity contract: a rejected
// batch — whether the bad tuple is first, last, or in the middle — applies
// nothing. The frontier and tuple count move only when the whole batch was
// accepted, so a client can repair and resubmit without double-applying a
// prefix.
func TestIngestAllOrNothing(t *testing.T) {
	_, ts := newTestServer(t, 100)
	call(t, "POST", ts.URL+"/v1/tenants", map[string]string{"name": "acme"}, nil)
	call(t, "POST", ts.URL+"/v1/queries", map[string]any{
		"tenant": "acme", "name": "q", "cql": "SELECT * FROM stocks", "bid": 5.0,
	}, nil)
	call(t, "POST", ts.URL+"/v1/admission/run", nil, nil)

	push := func(tuples []map[string]any) int {
		return call(t, "POST", ts.URL+"/v1/streams/stocks", map[string]any{"tuples": tuples}, nil)
	}
	loadState := func() (tuples, frontier int64) {
		var load struct {
			Sources map[string]struct {
				Tuples   int64 `json:"tuples"`
				Frontier int64 `json:"frontier"`
			} `json:"sources"`
		}
		if code := call(t, "GET", ts.URL+"/v1/load", nil, &load); code != http.StatusOK {
			t.Fatalf("load = %d", code)
		}
		return load.Sources["stocks"].Tuples, load.Sources["stocks"].Frontier
	}

	// Two valid tuples ahead of a mid-batch timestamp regression: the whole
	// batch must bounce, including the valid prefix.
	if code := push([]map[string]any{
		{"ts": 10, "vals": []any{"AAA", 1.0, 2}},
		{"ts": 20, "vals": []any{"AAA", 1.0, 2}},
		{"ts": 5, "vals": []any{"AAA", 1.0, 2}},
	}); code != http.StatusBadRequest {
		t.Fatalf("mid-batch regression = %d, want 400", code)
	}
	if n, f := loadState(); n != 0 || f != 0 {
		t.Fatalf("rejected batch applied a prefix: %d tuples, frontier %d", n, f)
	}

	if code := push([]map[string]any{
		{"ts": 10, "vals": []any{"AAA", 1.0, 2}},
		{"ts": 20, "vals": []any{"AAA", 1.0, 2}},
	}); code != http.StatusOK {
		t.Fatalf("valid batch = %d, want 200", code)
	}
	if n, f := loadState(); n != 2 || f != 20 {
		t.Fatalf("after accepted batch: %d tuples, frontier %d, want 2 and 20", n, f)
	}

	// A schema error behind a valid tuple: still nothing applied, frontier
	// still at the last accepted batch.
	if code := push([]map[string]any{
		{"ts": 30, "vals": []any{"AAA", 1.0, 2}},
		{"ts": 31, "vals": []any{"AAA", 1.0}},
	}); code != http.StatusBadRequest {
		t.Fatalf("mid-batch arity error = %d, want 400", code)
	}
	if n, f := loadState(); n != 2 || f != 20 {
		t.Fatalf("rejected second batch moved state: %d tuples, frontier %d", n, f)
	}
}

// TestStatsReportsStaging: with a staging budget configured, /v1/stats
// carries the staging counters next to the shard/epoch block.
func TestStatsReportsStaging(t *testing.T) {
	mech, err := auction.ByName("CAT", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Mechanism:  mech,
		Capacity:   100,
		MeterPrice: 0.5,
		Exec:       engine.ExecConfig{Shards: 2, Buf: 8, StagingBudget: 1 << 20, SpillDir: t.TempDir()},
		Catalog:    testCatalog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	call(t, "POST", ts.URL+"/v1/tenants", map[string]string{"name": "acme"}, nil)
	call(t, "POST", ts.URL+"/v1/queries", map[string]any{
		"tenant": "acme", "name": "q", "cql": "SELECT * FROM stocks", "bid": 5.0,
	}, nil)
	call(t, "POST", ts.URL+"/v1/admission/run", nil, nil)
	var stats struct {
		Running bool `json:"running"`
		Staging *struct {
			BudgetBytes int64 `json:"budget_bytes"`
		} `json:"staging"`
	}
	if code := call(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if !stats.Running || stats.Staging == nil || stats.Staging.BudgetBytes != 1<<20 {
		t.Fatalf("stats = %+v, want staging block with the configured budget", stats)
	}
}

// TestEvictionAcrossCycles drives two tenants whose combined measured load
// exceeds capacity once measurement replaces the static estimate: the
// lower-bid query is evicted at the cycle boundary and its status says so.
func TestEvictionAcrossCycles(t *testing.T) {
	_, ts := newTestServer(t, 100)
	call(t, "POST", ts.URL+"/v1/tenants", map[string]string{"name": "a"}, nil)
	call(t, "POST", ts.URL+"/v1/tenants", map[string]string{"name": "b"}, nil)
	// Different predicates: no operator sharing, so the auction trades the
	// two queries off independently.
	call(t, "POST", ts.URL+"/v1/queries", map[string]any{
		"tenant": "a", "name": "q", "cql": "SELECT * FROM stocks WHERE price > 10", "bid": 50.0,
	}, nil)
	call(t, "POST", ts.URL+"/v1/queries", map[string]any{
		"tenant": "b", "name": "q", "cql": "SELECT * FROM stocks WHERE price > 20", "bid": 1.0,
	}, nil)
	var cycle CycleReport
	call(t, "POST", ts.URL+"/v1/admission/run", nil, &cycle)
	if len(cycle.Admitted) != 2 {
		t.Fatalf("first cycle admitted %d, want both", len(cycle.Admitted))
	}
	// One heavy tick: 60 tuples in one metering tick pushes measured load
	// far past the declared estimates, so next cycle's repriced auction
	// cannot keep both.
	tuples := make([]map[string]any, 60)
	for i := range tuples {
		tuples[i] = map[string]any{"vals": []any{"AAA", float64(30 + i), 1}}
	}
	if code := call(t, "POST", ts.URL+"/v1/streams/stocks", map[string]any{"tuples": tuples}, nil); code != http.StatusOK {
		t.Fatalf("ingest = %d", code)
	}
	call(t, "POST", ts.URL+"/v1/admission/run", nil, &cycle)
	if len(cycle.Evicted) != 1 || cycle.Evicted[0] != "b/q" {
		t.Fatalf("second cycle evicted %v, want [b/q] (lower bid loses)", cycle.Evicted)
	}
	var q queryJSON
	if code := call(t, "GET", ts.URL+"/v1/queries/b/q", nil, &q); code != http.StatusOK || q.Status != StatusEvicted {
		t.Fatalf("evicted status = %q, want %q", q.Status, StatusEvicted)
	}
}
