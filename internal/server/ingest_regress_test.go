package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/auction"
	"repro/internal/engine"
	"repro/internal/stream"
)

// newHTTPServer wraps an already-built Server in an HTTP listener with
// cleanup, for tests that need a non-default Config.
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

// TestIngestExplicitZeroTimestamp pins the wire-timestamp tristate: an
// omitted (or null) "ts" means "assign the next timestamp past the
// frontier", while an explicit value — including an explicit 0 — is taken
// as given. Before the *int64 wire field, an explicit 0 was
// indistinguishable from absent and silently reassigned.
func TestIngestExplicitZeroTimestamp(t *testing.T) {
	_, ts := newTestServer(t, 100)
	call(t, "POST", ts.URL+"/v1/tenants", map[string]string{"name": "acme"}, nil)
	call(t, "POST", ts.URL+"/v1/queries", map[string]any{
		"tenant": "acme", "name": "q", "cql": "SELECT * FROM stocks", "bid": 5.0,
	}, nil)
	call(t, "POST", ts.URL+"/v1/admission/run", nil, nil)

	push := func(tuples []map[string]any) (int, int64) {
		var resp struct {
			Frontier int64 `json:"frontier"`
		}
		code := call(t, "POST", ts.URL+"/v1/streams/stocks", map[string]any{"tuples": tuples}, &resp)
		return code, resp.Frontier
	}

	// An explicit ts 0 on a fresh stream is a valid timestamp, not a
	// request for assignment: the frontier must stay at 0.
	if code, f := push([]map[string]any{{"ts": 0, "vals": []any{"AAA", 1.0, 2}}}); code != http.StatusOK || f != 0 {
		t.Fatalf("explicit ts 0 = %d frontier %d, want 200 frontier 0", code, f)
	}
	// Omitted ts: assigned frontier+1.
	if code, f := push([]map[string]any{{"vals": []any{"AAA", 1.0, 2}}}); code != http.StatusOK || f != 1 {
		t.Fatalf("omitted ts = %d frontier %d, want 200 frontier 1", code, f)
	}
	// JSON null is the same as omitted.
	if code, f := push([]map[string]any{{"ts": nil, "vals": []any{"AAA", 1.0, 2}}}); code != http.StatusOK || f != 2 {
		t.Fatalf("null ts = %d frontier %d, want 200 frontier 2", code, f)
	}
	// Assignment continues from an explicit jump within the same batch.
	if code, f := push([]map[string]any{
		{"ts": 10, "vals": []any{"AAA", 1.0, 2}},
		{"vals": []any{"AAA", 1.0, 2}},
	}); code != http.StatusOK || f != 11 {
		t.Fatalf("explicit then omitted = %d frontier %d, want 200 frontier 11", code, f)
	}
	// An explicit 0 is still frontier-checked once the stream has moved.
	if code, _ := push([]map[string]any{{"ts": 0, "vals": []any{"AAA", 1.0, 2}}}); code != http.StatusBadRequest {
		t.Fatalf("regressing explicit ts 0 = %d, want 400", code)
	}
}

// rejectingExec is an executor stub whose owned-push path refuses every
// batch, simulating a backend rejection after validation passed. Per the
// rejection-ownership contract it must NOT recycle what it rejects — the
// handler owns the lease and recycles it, which the race build's pool guard
// turns into a double-put panic if the executor misbehaves too.
type rejectingExec struct {
	pushes int
	rows   int
}

func (r *rejectingExec) PushOwnedBatch(source string, batch []stream.Tuple) error {
	r.pushes++
	r.rows += len(batch)
	return fmt.Errorf("stub: rejecting %d tuples", len(batch))
}

func (r *rejectingExec) PushBatch(string, []stream.Tuple) error { return fmt.Errorf("stub") }
func (r *rejectingExec) Advance(int64)                          {}
func (r *rejectingExec) Results(string) []stream.Tuple          { return nil }
func (r *rejectingExec) Stats() []engine.NodeLoad               { return nil }
func (r *rejectingExec) Stop()                                  {}

// TestIngestPushRejection409LeavesStreamUntouched pins the 409 path of
// handleIngest: when the executor rejects the owned push, the handler must
// report 409, leave the source frontier and tuple count exactly as they
// were, and recycle the leased batch itself (running this under -race backs
// the recycle with the pool's double-put guard).
func TestIngestPushRejection409LeavesStreamUntouched(t *testing.T) {
	s, ts := newTestServer(t, 100)
	call(t, "POST", ts.URL+"/v1/tenants", map[string]string{"name": "acme"}, nil)
	call(t, "POST", ts.URL+"/v1/queries", map[string]any{
		"tenant": "acme", "name": "q", "cql": "SELECT * FROM stocks", "bid": 5.0,
	}, nil)
	call(t, "POST", ts.URL+"/v1/admission/run", nil, nil)

	// Swap in the rejecting stub behind the server's own lock, exactly
	// where RunCycle would install a fresh executor.
	stub := &rejectingExec{}
	s.mu.Lock()
	prev := s.exec
	s.exec = stub
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.exec = prev
		s.mu.Unlock()
	}()

	var e struct {
		Error string `json:"error"`
	}
	for i := 0; i < 3; i++ {
		code := call(t, "POST", ts.URL+"/v1/streams/stocks", map[string]any{
			"tuples": []map[string]any{
				{"ts": 10, "vals": []any{"AAA", 1.0, 2}},
				{"ts": 11, "vals": []any{"BBB", 2.0, 3}},
			},
		}, &e)
		if code != http.StatusConflict {
			t.Fatalf("rejected push = %d (%s), want 409", code, e.Error)
		}
	}
	if stub.pushes != 3 || stub.rows != 6 {
		t.Fatalf("stub saw %d pushes / %d rows, want 3 / 6", stub.pushes, stub.rows)
	}
	var load struct {
		Sources map[string]struct {
			Tuples   int64 `json:"tuples"`
			Frontier int64 `json:"frontier"`
		} `json:"sources"`
	}
	if code := call(t, "GET", ts.URL+"/v1/load", nil, &load); code != http.StatusOK {
		t.Fatalf("load = %d", code)
	}
	if st := load.Sources["stocks"]; st.Tuples != 0 || st.Frontier != 0 {
		t.Fatalf("409s moved the stream: %d tuples, frontier %d", st.Tuples, st.Frontier)
	}
}

// TestStatsSurfacesSpillErrors is the degraded-spill e2e: a staged deploy
// with a byte-sized staging budget forces every exchange-held tuple to
// spill, the staging directory is yanked out from under the executor, and
// the plane must stay up — pushes keep returning 200, /v1/stats surfaces
// spill_errors with zero lost tuples, and the next cycle still settles and
// delivers the query's results.
func TestStatsSurfacesSpillErrors(t *testing.T) {
	mech, err := auction.ByName("CAT", 1)
	if err != nil {
		t.Fatal(err)
	}
	spillDir := t.TempDir()
	s, err := New(Config{
		Mechanism:  mech,
		Capacity:   100,
		MeterPrice: 0.5,
		Exec:       engine.ExecConfig{Shards: 2, Buf: 8, StagingBudget: 1, SpillDir: spillDir},
		Heartbeat:  -1, // no punctuation: exchange-held tuples stay staged
		Catalog:    testCatalog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	hts := newHTTPServer(t, s)

	call(t, "POST", hts+"/v1/tenants", map[string]string{"name": "acme"}, nil)
	// The WHERE keeps a parallel prefix in front of the global window, so
	// the plan has an exchange edge whose merge uses the stager.
	call(t, "POST", hts+"/v1/queries", map[string]any{
		"tenant": "acme", "name": "gsum",
		"cql": "SELECT SUM(price) FROM stocks WHERE price > 0 WINDOW 4", "bid": 5.0,
	}, nil)
	var cycle CycleReport
	if code := call(t, "POST", hts+"/v1/admission/run", nil, &cycle); code != http.StatusOK || len(cycle.Admitted) != 1 {
		t.Fatalf("admission = %d admitted %v", code, cycle.Admitted)
	}

	// Break the spill path: the stager works inside a private staging-*
	// subdirectory of the configured spill dir.
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, e := range ents {
		if err := os.RemoveAll(filepath.Join(spillDir, e.Name())); err != nil {
			t.Fatal(err)
		}
		removed++
	}
	if removed == 0 {
		t.Fatal("no staging directory to remove; stager not engaged?")
	}

	// Push past the 1-byte budget: every held tuple tries to spill and
	// fails. Ingest must stay 200 — degradation, not refusal.
	for i := 0; i < 4; i++ {
		tuples := make([]map[string]any, 8)
		for j := range tuples {
			tuples[j] = map[string]any{"vals": []any{"AAA", float64(10 + i*8 + j), 1}}
		}
		if code := call(t, "POST", hts+"/v1/streams/stocks", map[string]any{"tuples": tuples}, nil); code != http.StatusOK {
			t.Fatalf("push %d = %d, want 200 despite broken spill dir", i, code)
		}
	}

	// The exchange tap spills asynchronously to the push: poll the stats
	// surface for the counter.
	type stagingJSON struct {
		SpillErrors int64 `json:"spill_errors"`
		LostTuples  int64 `json:"lost_tuples"`
	}
	var stats struct {
		Running bool         `json:"running"`
		Staging *stagingJSON `json:"staging"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := call(t, "GET", hts+"/v1/stats", nil, &stats); code != http.StatusOK {
			t.Fatalf("stats = %d", code)
		}
		if stats.Staging != nil && stats.Staging.SpillErrors > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never surfaced spill errors: %+v", stats.Staging)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stats.Staging.LostTuples != 0 {
		t.Fatalf("degraded spill lost %d tuples; fallback must keep them resident", stats.Staging.LostTuples)
	}

	// The next cycle stops and drains the degraded executor: the staged
	// records must have stayed in memory, so the window results flow and
	// the cycle settles without error.
	if code := call(t, "POST", hts+"/v1/admission/run", nil, &cycle); code != http.StatusOK {
		t.Fatalf("settling cycle = %d", code)
	}
	var q queryJSON
	if code := call(t, "GET", hts+"/v1/queries/acme/gsum", nil, &q); code != http.StatusOK {
		t.Fatalf("query fetch = %d", code)
	}
	if q.Results == 0 {
		t.Fatal("no results after settling the degraded period; staged tuples were dropped")
	}
}
