// Package server is the DSMS center's tenant service plane: a long-lived
// HTTP/JSON API through which tenants submit CQL query templates with QoS
// graphs and bids, push stream tuples, and receive each admitted query's
// results as a live stream — the online counterpart of cmd/dsmsd's batch
// simulator, running the same auction, executor and ledger.
//
// The plane is organized around a continuous admission cycle (RunCycle,
// driven by a timer or by POST /v1/admission/run): the finishing period's
// executor settles and its measured per-operator loads are fed back as the
// next auction's declared loads (the paper's monitoring-pricing loop) and
// metered against each tenant's ledger balance; then every live query —
// pending, admitted, or previously rejected — enters the auction at its
// standing bid, winners are billed their critical-value payments and
// compiled into one shared plan on the staged executor, and each winner's
// sink is tapped into a subscription.Hub that fans result batches out to
// the tenant's open result streams.
package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auction"
	"repro/internal/billing"
	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/cql"
	"repro/internal/engine"
	"repro/internal/qos"
	"repro/internal/stream"
	"repro/internal/subscription"
)

// Config assembles a service plane.
type Config struct {
	// Mechanism is the admission auction run at every cycle.
	Mechanism auction.Mechanism
	// Capacity is the server capacity the auction packs against.
	Capacity float64
	// MeterPrice is the usage price per unit of measured offered load per
	// period; 0 disables metered billing (admission payments remain).
	MeterPrice float64
	// Exec carries the shared executor knobs (shards, buffers, shedding)
	// to the staged executor each cycle starts.
	Exec engine.ExecConfig
	// Heartbeat is the staged executor's punctuation cadence (see
	// engine.StagedConfig.Heartbeat).
	Heartbeat int
	// Catalog declares the input streams tenants may query.
	Catalog cql.Catalog
	// Costs is the CQL compiler's cost model; the zero value means
	// cql.DefaultCosts().
	Costs cql.Costs
	// CyclePeriod, when positive, runs the admission cycle on a timer; 0
	// leaves cycles to POST /v1/admission/run.
	CyclePeriod time.Duration
	// Backlog is the per-query result replay ring (tuples) for late
	// subscribers; <= 0 means 1024.
	Backlog int
	// Workers lists cluster worker addresses. When any are reachable, each
	// cycle's plan deploys distributed — the parallel stage pushed out to
	// the workers over framed TCP, the global stage and exchange merges
	// kept local. Unreachable workers are logged and skipped; with no live
	// link left the deploy degrades to the local staged executor.
	Workers []string
	// DialTimeout bounds each worker dial, retries included; <= 0 means 5s.
	DialTimeout time.Duration
	// CheckpointDir, when set with Workers, is where the distributed
	// executor snapshots keyed state at epoch boundaries.
	CheckpointDir string
	// Logf, when non-nil, receives one line per cycle and per deploy.
	Logf func(format string, args ...any)
}

// Query lifecycle statuses.
const (
	StatusPending  = "pending"  // submitted, no auction has seen it yet
	StatusAdmitted = "admitted" // won the last auction; plan deployed
	StatusRejected = "rejected" // lost the last auction; re-enters the next
	StatusEvicted  = "evicted"  // admitted before, displaced by the last auction
)

// tenantQuery is one tenant's standing query registration.
type tenantQuery struct {
	id     string // tenant/name: the engine sink name
	tenant string
	user   int
	name   string
	text   string // canonical CQL
	bid    float64
	qos    *qos.Graph
	// qosPoints keeps the submitted graph vertices in wire form for echo.
	qosPoints []qosPointJSON
	comp      *cql.Compiled

	status   string
	payment  float64 // last admission payment
	declared float64 // operator loads as last submitted (measurement-informed)
	measured float64 // offered load attributed to the query last period
	results  atomic.Int64
}

// sourceState tracks one declared stream's ingress: pushed tuple count and
// the monotone timestamp frontier ingest enforces.
type sourceState struct {
	schema *stream.Schema
	tuples int64
	lastTs int64
}

// Server is the service plane's state: the auction center, the tenant and
// query registries, the live executor, and the result hub. One write lock
// serializes admission cycles and registrations against each other; data
// pushes and reads share the read side, so ingest never races an executor
// swap.
type Server struct {
	cfg     Config
	costs   cql.Costs
	center  *cloud.Center
	sources []cloud.SourceDecl
	hub     *subscription.Hub
	logf    func(string, ...any)
	// links are the dialed cluster workers, in Config.Workers order minus
	// dial failures. A link that dies stays in the slice (its Dead channel
	// marks it) so operators can see which workers dropped; liveHosts
	// filters at deploy time.
	links []*cluster.Client

	mu       sync.RWMutex
	tenants  map[string]int // tenant name -> billing user ID
	nextUser int
	queries  map[string]*tenantQuery
	order    []string // registration order: deterministic auction pools
	srcs     map[string]*sourceState
	exec     engine.Executor
	measured map[string]float64 // operator key -> last measured offered load
	period   int
	ticks    int64
	closed   bool

	stopTicker chan struct{}
	tickerDone sync.WaitGroup
}

// New builds a service plane and, when CyclePeriod is set, starts its
// admission timer.
func New(cfg Config) (*Server, error) {
	if cfg.Mechanism == nil {
		return nil, fmt.Errorf("server: nil mechanism")
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("server: capacity must be positive, got %g", cfg.Capacity)
	}
	if len(cfg.Catalog) == 0 {
		return nil, fmt.Errorf("server: empty catalog")
	}
	if cfg.MeterPrice < 0 {
		return nil, fmt.Errorf("server: negative meter price %g", cfg.MeterPrice)
	}
	costs := cfg.Costs
	if costs.Filter == 0 && costs.Project == 0 && costs.Window == 0 && costs.Join == 0 && costs.Selectivity == 0 {
		costs = cql.DefaultCosts()
	}
	backlog := cfg.Backlog
	if backlog <= 0 {
		backlog = 1024
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:      cfg,
		costs:    costs,
		center:   cloud.New(cfg.Mechanism, cfg.Capacity),
		hub:      subscription.NewHub(backlog),
		logf:     logf,
		tenants:  make(map[string]int),
		queries:  make(map[string]*tenantQuery),
		srcs:     make(map[string]*sourceState),
		measured: make(map[string]float64),
	}
	// Deterministic source order: the center's declarations drive plan
	// construction.
	names := make([]string, 0, len(cfg.Catalog))
	for name := range cfg.Catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src := cfg.Catalog[name]
		if src.Schema == nil {
			return nil, fmt.Errorf("server: source %q has no schema", name)
		}
		s.center.DeclareSource(name, src.Schema)
		s.srcs[name] = &sourceState{schema: src.Schema}
	}
	s.sources = s.center.Sources()
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	for _, addr := range cfg.Workers {
		c, err := cluster.Dial(addr, cluster.DialOptions{Timeout: dialTimeout, Logf: logf})
		if err != nil {
			logf("server: worker %s unreachable: %v (continuing without it)", addr, err)
			continue
		}
		logf("server: linked worker %q at %s", c.Name(), addr)
		s.links = append(s.links, c)
	}
	if len(cfg.Workers) > 0 && len(s.links) == 0 {
		logf("server: no worker link established; deploys will run locally")
	}
	if cfg.CyclePeriod > 0 {
		s.stopTicker = make(chan struct{})
		s.tickerDone.Add(1)
		go s.cycleLoop(cfg.CyclePeriod)
	}
	return s, nil
}

// cycleLoop drives timed admission cycles until Close.
func (s *Server) cycleLoop(period time.Duration) {
	defer s.tickerDone.Done()
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.stopTicker:
			return
		case <-t.C:
			if _, err := s.RunCycle(); err != nil {
				s.logf("server: admission cycle: %v", err)
			}
		}
	}
}

// Ledger exposes the billing ledger (invoices, balances, revenue).
func (s *Server) Ledger() *billing.Ledger { return s.center.Ledger() }

// Close stops the admission timer, the live executor, and every open result
// stream. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	exec := s.exec
	s.exec = nil
	stop := s.stopTicker
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		s.tickerDone.Wait()
	}
	if exec != nil {
		exec.Stop()
	}
	for _, c := range s.links {
		c.Close()
	}
	s.hub.Close()
}

// liveHosts returns the worker links whose connections are still up, as
// remote shard hosts for the next distributed deploy.
func (s *Server) liveHosts() []engine.RemoteShardHost {
	var out []engine.RemoteShardHost
	for _, c := range s.links {
		select {
		case <-c.Dead():
		default:
			out = append(out, c)
		}
	}
	return out
}

// CycleAdmission is one admitted query in a cycle report.
type CycleAdmission struct {
	ID      string  `json:"id"`
	Tenant  string  `json:"tenant"`
	Payment float64 `json:"payment"`
}

// CycleCharge is one metered usage charge in a cycle report.
type CycleCharge struct {
	ID     string  `json:"id"`
	Tenant string  `json:"tenant"`
	Load   float64 `json:"load"`
	Amount float64 `json:"amount"`
}

// CycleReport summarizes one admission cycle.
type CycleReport struct {
	Period      int              `json:"period"`
	Candidates  int              `json:"candidates"`
	Admitted    []CycleAdmission `json:"admitted"`
	Rejected    []string         `json:"rejected,omitempty"`
	Evicted     []string         `json:"evicted,omitempty"`
	Revenue     float64          `json:"revenue"`
	Utilization float64          `json:"utilization"`
	Metered     []CycleCharge    `json:"metered,omitempty"`
}

// RunCycle executes one admission cycle: settle and meter the finishing
// period from the executor's measured loads, auction every live query at
// its standing bid with measurement-informed operator loads, bill the
// winners, and deploy them as one shared plan on a fresh staged executor
// whose sinks stream into the result hub. With no registered queries it is
// a no-op returning an empty report.
func (s *Server) RunCycle() (*CycleReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server: closed")
	}
	report := &CycleReport{Period: s.period}

	// 1. Settle the finishing period: the executor stops (its taps deliver
	// the end-of-run flush results through the hub), measured offered loads
	// flow into the next auction's declarations, and usage is metered.
	if s.exec != nil {
		s.exec.Stop()
		loads := s.exec.Stats()
		s.exec = nil
		for _, nl := range loads {
			if nl.Tuples+nl.ShedTuples > 0 {
				s.measured[nl.Name] = nl.OfferedLoad
			}
		}
		perQuery := attributeLoads(loads)
		for _, id := range s.order {
			q := s.queries[id]
			if q.status != StatusAdmitted {
				continue
			}
			q.measured = perQuery[id]
			if s.cfg.MeterPrice <= 0 || q.measured <= 0 {
				continue
			}
			amount := s.cfg.MeterPrice * q.measured
			if _, err := s.center.Ledger().ChargeUsage(s.period, q.user, id, amount); err != nil {
				return nil, err
			}
			report.Metered = append(report.Metered, CycleCharge{ID: id, Tenant: q.tenant, Load: q.measured, Amount: amount})
		}
	}

	if len(s.order) == 0 {
		s.period++
		return report, nil
	}

	// 2. Auction: every live query re-enters at its standing bid, with each
	// operator's declared load replaced by the measured value where one
	// exists. The center sees auction-only submissions; deployment stays
	// with the server, mirroring the simulator's split.
	report.Candidates = len(s.order)
	for _, id := range s.order {
		q := s.queries[id]
		ops := repriceOps(q.comp.Operators, s.measured)
		q.declared = 0
		for _, op := range ops {
			q.declared += op.Load
		}
		if err := s.center.Submit(cloud.Submission{
			User: q.user, Tenant: q.tenant, Name: id, Bid: q.bid, Operators: ops,
		}); err != nil {
			return nil, err
		}
	}
	out, err := s.center.ClosePeriod()
	if err != nil {
		return nil, err
	}
	report.Revenue = out.Revenue
	report.Utilization = out.Utilization

	// 3. Statuses and winner set.
	admitted := make(map[string]float64, len(out.Admitted))
	for _, a := range out.Admitted {
		admitted[a.Name] = a.Payment
	}
	var winners []cloud.Submission
	for _, id := range s.order {
		q := s.queries[id]
		pay, won := admitted[id]
		if won {
			q.status = StatusAdmitted
			q.payment = pay
			report.Admitted = append(report.Admitted, CycleAdmission{ID: id, Tenant: q.tenant, Payment: pay})
			winners = append(winners, cloud.Submission{
				User: q.user, Tenant: q.tenant, Name: id, Bid: q.bid,
				Operators: q.comp.Operators, Deploy: q.comp.Deploy,
			})
			continue
		}
		if q.status == StatusAdmitted {
			q.status = StatusEvicted
			report.Evicted = append(report.Evicted, id)
		} else {
			q.status = StatusRejected
			report.Rejected = append(report.Rejected, id)
		}
		q.payment = 0
	}

	// 4. Deploy the winners on a fresh staged executor, tapping each
	// winner's sink into the hub. The tap owns each batch: the hub copies
	// what it retains, so the batch recycles into the engine's pool.
	if len(winners) > 0 {
		taps := make(map[string]func([]stream.Tuple), len(winners))
		for _, w := range winners {
			q := s.queries[w.Name]
			id := w.Name
			taps[id] = func(b []stream.Tuple) {
				s.hub.Publish(id, b)
				q.results.Add(int64(len(b)))
				engine.PutBatch(b)
			}
		}
		sources := s.sources
		winnersCopy := winners
		factory := func() (*engine.Plan, error) { return cloud.CompilePlan(sources, winnersCopy) }
		var exec engine.Executor
		if hosts := s.liveHosts(); len(hosts) > 0 {
			d, derr := engine.StartDistributed(factory, engine.DistConfig{
				ExecConfig:    s.cfg.Exec,
				Hosts:         hosts,
				Taps:          taps,
				Heartbeat:     s.cfg.Heartbeat,
				CheckpointDir: s.cfg.CheckpointDir,
				Payload:       s.planPayload(winnersCopy),
				Logf:          s.logf,
			})
			if derr != nil {
				s.logf("server: period %d: distributed deploy across %d workers failed (%v); falling back to local staged executor",
					s.period, len(hosts), derr)
			} else {
				s.logf("server: period %d: deployed across %d workers", s.period, len(hosts))
				exec = d
			}
		}
		if exec == nil {
			st, err := engine.StartStaged(factory, engine.StagedConfig{
				ExecConfig: s.cfg.Exec,
				Heartbeat:  s.cfg.Heartbeat,
				Taps:       taps,
			})
			if err != nil {
				return nil, fmt.Errorf("server: deploying period %d plan: %w", s.period, err)
			}
			exec = st
		}
		s.exec = exec
	}
	s.ticks = 0
	for _, st := range s.srcs {
		st.lastTs = 0
	}
	s.period++
	s.logf("server: period %d: admitted %d/%d, revenue $%.2f, utilization %.0f%%",
		report.Period, len(report.Admitted), report.Candidates, report.Revenue, 100*report.Utilization)
	return report, nil
}

// planPayload assembles the deploy payload remote workers recompile the
// period plan from: the source catalog in declaration order and the winning
// queries' canonical CQL in winner order — the same inputs, in the same
// order, the coordinator's own factory compiles, so both sides derive
// structurally identical plans.
func (s *Server) planPayload(winners []cloud.Submission) cluster.PlanPayload {
	pp := cluster.PlanPayload{
		Sources: make([]cluster.SourceSpec, 0, len(s.sources)),
		Queries: make([]cluster.QuerySpec, 0, len(winners)),
	}
	for _, src := range s.sources {
		fields := make([]stream.Field, src.Schema.NumFields())
		for i := range fields {
			fields[i] = src.Schema.Field(i)
		}
		pp.Sources = append(pp.Sources, cluster.SourceSpec{Name: src.Name, Fields: fields})
	}
	for _, w := range winners {
		q := s.queries[w.Name]
		pp.Queries = append(pp.Queries, cluster.QuerySpec{
			User: w.User, Tenant: w.Tenant, Name: w.Name, CQL: q.text,
		})
	}
	return pp
}

// attributeLoads splits each node's measured offered load evenly across the
// queries that own it — the shared-operator cost split usage metering
// charges by — and returns the per-query totals keyed by sink name.
func attributeLoads(loads []engine.NodeLoad) map[string]float64 {
	out := make(map[string]float64)
	for _, nl := range loads {
		if len(nl.Owners) == 0 || nl.OfferedLoad <= 0 {
			continue
		}
		share := nl.OfferedLoad / float64(len(nl.Owners))
		for _, owner := range nl.Owners {
			out[owner] += share
		}
	}
	return out
}

// repriceOps replaces declared operator loads with measured values where
// available, leaving the input untouched.
func repriceOps(ops []cloud.OperatorSpec, measured map[string]float64) []cloud.OperatorSpec {
	out := append([]cloud.OperatorSpec(nil), ops...)
	for i, op := range out {
		if m, ok := measured[op.Key]; ok && m > 0 {
			out[i].Load = m
		}
	}
	return out
}
