package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBuilderErrors(t *testing.T) {
	t.Run("non-positive operator load", func(t *testing.T) {
		b := NewBuilder()
		op := b.AddOperator(0)
		b.AddQuery(1, op)
		if _, err := b.Build(); err == nil {
			t.Error("want error for zero-load operator")
		}
	})
	t.Run("negative bid", func(t *testing.T) {
		b := NewBuilder()
		op := b.AddOperator(1)
		b.AddQuery(-1, op)
		if _, err := b.Build(); err == nil {
			t.Error("want error for negative bid")
		}
	})
	t.Run("no operators", func(t *testing.T) {
		b := NewBuilder()
		b.AddQuery(1)
		if _, err := b.Build(); err == nil {
			t.Error("want error for operator-less query")
		}
	})
	t.Run("unknown operator", func(t *testing.T) {
		b := NewBuilder()
		b.AddQuery(1, OperatorID(5))
		if _, err := b.Build(); err == nil {
			t.Error("want error for unknown operator reference")
		}
	})
	t.Run("no queries", func(t *testing.T) {
		b := NewBuilder()
		b.AddOperator(1)
		if _, err := b.Build(); err == nil {
			t.Error("want error for empty pool")
		}
	})
}

func TestDuplicateOperatorRefsDeduped(t *testing.T) {
	b := NewBuilder()
	op := b.AddOperator(3)
	q := b.AddQuery(10, op, op, op)
	p := b.MustBuild()
	if got := len(p.Query(q).Operators); got != 1 {
		t.Fatalf("duplicated operator refs kept: %d, want 1", got)
	}
	if !almost(p.TotalLoad(q), 3) {
		t.Errorf("TotalLoad = %v, want 3", p.TotalLoad(q))
	}
	if got := p.Operator(op).Degree(); got != 1 {
		t.Errorf("degree = %d, want 1", got)
	}
}

func TestLoadNotions(t *testing.T) {
	b := NewBuilder()
	shared := b.AddOperator(6) // degree 3
	solo1 := b.AddOperator(2)
	solo2 := b.AddOperator(4)
	qa := b.AddQuery(10, shared, solo1)
	qb := b.AddQuery(10, shared, solo2)
	qc := b.AddQuery(10, shared)
	p := b.MustBuild()

	if !almost(p.TotalLoad(qa), 8) || !almost(p.TotalLoad(qb), 10) || !almost(p.TotalLoad(qc), 6) {
		t.Errorf("total loads = %v %v %v, want 8 10 6", p.TotalLoad(qa), p.TotalLoad(qb), p.TotalLoad(qc))
	}
	if !almost(p.FairShareLoad(qa), 4) { // 6/3 + 2
		t.Errorf("FairShareLoad(qa) = %v, want 4", p.FairShareLoad(qa))
	}
	if !almost(p.FairShareLoad(qc), 2) { // 6/3
		t.Errorf("FairShareLoad(qc) = %v, want 2", p.FairShareLoad(qc))
	}
	if !almost(p.AggregateLoad([]QueryID{qa, qb, qc}), 12) { // 6+2+4
		t.Errorf("AggregateLoad = %v, want 12", p.AggregateLoad([]QueryID{qa, qb, qc}))
	}
	if p.MaxSharingDegree() != 3 {
		t.Errorf("MaxSharingDegree = %d, want 3", p.MaxSharingDegree())
	}
}

func TestLoadTracker(t *testing.T) {
	p, _ := Example1()
	tr := NewLoadTracker(p)
	if !almost(tr.Remaining(0), 5) || !almost(tr.Remaining(1), 6) {
		t.Fatalf("initial remaining = %v %v, want 5 6", tr.Remaining(0), tr.Remaining(1))
	}
	if added := tr.Admit(1); !almost(added, 6) {
		t.Errorf("Admit(q2) added %v, want 6", added)
	}
	// Operator A now provisioned: q1's remaining load is just B.
	if !almost(tr.Remaining(0), 1) {
		t.Errorf("Remaining(q1) after q2 = %v, want 1", tr.Remaining(0))
	}
	if !tr.Provisioned(0) { // operator A
		t.Error("operator A should be provisioned")
	}
	tr.Admit(0)
	if !almost(tr.Load(), 7) {
		t.Errorf("Load = %v, want 7", tr.Load())
	}
	tr.Reset()
	if tr.Load() != 0 || !almost(tr.Remaining(0), 5) {
		t.Error("Reset did not clear tracker state")
	}
}

func TestWithBid(t *testing.T) {
	p, _ := Example1()
	q := p.WithBid(1, 5)
	if !almost(q.Bid(1), 5) {
		t.Errorf("bid = %v, want 5", q.Bid(1))
	}
	if !almost(q.Value(1), 72) {
		t.Errorf("value changed to %v, want 72", q.Value(1))
	}
	if !almost(p.Bid(1), 72) {
		t.Error("original pool mutated")
	}
	if !almost(q.FairShareLoad(0), p.FairShareLoad(0)) {
		t.Error("structure changed by WithBid")
	}
}

func TestWithOperators(t *testing.T) {
	p, _ := Example1()
	// q1 declares only operator B (a strict subset).
	q := p.WithOperators(0, []OperatorID{1})
	if !almost(q.TotalLoad(0), 1) {
		t.Errorf("TotalLoad = %v, want 1", q.TotalLoad(0))
	}
	// Operator A's degree drops to 1 (only q2).
	if got := q.Operator(0).Degree(); got != 1 {
		t.Errorf("operator A degree = %d, want 1", got)
	}
}

func TestExtendedBuilder(t *testing.T) {
	p, _ := Example1()
	b := p.ExtendedBuilder()
	op := b.AddOperator(1)
	id := b.AddQueryValued(5, 0, 99, op)
	q := b.MustBuild()
	if q.NumQueries() != 4 || q.NumOperators() != 6 {
		t.Fatalf("extended pool has %d queries / %d operators, want 4 / 6", q.NumQueries(), q.NumOperators())
	}
	if q.Query(id).User != 99 || !almost(q.Value(id), 0) {
		t.Error("extended query fields wrong")
	}
	for i := 0; i < 3; i++ {
		if !almost(q.TotalLoad(QueryID(i)), p.TotalLoad(QueryID(i))) {
			t.Errorf("query %d load changed", i)
		}
	}
}

// randomPool builds an arbitrary valid pool from fuzz inputs.
func randomPool(rng *rand.Rand) *Pool {
	b := NewBuilder()
	numOps := 1 + rng.Intn(12)
	ops := make([]OperatorID, numOps)
	for i := range ops {
		ops[i] = b.AddOperator(0.5 + rng.Float64()*9.5)
	}
	numQueries := 1 + rng.Intn(10)
	for q := 0; q < numQueries; q++ {
		k := 1 + rng.Intn(numOps)
		chosen := rng.Perm(numOps)[:k]
		ids := make([]OperatorID, k)
		for i, c := range chosen {
			ids[i] = ops[c]
		}
		b.AddQueryValued(1+rng.Float64()*99, 1+rng.Float64()*99, q, ids...)
	}
	return b.MustBuild()
}

func TestAggregateLoadProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPool(rng)
		all := make([]QueryID, p.NumQueries())
		var sumTotal float64
		for i := range all {
			all[i] = QueryID(i)
			sumTotal += p.TotalLoad(QueryID(i))
		}
		agg := p.AggregateLoad(all)
		// Aggregate never exceeds the sum of totals, and equals it only
		// without sharing.
		if agg > sumTotal+1e-9 {
			return false
		}
		// Order invariance.
		rev := make([]QueryID, len(all))
		for i, id := range all {
			rev[len(all)-1-i] = id
		}
		if !almost(agg, p.AggregateLoad(rev)) {
			return false
		}
		// Tracker admission over any order reproduces the aggregate.
		tr := NewLoadTracker(p)
		perm := rng.Perm(len(all))
		for _, i := range perm {
			tr.Admit(all[i])
		}
		return almost(tr.Load(), agg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFairShareNeverExceedsTotal(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPool(rand.New(rand.NewSource(seed)))
		for i := 0; i < p.NumQueries(); i++ {
			id := QueryID(i)
			if p.FairShareLoad(id) > p.TotalLoad(id)+1e-9 {
				return false
			}
			if p.FairShareLoad(id) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
