// Package query models the paper's abstract view of continuous queries
// (Section II, Figure 2): a pool of operators, each with a load and a set of
// owning queries, plus each user's bid. It provides the three load notions
// that drive the admission mechanisms — total load C_T, static fair-share
// load C_SF, and order-dependent remaining load C_R — and aggregate-load
// feasibility for sets of queries with shared operators.
package query

import (
	"errors"
	"fmt"
	"sort"
)

// OperatorID identifies a (possibly shared) operator within a Pool.
type OperatorID int

// QueryID identifies a query within a Pool. IDs are dense: 0..NumQueries-1.
type QueryID int

// Operator is a unit of stream-processing work. Load is the fraction of
// system capacity the operator consumes per time unit (paper: c_j). The same
// operator may belong to many queries; its load is paid once no matter how
// many admitted queries share it.
type Operator struct {
	ID      OperatorID
	Load    float64
	Queries []QueryID // owners, sorted ascending
}

// Degree returns the sharing degree of the operator: the number of queries
// that contain it.
func (o Operator) Degree() int { return len(o.Queries) }

// Query is a user's continuous query: an identifier, the set of operators it
// comprises, the submitted bid, and the user's private valuation. For
// truthful users Bid == Value; the gametheory and lying-workload packages set
// them apart.
type Query struct {
	ID        QueryID
	Operators []OperatorID // sorted ascending
	Bid       float64
	Value     float64
	// User identifies the submitting principal. Distinct queries may share a
	// user (sybil attacks submit extra queries under fresh user IDs but the
	// attacker pays for all of them).
	User int
}

// Pool is the incidence structure between queries and operators that the
// DSMS presents to the admission mechanism (paper Figure 2). A Pool is
// immutable once built; mechanisms never mutate it.
type Pool struct {
	ops     []Operator
	queries []Query
}

// Builder incrementally assembles a Pool.
type Builder struct {
	ops     []Operator
	queries []Query
	err     error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddOperator registers an operator with the given load and returns its ID.
// Load must be positive.
func (b *Builder) AddOperator(load float64) OperatorID {
	if load <= 0 && b.err == nil {
		b.err = fmt.Errorf("query: operator load must be positive, got %g", load)
	}
	id := OperatorID(len(b.ops))
	b.ops = append(b.ops, Operator{ID: id, Load: load})
	return id
}

// AddQuery registers a query owning the given operators with the given bid.
// The user's valuation is set equal to the bid (truthful); use AddQueryValued
// to separate them.
func (b *Builder) AddQuery(bid float64, ops ...OperatorID) QueryID {
	return b.AddQueryValued(bid, bid, 0, ops...)
}

// AddQueryValued registers a query with an explicit bid, private valuation
// and user identifier.
func (b *Builder) AddQueryValued(bid, value float64, user int, ops ...OperatorID) QueryID {
	id := QueryID(len(b.queries))
	if bid < 0 && b.err == nil {
		b.err = fmt.Errorf("query: bid must be non-negative, got %g", bid)
	}
	if len(ops) == 0 && b.err == nil {
		b.err = fmt.Errorf("query: query %d has no operators", id)
	}
	seen := make(map[OperatorID]bool, len(ops))
	sorted := make([]OperatorID, 0, len(ops))
	for _, op := range ops {
		if int(op) < 0 || int(op) >= len(b.ops) {
			if b.err == nil {
				b.err = fmt.Errorf("query: query %d references unknown operator %d", id, op)
			}
			continue
		}
		if seen[op] {
			continue
		}
		seen[op] = true
		sorted = append(sorted, op)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	b.queries = append(b.queries, Query{ID: id, Operators: sorted, Bid: bid, Value: value, User: user})
	for _, op := range sorted {
		b.ops[op].Queries = append(b.ops[op].Queries, id)
	}
	return id
}

// Build finalizes the Pool. It returns an error if any registration was
// invalid.
func (b *Builder) Build() (*Pool, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.queries) == 0 {
		return nil, errors.New("query: pool has no queries")
	}
	return &Pool{ops: b.ops, queries: b.queries}, nil
}

// MustBuild is Build that panics on error, for fixtures and tests.
func (b *Builder) MustBuild() *Pool {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// NumQueries returns the number of queries in the pool.
func (p *Pool) NumQueries() int { return len(p.queries) }

// NumOperators returns the number of operators in the pool.
func (p *Pool) NumOperators() int { return len(p.ops) }

// Query returns the query with the given ID.
func (p *Pool) Query(id QueryID) Query { return p.queries[id] }

// Operator returns the operator with the given ID.
func (p *Pool) Operator(id OperatorID) Operator { return p.ops[id] }

// Queries returns all queries. The returned slice must not be modified.
func (p *Pool) Queries() []Query { return p.queries }

// Operators returns all operators. The returned slice must not be modified.
func (p *Pool) Operators() []Operator { return p.ops }

// Bid returns query id's bid.
func (p *Pool) Bid(id QueryID) float64 { return p.queries[id].Bid }

// Value returns query id's private valuation.
func (p *Pool) Value(id QueryID) float64 { return p.queries[id].Value }

// TotalLoad returns C_T(i): the sum of the loads of q_i's operators,
// disregarding sharing.
func (p *Pool) TotalLoad(id QueryID) float64 {
	var sum float64
	for _, op := range p.queries[id].Operators {
		sum += p.ops[op].Load
	}
	return sum
}

// FairShareLoad returns C_SF(i): the sum over q_i's operators of
// load / sharing-degree (paper Definition 3). The degree is static: it counts
// all queries in the pool that contain the operator, admitted or not.
func (p *Pool) FairShareLoad(id QueryID) float64 {
	var sum float64
	for _, op := range p.queries[id].Operators {
		sum += p.ops[op].Load / float64(len(p.ops[op].Queries))
	}
	return sum
}

// MaxSharingDegree returns the maximum operator sharing degree in the pool.
func (p *Pool) MaxSharingDegree() int {
	max := 0
	for i := range p.ops {
		if d := p.ops[i].Degree(); d > max {
			max = d
		}
	}
	return max
}

// AggregateLoad returns the load of the union of the given queries'
// operators: each shared operator is counted once. This is the quantity that
// must not exceed server capacity.
func (p *Pool) AggregateLoad(ids []QueryID) float64 {
	used := make([]bool, len(p.ops))
	var sum float64
	for _, id := range ids {
		for _, op := range p.queries[id].Operators {
			if !used[op] {
				used[op] = true
				sum += p.ops[op].Load
			}
		}
	}
	return sum
}

// LoadTracker incrementally accounts for the aggregate load of a growing
// winner set, exposing the remaining load C_R of candidate queries given the
// operators already provisioned. It is the order-dependent companion to
// AggregateLoad used by every greedy mechanism's capacity check.
type LoadTracker struct {
	pool *Pool
	used []bool
	load float64
}

// NewLoadTracker returns a tracker with no queries admitted.
func NewLoadTracker(p *Pool) *LoadTracker {
	return &LoadTracker{pool: p, used: make([]bool, len(p.ops))}
}

// Load returns the aggregate load of everything admitted so far.
func (t *LoadTracker) Load() float64 { return t.load }

// Remaining returns C_R(id): the additional load admitting id would add,
// i.e. the sum of loads of its operators not already provisioned.
func (t *LoadTracker) Remaining(id QueryID) float64 {
	var sum float64
	for _, op := range t.pool.queries[id].Operators {
		if !t.used[op] {
			sum += t.pool.ops[op].Load
		}
	}
	return sum
}

// Provisioned reports whether operator op is already provisioned by an
// admitted query.
func (t *LoadTracker) Provisioned(op OperatorID) bool { return t.used[op] }

// Admit marks id's operators as provisioned and returns the load added.
func (t *LoadTracker) Admit(id QueryID) float64 {
	var added float64
	for _, op := range t.pool.queries[id].Operators {
		if !t.used[op] {
			t.used[op] = true
			added += t.pool.ops[op].Load
		}
	}
	t.load += added
	return added
}

// Release un-provisions the given operators and subtracts their loads —
// the undo of one Admit, for backtracking searches. Callers must pass
// exactly the operators that Admit freshly provisioned.
func (t *LoadTracker) Release(ops []OperatorID) {
	for _, op := range ops {
		if t.used[op] {
			t.used[op] = false
			t.load -= t.pool.ops[op].Load
		}
	}
}

// Reset returns the tracker to the empty state without reallocating.
func (t *LoadTracker) Reset() {
	for i := range t.used {
		t.used[i] = false
	}
	t.load = 0
}

// ExtendedBuilder returns a Builder preloaded with this pool's operators and
// queries (same IDs, same order). Callers append further queries — e.g. the
// fake identities of a sybil attack — and Build a new, larger pool; the
// original pool is untouched.
func (p *Pool) ExtendedBuilder() *Builder {
	b := NewBuilder()
	for _, op := range p.ops {
		b.AddOperator(op.Load)
	}
	for _, q := range p.queries {
		b.AddQueryValued(q.Bid, q.Value, q.User, q.Operators...)
	}
	return b
}

// WithBid returns a copy of the pool in which query id bids bid; the
// query's private valuation and everything else are unchanged. It is the
// deviation primitive of the strategyproofness harness.
func (p *Pool) WithBid(id QueryID, bid float64) *Pool {
	b := NewBuilder()
	for _, op := range p.ops {
		b.AddOperator(op.Load)
	}
	for _, q := range p.queries {
		qbid := q.Bid
		if q.ID == id {
			qbid = bid
		}
		b.AddQueryValued(qbid, q.Value, q.User, q.Operators...)
	}
	return b.MustBuild()
}

// WithOperators returns a copy of the pool in which query id declares the
// given operator subset instead of its true operators (operator-lying
// deviations for full strategyproofness checks).
func (p *Pool) WithOperators(id QueryID, ops []OperatorID) *Pool {
	b := NewBuilder()
	for _, op := range p.ops {
		b.AddOperator(op.Load)
	}
	for _, q := range p.queries {
		use := q.Operators
		if q.ID == id {
			use = ops
		}
		b.AddQueryValued(q.Bid, q.Value, q.User, use...)
	}
	return b.MustBuild()
}

// Example1 builds the paper's running example (Figures 1-2): three queries
// over five operators with capacity 10. Operator A (load 4) is shared by q1
// and q2; B (1) belongs to q1; C (2) to q2; D and E (loads summing to 10) to
// q3. Bids are 55, 72 and 100, giving the priorities worked through in
// Sections IV-A..IV-C. It returns the pool and the capacity.
func Example1() (*Pool, float64) {
	b := NewBuilder()
	opA := b.AddOperator(4)
	opB := b.AddOperator(1)
	opC := b.AddOperator(2)
	opD := b.AddOperator(6)
	opE := b.AddOperator(4)
	b.AddQueryValued(55, 55, 1, opA, opB)   // q1: C_T=5, C_SF=3, Pr_T=11, Pr_SF=18.33
	b.AddQueryValued(72, 72, 2, opA, opC)   // q2: C_T=6, C_SF=4, Pr_T=12, Pr_SF=18
	b.AddQueryValued(100, 100, 3, opD, opE) // q3: C_T=C_SF=10, Pr=10
	return b.MustBuild(), 10
}
