package query

// OperatorSpec declares one operator of a submitted query in the shared
// submission vocabulary used by every admission path (the cloud center's
// period auctions and the subscription manager's per-category auctions
// alike). Key identifies the operator globally: two submissions declaring
// the same Key share one physical operator, and its load is paid once —
// the paper's shared processing. Load is the operator's estimated fraction
// of server capacity (c_j); measured loads from the execution layer can be
// fed back through it between periods.
//
// The cloud and subscription packages alias this type, so a spec list
// compiled once (e.g. by the CQL compiler) submits unchanged to either
// admission path.
type OperatorSpec struct {
	Key  string  `json:"key"`
	Load float64 `json:"load"`
}
