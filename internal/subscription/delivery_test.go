package subscription

import (
	"sync"
	"testing"

	"repro/internal/stream"
)

func batchOf(ts ...int64) []stream.Tuple {
	out := make([]stream.Tuple, len(ts))
	for i, t := range ts {
		out[i] = stream.Tuple{Ts: t, Vals: []any{t}}
	}
	return out
}

func collect(s *Sub) []int64 {
	var got []int64
	for b := range s.C() {
		for _, t := range b {
			got = append(got, t.Ts)
		}
	}
	return got
}

func TestHubDeliversAndReplays(t *testing.T) {
	h := NewHub(100)
	live := h.Subscribe("q", 8)
	h.Publish("q", batchOf(1, 2))
	h.Publish("q", batchOf(3))
	// A late subscriber sees the backlog replayed before anything new.
	late := h.Subscribe("q", 8)
	h.Publish("q", batchOf(4))
	h.CloseQuery("q")

	if got := collect(live); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("live subscriber got %v, want [1 2 3 4]", got)
	}
	if got := collect(late); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("late subscriber got %v, want replay then live: [1 2 3 4]", got)
	}
	// After CloseQuery the ring survives for still-later subscribers...
	post := h.Subscribe("q", 8)
	if got := collect(post); len(got) != 4 {
		t.Fatalf("post-close subscriber got %v, want full 4-tuple backlog", got)
	}
	// ...but new publishes are dropped.
	h.Publish("q", batchOf(5))
	if got := collect(h.Subscribe("q", 8)); len(got) != 4 {
		t.Fatalf("publish after CloseQuery leaked: %v", got)
	}
}

func TestHubPublishCopiesBatch(t *testing.T) {
	h := NewHub(10)
	s := h.Subscribe("q", 8)
	batch := batchOf(1, 2, 3)
	h.Publish("q", batch)
	// Caller keeps ownership: clobbering the slice after Publish must not
	// corrupt what subscribers or the replay ring see.
	for i := range batch {
		batch[i] = stream.Tuple{Ts: -9}
	}
	h.CloseQuery("q")
	if got := collect(s); len(got) != 3 || got[0] != 1 {
		t.Fatalf("subscriber saw caller's mutation: %v", got)
	}
}

func TestHubBacklogRingBounded(t *testing.T) {
	h := NewHub(3)
	for i := int64(1); i <= 10; i++ {
		h.Publish("q", batchOf(i))
	}
	h.CloseQuery("q")
	got := collect(h.Subscribe("q", 8))
	if len(got) != 3 || got[0] != 8 || got[2] != 10 {
		t.Fatalf("replay ring = %v, want most recent [8 9 10]", got)
	}
}

// TestHubRingWraparoundMidBatch exercises the replay ring across batch
// boundaries: batches that straddle the backlog limit trim mid-batch, a
// single batch larger than the whole backlog keeps only its newest suffix,
// and a late subscriber always receives exactly the newest window in order.
// A slow live subscriber riding through the wraparound loses exactly the
// batches that drop-oldest discarded, and its counter says so.
func TestHubRingWraparoundMidBatch(t *testing.T) {
	h := NewHub(5)
	slow := h.Subscribe("q", 1)

	// 3 + 4 tuples: the second batch wraps mid-batch; ring keeps [3..7].
	h.Publish("q", batchOf(1, 2, 3))
	h.Publish("q", batchOf(4, 5, 6, 7))
	late := h.Subscribe("q", 8)
	if got := drainReady(late); len(got) != 5 || got[0] != 3 || got[4] != 7 {
		t.Fatalf("late subscriber after mid-batch wrap got %v, want [3 4 5 6 7]", got)
	}

	// One batch larger than the whole backlog: only its newest suffix stays.
	h.Publish("q", batchOf(8, 9, 10, 11, 12, 13, 14, 15))
	later := h.Subscribe("q", 8)
	if got := drainReady(later); len(got) != 5 || got[0] != 11 || got[4] != 15 {
		t.Fatalf("late subscriber after oversized batch got %v, want [11 12 13 14 15]", got)
	}

	h.CloseQuery("q")
	// The slow subscriber (depth 1) kept only the newest publish; the two
	// displaced batches are counted, not hidden.
	if got := collect(slow); len(got) != 8 || got[0] != 8 || got[7] != 15 {
		t.Fatalf("slow subscriber got %v, want the newest batch [8..15]", got)
	}
	if d := slow.Dropped(); d != 2 {
		t.Fatalf("slow.Dropped = %d, want 2 (first two publishes displaced)", d)
	}
}

// drainReady reads everything already buffered on a subscription without
// waiting for close.
func drainReady(s *Sub) []int64 {
	var got []int64
	for {
		select {
		case b, ok := <-s.C():
			if !ok {
				return got
			}
			for _, t := range b {
				got = append(got, t.Ts)
			}
		default:
			return got
		}
	}
}

func TestHubSlowSubscriberDropsOldest(t *testing.T) {
	h := NewHub(0)
	s := h.Subscribe("q", 2)
	for i := int64(1); i <= 5; i++ {
		h.Publish("q", batchOf(i))
	}
	h.CloseQuery("q")
	got := collect(s)
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("slow subscriber got %v, want newest [4 5]", got)
	}
	if d := s.Dropped(); d != 3 {
		t.Fatalf("Dropped = %d, want 3", d)
	}
}

func TestHubCancelAndConcurrency(t *testing.T) {
	h := NewHub(0)
	s := h.Subscribe("q", 4)
	s.Cancel()
	s.Cancel() // idempotent
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Publish("q", batchOf(int64(g*1000+i)))
			}
		}(g)
	}
	subs := make([]*Sub, 8)
	for i := range subs {
		subs[i] = h.Subscribe("q", 4)
	}
	wg.Wait()
	h.Close()
	for _, s := range subs {
		collect(s) // must terminate: Close closed every channel
	}
	// Publishing and subscribing after Close are safe no-ops.
	h.Publish("q", batchOf(1))
	if got := collect(h.Subscribe("q", 4)); got != nil {
		t.Fatalf("subscribe after Close delivered %v", got)
	}
}
