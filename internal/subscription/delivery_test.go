package subscription

import (
	"sync"
	"testing"

	"repro/internal/stream"
)

func batchOf(ts ...int64) []stream.Tuple {
	out := make([]stream.Tuple, len(ts))
	for i, t := range ts {
		out[i] = stream.Tuple{Ts: t, Vals: []any{t}}
	}
	return out
}

func collect(s *Sub) []int64 {
	var got []int64
	for b := range s.C() {
		for _, t := range b {
			got = append(got, t.Ts)
		}
	}
	return got
}

func TestHubDeliversAndReplays(t *testing.T) {
	h := NewHub(100)
	live := h.Subscribe("q", 8)
	h.Publish("q", batchOf(1, 2))
	h.Publish("q", batchOf(3))
	// A late subscriber sees the backlog replayed before anything new.
	late := h.Subscribe("q", 8)
	h.Publish("q", batchOf(4))
	h.CloseQuery("q")

	if got := collect(live); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("live subscriber got %v, want [1 2 3 4]", got)
	}
	if got := collect(late); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("late subscriber got %v, want replay then live: [1 2 3 4]", got)
	}
	// After CloseQuery the ring survives for still-later subscribers...
	post := h.Subscribe("q", 8)
	if got := collect(post); len(got) != 4 {
		t.Fatalf("post-close subscriber got %v, want full 4-tuple backlog", got)
	}
	// ...but new publishes are dropped.
	h.Publish("q", batchOf(5))
	if got := collect(h.Subscribe("q", 8)); len(got) != 4 {
		t.Fatalf("publish after CloseQuery leaked: %v", got)
	}
}

func TestHubPublishCopiesBatch(t *testing.T) {
	h := NewHub(10)
	s := h.Subscribe("q", 8)
	batch := batchOf(1, 2, 3)
	h.Publish("q", batch)
	// Caller keeps ownership: clobbering the slice after Publish must not
	// corrupt what subscribers or the replay ring see.
	for i := range batch {
		batch[i] = stream.Tuple{Ts: -9}
	}
	h.CloseQuery("q")
	if got := collect(s); len(got) != 3 || got[0] != 1 {
		t.Fatalf("subscriber saw caller's mutation: %v", got)
	}
}

func TestHubBacklogRingBounded(t *testing.T) {
	h := NewHub(3)
	for i := int64(1); i <= 10; i++ {
		h.Publish("q", batchOf(i))
	}
	h.CloseQuery("q")
	got := collect(h.Subscribe("q", 8))
	if len(got) != 3 || got[0] != 8 || got[2] != 10 {
		t.Fatalf("replay ring = %v, want most recent [8 9 10]", got)
	}
}

func TestHubSlowSubscriberDropsOldest(t *testing.T) {
	h := NewHub(0)
	s := h.Subscribe("q", 2)
	for i := int64(1); i <= 5; i++ {
		h.Publish("q", batchOf(i))
	}
	h.CloseQuery("q")
	got := collect(s)
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("slow subscriber got %v, want newest [4 5]", got)
	}
	if d := s.Dropped(); d != 3 {
		t.Fatalf("Dropped = %d, want 3", d)
	}
}

func TestHubCancelAndConcurrency(t *testing.T) {
	h := NewHub(0)
	s := h.Subscribe("q", 4)
	s.Cancel()
	s.Cancel() // idempotent
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Publish("q", batchOf(int64(g*1000+i)))
			}
		}(g)
	}
	subs := make([]*Sub, 8)
	for i := range subs {
		subs[i] = h.Subscribe("q", 4)
	}
	wg.Wait()
	h.Close()
	for _, s := range subs {
		collect(s) // must terminate: Close closed every channel
	}
	// Publishing and subscribing after Close are safe no-ops.
	h.Publish("q", batchOf(1))
	if got := collect(h.Subscribe("q", 4)); got != nil {
		t.Fatalf("subscribe after Close delivered %v", got)
	}
}
