package subscription

import (
	"sync"

	"repro/internal/stream"
)

// Hub fans executor result batches out to per-query subscribers — the
// delivery half of a subscription: the auction decides who runs, the hub
// decides who hears. Executor taps publish into it; service-plane result
// streams subscribe out of it. It is safe for concurrent use from any mix
// of publishers and subscribers.
//
// Delivery is lossy by design, in the same spirit as load shedding: a
// subscriber that cannot keep up loses its OLDEST undelivered batches
// (newest results are the valuable ones in a monitoring stream), and every
// loss is counted on the subscription rather than hidden. Publishing never
// blocks on a slow subscriber, so backpressure can never reach the
// executor's sink taps.
type Hub struct {
	backlog int

	mu      sync.Mutex
	queries map[string]*hubQuery
	closed  bool
}

// hubQuery is one query's fan-out state: the replay ring and live subs.
type hubQuery struct {
	// ring holds the most recent published tuples (bounded by Hub.backlog),
	// replayed to new subscribers so a tenant that connects a moment after
	// admission still sees results published before its GET arrived.
	ring []stream.Tuple
	subs map[*Sub]bool
	done bool
}

// NewHub creates a hub retaining up to backlog tuples per query for replay
// to late subscribers; backlog <= 0 disables replay.
func NewHub(backlog int) *Hub {
	if backlog < 0 {
		backlog = 0
	}
	return &Hub{backlog: backlog, queries: make(map[string]*hubQuery)}
}

// Publish delivers one result batch for a query. The hub copies the tuples
// it retains, so the caller keeps ownership of the batch slice (an executor
// tap may recycle it via engine.PutBatch immediately after Publish
// returns). Tuple values are shared, never mutated.
func (h *Hub) Publish(query string, batch []stream.Tuple) {
	if len(batch) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	q := h.query(query)
	if q.done {
		return
	}
	if h.backlog > 0 {
		q.ring = append(q.ring, batch...)
		if over := len(q.ring) - h.backlog; over > 0 {
			q.ring = append(q.ring[:0], q.ring[over:]...)
		}
	}
	if len(q.subs) == 0 {
		return
	}
	// One copy shared by all subscribers: batches are read-only downstream.
	out := append([]stream.Tuple(nil), batch...)
	for s := range q.subs {
		s.offer(out)
	}
}

// Subscribe opens a result stream for a query, replaying the retained
// backlog first. buf is the subscriber's channel depth in batches; <= 0
// gets a small default. Subscribing to a finished query yields a channel
// that delivers the backlog and closes.
func (h *Hub) Subscribe(query string, buf int) *Sub {
	if buf <= 0 {
		buf = 8
	}
	s := &Sub{hub: h, query: query, ch: make(chan []stream.Tuple, buf)}
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.query(query)
	if replay := q.ring; len(replay) > 0 {
		s.offer(append([]stream.Tuple(nil), replay...))
	}
	if q.done || h.closed {
		close(s.ch)
		s.done = true
		return s
	}
	q.subs[s] = true
	return s
}

// CloseQuery ends a query's result stream — the plan was evicted or the
// daemon is retiring the sink — closing every subscriber's channel after
// its buffered batches drain. The replay ring is kept, so late subscribers
// still receive the final results; later publishes are dropped.
func (h *Hub) CloseQuery(query string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.query(query)
	q.done = true
	for s := range q.subs {
		close(s.ch)
		s.done = true
	}
	q.subs = make(map[*Sub]bool)
}

// Close shuts the hub down, closing every subscriber of every query.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, q := range h.queries {
		for s := range q.subs {
			close(s.ch)
			s.done = true
		}
		q.subs = make(map[*Sub]bool)
	}
}

// query returns (creating if needed) a query's fan-out state; callers hold
// mu.
func (h *Hub) query(name string) *hubQuery {
	q := h.queries[name]
	if q == nil {
		q = &hubQuery{subs: make(map[*Sub]bool)}
		h.queries[name] = q
	}
	return q
}

// Sub is one subscriber's view of a query's result stream.
type Sub struct {
	hub     *Hub
	query   string
	ch      chan []stream.Tuple
	done    bool
	dropped int64
}

// C returns the subscriber's batch channel. It closes when the query or the
// hub closes, or after Cancel.
func (s *Sub) C() <-chan []stream.Tuple { return s.ch }

// Dropped returns how many batches this subscriber lost to backpressure.
func (s *Sub) Dropped() int64 {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.dropped
}

// Cancel detaches the subscriber and closes its channel; safe to call at
// most once per Sub, and a no-op after the query or hub closed it.
func (s *Sub) Cancel() {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	if s.done {
		return
	}
	if q := s.hub.queries[s.query]; q != nil {
		delete(q.subs, s)
	}
	close(s.ch)
	s.done = true
}

// offer enqueues a batch without ever blocking: when the subscriber's
// buffer is full the oldest undelivered batch is discarded (and counted) to
// make room. Callers hold hub.mu, which also serializes offers, so the
// drop-one-retry loop cannot race another producer.
func (s *Sub) offer(batch []stream.Tuple) {
	for {
		select {
		case s.ch <- batch:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped++
		default:
		}
	}
}
