package subscription

import (
	"fmt"
	"testing"

	"repro/internal/auction"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(auction.NewCAT(), 20, EqualShares(Day, Week))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func req(user int, name string, bid float64, cat Category, load float64) Request {
	return Request{
		User: user, Name: name, Bid: bid, Category: cat,
		Operators: []OperatorSpec{{Key: name + "-op", Load: load}},
	}
}

func TestSharesValidation(t *testing.T) {
	if _, err := NewManager(auction.NewCAT(), 10, Shares{}); err == nil {
		t.Error("want error for empty shares")
	}
	if _, err := NewManager(auction.NewCAT(), 10, Shares{Day: 0.4}); err == nil {
		t.Error("want error for shares not summing to 1")
	}
	if _, err := NewManager(auction.NewCAT(), 10, Shares{Day: 1.5, Week: -0.5}); err == nil {
		t.Error("want error for negative share")
	}
	if _, err := NewManager(auction.NewCAT(), 0, EqualShares(Day)); err == nil {
		t.Error("want error for zero capacity")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t)
	if err := m.Submit(req(1, "q", 5, Month, 1)); err == nil {
		t.Error("want error for unoffered category")
	}
	if err := m.Submit(Request{User: 1, Name: "q", Bid: 1, Category: Day}); err == nil {
		t.Error("want error for operator-less request")
	}
}

func TestCategoryAuctionsIndependent(t *testing.T) {
	m := newManager(t)
	// Day category (capacity 10): two queries, only one fits.
	check(t, m.Submit(req(1, "d1", 50, Day, 8)))
	check(t, m.Submit(req(2, "d2", 20, Day, 8)))
	// Week category (capacity 10): both fit.
	check(t, m.Submit(req(3, "w1", 30, Week, 4)))
	check(t, m.Submit(req(4, "w2", 10, Week, 4)))
	report, err := m.RunDay()
	if err != nil {
		t.Fatal(err)
	}
	day := report.PerCategory[Day]
	week := report.PerCategory[Week]
	if day == nil || week == nil {
		t.Fatal("both categories should have auctions")
	}
	if len(day.Winners) != 1 {
		t.Errorf("day winners = %v, want 1", day.Winners)
	}
	if len(week.Winners) != 2 {
		t.Errorf("week winners = %v, want 2", week.Winners)
	}
}

func TestExpiryReclaimsCapacity(t *testing.T) {
	m := newManager(t)
	check(t, m.Submit(req(1, "d1", 50, Day, 8)))
	check(t, m.Submit(req(2, "w1", 50, Week, 8)))
	r0, err := m.RunDay()
	if err != nil {
		t.Fatal(err)
	}
	if len(r0.Admitted) != 2 {
		t.Fatalf("day 0 admitted %d, want 2", len(r0.Admitted))
	}
	if r0.FreeCapacity != 20 {
		t.Errorf("day 0 free capacity = %v, want 20", r0.FreeCapacity)
	}
	// Day 1: the daily subscription expired, the weekly one persists.
	r1, err := m.RunDay()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Expired) != 1 || r1.Expired[0].Request.Name != "d1" {
		t.Errorf("day 1 expired = %+v, want d1", r1.Expired)
	}
	if r1.FreeCapacity != 12 { // 20 − weekly load 8
		t.Errorf("day 1 free capacity = %v, want 12", r1.FreeCapacity)
	}
	if got := len(m.ActiveSubscriptions()); got != 1 {
		t.Errorf("active = %d, want 1 (the weekly)", got)
	}
	// Day 7: the weekly expires too.
	for d := 2; d <= 7; d++ {
		if _, err := m.RunDay(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.ActiveSubscriptions()); got != 0 {
		t.Errorf("active after expiry = %d, want 0", got)
	}
}

func TestRevenueAccumulates(t *testing.T) {
	m := newManager(t)
	// Competition within the day category so payments are positive.
	check(t, m.Submit(req(1, "a", 50, Day, 6)))
	check(t, m.Submit(req(2, "b", 30, Day, 6)))
	r, err := m.RunDay()
	if err != nil {
		t.Fatal(err)
	}
	if r.Revenue <= 0 {
		t.Errorf("revenue = %v, want positive with competition", r.Revenue)
	}
	if m.Revenue() != r.Revenue {
		t.Errorf("manager revenue = %v, report %v", m.Revenue(), r.Revenue)
	}
	if m.Day() != 1 {
		t.Errorf("Day() = %d, want 1", m.Day())
	}
}

func TestCategoryString(t *testing.T) {
	if Day.String() != "day" || Week.String() != "week" || Month.String() != "month" || Year.String() != "year" {
		t.Error("standard category names wrong")
	}
	if Category(3).String() != "3d" {
		t.Errorf("custom category = %q, want 3d", Category(3).String())
	}
}

func TestSharedOperatorsWithinCategory(t *testing.T) {
	m := newManager(t)
	shared := []OperatorSpec{{Key: "common", Load: 9}}
	check(t, m.Submit(Request{User: 1, Name: "s1", Bid: 40, Category: Day, Operators: shared}))
	check(t, m.Submit(Request{User: 2, Name: "s2", Bid: 35, Category: Day, Operators: shared}))
	report, err := m.RunDay()
	if err != nil {
		t.Fatal(err)
	}
	// Both fit in the day category's capacity 10 because the operator is
	// shared (aggregate load 9).
	if got := len(report.Admitted); got != 2 {
		t.Errorf("admitted = %d, want 2 via sharing", got)
	}
}

// TestPeriodShoppingIsProfitable demonstrates the strategic behaviour the
// paper flags as future work (Section VII): although each category auction
// is bid-strategyproof, a user who wants one day can instead bid in an
// uncontested longer category and get a week for less than the day price —
// cross-category truthfulness does NOT compose.
func TestPeriodShoppingIsProfitable(t *testing.T) {
	runDay := func(shopper Request) (payment float64, admitted bool) {
		m, err := NewManager(auction.NewCAT(), 20, EqualShares(Day, Week))
		if err != nil {
			t.Fatal(err)
		}
		// The day category is crowded: three competitors for capacity 10.
		check(t, m.Submit(req(1, "c1", 60, Day, 6)))
		check(t, m.Submit(req(2, "c2", 50, Day, 6)))
		check(t, m.Submit(req(3, "c3", 40, Day, 6)))
		check(t, m.Submit(shopper))
		report, err := m.RunDay()
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range report.Admitted {
			if a.Request.Name == shopper.Name {
				return a.Payment, true
			}
		}
		return 0, false
	}

	// Honest: she wants one day and bids in the day category.
	honestPay, honestIn := runDay(req(9, "shopper", 45, Day, 6))
	// Strategic: same query submitted to the empty week category.
	shopPay, shopIn := runDay(req(9, "shopper", 45, Week, 6))

	if !shopIn {
		t.Fatal("shopper must win the uncontested week category")
	}
	if shopPay != 0 {
		t.Fatalf("uncontested week price = %v, want 0", shopPay)
	}
	// Honestly she either loses the crowded day auction or pays a positive
	// day price; either way the week shop strictly improves her payoff.
	if honestIn && honestPay <= shopPay {
		t.Fatalf("period shopping not profitable: honest pay %v vs shopped %v", honestPay, shopPay)
	}
}

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func ExampleEqualShares() {
	s := EqualShares(Day, Week)
	fmt.Println(s[Day], s[Week])
	// Output: 0.5 0.5
}
