// Package subscription implements the paper's Section VII extension: users
// want different minimum subscription lengths (day / week / month / year).
// System capacity is partitioned across the categories; each category runs
// its own independent strategyproof auction; and each day the capacity of
// expiring subscriptions is reclaimed and re-partitioned. Because every
// per-category auction is bid-strategyproof, the composed scheme remains
// bid-strategyproof (per-category — the cross-category period-shopping
// behaviour the paper flags is future work and is surfaced by this
// package's reports rather than prevented).
package subscription

import (
	"fmt"
	"sort"

	"repro/internal/auction"
	"repro/internal/query"
)

// Category is a subscription length in days.
type Category int

// The paper's example categories.
const (
	Day   Category = 1
	Week  Category = 7
	Month Category = 30
	Year  Category = 365
)

// String renders the category.
func (c Category) String() string {
	switch c {
	case Day:
		return "day"
	case Week:
		return "week"
	case Month:
		return "month"
	case Year:
		return "year"
	default:
		return fmt.Sprintf("%dd", int(c))
	}
}

// Request is a query wanting a subscription of the given length.
type Request struct {
	User     int
	Name     string
	Bid      float64
	Category Category
	// Operators uses the cloud package's convention: share-by-key.
	Operators []OperatorSpec
}

// OperatorSpec is the shared submission vocabulary (see query.OperatorSpec):
// the same alias cloud.Submission uses, so a request's operator list moves
// between the two admission paths without conversion.
type OperatorSpec = query.OperatorSpec

// Active is a running subscription.
type Active struct {
	Request Request
	Payment float64
	// ExpiresOn is the day index on which the subscription's capacity is
	// reclaimed.
	ExpiresOn int
	// Load is the subscription's total operator load (before sharing); used
	// for capacity accounting when it expires.
	Load float64
}

// Shares maps each category to its fraction of (currently free) capacity.
// Fractions must be positive and sum to 1.
type Shares map[Category]float64

// EqualShares splits capacity evenly over the given categories.
func EqualShares(cats ...Category) Shares {
	s := make(Shares, len(cats))
	for _, c := range cats {
		s[c] = 1 / float64(len(cats))
	}
	return s
}

// validate checks the share map.
func (s Shares) validate() error {
	if len(s) == 0 {
		return fmt.Errorf("subscription: no categories")
	}
	total := 0.0
	for c, f := range s {
		if f <= 0 {
			return fmt.Errorf("subscription: category %s has non-positive share %g", c, f)
		}
		total += f
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("subscription: shares sum to %g, want 1", total)
	}
	return nil
}

// Manager runs the daily cycle: partition free capacity, auction each
// category independently, track expirations and reclaim capacity.
type Manager struct {
	mech     auction.Mechanism
	capacity float64
	shares   Shares

	day     int
	active  []Active
	pending map[Category][]Request
	revenue float64
	// Shared-operator accounting: active subscriptions naming the same
	// operator key hold it jointly, so its load is committed once. opRef
	// counts active holders per key; opLoad remembers each key's load.
	opRef  map[string]int
	opLoad map[string]float64
}

// NewManager creates a manager using the given (strategyproof) mechanism
// for every category auction.
func NewManager(mech auction.Mechanism, capacity float64, shares Shares) (*Manager, error) {
	if err := shares.validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("subscription: capacity must be positive, got %g", capacity)
	}
	return &Manager{
		mech:     mech,
		capacity: capacity,
		shares:   shares,
		pending:  make(map[Category][]Request),
		opRef:    make(map[string]int),
		opLoad:   make(map[string]float64),
	}, nil
}

// Submit queues a request for the next daily auction of its category.
func (m *Manager) Submit(r Request) error {
	if _, ok := m.shares[r.Category]; !ok {
		return fmt.Errorf("subscription: category %s not offered", r.Category)
	}
	if r.Bid < 0 || len(r.Operators) == 0 {
		return fmt.Errorf("subscription: invalid request %q", r.Name)
	}
	m.pending[r.Category] = append(m.pending[r.Category], r)
	return nil
}

// DayReport summarizes one day's auctions.
type DayReport struct {
	Day          int
	FreeCapacity float64
	// PerCategory maps category to the auction outcome (nil when the
	// category had no requests).
	PerCategory map[Category]*auction.Outcome
	Admitted    []Active
	Expired     []Active
	Revenue     float64
}

// RunDay executes the paper's iteration: reclaim expiring subscriptions,
// partition the free capacity across categories, run one auction per
// category over its pending requests, and activate the winners.
func (m *Manager) RunDay() (*DayReport, error) {
	report := &DayReport{Day: m.day, PerCategory: make(map[Category]*auction.Outcome)}

	// Reclaim expired subscriptions, releasing their operator holds.
	kept := m.active[:0]
	for _, a := range m.active {
		if a.ExpiresOn <= m.day {
			report.Expired = append(report.Expired, a)
			for _, op := range a.Request.Operators {
				if m.opRef[op.Key]--; m.opRef[op.Key] <= 0 {
					delete(m.opRef, op.Key)
					delete(m.opLoad, op.Key)
				}
			}
		} else {
			kept = append(kept, a)
		}
	}
	m.active = kept

	free := m.capacity - m.CommittedLoad()
	if free < 0 {
		free = 0
	}
	report.FreeCapacity = free

	// Deterministic category order.
	cats := make([]Category, 0, len(m.shares))
	for c := range m.shares {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })

	for _, cat := range cats {
		reqs := m.pending[cat]
		if len(reqs) == 0 {
			continue
		}
		pool, err := buildPool(reqs)
		if err != nil {
			return nil, err
		}
		catCapacity := free * m.shares[cat]
		out := m.mech.Run(pool, catCapacity)
		if err := out.Validate(); err != nil {
			return nil, err
		}
		report.PerCategory[cat] = out
		for i, r := range reqs {
			id := query.QueryID(i)
			if !out.IsWinner(id) {
				continue
			}
			act := Active{
				Request:   r,
				Payment:   out.Payment(id),
				ExpiresOn: m.day + int(r.Category),
				Load:      pool.TotalLoad(id),
			}
			m.active = append(m.active, act)
			for _, op := range r.Operators {
				if m.opRef[op.Key] == 0 {
					m.opLoad[op.Key] = op.Load
				}
				m.opRef[op.Key]++
			}
			report.Admitted = append(report.Admitted, act)
			report.Revenue += act.Payment
		}
		m.pending[cat] = nil
	}
	m.revenue += report.Revenue
	m.day++
	return report, nil
}

// buildPool assembles a category's auction pool, sharing operators by key
// within the category.
func buildPool(reqs []Request) (*query.Pool, error) {
	b := query.NewBuilder()
	ids := make(map[string]query.OperatorID)
	for _, r := range reqs {
		ops := make([]query.OperatorID, 0, len(r.Operators))
		for _, spec := range r.Operators {
			id, ok := ids[spec.Key]
			if !ok {
				id = b.AddOperator(spec.Load)
				ids[spec.Key] = id
			}
			ops = append(ops, id)
		}
		b.AddQueryValued(r.Bid, r.Bid, r.User, ops...)
	}
	return b.Build()
}

// Active returns the currently-running subscriptions.
func (m *Manager) ActiveSubscriptions() []Active {
	return append([]Active(nil), m.active...)
}

// CommittedLoad returns the aggregate load held by active subscriptions,
// counting each shared operator once.
func (m *Manager) CommittedLoad() float64 {
	var sum float64
	for key := range m.opRef {
		sum += m.opLoad[key]
	}
	return sum
}

// Revenue returns total revenue across all days.
func (m *Manager) Revenue() float64 { return m.revenue }

// Day returns the next day index.
func (m *Manager) Day() int { return m.day }
