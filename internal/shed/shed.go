// Package shed implements Aurora-style load shedding for the executor
// layer: when the measured input load exceeds what the server can schedule,
// it decides which admitted queries to drop tuples from, and at what ratio,
// so that overload degrades the cheapest QoS utility first instead of
// backing every source up behind the slowest operator.
//
// The package splits the problem the way the paper's cited substrate does:
//
//   - a Policy ranks queries and turns an excess load into per-query drop
//     ratios. UtilitySlope is the paper-faithful ranking — shed from the
//     query with the smallest utility-per-unit-load slope first, so each
//     unit of reclaimed capacity costs the least delivered utility. Random
//     is the control: the same excess spread uniformly over every query.
//
//   - a Shedder holds the current plan and implements engine.Shedder, the
//     hook all three executors consult at their source-ingress edges. The
//     control loop (cmd/dsmsd) calls Update once per period with the
//     measured loads; executors re-resolve their cached node policies when
//     the plan generation moves.
//
// The dependency arrow stays engine <- qos <- shed: the engine defines only
// the seam, this package supplies the policies built on qos.Graph.
package shed

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/qos"
)

// Query describes one admitted query to the planner.
type Query struct {
	// Name is the query (sink) name, matching the executor's node owners.
	Name string
	// Graph is the query's latency-utility QoS graph.
	Graph *qos.Graph
	// Rate is the measured ingress rate in tuples per tick: the tuples per
	// tick entering the query's most loaded operator.
	Rate float64
	// CostPerTuple is the load (capacity units per tick, the paper's c_j)
	// one ingress tuple costs across the query's operators — the capacity
	// reclaimed by dropping it.
	CostPerTuple float64
}

// sheddable returns the load (capacity units/tick) shedding this query
// entirely would reclaim.
func (q Query) sheddable() float64 { return q.Rate * q.CostPerTuple }

// UtilityPerTuple is the utility weight a dropped tuple costs the query: the
// QoS graph evaluated at zero latency, i.e. the utility a promptly delivered
// result earns. Dividing it by CostPerTuple gives the query's utility slope
// — the loss per unit of reclaimed capacity that UtilitySlope ranks by.
func (q Query) UtilityPerTuple() float64 {
	if q.Graph == nil {
		return 0
	}
	return q.Graph.Utility(0)
}

// Drop is one query's planned shedding.
type Drop struct {
	// Query names the victim.
	Query string
	// Ratio is the fraction of the query's ingress tuples to drop, in [0,1].
	Ratio float64
	// UtilityPerTuple is the estimated utility each dropped tuple costs.
	UtilityPerTuple float64
	// LoadShed is the capacity (units/tick) the drop reclaims.
	LoadShed float64
}

// Policy turns an excess load into per-query drop ratios. Plan must cover
// the excess if the queries' total sheddable load allows it, and never
// return ratios outside [0, 1].
type Policy interface {
	// Name labels the policy (it is the -shed flag value in dsmsd).
	Name() string
	// Plan assigns drop ratios covering excess (capacity units/tick).
	Plan(excess float64, queries []Query) []Drop
}

// UtilitySlope sheds in ascending order of utility slope: the query losing
// the least utility per unit of reclaimed capacity is drained first, fully
// if needed, before the next cheapest is touched — the greedy loss/gain
// ordering of Aurora's load shedder, with the slope taken from each query's
// qos.Graph.
type UtilitySlope struct{}

// Name implements Policy.
func (UtilitySlope) Name() string { return "utility" }

// Plan implements Policy.
func (UtilitySlope) Plan(excess float64, queries []Query) []Drop {
	if excess <= 0 {
		return nil
	}
	order := make([]int, 0, len(queries))
	for i, q := range queries {
		if q.sheddable() > 0 {
			order = append(order, i)
		}
	}
	// slope = utility lost per unit of load shed; cheapest first. Sort is
	// stable so equal slopes shed in caller order, keeping plans and their
	// logs deterministic.
	slope := func(q Query) float64 { return q.UtilityPerTuple() / q.CostPerTuple }
	sort.SliceStable(order, func(a, b int) bool {
		return slope(queries[order[a]]) < slope(queries[order[b]])
	})
	drops := make([]Drop, 0, len(order))
	for _, i := range order {
		q := queries[i]
		take := math.Min(excess, q.sheddable())
		drops = append(drops, Drop{
			Query:           q.Name,
			Ratio:           take / q.sheddable(),
			UtilityPerTuple: q.UtilityPerTuple(),
			LoadShed:        take,
		})
		excess -= take
		if excess <= 1e-12 {
			break
		}
	}
	return drops
}

// Random spreads the excess uniformly: every query drops the same fraction
// of its input, so every tuple in the system is equally likely to be shed
// regardless of what its loss costs. It is the baseline the utility-slope
// policy is measured against.
type Random struct{}

// Name implements Policy.
func (Random) Name() string { return "random" }

// Plan implements Policy.
func (Random) Plan(excess float64, queries []Query) []Drop {
	if excess <= 0 {
		return nil
	}
	total := 0.0
	for _, q := range queries {
		total += q.sheddable()
	}
	if total <= 0 {
		return nil
	}
	ratio := math.Min(1, excess/total)
	drops := make([]Drop, 0, len(queries))
	for _, q := range queries {
		if q.sheddable() <= 0 {
			continue
		}
		drops = append(drops, Drop{
			Query:           q.Name,
			Ratio:           ratio,
			UtilityPerTuple: q.UtilityPerTuple(),
			LoadShed:        ratio * q.sheddable(),
		})
	}
	return drops
}

// Shedder holds the live shed plan and implements engine.Shedder. One
// Shedder serves any number of executors (the sharded executor installs the
// same instance in every shard); NodePolicy is a read-lock lookup and the
// per-edge sampler state lives inside the executors, not here.
type Shedder struct {
	policy Policy
	// headroom scales capacity before the excess is computed: a headroom of
	// 0.9 starts shedding at 90% capacity, keeping slack for load the plan
	// cannot see. 0 means 1 (shed only above full capacity).
	headroom float64

	gen atomic.Uint64

	mu    sync.RWMutex
	plan  map[string]Drop
	drops []Drop
	// weights holds every known query's per-tuple utility, not just the
	// shed victims': overflow drops at the executors happen regardless of
	// the plan (a wedged operator sheds even when the plan is empty), and
	// they must be charged the owners' real utility, not zero.
	weights map[string]float64
}

// Compile-time check: Shedder is installable in every executor.
var _ engine.Shedder = (*Shedder)(nil)

// New returns a shedder applying the given policy with full-capacity
// headroom.
func New(policy Policy) *Shedder { return NewWithHeadroom(policy, 1) }

// NewWithHeadroom returns a shedder that begins shedding when offered load
// exceeds capacity × headroom.
func NewWithHeadroom(policy Policy, headroom float64) *Shedder {
	if headroom <= 0 {
		headroom = 1
	}
	return &Shedder{
		policy:   policy,
		headroom: headroom,
		plan:     make(map[string]Drop),
		weights:  make(map[string]float64),
	}
}

// Policy returns the ranking policy in use.
func (s *Shedder) Policy() Policy { return s.policy }

// Update recomputes the shed plan from one period's measurements: offered is
// the total OFFERED load (capacity units/tick, shared operators counted
// once, shed tuples' cost included — OfferedLoad over a Stats slice) and
// queries the per-query view, typically built by QueriesFromLoads. Feeding
// the post-shed executed load here instead would clear the plan after every
// successful shed and oscillate between shedding and unshedded overload.
// Update returns the planned drops (empty when the offered load fits) and
// bumps the plan generation so executors re-resolve their cached policies.
// Every query's utility weight is remembered regardless of whether it is
// shed, so overflow drops are always charged real utility.
func (s *Shedder) Update(capacity, offered float64, queries []Query) []Drop {
	excess := offered - capacity*s.headroom
	var drops []Drop
	if excess > 0 {
		drops = s.policy.Plan(excess, queries)
	}
	plan := make(map[string]Drop, len(drops))
	for _, d := range drops {
		plan[d.Query] = d
	}
	weights := make(map[string]float64, len(queries))
	for _, q := range queries {
		weights[q.Name] = q.UtilityPerTuple()
	}
	s.mu.Lock()
	s.plan = plan
	s.drops = drops
	s.weights = weights
	s.mu.Unlock()
	s.gen.Add(1)
	return drops
}

// Drops returns the current plan's drops in policy order.
func (s *Shedder) Drops() []Drop {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Drop(nil), s.drops...)
}

// Generation implements engine.Shedder.
func (s *Shedder) Generation() uint64 { return s.gen.Load() }

// NodePolicy implements engine.Shedder. An ingress operator shared by
// several queries drops only what every owner agreed to lose (the minimum
// ratio — shedding a shared tuple harms all of them), and each drop is
// charged the owners' summed per-tuple utility. The utility charge comes
// from the weights of every known owner, not from the drop plan: overflow
// drops occur even for unshed queries and must not be billed as free.
//
// A returned ratio of 0 marks the edge loss-intolerant: the plan priced no
// drops for any owner, so the executors must not discard its tuples. With
// staging configured (engine.RuntimeConfig.StagingBudget) ratio-0 ingress
// overflow is staged — buffered to the budget, spilled to disk beyond it —
// and replayed in order, instead of being shed as an unplanned overflow
// drop. Edges with a positive ratio keep the overflow-shed path: their loss
// was already priced by the plan.
func (s *Shedder) NodePolicy(owners []string) (ratio, utilityPerTuple float64) {
	if len(owners) == 0 {
		return 0, 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ratio = math.Inf(1)
	for _, o := range owners {
		if d, ok := s.plan[o]; !ok {
			ratio = 0
		} else if d.Ratio < ratio {
			ratio = d.Ratio
		}
		utilityPerTuple += s.weights[o]
	}
	if math.IsInf(ratio, 1) {
		ratio = 0
	}
	return ratio, utilityPerTuple
}

// String renders one drop for period logs.
func (d Drop) String() string {
	return fmt.Sprintf("%s: drop %.0f%% (frees %.2f load, %.2f utility/tuple)",
		d.Query, 100*d.Ratio, d.LoadShed, d.UtilityPerTuple)
}
