package shed

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/qos"
)

// OfferedLoad sums the measured per-operator OFFERED loads (shed tuples'
// cost included): the total work per tick the feeds demanded of the server,
// shared operators counted once — directly comparable to the capacity an
// admission auction sold. This, not the post-shed executed load, is what
// Update must see, or a successful shed would erase the evidence of the
// overload it absorbed.
func OfferedLoad(loads []engine.NodeLoad) float64 {
	total := 0.0
	for _, nl := range loads {
		total += nl.OfferedLoad
	}
	return total
}

// ExecutedLoad sums the post-shed executed loads — the work the server
// actually performed, the quantity a schedulability check consumes.
func ExecutedLoad(loads []engine.NodeLoad) float64 {
	total := 0.0
	for _, nl := range loads {
		total += nl.Load
	}
	return total
}

// QueriesFromLoads derives the planner's per-query view from an executor's
// measured stats. For each query owning at least one operator:
//
//   - Rate is the highest per-tick offered tuple count (processed + shed)
//     over its operators — the ingress operator of a chain sees every
//     input tuple, so the max is the query's offered tuple rate;
//   - CostPerTuple is the query's summed offered operator load divided by
//     that rate: the capacity one ingress tuple costs end to end. Both
//     sides count shed tuples, so the view reflects demand, not the
//     residue a previous plan let through.
//
// Operators shared between queries contribute their full load to every
// owner, so per-query costs over-attribute sharing; that is the right bias
// for a shedding planner (dropping a shared tuple really does quiet the
// whole shared chain) and the min-ratio rule in Shedder.NodePolicy keeps a
// shared ingress from shedding more than its most protected owner allows.
//
// Queries absent from graphs get a nil Graph (zero utility weight — shed
// first); ticks <= 0 treats the counts as already per-tick.
func QueriesFromLoads(loads []engine.NodeLoad, graphs map[string]*qos.Graph, ticks int64) []Query {
	perQuery := make(map[string]*Query)
	for _, nl := range loads {
		rate := float64(nl.Tuples + nl.ShedTuples)
		if ticks > 0 {
			rate /= float64(ticks)
		}
		for _, owner := range nl.Owners {
			q, ok := perQuery[owner]
			if !ok {
				q = &Query{Name: owner, Graph: graphs[owner]}
				perQuery[owner] = q
			}
			if rate > q.Rate {
				q.Rate = rate
			}
			// Accumulate offered load into CostPerTuple, normalized below.
			q.CostPerTuple += nl.OfferedLoad
		}
	}
	names := make([]string, 0, len(perQuery))
	for name := range perQuery {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Query, 0, len(names))
	for _, name := range names {
		q := perQuery[name]
		if q.Rate > 0 {
			q.CostPerTuple /= q.Rate
		}
		out = append(out, *q)
	}
	return out
}
