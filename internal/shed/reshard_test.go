package shed

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/qos"
	"repro/internal/stream"
)

// TestDropPlanSurvivesReshard drives the real shedder (not an engine stub)
// through an elastic reshard on the staged executor: the drop plan computed
// before the boundary must keep shedding the same query after it — the new
// epoch's shard runtimes resolve the same generation-cached NodePolicy —
// and the merged stats must preserve the conservation identity
// processed + shed = pushed across epochs.
func TestDropPlanSurvivesReshard(t *testing.T) {
	schema := stream.MustSchema(
		stream.Field{Name: "sym", Kind: stream.KindString},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
	plan := func() (*engine.Plan, error) {
		p := engine.NewPlan()
		p.AddSource("s", schema)
		f := p.AddUnary(stream.NewFilter("pass", 1, func(stream.Tuple) bool { return true }), engine.FromSource("s"))
		p.AddSink("q", f)
		return p, nil
	}
	graph := qos.MustGraph(qos.Point{Latency: 0, Utility: 1}, qos.Point{Latency: 10, Utility: 0})

	shedder := New(UtilitySlope{})
	// Offered load 10 against capacity 5: the lone query must shed half.
	drops := shedder.Update(5, 10, []Query{{Name: "q", Graph: graph, Rate: 10, CostPerTuple: 1}})
	if len(drops) != 1 || drops[0].Ratio <= 0.4 || drops[0].Ratio >= 0.6 {
		t.Fatalf("drop plan = %v, want ~0.5 ratio for q", drops)
	}

	st, err := engine.StartStaged(plan, engine.StagedConfig{ExecConfig: engine.ExecConfig{Shards: 2, Buf: 64, Shedder: shedder}})
	if err != nil {
		t.Fatal(err)
	}
	const half = 600
	push := func() {
		batch := make([]stream.Tuple, 0, 50)
		for i := 0; i < half; i++ {
			batch = append(batch, stream.NewTuple(int64(i+1), "k", 1.0))
			if len(batch) == 50 {
				if err := st.PushBatch("s", batch); err != nil {
					t.Fatal(err)
				}
				batch = batch[:0]
			}
		}
	}
	push()
	before := engine.SettleStats(st)
	if err := st.Reshard(4); err != nil {
		t.Fatal(err)
	}
	push()
	st.Stop()
	loads := st.Stats()

	if got := loads[0].Tuples + loads[0].ShedTuples; got != 2*half {
		t.Fatalf("processed+shed = %d across epochs, want %d", got, 2*half)
	}
	// Both epochs shed: the post-reshard drop count strictly exceeds the
	// pre-reshard sample, and each half dropped about its planned ratio
	// (per-shard samplers restart their credit at the boundary: allow one
	// tuple of slack per shard per epoch).
	if loads[0].ShedTuples <= before[0].ShedTuples {
		t.Fatalf("shedding stopped after reshard: %d then %d drops",
			before[0].ShedTuples, loads[0].ShedTuples)
	}
	if diff := loads[0].ShedTuples - half; diff < -6 || diff > 6 {
		t.Fatalf("total ShedTuples = %d, want %d±6 (drop plan not re-resolved by new shards?)",
			loads[0].ShedTuples, half)
	}
	// The demand evidence survives too: offered load counts the shed
	// tuples' cost, so the planner keeps seeing the overload it absorbed.
	st.Advance(100)
	final := st.Stats()
	if final[0].OfferedLoad <= final[0].Load {
		t.Fatalf("offered %g <= executed %g after shedding across a reshard",
			final[0].OfferedLoad, final[0].Load)
	}
}
