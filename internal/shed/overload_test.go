package shed

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/qos"
	"repro/internal/sched"
	"repro/internal/stream"
)

// The acceptance scenario: one source feeds two queries, a cheap precious
// one ("gold", cost 1/tuple, utility 1.0) and an expensive low-value one
// ("bulk", cost 8/tuple, utility 0.2). Offered load is twice the capacity,
// so any correct shedder must drop half the work; the utility-slope policy
// should reclaim it almost entirely from bulk, the random baseline bleeds
// both equally.

const (
	overloadTuples   = 2000
	overloadTicks    = 100
	overloadCapacity = 90
)

func passAll(stream.Tuple) bool { return true }

func overloadPlan() *engine.Plan {
	p := engine.NewPlan()
	p.AddSource("s", nil)
	bulk := p.AddUnary(stream.NewFilter("bulk-sel", 8, passAll), engine.FromSource("s"))
	p.AddSink("bulk", bulk)
	gold := p.AddUnary(stream.NewFilter("gold-sel", 1, passAll), engine.FromSource("s"))
	p.AddSink("gold", gold)
	return p
}

func overloadGraphs() map[string]*qos.Graph {
	return map[string]*qos.Graph{"gold": goldGraph, "bulk": bulkGraph}
}

func pushOverload(t *testing.T, ex engine.Executor) {
	t.Helper()
	batch := make([]stream.Tuple, 0, 50)
	for i := 0; i < overloadTuples; i++ {
		batch = append(batch, stream.NewTuple(int64(i), fmt.Sprintf("k%d", i%7), float64(i)))
		if len(batch) == cap(batch) {
			if err := ex.PushBatch("s", batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	ex.Advance(overloadTicks)
	ex.Stop()
}

// deliveredUtility scores a finished period: every delivered tuple earns its
// query's prompt-delivery utility weight.
func deliveredUtility(ex engine.Executor, graphs map[string]*qos.Graph) float64 {
	total := 0.0
	for name, g := range graphs {
		total += float64(len(ex.Results(name))) * g.Utility(0)
	}
	return total
}

// runShedPeriod executes the overload workload on a fresh synchronous
// engine under the given policy's plan and returns the delivered utility
// and the post-shed measured loads.
func runShedPeriod(t *testing.T, policy Policy, queries []Query, offered float64) (float64, []engine.NodeLoad) {
	t.Helper()
	eng, err := engine.New(overloadPlan())
	if err != nil {
		t.Fatal(err)
	}
	s := New(policy)
	drops := s.Update(overloadCapacity, offered, queries)
	if len(drops) == 0 {
		t.Fatalf("%s policy planned no drops for offered %.0f over capacity %d",
			policy.Name(), offered, overloadCapacity)
	}
	eng.SetShedder(s)
	pushOverload(t, eng)
	return deliveredUtility(eng, overloadGraphs()), eng.Stats()
}

// TestUtilitySlopeBeatsRandomUnderOverload is the issue's acceptance test:
// measure an overloaded period, plan shedding from the measurements, and
// verify the utility-slope shedder (a) brings the measured load back within
// schedulable capacity and (b) retains measurably more delivered utility
// than random shedding of the same excess.
func TestUtilitySlopeBeatsRandomUnderOverload(t *testing.T) {
	// Period 0: measure the overload, unshedded, on the reference engine.
	eng, err := engine.New(overloadPlan())
	if err != nil {
		t.Fatal(err)
	}
	pushOverload(t, eng)
	loads := eng.Stats()
	offered := OfferedLoad(loads)
	if offered <= overloadCapacity {
		t.Fatalf("workload is not overloaded: offered %.1f <= capacity %d", offered, overloadCapacity)
	}
	queries := QueriesFromLoads(loads, overloadGraphs(), overloadTicks)

	// Period 1, once per policy: shed the measured excess.
	utilityScore, utilityLoads := runShedPeriod(t, UtilitySlope{}, queries, offered)
	randomScore, randomLoads := runShedPeriod(t, Random{}, queries, offered)

	for policy, after := range map[string][]engine.NodeLoad{"utility": utilityLoads, "random": randomLoads} {
		if got := ExecutedLoad(after); got > overloadCapacity+1e-6 {
			t.Errorf("%s-shed executed load = %.2f still above capacity %d", policy, got, overloadCapacity)
		}
		if _, err := sched.ValidateMeasured(overloadCapacity, after, 200, sched.RoundRobin{}); err != nil {
			t.Errorf("%s-shed load not schedulable: %v", policy, err)
		}
		// The OFFERED load must survive shedding: replanning from these
		// stats has to keep seeing the overload, or the plan would clear
		// and the next period oscillate back to unshedded overload.
		if got := OfferedLoad(after); math.Abs(got-offered) > offered*0.02 {
			t.Errorf("%s-shed offered load = %.2f, want ~%.2f preserved", policy, got, offered)
		}
	}

	// "Measurably more": the slope-ranked shed must beat random by half the
	// random score again, not by rounding noise. With these weights the
	// expected scores are ~2175 vs ~1200.
	if utilityScore < 1.5*randomScore {
		t.Fatalf("utility shedding delivered %.0f utility, random %.0f; want >= 1.5x",
			utilityScore, randomScore)
	}
}

// TestOverloadAgreesAcrossExecutors runs the same planned shed on the
// concurrent and sharded executors and checks they deliver the same tuple
// counts as the synchronous reference (buffers sized to avoid overflow
// drops, so only the deterministic planned ratio applies).
func TestOverloadAgreesAcrossExecutors(t *testing.T) {
	eng, err := engine.New(overloadPlan())
	if err != nil {
		t.Fatal(err)
	}
	pushOverload(t, eng)
	queries := QueriesFromLoads(eng.Stats(), overloadGraphs(), overloadTicks)
	offered := OfferedLoad(eng.Stats())

	mkShedder := func() *Shedder {
		s := New(UtilitySlope{})
		s.Update(overloadCapacity, offered, queries)
		return s
	}
	ref, err := engine.New(overloadPlan())
	if err != nil {
		t.Fatal(err)
	}
	ref.SetShedder(mkShedder())
	pushOverload(t, ref)
	want := map[string]int{"bulk": len(ref.Results("bulk")), "gold": len(ref.Results("gold"))}
	if want["gold"] != overloadTuples {
		t.Fatalf("gold lost tuples under utility shedding: %d/%d", want["gold"], overloadTuples)
	}

	rt, err := engine.StartRuntime(overloadPlan(), engine.RuntimeConfig{ExecConfig: engine.ExecConfig{Buf: 256, Shedder: mkShedder()}})
	if err != nil {
		t.Fatal(err)
	}
	pushOverload(t, rt)

	sh, err := engine.StartSharded(func() (*engine.Plan, error) { return overloadPlan(), nil },
		engine.ShardedConfig{ExecConfig: engine.ExecConfig{Shards: 3, Buf: 256, Shedder: mkShedder()}})
	if err != nil {
		t.Fatal(err)
	}
	pushOverload(t, sh)

	for name, ex := range map[string]engine.Executor{"runtime": rt, "sharded": sh} {
		for q, wantN := range want {
			got := len(ex.Results(q))
			// Per-sampler credit truncation can strand at most one tuple per
			// ingress edge per shard.
			if diff := got - wantN; diff < -3 || diff > 3 {
				t.Errorf("%s query %q delivered %d tuples, reference %d", name, q, got, wantN)
			}
		}
	}
}

// TestRuntimeSourcesStayUnblocked pins the backpressure contract: with a
// shedder installed, a wedged operator cannot stall PushBatch — the ingress
// overflows are shed and accounted instead. Without shedding this exact
// workload would block forever on the full ingress channel.
func TestRuntimeSourcesStayUnblocked(t *testing.T) {
	gate := make(chan struct{})
	p := engine.NewPlan()
	p.AddSource("s", nil)
	slow := p.AddUnary(stream.NewFilter("wedged", 1, func(stream.Tuple) bool {
		<-gate
		return true
	}), engine.FromSource("s"))
	p.AddSink("q", slow)

	rt, err := engine.StartRuntime(p, engine.RuntimeConfig{ExecConfig: engine.ExecConfig{Buf: 1, Shedder: New(UtilitySlope{})}})
	if err != nil {
		t.Fatal(err)
	}

	const batches, batchLen = 50, 10
	pushed := make(chan error, 1)
	go func() {
		for i := 0; i < batches; i++ {
			batch := make([]stream.Tuple, batchLen)
			for j := range batch {
				batch[j] = stream.NewTuple(int64(i*batchLen+j), "k", 1.0)
			}
			if err := rt.PushBatch("s", batch); err != nil {
				pushed <- err
				return
			}
		}
		pushed <- nil
	}()

	select {
	case err := <-pushed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("PushBatch blocked behind a wedged operator despite the shedder")
	}

	close(gate)
	rt.Stop()
	loads := rt.Stats()
	total := loads[0].Tuples + loads[0].ShedTuples
	if total != batches*batchLen {
		t.Fatalf("processed %d + shed %d != pushed %d",
			loads[0].Tuples, loads[0].ShedTuples, batches*batchLen)
	}
	if loads[0].ShedTuples == 0 {
		t.Fatal("no overflow shedding despite a wedged operator and full channels")
	}
}
